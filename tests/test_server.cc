/**
 * @file
 * symbold service tests.
 *
 * Two halves:
 *  - an adversarial framing corpus driving FrameReader through
 *    truncated, bit-flipped, oversized-length, garbage and
 *    mid-frame-disconnect streams (the wire-level counterpart of
 *    test_serialize.cc's container corpus);
 *  - in-process Server integration: answers byte-identical to a
 *    direct pipeline run, concurrent clients, warm hits served from
 *    the sharded store across a server restart, admission control,
 *    per-request deadlines, and graceful drain (the drain race is
 *    pinned under tsan via the CI preset).
 */

#include <gtest/gtest.h>

#include <stdlib.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "machine/config.hh"
#include "server/client.hh"
#include "server/framing.hh"
#include "server/proto.hh"
#include "server/server.hh"
#include "suite/pipeline.hh"
#include "support/json.hh"
#include "support/text.hh"

using namespace symbol;
using namespace symbol::server;
namespace fs = std::filesystem;

namespace
{

/** A tiny list-reversal program; @p tag varies the content key so
 *  tests control exactly what is and is not cached. */
suite::Benchmark
tinyBench(const std::string &tag, const std::string &list)
{
    suite::Benchmark b;
    b.name = tag;
    b.source = strprintf(R"(
        %% %s
        app([], L, L).
        app([X|A], B, [X|C]) :- app(A, B, C).
        rev([], []).
        rev([X|L], R) :- rev(L, T), app(T, [X], R).
        main :- rev(%s, R), out(R).
    )", tag.c_str(), list.c_str());
    return b;
}

/** A deliberately slow request: naive reverse of a long list is
 *  quadratic, so the cold build's profiling emulation takes long
 *  enough for another request to race it reliably. */
suite::Benchmark
slowBench(const std::string &tag)
{
    std::string list = "[1";
    for (int i = 2; i <= 300; ++i)
        list += strprintf(",%d", i);
    list += "]";
    return tinyBench(tag, list);
}

CompileRequest
requestFor(const suite::Benchmark &b)
{
    CompileRequest req;
    req.source = b.source;
    req.name = b.name;
    return req;
}

std::string
pingFrame()
{
    return packFrame(MsgKind::PingRequest, std::string());
}

// ---------------------------------------------------------------
// Framing corpus
// ---------------------------------------------------------------

std::vector<Frame>
feedAll(FrameReader &r, const std::string &bytes, std::size_t chunk)
{
    std::vector<Frame> out;
    for (std::size_t i = 0; i < bytes.size(); i += chunk)
        r.feed(bytes.data() + i, std::min(chunk, bytes.size() - i),
               out);
    return out;
}

TEST(Framing, RoundTripsEveryKindAtAnyChunking)
{
    std::vector<std::pair<MsgKind, std::string>> msgs = {
        {MsgKind::CompileRequest,
         encode(requestFor(tinyBench("framing", "[1,2,3]")))},
        {MsgKind::PingRequest, std::string()},
        {MsgKind::StatsRequest, std::string()},
        {MsgKind::ErrorResponse,
         encode(ErrorResponse{ErrCode::Overloaded, "busy"})},
        {MsgKind::DrainResponse, encode(DrainResponse{7})},
    };
    std::string stream;
    for (const auto &[kind, payload] : msgs)
        stream += packFrame(kind, payload);

    for (std::size_t chunk : {std::size_t{1}, std::size_t{3},
                              std::size_t{7}, stream.size()}) {
        FrameReader r;
        std::vector<Frame> out = feedAll(r, stream, chunk);
        EXPECT_FALSE(r.broken());
        EXPECT_TRUE(r.idle());
        ASSERT_EQ(out.size(), msgs.size()) << "chunk " << chunk;
        for (std::size_t i = 0; i < msgs.size(); ++i) {
            EXPECT_EQ(out[i].kind, msgs[i].first);
            EXPECT_EQ(out[i].payload, msgs[i].second);
        }
        EXPECT_EQ(r.framesRead(), msgs.size());
    }
}

TEST(Framing, LonePingHeaderCompletesImmediately)
{
    // Regression: a zero-payload frame is exactly one header; the
    // reader once waited for payload bytes that never come.
    FrameReader r;
    std::vector<Frame> out;
    std::string f = pingFrame();
    ASSERT_EQ(f.size(), kFrameHeaderBytes);
    EXPECT_TRUE(r.feed(f.data(), f.size(), out));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, MsgKind::PingRequest);
    EXPECT_TRUE(out[0].payload.empty());
    EXPECT_TRUE(r.idle());
}

TEST(Framing, TruncationWaitsWithoutErrorOrFrames)
{
    std::string frame = packFrame(
        MsgKind::CompileRequest,
        encode(requestFor(tinyBench("trunc", "[1]"))));
    // Every proper prefix: no frame, no error, not idle (a partial
    // frame is buffered) — EOF here is a mid-frame disconnect.
    for (std::size_t cut : {std::size_t{1}, std::size_t{4},
                            std::size_t{27}, kFrameHeaderBytes,
                            frame.size() - 1}) {
        FrameReader r;
        std::vector<Frame> out;
        EXPECT_TRUE(r.feed(frame.data(), cut, out));
        EXPECT_TRUE(out.empty()) << "cut " << cut;
        EXPECT_FALSE(r.broken()) << "cut " << cut;
        EXPECT_FALSE(r.idle()) << "cut " << cut;
        // The remainder completes the frame.
        EXPECT_TRUE(
            r.feed(frame.data() + cut, frame.size() - cut, out));
        ASSERT_EQ(out.size(), 1u) << "cut " << cut;
        EXPECT_TRUE(r.idle());
    }
}

TEST(Framing, AnyBitFlipIsRejectedNeverMisdelivered)
{
    std::string payload =
        encode(requestFor(tinyBench("bitflip", "[2,4,6]")));
    std::string frame = packFrame(MsgKind::CompileRequest, payload);
    for (std::size_t i = 0; i < frame.size(); ++i) {
        std::string bad = frame;
        bad[i] ^= 0x20;
        FrameReader r;
        std::vector<Frame> out;
        r.feed(bad.data(), bad.size(), out);
        // Flips in the magic/version/length/checksum die in the
        // header; flips in kind or payload die on the chained
        // checksum. A flipped length can also leave the reader
        // waiting for bytes that never come — but NEVER may a
        // complete, wrong frame come out.
        if (!out.empty()) {
            ADD_FAILURE() << "byte " << i
                          << " flip delivered a frame";
            continue;
        }
        EXPECT_TRUE(r.broken() || !r.idle()) << "byte " << i;
    }
}

TEST(Framing, OversizedLengthRejectedBeforeBuffering)
{
    // A hostile length prefix must die when the header completes,
    // without the reader ever buffering payload.
    FrameReader r(1024); // tests shrink the bound
    serialize::Writer w;
    for (char c : kFrameMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.fixed32(kProtoVersion);
    w.fixed32(static_cast<std::uint32_t>(MsgKind::PingRequest));
    w.fixed64(std::uint64_t{1} << 40); // 1 TiB claim
    w.fixed64(0);
    std::string hdr = w.take();
    std::vector<Frame> out;
    EXPECT_FALSE(r.feed(hdr.data(), hdr.size(), out));
    EXPECT_TRUE(r.broken());
    EXPECT_NE(r.error().find("exceeds bound"), std::string::npos);
    EXPECT_TRUE(out.empty());
    // Sticky: even a valid ping afterwards is refused.
    std::string ping = pingFrame();
    EXPECT_FALSE(r.feed(ping.data(), ping.size(), out));
    EXPECT_TRUE(out.empty());
}

TEST(Framing, GarbageDiesOnItsFirstBytes)
{
    FrameReader r;
    std::vector<Frame> out;
    std::string garbage = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
    EXPECT_FALSE(r.feed(garbage.data(), garbage.size(), out));
    EXPECT_TRUE(r.broken());
    EXPECT_NE(r.error().find("magic"), std::string::npos);
    EXPECT_TRUE(out.empty());
}

TEST(Framing, VersionBumpIsAFramingError)
{
    std::string frame = pingFrame();
    frame[4] = static_cast<char>(frame[4] + 1);
    FrameReader r;
    std::vector<Frame> out;
    EXPECT_FALSE(r.feed(frame.data(), frame.size(), out));
    EXPECT_NE(r.error().find("version"), std::string::npos);
}

// ---------------------------------------------------------------
// Server integration
// ---------------------------------------------------------------

class ServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/symbol-server-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
        sock_ = dir_ + "/sock";
        store_ = dir_ + "/store";
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    ServerOptions
    serverOpts(std::size_t maxInFlight = 64) const
    {
        ServerOptions o;
        o.socketPath = sock_;
        o.cacheDir = store_;
        o.jobs = 2;
        o.maxInFlight = maxInFlight;
        o.quiet = true;
        return o;
    }

    /** Raw connected socket for wire-level tests. */
    int
    rawConnect() const
    {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, sock_.c_str(),
                    sock_.size() + 1);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof addr),
                  0);
        return fd;
    }

    /** Spin until @p pred or ~5 s pass. */
    template <class P>
    static bool
    eventually(P pred)
    {
        // Generous ceiling (30 s): a loaded 1-cpu sanitizer runner
        // can stall admission for seconds; success returns early.
        for (int i = 0; i < 3000; ++i) {
            if (pred())
                return true;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        return false;
    }

    std::string dir_, sock_, store_;
};

TEST_F(ServerTest, CompileMatchesDirectRunByteForByte)
{
    suite::Benchmark b = tinyBench("direct", "[5,4,3,2,1]");
    machine::MachineConfig mc =
        machine::MachineConfig::idealShared(3);
    suite::Workload direct(b);
    suite::VliwRun run = direct.runVliw(mc);

    Server server(serverOpts());
    server.start();
    Client client(sock_);
    CompileResponse r = client.compile(requestFor(b));
    EXPECT_EQ(r.answer, direct.seqOutput());
    EXPECT_EQ(r.instructions, direct.instructions());
    EXPECT_EQ(r.seqCycles, direct.seqCycles());
    EXPECT_EQ(r.vliwCycles, run.cycles);
    EXPECT_EQ(r.speedup, run.speedupVsSeq);
    EXPECT_EQ(r.origin, Origin::Built);

    // Same request again: answered from memory, same bytes.
    CompileResponse r2 = client.compile(requestFor(b));
    EXPECT_EQ(r2.origin, Origin::Memory);
    EXPECT_EQ(r2.answer, r.answer);
    EXPECT_EQ(r2.vliwCycles, r.vliwCycles);
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, ScheduleRequestCarriesTheWideCodeListing)
{
    suite::Benchmark b = tinyBench("sched", "[1,2]");
    Server server(serverOpts());
    server.start();
    Client client(sock_);
    CompileRequest req = requestFor(b);
    req.wantSchedule = true;
    CompileResponse r = client.compile(req);
    EXPECT_FALSE(r.schedule.empty());
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, EightConcurrentClientsGetIdenticalAnswers)
{
    // ≥8 concurrent clients, every response byte-identical to the
    // direct run of the same benchmark (the acceptance bar).
    std::vector<suite::Benchmark> benches;
    std::vector<std::string> expectAnswer;
    std::vector<std::uint64_t> expectInstr;
    for (int i = 0; i < 4; ++i) {
        benches.push_back(tinyBench(strprintf("conc%d", i),
                                    strprintf("[%d,%d]", i, i + 1)));
        suite::Workload w(benches.back());
        expectAnswer.push_back(w.seqOutput());
        expectInstr.push_back(w.instructions());
    }

    Server server(serverOpts());
    server.start();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            try {
                Client client(sock_);
                for (int k = 0; k < 4; ++k) {
                    std::size_t i =
                        static_cast<std::size_t>(t + k) %
                        benches.size();
                    CompileResponse r =
                        client.compile(requestFor(benches[i]));
                    if (r.answer != expectAnswer[i] ||
                        r.instructions != expectInstr[i])
                        ++failures;
                }
            } catch (const std::exception &) {
                ++failures;
            }
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(server.counters().completed, 32u);
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, WarmHitsServedFromShardedStoreAcrossRestart)
{
    suite::Benchmark b = tinyBench("warm", "[9,8,7,6]");
    CompileResponse cold;
    {
        Server server(serverOpts());
        server.start();
        Client client(sock_);
        cold = client.compile(requestFor(b));
        EXPECT_EQ(cold.origin, Origin::Built);
        server.requestDrain();
        server.wait();
    }
    // New server process-equivalent on the same store: the request
    // is a disk hit — zero workloads built — and byte-identical.
    {
        Server server(serverOpts());
        server.start();
        Client client(sock_);
        CompileResponse warm = client.compile(requestFor(b));
        EXPECT_EQ(warm.origin, Origin::Disk);
        EXPECT_EQ(warm.answer, cold.answer);
        EXPECT_EQ(warm.instructions, cold.instructions);
        EXPECT_EQ(warm.vliwCycles, cold.vliwCycles);
        EXPECT_EQ(server.driver().stats().workloadsBuilt, 0u);

        // And the next identical request is a memory hit.
        EXPECT_EQ(client.compile(requestFor(b)).origin,
                  Origin::Memory);
        server.requestDrain();
        server.wait();
    }
}

/** Identical requests are answered from the response cache: the
 *  pipeline runs once, repeats are pure lookups, and the cached
 *  response survives a restart through the store's rs- blobs —
 *  the warm path never compiles or simulates anything. */
TEST_F(ServerTest, ResponseCacheServesRepeatsWithoutRecompute)
{
    suite::Benchmark b = tinyBench("respcache", "[5,4,3,2,1]");
    CompileResponse first;
    {
        Server server(serverOpts());
        server.start();
        Client client(sock_);
        first = client.compile(requestFor(b));
        EXPECT_EQ(first.origin, Origin::Built);
        CompileResponse again = client.compile(requestFor(b));
        EXPECT_EQ(again.origin, Origin::Memory);
        EXPECT_EQ(again.answer, first.answer);
        EXPECT_EQ(again.vliwCycles, first.vliwCycles);
        EXPECT_EQ(server.counters().respMemoryHits, 1u);
        // A different response shape (schedule requested) is a
        // different key: computed fresh, not served stale.
        CompileRequest withSched = requestFor(b);
        withSched.wantSchedule = true;
        CompileResponse sched = client.compile(withSched);
        EXPECT_FALSE(sched.schedule.empty());
        EXPECT_EQ(server.counters().respMemoryHits, 1u);
        server.requestDrain();
        server.wait();
    }
    {
        Server server(serverOpts());
        server.start();
        Client client(sock_);
        CompileResponse warm = client.compile(requestFor(b));
        EXPECT_EQ(warm.origin, Origin::Disk);
        EXPECT_EQ(warm.answer, first.answer);
        EXPECT_EQ(warm.instructions, first.instructions);
        EXPECT_EQ(warm.vliwCycles, first.vliwCycles);
        EXPECT_EQ(warm.speedup, first.speedup);
        EXPECT_EQ(server.counters().respDiskHits, 1u);
        // Nothing was rebuilt, nothing re-simulated: the driver
        // never even constructed a workload.
        EXPECT_EQ(server.driver().stats().workloadsBuilt, 0u);
        server.requestDrain();
        server.wait();
    }
}

TEST_F(ServerTest, OverloadedAnswersImmediatelyAtTheBound)
{
    Server server(serverOpts(/*maxInFlight=*/1));
    server.start();
    // Occupy the single slot with a slow cold build...
    std::thread slow([&] {
        Client client(sock_);
        client.compile(requestFor(slowBench("ovl-slow")));
    });
    bool occupied = eventually(
        [&] { return server.counters().inFlight == 1; });
    if (!occupied) {
        // Never leave `slow` joinable on the failure path: a
        // joinable thread's destructor terminates the whole binary.
        slow.join();
        server.requestDrain();
        server.wait();
        FAIL() << "the slow build never occupied the slot";
    }
    // ...and the next request must be rejected, not queued.
    Client client(sock_);
    try {
        client.compile(requestFor(tinyBench("ovl-tiny", "[1]")));
        ADD_FAILURE() << "expected an overloaded rejection";
    } catch (const ServerError &e) {
        EXPECT_EQ(e.code(), ErrCode::Overloaded);
    }
    slow.join();
    EXPECT_EQ(server.counters().overloadRejected, 1u);
    EXPECT_EQ(server.counters().completed, 1u);
    // With the slot free again the same connection is served.
    CompileResponse r =
        client.compile(requestFor(tinyBench("ovl-tiny", "[1]")));
    EXPECT_NE(r.answer.find("[1]"), std::string::npos);
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, DeadlineExpiresCooperativelyAndDoesNotPoison)
{
    Server server(serverOpts());
    server.start();
    Client client(sock_);
    suite::Benchmark b = slowBench("deadline");
    CompileRequest req = requestFor(b);
    req.deadlineMillis = 1;
    try {
        client.compile(req);
        ADD_FAILURE() << "expected a deadline rejection";
    } catch (const ServerError &e) {
        EXPECT_EQ(e.code(), ErrCode::DeadlineExpired);
    }
    EXPECT_EQ(server.counters().deadlineExpired, 1u);
    // The abort was not cached as a build failure: the same program
    // without a deadline compiles fine on the same server.
    req.deadlineMillis = 0;
    CompileResponse r = client.compile(req);
    EXPECT_EQ(server.counters().completed, 1u);
    EXPECT_FALSE(r.answer.empty());
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, MidFrameDisconnectIsAccountedAndContained)
{
    Server server(serverOpts());
    server.start();
    int fd = rawConnect();
    std::string frame = packFrame(
        MsgKind::CompileRequest,
        encode(requestFor(tinyBench("midframe", "[1]"))));
    // Half a frame, then vanish.
    ASSERT_EQ(::send(fd, frame.data(), frame.size() / 2,
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size() / 2));
    ::close(fd);
    EXPECT_TRUE(eventually(
        [&] { return server.counters().framingErrors == 1; }));
    // The server survives and serves the next client normally.
    Client client(sock_);
    client.ping();
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, GarbageOnTheWireGetsOneErrorThenTheBoot)
{
    Server server(serverOpts());
    server.start();
    int fd = rawConnect();
    std::string garbage = "not a frame at all";
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(garbage.size()));
    // Best-effort ErrorResponse, then the connection closes.
    FrameReader reader;
    std::vector<Frame> frames;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        reader.feed(buf, static_cast<std::size_t>(n), frames);
    }
    ::close(fd);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].kind, MsgKind::ErrorResponse);
    ErrorResponse e = decodeErrorResponse(frames[0].payload);
    EXPECT_EQ(e.code, ErrCode::BadRequest);
    EXPECT_NE(e.message.find("magic"), std::string::npos);
    EXPECT_EQ(server.counters().framingErrors, 1u);
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, StatsDocumentHasDriverStoreAndServerSections)
{
    Server server(serverOpts());
    server.start();
    Client client(sock_);
    client.compile(requestFor(tinyBench("statsdoc", "[3,2,1]")));
    json::Value doc = json::parse(client.statsJson());
    EXPECT_EQ(doc.at("driver").at("workloadsBuilt").asInt(), 1);
    EXPECT_TRUE(doc.has("store"));
    EXPECT_TRUE(doc.has("passes"));
    const json::Value &srv = doc.at("server");
    EXPECT_EQ(srv.at("completed").asInt(), 1);
    EXPECT_EQ(srv.at("accepted").asInt(), 1);
    EXPECT_EQ(srv.at("draining").asBool(), false);
    server.requestDrain();
    server.wait();
}

TEST_F(ServerTest, DrainLeavesACleanWorld)
{
    Server server(serverOpts());
    server.start();
    {
        Client client(sock_);
        client.compile(requestFor(tinyBench("drain", "[1,2]")));
        EXPECT_EQ(client.drain(), 0u);
    }
    server.wait();
    ServerCounters c = server.counters();
    EXPECT_EQ(c.drains, 1u);
    EXPECT_EQ(c.completed, 1u);
    EXPECT_EQ(c.inFlight, 0u);
    // Socket unlinked; new connections are refused.
    EXPECT_FALSE(fs::exists(sock_));
    EXPECT_THROW(Client refused(sock_), RuntimeError);
}

TEST_F(ServerTest, ConcurrentClientsRacingDrain)
{
    // tsan coverage: requests in flight while a drain lands. Some
    // requests succeed, some answer 'draining' or lose their
    // connection — but nothing crashes, races or hangs, and wait()
    // returns with everything joined.
    Server server(serverOpts());
    server.start();
    std::atomic<int> completed{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            for (int k = 0; k < 8; ++k) {
                try {
                    Client client(sock_);
                    client.compile(requestFor(tinyBench(
                        strprintf("race%d", (t + k) % 3),
                        "[1,2,3]")));
                    ++completed;
                } catch (const std::exception &) {
                    // draining / closed mid-request: expected
                }
            }
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.requestDrain();
    for (auto &th : threads)
        th.join();
    server.wait();
    EXPECT_GE(completed.load(), 0);
}

} // namespace
