/**
 * @file
 * Tests of the code-analysis layer: instruction mix, Amdahl
 * projections, branch-predictability statistics and the BAM cycle
 * model — including the paper's headline quantitative claims as
 * property checks on real benchmark profiles.
 */

#include <gtest/gtest.h>

#include "analysis/stats.hh"
#include "suite/pipeline.hh"

using namespace symbol;
using namespace symbol::analysis;

namespace
{

const suite::Workload &
workload(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<suite::Workload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<suite::Workload>(
                                    suite::benchmark(name)))
                 .first;
    }
    return *it->second;
}

} // namespace

TEST(Amdahl, MatchesPaperHeadlineNumber)
{
    // §4.2: mem fraction 0.32, unbounded enhancement, overlapped
    // memory => speedup ~3.
    double s = amdahlSpeedup(0.32, 1e9, true);
    EXPECT_NEAR(s, 3.125, 0.01);
    // Non-overlapped memory gives the same asymptote.
    EXPECT_NEAR(amdahlSpeedup(0.32, 1e9, false), 3.125, 0.01);
}

TEST(Amdahl, FactorOneIsNoSpeedup)
{
    EXPECT_NEAR(amdahlSpeedup(0.32, 1.0, false), 1.0, 1e-9);
}

TEST(Amdahl, OverlapDominatesSerial)
{
    for (double f : {1.0, 2.0, 3.0, 8.0}) {
        EXPECT_GE(amdahlSpeedup(0.32, f, true) + 1e-9,
                  amdahlSpeedup(0.32, f, false));
    }
}

TEST(Amdahl, OverlappedSaturatesBeyondThree)
{
    // §4.2: "factors of concurrency greater than three are useless".
    double s3 = amdahlSpeedup(0.32, 3.0, true);
    double s8 = amdahlSpeedup(0.32, 8.0, true);
    EXPECT_NEAR(s3, s8, 0.25);
}

TEST(InstructionMixTest, FractionsSumToOne)
{
    const suite::Workload &w = workload("qsort");
    InstructionMix mix = instructionMix(w.ici(), w.profile());
    EXPECT_NEAR(mix.memory + mix.alu + mix.move + mix.control +
                    mix.other,
                1.0, 1e-9);
    EXPECT_EQ(mix.total, w.instructions());
}

TEST(InstructionMixTest, MemoryFractionNearPaperValue)
{
    // Fig. 2: memory ops are about a third of the dynamic mix.
    InstructionMix all;
    for (const char *n : {"nreverse", "qsort", "tak", "serialise"})
        all += instructionMix(workload(n).ici(),
                              workload(n).profile());
    EXPECT_GT(all.memory, 0.15);
    EXPECT_LT(all.memory, 0.45);
}

TEST(InstructionMixTest, BranchFractionSubstantial)
{
    // §4.3: "high percentage of branch operations (more than 15%)".
    InstructionMix all;
    for (const char *n : {"nreverse", "qsort", "zebra"})
        all += instructionMix(workload(n).ici(),
                              workload(n).profile());
    EXPECT_GT(all.control, 0.15);
}

TEST(BranchStatsTest, FaultyPredictionIsLow)
{
    // Table 2: average P_fp ~0.1 — Prolog branches are predictable,
    // refuting the 90/50 rule for symbolic code.
    double weighted = 0;
    std::uint64_t total = 0;
    for (const auto &b : suite::aquarius()) {
        const suite::Workload &w = workload(b.name);
        BranchStats st = branchStats(w.ici(), w.profile());
        weighted += st.avgFaultyPrediction *
                    static_cast<double>(st.branchExecutions);
        total += st.branchExecutions;
    }
    double avg = weighted / static_cast<double>(total);
    EXPECT_GT(avg, 0.0);
    EXPECT_LT(avg, 0.25);
}

TEST(BranchStatsTest, HistogramIsADistribution)
{
    const suite::Workload &w = workload("queens_8");
    BranchStats st = branchStats(w.ici(), w.profile(), 10);
    ASSERT_EQ(st.histogram.size(), 10u);
    double sum = 0;
    for (double h : st.histogram) {
        EXPECT_GE(h, 0.0);
        sum += h;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Most branch executions are highly predictable (first bins).
    EXPECT_GT(st.histogram[0] + st.histogram[1], 0.4);
}

TEST(BranchStatsTest, PfpIsBoundedByHalf)
{
    for (const auto &b : suite::aquarius()) {
        const suite::Workload &w = workload(b.name);
        BranchStats st = branchStats(w.ici(), w.profile());
        EXPECT_LE(st.avgFaultyPrediction, 0.5) << b.name;
    }
}

TEST(BamCycles, FusionFactorsAtLeastOne)
{
    for (int op = 0; op <= static_cast<int>(bam::Op::Nop); ++op)
        EXPECT_GE(bamFusionFactor(static_cast<bam::Op>(op)), 1.0);
}

TEST(BamCycles, BamBeatsSequentialByAboutHalf)
{
    // §4.5: the BAM shows a speedup of roughly 1.5-1.6 over a pure
    // sequential implementation.
    double sum = 0;
    int n = 0;
    for (const char *name : {"nreverse", "qsort", "tak", "times10"}) {
        const suite::Workload &w = workload(name);
        double su = static_cast<double>(w.seqCycles()) /
                    static_cast<double>(w.bamCycles());
        EXPECT_GT(su, 1.0) << name;
        EXPECT_LT(su, 2.6) << name;
        sum += su;
        ++n;
    }
    double avg = sum / n;
    EXPECT_GT(avg, 1.2);
    EXPECT_LT(avg, 2.1);
}
