/**
 * @file
 * Stress and boundary tests of the runtime: deep structures, deep
 * recursion, trail-heavy backtracking, wide functors, and the
 * iterative runtime routines ($unify and $out_term working through
 * the push-down list).
 */

#include <gtest/gtest.h>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "prolog/parser.hh"
#include "support/text.hh"

using namespace symbol;

namespace
{

std::string
runProgram(const std::string &src)
{
    Interner in;
    prolog::Program p = prolog::parseProgram(src, in);
    bam::Module m = bamc::compile(p);
    intcode::Program ici = intcode::translate(m);
    emul::Machine mach(ici);
    emul::RunOptions o;
    o.maxSteps = 200'000'000;
    emul::RunResult r = mach.run(o);
    EXPECT_TRUE(r.halted);
    return mach.decodeOutput();
}

} // namespace

TEST(Stress, DeeplyNestedStructureUnification)
{
    // Build s(s(...s(z)...)) 200 deep via recursion, then unify two
    // independently built copies with the general unifier.
    const char *src = R"(
        peano(0, z) :- !.
        peano(N, s(P)) :- N1 is N - 1, peano(N1, P).
        main :- peano(200, A), peano(200, B), A = B, out(ok).
    )";
    EXPECT_EQ(runProgram(src), "ok\n");
}

TEST(Stress, DeepStructureMismatchFails)
{
    const char *src = R"(
        peano(0, z) :- !.
        peano(N, s(P)) :- N1 is N - 1, peano(N1, P).
        main :- peano(120, A), peano(121, B), A = B, out(ok).
    )";
    EXPECT_EQ(runProgram(src), "no\n");
}

TEST(Stress, WideFunctor)
{
    // Arity 12 exercises the argument-count loops of $unify and
    // $out_term.
    const char *src = R"(
        main :-
            X = f(1,2,3,4,5,6,7,8,9,10,11,12),
            X = f(A,_,_,_,_,_,_,_,_,_,_,L),
            out(A), out(L), out(X).
    )";
    EXPECT_EQ(runProgram(src),
              "1\n12\nf(1,2,3,4,5,6,7,8,9,10,11,12)\n");
}

TEST(Stress, LongListOutput)
{
    // A 500-element list through $out_term's push-down list.
    const char *src = R"(
        build(0, []) :- !.
        build(N, [N|T]) :- N1 is N - 1, build(N1, T).
        len([], 0).
        len([_|T], N) :- len(T, N1), N is N1 + 1.
        main :- build(500, L), len(L, N), out(N).
    )";
    EXPECT_EQ(runProgram(src), "500\n");
}

TEST(Stress, TrailHeavyBacktracking)
{
    // Each failing candidate binds many variables that must all be
    // unwound before the next attempt.
    const char *src = R"(
        same([], _).
        same([X|T], X) :- same(T, X).
        pick(1). pick(2). pick(3). pick(4). pick(5).
        main :-
            L = [A,B,C,D,E,F,G,H],
            pick(V), same(L, V), V =:= 4,
            out([A,B,C,D,E,F,G,H]).
    )";
    EXPECT_EQ(runProgram(src), "[4,4,4,4,4,4,4,4]\n");
}

TEST(Stress, ChoicePointStackDepth)
{
    // Nested nondeterminism: 2^12 leaves explored by fail-driven
    // enumeration, counting via an accumulator pair.
    const char *src = R"(
        bit(0). bit(1).
        word([], 0).
        word([B|T], N) :- word(T, N1), bit(B), N is 2 * N1 + B.
        main :- word([_,_,_,_,_,_,_,_,_,_], N), N =:= 1023, out(N).
    )";
    EXPECT_EQ(runProgram(src), "1023\n");
}

TEST(Stress, MutualRecursion)
{
    const char *src = R"(
        even(0).
        even(N) :- N > 0, N1 is N - 1, odd(N1).
        odd(N) :- N > 0, N1 is N - 1, even(N1).
        main :- even(10000), \+ odd(10000), out(ok).
    )";
    EXPECT_EQ(runProgram(src), "ok\n");
}

TEST(Stress, ArithmeticRange)
{
    // Value fields are 32-bit; exercise large magnitudes and mixed
    // signs within range.
    const char *src = R"(
        main :-
            A is 46340 * 46340,
            B is -46340 * 46340,
            C is A + B,
            D is A // 46340,
            out(A), out(B), out(C), out(D).
    )";
    EXPECT_EQ(runProgram(src),
              "2147395600\n-2147395600\n0\n46340\n");
}

TEST(Stress, PartialListsAndHoles)
{
    // Unbound tails bound later, difference-list style.
    const char *src = R"(
        main :-
            X = [1,2|T1],
            T1 = [3|T2],
            T2 = [4],
            X = [_,_,_,Last],
            out(Last), out(X).
    )";
    EXPECT_EQ(runProgram(src), "4\n[1,2,3,4]\n");
}

TEST(Stress, AliasChains)
{
    // Long variable-to-variable chains exercise dereference loops.
    const char *src = R"(
        chain(X0) :-
            X0 = X1, X1 = X2, X2 = X3, X3 = X4, X4 = X5,
            X5 = X6, X6 = X7, X7 = X8, X8 = X9, X9 = done.
        main :- chain(V), out(V).
    )";
    EXPECT_EQ(runProgram(src), "done\n");
}

TEST(Stress, ManyClausesConstantIndexing)
{
    // 26 constant-dispatched facts; hit first, middle, last.
    std::string src;
    for (char c = 'a'; c <= 'z'; ++c)
        src += strprintf("code(%c, %d).\n", c, c - 'a');
    src += "main :- code(a, A), code(m, M), code(z, Z), "
           "out(A), out(M), out(Z).\n";
    EXPECT_EQ(runProgram(src), "0\n12\n25\n");
}

TEST(Stress, CutInsideDeepBacktracking)
{
    // once/1-style commit deep inside a nondeterministic search.
    const char *src = R"(
        num(1). num(2). num(3). num(4).
        firstsq(N, S) :- num(N), S is N * N, S > 5, !.
        main :- firstsq(N, S), out(N), out(S), fail.
        main :- out(done).
    )";
    EXPECT_EQ(runProgram(src), "3\n9\ndone\n");
}

TEST(Stress, GroundTermOutputIsStable)
{
    // The same ground term printed twice decodes identically
    // (address-free linearisation).
    const char *src = R"(
        main :- X = tree(lf(1), tree(lf(2), lf([a,b]))),
                out(X), out(X).
    )";
    std::string out = runProgram(src);
    auto lines = split(out, '\n');
    ASSERT_GE(lines.size(), 2u);
    EXPECT_EQ(lines[0], lines[1]);
    EXPECT_EQ(lines[0], "tree(lf(1),tree(lf(2),lf([a,b])))");
}
