/**
 * @file
 * End-to-end back-end tests: every benchmark is compacted (basic-block
 * and trace modes) for several machine configurations and simulated
 * on the VLIW machine; outputs must match the sequential answer
 * exactly, schedules must respect latencies, and trace compaction
 * must beat basic-block compaction on average.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "suite/pipeline.hh"

using namespace symbol;
using machine::MachineConfig;

namespace
{

/** Shared workloads (front end runs once per benchmark). */
const suite::Workload &
workload(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<suite::Workload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<suite::Workload>(
                                    suite::benchmark(name)))
                 .first;
    }
    return *it->second;
}

/** Small-but-diverse sub-suite for the heavier sweeps. */
std::vector<std::string>
smallSuite()
{
    return {"conc30", "nreverse", "qsort", "serialise", "times10",
            "query"};
}

} // namespace

class CompactVliw : public ::testing::TestWithParam<suite::Benchmark>
{
};

TEST_P(CompactVliw, TraceModeMatchesSequentialAnswer)
{
    const suite::Workload &w = workload(GetParam().name);
    sched::CompactOptions co;
    co.traceMode = true;
    // runVliw throws on divergence or latency violations.
    suite::VliwRun r = w.runVliw(MachineConfig::idealShared(3), co);
    EXPECT_EQ(r.latencyViolations, 0u);
    EXPECT_GT(r.speedupVsSeq, 1.0);
}

TEST_P(CompactVliw, BasicBlockModeMatchesSequentialAnswer)
{
    const suite::Workload &w = workload(GetParam().name);
    sched::CompactOptions co;
    co.traceMode = false;
    suite::VliwRun r = w.runVliw(MachineConfig::idealShared(3), co);
    EXPECT_EQ(r.latencyViolations, 0u);
}

TEST_P(CompactVliw, PrototypeConfigurationIsCorrect)
{
    const suite::Workload &w = workload(GetParam().name);
    suite::VliwRun r = w.runVliw(MachineConfig::prototype(3));
    EXPECT_EQ(r.latencyViolations, 0u);
}

TEST_P(CompactVliw, TraceBeatsBasicBlocks)
{
    const suite::Workload &w = workload(GetParam().name);
    sched::CompactOptions tr, bb;
    tr.traceMode = true;
    bb.traceMode = false;
    MachineConfig mc = MachineConfig::unboundedShared();
    suite::VliwRun rt = w.runVliw(mc, tr);
    suite::VliwRun rb = w.runVliw(mc, bb);
    // Global compaction must not lose to local compaction.
    EXPECT_GE(rt.speedupVsSeq, rb.speedupVsSeq * 0.98);
    // And traces must be longer than basic blocks.
    EXPECT_GT(rt.stats.avgDynamicLength, rb.stats.avgDynamicLength);
}

INSTANTIATE_TEST_SUITE_P(
    Aquarius, CompactVliw, ::testing::ValuesIn(suite::aquarius()),
    [](const ::testing::TestParamInfo<suite::Benchmark> &info) {
        return info.param.name;
    });

TEST(CompactSweep, UnitSweepIsMonotoneOnAverage)
{
    double prev = 0;
    for (int units : {1, 2, 4}) {
        double sum = 0;
        int n = 0;
        for (const std::string &name : smallSuite()) {
            suite::VliwRun r = workload(name).runVliw(
                MachineConfig::idealShared(units));
            sum += r.speedupVsSeq;
            ++n;
        }
        double avg = sum / n;
        EXPECT_GE(avg, prev * 0.99)
            << "average speedup dropped at " << units << " units";
        prev = avg;
    }
}

TEST(CompactSweep, SharedMemoryBoundsSpeedup)
{
    // With one memory port, speedup can never exceed 1/mem_fraction
    // (Amdahl, §4.2); check a generous bound.
    for (const std::string &name : smallSuite()) {
        suite::VliwRun r = workload(name).runVliw(
            MachineConfig::unboundedShared());
        EXPECT_LT(r.speedupVsSeq, 5.0) << name;
    }
}

TEST(CompactOptionsTest, TagBranchExpansionStillCorrect)
{
    suite::WorkloadOptions wo;
    wo.translate.expandTagBranches = true;
    suite::Workload w(suite::benchmark("nreverse"), wo);
    EXPECT_TRUE(w.answerMatches());
    suite::VliwRun r = w.runVliw(MachineConfig::idealShared(3));
    EXPECT_GT(r.cycles, 0u);
}

TEST(CompactOptionsTest, DisambiguationOffStillCorrectAndSlower)
{
    const suite::Workload &w = workload("qsort");
    sched::CompactOptions on, off;
    on.freshAllocDisambiguation = true;
    off.freshAllocDisambiguation = false;
    MachineConfig mc = MachineConfig::idealShared(3);
    suite::VliwRun r_on = w.runVliw(mc, on);
    suite::VliwRun r_off = w.runVliw(mc, off);
    EXPECT_LE(r_on.cycles, r_off.cycles);
}

TEST(CompactOptionsTest, NoDuplicationBudgetDegradesToBlocks)
{
    const suite::Workload &w = workload("nreverse");
    sched::CompactOptions co;
    co.dupBudgetFactor = 0.0;
    suite::VliwRun r = w.runVliw(MachineConfig::idealShared(3), co);
    EXPECT_GT(r.cycles, 0u);
}

TEST(CompactOptionsTest, IndexingOffStillCorrect)
{
    suite::WorkloadOptions wo;
    wo.compiler.indexing = false;
    suite::Workload w(suite::benchmark("qsort"), wo);
    EXPECT_TRUE(w.answerMatches());
    w.runVliw(MachineConfig::idealShared(2));
}
