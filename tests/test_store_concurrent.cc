/**
 * @file
 * Concurrency test of the persistent artefact store: two parallel
 * evaluation drivers share one cache directory and race to build the
 * same keys under --jobs N. The per-key file locks and atomic
 * write-rename must keep every published file intact, both drivers
 * must produce identical results, and a third driver must afterwards
 * warm-start entirely from disk. Runs in the tsan preset.
 */

#include <gtest/gtest.h>

#include <stdlib.h>

#include <filesystem>
#include <thread>

#include "machine/config.hh"
#include "suite/driver.hh"
#include "suite/store.hh"
#include "support/text.hh"

using namespace symbol;
namespace fs = std::filesystem;

namespace
{

std::vector<suite::Benchmark>
raceBenches()
{
    std::vector<suite::Benchmark> out;
    const char *lists[] = {"[1,2,3,4,5,6,7]", "[9,8,7,6,5]",
                           "[2,4,6,8]", "[5,5,5,5,5,5]"};
    for (int i = 0; i < 4; ++i) {
        suite::Benchmark b;
        b.name = strprintf("race_%d", i);
        b.source = strprintf(R"(
            app([], L, L).
            app([X|A], B, [X|C]) :- app(A, B, C).
            rev([], []).
            rev([X|L], R) :- rev(L, T), app(T, [X], R).
            len([], 0).
            len([_|T], N) :- len(T, N1), N is N1 + 1.
            main :- rev(%s, R), len(R, N), out(R), out(N).
        )", lists[i]);
        out.push_back(std::move(b));
    }
    return out;
}

struct SweepResult
{
    std::vector<std::uint64_t> cycles;
    std::vector<std::string> outputs;
    suite::DriverStats stats;
};

SweepResult
sweepOnce(const std::string &dir, unsigned jobs)
{
    suite::DriverOptions o;
    o.jobs = jobs;
    o.cacheDir = dir;
    suite::EvalDriver d(o);
    std::vector<suite::Benchmark> benches = raceBenches();
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);

    SweepResult res;
    // Fan every (benchmark, config) evaluation across the pool; the
    // two processes-worth of drivers race on the same store keys.
    std::vector<suite::VliwRun> runs =
        d.map(benches.size(), [&](std::size_t i) {
            return d.workload(benches[i]).runVliw(mc);
        });
    for (std::size_t i = 0; i < runs.size(); ++i) {
        res.cycles.push_back(runs[i].cycles);
        res.outputs.push_back(d.workload(benches[i]).seqOutput());
    }
    res.stats = d.stats();
    return res;
}

} // namespace

TEST(StoreConcurrency, RacingDriversShareOneDirectorySafely)
{
    char tmpl[] = "/tmp/symbol-race-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;

    // Two drivers, each with a 4-thread pool, start simultaneously
    // and race to build + publish the same store entries.
    SweepResult a, b;
    std::thread ta([&] { a = sweepOnce(dir, 4); });
    std::thread tb([&] { b = sweepOnce(dir, 4); });
    ta.join();
    tb.join();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.outputs, b.outputs);

    // Whatever interleaving happened, every published file is a
    // complete, checksum-valid container.
    auto reports = suite::ArtifactStore::verifyDir(dir);
    EXPECT_GE(reports.size(), 4u);
    for (const auto &r : reports)
        EXPECT_TRUE(r.ok) << r.name << ": " << r.problem;

    // A third driver warm-starts the whole suite from the store:
    // zero rebuilds, zero misses.
    SweepResult warm = sweepOnce(dir, 4);
    EXPECT_EQ(warm.cycles, a.cycles);
    EXPECT_EQ(warm.outputs, a.outputs);
    EXPECT_EQ(warm.stats.workloadsBuilt, 0u);
    EXPECT_EQ(warm.stats.diskHits, 4u);
    EXPECT_EQ(warm.stats.store.diskMisses, 0u);

    std::error_code ec;
    fs::remove_all(dir, ec);
}
