/**
 * @file
 * Unit tests of the sequential emulator semantics on hand-assembled
 * ICI programs: word operations, memory, branches, the timing model
 * (load interlocks, taken-branch bubbles) and output decoding.
 */

#include <gtest/gtest.h>

#include "emul/machine.hh"
#include "support/diagnostics.hh"

using namespace symbol;
using bam::Tag;
using intcode::IInstr;
using intcode::IOp;

namespace
{

IInstr
movi(int rd, std::int64_t v, Tag t = Tag::Int)
{
    IInstr i;
    i.op = IOp::Movi;
    i.rd = rd;
    i.useImm = true;
    i.imm = bam::makeWord(t, v);
    return i;
}

IInstr
alu(IOp op, int rd, int ra, std::int64_t imm)
{
    IInstr i;
    i.op = op;
    i.rd = rd;
    i.ra = ra;
    i.useImm = true;
    i.imm = bam::makeWord(Tag::Int, imm);
    return i;
}

IInstr
outr(int r)
{
    IInstr i;
    i.op = IOp::Out;
    i.rb = r;
    return i;
}

IInstr
halt()
{
    IInstr i;
    i.op = IOp::Halt;
    return i;
}

intcode::Program
prog(std::vector<IInstr> code, int regs = 16)
{
    intcode::Program p;
    p.code = std::move(code);
    p.numRegs = regs;
    p.addressTaken.assign(p.code.size(), false);
    p.procEntry.assign(p.code.size(), false);
    return p;
}

} // namespace

TEST(Emul, AluOperations)
{
    auto p = prog({movi(1, 7), alu(IOp::Add, 2, 1, 5),
                   alu(IOp::Mul, 3, 2, 3), alu(IOp::Mod, 4, 3, 7),
                   alu(IOp::Sub, 5, 4, 10), outr(2), outr(3),
                   outr(4), outr(5), halt()});
    emul::Machine m(p);
    auto r = m.run();
    EXPECT_EQ(bam::wordVal(r.output[0]), 12);
    EXPECT_EQ(bam::wordVal(r.output[1]), 36);
    EXPECT_EQ(bam::wordVal(r.output[2]), 1);
    EXPECT_EQ(bam::wordVal(r.output[3]), -9);
}

TEST(Emul, ShiftAndBitOps)
{
    auto p = prog({movi(1, 0b1100), alu(IOp::And, 2, 1, 0b1010),
                   alu(IOp::Or, 3, 1, 0b0011),
                   alu(IOp::Xor, 4, 1, 0b1111),
                   alu(IOp::Sll, 5, 1, 2),
                   alu(IOp::Sra, 6, 1, 2), outr(2), outr(3),
                   outr(4), outr(5), outr(6), halt()});
    emul::Machine m(p);
    auto r = m.run();
    EXPECT_EQ(bam::wordVal(r.output[0]), 0b1000);
    EXPECT_EQ(bam::wordVal(r.output[1]), 0b1111);
    EXPECT_EQ(bam::wordVal(r.output[2]), 0b0011);
    EXPECT_EQ(bam::wordVal(r.output[3]), 0b110000);
    EXPECT_EQ(bam::wordVal(r.output[4]), 0b11);
}

TEST(Emul, DivisionByZeroThrows)
{
    auto p = prog({movi(1, 7), alu(IOp::Div, 2, 1, 0), halt()});
    emul::Machine m(p);
    EXPECT_THROW(m.run(), RuntimeError);
}

TEST(Emul, MemoryRoundtrip)
{
    using L = bam::Layout;
    IInstr st;
    st.op = IOp::St;
    st.ra = 1;
    st.off = 3;
    st.rb = 2;
    IInstr ld;
    ld.op = IOp::Ld;
    ld.rd = 4;
    ld.ra = 1;
    ld.off = 3;
    auto p = prog({movi(1, L::kHeapBase), movi(2, 77, Tag::Atm), st,
                   ld, outr(4), halt()});
    emul::Machine m(p);
    auto r = m.run();
    EXPECT_EQ(bam::wordTag(r.output[0]), Tag::Atm);
    EXPECT_EQ(bam::wordVal(r.output[0]), 77);
    EXPECT_EQ(m.mem(L::kHeapBase + 3), bam::makeWord(Tag::Atm, 77));
}

TEST(Emul, OutOfRangeAccessThrows)
{
    IInstr ld;
    ld.op = IOp::Ld;
    ld.rd = 4;
    ld.ra = 1;
    auto p = prog({movi(1, -3), ld, halt()});
    emul::Machine m(p);
    EXPECT_THROW(m.run(), RuntimeError);
}

TEST(Emul, FullWordBranchesCompareTags)
{
    IInstr b;
    b.op = IOp::Beq;
    b.ra = 1;
    b.rb = 2;
    b.target = 5;
    auto p = prog({movi(1, 5, Tag::Int), movi(2, 5, Tag::Atm), b,
                   movi(3, 0), halt(), movi(3, 1), halt()});
    emul::Machine m(p);
    m.run();
    // Same value, different tags: not equal.
    EXPECT_EQ(bam::wordVal(m.reg(3)), 0);
}

TEST(Emul, TagBranches)
{
    IInstr b;
    b.op = IOp::BtagEq;
    b.ra = 1;
    b.tag = Tag::Lst;
    b.target = 4;
    auto p = prog({movi(1, 5, Tag::Lst), b, movi(3, 0), halt(),
                   movi(3, 1), halt()});
    emul::Machine m(p);
    m.run();
    EXPECT_EQ(bam::wordVal(m.reg(3)), 1);
}

TEST(Emul, SignedComparisons)
{
    IInstr b;
    b.op = IOp::Blt;
    b.ra = 1;
    b.rb = 2;
    b.target = 5;
    auto p = prog({movi(1, -4), movi(2, 3), b, movi(3, 0), halt(),
                   movi(3, 1), halt()});
    emul::Machine m(p);
    m.run();
    EXPECT_EQ(bam::wordVal(m.reg(3)), 1);
}

TEST(Emul, JmpiFollowsCodWord)
{
    IInstr ji;
    ji.op = IOp::Jmpi;
    ji.ra = 1;
    auto p = prog({movi(1, 3, Tag::Cod), ji, halt(), movi(2, 9),
                   halt()});
    emul::Machine m(p);
    m.run();
    EXPECT_EQ(bam::wordVal(m.reg(2)), 9);
}

TEST(Emul, SequentialTimingChargesLoadInterlock)
{
    using L = bam::Layout;
    IInstr ld;
    ld.op = IOp::Ld;
    ld.rd = 2;
    ld.ra = 1;
    // Dependent use immediately after a load stalls one cycle.
    auto dependent =
        prog({movi(1, L::kHeapBase), ld, alu(IOp::Add, 3, 2, 1),
              halt()});
    // An independent instruction in between hides the latency.
    auto hidden =
        prog({movi(1, L::kHeapBase), ld, movi(4, 0),
              alu(IOp::Add, 3, 2, 1), halt()});
    emul::Machine m1(dependent), m2(hidden);
    auto r1 = m1.run();
    auto r2 = m2.run();
    EXPECT_EQ(r1.seqCycles, 5u); // 4 instructions + 1 stall
    EXPECT_EQ(r2.seqCycles, 5u); // 5 instructions, no stall
}

TEST(Emul, SequentialTimingChargesTakenBranches)
{
    IInstr j;
    j.op = IOp::Jmp;
    j.target = 2;
    auto taken = prog({movi(1, 1), j, halt()});
    auto fall = prog({movi(1, 1), movi(2, 2), halt()});
    emul::Machine m1(taken), m2(fall);
    EXPECT_EQ(m1.run().seqCycles, 4u); // 3 instrs + 1 bubble
    EXPECT_EQ(m2.run().seqCycles, 3u);
}

TEST(Emul, StepBudgetEnforced)
{
    IInstr j;
    j.op = IOp::Jmp;
    j.target = 0;
    auto p = prog({j});
    emul::Machine m(p);
    emul::RunOptions o;
    o.maxSteps = 100;
    EXPECT_THROW(m.run(o), RuntimeError);
}

// --- Trap statuses (RunOptions::trapErrors, used by the fuzz oracle) ---

TEST(Emul, TrapDivisionByZero)
{
    auto p = prog({movi(1, 7), outr(1), alu(IOp::Div, 2, 1, 0),
                   halt()});
    emul::Machine m(p);
    emul::RunOptions o;
    o.trapErrors = true;
    auto r = m.run(o);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.status, emul::RunStatus::DivByZero);
    // The partial result survives: output produced before the fault,
    // and the faulting instruction is counted.
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(bam::wordVal(r.output[0]), 7);
    EXPECT_EQ(r.instructions, 3u);
    // The destination register keeps its pre-fault value.
    EXPECT_EQ(bam::wordVal(m.reg(2)), 0);
}

TEST(Emul, TrapModuloByZero)
{
    auto p = prog({movi(1, 7), alu(IOp::Mod, 2, 1, 0), halt()});
    emul::Machine m(p);
    emul::RunOptions o;
    o.trapErrors = true;
    EXPECT_EQ(m.run(o).status, emul::RunStatus::DivByZero);
}

TEST(Emul, TrapMemFaultOnLoadAndStore)
{
    IInstr ld;
    ld.op = IOp::Ld;
    ld.rd = 4;
    ld.ra = 1;
    auto pl = prog({movi(1, -3), ld, halt()});
    emul::Machine ml(pl);
    emul::RunOptions o;
    o.trapErrors = true;
    EXPECT_EQ(ml.run(o).status, emul::RunStatus::MemFault);

    IInstr st;
    st.op = IOp::St;
    st.ra = 1;
    st.rb = 2;
    auto ps = prog({movi(1, bam::Layout::kMemWords), st, halt()});
    emul::Machine ms(ps);
    EXPECT_EQ(ms.run(o).status, emul::RunStatus::MemFault);
}

TEST(Emul, TrapBadPc)
{
    IInstr j;
    j.op = IOp::Jmp;
    j.target = 99;
    auto p = prog({j, halt()});
    emul::Machine m(p);
    emul::RunOptions o;
    o.trapErrors = true;
    EXPECT_EQ(m.run(o).status, emul::RunStatus::BadPc);
}

TEST(Emul, TrapStepLimit)
{
    IInstr j;
    j.op = IOp::Jmp;
    j.target = 0;
    auto p = prog({j});
    emul::Machine m(p);
    emul::RunOptions o;
    o.trapErrors = true;
    o.maxSteps = 100;
    auto r = m.run(o);
    EXPECT_EQ(r.status, emul::RunStatus::StepLimit);
    EXPECT_EQ(r.instructions, 100u);
}

TEST(Emul, TrapStatusOkOnCleanRun)
{
    auto p = prog({movi(1, 1), halt()});
    emul::Machine m(p);
    emul::RunOptions o;
    o.trapErrors = true;
    auto r = m.run(o);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.status, emul::RunStatus::Ok);
}

TEST(Emul, RunStatusNamesAreStable)
{
    EXPECT_STREQ(emul::runStatusName(emul::RunStatus::Ok), "ok");
    EXPECT_STREQ(emul::runStatusName(emul::RunStatus::MemFault),
                 "mem-fault");
    EXPECT_STREQ(emul::runStatusName(emul::RunStatus::DivByZero),
                 "div-by-zero");
    EXPECT_STREQ(emul::runStatusName(emul::RunStatus::BadPc),
                 "bad-pc");
    EXPECT_STREQ(emul::runStatusName(emul::RunStatus::StepLimit),
                 "step-limit");
}

TEST(Emul, DecodeOutputStream)
{
    Interner in;
    AtomId foo = in.intern("foo");
    std::vector<bam::Word> stream = {
        bam::makeWord(Tag::Lst, 0),  // [
        bam::makeWord(Tag::Int, 1),  //  1,
        bam::makeWord(Tag::Lst, 0),  //  [
        bam::makeWord(Tag::Fun, bam::functorValue(foo, 2)),
        bam::makeWord(Tag::Atm, in.nilAtom()),
        bam::makeWord(Tag::Ref, 0),
        bam::makeWord(Tag::Atm, in.nilAtom()), // ] (tail)
    };
    EXPECT_EQ(emul::decodeOutputStream(stream, &in),
              "[1,foo([],_)]\n");
}

TEST(Emul, DecodeFailureSentinel)
{
    std::vector<bam::Word> stream = {bam::makeWord(Tag::Fun, -1)};
    Interner in;
    EXPECT_EQ(emul::decodeOutputStream(stream, &in), "no\n");
}

TEST(Emul, ProfileTakenCounts)
{
    IInstr b;
    b.op = IOp::Bne;
    b.ra = 1;
    b.useImm = true;
    b.imm = bam::makeWord(Tag::Int, 0);
    b.target = 1;
    // Count down from 3: the loop branch is taken 3 times, seen 4.
    auto p = prog({movi(1, 3), alu(IOp::Sub, 1, 1, 1), b, halt()});
    p.code[2].ra = 1;
    emul::Machine m(p);
    auto r = m.run();
    EXPECT_EQ(r.profile.expect[2], 3u);
    EXPECT_EQ(r.profile.taken[2], 2u);
    EXPECT_NEAR(r.profile.probability(2), 2.0 / 3.0, 1e-9);
}
