/**
 * @file
 * Unit tests for the machine-description factory functions.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"

using namespace symbol::machine;

TEST(MachineConfig, IdealSharedDefaults)
{
    MachineConfig c = MachineConfig::idealShared(3);
    EXPECT_EQ(c.numUnits, 3);
    EXPECT_EQ(c.memPortsTotal, 1); // shared memory: one access/cycle
    EXPECT_EQ(c.memLatency, 2);
    EXPECT_EQ(c.branchPenalty, 1);
    EXPECT_FALSE(c.twoFormats);
    EXPECT_EQ(c.name, "vliw-3");
}

TEST(MachineConfig, UnboundedKeepsOneMemoryPort)
{
    MachineConfig c = MachineConfig::unboundedShared();
    EXPECT_GE(c.numUnits, 16);
    EXPECT_EQ(c.memPortsTotal, 1);
    EXPECT_FALSE(c.clustered);
}

TEST(MachineConfig, PrototypeRestrictions)
{
    MachineConfig c = MachineConfig::prototype(3);
    EXPECT_TRUE(c.twoFormats);
    EXPECT_EQ(c.memLatency, 3);    // 3-stage memory pipeline
    // 2-cycle delayed branches with the first slot compiler-filled.
    EXPECT_EQ(c.branchPenalty, 1);
    EXPECT_EQ(c.name, "symbol-3");
    EXPECT_DOUBLE_EQ(c.clockMHz, 30.0); // measured silicon clock
}

TEST(MachineConfig, EveryUnitHasAllFourSlots)
{
    MachineConfig c = MachineConfig::idealShared(1);
    EXPECT_EQ(c.aluPerUnit, 1);
    EXPECT_EQ(c.movePerUnit, 1);
    EXPECT_EQ(c.branchPerUnit, 1);
    EXPECT_EQ(c.memPerUnit, 1);
}

TEST(MachineConfig, BankParametersMatchPrototype)
{
    MachineConfig c = MachineConfig::prototype(1);
    EXPECT_EQ(c.regsPerBank, 16); // 16-register bank of §5.2
}
