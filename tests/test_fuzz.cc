/**
 * @file
 * The fuzz subsystem (src/fuzz): generator determinism, render/import
 * round-trips, oracle verdicts, campaign jobs-invariance, and — the
 * load-bearing part — proof that every injectable illegal-schedule
 * class (src/fuzz/inject.hh) is caught by the differential oracle and
 * shrunk to a few clauses by the delta-debugging shrinker.
 *
 * Shrinking re-runs the whole oracle per probe, so by default only a
 * representative sample of injectors goes through the full shrink
 * assertion; set SYMBOL_FUZZ_FULL=1 to sweep all 13 (CI's fuzz job
 * does).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fuzz/campaign.hh"
#include "fuzz/inject.hh"
#include "suite/benchmarks.hh"
#include "support/diagnostics.hh"

using namespace symbol;
using namespace symbol::fuzz;

namespace
{

/** Single-configuration oracle options: one third the cost of the
 *  full three-config differential run, plenty for injector tests. */
OracleOptions
fastOracle()
{
    OracleOptions o;
    o.configs = {defaultConfigs()[0]};
    return o;
}

/** Oracle options with @p inj applied to every compacted schedule. */
OracleOptions
faultyOracle(const FaultInjector &inj)
{
    OracleOptions o = fastOracle();
    o.injectFault = [&inj](vliw::Code &c, const FrontConfig &) {
        inj.apply(c);
    };
    return o;
}

/** A pinned pool of generated sources shared by the injector tests
 *  (generation is cheap; oracle runs are not). */
const std::vector<std::string> &
sourcePool()
{
    static const std::vector<std::string> pool = [] {
        std::vector<std::string> v;
        for (int i = 0; i < 40; ++i)
            v.push_back(
                renderProgram(generate(caseSeed(1, i))));
        return v;
    }();
    return pool;
}

/** First pool source whose compacted default-config schedule the
 *  injector can mutate ("" when none — a test failure). */
std::string
applicableSource(const FaultInjector &inj)
{
    for (const std::string &src : sourcePool()) {
        bool applied = false;
        OracleOptions probe = fastOracle();
        probe.injectFault = [&](vliw::Code &c, const FrontConfig &) {
            applied = inj.apply(c) || applied;
        };
        runOracle(src, probe);
        if (applied)
            return src;
    }
    return "";
}

} // namespace

// --- Generator ------------------------------------------------------

TEST(FuzzGen, DeterministicAcrossCalls)
{
    for (std::uint64_t seed : {1ull, 2ull, 42ull, 987654321ull}) {
        FProgram a = generate(seed);
        FProgram b = generate(seed);
        EXPECT_EQ(renderProgram(a), renderProgram(b));
        EXPECT_EQ(a.seed, seed);
        EXPECT_FALSE(a.clauses.empty());
    }
}

TEST(FuzzGen, DifferentSeedsDiffer)
{
    EXPECT_NE(renderProgram(generate(1)), renderProgram(generate(2)));
}

TEST(FuzzGen, EveryProgramDefinesMain)
{
    for (int i = 0; i < 20; ++i) {
        FProgram p = generate(caseSeed(5, i));
        bool hasMain = false;
        for (const FClause &c : p.clauses)
            hasMain |= c.head.kind == FKind::Atom &&
                       c.head.name == "main";
        EXPECT_TRUE(hasMain) << "seed " << caseSeed(5, i);
    }
}

TEST(FuzzAst, RenderImportRoundTrip)
{
    for (int i = 0; i < 10; ++i) {
        FProgram p = generate(caseSeed(3, i));
        std::string s1 = renderProgram(p);
        FProgram q = importProgram(s1);
        EXPECT_EQ(q.seed, p.seed);
        EXPECT_EQ(renderProgram(q), s1) << "seed " << p.seed;
    }
}

TEST(FuzzAst, SeedHeaderRoundTrip)
{
    FProgram p = generate(7);
    EXPECT_EQ(seedFromSource(renderProgram(p)), 7u);
    EXPECT_EQ(seedFromSource("main.\n"), 0u);
}

// --- Case seeds -----------------------------------------------------

TEST(FuzzCampaign, CaseSeedsAreDistinctAndNonZero)
{
    std::vector<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t s = caseSeed(42, i);
        EXPECT_NE(s, 0u);
        for (std::uint64_t t : seen)
            EXPECT_NE(s, t);
        seen.push_back(s);
    }
}

TEST(FuzzCampaign, CaseSeedContractIsStable)
{
    // Replay artifacts name the case seed; this pins the mixer so
    // old artifact names keep regenerating the same programs.
    EXPECT_EQ(caseSeed(42, 0), caseSeed(42, 0));
    EXPECT_NE(caseSeed(42, 0), caseSeed(43, 0));
    EXPECT_NE(caseSeed(42, 0), caseSeed(42, 1));
}

// --- Oracle ---------------------------------------------------------

TEST(FuzzOracle, CleanWindowPasses)
{
    for (int i = 0; i < 3; ++i) {
        std::string src =
            renderProgram(generate(caseSeed(7, i)));
        Verdict v = runOracle(src);
        EXPECT_TRUE(v.pass()) << v.str();
        EXPECT_EQ(v.reports.size(), defaultConfigs().size());
        for (const ConfigReport &r : v.reports) {
            EXPECT_EQ(r.seqStatus, emul::RunStatus::Ok);
            EXPECT_EQ(r.vliwStatus, vliw::SimStatus::Ok);
            EXPECT_GT(r.instructions, 0u);
            EXPECT_GE(r.seqCycles, r.instructions);
            EXPECT_LE(r.vliwCycles, r.seqCycles);
            EXPECT_EQ(r.seqText, r.vliwText);
        }
    }
}

TEST(FuzzOracle, RejectsBrokenProgram)
{
    Verdict v = runOracle("main :- undefined_predicate(1).\n",
                          fastOracle());
    EXPECT_EQ(v.cls, VerdictClass::CompileReject);
}

TEST(FuzzOracle, VerdictClassNamesAreStable)
{
    EXPECT_STREQ(verdictClassName(VerdictClass::Pass), "pass");
    EXPECT_STREQ(verdictClassName(VerdictClass::CompileReject),
                 "compile-reject");
    EXPECT_STREQ(verdictClassName(VerdictClass::OutputMismatch),
                 "output-mismatch");
    EXPECT_STREQ(verdictClassName(VerdictClass::VerifyViolation),
                 "verify-violation");
}

// --- Campaign -------------------------------------------------------

TEST(FuzzCampaign, SmallWindowAllPass)
{
    CampaignOptions o;
    o.seed = 11;
    o.count = 4;
    o.jobs = 2;
    o.oracle = fastOracle();
    CampaignResult r = runCampaign(o);
    EXPECT_EQ(r.executed, 4);
    EXPECT_EQ(r.passed, 4);
    EXPECT_TRUE(r.failures.empty());
}

TEST(FuzzCampaign, JobsValueNeverChangesResults)
{
    // Force failures with an always-applicable fault so the
    // invariance claim is about something observable.
    const FaultInjector *inj = findInjector("bad-unit");
    ASSERT_NE(inj, nullptr);
    CampaignOptions o;
    o.seed = 13;
    o.count = 6;
    o.oracle = faultyOracle(*inj);

    o.jobs = 1;
    CampaignResult a = runCampaign(o);
    o.jobs = 3;
    CampaignResult b = runCampaign(o);

    ASSERT_EQ(a.executed, b.executed);
    ASSERT_EQ(a.failures.size(), b.failures.size());
    for (std::size_t i = 0; i < a.failures.size(); ++i) {
        EXPECT_EQ(a.failures[i].caseSeed, b.failures[i].caseSeed);
        EXPECT_EQ(a.failures[i].verdict.str(),
                  b.failures[i].verdict.str());
        EXPECT_EQ(a.failures[i].source, b.failures[i].source);
    }
}

// --- Fault injection ------------------------------------------------

TEST(FuzzInject, TableCoversThirteenClasses)
{
    EXPECT_EQ(faultInjectors().size(), 13u);
    EXPECT_NE(findInjector("bad-unit"), nullptr);
    EXPECT_NE(findInjector("speculation"), nullptr);
    EXPECT_EQ(findInjector("no-such-fault"), nullptr);
}

TEST(FuzzInject, EveryInjectedFaultIsCaught)
{
    for (const FaultInjector &inj : faultInjectors()) {
        std::string src = applicableSource(inj);
        ASSERT_FALSE(src.empty())
            << inj.name << ": no pool program has the required "
            << "schedule shape";
        Verdict v = runOracle(src, faultyOracle(inj));
        EXPECT_EQ(v.cls, VerdictClass::VerifyViolation)
            << inj.name << ": " << v.str();
    }
}

TEST(FuzzShrink, InjectedFaultsShrinkToFewClauses)
{
    // Full 13-class sweep only when SYMBOL_FUZZ_FULL is set (CI's
    // fuzz job); a representative sample otherwise — shrinking
    // re-runs the oracle per probe, so the full sweep is slow.
    std::vector<const FaultInjector *> picks;
    if (std::getenv("SYMBOL_FUZZ_FULL")) {
        for (const FaultInjector &inj : faultInjectors())
            picks.push_back(&inj);
    } else {
        picks = {findInjector("bad-unit"),
                 findInjector("mem-ports"),
                 findInjector("dep-order")};
    }
    for (const FaultInjector *inj : picks) {
        ASSERT_NE(inj, nullptr);
        std::string src = applicableSource(*inj);
        ASSERT_FALSE(src.empty()) << inj->name;
        OracleOptions oopts = faultyOracle(*inj);
        ShrinkResult sr = shrink(importProgram(src), oopts);
        EXPECT_EQ(sr.verdict.cls, VerdictClass::VerifyViolation)
            << inj->name << ": " << sr.verdict.str();
        EXPECT_LE(sr.program.clauses.size(), 8u)
            << inj->name << " shrank only to:\n"
            << renderProgram(sr.program);
    }
}

TEST(FuzzShrink, ResultIsLocallyMinimal)
{
    const FaultInjector *inj = findInjector("mem-ports");
    ASSERT_NE(inj, nullptr);
    std::string src = applicableSource(*inj);
    ASSERT_FALSE(src.empty());
    OracleOptions oopts = faultyOracle(*inj);
    ShrinkResult sr = shrink(importProgram(src), oopts);
    ASSERT_TRUE(sr.minimal) << "probe budget ran out";
    // Independently re-check the 1-minimality claim: removing any
    // single clause must stop reproducing the verdict class.
    for (std::size_t k = 0; k < sr.program.clauses.size(); ++k) {
        FProgram probe = sr.program;
        probe.clauses.erase(probe.clauses.begin() +
                            static_cast<long>(k));
        Verdict v = runOracle(renderProgram(probe), oopts);
        EXPECT_NE(v.cls, sr.verdict.cls)
            << "clause " << k << " is removable";
    }
}

TEST(FuzzShrink, RejectsPassingProgram)
{
    FProgram p = generate(caseSeed(7, 0));
    EXPECT_THROW(shrink(p, fastOracle()), RuntimeError);
}

// --- suite integration ----------------------------------------------

TEST(FuzzSuite, FuzzCaseWrapsGeneratedProgram)
{
    std::string src = renderProgram(generate(99));
    suite::Benchmark b = suite::fuzzCase(99, src);
    EXPECT_EQ(b.name, "fuzz-seed-99");
    EXPECT_EQ(b.source, src);
    EXPECT_TRUE(b.expected.empty());
}
