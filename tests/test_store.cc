/**
 * @file
 * Persistent artefact store tests: cold build → disk hit, warm starts
 * that run zero parses/compiles/emulations, and the robustness
 * contract — bit-flipped, truncated, version-bumped or key-colliding
 * store files degrade to a rebuild with the right counter bumped,
 * never a crash or a wrong answer.
 */

#include <gtest/gtest.h>

#include <stdlib.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "machine/config.hh"
#include "suite/cache.hh"
#include "suite/driver.hh"
#include "suite/store.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

using namespace symbol;
namespace fs = std::filesystem;

namespace
{

suite::Benchmark
tinyBench(const std::string &name, const std::string &list)
{
    suite::Benchmark b;
    b.name = name;
    b.source = strprintf(R"(
        app([], L, L).
        app([X|A], B, [X|C]) :- app(A, B, C).
        rev([], []).
        rev([X|L], R) :- rev(L, T), app(T, [X], R).
        main :- rev(%s, R), out(R).
    )", list.c_str());
    return b;
}

} // namespace

class ArtifactStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        char tmpl[] = "/tmp/symbol-store-XXXXXX";
        ASSERT_NE(::mkdtemp(tmpl), nullptr);
        dir_ = tmpl;
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /** All .syaf files in the store (flat or sharded), sorted. */
    std::vector<std::string>
    storeFiles() const
    {
        std::vector<std::string> out;
        for (const auto &e :
             fs::recursive_directory_iterator(dir_)) {
            if (!e.is_regular_file())
                continue;
            std::string n = e.path().filename().string();
            if (n.size() > 5 && n.substr(n.size() - 5) == ".syaf")
                out.push_back(e.path().string());
        }
        std::sort(out.begin(), out.end());
        return out;
    }

    static std::string
    slurp(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    static void
    spit(const std::string &path, const std::string &bytes)
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    /** Turn a sharded store back into the flat pre-sharding layout:
     *  move every file into the root, drop the emptied shards. */
    void
    flattenStore() const
    {
        for (const std::string &path : storeFiles()) {
            fs::path p(path);
            fs::rename(p, dir_ + "/" + p.filename().string());
        }
        for (const auto &e : fs::directory_iterator(dir_)) {
            std::error_code ec;
            if (e.is_directory())
                fs::remove(e.path(), ec); // only empties go
        }
    }

    /** An EvalDriver holds a mutex and cannot move, so tests
     *  construct one in place from these options. */
    suite::DriverOptions
    driverOpts(unsigned jobs = 1) const
    {
        suite::DriverOptions o;
        o.jobs = jobs;
        o.cacheDir = dir_;
        return o;
    }

    std::string dir_;
};

TEST_F(ArtifactStoreTest, ColdBuildThenWarmDiskHit)
{
    suite::Benchmark b = tinyBench("store_roundtrip", "[1,2,3,4,5]");
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);

    suite::EvalDriver cold(driverOpts());
    ASSERT_NE(cold.store(), nullptr);
    const suite::Workload &w1 = cold.workload(b);
    suite::VliwRun r1 = w1.runVliw(mc);
    suite::DriverStats s1 = cold.stats();
    EXPECT_EQ(s1.workloadsBuilt, 1u);
    EXPECT_EQ(s1.diskHits, 0u);
    // One workload bundle + one compacted-code bundle on disk.
    EXPECT_EQ(s1.store.diskWrites, 2u);
    EXPECT_EQ(storeFiles().size(), 2u);

    // A brand-new driver on the same directory serves everything
    // from disk: zero parses, compiles or emulations.
    suite::EvalDriver warm(driverOpts());
    const suite::Workload &w2 = warm.workload(b);
    suite::VliwRun r2 = w2.runVliw(mc);
    suite::DriverStats s2 = warm.stats();
    EXPECT_EQ(s2.workloadsBuilt, 0u);
    EXPECT_EQ(s2.diskHits, 1u);
    EXPECT_EQ(s2.store.diskHits, 2u);
    EXPECT_EQ(s2.store.diskMisses, 0u);
    EXPECT_EQ(s2.store.diskWrites, 0u);
    EXPECT_GT(s2.store.bytesRead, 0u);

    // The reloaded artefacts are indistinguishable from the built
    // ones: profile, answer and the whole VLIW evaluation agree.
    EXPECT_EQ(w2.seqOutput(), w1.seqOutput());
    EXPECT_EQ(w2.instructions(), w1.instructions());
    EXPECT_EQ(w2.seqCycles(), w1.seqCycles());
    EXPECT_EQ(w2.bamCycles(), w1.bamCycles());
    EXPECT_EQ(w2.profile().expect, w1.profile().expect);
    EXPECT_EQ(w2.profile().taken, w1.profile().taken);
    EXPECT_EQ(w2.ici().str(), w1.ici().str());
    EXPECT_EQ(r2.cycles, r1.cycles);
    EXPECT_EQ(r2.wideExecuted, r1.wideExecuted);
    EXPECT_EQ(r2.opsExecuted, r1.opsExecuted);
    EXPECT_EQ(r2.speedupVsSeq, r1.speedupVsSeq);
    EXPECT_EQ(r2.output, r1.output);
}

TEST_F(ArtifactStoreTest, RenderedTableIdenticalColdVsWarmAnyJobs)
{
    std::vector<suite::Benchmark> benches = {
        tinyBench("table_a", "[1,2,3,4,5,6]"),
        tinyBench("table_b", "[9,8,7]"),
    };
    std::vector<machine::MachineConfig> configs = {
        machine::MachineConfig::idealShared(1),
        machine::MachineConfig::idealShared(3),
    };

    auto render = [&](suite::EvalDriver &d) {
        std::vector<std::vector<std::string>> rows;
        rows.push_back({"benchmark", "config", "cycles", "speedup"});
        for (const auto &b : benches)
            for (const auto &mc : configs) {
                suite::VliwRun r = d.workload(b).runVliw(mc);
                rows.push_back(
                    {b.name, mc.name,
                     strprintf("%llu", static_cast<unsigned long long>(
                                           r.cycles)),
                     strprintf("%.4f", r.speedupVsSeq)});
            }
        return renderTable(rows);
    };

    suite::EvalDriver cold(driverOpts(1));
    std::string table1 = render(cold);
    EXPECT_EQ(cold.stats().workloadsBuilt, 2u);

    suite::EvalDriver warm(driverOpts(4));
    std::string table2 = render(warm);
    EXPECT_EQ(table2, table1);
    suite::DriverStats s = warm.stats();
    EXPECT_EQ(s.workloadsBuilt, 0u);
    EXPECT_EQ(s.store.diskMisses, 0u);
}

TEST_F(ArtifactStoreTest, BitFlipDegradesToRebuild)
{
    suite::Benchmark b = tinyBench("store_bitflip", "[4,5,6,7]");
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);

    suite::VliwRun fresh;
    {
        suite::EvalDriver cold(driverOpts());
        fresh = cold.workload(b).runVliw(mc);
    }
    std::vector<std::string> files = storeFiles();
    ASSERT_EQ(files.size(), 2u);
    for (const std::string &path : files) {
        std::string bytes = slurp(path);
        bytes[bytes.size() / 2] ^= 0x10;
        spit(path, bytes);
    }

    // Both corrupted files are rejected and rebuilt; the answer and
    // the evaluation figures never change.
    suite::EvalDriver again(driverOpts());
    suite::VliwRun r = again.workload(b).runVliw(mc);
    suite::DriverStats s = again.stats();
    EXPECT_EQ(s.workloadsBuilt, 1u);
    EXPECT_EQ(s.diskHits, 0u);
    EXPECT_EQ(s.store.corruptRejected, 2u);
    EXPECT_EQ(s.store.diskWrites, 2u); // both rewritten
    EXPECT_EQ(r.cycles, fresh.cycles);
    EXPECT_EQ(r.output, fresh.output);

    // The rewritten files serve the next start from disk again.
    suite::EvalDriver warm(driverOpts());
    suite::VliwRun r2 = warm.workload(b).runVliw(mc);
    EXPECT_EQ(warm.stats().workloadsBuilt, 0u);
    EXPECT_EQ(r2.cycles, fresh.cycles);
}

TEST_F(ArtifactStoreTest, TruncationDegradesToRebuild)
{
    suite::Benchmark b = tinyBench("store_trunc", "[2,4,6,8,10]");
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);

    suite::VliwRun fresh;
    {
        suite::EvalDriver cold(driverOpts());
        fresh = cold.workload(b).runVliw(mc);
    }
    std::vector<std::string> files = storeFiles();
    ASSERT_EQ(files.size(), 2u);
    // Cut one file mid-payload and the other to a 3-byte stub that
    // does not even hold a full header.
    fs::resize_file(files[0], fs::file_size(files[0]) / 2);
    fs::resize_file(files[1], 3);

    suite::EvalDriver again(driverOpts());
    suite::VliwRun r = again.workload(b).runVliw(mc);
    suite::DriverStats s = again.stats();
    EXPECT_EQ(s.workloadsBuilt, 1u);
    EXPECT_EQ(s.store.corruptRejected, 2u);
    EXPECT_EQ(r.cycles, fresh.cycles);
    EXPECT_EQ(r.output, fresh.output);
}

TEST_F(ArtifactStoreTest, VersionBumpIsStaleNotCorrupt)
{
    suite::Benchmark b = tinyBench("store_version", "[3,1,4,1,5]");
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(b);
    }
    std::vector<std::string> files = storeFiles();
    ASSERT_EQ(files.size(), 1u);
    // Patch the format-version field (offset 4, little-endian).
    std::string bytes = slurp(files[0]);
    bytes[4] = static_cast<char>(bytes[4] + 1);
    spit(files[0], bytes);

    // The verifier calls it stale, not corrupt.
    auto reports = suite::ArtifactStore::verifyDir(dir_);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_FALSE(reports[0].ok);
    EXPECT_NE(reports[0].problem.find("stale format version"),
              std::string::npos);

    // The store counts it as version-rejected and rebuilds.
    suite::EvalDriver again(driverOpts());
    again.workload(b);
    suite::DriverStats s = again.stats();
    EXPECT_EQ(s.workloadsBuilt, 1u);
    EXPECT_EQ(s.store.versionRejected, 1u);
    EXPECT_EQ(s.store.corruptRejected, 0u);

    // And the rebuild healed the store.
    reports = suite::ArtifactStore::verifyDir(dir_);
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(reports[0].ok);
}

TEST_F(ArtifactStoreTest, KeyCollisionDegradesToRebuild)
{
    // Two sources of identical length whose (simulated) key hashes
    // collide: copy A's bundle over B's file name. The full key
    // stored inside the file exposes the lie.
    suite::Benchmark a = tinyBench("collision", "[1,1,1]");
    suite::Benchmark b = tinyBench("collision", "[2,2,2]");
    suite::WorkloadOptions opts;
    ASSERT_EQ(a.source.size(), b.source.size());

    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(a);
    }
    std::string keyA = suite::WorkloadCache::keyOf(a, opts);
    std::string keyB = suite::WorkloadCache::keyOf(b, opts);
    suite::ArtifactStore store(dir_);
    std::string pathA = store.pathFor("wl", keyA);
    std::string pathB = store.pathFor("wl", keyB);
    ASSERT_NE(pathA, pathB);
    fs::create_directories(fs::path(pathB).parent_path());
    fs::copy_file(pathA, pathB);

    suite::EvalDriver again(driverOpts());
    const suite::Workload &w = again.workload(b);
    suite::DriverStats s = again.stats();
    EXPECT_EQ(s.workloadsBuilt, 1u);
    EXPECT_EQ(s.store.keyMismatches, 1u);
    // The rebuilt answer belongs to B, not to the aliased file.
    EXPECT_NE(w.seqOutput().find("[2,2,2]"), std::string::npos);
}

TEST_F(ArtifactStoreTest, VerifyDirFlagsEveryProblem)
{
    suite::Benchmark b = tinyBench("store_verify", "[5,6]");
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(b);
    }
    // Add a garbage .syaf, a truncation victim and a non-store file.
    spit(dir_ + "/zz-garbage-v1.syaf", "this is not a container");
    spit(dir_ + "/notes.txt", "ignored");
    std::vector<std::string> files = storeFiles();

    auto reports = suite::ArtifactStore::verifyDir(dir_);
    ASSERT_EQ(reports.size(), 2u); // .txt skipped
    // Sorted by name: the real bundle first, then the garbage.
    EXPECT_TRUE(reports[0].ok);
    EXPECT_GT(reports[0].sections, 0u);
    EXPECT_FALSE(reports[1].ok);
    EXPECT_EQ(reports[1].name, "zz-garbage-v1.syaf");
    EXPECT_FALSE(reports[1].problem.empty());
}

TEST_F(ArtifactStoreTest, UnusableDirectoryDegradesToMemoryOnly)
{
    // A path that collides with a regular file cannot become a store
    // directory; the driver must keep working without one.
    std::string path = dir_ + "/occupied";
    spit(path, "file, not a directory");
    EXPECT_THROW(suite::ArtifactStore store(path), RuntimeError);

    suite::DriverOptions o;
    o.jobs = 1;
    o.cacheDir = path;
    suite::EvalDriver d(o);
    EXPECT_EQ(d.store(), nullptr);
    const suite::Workload &w =
        d.workload(tinyBench("nostore", "[7,7]"));
    EXPECT_NE(w.seqOutput().find("[7,7]"), std::string::npos);
    suite::DriverStats s = d.stats();
    EXPECT_EQ(s.workloadsBuilt, 1u);
    EXPECT_FALSE(s.hasStore);
}

TEST_F(ArtifactStoreTest, ShardedLayoutWritten)
{
    // New writes land under a 2-hex-char shard directory, not the
    // store root — the shard is the leading byte of the key hash,
    // recomputable from the file name alone.
    suite::Benchmark b = tinyBench("store_shard", "[8,6,4,2]");
    machine::MachineConfig mc =
        machine::MachineConfig::idealShared(3);
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(b).runVliw(mc);
    }
    std::vector<std::string> files = storeFiles();
    ASSERT_EQ(files.size(), 2u);
    for (const std::string &path : files) {
        fs::path p(path);
        std::string shard = p.parent_path().filename().string();
        std::string name = p.filename().string();
        EXPECT_EQ(shard.size(), 2u) << path;
        EXPECT_EQ(shard, suite::ArtifactStore::shardOf(name));
        // Nothing may sit flat in the root.
        EXPECT_EQ(p.parent_path().parent_path().string(), dir_);
    }
}

TEST_F(ArtifactStoreTest, FlatFilesReadThroughTransparently)
{
    // A store populated before sharding (files flat in the root)
    // keeps serving hits without any migration step.
    suite::Benchmark b = tinyBench("store_flat", "[1,2,4,8,16]");
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(b);
    }
    flattenStore();

    suite::EvalDriver warm(driverOpts());
    warm.workload(b);
    suite::DriverStats s = warm.stats();
    EXPECT_EQ(s.workloadsBuilt, 0u);
    EXPECT_EQ(s.diskHits, 1u);
    EXPECT_EQ(s.store.flatReadThrough, 1u);
}

TEST_F(ArtifactStoreTest, MigrateFlatMovesEverything)
{
    suite::Benchmark a = tinyBench("store_mig_a", "[1,2,3]");
    suite::Benchmark b = tinyBench("store_mig_b", "[4,5,6]");
    machine::MachineConfig mc =
        machine::MachineConfig::idealShared(3);
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(a).runVliw(mc);
        cold.workload(b).runVliw(mc);
    }
    std::vector<std::string> sharded = storeFiles();
    ASSERT_EQ(sharded.size(), 4u);
    // Flatten the store, plus droppings a crashed writer leaves.
    flattenStore();
    spit(dir_ + "/wl-0123456789abcdef-1-v1.syaf.lock", "");
    spit(dir_ + "/wl-0123456789abcdef-1-v1.syaf.tmp.42", "partial");
    spit(dir_ + "/notes.txt", "not a store file");

    suite::ArtifactStore store(dir_);
    suite::ArtifactStore::MigrateReport rep = store.migrateFlat();
    EXPECT_EQ(rep.moved, 4u);
    EXPECT_EQ(rep.replaced, 0u);
    EXPECT_EQ(rep.scrubbed, 2u);
    EXPECT_EQ(rep.errors, 0u);

    // Same sharded paths as the original writes, nothing flat, the
    // stranger file untouched.
    std::vector<std::string> after = storeFiles();
    EXPECT_EQ(after, sharded);
    EXPECT_TRUE(fs::exists(dir_ + "/notes.txt"));
    for (const auto &e : fs::directory_iterator(dir_)) {
        if (e.is_regular_file()) {
            EXPECT_EQ(e.path().filename().string(), "notes.txt");
        }
    }

    // The migrated store serves warm starts with zero rebuilds.
    suite::EvalDriver warm(driverOpts());
    warm.workload(a).runVliw(mc);
    warm.workload(b).runVliw(mc);
    suite::DriverStats s = warm.stats();
    EXPECT_EQ(s.workloadsBuilt, 0u);
    EXPECT_EQ(s.store.flatReadThrough, 0u);

    // A second migration is a no-op.
    suite::ArtifactStore::MigrateReport rep2 =
        suite::ArtifactStore(dir_).migrateFlat();
    EXPECT_EQ(rep2.moved, 0u);
    EXPECT_EQ(rep2.scrubbed, 0u);
}

TEST_F(ArtifactStoreTest, MigrateFlatPrefersShardedCopy)
{
    // When a name exists both flat and sharded (a writer raced the
    // migration), the sharded copy — the one readers prefer — wins
    // and the flat duplicate is dropped.
    suite::Benchmark b = tinyBench("store_mig_dup", "[9,9,9]");
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(b);
    }
    std::vector<std::string> files = storeFiles();
    ASSERT_EQ(files.size(), 1u);
    std::string shardedBytes = slurp(files[0]);
    // Plant a differing flat duplicate.
    spit(dir_ + "/" + fs::path(files[0]).filename().string(),
         "flat impostor");

    suite::ArtifactStore store(dir_);
    suite::ArtifactStore::MigrateReport rep = store.migrateFlat();
    EXPECT_EQ(rep.moved, 0u);
    EXPECT_EQ(rep.replaced, 1u);
    EXPECT_EQ(rep.errors, 0u);
    EXPECT_EQ(slurp(files[0]), shardedBytes);
    EXPECT_EQ(storeFiles(), files);
}

TEST_F(ArtifactStoreTest, PublishedFilesAreDurableAndComplete)
{
    // Regression note: writeFile once renamed the temp file into
    // place WITHOUT fsyncing it first. The rename made the file
    // visible atomically, but a crash (power loss) shortly after
    // could leave a zero-length or partially-persisted file at the
    // *final* name — exactly the corruption the temp-file dance is
    // supposed to prevent. The store now fsyncs the temp file
    // before the rename (store.cc, writeAllSynced). A crash cannot
    // be simulated portably in a unit test, so this pins the
    // observable half of the contract: every published file is
    // complete and verifiable the moment it appears, and the write
    // path reports no io errors.
    suite::Benchmark b = tinyBench("store_durable", "[6,7,8]");
    machine::MachineConfig mc =
        machine::MachineConfig::idealShared(3);
    {
        suite::EvalDriver cold(driverOpts());
        cold.workload(b).runVliw(mc);
        EXPECT_EQ(cold.stats().store.ioErrors, 0u);
    }
    auto reports = suite::ArtifactStore::verifyDir(dir_);
    ASSERT_EQ(reports.size(), 2u);
    for (const auto &r : reports) {
        EXPECT_TRUE(r.ok) << r.name << ": " << r.problem;
        EXPECT_GT(r.bytes, 0u);
    }
}

TEST_F(ArtifactStoreTest, StatsLineMentionsTraffic)
{
    suite::EvalDriver d(driverOpts());
    d.workload(tinyBench("statline", "[1]"));
    std::string line = d.stats().str(d.jobs());
    EXPECT_NE(line.find("[driver]"), std::string::npos);
    EXPECT_NE(line.find("[store]"), std::string::npos);
    EXPECT_NE(line.find("disk hits"), std::string::npos);
}
