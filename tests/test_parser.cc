/**
 * @file
 * Unit tests for the operator-precedence Prolog parser, checked by
 * rendering parsed terms back to canonical text.
 */

#include <gtest/gtest.h>

#include "prolog/parser.hh"

using namespace symbol;
using namespace symbol::prolog;

namespace
{

/** Parse one term and print it canonically. */
std::string
roundtrip(const std::string &src)
{
    Interner in;
    TermPool pool(in);
    TermId t = parseTerm(src + " .", pool);
    return pool.str(t);
}

} // namespace

TEST(Parser, AtomsAndIntegers)
{
    EXPECT_EQ(roundtrip("foo"), "foo");
    EXPECT_EQ(roundtrip("42"), "42");
    EXPECT_EQ(roundtrip("-7"), "-7");
}

TEST(Parser, Structures)
{
    EXPECT_EQ(roundtrip("foo(a,B,12)"), "foo(a,B_0,12)");
    EXPECT_EQ(roundtrip("f(g(h(x)))"), "f(g(h(x)))");
}

TEST(Parser, SharedVariablesGetOneId)
{
    Interner in;
    TermPool pool(in);
    TermId t = parseTerm("f(X,X,Y).", pool);
    const Term &f = pool.at(t);
    EXPECT_EQ(pool.at(f.args[0]).varId, pool.at(f.args[1]).varId);
    EXPECT_NE(pool.at(f.args[0]).varId, pool.at(f.args[2]).varId);
}

TEST(Parser, AnonymousVariablesAreFresh)
{
    Interner in;
    TermPool pool(in);
    TermId t = parseTerm("f(_,_).", pool);
    const Term &f = pool.at(t);
    EXPECT_NE(pool.at(f.args[0]).varId, pool.at(f.args[1]).varId);
}

TEST(Parser, Lists)
{
    EXPECT_EQ(roundtrip("[]"), "[]");
    EXPECT_EQ(roundtrip("[1,2,3]"), "[1,2,3]");
    EXPECT_EQ(roundtrip("[a|T]"), "[a|T_0]");
    EXPECT_EQ(roundtrip("[a,b|T]"), "[a,b|T_0]");
}

TEST(Parser, StringsBecomeCodeLists)
{
    EXPECT_EQ(roundtrip("\"AB\""), "[65,66]");
}

TEST(Parser, ArithmeticPrecedence)
{
    EXPECT_EQ(roundtrip("1+2*3"), "+(1,*(2,3))");
    EXPECT_EQ(roundtrip("(1+2)*3"), "*(+(1,2),3)");
    EXPECT_EQ(roundtrip("1-2-3"), "-(-(1,2),3)");
    EXPECT_EQ(roundtrip("2*3 mod 4"), "mod(*(2,3),4)");
}

TEST(Parser, ComparisonAndIs)
{
    EXPECT_EQ(roundtrip("X is Y+1"), "is(X_0,+(Y_1,1))");
    EXPECT_EQ(roundtrip("X =< Y"), "=<(X_0,Y_1)");
}

TEST(Parser, CommaAndNeck)
{
    EXPECT_EQ(roundtrip("a :- b, c"), ":-(a,','(b,c))");
    EXPECT_EQ(roundtrip("a, b, c"), "','(a,','(b,c))");
}

TEST(Parser, IfThenElse)
{
    EXPECT_EQ(roundtrip("(a -> b ; c)"), ";(->(a,b),c)");
}

TEST(Parser, NegationAsFailure)
{
    EXPECT_EQ(roundtrip("\\+ a"), "\\+(a)");
}

TEST(Parser, PrefixMinusOnExpression)
{
    EXPECT_EQ(roundtrip("-(X)"), "-(X_0)");
    EXPECT_EQ(roundtrip("- X"), "-(X_0)");
    EXPECT_EQ(roundtrip("1 - 2"), "-(1,2)");
}

TEST(Parser, XfxDoesNotChain)
{
    EXPECT_THROW(roundtrip("a = b = c"), CompileError);
}

TEST(Parser, ClausesAndFacts)
{
    Interner in;
    Program p = parseProgram("f(a).\ng(X) :- f(X).\n", in);
    ASSERT_EQ(p.clauses.size(), 2u);
    EXPECT_EQ(p.clauses[0].body, kNoTerm);
    EXPECT_NE(p.clauses[1].body, kNoTerm);
    EXPECT_EQ(p.clauses[1].numVars, 1);
}

TEST(Parser, Directives)
{
    Interner in;
    Program p = parseProgram(":- main.\n", in);
    EXPECT_EQ(p.clauses.size(), 0u);
    ASSERT_EQ(p.directives.size(), 1u);
    EXPECT_EQ(p.pool.str(p.directives[0]), "main");
}

TEST(Parser, HeadMustBeCallable)
{
    Interner in;
    EXPECT_THROW(parseProgram("42.\n", in), CompileError);
    EXPECT_THROW(parseProgram("X.\n", in), CompileError);
}

TEST(Parser, MissingEndThrows)
{
    Interner in;
    EXPECT_THROW(parseProgram("foo", in), CompileError);
}

TEST(Parser, CutInBody)
{
    EXPECT_EQ(roundtrip("a :- !, b"), ":-(a,','(!,b))");
}

TEST(Parser, CurlyBraces)
{
    EXPECT_EQ(roundtrip("{a,b}"), "{}(','(a,b))");
    EXPECT_EQ(roundtrip("{}"), "{}");
}

TEST(Parser, OperatorAtomAsArgument)
{
    // An operator name used as a plain argument.
    EXPECT_EQ(roundtrip("f(+,-)"), "f(+,-)");
}

TEST(Parser, DeepRightNesting)
{
    // Stress right recursion of xfy ','.
    std::string src = "a";
    for (int i = 0; i < 200; ++i)
        src += ", a";
    EXPECT_NO_THROW(roundtrip(src));
}

// --- symbolfuzz pre-audit regressions (see DESIGN.md §12) -----------
//
// Each construct below used to overflow the native stack (a hard
// crash, not an exception) or silently corrupt a value. The reader
// must reject them with a CompileError instead.

TEST(Parser, DeeplyNestedStructsRejectedNotCrash)
{
    std::string src;
    for (int i = 0; i < 2'000'000; ++i)
        src += "f(";
    src += "a";
    src.append(2'000'000, ')');
    src += ".";
    Interner in;
    EXPECT_THROW(parseProgram(src, in), CompileError);
}

TEST(Parser, DeeplyNestedParensRejectedNotCrash)
{
    std::string src(2'000'000, '(');
    src += "a";
    src.append(2'000'000, ')');
    src += ".";
    Interner in;
    EXPECT_THROW(parseProgram(src, in), CompileError);
}

TEST(Parser, DeeplyNestedListsRejectedNotCrash)
{
    std::string src(2'000'000, '[');
    src += "a";
    src.append(2'000'000, ']');
    src += ".";
    Interner in;
    EXPECT_THROW(parseProgram(src, in), CompileError);
}

TEST(Parser, DeepPrefixOperatorChainRejectedNotCrash)
{
    std::string src;
    for (int i = 0; i < 2'000'000; ++i)
        src += "- ";
    src += "1 .";
    Interner in;
    EXPECT_THROW(parseProgram(src, in), CompileError);
}

TEST(Parser, ModerateNestingStillAccepted)
{
    // The depth limit must not reject real programs: 1000 levels is
    // far beyond anything the suite or the fuzzer produces.
    std::string src;
    for (int i = 0; i < 1000; ++i)
        src += "f(";
    src += "a";
    src.append(1000, ')');
    EXPECT_NO_THROW(roundtrip(src));
}

TEST(Parser, IntegerLiteralOverflowRejected)
{
    // Used to wrap via signed overflow (UB) into a garbage value.
    Interner in;
    EXPECT_THROW(
        parseProgram("main :- out(99999999999999999999999999).", in),
        CompileError);
    // The largest representable literal still parses exactly.
    EXPECT_EQ(roundtrip("9223372036854775807"),
              "9223372036854775807");
}
