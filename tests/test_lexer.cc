/**
 * @file
 * Unit tests for the Prolog tokenizer.
 */

#include <gtest/gtest.h>

#include "prolog/lexer.hh"

using namespace symbol;
using namespace symbol::prolog;

namespace
{

std::vector<Token>
lex(const std::string &src)
{
    Lexer lx(src);
    return lx.all();
}

} // namespace

TEST(Lexer, SimpleAtomsAndEnd)
{
    auto ts = lex("foo bar.");
    ASSERT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts[0].kind, TokenKind::Atom);
    EXPECT_EQ(ts[0].text, "foo");
    EXPECT_EQ(ts[1].text, "bar");
    EXPECT_EQ(ts[2].kind, TokenKind::End);
    EXPECT_EQ(ts[3].kind, TokenKind::Eof);
}

TEST(Lexer, VariablesStartUppercaseOrUnderscore)
{
    auto ts = lex("X _foo Abc_1");
    EXPECT_EQ(ts[0].kind, TokenKind::Var);
    EXPECT_EQ(ts[1].kind, TokenKind::Var);
    EXPECT_EQ(ts[2].kind, TokenKind::Var);
    EXPECT_EQ(ts[2].text, "Abc_1");
}

TEST(Lexer, Integers)
{
    auto ts = lex("0 42 123456");
    EXPECT_EQ(ts[0].value, 0);
    EXPECT_EQ(ts[1].value, 42);
    EXPECT_EQ(ts[2].value, 123456);
}

TEST(Lexer, CharCodeLiteral)
{
    auto ts = lex("0'a 0' ");
    EXPECT_EQ(ts[0].kind, TokenKind::Int);
    EXPECT_EQ(ts[0].value, 'a');
    EXPECT_EQ(ts[1].value, ' ');
}

TEST(Lexer, SymbolicAtomsGroupGreedily)
{
    auto ts = lex("X =:= Y");
    EXPECT_EQ(ts[1].kind, TokenKind::Atom);
    EXPECT_EQ(ts[1].text, "=:=");
}

TEST(Lexer, NeckIsOneAtom)
{
    auto ts = lex("a :- b.");
    EXPECT_EQ(ts[1].text, ":-");
    EXPECT_EQ(ts[3].kind, TokenKind::End);
}

TEST(Lexer, DotBeforeLayoutTerminates)
{
    auto ts = lex("a. b.");
    EXPECT_EQ(ts[1].kind, TokenKind::End);
    EXPECT_EQ(ts[2].text, "b");
}

TEST(Lexer, DotInsideSymbolIsAtom)
{
    auto ts = lex("a .. b.");
    EXPECT_EQ(ts[1].kind, TokenKind::Atom);
    EXPECT_EQ(ts[1].text, "..");
}

TEST(Lexer, QuotedAtomWithEscapes)
{
    auto ts = lex("'hello world' 'it''s' 'a\\nb'");
    EXPECT_EQ(ts[0].text, "hello world");
    EXPECT_EQ(ts[1].text, "it's");
    EXPECT_EQ(ts[2].text, "a\nb");
    EXPECT_EQ(ts[0].kind, TokenKind::Atom);
}

TEST(Lexer, DoubleQuotedString)
{
    auto ts = lex("\"AB\"");
    EXPECT_EQ(ts[0].kind, TokenKind::Str);
    EXPECT_EQ(ts[0].text, "AB");
}

TEST(Lexer, LineAndBlockComments)
{
    auto ts = lex("a % comment\n/* block\nmore */ b.");
    EXPECT_EQ(ts[0].text, "a");
    EXPECT_EQ(ts[1].text, "b");
    EXPECT_EQ(ts[2].kind, TokenKind::End);
}

TEST(Lexer, FunctorParenFlag)
{
    auto ts = lex("foo(1) bar (2)");
    EXPECT_TRUE(ts[0].functorParen);
    EXPECT_FALSE(ts[4].functorParen);
}

TEST(Lexer, PunctuationTokens)
{
    auto ts = lex("( ) [ ] { } , |");
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ts[static_cast<std::size_t>(i)].kind, TokenKind::Punct);
}

TEST(Lexer, CutAndSemicolonAreAtoms)
{
    auto ts = lex("! ;");
    EXPECT_EQ(ts[0].kind, TokenKind::Atom);
    EXPECT_EQ(ts[0].text, "!");
    EXPECT_EQ(ts[1].text, ";");
}

TEST(Lexer, PositionsTrackLines)
{
    auto ts = lex("a\n  b");
    EXPECT_EQ(ts[0].pos.line, 1);
    EXPECT_EQ(ts[1].pos.line, 2);
    EXPECT_EQ(ts[1].pos.column, 3);
}

TEST(Lexer, UnterminatedQuoteThrows)
{
    EXPECT_THROW(lex("'abc"), CompileError);
}

TEST(Lexer, UnterminatedBlockCommentThrows)
{
    EXPECT_THROW(lex("/* abc"), CompileError);
}
