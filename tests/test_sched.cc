/**
 * @file
 * Unit and property tests of the back-end compaction machinery:
 * liveness analysis on hand-built programs, trace statistics, and
 * structural properties of the emitted wide code (resource limits,
 * branch priority ordering).
 */

#include <gtest/gtest.h>

#include "sched/compact.hh"
#include "sched/liveness.hh"
#include "suite/pipeline.hh"

using namespace symbol;
using intcode::IInstr;
using intcode::IOp;

namespace
{

IInstr
movi(int rd, std::int64_t v)
{
    IInstr i;
    i.op = IOp::Movi;
    i.rd = rd;
    i.useImm = true;
    i.imm = bam::makeWord(bam::Tag::Int, v);
    return i;
}

IInstr
mov(int rd, int ra)
{
    IInstr i;
    i.op = IOp::Mov;
    i.rd = rd;
    i.ra = ra;
    return i;
}

IInstr
beq(int ra, int rb, int target)
{
    IInstr i;
    i.op = IOp::Beq;
    i.ra = ra;
    i.rb = rb;
    i.target = target;
    return i;
}

IInstr
halt()
{
    IInstr i;
    i.op = IOp::Halt;
    return i;
}

intcode::Program
makeProgram(std::vector<IInstr> code, int regs)
{
    intcode::Program p;
    p.code = std::move(code);
    p.numRegs = regs;
    p.addressTaken.assign(p.code.size(), false);
    p.procEntry.assign(p.code.size(), false);
    return p;
}

const suite::Workload &
workload(const std::string &name)
{
    static std::map<std::string, std::unique_ptr<suite::Workload>>
        cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<suite::Workload>(
                                    suite::benchmark(name)))
                 .first;
    }
    return *it->second;
}

} // namespace

TEST(LivenessTest, UseMakesLiveIn)
{
    // 0: mov r1 <- r2 ; 1: halt
    auto p = makeProgram({mov(1, 2), halt()}, 4);
    auto cfg = intcode::Cfg::build(p);
    auto lv = sched::Liveness::compute(p, cfg);
    EXPECT_TRUE(lv.isLiveIn(0, 2));
    EXPECT_FALSE(lv.isLiveIn(0, 1));
}

TEST(LivenessTest, DefKillsLiveness)
{
    // r2 defined before its use: not live-in.
    auto p = makeProgram({movi(2, 5), mov(1, 2), halt()}, 4);
    auto cfg = intcode::Cfg::build(p);
    auto lv = sched::Liveness::compute(p, cfg);
    EXPECT_FALSE(lv.isLiveIn(0, 2));
}

TEST(LivenessTest, LivenessFlowsAcrossBranches)
{
    // 0: beq r1,r2 -> 3 ; 1: mov r5 <- r3 ; 2: halt ; 3: mov r6 <- r4
    // 4: halt.  r4 is live-in of block 0 only via the taken edge.
    auto p = makeProgram({beq(1, 2, 3), mov(5, 3), halt(),
                          mov(6, 4), halt()},
                         8);
    auto cfg = intcode::Cfg::build(p);
    auto lv = sched::Liveness::compute(p, cfg);
    EXPECT_TRUE(lv.isLiveIn(0, 3));
    EXPECT_TRUE(lv.isLiveIn(0, 4));
    int target_block = cfg.blockOf[3];
    EXPECT_TRUE(lv.isLiveIn(target_block, 4));
    EXPECT_FALSE(lv.isLiveIn(target_block, 3));
}

TEST(CompactStats, TraceModeProducesLongerRegions)
{
    const suite::Workload &w = workload("nreverse");
    sched::CompactOptions tr, bb;
    tr.traceMode = true;
    bb.traceMode = false;
    auto mc = machine::MachineConfig::idealShared(3);
    auto rt = sched::compact(w.ici(), w.profile(), mc, tr);
    auto rb = sched::compact(w.ici(), w.profile(), mc, bb);
    EXPECT_GT(rt.stats.avgDynamicLength,
              rb.stats.avgDynamicLength * 1.5);
    // Table 1 ballpark: basic blocks ~4-8 ICIs, traces ~9-20.
    EXPECT_GT(rb.stats.avgDynamicLength, 2.0);
    EXPECT_GT(rt.stats.avgDynamicLength, 6.0);
}

TEST(CompactStats, WideCodeRespectsResourceLimits)
{
    const suite::Workload &w = workload("qsort");
    for (int units : {1, 2, 3}) {
        auto mc = machine::MachineConfig::idealShared(units);
        auto cr = sched::compact(w.ici(), w.profile(), mc, {});
        for (const auto &wi : cr.code.code) {
            int mem = 0;
            std::vector<int> alu(static_cast<std::size_t>(units), 0);
            std::vector<int> mv(static_cast<std::size_t>(units), 0);
            std::vector<int> br(static_cast<std::size_t>(units), 0);
            for (const auto &op : wi.ops) {
                ASSERT_GE(op.unit, 0);
                ASSERT_LT(op.unit, units);
                auto u = static_cast<std::size_t>(op.unit);
                switch (intcode::opClass(op.instr.op)) {
                  case intcode::OpClass::Memory:
                    ++mem;
                    break;
                  case intcode::OpClass::Alu:
                    ++alu[u];
                    break;
                  case intcode::OpClass::Move:
                  case intcode::OpClass::Other:
                    ++mv[u];
                    break;
                  case intcode::OpClass::Control:
                    ++br[u];
                    break;
                }
            }
            // Shared memory: one access per cycle in total.
            EXPECT_LE(mem, 1);
            for (int u = 0; u < units; ++u) {
                EXPECT_LE(alu[static_cast<std::size_t>(u)], 1);
                EXPECT_LE(mv[static_cast<std::size_t>(u)], 1);
                EXPECT_LE(br[static_cast<std::size_t>(u)], 1);
            }
        }
    }
}

TEST(CompactStats, BranchesKeepPriorityOrder)
{
    // Within a wide instruction, any unconditional jump must be the
    // lowest-priority (last) operation.
    const suite::Workload &w = workload("serialise");
    auto mc = machine::MachineConfig::idealShared(4);
    auto cr = sched::compact(w.ici(), w.profile(), mc, {});
    for (const auto &wi : cr.code.code) {
        for (std::size_t k = 0; k + 1 < wi.ops.size(); ++k)
            EXPECT_NE(wi.ops[k].instr.op, IOp::Jmp);
    }
}

TEST(CompactStats, EntryIsValid)
{
    const suite::Workload &w = workload("conc30");
    auto mc = machine::MachineConfig::idealShared(2);
    auto cr = sched::compact(w.ici(), w.profile(), mc, {});
    EXPECT_GE(cr.code.entry, 0);
    EXPECT_LT(static_cast<std::size_t>(cr.code.entry),
              cr.code.code.size());
}

TEST(CompactStats, DuplicationBudgetBoundsCodeGrowth)
{
    const suite::Workload &w = workload("queens_8");
    sched::CompactOptions co;
    co.dupBudgetFactor = 1.0;
    auto mc = machine::MachineConfig::idealShared(2);
    auto cr = sched::compact(w.ici(), w.profile(), mc, co);
    // Copies plus originals can at most double the code (factor 1.0).
    EXPECT_LE(cr.stats.totalOps, w.ici().code.size() * 3);
}

TEST(CompactStats, PrototypeTwoFormatRestriction)
{
    // Under the SYMBOL format restriction a unit never issues a
    // control op together with an ALU op or move in one cycle.
    const suite::Workload &w = workload("times10");
    auto mc = machine::MachineConfig::prototype(3);
    auto cr = sched::compact(w.ici(), w.profile(), mc, {});
    for (const auto &wi : cr.code.code) {
        for (int u = 0; u < mc.numUnits; ++u) {
            bool ctl = false, data = false;
            for (const auto &op : wi.ops) {
                if (op.unit != u)
                    continue;
                auto cls = intcode::opClass(op.instr.op);
                if (cls == intcode::OpClass::Control)
                    ctl = true;
                if (cls == intcode::OpClass::Alu ||
                    cls == intcode::OpClass::Move)
                    data = true;
            }
            EXPECT_FALSE(ctl && data);
        }
    }
}
