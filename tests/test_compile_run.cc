/**
 * @file
 * End-to-end tests of the front half of the pipeline: Prolog source →
 * BAM → IntCode → sequential emulation, validated by decoded output.
 * Covers unification modes, indexing, backtracking, cut, arithmetic,
 * negation, if-then-else and the runtime routines.
 */

#include <gtest/gtest.h>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "prolog/parser.hh"

using namespace symbol;

namespace
{

std::string
runProgram(const std::string &src, bool indexing = true)
{
    Interner in;
    prolog::Program p = prolog::parseProgram(src, in);
    bamc::CompilerOptions co;
    co.indexing = indexing;
    bam::Module m = bamc::compile(p, co);
    EXPECT_TRUE(bam::verify(m).empty());
    intcode::Program ici = intcode::translate(m);
    emul::Machine mach(ici);
    emul::RunOptions o;
    o.maxSteps = 50'000'000;
    emul::RunResult r = mach.run(o);
    EXPECT_TRUE(r.halted);
    return mach.decodeOutput();
}

} // namespace

TEST(CompileRun, ConstantOutput)
{
    EXPECT_EQ(runProgram("main :- out(42)."), "42\n");
    EXPECT_EQ(runProgram("main :- out(hello)."), "hello\n");
}

TEST(CompileRun, FailedQueryPrintsNo)
{
    EXPECT_EQ(runProgram("main :- fail."), "no\n");
    EXPECT_EQ(runProgram("f(1).\nmain :- f(2), out(yes)."), "no\n");
}

TEST(CompileRun, GeneralUnification)
{
    EXPECT_EQ(runProgram("main :- X = 42, out(X)."), "42\n");
    EXPECT_EQ(runProgram("main :- f(X,2) = f(1,Y), out(X), out(Y)."),
              "1\n2\n");
    EXPECT_EQ(runProgram("main :- f(X) = g(X), out(yes)."), "no\n");
    EXPECT_EQ(runProgram("main :- f(1,2) = f(1), out(yes)."), "no\n");
}

TEST(CompileRun, OccursUnify)
{
    // Unifying a variable with itself must succeed, distinct
    // variables must alias.
    EXPECT_EQ(runProgram("main :- X = X, out(ok)."), "ok\n");
    EXPECT_EQ(runProgram("main :- X = Y, Y = 3, out(X)."), "3\n");
}

TEST(CompileRun, ListsAndStructures)
{
    EXPECT_EQ(runProgram("main :- X = [1,2,3], out(X)."), "[1,2,3]\n");
    EXPECT_EQ(runProgram("main :- X = f(1,g(2),[3]), out(X)."),
              "f(1,g(2),[3])\n");
    EXPECT_EQ(runProgram("main :- X = [a|T], T = [b], out(X)."),
              "[a,b]\n");
}

TEST(CompileRun, UnboundOutput)
{
    EXPECT_EQ(runProgram("main :- out(f(X,X))."), "f(_,_)\n");
}

TEST(CompileRun, HeadUnificationReadMode)
{
    const char *src = R"(
        p(f(A,B), A, B).
        main :- p(f(1,2), X, Y), out(X), out(Y).
    )";
    EXPECT_EQ(runProgram(src), "1\n2\n");
}

TEST(CompileRun, HeadUnificationWriteMode)
{
    const char *src = R"(
        p(f(A,B), A, B).
        main :- p(S, 1, 2), out(S).
    )";
    EXPECT_EQ(runProgram(src), "f(1,2)\n");
}

TEST(CompileRun, ReadWritePathsConverge)
{
    // The same clause must work whichever path head unification takes
    // (this guards the forced-home convergence logic).
    const char *src = R"(
        app([], L, L).
        app([X|A], B, [X|C]) :- app(A, B, C).
        main :- app([1,2], [3,4], R), app(P, [9], [7,8,9]),
                out(R), out(P).
    )";
    EXPECT_EQ(runProgram(src), "[1,2,3,4]\n[7,8]\n");
}

TEST(CompileRun, BacktrackingThroughFacts)
{
    const char *src = R"(
        f(1). f(2). f(3).
        main :- f(X), X > 2, out(X).
    )";
    EXPECT_EQ(runProgram(src), "3\n");
}

TEST(CompileRun, AllSolutionsViaFailLoop)
{
    const char *src = R"(
        f(1). f(2). f(3).
        main :- f(X), out(X), fail.
        main :- out(done).
    )";
    EXPECT_EQ(runProgram(src), "1\n2\n3\ndone\n");
}

TEST(CompileRun, TrailRestoresBindings)
{
    // X is bound on the first clause attempt and must be unbound
    // again before the second succeeds.
    const char *src = R"(
        p(1, a). p(2, b).
        main :- p(X, b), out(X).
    )";
    EXPECT_EQ(runProgram(src), "2\n");
}

TEST(CompileRun, CutCommitsToFirstSolution)
{
    const char *src = R"(
        f(1). f(2).
        first(X) :- f(X), !.
        main :- first(X), out(X), fail.
        main :- out(done).
    )";
    EXPECT_EQ(runProgram(src), "1\ndone\n");
}

TEST(CompileRun, CutInsideClauseBody)
{
    const char *src = R"(
        max(X, Y, X) :- X >= Y, !.
        max(_, Y, Y).
        main :- max(3, 7, A), max(9, 4, B), out(A), out(B).
    )";
    EXPECT_EQ(runProgram(src), "7\n9\n");
}

TEST(CompileRun, CutAfterCallUsesEnvironmentSlot)
{
    const char *src = R"(
        f(1). f(2). f(3).
        p(X) :- f(X), X > 1, !, out(X).
        main :- p(_), fail.
        main :- out(done).
    )";
    EXPECT_EQ(runProgram(src), "2\ndone\n");
}

TEST(CompileRun, Arithmetic)
{
    EXPECT_EQ(runProgram("main :- X is 3 + 4 * 5, out(X)."), "23\n");
    EXPECT_EQ(runProgram("main :- X is (10 - 4) // 2, out(X)."),
              "3\n");
    EXPECT_EQ(runProgram("main :- X is 17 mod 5, out(X)."), "2\n");
    EXPECT_EQ(runProgram("main :- X is -3 * 4, out(X)."), "-12\n");
    EXPECT_EQ(runProgram("main :- Y = 6, X is Y * Y, out(X)."),
              "36\n");
}

TEST(CompileRun, ArithmeticTypeFailure)
{
    // Arithmetic on a non-integer fails (backtracks) rather than
    // crashing.
    EXPECT_EQ(runProgram("f(a).\nmain :- f(Y), X is Y + 1, out(X)."),
              "no\n");
}

TEST(CompileRun, Comparisons)
{
    EXPECT_EQ(runProgram("main :- 3 < 4, 4 =< 4, 5 > 1, 5 >= 5, "
                         "3 =:= 3, 3 =\\= 4, out(ok)."),
              "ok\n");
    EXPECT_EQ(runProgram("main :- 4 < 3, out(ok)."), "no\n");
    EXPECT_EQ(runProgram("main :- 2 + 2 =:= 1 + 3, out(ok)."), "ok\n");
}

TEST(CompileRun, TypeTests)
{
    EXPECT_EQ(runProgram("main :- atom(foo), integer(3), "
                         "atomic(foo), var(_), out(ok)."),
              "ok\n");
    EXPECT_EQ(runProgram("main :- X = f(1), nonvar(X), out(ok)."),
              "ok\n");
    EXPECT_EQ(runProgram("main :- atom(f(1)), out(ok)."), "no\n");
    EXPECT_EQ(runProgram("main :- X = 1, var(X), out(ok)."), "no\n");
}

TEST(CompileRun, StructuralIdentity)
{
    EXPECT_EQ(runProgram("main :- a == a, a \\== b, out(ok)."),
              "ok\n");
    EXPECT_EQ(runProgram("main :- X = 1, Y = 1, X == Y, out(ok)."),
              "ok\n");
    EXPECT_EQ(runProgram("main :- X == Y, out(ok)."), "no\n");
}

TEST(CompileRun, NegationAsFailure)
{
    EXPECT_EQ(runProgram("f(1).\nmain :- \\+ f(2), out(ok)."), "ok\n");
    EXPECT_EQ(runProgram("f(1).\nmain :- \\+ f(1), out(ok)."), "no\n");
    EXPECT_EQ(runProgram("main :- 1 \\= 2, out(ok)."), "ok\n");
    EXPECT_EQ(runProgram("main :- f(X) \\= f(1), out(ok)."), "no\n");
}

TEST(CompileRun, NegationUndoesBindings)
{
    // \+ must not leave bindings behind.
    const char *src = R"(
        f(1).
        main :- \+ (f(X), X > 1), out(X).
    )";
    EXPECT_EQ(runProgram(src), "_\n");
}

TEST(CompileRun, IfThenElse)
{
    EXPECT_EQ(runProgram(
                  "main :- (1 < 2 -> out(then) ; out(else))."),
              "then\n");
    EXPECT_EQ(runProgram(
                  "main :- (2 < 1 -> out(then) ; out(else))."),
              "else\n");
    EXPECT_EQ(runProgram("f(3).\nmain :- (f(X) -> out(X) ; out(no))."),
              "3\n");
}

TEST(CompileRun, Disjunction)
{
    const char *src = R"(
        main :- (X = 1 ; X = 2), out(X), fail.
        main :- out(done).
    )";
    EXPECT_EQ(runProgram(src), "1\n2\ndone\n");
}

TEST(CompileRun, DeepRecursion)
{
    const char *src = R"(
        count(0) :- !.
        count(N) :- N1 is N - 1, count(N1).
        main :- count(20000), out(done).
    )";
    EXPECT_EQ(runProgram(src), "done\n");
}

TEST(CompileRun, LastCallOptimisationBoundsStack)
{
    // A deterministic loop must run in constant environment space;
    // 200k iterations would overflow the local stack without LCO.
    const char *src = R"(
        loop(0).
        loop(N) :- N > 0, N1 is N - 1, loop(N1).
        main :- loop(200000), out(done).
    )";
    EXPECT_EQ(runProgram(src), "done\n");
}

TEST(CompileRun, IndexingOffMatchesIndexingOn)
{
    const char *src = R"(
        color(red, 1). color(green, 2). color(blue, 3).
        main :- color(green, X), color(C, 3), out(X), out(C).
    )";
    EXPECT_EQ(runProgram(src, true), "2\nblue\n");
    EXPECT_EQ(runProgram(src, false), "2\nblue\n");
}

TEST(CompileRun, MixedTagDispatch)
{
    const char *src = R"(
        kind([], empty).
        kind([_|_], list).
        kind(f(_), structure).
        kind(42, answer).
        kind(foo, atom_foo).
        main :- kind([], A), kind([1], B), kind(f(0), C),
                kind(42, D), kind(foo, E),
                out(A), out(B), out(C), out(D), out(E).
    )";
    EXPECT_EQ(runProgram(src),
              "empty\nlist\nstructure\nanswer\natom_foo\n");
}

TEST(CompileRun, VariableFirstArgClauseInDispatch)
{
    const char *src = R"(
        p(1, one).
        p(X, other) :- integer(X), X > 1.
        main :- p(1, A), p(5, B), out(A), out(B).
    )";
    EXPECT_EQ(runProgram(src), "one\nother\n");
}

TEST(CompileRun, UndefinedPredicateIsCompileError)
{
    Interner in;
    prolog::Program p =
        prolog::parseProgram("main :- nosuchpred(1).", in);
    EXPECT_THROW(bamc::compile(p), CompileError);
}

TEST(CompileRun, MissingMainIsCompileError)
{
    Interner in;
    prolog::Program p = prolog::parseProgram("f(1).", in);
    EXPECT_THROW(bamc::compile(p), CompileError);
}

TEST(CompileRun, ProfileCountsMatchExecution)
{
    Interner in;
    prolog::Program p = prolog::parseProgram(
        "f(1). f(2). f(3).\nmain :- f(X), out(X), fail.\n"
        "main :- out(done).",
        in);
    bam::Module m = bamc::compile(p);
    intcode::Program ici = intcode::translate(m);
    emul::Machine mach(ici);
    emul::RunResult r = mach.run();
    std::uint64_t total = 0;
    for (std::uint64_t e : r.profile.expect)
        total += e;
    EXPECT_EQ(total, r.instructions);
    // Taken counts never exceed expects.
    for (std::size_t i = 0; i < r.profile.expect.size(); ++i)
        EXPECT_LE(r.profile.taken[i], r.profile.expect[i]);
}

TEST(CompileRun, TagBranchExpansionPreservesSemantics)
{
    Interner in;
    prolog::Program p = prolog::parseProgram(
        "app([],L,L).\napp([X|A],B,[X|C]) :- app(A,B,C).\n"
        "main :- app([1,2],[3],R), out(R).",
        in);
    bam::Module m = bamc::compile(p);
    intcode::TranslateOptions to;
    to.expandTagBranches = true;
    intcode::Program ici = intcode::translate(m, to);
    emul::Machine mach(ici);
    emul::RunResult r = mach.run();
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(mach.decodeOutput(), "[1,2,3]\n");
}
