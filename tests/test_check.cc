/**
 * @file
 * Static IR analyzer tests: every diagnostic id fires at least once
 * on a hand-built ill-formed module, clean compiler output stays
 * error-free, pass selection and --Werror behave, reports are
 * byte-identical across driver job counts, and a bit-flipped (but
 * checksum-valid) store bundle is caught by the analyzer on restore.
 */

#include <gtest/gtest.h>

#include <stdlib.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "bam/instr.hh"
#include "bam/word.hh"
#include "check/check.hh"
#include "intcode/serialize.hh"
#include "intcode/translate.hh"
#include "serialize/container.hh"
#include "suite/driver.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

using namespace symbol;
using bam::Op;
using bam::Operand;
using bam::Tag;
using check::DiagId;
using intcode::IInstr;
using intcode::IOp;
namespace fs = std::filesystem;

namespace
{

/** Well-formed skeleton: $start procedure, later a halt + $fail. */
struct Mod
{
    Interner in;
    bam::Module m{in};
    int entry;
    int fail;

    Mod()
    {
        entry = m.newLabel();
        fail = m.newLabel();
        m.entryLabel = entry;
        m.failLabel = fail;
        bam::Instr p;
        p.op = Op::Procedure;
        p.labs[0] = entry;
        m.emit(p);
    }

    void
    push(bam::Instr i)
    {
        m.emit(i);
    }

    void
    finish()
    {
        bam::Instr h;
        h.op = Op::Halt;
        m.emit(h);
        bam::Instr lf;
        lf.op = Op::Label;
        lf.labs[0] = fail;
        m.emit(lf);
        bam::Instr h2;
        h2.op = Op::Halt;
        m.emit(h2);
    }
};

/** A hand-built ICI program with consistent side tables. */
intcode::Program
icProgram(std::vector<IInstr> code, int numRegs)
{
    intcode::Program p;
    p.code = std::move(code);
    p.entry = 0;
    p.numRegs = numRegs;
    p.addressTaken.assign(p.code.size(), false);
    p.procEntry.assign(p.code.size(), false);
    return p;
}

IInstr
ic(IOp op)
{
    IInstr i;
    i.op = op;
    return i;
}

IInstr
icHalt()
{
    return ic(IOp::Halt);
}

IInstr
icMov(int rd, int ra)
{
    IInstr i = ic(IOp::Mov);
    i.rd = rd;
    i.ra = ra;
    return i;
}

IInstr
icMovi(int rd, Tag t, std::int64_t v)
{
    IInstr i = ic(IOp::Movi);
    i.rd = rd;
    i.useImm = true;
    i.imm = bam::makeWord(t, v);
    return i;
}

IInstr
icJmp(int target)
{
    IInstr i = ic(IOp::Jmp);
    i.target = target;
    return i;
}

IInstr
icJmpi(int ra)
{
    IInstr i = ic(IOp::Jmpi);
    i.ra = ra;
    return i;
}

IInstr
icBtagEq(int ra, Tag t, int target)
{
    IInstr i = ic(IOp::BtagEq);
    i.ra = ra;
    i.tag = t;
    i.target = target;
    return i;
}

IInstr
icLd(int rd, int ra)
{
    IInstr i = ic(IOp::Ld);
    i.rd = rd;
    i.ra = ra;
    return i;
}

IInstr
icOut(int rb)
{
    IInstr i = ic(IOp::Out);
    i.rb = rb;
    return i;
}

/** A trivially valid counterpart for single-IR-level tests. */
intcode::Program
trivialIc()
{
    return icProgram({icHalt()}, 1);
}

bam::Module &
trivialBam()
{
    static Mod b = [] {
        Mod x;
        x.finish();
        return x;
    }();
    return b.m;
}

/** First temporary register (the def-init pass only flags temps). */
const int kT = bam::Regs::kT0;

} // namespace

// ---------------------------------------------------------------
// Structural diagnostics, IntCode level.

TEST(CheckStructural, EmptyProgramIsMalformed)
{
    auto d = check::analyze(trivialBam(), icProgram({}, 0));
    EXPECT_GE(d.count(DiagId::IcMalformed), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, InconsistentSideTablesAreMalformed)
{
    intcode::Program p = trivialIc();
    p.addressTaken.clear();
    auto d = check::analyze(trivialBam(), p);
    EXPECT_GE(d.count(DiagId::IcMalformed), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, EntryOutOfRangeIsMalformed)
{
    intcode::Program p = trivialIc();
    p.entry = 5;
    auto d = check::analyze(trivialBam(), p);
    EXPECT_GE(d.count(DiagId::IcMalformed), 1u);
}

TEST(CheckStructural, BranchTargetOutsideProgram)
{
    auto d = check::analyze(trivialBam(), icProgram({icJmp(9)}, 1));
    EXPECT_EQ(d.count(DiagId::IcBadTarget), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, RegisterOutsideRegisterFile)
{
    auto d = check::analyze(trivialBam(),
                            icProgram({icMov(5, 3), icHalt()}, 2));
    // Both the destination and the source are out of range.
    EXPECT_EQ(d.count(DiagId::IcBadRegister), 2u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, FallsOffEndWithoutTerminator)
{
    auto d =
        check::analyze(trivialBam(), icProgram({icMov(1, 0)}, 2));
    EXPECT_EQ(d.count(DiagId::IcFallsOffEnd), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, UnreachableBlockIsAWarning)
{
    auto d = check::analyze(
        trivialBam(),
        icProgram({icJmp(2), icHalt(), icHalt()}, 1));
    EXPECT_EQ(d.count(DiagId::IcUnreachable), 1u);
    EXPECT_TRUE(d.ok()); // warning only
    EXPECT_EQ(d.warnings(), 1u);
}

// ---------------------------------------------------------------
// Structural diagnostics, BAM level.

TEST(CheckStructural, BamLabelUsedButNeverDefined)
{
    Mod b;
    bam::Instr j;
    j.op = Op::Jump;
    j.labs[0] = b.m.newLabel(); // allocated, never defined
    b.push(j);
    b.finish();
    auto d = check::analyze(b.m, trivialIc());
    EXPECT_EQ(d.count(DiagId::BamBadLabel), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, BamLabelNeverAllocated)
{
    Mod b;
    bam::Instr j;
    j.op = Op::Jump;
    j.labs[0] = 99;
    b.push(j);
    b.finish();
    auto d = check::analyze(b.m, trivialIc());
    EXPECT_GE(d.count(DiagId::BamBadLabel), 1u);
}

TEST(CheckStructural, BamDuplicateLabelDefinition)
{
    Mod b;
    int l = b.m.newLabel();
    for (int k = 0; k < 2; ++k) {
        bam::Instr lab;
        lab.op = Op::Label;
        lab.labs[0] = l;
        b.push(lab);
    }
    b.finish();
    auto d = check::analyze(b.m, trivialIc());
    EXPECT_EQ(d.count(DiagId::BamDupLabel), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, BamOperandKindMismatch)
{
    Mod b;
    bam::Instr mv;
    mv.op = Op::Move;
    mv.a = Operand::mkImm(Tag::Int, 1);
    // Destination left as None: Move needs a register there.
    b.push(mv);
    b.finish();
    auto d = check::analyze(b.m, trivialIc());
    EXPECT_EQ(d.count(DiagId::BamBadOperand), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, BamRegisterOutsideModuleRange)
{
    Mod b;
    bam::Instr mv;
    mv.op = Op::Move;
    mv.a = Operand::mkReg(3);
    mv.b = Operand::mkReg(4);
    b.push(mv);
    b.finish();
    b.m.numRegs = 2; // shrink below the registers referenced
    auto d = check::analyze(b.m, trivialIc());
    EXPECT_GE(d.count(DiagId::BamBadRegister), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckStructural, BamMissingEntryPoints)
{
    Interner in;
    bam::Module m{in};
    m.entryLabel = m.newLabel(); // allocated, never defined
    m.failLabel = m.newLabel();
    bam::Instr h;
    h.op = Op::Halt;
    m.emit(h);
    auto d = check::analyze(m, trivialIc());
    EXPECT_EQ(d.count(DiagId::BamNoEntry), 2u); // entry and fail
    EXPECT_FALSE(d.ok());
}

// ---------------------------------------------------------------
// Def-before-use.

TEST(CheckDefInit, UninitializedTemporaryReadIsAnError)
{
    auto d = check::analyze(
        trivialBam(), icProgram({icMov(1, kT), icHalt()}, kT + 1));
    EXPECT_EQ(d.count(DiagId::IcUninitRead), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckDefInit, PartiallyInitializedTemporaryIsAWarning)
{
    // The branch skips the definition of the temporary.
    auto d = check::analyze(
        trivialBam(),
        icProgram({icBtagEq(0, Tag::Ref, 2),
                   icMovi(kT, Tag::Int, 5), icMov(1, kT), icHalt()},
                  kT + 1));
    EXPECT_EQ(d.count(DiagId::IcMaybeUninit), 1u);
    EXPECT_EQ(d.count(DiagId::IcUninitRead), 0u);
    EXPECT_TRUE(d.ok());
}

TEST(CheckDefInit, MachineRegistersAreNeverFlagged)
{
    // r0 is machine state: reads of it are environment-defined.
    auto d = check::analyze(
        trivialBam(), icProgram({icMov(1, 0), icHalt()}, 2));
    EXPECT_EQ(d.count(DiagId::IcUninitRead), 0u);
    EXPECT_EQ(d.count(DiagId::IcMaybeUninit), 0u);
}

// ---------------------------------------------------------------
// Tag-domain abstract interpretation.

TEST(CheckTags, JmpiThroughNonCodRegister)
{
    auto d = check::analyze(
        trivialBam(),
        icProgram({icMovi(kT, Tag::Int, 7), icJmpi(kT)}, kT + 1));
    EXPECT_EQ(d.count(DiagId::TagBadJump), 1u);
    EXPECT_FALSE(d.ok());
}

TEST(CheckTags, LoadThroughFunOnlyBase)
{
    auto d = check::analyze(
        trivialBam(),
        icProgram({icMovi(kT, Tag::Fun, 3), icLd(1, kT), icHalt()},
                  kT + 1));
    EXPECT_EQ(d.count(DiagId::TagBadMemBase), 1u);
    EXPECT_TRUE(d.ok()); // warning only
}

TEST(CheckTags, StaticallyDecidedTagBranchIsANote)
{
    auto d = check::analyze(
        trivialBam(),
        icProgram({icMovi(kT, Tag::Atm, 1),
                   icBtagEq(kT, Tag::Lst, 3), icHalt(), icHalt()},
                  kT + 1));
    EXPECT_EQ(d.count(DiagId::TagDeadBranch), 1u);
    EXPECT_TRUE(d.ok()); // note only
}

TEST(CheckTags, BranchRefinementSilencesDominatedTest)
{
    // After btageq r,Lst the taken path knows tag(r) == Lst; a jmpi
    // there must flag (Lst is not Cod), while the untested path
    // joins to an unknown-enough set and stays quiet.
    auto d = check::analyze(
        trivialBam(),
        icProgram({icLd(kT, 0), icBtagEq(kT, Tag::Lst, 3), icHalt(),
                   icJmpi(kT)},
                  kT + 1));
    EXPECT_EQ(d.count(DiagId::TagBadJump), 1u);
}

// ---------------------------------------------------------------
// Choice-point / environment balance.

TEST(CheckBalance, DeallocateWithNoEnvironment)
{
    Mod b;
    bam::Instr d;
    d.op = Op::Deallocate;
    b.push(d);
    b.finish();
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamEnvUnderflow), 1u);
    EXPECT_FALSE(diag.ok());
}

TEST(CheckBalance, BalancedAllocateDeallocateIsClean)
{
    Mod b;
    bam::Instr a;
    a.op = Op::Allocate;
    a.off = 2;
    b.push(a);
    bam::Instr d;
    d.op = Op::Deallocate;
    b.push(d);
    b.finish();
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamEnvUnderflow), 0u);
}

TEST(CheckBalance, TrustWithNoChoicePoint)
{
    Mod b;
    bam::Instr t;
    t.op = Op::Trust;
    b.push(t);
    b.finish();
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamChoiceUnderflow), 1u);
    EXPECT_FALSE(diag.ok());
}

TEST(CheckBalance, RetryWithNoChoicePoint)
{
    Mod b;
    int r = b.m.newLabel();
    bam::Instr t;
    t.op = Op::Retry;
    t.labs[0] = r;
    b.push(t);
    b.finish();
    bam::Instr lab;
    lab.op = Op::Label;
    lab.labs[0] = r;
    b.push(lab);
    bam::Instr h;
    h.op = Op::Halt;
    b.push(h);
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamChoiceUnderflow), 1u);
}

TEST(CheckBalance, CutWithProvablyNoChoicePoint)
{
    Mod b;
    bam::Instr c;
    c.op = Op::Cut;
    c.a = Operand::mkReg(3);
    b.push(c);
    b.finish();
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamCutDead), 1u);
    EXPECT_FALSE(diag.ok());
}

TEST(CheckBalance, UnbalancedJoinIsAWarning)
{
    // One path allocates an environment, the other does not; both
    // merge at an ordinary label.
    Mod b;
    int l = b.m.newLabel();
    bam::Instr t;
    t.op = Op::TestTag;
    t.cond = bam::Cond::Eq;
    t.tag = Tag::Ref;
    t.a = Operand::mkReg(3);
    t.labs[0] = l;
    b.push(t);
    bam::Instr a;
    a.op = Op::Allocate;
    a.off = 1;
    b.push(a);
    bam::Instr lab;
    lab.op = Op::Label;
    lab.labs[0] = l;
    b.push(lab);
    b.finish();
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamUnbalancedJoin), 1u);
    EXPECT_TRUE(diag.ok()); // warning only

    // ... which --Werror promotes to a hard failure.
    check::AnalyzeOptions w;
    w.werror = true;
    auto strict = check::analyze(b.m, trivialIc(), w);
    EXPECT_FALSE(strict.ok());
    EXPECT_GE(strict.errors(), 1u);
}

TEST(CheckBalance, ProcedureEntriesAreNotFlagged)
{
    // A procedure body deallocating an environment its caller set up
    // must stay quiet: entry depth is Unknown, not 0.
    Mod b;
    int proc = b.m.newLabel();
    b.finish();
    bam::Instr p;
    p.op = Op::Procedure;
    p.labs[0] = proc;
    b.push(p);
    bam::Instr d;
    d.op = Op::Deallocate;
    b.push(d);
    bam::Instr r;
    r.op = Op::Return;
    b.push(r);
    auto diag = check::analyze(b.m, trivialIc());
    EXPECT_EQ(diag.count(DiagId::BamEnvUnderflow), 0u);
}

// ---------------------------------------------------------------
// Dead code / redundant moves (report-only).

TEST(CheckDeadCode, OverwrittenPureResultIsDead)
{
    auto d = check::analyze(
        trivialBam(),
        icProgram({icMovi(kT, Tag::Int, 1), icMovi(kT, Tag::Int, 2),
                   icOut(kT), icHalt()},
                  kT + 1));
    EXPECT_EQ(d.count(DiagId::IcDeadCode), 1u);
    EXPECT_TRUE(d.ok()); // note only
    EXPECT_EQ(d.errors(), 0u);
}

TEST(CheckDeadCode, RedundantCopyIsReported)
{
    auto d = check::analyze(
        trivialBam(),
        icProgram({icMov(1, 2), icMov(1, 2), icHalt()}, 3));
    EXPECT_EQ(d.count(DiagId::IcRedundantMove), 1u);
    EXPECT_TRUE(d.ok());
}

// ---------------------------------------------------------------
// Framework behaviour.

TEST(CheckAnalyze, CleanTranslationHasNoErrors)
{
    Mod b;
    bam::Instr mv;
    mv.op = Op::Move;
    mv.a = Operand::mkImm(Tag::Int, 1);
    mv.b = Operand::mkReg(3);
    b.push(mv);
    bam::Instr o;
    o.op = Op::Out;
    o.a = Operand::mkReg(3);
    b.push(o);
    b.finish();
    auto p = intcode::translate(b.m);
    auto d = check::analyze(b.m, p);
    EXPECT_TRUE(d.ok()) << d.str();
}

TEST(CheckAnalyze, StructuralErrorsGateDataflowPasses)
{
    // A broken program must not reach the dataflow passes (which
    // would build a CFG over it): only structural findings appear.
    auto d = check::analyze(trivialBam(), icProgram({icJmp(9)}, 1));
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.count(DiagId::IcUninitRead), 0u);
    EXPECT_EQ(d.count(DiagId::IcDeadCode), 0u);
}

TEST(CheckAnalyze, PassSelectionSkipsDeselectedAnalyses)
{
    intcode::Program p =
        icProgram({icBtagEq(0, Tag::Ref, 2), icMovi(kT, Tag::Int, 5),
                   icMov(1, kT), icHalt()},
                  kT + 1);
    check::AnalyzeOptions only;
    only.passes = check::checkPassBit(check::CheckPass::DeadCode);
    auto d = check::analyze(trivialBam(), p, only);
    EXPECT_EQ(d.count(DiagId::IcMaybeUninit), 0u);

    check::AnalyzeOptions all;
    auto full = check::analyze(trivialBam(), p, all);
    EXPECT_EQ(full.count(DiagId::IcMaybeUninit), 1u);
}

TEST(CheckAnalyze, ParsePassList)
{
    EXPECT_EQ(check::parsePassList("structural,deadcode"),
              check::checkPassBit(check::CheckPass::Structural) |
                  check::checkPassBit(check::CheckPass::DeadCode));
    EXPECT_EQ(check::parsePassList("balance"),
              check::checkPassBit(check::CheckPass::Balance));
    EXPECT_THROW(check::parsePassList("frobnicate"), CompileError);
}

TEST(CheckAnalyze, ReportIsDeterministic)
{
    intcode::Program p =
        icProgram({icMovi(kT, Tag::Int, 1), icMovi(kT, Tag::Int, 2),
                   icOut(kT), icHalt()},
                  kT + 1);
    auto a = check::analyze(trivialBam(), p);
    auto b = check::analyze(trivialBam(), p);
    EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------
// Driver integration.

TEST(CheckDriver, ReportIdenticalAcrossJobCounts)
{
    std::string r1, r4;
    {
        suite::DriverOptions o;
        o.jobs = 1;
        o.analyze = true;
        o.quiet = true;
        suite::EvalDriver d(o);
        r1 = d.workload("tak").analysis()->str();
    }
    {
        suite::DriverOptions o;
        o.jobs = 4;
        o.analyze = true;
        o.quiet = true;
        suite::EvalDriver d(o);
        r4 = d.workload("tak").analysis()->str();
    }
    EXPECT_FALSE(r1.empty());
    EXPECT_EQ(r1, r4);
}

TEST(CheckDriver, SeedWorkloadsAnalyzeClean)
{
    suite::DriverOptions o;
    o.jobs = 2;
    o.analyze = true;
    o.quiet = true;
    suite::EvalDriver d(o);
    // Throws ViolationError if any error-severity finding appears.
    EXPECT_NO_THROW(d.workload("nreverse"));
    EXPECT_NO_THROW(d.workload("qsort"));
}

// ---------------------------------------------------------------
// Store integration: a bit-flipped (re-checksummed) bundle passes
// the container validation but is caught by the analyzer.

namespace
{

/** Mirrors the (file-local) ICI section id in suite/store.cc. */
constexpr std::uint32_t kSecIci = 4;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

suite::Benchmark
tinyBench()
{
    suite::Benchmark b;
    b.name = "check_bitflip";
    b.source = R"(
        app([], L, L).
        app([X|A], B, [X|C]) :- app(A, B, C).
        main :- app([1,2], [3], R), out(R).
    )";
    return b;
}

} // namespace

TEST(CheckStore, BitFlippedBundleCaughtOnRestore)
{
    char tmpl[] = "/tmp/symbol-check-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    std::string dir = tmpl;

    suite::Benchmark bench = tinyBench();
    {
        suite::DriverOptions o;
        o.jobs = 1;
        o.quiet = true;
        o.cacheDir = dir;
        suite::EvalDriver d(o);
        ASSERT_NE(d.store(), nullptr);
        d.workload(bench); // cold build populates the store
    }

    // Corrupt one ICI register semantically: out-of-range source on
    // the first mov, then re-encode and re-checksum the container so
    // every integrity check still passes.
    std::string path;
    for (const auto &e : fs::recursive_directory_iterator(dir))
        if (e.path().extension() == ".syaf")
            path = e.path().string();
    ASSERT_FALSE(path.empty());
    serialize::Container c = serialize::unpackContainer(slurp(path));
    serialize::Reader r(c.section(kSecIci));
    intcode::Program prog = intcode::decodeProgram(r, nullptr);
    bool mutated = false;
    for (auto &i : prog.code)
        if (!mutated && i.op == IOp::Mov) {
            i.ra = prog.numRegs + 7;
            mutated = true;
        }
    ASSERT_TRUE(mutated);
    serialize::Writer w;
    intcode::encode(w, prog);
    std::vector<serialize::Section> secs;
    for (const auto &[id, payload] : c.sections)
        secs.push_back({id, id == kSecIci ? w.take() : payload});
    spit(path, serialize::packContainer(secs));

    {
        // Without the analyzer the tampered bundle restores quietly:
        // checksums are valid, nothing inspects the semantics.
        suite::DriverOptions o;
        o.jobs = 1;
        o.quiet = true;
        o.cacheDir = dir;
        suite::EvalDriver d(o);
        EXPECT_NO_THROW(d.workload(bench));
    }
    {
        // Under SYMBOL_ANALYZE the restore is re-analyzed and the
        // violation surfaces instead of degrading to a rebuild.
        suite::DriverOptions o;
        o.jobs = 1;
        o.quiet = true;
        o.cacheDir = dir;
        o.analyze = true;
        suite::EvalDriver d(o);
        EXPECT_THROW(d.workload(bench), ViolationError);
    }

    std::error_code ec;
    fs::remove_all(dir, ec);
}
