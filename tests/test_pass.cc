/**
 * @file
 * Tests of the pass framework and its instrumentation contract
 * (DESIGN.md §10): aggregation semantics, snapshot ordering,
 * thread-safety, the PassManager's record discipline, and — against
 * the real pipeline — the determinism of invocation counts and IR
 * sizes across SYMBOL_JOBS plus the reconciliation of the
 * --stats-json document with the toolchain's own statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "machine/config.hh"
#include "pass/pass.hh"
#include "suite/driver.hh"
#include "suite/pipeline.hh"
#include "suite/statsjson.hh"
#include "support/json.hh"

using namespace symbol;

namespace
{

/** Snapshot entry of @p name, or nullptr. */
const pass::PassStats *
find(const std::vector<pass::PassStats> &passes,
     const std::string &name)
{
    for (const pass::PassStats &p : passes)
        if (p.name == name)
            return &p;
    return nullptr;
}

} // namespace

TEST(Instrumentation, AggregatesUnderOneName)
{
    pass::PassInstrumentation pi;
    pi.record("parse", 0.25, 10, 20);
    pi.record("parse", 0.75, 1, 2);
    std::vector<pass::PassStats> snap = pi.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "parse");
    EXPECT_EQ(snap[0].invocations, 2u);
    EXPECT_DOUBLE_EQ(snap[0].wallSeconds, 1.0);
    EXPECT_EQ(snap[0].irIn, 11u);
    EXPECT_EQ(snap[0].irOut, 22u);
}

TEST(Instrumentation, SnapshotKeepsPipelineOrder)
{
    pass::PassInstrumentation pi;
    // Record in scrambled order, with one ad-hoc name mixed in.
    pi.record("simulate", 0.0, 0, 0);
    pi.record("custom-pass", 0.0, 0, 0);
    pi.record("parse", 0.0, 0, 0);
    pi.record("sched.ddg", 0.0, 0, 0);
    std::vector<pass::PassStats> snap = pi.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap[0].name, "parse");
    EXPECT_EQ(snap[1].name, "sched.ddg");
    EXPECT_EQ(snap[2].name, "simulate");
    // Ad-hoc names follow every canonical pass.
    EXPECT_EQ(snap[3].name, "custom-pass");
}

TEST(Instrumentation, SnapshotOmitsNeverRecordedPasses)
{
    pass::PassInstrumentation pi;
    EXPECT_TRUE(pi.snapshot().empty());
    pi.record("cfg", 0.0, 1, 1);
    EXPECT_EQ(pi.snapshot().size(), 1u);
}

TEST(Instrumentation, ResetClearsAggregates)
{
    pass::PassInstrumentation pi;
    pi.record("parse", 1.0, 1, 1);
    pi.reset();
    EXPECT_TRUE(pi.snapshot().empty());
    pi.record("parse", 0.5, 2, 3);
    std::vector<pass::PassStats> snap = pi.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].invocations, 1u);
    EXPECT_EQ(snap[0].irIn, 2u);
}

TEST(Instrumentation, ConcurrentRecordsAllLand)
{
    pass::PassInstrumentation pi;
    const int kThreads = 8, kRecords = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&pi] {
            for (int i = 0; i < kRecords; ++i)
                pi.record("profile", 0.001, 2, 3);
        });
    for (std::thread &t : threads)
        t.join();
    std::vector<pass::PassStats> snap = pi.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].invocations,
              static_cast<std::uint64_t>(kThreads) * kRecords);
    EXPECT_EQ(snap[0].irIn,
              static_cast<std::uint64_t>(kThreads) * kRecords * 2);
    EXPECT_EQ(snap[0].irOut,
              static_cast<std::uint64_t>(kThreads) * kRecords * 3);
}

TEST(PassManager, RunsInOrderAndEvaluatesIrInBeforeRun)
{
    struct Ctx
    {
        std::vector<std::string> log;
        std::uint64_t size = 5;
    };
    pass::PassInstrumentation pi;
    pass::PassManager<Ctx> pm(&pi);
    using FP = pass::FunctionPass<Ctx>;
    // The pass mutates `size`; the recorded irIn must be the value
    // from *before* run() — pipeline stages consume the previous
    // stage's artefact, then replace it.
    pm.add(std::make_unique<FP>(
        "first",
        [](Ctx &c) {
            c.log.push_back("first");
            c.size = 9;
        },
        [](const Ctx &c) { return c.size; },
        [](const Ctx &c) { return c.size; }));
    pm.add(std::make_unique<FP>(
        "second", [](Ctx &c) { c.log.push_back("second"); }));
    Ctx ctx;
    pm.run(ctx);
    EXPECT_EQ(ctx.log,
              (std::vector<std::string>{"first", "second"}));
    const pass::PassStats *first = find(pi.snapshot(), "first");
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->irIn, 5u);
    EXPECT_EQ(first->irOut, 9u);
}

TEST(PassManager, SelfInstrumentedPassIsNotDoubleCounted)
{
    struct Ctx
    {
    };
    pass::PassInstrumentation pi;
    pass::PassManager<Ctx> pm(&pi);
    using FP = pass::FunctionPass<Ctx>;
    pm.add(std::make_unique<FP>(
        "compact",
        [&pi](Ctx &) {
            pass::SubPassTimer t("sched.traces", &pi);
            {
                pass::SubPassTimer::Scope s(t);
            }
            {
                pass::SubPassTimer::Scope s(t);
            }
            t.finish(4, 2);
        },
        nullptr, nullptr, /*selfInstrumented=*/true));
    Ctx ctx;
    pm.run(ctx);
    std::vector<pass::PassStats> snap = pi.snapshot();
    // Only the sub-pass entry exists: the manager recorded nothing
    // under the wrapper's name, and the two scopes folded into one
    // invocation.
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "sched.traces");
    EXPECT_EQ(snap[0].invocations, 1u);
    EXPECT_EQ(snap[0].irIn, 4u);
    EXPECT_EQ(snap[0].irOut, 2u);
}

namespace
{

/**
 * Run a fixed task set through a driver with @p jobs workers and a
 * private instrumentation sink; return the snapshot.
 */
std::vector<pass::PassStats>
runPipelineWithJobs(unsigned jobs)
{
    pass::PassInstrumentation pi;
    suite::DriverOptions dopts;
    dopts.jobs = jobs;
    dopts.passInstr = &pi;
    suite::EvalDriver driver(dopts);
    std::vector<suite::EvalTask> tasks;
    for (const char *bench : {"divide10", "log10", "ops8"})
        for (int units : {1, 3})
            tasks.push_back(
                {bench, {}, machine::MachineConfig::idealShared(units),
                 {}});
    driver.sweep(tasks);
    return pi.snapshot();
}

} // namespace

TEST(PipelineInstrumentation, CountsAreJobsInvariant)
{
    std::vector<pass::PassStats> one = runPipelineWithJobs(1);
    std::vector<pass::PassStats> four = runPipelineWithJobs(4);
    for (const pass::PassStats &p : one) {
        // Concurrent seq-baseline misses deliberately duplicate
        // work (cheap re-emulation beats a lock around it), so
        // seq-latency is the one pass exempt from the contract.
        if (p.name == "seq-latency")
            continue;
        const pass::PassStats *q = find(four, p.name);
        ASSERT_NE(q, nullptr) << p.name;
        EXPECT_EQ(p.invocations, q->invocations) << p.name;
        EXPECT_EQ(p.irIn, q->irIn) << p.name;
        EXPECT_EQ(p.irOut, q->irOut) << p.name;
    }
    // Both directions: no pass may appear under 4 jobs only.
    for (const pass::PassStats &q : four)
        EXPECT_NE(find(one, q.name), nullptr) << q.name;
}

TEST(PipelineInstrumentation, FrontHalfRecordsEveryStage)
{
    pass::PassInstrumentation pi;
    suite::WorkloadOptions wo;
    wo.passInstr = &pi;
    suite::Workload w(suite::benchmark("divide10"), wo);
    std::vector<pass::PassStats> snap = pi.snapshot();
    for (const char *name : {"parse", "normalize", "bam-compile",
                             "intcode", "cfg", "profile"}) {
        const pass::PassStats *p = find(snap, name);
        ASSERT_NE(p, nullptr) << name;
        EXPECT_EQ(p->invocations, 1u) << name;
    }
    // IR-size contracts the report relies on.
    EXPECT_EQ(find(snap, "profile")->irOut, w.instructions());
    EXPECT_EQ(find(snap, "intcode")->irOut, w.ici().code.size());
    EXPECT_EQ(find(snap, "cfg")->irIn, w.ici().code.size());
}

TEST(PipelineInstrumentation, StatsJsonReconcilesWithToolchain)
{
    pass::PassInstrumentation pi;
    suite::DriverOptions dopts;
    dopts.jobs = 1;
    dopts.passInstr = &pi;
    suite::EvalDriver driver(dopts);
    const suite::Workload &w = driver.workload("log10", {});
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    suite::VliwRun run = w.runVliw(mc);

    json::Value doc = json::parse(
        suite::statsDocument(driver.stats(), driver.jobs(),
                             pi.snapshot())
            .dump());

    EXPECT_EQ(doc.at("driver").at("jobs").asInt(), 1);
    EXPECT_EQ(doc.at("driver").at("workloadsBuilt").asInt(), 1);
    EXPECT_FALSE(doc.has("store"));

    std::map<std::string, const json::Value *> byName;
    for (const json::Value &p : doc.at("passes").asArray())
        byName[p.at("name").asString()] = &p;

    // The document's per-pass totals must reconcile with what the
    // toolchain itself reports for the same run.
    ASSERT_TRUE(byName.count("profile"));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  byName["profile"]->at("irOut").asInt()),
              w.instructions());
    ASSERT_TRUE(byName.count("sched.emit"));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  byName["sched.emit"]->at("irOut").asInt()),
              run.stats.wideInstrs);
    ASSERT_TRUE(byName.count("sched.traces"));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  byName["sched.traces"]->at("irOut").asInt()),
              run.stats.numRegions);
    ASSERT_TRUE(byName.count("simulate"));
    EXPECT_EQ(static_cast<std::uint64_t>(
                  byName["simulate"]->at("irOut").asInt()),
              run.opsExecuted);
    // Every pass invoked at least once, and in pipeline order.
    std::vector<std::string> order;
    for (const json::Value &p : doc.at("passes").asArray()) {
        EXPECT_GE(p.at("invocations").asInt(), 1);
        order.push_back(p.at("name").asString());
    }
    const std::vector<std::string> &canon =
        pass::PassInstrumentation::pipelineOrder();
    std::size_t pos = 0;
    for (const std::string &name : order) {
        auto it = std::find(canon.begin() + static_cast<long>(pos),
                            canon.end(), name);
        ASSERT_NE(it, canon.end()) << name;
        pos = static_cast<std::size_t>(it - canon.begin()) + 1;
    }
}

TEST(PipelineInstrumentation, TimingReportListsEveryPass)
{
    pass::PassInstrumentation pi;
    pi.record("parse", 0.5, 100, 10);
    pi.record("simulate", 1.5, 10, 1000);
    std::string report = pass::timingReport(pi.snapshot());
    EXPECT_NE(report.find("parse"), std::string::npos);
    EXPECT_NE(report.find("simulate"), std::string::npos);
    EXPECT_NE(report.find("total"), std::string::npos);
    // toJson parses back with the same totals.
    json::Value arr = json::parse(pass::toJson(pi.snapshot()));
    ASSERT_EQ(arr.asArray().size(), 2u);
    EXPECT_EQ(arr.asArray()[0].at("name").asString(), "parse");
    EXPECT_EQ(arr.asArray()[0].at("irIn").asInt(), 100);
}
