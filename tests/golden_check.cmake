# Golden-stdout check for a harness binary: run BIN, capture stdout
# to OUT, and require it byte-identical to the committed GOLDEN file.
# stderr (driver/pass timing) is intentionally not captured — the
# determinism contract covers stdout only. SYMBOL_JOBS is left as the
# ambient value precisely because the bytes must not depend on it.
#
# Usage:
#   cmake -DBIN=<binary> -DGOLDEN=<ref file> -DOUT=<scratch file>
#         [-DARGS="--flag1;--flag2"] -P golden_check.cmake

set(ENV{SYMBOL_QUIET} 1)
if(DEFINED ARGS)
    separate_arguments(ARGS)
endif()
execute_process(COMMAND ${BIN} ${ARGS}
                OUTPUT_FILE ${OUT}
                RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "${BIN} exited with ${run_rc}")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${OUT} ${GOLDEN}
                RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "stdout of ${BIN} differs from ${GOLDEN}; if the change is "
        "intentional, regenerate the golden file from the new build")
endif()
