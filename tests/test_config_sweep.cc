/**
 * @file
 * Property tests: compacted code must stay semantically correct for
 * *every* point of a machine-configuration grid — unit counts,
 * latencies, branch penalties, format restrictions, port counts and
 * compaction options. Each point is validated end to end against the
 * sequential answer (runVliw throws on divergence).
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "suite/pipeline.hh"
#include "support/text.hh"

using namespace symbol;
using machine::MachineConfig;

namespace
{

const suite::Workload &
crypt()
{
    static suite::Workload w(suite::benchmark("crypt"));
    return w;
}

const suite::Workload &
serialise()
{
    static suite::Workload w(suite::benchmark("serialise"));
    return w;
}

} // namespace

struct ConfigPoint
{
    int units;
    int memLatency;
    int branchPenalty;
    bool twoFormats;
    bool traces;

    std::string
    name() const
    {
        return strprintf("u%d_m%d_b%d_%s_%s", units, memLatency,
                         branchPenalty, twoFormats ? "fmt2" : "full",
                         traces ? "tr" : "bb");
    }
};

class ConfigSweep : public ::testing::TestWithParam<ConfigPoint>
{
};

TEST_P(ConfigSweep, CorrectAcrossTheGrid)
{
    const ConfigPoint &pt = GetParam();
    MachineConfig mc = MachineConfig::idealShared(pt.units);
    mc.memLatency = pt.memLatency;
    mc.branchPenalty = pt.branchPenalty;
    mc.twoFormats = pt.twoFormats;
    sched::CompactOptions co;
    co.traceMode = pt.traces;
    suite::VliwRun r = crypt().runVliw(mc, co);
    EXPECT_EQ(r.latencyViolations, 0u);
    EXPECT_GT(r.cycles, 0u);
}

static std::vector<ConfigPoint>
grid()
{
    std::vector<ConfigPoint> pts;
    for (int units : {1, 2, 4})
        for (int mem : {2, 3})
            for (int bp : {1, 2})
                for (bool fmt2 : {false, true})
                    for (bool tr : {false, true})
                        pts.push_back({units, mem, bp, fmt2, tr});
    return pts;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweep, ::testing::ValuesIn(grid()),
    [](const ::testing::TestParamInfo<ConfigPoint> &info) {
        return info.param.name();
    });

TEST(ConfigProperties, MoreUnitsNeverHurtMuch)
{
    std::uint64_t prev = ~0ull;
    for (int units : {1, 2, 3, 4, 5}) {
        suite::VliwRun r =
            serialise().runVliw(MachineConfig::idealShared(units));
        // Allow small scheduling noise, but no systematic regression.
        EXPECT_LT(static_cast<double>(r.cycles),
                  static_cast<double>(prev) * 1.05)
            << units << " units";
        prev = std::min(prev, r.cycles);
    }
}

TEST(ConfigProperties, HigherMemoryLatencyCostsCycles)
{
    MachineConfig fast = MachineConfig::idealShared(3);
    MachineConfig slow = fast;
    slow.memLatency = 4;
    suite::VliwRun rf = serialise().runVliw(fast);
    suite::VliwRun rs = serialise().runVliw(slow);
    EXPECT_GT(rs.cycles, rf.cycles);
}

TEST(ConfigProperties, TwoFormatRestrictionCostsCycles)
{
    MachineConfig full = MachineConfig::idealShared(2);
    MachineConfig fmt2 = full;
    fmt2.twoFormats = true;
    suite::VliwRun rfull = serialise().runVliw(full);
    suite::VliwRun rfmt = serialise().runVliw(fmt2);
    EXPECT_GE(rfmt.cycles, rfull.cycles);
}

TEST(ConfigProperties, SecondMemoryPortBreaksAmdahlBound)
{
    // The paper's conclusion: only departing from the single shared
    // memory port can move the ~3x asymptote. With two ports the
    // bound doubles; measured cycles must improve.
    MachineConfig one = MachineConfig::idealShared(4);
    MachineConfig two = one;
    two.memPortsTotal = 2;
    suite::VliwRun r1 = serialise().runVliw(one);
    suite::VliwRun r2 = serialise().runVliw(two);
    EXPECT_LE(r2.cycles, r1.cycles);
}
