/**
 * @file
 * Unit tests for the BAM→IntCode translator: macro expansions,
 * label/immediate fixups, provenance, tag-branch ablation, and CFG
 * invariants on hand-built modules.
 */

#include <gtest/gtest.h>

#include "bam/instr.hh"
#include "intcode/cfg.hh"
#include "intcode/translate.hh"

using namespace symbol;
using namespace symbol::bam;
using intcode::IOp;

namespace
{

/** A module with a $start that jumps to a payload and halts. */
struct ModBuilder
{
    Interner in;
    Module m{in};
    int entry;
    int fail;

    ModBuilder()
    {
        entry = m.newLabel();
        fail = m.newLabel();
        m.entryLabel = entry;
        m.failLabel = fail;
        Instr p;
        p.op = Op::Procedure;
        p.labs[0] = entry;
        p.comment = "$start";
        m.emit(p);
    }

    void
    finish()
    {
        Instr h;
        h.op = Op::Halt;
        m.emit(h);
        Instr lf;
        lf.op = Op::Label;
        lf.labs[0] = fail;
        m.emit(lf);
        Instr h2;
        h2.op = Op::Halt;
        m.emit(h2);
    }

    void
    push(Instr i)
    {
        m.emit(i);
    }
};

int
countOp(const intcode::Program &p, IOp op)
{
    int n = 0;
    for (const auto &i : p.code)
        n += i.op == op;
    return n;
}

} // namespace

TEST(Translate, MoveBecomesMovOrMovi)
{
    ModBuilder b;
    Instr mv;
    mv.op = Op::Move;
    mv.a = Operand::mkReg(3);
    mv.b = Operand::mkReg(4);
    b.push(mv);
    Instr mi;
    mi.op = Op::Move;
    mi.a = Operand::mkImm(Tag::Int, 9);
    mi.b = Operand::mkReg(5);
    b.push(mi);
    b.finish();
    auto p = intcode::translate(b.m);
    EXPECT_EQ(countOp(p, IOp::Mov), 1);
    EXPECT_EQ(countOp(p, IOp::Movi), 1);
}

TEST(Translate, SelfMoveElided)
{
    ModBuilder b;
    Instr mv;
    mv.op = Op::Move;
    mv.a = Operand::mkReg(3);
    mv.b = Operand::mkReg(3);
    b.push(mv);
    b.finish();
    auto p = intcode::translate(b.m);
    EXPECT_EQ(countOp(p, IOp::Mov), 0);
}

TEST(Translate, DerefExpandsToChaseLoop)
{
    ModBuilder b;
    Instr d;
    d.op = Op::Deref;
    d.a = Operand::mkReg(3);
    d.b = Operand::mkReg(4);
    b.push(d);
    b.finish();
    auto p = intcode::translate(b.m);
    // mov + btagne + ld + beq + mov + jmp
    EXPECT_EQ(countOp(p, IOp::BtagNe), 1);
    EXPECT_EQ(countOp(p, IOp::Ld), 1);
    EXPECT_GE(countOp(p, IOp::Jmp), 1);
}

TEST(Translate, TagBranchAblationUsesGetTag)
{
    ModBuilder b;
    Instr t;
    t.op = Op::TestTag;
    t.cond = Cond::Eq;
    t.tag = Tag::Lst;
    t.a = Operand::mkReg(3);
    t.labs[0] = b.fail;
    b.push(t);
    b.finish();

    auto fused = intcode::translate(b.m);
    EXPECT_EQ(countOp(fused, IOp::BtagEq), 1);
    EXPECT_EQ(countOp(fused, IOp::GetTag), 0);

    intcode::TranslateOptions opts;
    opts.expandTagBranches = true;
    auto plain = intcode::translate(b.m, opts);
    EXPECT_EQ(countOp(plain, IOp::BtagEq), 0);
    EXPECT_EQ(countOp(plain, IOp::GetTag), 1);
    EXPECT_EQ(countOp(plain, IOp::Beq), 1 + countOp(fused, IOp::Beq));
}

TEST(Translate, SwitchTagIsBranchChain)
{
    ModBuilder b;
    int l[5];
    for (int k = 0; k < 5; ++k)
        l[k] = b.m.newLabel();
    Instr sw;
    sw.op = Op::SwitchTag;
    sw.a = Operand::mkReg(3);
    for (int k = 0; k < 5; ++k)
        sw.labs[k] = l[k];
    b.push(sw);
    for (int k = 0; k < 5; ++k) {
        Instr lab;
        lab.op = Op::Label;
        lab.labs[0] = l[k];
        b.push(lab);
        Instr n;
        n.op = Op::Nop;
        b.push(n);
    }
    b.finish();
    auto p = intcode::translate(b.m);
    EXPECT_EQ(countOp(p, IOp::BtagEq), 4); // 4 tests + default jmp
}

TEST(Translate, CallRecordsReturnAddressAndMarksIt)
{
    ModBuilder b;
    int callee = b.m.newLabel();
    Instr c;
    c.op = Op::Call;
    c.labs[0] = callee;
    c.off = Regs::kCp;
    b.push(c);
    Instr lab;
    lab.op = Op::Label;
    lab.labs[0] = callee;
    b.push(lab);
    Instr r;
    r.op = Op::Return;
    r.off = Regs::kCp;
    b.push(r);
    b.finish();
    auto p = intcode::translate(b.m);

    // The movi CP holds a Cod immediate pointing at the instruction
    // after the jmp, which must be flagged address-taken.
    int movi_at = -1;
    for (std::size_t k = 0; k < p.code.size(); ++k) {
        if (p.code[k].op == IOp::Movi &&
            bam::wordTag(p.code[k].imm) == Tag::Cod)
            movi_at = static_cast<int>(k);
    }
    ASSERT_GE(movi_at, 0);
    auto ret = static_cast<std::size_t>(
        bam::wordVal(p.code[static_cast<std::size_t>(movi_at)].imm));
    ASSERT_LT(ret, p.code.size());
    EXPECT_TRUE(p.addressTaken[ret]);
    EXPECT_EQ(countOp(p, IOp::Jmpi), 1);
}

TEST(Translate, TryStoresWholeChoiceFrame)
{
    ModBuilder b;
    int retry = b.m.newLabel();
    Instr t;
    t.op = Op::Try;
    t.off = 2; // save two argument registers
    t.labs[0] = retry;
    b.push(t);
    Instr lab;
    lab.op = Op::Label;
    lab.labs[0] = retry;
    b.push(lab);
    b.finish();
    auto p = intcode::translate(b.m);
    // prevB, retry, H, TR, E, CP, n + 2 args = 9 stores.
    EXPECT_EQ(countOp(p, IOp::St), 9);
}

TEST(Translate, FreshFlagSurvivesExpansion)
{
    ModBuilder b;
    Instr s;
    s.op = Op::St;
    s.a = Operand::mkReg(Regs::kH);
    s.b = Operand::mkImm(Tag::Int, 1);
    s.off = 0;
    s.fresh = true;
    b.push(s);
    b.finish();
    auto p = intcode::translate(b.m);
    bool found = false;
    for (const auto &i : p.code)
        found |= i.op == IOp::St && i.fresh;
    EXPECT_TRUE(found);
}

TEST(Translate, ProvenanceCoversEveryInstruction)
{
    ModBuilder b;
    Instr a;
    a.op = Op::Arith;
    a.alu = AluOp::Add;
    a.a = Operand::mkReg(3);
    a.b = Operand::mkImm(Tag::Int, 1);
    a.c = Operand::mkReg(4);
    b.push(a);
    b.finish();
    auto p = intcode::translate(b.m);
    for (const auto &i : p.code) {
        ASSERT_GE(i.bam, 0);
        ASSERT_LT(static_cast<std::size_t>(i.bam), p.bamOps.size());
    }
}

TEST(Translate, ArithWithTwoImmediatesMaterialises)
{
    ModBuilder b;
    Instr a;
    a.op = Op::Arith;
    a.alu = AluOp::Sub;
    a.a = Operand::mkImm(Tag::Int, 0);
    a.b = Operand::mkReg(3);
    a.c = Operand::mkReg(4);
    b.push(a);
    b.finish();
    auto p = intcode::translate(b.m);
    // The immediate first operand needs a movi.
    EXPECT_EQ(countOp(p, IOp::Movi), 1);
    EXPECT_EQ(countOp(p, IOp::Sub), 1);
}

TEST(Cfg, BlocksEndAtControlAndLabels)
{
    ModBuilder b;
    int lab = b.m.newLabel();
    Instr mv;
    mv.op = Op::Move;
    mv.a = Operand::mkImm(Tag::Int, 1);
    mv.b = Operand::mkReg(3);
    b.push(mv);
    Instr j;
    j.op = Op::Jump;
    j.labs[0] = lab;
    b.push(j);
    Instr l;
    l.op = Op::Label;
    l.labs[0] = lab;
    b.push(l);
    b.finish();
    auto p = intcode::translate(b.m);
    auto cfg = intcode::Cfg::build(p);
    for (const auto &blk : cfg.blocks) {
        for (int k = blk.first; k < blk.last; ++k)
            EXPECT_FALSE(intcode::isControl(
                p.code[static_cast<std::size_t>(k)].op));
    }
    EXPECT_EQ(cfg.blockOf[static_cast<std::size_t>(p.entry)],
              cfg.entryBlock);
}

namespace
{

/** A hand-built ICI program with consistent side tables. */
intcode::Program
rawProgram(std::vector<intcode::IInstr> code, int numRegs)
{
    intcode::Program p;
    p.code = std::move(code);
    p.entry = 0;
    p.numRegs = numRegs;
    p.addressTaken.assign(p.code.size(), false);
    p.procEntry.assign(p.code.size(), false);
    return p;
}

intcode::IInstr
rawOp(IOp op, int target = -1)
{
    intcode::IInstr i;
    i.op = op;
    i.target = target;
    return i;
}

} // namespace

TEST(Cfg, SelfLoopBlock)
{
    auto p = rawProgram({rawOp(IOp::Jmp, 0)}, 1);
    auto cfg = intcode::Cfg::build(p);
    ASSERT_EQ(cfg.blocks.size(), 1u);
    ASSERT_EQ(cfg.blocks[0].succs.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].succs[0], 0);
    ASSERT_EQ(cfg.blocks[0].preds.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].preds[0], 0);
}

TEST(Cfg, BranchTargetBlockWithNoPredecessors)
{
    // The middle block is skipped over: a "label" nothing jumps to
    // and nothing falls into.
    auto p = rawProgram({rawOp(IOp::Jmp, 2), rawOp(IOp::Halt),
                         rawOp(IOp::Halt)},
                        1);
    auto cfg = intcode::Cfg::build(p);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    int orphan = cfg.blockOf[1];
    EXPECT_TRUE(cfg.blocks[static_cast<std::size_t>(orphan)]
                    .preds.empty());
    int target = cfg.blockOf[2];
    ASSERT_EQ(cfg.blocks[static_cast<std::size_t>(target)]
                  .preds.size(),
              1u);
    EXPECT_EQ(cfg.blocks[static_cast<std::size_t>(target)].preds[0],
              cfg.blockOf[0]);
}

TEST(Cfg, BlockEndingInNonTerminatorFallsThrough)
{
    // Instruction 1 ends its block only because instruction 2 is a
    // branch target; the block must fall through to it.
    intcode::IInstr br;
    br.op = IOp::BtagEq;
    br.ra = 0;
    br.tag = Tag::Lst;
    br.target = 2;
    intcode::IInstr mv;
    mv.op = IOp::Mov;
    mv.rd = 1;
    mv.ra = 0;
    auto p = rawProgram({br, mv, rawOp(IOp::Halt)}, 2);
    auto cfg = intcode::Cfg::build(p);
    ASSERT_EQ(cfg.blocks.size(), 3u);
    int mid = cfg.blockOf[1];
    const intcode::Block &b =
        cfg.blocks[static_cast<std::size_t>(mid)];
    EXPECT_FALSE(intcode::isControl(p.code[1].op));
    EXPECT_EQ(b.last, 1);
    ASSERT_EQ(b.succs.size(), 1u);
    EXPECT_EQ(b.succs[0], cfg.blockOf[2]);
}

TEST(Cfg, BlocksPartitionTheProgram)
{
    // No empty blocks, no gaps, no overlap, consistent blockOf.
    auto p = rawProgram({rawOp(IOp::Jmp, 3), rawOp(IOp::Nop),
                         rawOp(IOp::Halt), rawOp(IOp::Jmp, 1),
                         rawOp(IOp::Halt)},
                        1);
    auto cfg = intcode::Cfg::build(p);
    int covered = 0;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const intcode::Block &blk = cfg.blocks[b];
        ASSERT_GE(blk.size(), 1);
        covered += blk.size();
        for (int k = blk.first; k <= blk.last; ++k)
            EXPECT_EQ(cfg.blockOf[static_cast<std::size_t>(k)],
                      static_cast<int>(b));
    }
    EXPECT_EQ(covered, static_cast<int>(p.code.size()));
}

TEST(Cfg, JmpiAndHaltHaveNoStaticSuccessors)
{
    intcode::IInstr ji;
    ji.op = IOp::Jmpi;
    ji.ra = 0;
    auto p = rawProgram({rawOp(IOp::Jmp, 1), ji, rawOp(IOp::Halt)},
                        1);
    p.addressTaken[1] = true; // pretend a Cod immediate points here
    auto cfg = intcode::Cfg::build(p);
    EXPECT_TRUE(cfg.blocks[static_cast<std::size_t>(cfg.blockOf[1])]
                    .addressTaken);
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const intcode::Block &blk = cfg.blocks[b];
        if (p.code[static_cast<std::size_t>(blk.last)].op ==
                IOp::Jmpi ||
            p.code[static_cast<std::size_t>(blk.last)].op ==
                IOp::Halt)
            EXPECT_TRUE(blk.succs.empty());
    }
}
