/**
 * @file
 * Unit tests of support::ThreadPool — the concurrency primitive
 * under the parallel evaluation driver. Beyond basic submit/wait,
 * these pin down the properties the driver's determinism guarantee
 * relies on: exception propagation through futures, deadlock-free
 * nested submission (work-helping get()), and a size-1 pool being
 * observationally equal to direct sequential execution. Run them
 * under -DSYMBOL_SANITIZE=thread to lock the implementation down.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "support/threadpool.hh"

using namespace symbol::support;

TEST(ThreadPool, SubmitReturnsTaskValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitVoidTaskRuns)
{
    ThreadPool pool(2);
    std::atomic<bool> ran{false};
    auto f = pool.submit([&] { ran = true; });
    f.get();
    EXPECT_TRUE(ran);
}

TEST(ThreadPool, SubmitMovesNonTrivialResults)
{
    ThreadPool pool(2);
    auto f = pool.submit([] {
        return std::string(1000, 'x');
    });
    EXPECT_EQ(f.get(), std::string(1000, 'x'));
}

TEST(ThreadPool, ManyTasksAllExecuteExactlyOnce)
{
    ThreadPool pool(4);
    const int n = 500;
    std::atomic<int> count{0};
    std::vector<ThreadPool::Future<int>> fs;
    fs.reserve(n);
    for (int i = 0; i < n; ++i)
        fs.push_back(pool.submit([&count, i] {
            ++count;
            return i;
        }));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(fs[static_cast<std::size_t>(i)].get(), i);
    EXPECT_EQ(count.load(), n);
}

TEST(ThreadPool, ExceptionPropagatesThroughGet)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(
        {
            try {
                f.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "boom");
                throw;
            }
        },
        std::runtime_error);
    // The pool survives a throwing task.
    auto g = pool.submit([] { return 1; });
    EXPECT_EQ(g.get(), 1);
}

TEST(ThreadPool, ParallelForRethrowsFirstException)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    EXPECT_THROW(parallelFor(pool, 10,
                             [&](std::size_t i) {
                                 ++ran;
                                 if (i == 4)
                                     throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    // Every task still executed — no early abandonment.
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock)
{
    // A task that waits on sub-tasks of the same pool must make
    // progress via work-helping get(), whatever the pool width.
    for (unsigned width : {1u, 2u, 4u}) {
        ThreadPool pool(width);
        auto outer = pool.submit([&pool] {
            std::vector<ThreadPool::Future<int>> subs;
            for (int i = 0; i < 8; ++i)
                subs.push_back(pool.submit([i] { return i * i; }));
            int sum = 0;
            for (auto &s : subs)
                sum += s.get();
            return sum;
        });
        EXPECT_EQ(outer.get(), 140) << "width " << width;
    }
}

TEST(ThreadPool, DeeplyNestedSubmission)
{
    ThreadPool pool(1);
    // Recursive fan-out three levels deep on a single worker: only
    // possible because blocked gets execute queued tasks themselves.
    std::function<int(int)> spawn = [&](int depth) -> int {
        if (depth == 0)
            return 1;
        auto a = pool.submit([&, depth] { return spawn(depth - 1); });
        auto b = pool.submit([&, depth] { return spawn(depth - 1); });
        return a.get() + b.get();
    };
    auto root = pool.submit([&] { return spawn(3); });
    EXPECT_EQ(root.get(), 8);
}

TEST(ThreadPool, SizeOnePoolEqualsDirectExecution)
{
    // With one worker, tasks run strictly in submission order and
    // produce exactly what direct sequential execution produces.
    std::vector<int> direct;
    for (int i = 0; i < 50; ++i)
        direct.push_back(i * 3 + 1);

    ThreadPool pool(1);
    ASSERT_EQ(pool.size(), 1u);
    std::vector<int> order;
    std::vector<ThreadPool::Future<int>> fs;
    for (int i = 0; i < 50; ++i)
        fs.push_back(pool.submit([&order, i] {
            order.push_back(i); // single worker: no race by design
            return i * 3 + 1;
        }));
    std::vector<int> pooled;
    for (auto &f : fs)
        pooled.push_back(f.get());

    EXPECT_EQ(pooled, direct);
    std::vector<int> expectedOrder(50);
    std::iota(expectedOrder.begin(), expectedOrder.end(), 0);
    EXPECT_EQ(order, expectedOrder);
}

TEST(ThreadPool, ConcurrentSubmittersAreSafe)
{
    // Several client threads hammering one pool; counts must add up.
    ThreadPool pool(4);
    const int submitters = 4, perSubmitter = 100;
    std::atomic<int> total{0};
    std::vector<std::thread> clients;
    for (int s = 0; s < submitters; ++s)
        clients.emplace_back([&] {
            std::vector<ThreadPool::Future<void>> fs;
            for (int i = 0; i < perSubmitter; ++i)
                fs.push_back(pool.submit([&total] { ++total; }));
            for (auto &f : fs)
                f.get();
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(total.load(), submitters * perSubmitter);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ++ran; });
        // No get(): the destructor must still run every task.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ThreadPool pool; // default width
    EXPECT_GE(pool.size(), 1u);
    auto f = pool.submit([] { return 7; });
    EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, DefaultThreadsValidatesJobsEnv)
{
    // Save and restore whatever the harness environment set.
    const char *saved = std::getenv("SYMBOL_JOBS");
    std::string savedVal = saved ? saved : "";

    setenv("SYMBOL_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);

    // Invalid values fall back to the hardware default instead of
    // silently becoming 0 threads or a runaway worker count.
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw ? hw : 1;
    for (const char *bad : {"0", "-4", "4x", "", "jobs",
                            "99999999999999999999"}) {
        setenv("SYMBOL_JOBS", bad, 1);
        EXPECT_EQ(ThreadPool::defaultThreads(), fallback)
            << "SYMBOL_JOBS=" << bad;
    }

    // Huge-but-parseable counts clamp to the sane maximum.
    setenv("SYMBOL_JOBS", "500000", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 1024u);

    if (saved)
        setenv("SYMBOL_JOBS", savedVal.c_str(), 1);
    else
        unsetenv("SYMBOL_JOBS");
}
