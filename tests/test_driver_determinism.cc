/**
 * @file
 * Golden determinism tests of the parallel evaluation driver: the
 * whole point of suite::EvalDriver is that fanning an evaluation
 * sweep across N threads changes wall-clock time and *nothing else*.
 * A jobs=1 driver (single worker, FIFO — observationally direct
 * execution) is the reference; a wide driver and a cache-disabled
 * driver must reproduce its VliwRun statistics bit for bit, and the
 * tables formatted from those results must be byte-identical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "machine/config.hh"
#include "suite/driver.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

using namespace symbol;
using machine::MachineConfig;

namespace
{

/** 3 benchmarks × 3 machine configurations, the golden grid. */
std::vector<suite::EvalTask>
goldenGrid()
{
    std::vector<suite::EvalTask> tasks;
    for (const char *name : {"nreverse", "qsort", "serialise"}) {
        for (int pt = 0; pt < 3; ++pt) {
            suite::EvalTask t;
            t.bench = name;
            t.config = pt == 2 ? MachineConfig::prototype(3)
                               : MachineConfig::idealShared(
                                     pt == 0 ? 1 : 3);
            tasks.push_back(t);
        }
    }
    return tasks;
}

unsigned
wideJobs()
{
    return std::max(4u, std::thread::hardware_concurrency());
}

/** Every statistic a harness could print, exact-compared. */
void
expectRunsEqual(const suite::VliwRun &a, const suite::VliwRun &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.wideExecuted, b.wideExecuted) << what;
    EXPECT_EQ(a.opsExecuted, b.opsExecuted) << what;
    EXPECT_EQ(a.latencyViolations, b.latencyViolations) << what;
    EXPECT_EQ(a.speedupVsSeq, b.speedupVsSeq) << what; // bit-exact
    EXPECT_EQ(a.output, b.output) << what;
    EXPECT_EQ(a.stats.numRegions, b.stats.numRegions) << what;
    EXPECT_EQ(a.stats.totalOps, b.stats.totalOps) << what;
    EXPECT_EQ(a.stats.wideInstrs, b.stats.wideInstrs) << what;
    EXPECT_EQ(a.stats.avgStaticLength, b.stats.avgStaticLength)
        << what;
    EXPECT_EQ(a.stats.avgDynamicLength, b.stats.avgDynamicLength)
        << what;
    EXPECT_EQ(a.stats.peakBankPressure, b.stats.peakBankPressure)
        << what;
}

/** Format a sweep the way a bench harness would. */
std::string
renderSweep(const std::vector<suite::EvalTask> &tasks,
            const std::vector<suite::VliwRun> &runs)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"benchmark", "config", "cycles", "wide", "ops",
                    "speedup", "regions"});
    for (std::size_t i = 0; i < tasks.size(); ++i)
        rows.push_back(
            {tasks[i].bench, tasks[i].config.name,
             strprintf("%llu", static_cast<unsigned long long>(
                                   runs[i].cycles)),
             strprintf("%llu", static_cast<unsigned long long>(
                                   runs[i].wideExecuted)),
             strprintf("%llu", static_cast<unsigned long long>(
                                   runs[i].opsExecuted)),
             strprintf("%.6f", runs[i].speedupVsSeq),
             strprintf("%zu", runs[i].stats.numRegions)});
    return renderTable(rows);
}

} // namespace

TEST(DriverDeterminism, WidePoolMatchesSingleWorkerBitForBit)
{
    std::vector<suite::EvalTask> tasks = goldenGrid();

    suite::DriverOptions seqOpts;
    seqOpts.jobs = 1;
    suite::EvalDriver seq(seqOpts);
    std::vector<suite::VliwRun> ref = seq.sweep(tasks);

    suite::DriverOptions parOpts;
    parOpts.jobs = wideJobs();
    suite::EvalDriver par(parOpts);
    ASSERT_EQ(par.jobs(), wideJobs());
    std::vector<suite::VliwRun> wide = par.sweep(tasks);

    ASSERT_EQ(ref.size(), tasks.size());
    ASSERT_EQ(wide.size(), tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i)
        expectRunsEqual(ref[i], wide[i],
                        tasks[i].bench + "/" + tasks[i].config.name +
                            strprintf(" (jobs=%u)", par.jobs()));

    // The harness-level guarantee: identical formatted tables.
    EXPECT_EQ(renderSweep(tasks, ref), renderSweep(tasks, wide));
}

TEST(DriverDeterminism, CacheDoesNotChangeResults)
{
    std::vector<suite::EvalTask> tasks = goldenGrid();

    suite::DriverOptions cachedOpts;
    cachedOpts.jobs = wideJobs();
    cachedOpts.useCache = true;
    suite::EvalDriver cached(cachedOpts);
    std::vector<suite::VliwRun> withCache = cached.sweep(tasks);

    suite::DriverOptions freshOpts;
    freshOpts.jobs = wideJobs();
    freshOpts.useCache = false;
    suite::EvalDriver fresh(freshOpts);
    std::vector<suite::VliwRun> withoutCache = fresh.sweep(tasks);

    for (std::size_t i = 0; i < tasks.size(); ++i)
        expectRunsEqual(withCache[i], withoutCache[i],
                        tasks[i].bench + "/" +
                            tasks[i].config.name + " (cache on/off)");

    // 3 distinct benchmarks: the cached driver builds each front end
    // once; the uncached one rebuilds it for every grid point.
    EXPECT_EQ(cached.stats().workloadsBuilt, 3u);
    EXPECT_GT(cached.stats().cacheHits, 0u);
    EXPECT_EQ(fresh.stats().workloadsBuilt, 9u);
    EXPECT_EQ(fresh.stats().cacheHits, 0u);
}

TEST(DriverDeterminism, RepeatedSweepIsFullyCached)
{
    std::vector<suite::EvalTask> tasks = goldenGrid();
    suite::EvalDriver d;
    std::vector<suite::VliwRun> first = d.sweep(tasks);
    std::uint64_t builtAfterFirst = d.stats().workloadsBuilt;
    std::vector<suite::VliwRun> second = d.sweep(tasks);
    // The second sweep re-simulates but never re-emulates: not a
    // single additional front-end build.
    EXPECT_EQ(d.stats().workloadsBuilt, builtAfterFirst);
    for (std::size_t i = 0; i < tasks.size(); ++i)
        expectRunsEqual(first[i], second[i],
                        tasks[i].bench + " (sweep 1 vs 2)");
}

TEST(DriverDeterminism, MapPreservesInputOrderAndPropagates)
{
    suite::DriverOptions opts;
    opts.jobs = wideJobs();
    suite::EvalDriver d(opts);
    std::vector<int> out =
        d.map(64, [](std::size_t i) { return static_cast<int>(i); });
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
    EXPECT_THROW(d.map(8,
                       [](std::size_t i) {
                           if (i == 3)
                               throw RuntimeError("task failure");
                           return 0;
                       }),
                 RuntimeError);
    EXPECT_GE(d.stats().tasksRun, 72u);
}
