/**
 * @file
 * Tests of the serialization layer: codec primitives, container
 * integrity against an adversarial corpus (every bit flip, every
 * truncation point, version bumps), and round-trips of all four
 * pipeline artefacts on seeded-random programs. The corruption tests
 * double as the sanitizer corpus: the decoders must reject arbitrary
 * bytes with DecodeError and never exhibit undefined behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "bam/serialize.hh"
#include "emul/serialize.hh"
#include "intcode/serialize.hh"
#include "serialize/container.hh"
#include "serialize/interner.hh"
#include "suite/pipeline.hh"
#include "support/text.hh"
#include "vliw/serialize.hh"

using namespace symbol;
using serialize::Container;
using serialize::DecodeError;
using serialize::Reader;
using serialize::Section;
using serialize::Writer;

TEST(Serialize, CodecPrimitivesRoundTrip)
{
    Writer w;
    w.u8(0);
    w.u8(255);
    w.fixed32(0xdeadbeefu);
    w.fixed64(0x0123456789abcdefull);
    const std::uint64_t us[] = {0,   1,     127,   128,
                                300, 16383, 16384, UINT64_MAX};
    for (std::uint64_t v : us)
        w.vu(v);
    const std::int64_t is[] = {0, -1, 1, -64, 64, INT64_MIN,
                               INT64_MAX};
    for (std::int64_t v : is)
        w.vi(v);
    w.b(true);
    w.b(false);
    const double ds[] = {0.0, -0.0, 1.5, -2.25e300, 5e-324,
                         std::numeric_limits<double>::infinity()};
    for (double v : ds)
        w.f64(v);
    w.str("");
    w.str(std::string("nul\0inside", 10));
    w.vecU64({1, 2, 1ull << 40});
    w.vecWord({0xfeedfacecafebeefull});
    w.vecI32({-7, 0, INT32_MIN, INT32_MAX});
    w.vecBool({true, false, true});
    w.vecU8({9, 8, 7});

    Reader r(w.bytes());
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_EQ(r.u8(), 255u);
    EXPECT_EQ(r.fixed32(), 0xdeadbeefu);
    EXPECT_EQ(r.fixed64(), 0x0123456789abcdefull);
    for (std::uint64_t v : us)
        EXPECT_EQ(r.vu(), v);
    for (std::int64_t v : is)
        EXPECT_EQ(r.vi(), v);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    for (double v : ds) {
        double got = r.f64();
        // Bit-identical, not just ==: the store promises exact
        // reload, and -0.0 == 0.0 would hide a sign loss.
        std::uint64_t wantBits, gotBits;
        std::memcpy(&wantBits, &v, 8);
        std::memcpy(&gotBits, &got, 8);
        EXPECT_EQ(gotBits, wantBits);
    }
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
    EXPECT_EQ(r.vecU64(), (std::vector<std::uint64_t>{1, 2,
                                                      1ull << 40}));
    EXPECT_EQ(r.vecWord(),
              (std::vector<std::uint64_t>{0xfeedfacecafebeefull}));
    EXPECT_EQ(r.vecI32(),
              (std::vector<int>{-7, 0, INT32_MIN, INT32_MAX}));
    EXPECT_EQ(r.vecBool(), (std::vector<bool>{true, false, true}));
    EXPECT_EQ(r.vecU8(), (std::vector<std::uint8_t>{9, 8, 7}));
    EXPECT_TRUE(r.atEnd());
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(Serialize, VliwCodeProvenanceRoundTrips)
{
    // The schedule verifier re-derives dependences from
    // MicroOp::orig / MicroOp::seq and Code::regionStart, so the
    // store must round-trip them exactly — otherwise artefacts
    // reloaded from disk could not be re-verified.
    vliw::Code c;
    vliw::WideInstr w0, w1;
    vliw::MicroOp m0;
    m0.instr.op = intcode::IOp::Movi;
    m0.instr.rd = 4;
    m0.instr.useImm = true;
    m0.instr.imm = bam::makeWord(bam::Tag::Int, 7);
    m0.unit = 1;
    m0.orig = 12;
    m0.seq = 0;
    vliw::MicroOp m1;
    m1.instr.op = intcode::IOp::Halt;
    m1.unit = 0;
    m1.orig = 13;
    m1.seq = 1;
    w0.ops = {m0};
    w1.ops = {m1};
    c.code = {w0, w1};
    c.entry = 0;
    c.numRegs = 5;
    c.regionStart = {0, 1};

    Writer w;
    vliw::encode(w, c);
    Reader r(w.bytes());
    vliw::Code d = vliw::decodeCode(r, nullptr);
    ASSERT_EQ(d.code.size(), 2u);
    ASSERT_EQ(d.code[0].ops.size(), 1u);
    EXPECT_EQ(d.code[0].ops[0].unit, 1);
    EXPECT_EQ(d.code[0].ops[0].orig, 12);
    EXPECT_EQ(d.code[0].ops[0].seq, 0);
    EXPECT_EQ(d.code[1].ops[0].orig, 13);
    EXPECT_EQ(d.code[1].ops[0].seq, 1);
    EXPECT_EQ(d.numRegs, 5);
    EXPECT_EQ(d.regionStart, (std::vector<int>{0, 1}));
}

TEST(Serialize, CodecRejectsMalformedInput)
{
    {
        // Truncated varint: continuation bit set, no next byte.
        const char bytes[] = {'\x80'};
        Reader r(bytes, 1);
        EXPECT_THROW(r.vu(), DecodeError);
    }
    {
        // Varint longer than 10 bytes.
        std::string bytes(11, '\xff');
        Reader r(bytes);
        EXPECT_THROW(r.vu(), DecodeError);
    }
    {
        // 10-byte varint whose final byte carries bits past bit 63.
        std::string bytes(9, '\xff');
        bytes += '\x7f';
        Reader r(bytes);
        EXPECT_THROW(r.vu(), DecodeError);
    }
    {
        // Boolean out of range.
        const char bytes[] = {'\x02'};
        Reader r(bytes, 1);
        EXPECT_THROW(r.b(), DecodeError);
    }
    {
        // Fixed-width read past the end.
        const char bytes[] = {1, 2, 3};
        Reader r(bytes, 3);
        EXPECT_THROW(r.fixed32(), DecodeError);
    }
    {
        // Leftover bytes are an error, not silently ignored.
        const char bytes[] = {0, 0};
        Reader r(bytes, 2);
        r.u8();
        EXPECT_THROW(r.expectEnd(), DecodeError);
    }
    {
        // int32 range check on vecI32.
        Writer w;
        w.vu(1);
        w.vi(static_cast<std::int64_t>(INT32_MAX) + 1);
        Reader r(w.bytes());
        EXPECT_THROW(r.vecI32(), DecodeError);
    }
}

TEST(Serialize, CodecCountGuardBlocksHugeAllocations)
{
    {
        // A string length far beyond the payload must be rejected
        // before any allocation happens.
        Writer w;
        w.vu(1ull << 40);
        Reader r(w.bytes());
        EXPECT_THROW(r.str(), DecodeError);
    }
    {
        // Overflow probe: 2^61 * 8 bytes wraps to 0 in 64 bits, so a
        // naive n*elemSize <= remaining check would pass and then
        // attempt a multi-exabyte allocation.
        Writer w;
        w.vu(1ull << 61);
        Reader r(w.bytes());
        EXPECT_THROW(r.vecWord(), DecodeError);
    }
    {
        Writer w;
        w.vu(UINT64_MAX);
        Reader r(w.bytes());
        EXPECT_THROW(r.vecU64(), DecodeError);
    }
}

namespace
{

std::vector<Section>
sampleSections()
{
    return {{1, "the cache key rides in section one"},
            {2, ""},
            {7, std::string("\x00\x01\x02\xff binary", 11)}};
}

} // namespace

TEST(Serialize, ContainerRoundTrip)
{
    std::string bytes = serialize::packContainer(sampleSections());
    Container c = serialize::unpackContainer(bytes);
    EXPECT_EQ(c.version, serialize::kFormatVersion);
    ASSERT_EQ(c.sections.size(), 3u);
    for (const Section &s : sampleSections())
        EXPECT_EQ(c.section(s.id), s.payload);
    EXPECT_THROW(c.section(99), DecodeError);

    serialize::ContainerCheck check = serialize::checkContainer(bytes);
    EXPECT_TRUE(check.ok);
    EXPECT_EQ(check.version, serialize::kFormatVersion);
    EXPECT_EQ(check.sections, 3u);
    EXPECT_EQ(check.bytes, bytes.size());
}

TEST(Serialize, ContainerRejectsEveryBitFlip)
{
    // Exhaustive adversarial corpus: flipping ANY single bit of a
    // container must be detected — magic, version, section count,
    // table checksum, table entries and payloads are all covered.
    std::string good = serialize::packContainer(sampleSections());
    ASSERT_NO_THROW(serialize::unpackContainer(good));
    for (std::size_t i = 0; i < good.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = good;
            bad[i] = static_cast<char>(bad[i] ^ (1 << bit));
            EXPECT_THROW(serialize::unpackContainer(bad), DecodeError)
                << "undetected flip at byte " << i << " bit " << bit;
        }
    }
}

TEST(Serialize, ContainerRejectsEveryTruncation)
{
    std::string good = serialize::packContainer(sampleSections());
    for (std::size_t n = 0; n < good.size(); ++n) {
        std::string bad = good.substr(0, n);
        EXPECT_THROW(serialize::unpackContainer(bad), DecodeError)
            << "undetected truncation to " << n << " bytes";
        serialize::ContainerCheck check =
            serialize::checkContainer(bad);
        EXPECT_FALSE(check.ok) << "truncation to " << n << " bytes";
        EXPECT_FALSE(check.problem.empty());
    }
    // Trailing garbage after the last payload is corruption too.
    EXPECT_THROW(serialize::unpackContainer(good + "x"), DecodeError);
}

TEST(Serialize, ContainerVersionPolicy)
{
    std::string future = serialize::packContainer(
        sampleSections(), serialize::kFormatVersion + 1);
    // Any mismatch — older or newer — is a miss, never a migration.
    EXPECT_THROW(serialize::unpackContainer(future), DecodeError);
    Container c = serialize::unpackContainer(
        future, serialize::kFormatVersion + 1);
    EXPECT_EQ(c.version, serialize::kFormatVersion + 1);
    // expectVersion 0 accepts anything (the verifier's mode), and
    // checkContainer reports the version it saw.
    EXPECT_NO_THROW(serialize::unpackContainer(future, 0));
    serialize::ContainerCheck check =
        serialize::checkContainer(future, 0);
    EXPECT_TRUE(check.ok);
    EXPECT_EQ(check.version, serialize::kFormatVersion + 1);
}

namespace
{

std::string
listLiteral(const std::vector<int> &xs)
{
    std::string out = "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i)
            out += ",";
        out += strprintf("%d", xs[i]);
    }
    return out + "]";
}

} // namespace

/** Seeded-random programs driving full artefact round-trips. */
class SerializeRandom : public ::testing::TestWithParam<int>
{
  protected:
    std::mt19937 rng_{static_cast<unsigned>(GetParam())};

    std::vector<int>
    randomList(int maxLen, int maxVal)
    {
        std::uniform_int_distribution<int> len(0, maxLen);
        std::uniform_int_distribution<int> val(-maxVal, maxVal);
        std::vector<int> xs(static_cast<std::size_t>(len(rng_)));
        for (int &x : xs)
            x = val(rng_);
        return xs;
    }

    suite::Benchmark
    randomBench()
    {
        suite::Benchmark b;
        b.name = strprintf("serialize_random_%d", GetParam());
        b.source = strprintf(R"(
            app([], L, L).
            app([X|A], B, [X|C]) :- app(A, B, C).
            rev([], []).
            rev([X|L], R) :- rev(L, T), app(T, [X], R).
            len([], 0).
            len([_|T], N) :- len(T, N1), N is N1 + 1.
            main :- rev(%s, R), len(R, N), out(R), out(N).
        )", listLiteral(randomList(16, 99)).c_str());
        return b;
    }
};

TEST_P(SerializeRandom, ArtefactsRoundTripBitIdentically)
{
    suite::Benchmark b = randomBench();
    suite::WorkloadOptions opts;
    opts.compiler.indexing = (GetParam() % 2) == 0;
    suite::Workload w(b, opts);

    // Interner: decode must reproduce the exact id mapping (all
    // artefacts reference symbols by id).
    Writer wi;
    serialize::encode(wi, w.interner());
    Reader ri(wi.bytes());
    Interner in2 = serialize::decodeInterner(ri);
    ri.expectEnd();

    // BAM module: identical rendered listing, and re-encoding the
    // decoded module reproduces the bytes (canonical encoding).
    Writer wb;
    bam::encode(wb, w.bamModule());
    Reader rb(wb.bytes());
    bam::Module m2 = bam::decodeModule(rb, in2);
    rb.expectEnd();
    EXPECT_EQ(bam::print(m2), bam::print(w.bamModule()));
    Writer wb2;
    bam::encode(wb2, m2);
    EXPECT_EQ(wb2.bytes(), wb.bytes());

    // ICI program + provenance.
    Writer wp;
    intcode::encode(wp, w.ici());
    Reader rp(wp.bytes());
    intcode::Program p2 = intcode::decodeProgram(rp, &in2);
    rp.expectEnd();
    EXPECT_EQ(p2.str(), w.ici().str());
    EXPECT_EQ(p2.entry, w.ici().entry);
    EXPECT_EQ(p2.numRegs, w.ici().numRegs);
    EXPECT_EQ(p2.addressTaken, w.ici().addressTaken);
    EXPECT_EQ(p2.procEntry, w.ici().procEntry);
    EXPECT_EQ(p2.bamOps, w.ici().bamOps);
    Writer wp2;
    intcode::encode(wp2, p2);
    EXPECT_EQ(wp2.bytes(), wp.bytes());

    // Control-flow graph.
    Writer wc;
    intcode::encode(wc, w.cfg());
    Reader rc(wc.bytes());
    intcode::Cfg c2 = intcode::decodeCfg(rc);
    rc.expectEnd();
    EXPECT_EQ(c2.blockOf, w.cfg().blockOf);
    EXPECT_EQ(c2.entryBlock, w.cfg().entryBlock);
    ASSERT_EQ(c2.blocks.size(), w.cfg().blocks.size());
    for (std::size_t i = 0; i < c2.blocks.size(); ++i) {
        EXPECT_EQ(c2.blocks[i].first, w.cfg().blocks[i].first);
        EXPECT_EQ(c2.blocks[i].last, w.cfg().blocks[i].last);
        EXPECT_EQ(c2.blocks[i].succs, w.cfg().blocks[i].succs);
        EXPECT_EQ(c2.blocks[i].preds, w.cfg().blocks[i].preds);
        EXPECT_EQ(c2.blocks[i].addressTaken,
                  w.cfg().blocks[i].addressTaken);
        EXPECT_EQ(c2.blocks[i].procEntry,
                  w.cfg().blocks[i].procEntry);
    }
    Writer wc2;
    intcode::encode(wc2, c2);
    EXPECT_EQ(wc2.bytes(), wc.bytes());

    // Emulation profile: the Expect/taken vectors drive compaction,
    // so the reload must be exact, not approximate.
    Writer wr;
    emul::encode(wr, w.runResult());
    Reader rr(wr.bytes());
    emul::RunResult run2 = emul::decodeRunResult(rr);
    rr.expectEnd();
    EXPECT_TRUE(run2.halted);
    EXPECT_EQ(run2.instructions, w.instructions());
    EXPECT_EQ(run2.seqCycles, w.seqCycles());
    EXPECT_EQ(run2.output, w.runResult().output);
    EXPECT_EQ(run2.profile.expect, w.profile().expect);
    EXPECT_EQ(run2.profile.taken, w.profile().taken);
}

TEST_P(SerializeRandom, DecodersSurviveArbitraryCorruption)
{
    // Fuzz the raw artefact decoders (below the container checksums,
    // which would normally screen this out): random byte flips and
    // truncations must produce DecodeError or a harmless decode —
    // never UB. The asan preset runs this under sanitizers.
    suite::Benchmark b = randomBench();
    suite::Workload w(b);
    Writer wp;
    intcode::encode(wp, w.ici());
    std::string good = wp.bytes();
    std::uniform_int_distribution<std::size_t> pos(0,
                                                   good.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    for (int round = 0; round < 64; ++round) {
        std::string bad = good;
        if (round % 4 == 0)
            bad.resize(pos(rng_)); // truncation
        else
            for (int k = 0; k <= round % 3; ++k)
                bad[pos(rng_)] ^= static_cast<char>(1 << bit(rng_));
        try {
            Reader r(bad);
            // A mutation either decodes to some harmless Program or
            // throws DecodeError; anything else fails the test.
            (void)intcode::decodeProgram(r, nullptr);
            r.expectEnd();
        } catch (const DecodeError &) {
            // The expected outcome for nearly every mutation.
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRandom,
                         ::testing::Range(1, 9));
