% symbolfuzz seed=9215056093986799147
d0(s(g(c)),1).
d0(Any1,5).
d0(2,6).
d0(1,10).
d0([2],13).
d0(Any5,16).
f0(X,Y) :- (X > 4), (Y is (((3 + 2) + (1 * 3)) - X)).
f0(X,Y) :- (X =< 4), (Y is (((1 mod 2) * 2) mod 4)).
c0(0,Acc,Acc).
c0(N,Acc,Out) :- (N > 0), (N1 is (N - 1)), (Acc1 is (((N - Acc) mod 5) // 6)), c0(N1,Acc1,Out).
w1([],Acc,Acc).
w1([H|T],Acc,Out) :- (Acc1 is (((Acc - Acc) mod 4) mod 4)), w1(T,Acc1,Out).
main :- d0(1,X), out(X), fail.
main :- d0(K,X), out(X), fail.
main :- ((\+ (d0(77,UR0)) -> out(1)) ; out(0)), ((\+ (d0(77,UR1)) -> out(1)) ; out(0)), (R2 is 4), out(R2), f0(5,R3), out(R3).
