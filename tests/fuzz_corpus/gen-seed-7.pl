% symbolfuzz seed=7259628554680249319
d0(4,0).
d0(a,3).
b0(0,[]).
b0(N,[H|T]) :- (N > 0), (H is N), (N1 is (N - 1)), b0(N1,T).
c1(0,Acc,Acc).
c1(N,Acc,Out) :- (N > 0), (N1 is (N - 1)), (Acc1 is ((2 + N) + ((N - N) - (2 - 1)))), c1(N1,Acc1,Out).
main :- d0(a,X), out(X), fail.
main :- d0(K,X), (X > 0), out(X), fail.
main :- d0(K,X), out(X), fail.
main :- (R0 is (((2 * 3) // 7) mod 6)), out(R0), ((\+ (d0(77,UR1)) -> out(1)) ; out(0)).
