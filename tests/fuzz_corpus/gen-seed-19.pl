% symbolfuzz seed=12074312247986595070
d0(Any0,0).
d0(s([]),5).
d1([1],0).
d1(1,4).
d1([1],8).
d1(1,9).
d1(Any4,12).
d2([0],2).
d2(Any1,5).
d2(b,6).
d2([-3,k],9).
f0(X,Y) :- (X > 0), !, (Y is (X mod 4)).
f0(X,Y) :- (Y is (((X * 2) + 3) + 5)).
f1(X,Y) :- (X > 6), !, (Y is (((X mod 2) - (4 + X)) // 6)).
f1(X,Y) :- (Y is (1 + ((2 // 2) - (X - X)))).
f2(X,Y) :- (X > 5), (Y is X).
f2(X,Y) :- (X =< 5), (Y is (((X * 2) mod 5) - ((X mod 3) - (X - X)))).
w0([],Acc,Acc).
w0([H|T],Acc,Out) :- (Acc1 is H), w0(T,Acc1,Out).
c1(N,Acc,Out) :- (N > 0), (N1 is (N - 1)), f2(Acc,Acc1), c1(N1,Acc1,Out).
c1(0,Acc,Acc).
c2(N,Acc,Out) :- (N > 0), (N1 is (N - 1)), f1(Acc,Acc1), c2(N1,Acc1,Out).
c2(0,Acc,Acc).
main :- d0(k,X), (X > 2), out(X), fail.
main :- d2(K,X), (X > 2), out(X), fail.
main :- d1(1,X), (X > 0), out(X), fail.
main :- c1(1,4,R0), out(R0), c1(6,4,R1), out(R1).
