% integer-literal boundaries: the lexer once silently overflowed on
% large literals (fixed with a pre-multiplication range check); these
% stay within the tagged-word value range and must round-trip.
big(134217727).
big(-134217728).
main :- big(X), out(X), fail.
main.
