% deep nesting regression: the parser once overflowed its stack on
% deeply nested terms (fixed with an explicit depth guard); this stays
% comfortably under the 4096-level limit and must parse and run.
d(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(s(0)))))))))))))))))))))))))))))))))))))))))))))))))))))))))))),1).
main :- d(X,N), out(N).
