/**
 * @file
 * Unit tests of the VLIW simulator semantics on hand-built wide code:
 * parallel-issue reads, latency-delayed commits, multiway-branch
 * priority, same-cycle memory behaviour, and cycle accounting.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "support/diagnostics.hh"
#include "vliw/sim.hh"

using namespace symbol;
using namespace symbol::vliw;
using bam::Tag;
using intcode::IInstr;
using intcode::IOp;

namespace
{

IInstr
movi(int rd, std::int64_t v, Tag t = Tag::Int)
{
    IInstr i;
    i.op = IOp::Movi;
    i.rd = rd;
    i.useImm = true;
    i.imm = bam::makeWord(t, v);
    return i;
}

IInstr
mov(int rd, int ra)
{
    IInstr i;
    i.op = IOp::Mov;
    i.rd = rd;
    i.ra = ra;
    return i;
}

IInstr
outr(int r)
{
    IInstr i;
    i.op = IOp::Out;
    i.rb = r;
    return i;
}

IInstr
halt()
{
    IInstr i;
    i.op = IOp::Halt;
    return i;
}

IInstr
jmp(int target)
{
    IInstr i;
    i.op = IOp::Jmp;
    i.target = target;
    return i;
}

IInstr
beq(int ra, std::int64_t v, int target)
{
    IInstr i;
    i.op = IOp::Beq;
    i.ra = ra;
    i.useImm = true;
    i.imm = bam::makeWord(Tag::Int, v);
    i.target = target;
    return i;
}

WideInstr
wide(std::vector<IInstr> ops)
{
    WideInstr w;
    for (auto &o : ops) {
        MicroOp m;
        m.instr = o;
        w.ops.push_back(m);
    }
    return w;
}

Code
program(std::vector<WideInstr> ws, int regs = 16)
{
    Code c;
    c.code = std::move(ws);
    c.numRegs = regs;
    return c;
}

SimResult
run(Code c)
{
    Machine m(c, machine::MachineConfig::idealShared(4));
    return m.run();
}

} // namespace

TEST(VliwSim, ParallelReadsSeePreCycleState)
{
    // Swap r1 and r2 in a single cycle: both moves must read the old
    // values.
    Code c = program({wide({movi(1, 10), movi(2, 20)}),
                      wide({}), // let the writes commit
                      wide({mov(1, 2), mov(2, 1)}),
                      wide({}),
                      wide({outr(1), outr(2), halt()})});
    SimResult r = run(c);
    ASSERT_EQ(r.output.size(), 2u);
    EXPECT_EQ(bam::wordVal(r.output[0]), 20);
    EXPECT_EQ(bam::wordVal(r.output[1]), 10);
    EXPECT_EQ(r.latencyViolations, 0u);
}

TEST(VliwSim, LatencyViolationDetected)
{
    // Using a result in the very next slot of the same cycle is
    // invisible (pre-cycle read); using it one cycle too early for a
    // load-latency op is flagged.
    Code c = program({wide({movi(1, 7)}),
                      wide({outr(1), halt()})}); // mov latency 1: ok
    EXPECT_EQ(run(c).latencyViolations, 0u);

    Code bad = program({wide({movi(1, 7)}),
                        wide({mov(2, 1)}),
                        wide({outr(2), halt()})});
    // mov in cycle 1 commits at cycle 2; reading r2 at cycle 2 is ok.
    EXPECT_EQ(run(bad).latencyViolations, 0u);
}

TEST(VliwSim, BranchPriorityFirstTakenWins)
{
    // Two branches in one cycle; both true — the first must win.
    Code c = program({wide({movi(1, 5)}),
                      wide({}),
                      wide({beq(1, 5, 4), beq(1, 5, 6)}),
                      wide({halt()}),
                      wide({movi(2, 1), jmp(6)}),
                      wide({}),
                      wide({outr(2), halt()})});
    SimResult r = run(c);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(bam::wordVal(r.output[0]), 1); // went through index 4
}

TEST(VliwSim, UntakenBranchFallsThrough)
{
    Code c = program({wide({movi(1, 5)}),
                      wide({}),
                      wide({beq(1, 6, 4)}),
                      wide({outr(1), halt()}),
                      wide({halt()})});
    SimResult r = run(c);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(bam::wordVal(r.output[0]), 5);
}

TEST(VliwSim, TakenBranchCostsPenalty)
{
    Code fall = program({wide({movi(1, 5)}), wide({halt()})});
    Code taken = program({wide({jmp(1)}), wide({halt()})});
    SimResult rf = run(fall);
    SimResult rt = run(taken);
    EXPECT_EQ(rf.cycles, 2u);
    EXPECT_EQ(rt.cycles, 3u); // +1 bubble for the taken jump
}

TEST(VliwSim, StoresCommitAfterLoads)
{
    using L = bam::Layout;
    IInstr st;
    st.op = IOp::St;
    st.ra = 1;
    st.rb = 2;
    IInstr ld;
    ld.op = IOp::Ld;
    ld.rd = 3;
    ld.ra = 1;
    // Same-cycle store+load to one address: the load must read the
    // old value (0), not the stored one.
    Code c = program({wide({movi(1, L::kHeapBase), movi(2, 42)}),
                      wide({}),
                      wide({st, ld}),
                      wide({}),
                      wide({}),
                      wide({outr(3), halt()})});
    SimResult r = run(c);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(bam::wordVal(r.output[0]), 0);
}

TEST(VliwSim, SpeculativeLoadNeverFaults)
{
    IInstr ld;
    ld.op = IOp::Ld;
    ld.rd = 3;
    ld.ra = 1; // r1 = -5: wild address
    Code c = program({wide({movi(1, -5)}),
                      wide({}),
                      wide({ld}),
                      wide({}),
                      wide({}),
                      wide({outr(3), halt()})});
    SimResult r = run(c);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(bam::wordVal(r.output[0]), 0);
}

TEST(VliwSim, OutOfRangeStoreThrows)
{
    IInstr st;
    st.op = IOp::St;
    st.ra = 1;
    st.rb = 1;
    Code c = program({wide({movi(1, -5)}), wide({}), wide({st}),
                      wide({halt()})});
    EXPECT_THROW(run(c), symbol::RuntimeError);
}

TEST(VliwSim, ArithmeticNeverTraps)
{
    IInstr dv;
    dv.op = IOp::Div;
    dv.rd = 3;
    dv.ra = 1;
    dv.rb = 2;
    Code c = program({wide({movi(1, 10), movi(2, 0)}),
                      wide({}),
                      wide({dv}),
                      wide({}),
                      wide({outr(3), halt()})});
    SimResult r = run(c);
    EXPECT_EQ(bam::wordVal(r.output[0]), 0);
}

TEST(VliwSim, CycleBudgetEnforced)
{
    Code c = program({wide({jmp(0)})});
    Machine m(c, machine::MachineConfig::idealShared(1));
    SimOptions o;
    o.maxCycles = 1000;
    EXPECT_THROW(m.run(o), symbol::RuntimeError);
}

TEST(VliwSim, UnitOpsAccounting)
{
    Code c = program({wide({movi(1, 1), movi(2, 2)}),
                      wide({halt()})});
    // Bind the two moves to different units; keep the halt out of
    // the way on a third unit.
    c.code[0].ops[0].unit = 0;
    c.code[0].ops[1].unit = 1;
    c.code[1].ops[0].unit = 3;
    SimResult r = run(c);
    EXPECT_EQ(r.unitOps[0], 1u);
    EXPECT_EQ(r.unitOps[1], 1u);
    EXPECT_EQ(r.unitOps[3], 1u);
}

TEST(VliwSim, MkTagAndGetTag)
{
    IInstr mk;
    mk.op = IOp::MkTag;
    mk.rd = 2;
    mk.ra = 1;
    mk.tag = Tag::Lst;
    IInstr gt;
    gt.op = IOp::GetTag;
    gt.rd = 3;
    gt.ra = 2;
    Code c = program({wide({movi(1, 77)}), wide({}), wide({mk}),
                      wide({}), wide({gt}), wide({}),
                      wide({outr(2), outr(3), halt()})});
    SimResult r = run(c);
    EXPECT_EQ(bam::wordTag(r.output[0]), Tag::Lst);
    EXPECT_EQ(bam::wordVal(r.output[0]), 77);
    EXPECT_EQ(bam::wordVal(r.output[1]),
              static_cast<std::int64_t>(Tag::Lst));
}

// --- Trap statuses (SimOptions::trapErrors, used by the fuzz oracle) ---

TEST(VliwSim, TrapOutOfRangeStore)
{
    IInstr st;
    st.op = IOp::St;
    st.ra = 1;
    st.rb = 1;
    Code c = program({wide({movi(1, -5)}), wide({}), wide({st}),
                      wide({halt()})});
    Machine m(c, machine::MachineConfig::idealShared(4));
    SimOptions o;
    o.trapErrors = true;
    SimResult r = m.run(o);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.status, SimStatus::MemFault);
    // The faulting wide instruction is counted.
    EXPECT_EQ(r.wideExecuted, 3u);
}

TEST(VliwSim, TrapBadPc)
{
    Code c = program({wide({jmp(42)})});
    Machine m(c, machine::MachineConfig::idealShared(1));
    SimOptions o;
    o.trapErrors = true;
    EXPECT_EQ(m.run(o).status, SimStatus::BadPc);
}

TEST(VliwSim, TrapCycleLimit)
{
    Code c = program({wide({jmp(0)})});
    Machine m(c, machine::MachineConfig::idealShared(1));
    SimOptions o;
    o.trapErrors = true;
    o.maxCycles = 1000;
    EXPECT_EQ(m.run(o).status, SimStatus::CycleLimit);
}

TEST(VliwSim, TrapStatusOkOnCleanRun)
{
    Code c = program({wide({movi(1, 1)}), wide({halt()})});
    Machine m(c, machine::MachineConfig::idealShared(1));
    SimOptions o;
    o.trapErrors = true;
    SimResult r = m.run(o);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.status, SimStatus::Ok);
}

TEST(VliwSim, SimStatusNamesAreStable)
{
    EXPECT_STREQ(simStatusName(SimStatus::Ok), "ok");
    EXPECT_STREQ(simStatusName(SimStatus::MemFault), "mem-fault");
    EXPECT_STREQ(simStatusName(SimStatus::BadPc), "bad-pc");
    EXPECT_STREQ(simStatusName(SimStatus::CycleLimit), "cycle-limit");
}
