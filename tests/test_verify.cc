/**
 * @file
 * Tests for the independent schedule verifier (src/verify).
 *
 * Two halves: hand-built schedules with valid provenance where each
 * class of illegality (oversubscribed slot, latency-violating read,
 * reordered memory dependence, dangling branch target, bad unit id,
 * overlapping writes) must be reported with the intended violation
 * kind — and a benchmark sweep asserting the verifier accepts every
 * schedule the compactor actually emits.
 */

#include <gtest/gtest.h>

#include "machine/config.hh"
#include "sched/compact.hh"
#include "suite/driver.hh"
#include "verify/verify.hh"

using namespace symbol;
using intcode::IInstr;
using intcode::IOp;
using verify::Kind;

namespace
{

IInstr
movi(int rd, std::int64_t value)
{
    IInstr i;
    i.op = IOp::Movi;
    i.rd = rd;
    i.useImm = true;
    i.imm = bam::makeWord(bam::Tag::Int, value);
    return i;
}

IInstr
addr(int rd, int ra, int rb)
{
    IInstr i;
    i.op = IOp::Add;
    i.rd = rd;
    i.ra = ra;
    i.rb = rb;
    return i;
}

IInstr
ld(int rd, int ra, int off)
{
    IInstr i;
    i.op = IOp::Ld;
    i.rd = rd;
    i.ra = ra;
    i.off = off;
    return i;
}

IInstr
st(int ra, int off, int rb)
{
    IInstr i;
    i.op = IOp::St;
    i.ra = ra;
    i.rb = rb;
    i.off = off;
    return i;
}

IInstr
jmp(int target)
{
    IInstr i;
    i.op = IOp::Jmp;
    i.target = target;
    return i;
}

IInstr
halt()
{
    IInstr i;
    i.op = IOp::Halt;
    return i;
}

intcode::Program
progOf(std::vector<IInstr> code, int numRegs)
{
    intcode::Program p;
    p.code = std::move(code);
    p.entry = 0;
    p.numRegs = numRegs;
    return p;
}

vliw::MicroOp
op(IInstr i, int unit, int orig, int seq)
{
    vliw::MicroOp m;
    m.instr = i;
    m.unit = unit;
    m.orig = orig;
    m.seq = seq;
    return m;
}

vliw::Code
codeOf(std::vector<vliw::WideInstr> wides, int numRegs,
       std::vector<int> regions = {0})
{
    vliw::Code c;
    c.code = std::move(wides);
    c.entry = 0;
    c.numRegs = numRegs;
    c.regionStart = std::move(regions);
    return c;
}

/** A permissive unclustered machine so the hand-built tests isolate
 *  exactly one illegality at a time. */
machine::MachineConfig
flatConfig(int units)
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(units);
    mc.clustered = false;
    mc.memPortsTotal = units;
    return mc;
}

/** movi r0; movi r1 ‖ add r2 ‖ halt — legal on two units. */
struct StraightLine
{
    intcode::Program prog = progOf(
        {movi(0, 1), movi(1, 2), addr(2, 0, 1), halt()}, 3);

    vliw::Code
    schedule(int unit0, int unit1) const
    {
        vliw::WideInstr w0, w1, w2;
        w0.ops = {op(prog.code[0], unit0, 0, 0),
                  op(prog.code[1], unit1, 1, 1)};
        w1.ops = {op(prog.code[2], 0, 2, 2)};
        w2.ops = {op(prog.code[3], 0, 3, 3)};
        return codeOf({w0, w1, w2}, 3);
    }
};

} // namespace

TEST(Verify, LegalStraightLineVerifiesClean)
{
    StraightLine s;
    verify::Report rep = verify::checkSchedule(s.schedule(0, 1),
                                               s.prog, flatConfig(2));
    EXPECT_TRUE(rep.ok()) << rep.str();
    EXPECT_EQ(rep.regions, 1u);
    EXPECT_EQ(rep.wideInstrs, 3u);
    EXPECT_EQ(rep.microOps, 4u);
    EXPECT_EQ(rep.reachableWide, 3u);
    EXPECT_GE(rep.depEdges, 2u);
}

TEST(Verify, OversubscribedMoveSlotReported)
{
    StraightLine s;
    // Both immediate moves on unit 0 in the same cycle: two move
    // slots against movePerUnit == 1.
    verify::Report rep = verify::checkSchedule(s.schedule(0, 0),
                                               s.prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::SlotLimit)], 1u);
    EXPECT_EQ(rep.byKind[static_cast<int>(Kind::DepOrder)], 0u);
}

TEST(Verify, BadUnitIdReported)
{
    StraightLine s;
    verify::Report rep = verify::checkSchedule(s.schedule(0, 7),
                                               s.prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::BadUnit)], 1u);
}

TEST(Verify, LatencyViolatingReadReported)
{
    StraightLine s;
    machine::MachineConfig mc = flatConfig(2);
    // With two-cycle moves the add one cycle below its operands'
    // writes reads them before they commit — on every static path.
    mc.moveLatency = 2;
    verify::Report rep =
        verify::checkSchedule(s.schedule(0, 1), s.prog, mc);
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::Latency)], 1u);
}

TEST(Verify, ReorderedMemoryDependenceReported)
{
    // Source order: store to [r0], then load from [r0]. The
    // schedule issues the load a cycle before the store, so the load
    // reads the pre-store memory.
    intcode::Program prog = progOf(
        {movi(0, 0x1000), st(0, 0, 1), ld(2, 0, 0), halt()}, 3);
    vliw::WideInstr w0, w1, w2, w3;
    w0.ops = {op(prog.code[0], 0, 0, 0)};
    w1.ops = {op(prog.code[2], 0, 2, 2)};
    w2.ops = {op(prog.code[1], 1, 1, 1)};
    w3.ops = {op(prog.code[3], 0, 3, 3)};
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1, w2, w3}, 3), prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::DepOrder)], 1u);
}

TEST(Verify, OrderedMemoryAccessesVerifyClean)
{
    // Same program, source-ordered schedule: store strictly before
    // the load.
    intcode::Program prog = progOf(
        {movi(0, 0x1000), st(0, 0, 1), ld(2, 0, 0), halt()}, 3);
    vliw::WideInstr w0, w1, w2, w3;
    w0.ops = {op(prog.code[0], 0, 0, 0)};
    w1.ops = {op(prog.code[1], 0, 1, 1)};
    w2.ops = {op(prog.code[2], 1, 2, 2)};
    w3.ops = {op(prog.code[3], 0, 3, 3)};
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1, w2, w3}, 3), prog, flatConfig(2));
    EXPECT_TRUE(rep.ok()) << rep.str();
}

TEST(Verify, DanglingBranchTargetReported)
{
    intcode::Program prog = progOf(
        {movi(0, 1), jmp(3), movi(0, 2), halt()}, 1);
    vliw::WideInstr w0, w1, w2;
    w0.ops = {op(prog.code[0], 0, 0, 0)};
    IInstr j = prog.code[1];
    j.target = 99; // dangling: far past the end of the wide code
    w1.ops = {op(j, 0, 1, 1)};
    w2.ops = {op(prog.code[3], 0, 3, 0)};
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1, w2}, 1, {0, 2}), prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::BadTarget)], 1u);
}

TEST(Verify, RetargetedJumpToRegionHeadVerifiesClean)
{
    // The legal version of the same schedule: the jump lands on the
    // region head that corresponds to its source target.
    intcode::Program prog = progOf(
        {movi(0, 1), jmp(3), movi(0, 2), halt()}, 1);
    vliw::WideInstr w0, w1, w2;
    w0.ops = {op(prog.code[0], 0, 0, 0)};
    IInstr j = prog.code[1];
    j.target = 2;
    w1.ops = {op(j, 0, 1, 1)};
    w2.ops = {op(prog.code[3], 0, 3, 0)};
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1, w2}, 1, {0, 2}), prog, flatConfig(2));
    EXPECT_TRUE(rep.ok()) << rep.str();
}

TEST(Verify, OverlappingWritesReported)
{
    intcode::Program prog =
        progOf({movi(0, 1), movi(0, 2), halt()}, 1);
    vliw::WideInstr w0, w1;
    w0.ops = {op(prog.code[0], 0, 0, 0),
              op(prog.code[1], 1, 1, 1)};
    w1.ops = {op(prog.code[2], 0, 2, 2)};
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1}, 1), prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::WriteOverlap)], 1u);
}

TEST(Verify, ForgedProvenanceReported)
{
    // The micro-op claims to implement source 0 but computes
    // something else: the provenance validation must refuse it
    // rather than verify the forged sequence.
    StraightLine s;
    vliw::Code code = s.schedule(0, 1);
    code.code[0].ops[0].instr = movi(0, 42);
    verify::Report rep =
        verify::checkSchedule(code, s.prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::Mismatch)], 1u);
}

TEST(Verify, NonPathSequenceReported)
{
    // Claimed region sequence skips over instruction 1, which no
    // program path allows (1 is not a Nop or a jump).
    StraightLine s;
    vliw::WideInstr w0, w1, w2;
    w0.ops = {op(s.prog.code[0], 0, 0, 0)};
    w1.ops = {op(s.prog.code[2], 0, 2, 1)};
    w2.ops = {op(s.prog.code[3], 0, 3, 2)};
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1, w2}, 3), s.prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::NotAPath)], 1u);
}

TEST(Verify, SharedMemPortOversubscriptionReported)
{
    // Two independent loads in one cycle against memPortsTotal == 1.
    intcode::Program prog = progOf(
        {movi(0, 0x1000), ld(1, 0, 0), ld(2, 0, 1), halt()}, 3);
    vliw::WideInstr w0, w1, w2;
    w0.ops = {op(prog.code[0], 0, 0, 0)};
    w1.ops = {op(prog.code[1], 0, 1, 1),
              op(prog.code[2], 1, 2, 2)};
    w2.ops = {op(prog.code[3], 0, 3, 3)};
    machine::MachineConfig mc = flatConfig(2);
    mc.memPortsTotal = 1;
    verify::Report rep = verify::checkSchedule(
        codeOf({w0, w1, w2}, 3), prog, mc);
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::MemPorts)], 1u);
}

TEST(Verify, MalformedRegionTableReported)
{
    StraightLine s;
    vliw::Code code = s.schedule(0, 1);
    code.regionStart = {1}; // must start at wide 0
    verify::Report rep =
        verify::checkSchedule(code, s.prog, flatConfig(2));
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.byKind[static_cast<int>(Kind::Malformed)], 1u);
}

// --- The sweep: every schedule the compactor emits must verify ------

TEST(VerifySweep, CompactorSchedulesVerifyClean)
{
    suite::EvalDriver driver;
    struct Point
    {
        machine::MachineConfig mc;
        sched::CompactOptions co;
    };
    std::vector<Point> points;
    points.push_back({machine::MachineConfig::idealShared(3), {}});
    points.push_back({machine::MachineConfig::prototype(3), {}});
    {
        sched::CompactOptions co;
        co.traceMode = false;
        points.push_back(
            {machine::MachineConfig::idealShared(3), co});
    }
    std::vector<std::string> benches;
    for (const auto &b : suite::aquarius())
        benches.push_back(b.name);

    std::vector<verify::Report> reps = driver.map(
        points.size() * benches.size(), [&](std::size_t i) {
            const Point &pt = points[i / benches.size()];
            const suite::Workload &w =
                driver.workload(benches[i % benches.size()]);
            sched::CompactResult cr = sched::compact(
                w.ici(), w.profile(), pt.mc, pt.co);
            return verify::checkSchedule(cr.code, w.ici(), pt.mc);
        });
    for (std::size_t i = 0; i < reps.size(); ++i)
        EXPECT_TRUE(reps[i].ok())
            << benches[i % benches.size()] << ": " << reps[i].str();
}

TEST(VerifySweep, DriverDebugFlagVerifiesEndToEnd)
{
    // The EvalDriver debug flag routes every runVliw through the
    // verifier (a violation would throw out of sweep()).
    suite::DriverOptions dopts;
    dopts.verifySchedules = true;
    suite::EvalDriver driver(dopts);
    suite::EvalTask t;
    t.bench = "nreverse";
    t.config = machine::MachineConfig::idealShared(3);
    std::vector<suite::VliwRun> runs = driver.sweep({t});
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_GT(runs[0].cycles, 0u);
}
