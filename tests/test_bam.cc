/**
 * @file
 * Unit tests for the tagged-word model and the BAM IR (module,
 * printer, verifier).
 */

#include <gtest/gtest.h>

#include "bam/instr.hh"

using namespace symbol;
using namespace symbol::bam;

TEST(Word, RoundtripTagAndValue)
{
    for (Tag t : {Tag::Ref, Tag::Lst, Tag::Str, Tag::Atm, Tag::Int,
                  Tag::Cod, Tag::Fun}) {
        Word w = makeWord(t, 12345);
        EXPECT_EQ(wordTag(w), t);
        EXPECT_EQ(wordVal(w), 12345);
    }
}

TEST(Word, NegativeValuesSignExtend)
{
    Word w = makeWord(Tag::Int, -7);
    EXPECT_EQ(wordTag(w), Tag::Int);
    EXPECT_EQ(wordVal(w), -7);
}

TEST(Word, ValueFieldIsolatedFromTag)
{
    // Two words with the same value but different tags differ, and
    // equal-tag equal-value words are bit-identical.
    EXPECT_NE(makeWord(Tag::Atm, 3), makeWord(Tag::Int, 3));
    EXPECT_EQ(makeWord(Tag::Int, 3), makeWord(Tag::Int, 3));
}

TEST(Word, FunctorPacking)
{
    std::int64_t f = functorValue(42, 3);
    EXPECT_EQ(functorAtom(f), 42);
    EXPECT_EQ(functorArity(f), 3);
}

TEST(Word, FunctorArityBoundsEnforced)
{
    // The arity field is 8 bits; out-of-range arities used to be
    // silently masked, aliasing f/256 with f/0.
    std::int64_t top = functorValue(7, kMaxFunctorArity);
    EXPECT_EQ(functorArity(top), kMaxFunctorArity);
    EXPECT_EQ(functorAtom(top), 7);
    EXPECT_THROW(functorValue(7, kMaxFunctorArity + 1), CompileError);
    EXPECT_THROW(functorValue(7, 1000), CompileError);
    EXPECT_THROW(functorValue(7, -1), CompileError);
}

TEST(Word, LayoutAreasAreDisjointAndOrdered)
{
    EXPECT_LT(Layout::kHeapBase, Layout::kHeapEnd);
    EXPECT_LE(Layout::kHeapEnd, Layout::kStackBase);
    EXPECT_LE(Layout::kStackEnd, Layout::kTrailBase);
    EXPECT_LE(Layout::kTrailEnd, Layout::kPdlBase);
    EXPECT_LE(Layout::kPdlEnd, Layout::kMemWords);
}

TEST(Regs, ConventionsAreDense)
{
    EXPECT_EQ(Regs::arg(0), Regs::kA0);
    EXPECT_LT(Regs::kA0 + Regs::kMaxArgs, Regs::kT0 + 1);
    EXPECT_TRUE(Regs::isGlobal(Regs::kH));
    EXPECT_TRUE(Regs::isGlobal(Regs::kHb));
    EXPECT_FALSE(Regs::isGlobal(Regs::kA0));
}

namespace
{

Instr
movInstr(int src, int dst)
{
    Instr i;
    i.op = Op::Move;
    i.a = Operand::mkReg(src);
    i.b = Operand::mkReg(dst);
    return i;
}

} // namespace

TEST(Module, TracksRegisterCount)
{
    Interner in;
    Module m(in);
    m.emit(movInstr(3, 17));
    EXPECT_EQ(m.numRegs, 18);
}

TEST(Module, VerifyAcceptsWellFormed)
{
    Interner in;
    Module m(in);
    int l = m.newLabel();
    Instr lab;
    lab.op = Op::Label;
    lab.labs[0] = l;
    m.emit(lab);
    Instr j;
    j.op = Op::Jump;
    j.labs[0] = l;
    m.emit(j);
    EXPECT_TRUE(verify(m).empty());
}

TEST(Module, VerifyRejectsUndefinedLabel)
{
    Interner in;
    Module m(in);
    int l = m.newLabel();
    Instr j;
    j.op = Op::Jump;
    j.labs[0] = l; // never defined
    m.emit(j);
    EXPECT_FALSE(verify(m).empty());
}

TEST(Module, VerifyRejectsMalformedLd)
{
    Interner in;
    Module m(in);
    Instr i;
    i.op = Op::Ld;
    i.a = Operand::mkImm(Tag::Int, 0); // base must be a register
    i.b = Operand::mkReg(1);
    m.emit(i);
    EXPECT_FALSE(verify(m).empty());
}

TEST(Printer, RendersRegistersAndImmediates)
{
    Interner in;
    Module m(in);
    AtomId foo = in.intern("foo");
    Instr i;
    i.op = Op::Move;
    i.a = Operand::mkImm(Tag::Atm, foo);
    i.b = Operand::mkReg(Regs::kA0);
    std::string s = print(m, i);
    EXPECT_NE(s.find("#foo"), std::string::npos);
    EXPECT_NE(s.find("a0"), std::string::npos);
}

TEST(Printer, ListsWholeModule)
{
    Interner in;
    Module m(in);
    m.emit(movInstr(0, 1));
    m.emit(movInstr(1, 2));
    std::string s = print(m);
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}
