/**
 * @file
 * Unit tests for the clause normaliser: goal flattening, auxiliary
 * predicate lifting for control constructs, chunk-based variable
 * classification and environment decisions.
 */

#include <gtest/gtest.h>

#include "bamc/normalize.hh"

using namespace symbol;
using namespace symbol::bamc;

namespace
{

struct Normalized
{
    Interner in;
    std::unique_ptr<prolog::Program> prog;
    FlatProgram flat;

    explicit Normalized(const std::string &src)
    {
        prog = std::make_unique<prolog::Program>(
            prolog::parseProgram(src, in));
        flat = normalize(*prog);
    }

    const FlatPred &
    pred(const std::string &name, int arity)
    {
        PredKey key{in.intern(name), arity};
        const FlatPred *p = flat.find(key);
        EXPECT_NE(p, nullptr) << name << "/" << arity;
        return *p;
    }
};

} // namespace

TEST(Normalize, FlattensConjunctions)
{
    Normalized n("p :- a, (b, c), d.\na. b. c. d.");
    const FlatPred &p = n.pred("p", 0);
    ASSERT_EQ(p.clauses.size(), 1u);
    EXPECT_EQ(p.clauses[0].goals.size(), 4u);
}

TEST(Normalize, RemovesTrueGoals)
{
    Normalized n("p :- true, a, true.\na.");
    EXPECT_EQ(n.pred("p", 0).clauses[0].goals.size(), 1u);
}

TEST(Normalize, LiftsDisjunctionIntoAux)
{
    Normalized n("p(X) :- (X = 1 ; X = 2).");
    const FlatPred &p = n.pred("p", 1);
    ASSERT_EQ(p.clauses[0].goals.size(), 1u);
    // The replacement goal calls a generated $aux with X as argument.
    TermId g = p.clauses[0].goals[0];
    const prolog::Term &gt = n.prog->pool.at(g);
    EXPECT_EQ(n.in.name(gt.functor).substr(0, 4), "$aux");
    EXPECT_EQ(gt.args.size(), 1u);
    // The aux predicate has two clauses.
    const FlatPred &aux = n.pred(n.in.name(gt.functor), 1);
    EXPECT_EQ(aux.clauses.size(), 2u);
    EXPECT_TRUE(aux.isAux);
}

TEST(Normalize, IfThenElseBecomesCutClauses)
{
    Normalized n("p(X,Y) :- (X < 1 -> Y = a ; Y = b).");
    const FlatPred &p = n.pred("p", 2);
    TermId g = p.clauses[0].goals[0];
    const prolog::Term &gt = n.prog->pool.at(g);
    const FlatPred &aux = n.pred(n.in.name(gt.functor),
                                 static_cast<int>(gt.args.size()));
    ASSERT_EQ(aux.clauses.size(), 2u);
    EXPECT_TRUE(aux.clauses[0].hasCut);
    EXPECT_FALSE(aux.clauses[1].hasCut);
}

TEST(Normalize, NegationBecomesCutFail)
{
    Normalized n("p :- \\+ q.\nq.");
    const FlatPred &p = n.pred("p", 0);
    TermId g = p.clauses[0].goals[0];
    const prolog::Term &gt = n.prog->pool.at(g);
    const FlatPred &aux = n.pred(n.in.name(gt.functor), 0);
    ASSERT_EQ(aux.clauses.size(), 2u);
    EXPECT_TRUE(aux.clauses[0].hasCut);
}

TEST(Normalize, NotUnifyDesugarsToNegation)
{
    Normalized n("p(X) :- X \\= 1.");
    const FlatPred &p = n.pred("p", 1);
    const prolog::Term &gt =
        n.prog->pool.at(p.clauses[0].goals[0]);
    EXPECT_EQ(n.in.name(gt.functor).substr(0, 4), "$aux");
}

TEST(Normalize, TempVarStaysTemp)
{
    // X only lives in the head+first chunk: temporary.
    Normalized n("p(X, Y) :- Y = X.");
    const FlatClause &c = n.pred("p", 2).clauses[0];
    for (const auto &[var, slot] : c.vars)
        EXPECT_FALSE(slot.isPerm);
    EXPECT_FALSE(c.needsEnv);
}

TEST(Normalize, VarAcrossCallBecomesPermanent)
{
    Normalized n("p(X, Y) :- q(X), r(Y).\nq(_). r(_).");
    const FlatClause &c = n.pred("p", 2).clauses[0];
    // Y crosses the q/1 call: permanent. X does not.
    int perms = 0;
    for (const auto &[var, slot] : c.vars)
        perms += slot.isPerm;
    EXPECT_EQ(perms, 1);
    EXPECT_TRUE(c.needsEnv);
    EXPECT_EQ(c.numPerms, 1);
}

TEST(Normalize, ChainRuleNeedsNoEnvironment)
{
    Normalized n("p(X) :- q(X).\nq(_).");
    EXPECT_FALSE(n.pred("p", 1).clauses[0].needsEnv);
}

TEST(Normalize, BuiltinsDoNotEndChunks)
{
    // is/2 and comparison are inline: X stays temporary.
    Normalized n("p(X, Y) :- Y is X + 1, Y > 0, X < Y.");
    const FlatClause &c = n.pred("p", 2).clauses[0];
    for (const auto &[var, slot] : c.vars)
        EXPECT_FALSE(slot.isPerm);
    EXPECT_FALSE(c.needsEnv);
}

TEST(Normalize, CutAfterCallNeedsSlot)
{
    Normalized n("p :- q, !.\nq.");
    const FlatClause &c = n.pred("p", 0).clauses[0];
    EXPECT_TRUE(c.hasCut);
    EXPECT_TRUE(c.cutNeedsSlot);
    EXPECT_TRUE(c.needsEnv);
    EXPECT_GE(c.numPerms, 1); // the cut barrier slot
}

TEST(Normalize, CutBeforeCallNeedsNoSlot)
{
    Normalized n("p(X) :- X > 0, !, q(X).\nq(_).");
    const FlatClause &c = n.pred("p", 1).clauses[0];
    EXPECT_TRUE(c.hasCut);
    EXPECT_FALSE(c.cutNeedsSlot);
}

TEST(Normalize, NonLastCallForcesEnvironment)
{
    Normalized n("p :- q, 1 < 2.\nq.");
    EXPECT_TRUE(n.pred("p", 0).clauses[0].needsEnv);
}

TEST(Normalize, PermSlotsAreDense)
{
    Normalized n("p(A,B,C) :- q(A), q(B), q(C), q(A), q(B), q(C).\n"
                 "q(_).");
    const FlatClause &c = n.pred("p", 3).clauses[0];
    std::set<int> slots;
    for (const auto &[var, slot] : c.vars) {
        if (slot.isPerm)
            slots.insert(slot.slot);
    }
    EXPECT_EQ(static_cast<int>(slots.size()), c.numPerms);
    if (!slots.empty()) {
        EXPECT_EQ(*slots.begin(), 0);
        EXPECT_EQ(*slots.rbegin(),
                  static_cast<int>(slots.size()) - 1);
    }
}

TEST(Normalize, VariableGoalIsError)
{
    Interner in;
    auto p = std::make_unique<prolog::Program>(
        prolog::parseProgram("p(X) :- X.", in));
    EXPECT_THROW(normalize(*p), CompileError);
}

TEST(Normalize, BuiltinTableSanity)
{
    Interner in;
    EXPECT_TRUE(isBuiltin(in, in.intern("is"), 2));
    EXPECT_TRUE(isBuiltin(in, in.intern("out"), 1));
    EXPECT_TRUE(isBuiltin(in, in.intern("halt"), 0));
    EXPECT_FALSE(isBuiltin(in, in.intern("is"), 3));
    EXPECT_FALSE(isBuiltin(in, in.intern("append"), 3));
}
