/**
 * @file
 * Randomised property tests: generate random workloads, compute the
 * ground truth in C++, and check the whole pipeline (and the VLIW
 * back end) produces the same answers. This exercises unification,
 * indexing, arithmetic and backtracking on inputs nobody hand-picked.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "machine/config.hh"
#include "suite/cache.hh"
#include "suite/pipeline.hh"
#include "support/text.hh"

using namespace symbol;

namespace
{

std::string
listLiteral(const std::vector<int> &xs)
{
    std::string out = "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i)
            out += ",";
        out += strprintf("%d", xs[i]);
    }
    return out + "]";
}

std::string
runSeq(const std::string &src)
{
    suite::Benchmark b;
    b.name = "random";
    b.source = src;
    suite::Workload w(b);
    return w.seqOutput();
}

} // namespace

class RandomLists : public ::testing::TestWithParam<int>
{
  protected:
    std::mt19937 rng_{static_cast<unsigned>(GetParam())};

    std::vector<int>
    randomList(int max_len, int max_val)
    {
        std::uniform_int_distribution<int> len(0, max_len);
        std::uniform_int_distribution<int> val(-max_val, max_val);
        std::vector<int> xs(static_cast<std::size_t>(len(rng_)));
        for (int &x : xs)
            x = val(rng_);
        return xs;
    }
};

TEST_P(RandomLists, QsortSortsAnything)
{
    std::vector<int> xs = randomList(24, 99);
    std::string src = strprintf(R"(
        qs([], R, R).
        qs([X|L], R, R0) :-
            part(L, X, L1, L2), qs(L2, R1, R0), qs(L1, R, [X|R1]).
        part([], _, [], []).
        part([X|L], Y, [X|L1], L2) :- X =< Y, !, part(L, Y, L1, L2).
        part([X|L], Y, L1, [X|L2]) :- part(L, Y, L1, L2).
        main :- qs(%s, R, []), out(R).
    )", listLiteral(xs).c_str());
    std::vector<int> sorted = xs;
    std::stable_sort(sorted.begin(), sorted.end());
    EXPECT_EQ(runSeq(src), listLiteral(sorted) + "\n");
}

TEST_P(RandomLists, NreverseReversesAnything)
{
    std::vector<int> xs = randomList(30, 999);
    std::string src = strprintf(R"(
        app([], L, L).
        app([X|A], B, [X|C]) :- app(A, B, C).
        rev([], []).
        rev([X|L], R) :- rev(L, T), app(T, [X], R).
        main :- rev(%s, R), out(R).
    )", listLiteral(xs).c_str());
    std::vector<int> r(xs.rbegin(), xs.rend());
    EXPECT_EQ(runSeq(src), listLiteral(r) + "\n");
}

TEST_P(RandomLists, SumAndMaxViaArithmetic)
{
    std::vector<int> xs = randomList(20, 500);
    if (xs.empty())
        xs.push_back(0);
    std::string src = strprintf(R"(
        sum([], 0).
        sum([X|L], S) :- sum(L, S1), S is S1 + X.
        max([X], X).
        max([X|L], M) :- max(L, M1), (X > M1 -> M = X ; M = M1).
        main :- sum(%s, S), max(%s, M), out(S), out(M).
    )", listLiteral(xs).c_str(), listLiteral(xs).c_str());
    int sum = 0, mx = xs[0];
    for (int x : xs) {
        sum += x;
        mx = std::max(mx, x);
    }
    EXPECT_EQ(runSeq(src), strprintf("%d\n%d\n", sum, mx));
}

TEST_P(RandomLists, MemberFindsEveryElementViaBacktracking)
{
    std::vector<int> xs = randomList(12, 9);
    std::string src = strprintf(R"(
        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
        main :- member(X, %s), out(X), fail.
        main :- out(done).
    )", listLiteral(xs).c_str());
    std::string expect;
    for (int x : xs)
        expect += strprintf("%d\n", x);
    expect += "done\n";
    EXPECT_EQ(runSeq(src), expect);
}

TEST_P(RandomLists, VliwAgreesWithSequentialOnRandomInput)
{
    std::vector<int> xs = randomList(16, 50);
    suite::Benchmark b;
    b.name = "random_vliw";
    b.source = strprintf(R"(
        app([], L, L).
        app([X|A], B, [X|C]) :- app(A, B, C).
        rev([], []).
        rev([X|L], R) :- rev(L, T), app(T, [X], R).
        main :- rev(%s, R), app(R, %s, S), out(S).
    )", listLiteral(xs).c_str(), listLiteral(xs).c_str());
    suite::Workload w(b);
    // runVliw throws if the VLIW output diverges.
    for (int units : {1, 3}) {
        suite::VliwRun r = w.runVliw(
            machine::MachineConfig::idealShared(units));
        EXPECT_EQ(r.latencyViolations, 0u);
    }
}

TEST_P(RandomLists, CachedProfileMatchesFreshRecomputation)
{
    // Seeded-random sweep of the artefact cache: for random programs
    // under varying front-end options, a cache-served workload must
    // carry exactly the emulation profile a fresh recomputation
    // produces — the Expect/taken vectors drive compaction, so any
    // drift here would silently skew every downstream figure.
    suite::WorkloadCache cache;
    for (int round = 0; round < 3; ++round) {
        std::vector<int> xs = randomList(14, 30);
        suite::Benchmark b;
        b.name = strprintf("cached_profile_%d", round);
        b.source = strprintf(R"(
            app([], L, L).
            app([X|A], B, [X|C]) :- app(A, B, C).
            rev([], []).
            rev([X|L], R) :- rev(L, T), app(T, [X], R).
            len([], 0).
            len([_|T], N) :- len(T, N1), N is N1 + 1.
            main :- rev(%s, R), len(R, N), out(R), out(N).
        )", listLiteral(xs).c_str());

        suite::WorkloadOptions opts;
        opts.compiler.indexing = (round % 2) == 0;

        const suite::Workload &cached0 = cache.get(b, opts);
        const suite::Workload &cached1 = cache.get(b, opts);
        // Same key: the artefact itself is shared, not rebuilt.
        EXPECT_EQ(&cached0, &cached1);

        suite::Workload fresh(b, opts);
        EXPECT_EQ(cached0.profile().expect, fresh.profile().expect);
        EXPECT_EQ(cached0.profile().taken, fresh.profile().taken);
        EXPECT_EQ(cached0.instructions(), fresh.instructions());
        EXPECT_EQ(cached0.seqCycles(), fresh.seqCycles());
        EXPECT_EQ(cached0.seqOutput(), fresh.seqOutput());

        // Different front-end options must key differently: the
        // profiles describe different programs.
        suite::WorkloadOptions flipped = opts;
        flipped.compiler.indexing = !opts.compiler.indexing;
        EXPECT_NE(suite::WorkloadCache::keyOf(b, opts),
                  suite::WorkloadCache::keyOf(b, flipped));
        const suite::Workload &other = cache.get(b, flipped);
        EXPECT_NE(&other, &cached0);
        EXPECT_EQ(other.seqOutput(), fresh.seqOutput());
    }
    suite::CacheStats st = cache.stats();
    EXPECT_EQ(st.misses, 6u); // 3 rounds x 2 option sets
    EXPECT_EQ(st.hits, 3u);   // the repeated get per round
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLists,
                         ::testing::Range(1, 11));
