/**
 * @file
 * Unit tests for the support library: interner, text helpers,
 * diagnostics.
 */

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "support/diagnostics.hh"
#include "support/fnv.hh"
#include "support/interner.hh"
#include "support/json.hh"
#include "support/text.hh"

using namespace symbol;

TEST(Interner, InternIsIdempotent)
{
    Interner in;
    AtomId a = in.intern("foo");
    AtomId b = in.intern("foo");
    EXPECT_EQ(a, b);
    EXPECT_EQ(in.name(a), "foo");
}

TEST(Interner, DistinctNamesGetDistinctIds)
{
    Interner in;
    AtomId a = in.intern("foo");
    AtomId b = in.intern("bar");
    EXPECT_NE(a, b);
    EXPECT_EQ(in.name(b), "bar");
}

TEST(Interner, FindReturnsMinusOneForUnknown)
{
    Interner in;
    EXPECT_EQ(in.find("nonexistent"), -1);
    in.intern("known");
    EXPECT_NE(in.find("known"), -1);
}

TEST(Interner, PreinternedAtoms)
{
    Interner in;
    EXPECT_EQ(in.name(in.nilAtom()), "[]");
    EXPECT_EQ(in.name(in.trueAtom()), "true");
    EXPECT_EQ(in.name(in.failAtom()), "fail");
}

TEST(Interner, ValidRejectsOutOfRange)
{
    Interner in;
    EXPECT_FALSE(in.valid(-1));
    EXPECT_FALSE(in.valid(1000000));
    EXPECT_TRUE(in.valid(in.nilAtom()));
}

TEST(Interner, SizeGrowsWithInterning)
{
    Interner in;
    std::size_t base = in.size();
    in.intern("a");
    in.intern("b");
    in.intern("a");
    EXPECT_EQ(in.size(), base + 2);
}

TEST(Text, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.2f", 1.234), "1.23");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Text, Split)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
}

TEST(Text, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(Text, RenderTableAlignsColumns)
{
    std::string t = renderTable({{"name", "val"}, {"x", "1234"}});
    // Header, separator, one data row.
    auto lines = split(t, '\n');
    ASSERT_GE(lines.size(), 3u);
    EXPECT_NE(lines[1].find("---"), std::string::npos);
    EXPECT_NE(lines[2].find("1234"), std::string::npos);
}

TEST(Text, BarLineClampsFraction)
{
    std::string full = barLine("x", 2.0, 10, "v");
    std::string empty = barLine("x", -1.0, 10, "v");
    EXPECT_NE(full.find("##########"), std::string::npos);
    EXPECT_EQ(empty.find('#'), std::string::npos);
}

TEST(Diagnostics, CompileErrorCarriesPosition)
{
    CompileError e(SourcePos{3, 7}, "bad thing");
    EXPECT_EQ(std::string(e.what()), "3:7: bad thing");
}

TEST(Diagnostics, RuntimeErrorMessage)
{
    RuntimeError e("boom");
    EXPECT_EQ(std::string(e.what()), "boom");
}

TEST(Json, ParseRoundTripsScalars)
{
    EXPECT_TRUE(json::parse("null").isNull());
    EXPECT_TRUE(json::parse("true").asBool());
    EXPECT_FALSE(json::parse("false").asBool());
    EXPECT_EQ(json::parse("42").asInt(), 42);
    EXPECT_EQ(json::parse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(json::parse("2.5").asDouble(), 2.5);
    EXPECT_EQ(json::parse("\"hi\\n\"").asString(), "hi\n");
}

TEST(Json, LargeIntegersSurviveExactly)
{
    std::int64_t big = 9007199254740995; // > 2^53: not a double
    json::Value v(big);
    EXPECT_EQ(json::parse(v.dump()).asInt(), big);
}

TEST(Json, NonIntegralNumberRefusesAsInt)
{
    EXPECT_THROW(json::parse("2.5").asInt(), RuntimeError);
    EXPECT_NO_THROW(json::parse("3.0").asInt());
}

TEST(Json, ObjectDumpIsKeySorted)
{
    json::Object o;
    o["zeta"] = std::uint64_t{1};
    o["alpha"] = std::uint64_t{2};
    o["mid"] = "x";
    EXPECT_EQ(json::Value(o).dump(),
              "{\"alpha\":2,\"mid\":\"x\",\"zeta\":1}");
}

TEST(Json, NestedStructuresRoundTrip)
{
    std::string text =
        "{\"a\":[1,2,{\"b\":true}],\"c\":{\"d\":[]},\"e\":null}";
    json::Value v = json::parse(text);
    EXPECT_EQ(v.at("a").asArray().size(), 3u);
    EXPECT_TRUE(v.at("a").asArray()[2].at("b").asBool());
    EXPECT_TRUE(v.at("c").at("d").asArray().empty());
    EXPECT_TRUE(v.at("e").isNull());
    EXPECT_FALSE(v.has("zzz"));
    EXPECT_EQ(v.dump(), text);
}

TEST(Json, ParseErrorsCarryPosition)
{
    EXPECT_THROW(json::parse("{\"a\":}"), RuntimeError);
    EXPECT_THROW(json::parse("[1,2"), RuntimeError);
    EXPECT_THROW(json::parse("42 garbage"), RuntimeError);
    EXPECT_THROW(json::parse(""), RuntimeError);
}

TEST(Json, EscapeControlCharacters)
{
    EXPECT_EQ(json::escape("a\"b\\c\n\t\x01"),
              "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST(Fnv, KnownVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(support::fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(support::fnv1a(""), support::kFnvOffsetBasis);
    EXPECT_EQ(support::fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(support::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv, SeedChainingMatchesConcatenation)
{
    // A bare string literal with a seed would bind to the raw-bytes
    // overload (seed read as a length); pass string_views.
    using std::string_view;
    std::uint64_t whole = support::fnv1a("hello, world");
    std::uint64_t chained = support::fnv1a(
        string_view(", world"), support::fnv1a(string_view("hello")));
    EXPECT_EQ(whole, chained);
}

TEST(Fnv, RawBytesOverloadAgrees)
{
    const char buf[] = {'a', 'b', 'c'};
    EXPECT_EQ(support::fnv1a(buf, 3), support::fnv1a("abc"));
}

// bench/common.hh percentile(): the linear-interpolation definition
// the symbold load generator reports p50/p90/p99 with.

TEST(Percentile, SingleSampleIsEveryPercentile)
{
    std::vector<double> xs = {42.0};
    EXPECT_EQ(bench::percentile(xs, 0.0), 42.0);
    EXPECT_EQ(bench::percentile(xs, 50.0), 42.0);
    EXPECT_EQ(bench::percentile(xs, 100.0), 42.0);
}

TEST(Percentile, InterpolatesBetweenClosestRanks)
{
    // Ranks for n=4: r = p/100 * 3.
    std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(bench::percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(bench::percentile(xs, 50.0), 25.0);
    EXPECT_DOUBLE_EQ(bench::percentile(xs, 75.0), 32.5);
    EXPECT_DOUBLE_EQ(bench::percentile(xs, 100.0), 40.0);
}

TEST(Percentile, SortsACopyAndKeepsCallerOrder)
{
    std::vector<double> xs = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(bench::percentile(xs, 50.0), 2.0);
    EXPECT_EQ(xs, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Percentile, TailPercentilesOfAUniformRamp)
{
    std::vector<double> xs;
    for (int i = 1; i <= 100; ++i)
        xs.push_back(static_cast<double>(i));
    EXPECT_NEAR(bench::percentile(xs, 50.0), 50.5, 1e-9);
    EXPECT_NEAR(bench::percentile(xs, 90.0), 90.1, 1e-9);
    EXPECT_NEAR(bench::percentile(xs, 99.0), 99.01, 1e-9);
}

TEST(Percentile, RejectsEmptyAndOutOfRange)
{
    EXPECT_THROW(bench::percentile({}, 50.0),
                 std::invalid_argument);
    EXPECT_THROW(bench::percentile({1.0}, -1.0),
                 std::invalid_argument);
    EXPECT_THROW(bench::percentile({1.0}, 100.5),
                 std::invalid_argument);
}

TEST(ReqPerSec, RateDividesRequestsByWall)
{
    bench::ReqPerSec r{120, 4.0};
    EXPECT_DOUBLE_EQ(r.rate(), 30.0);
    EXPECT_EQ(r.str(), "30.0");
}

TEST(ReqPerSec, RejectsNonPositiveDuration)
{
    EXPECT_THROW((bench::ReqPerSec{1, 0.0}.rate()),
                 std::invalid_argument);
    EXPECT_THROW((bench::ReqPerSec{1, -2.0}.rate()),
                 std::invalid_argument);
}
