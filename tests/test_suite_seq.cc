/**
 * @file
 * Integration tests: every Aquarius benchmark compiles, runs to
 * completion on the sequential emulator, and produces its pinned
 * expected answer.
 */

#include <gtest/gtest.h>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/cfg.hh"
#include "intcode/translate.hh"
#include "prolog/parser.hh"
#include "suite/benchmarks.hh"

using namespace symbol;

class SuiteSeq : public ::testing::TestWithParam<suite::Benchmark>
{
};

TEST_P(SuiteSeq, ProducesExpectedAnswer)
{
    const suite::Benchmark &b = GetParam();
    Interner in;
    prolog::Program p = prolog::parseProgram(b.source, in);
    bam::Module m = bamc::compile(p);
    ASSERT_TRUE(bam::verify(m).empty());
    intcode::Program ici = intcode::translate(m);
    emul::Machine mach(ici);
    emul::RunOptions o;
    o.maxSteps = 600'000'000;
    emul::RunResult r = mach.run(o);
    EXPECT_TRUE(r.halted);
    ASSERT_FALSE(b.expected.empty());
    EXPECT_EQ(mach.decodeOutput(), b.expected);
}

TEST_P(SuiteSeq, CfgIsWellFormed)
{
    const suite::Benchmark &b = GetParam();
    Interner in;
    prolog::Program p = prolog::parseProgram(b.source, in);
    bam::Module m = bamc::compile(p);
    intcode::Program ici = intcode::translate(m);
    intcode::Cfg cfg = intcode::Cfg::build(ici);

    // Every instruction belongs to exactly one block, blocks tile the
    // program, and every edge is symmetric.
    int covered = 0;
    for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        const intcode::Block &blk = cfg.blocks[bi];
        ASSERT_LE(blk.first, blk.last);
        covered += blk.size();
        for (int k = blk.first; k <= blk.last; ++k)
            EXPECT_EQ(cfg.blockOf[static_cast<std::size_t>(k)],
                      static_cast<int>(bi));
        // Only the last instruction may be control.
        for (int k = blk.first; k < blk.last; ++k)
            EXPECT_FALSE(intcode::isControl(
                ici.code[static_cast<std::size_t>(k)].op));
        for (int s : blk.succs) {
            const auto &preds =
                cfg.blocks[static_cast<std::size_t>(s)].preds;
            EXPECT_NE(std::find(preds.begin(), preds.end(),
                                static_cast<int>(bi)),
                      preds.end());
        }
    }
    EXPECT_EQ(covered, static_cast<int>(ici.code.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Aquarius, SuiteSeq, ::testing::ValuesIn(suite::aquarius()),
    [](const ::testing::TestParamInfo<suite::Benchmark> &info) {
        return info.param.name;
    });
