/**
 * @file
 * Figure 3: maximum ideal speedup as a function of the enhancement
 * applied to ALU/control/move operations, under the shared-memory
 * model. The dotted curve assumes memory accesses execute separately
 * from computation; the continuous curve assumes they overlap
 * completely, saturating at 1/mem_fraction ~ 3 — the Amdahl bound of
 * §4.2 ("factors of concurrency greater than three are useless").
 *
 * The memory fraction is the measured Figure-2 average, so this
 * figure is regenerated from the same profiles as the paper's.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    const std::vector<std::string> names = suiteNames();

    std::vector<analysis::InstructionMix> mixes =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            return analysis::instructionMix(w.ici(), w.profile());
        });

    analysis::InstructionMix all;
    for (const analysis::InstructionMix &mix : mixes)
        all += mix;
    double mem = all.memory;
    std::printf("measured memory fraction: %.3f (paper: 0.32)\n",
                mem);
    std::printf("asymptotic shared-memory speedup: %.2f (paper: "
                "~3.0)\n",
                1.0 / mem);

    Table table({"enhancement", "separate(dotted)",
                 "overlapped(solid)"});
    for (double f : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0,
                     12.0, 16.0}) {
        table.row({fmt(f, 1),
                   fmt(analysis::amdahlSpeedup(mem, f, false)),
                   fmt(analysis::amdahlSpeedup(mem, f, true))});
    }
    table.print("Figure 3 - ideal speedup vs. non-memory "
                "enhancement");

    // ASCII rendition of the two curves.
    std::printf("\n");
    for (double f : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
        double s = analysis::amdahlSpeedup(mem, f, true);
        std::printf("%s\n",
                    barLine("x" + fmt(f, 0), s / 3.5, 40, fmt(s))
                        .c_str());
    }
    reportDriverStats();
    return 0;
}
