/**
 * @file
 * Google-benchmark microbenchmarks of the toolchain itself: parser,
 * BAM compiler, translator, sequential emulator, compactor and VLIW
 * simulator throughput. These are engineering health checks for the
 * repo, not paper artifacts.
 */

#include <benchmark/benchmark.h>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "machine/config.hh"
#include "prolog/parser.hh"
#include "sched/compact.hh"
#include "suite/pipeline.hh"
#include "vliw/sim.hh"

using namespace symbol;

namespace
{

const suite::Benchmark &
nrev()
{
    return suite::benchmark("nreverse");
}

const suite::Workload &
nrevWorkload()
{
    static suite::Workload w(nrev());
    return w;
}

} // namespace

static void
BM_ParseProgram(benchmark::State &state)
{
    for (auto _ : state) {
        Interner in;
        benchmark::DoNotOptimize(
            prolog::parseProgram(nrev().source, in));
    }
}
BENCHMARK(BM_ParseProgram);

static void
BM_CompileToBam(benchmark::State &state)
{
    for (auto _ : state) {
        Interner in;
        prolog::Program p = prolog::parseProgram(nrev().source, in);
        benchmark::DoNotOptimize(bamc::compile(p));
    }
}
BENCHMARK(BM_CompileToBam);

static void
BM_TranslateToIntcode(benchmark::State &state)
{
    Interner in;
    prolog::Program p = prolog::parseProgram(nrev().source, in);
    bam::Module m = bamc::compile(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(intcode::translate(m));
}
BENCHMARK(BM_TranslateToIntcode);

static void
BM_SequentialEmulation(benchmark::State &state)
{
    const suite::Workload &w = nrevWorkload();
    for (auto _ : state) {
        emul::Machine mach(w.ici());
        benchmark::DoNotOptimize(mach.run());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(w.instructions()));
}
BENCHMARK(BM_SequentialEmulation);

static void
BM_TraceCompaction(benchmark::State &state)
{
    const suite::Workload &w = nrevWorkload();
    auto mc = machine::MachineConfig::idealShared(
        static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::compact(w.ici(), w.profile(), mc, {}));
}
BENCHMARK(BM_TraceCompaction)->Arg(1)->Arg(3)->Arg(5);

static void
BM_VliwSimulation(benchmark::State &state)
{
    const suite::Workload &w = nrevWorkload();
    auto mc = machine::MachineConfig::idealShared(3);
    auto cr = sched::compact(w.ici(), w.profile(), mc, {});
    for (auto _ : state) {
        vliw::Machine vm(cr.code, mc);
        benchmark::DoNotOptimize(vm.run());
    }
}
BENCHMARK(BM_VliwSimulation);

BENCHMARK_MAIN();
