/**
 * @file
 * Google-benchmark microbenchmarks of the toolchain itself: parser,
 * BAM compiler, translator, sequential emulator, compactor and VLIW
 * simulator throughput. These are engineering health checks for the
 * repo, not paper artifacts.
 */

#include <benchmark/benchmark.h>

#include <stdlib.h>

#include <chrono>
#include <filesystem>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "machine/config.hh"
#include "pass/instrument.hh"
#include "prolog/parser.hh"
#include "sched/compact.hh"
#include "suite/driver.hh"
#include "suite/pipeline.hh"
#include "vliw/sim.hh"

using namespace symbol;

namespace
{

const suite::Benchmark &
nrev()
{
    return suite::benchmark("nreverse");
}

const suite::Workload &
nrevWorkload()
{
    static suite::Workload w(nrev());
    return w;
}

} // namespace

static void
BM_ParseProgram(benchmark::State &state)
{
    for (auto _ : state) {
        Interner in;
        benchmark::DoNotOptimize(
            prolog::parseProgram(nrev().source, in));
    }
}
BENCHMARK(BM_ParseProgram);

static void
BM_CompileToBam(benchmark::State &state)
{
    for (auto _ : state) {
        Interner in;
        prolog::Program p = prolog::parseProgram(nrev().source, in);
        benchmark::DoNotOptimize(bamc::compile(p));
    }
}
BENCHMARK(BM_CompileToBam);

static void
BM_TranslateToIntcode(benchmark::State &state)
{
    Interner in;
    prolog::Program p = prolog::parseProgram(nrev().source, in);
    bam::Module m = bamc::compile(p);
    for (auto _ : state)
        benchmark::DoNotOptimize(intcode::translate(m));
}
BENCHMARK(BM_TranslateToIntcode);

static void
BM_SequentialEmulation(benchmark::State &state)
{
    const suite::Workload &w = nrevWorkload();
    for (auto _ : state) {
        emul::Machine mach(w.ici());
        benchmark::DoNotOptimize(mach.run());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(w.instructions()));
}
BENCHMARK(BM_SequentialEmulation);

static void
BM_TraceCompaction(benchmark::State &state)
{
    const suite::Workload &w = nrevWorkload();
    auto mc = machine::MachineConfig::idealShared(
        static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::compact(w.ici(), w.profile(), mc, {}));
}
BENCHMARK(BM_TraceCompaction)->Arg(1)->Arg(3)->Arg(5);

static void
BM_VliwSimulation(benchmark::State &state)
{
    const suite::Workload &w = nrevWorkload();
    auto mc = machine::MachineConfig::idealShared(3);
    auto cr = sched::compact(w.ici(), w.profile(), mc, {});
    for (auto _ : state) {
        vliw::Machine vm(cr.code, mc);
        benchmark::DoNotOptimize(vm.run());
    }
}
BENCHMARK(BM_VliwSimulation);

static void
BM_PipelinePasses(benchmark::State &state)
{
    // The whole pipeline, front and back half, through the pass
    // framework with a local instrumentation sink. Each pass's
    // accumulated wall time surfaces as a per-iteration counter, so
    // a regression in any single stage is visible directly in the
    // benchmark output instead of hiding inside an end-to-end time.
    auto mc = machine::MachineConfig::idealShared(3);
    pass::PassInstrumentation instr;
    for (auto _ : state) {
        suite::WorkloadOptions wo;
        wo.passInstr = &instr;
        suite::Workload w(nrev(), wo);
        benchmark::DoNotOptimize(w.runVliw(mc));
    }
    for (const pass::PassStats &p : instr.snapshot()) {
        if (p.invocations == 0)
            continue;
        state.counters[p.name + "_s"] =
            p.wallSeconds / static_cast<double>(state.iterations());
    }
}
BENCHMARK(BM_PipelinePasses)->Unit(benchmark::kMillisecond);

static void
BM_SuiteFrontHalfWarmStart(benchmark::State &state)
{
    // Cold-vs-warm start of the whole suite's front half through the
    // persistent artefact store: one timed cold pass populates a
    // fresh store (parse + compile + translate + profiling emulation
    // for every benchmark), then each iteration restores everything
    // from disk. The counters report the one-off cold seconds, the
    // per-iteration warm seconds and their ratio; `rebuilds` must
    // stay 0 or the store failed to serve a warm start.
    namespace fs = std::filesystem;
    using clock = std::chrono::steady_clock;
    char tmpl[] = "/tmp/symbol-bench-store-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
        state.SkipWithError("mkdtemp failed");
        return;
    }
    std::string dir = tmpl;
    std::vector<std::string> names;
    for (const auto &b : suite::aquarius())
        names.push_back(b.name);

    auto prefetchAll = [&] {
        suite::DriverOptions o;
        o.jobs = 1; // single-threaded: a clean cold/warm ratio
        o.cacheDir = dir;
        suite::EvalDriver d(o);
        d.prefetch(names);
        return d.stats().workloadsBuilt;
    };

    auto cold0 = clock::now();
    prefetchAll();
    double coldSeconds =
        std::chrono::duration<double>(clock::now() - cold0).count();

    std::uint64_t rebuilds = 0;
    double warmSeconds = 0.0;
    for (auto _ : state) {
        auto t0 = clock::now();
        rebuilds += prefetchAll();
        warmSeconds +=
            std::chrono::duration<double>(clock::now() - t0).count();
    }
    double warmPerIter =
        warmSeconds / static_cast<double>(state.iterations());
    state.counters["cold_s"] = coldSeconds;
    state.counters["warm_s"] = warmPerIter;
    state.counters["cold_over_warm"] =
        warmPerIter > 0.0 ? coldSeconds / warmPerIter : 0.0;
    state.counters["rebuilds"] = static_cast<double>(rebuilds);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(names.size()));

    std::error_code ec;
    fs::remove_all(dir, ec);
}
BENCHMARK(BM_SuiteFrontHalfWarmStart)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
