/**
 * @file
 * Ablation: value of branching directly on the tag field (§4.5's
 * dedicated Prolog support). The baseline expands every tag branch
 * into gettag + compare-branch, modelling an uncommitted RISC
 * datapath — the "complex mask constructs for simple operations"
 * overhead the introduction motivates the work with.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    suite::WorkloadOptions plain;
    plain.translate.expandTagBranches = true;

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"benchmark", "tag-branch.cyc", "expanded.cyc",
                    "overhead%", "seq.overhead%"});
    double ov = 0, sov = 0;
    int n = 0;
    for (const auto &b : suite::aquarius()) {
        const suite::Workload &w = workload(b.name);
        const suite::Workload &wx = workload(b.name, plain);
        suite::VliwRun r = w.runVliw(mc);
        suite::VliwRun rx = wx.runVliw(mc);
        double o = 100.0 * (static_cast<double>(rx.cycles) /
                                static_cast<double>(r.cycles) -
                            1.0);
        double so = 100.0 * (static_cast<double>(wx.seqCycles()) /
                                 static_cast<double>(w.seqCycles()) -
                             1.0);
        rows.push_back({b.name, fmtU(r.cycles), fmtU(rx.cycles),
                        fmt(o, 1), fmt(so, 1)});
        ov += o;
        sov += so;
        ++n;
    }
    rows.push_back({"Average", "", "", fmt(ov / n, 1),
                    fmt(sov / n, 1)});
    printTable("Ablation - branch-on-tag hardware vs gettag+compare "
               "expansion (3-unit VLIW)",
               rows);
    std::printf("\nthe datapath tag support pays for itself on every "
                "dispatch and dereference step\n");
    return 0;
}
