/**
 * @file
 * Ablation: value of branching directly on the tag field (§4.5's
 * dedicated Prolog support). The baseline expands every tag branch
 * into gettag + compare-branch, modelling an uncommitted RISC
 * datapath — the "complex mask constructs for simple operations"
 * overhead the introduction motivates the work with.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

namespace
{

struct Row
{
    suite::VliwRun tagged;
    suite::VliwRun expanded;
    std::uint64_t seqTagged;
    std::uint64_t seqExpanded;
};

} // namespace

int
main()
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    suite::WorkloadOptions plain;
    plain.translate.expandTagBranches = true;
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();
    prefetchSuite(plain); // the expanded front ends, concurrently too

    std::vector<Row> results =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            const suite::Workload &wx = workload(names[i], plain);
            return Row{w.runVliw(mc), wx.runVliw(mc), w.seqCycles(),
                       wx.seqCycles()};
        });

    Table table({"benchmark", "tag-branch.cyc", "expanded.cyc",
                 "overhead%", "seq.overhead%"});
    Avg ov, sov;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const Row &res = results[i];
        double o = pctOver(res.expanded.cycles, res.tagged.cycles);
        double so = pctOver(res.seqExpanded, res.seqTagged);
        table.row({names[i], fmtU(res.tagged.cycles),
                   fmtU(res.expanded.cycles), fmt(o, 1),
                   fmt(so, 1)});
        ov.add(o);
        sov.add(so);
    }
    table.row({"Average", "", "", ov.str(1), sov.str(1)});
    table.print("Ablation - branch-on-tag hardware vs gettag+compare "
                "expansion (3-unit VLIW)");
    std::printf("\nthe datapath tag support pays for itself on every "
                "dispatch and dereference step\n");
    reportDriverStats();
    return 0;
}
