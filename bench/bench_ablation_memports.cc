/**
 * @file
 * Extension study: the paper's conclusion (§6) argues shared-memory
 * Prolog has hit its ceiling and only distributed/multi-ported memory
 * models can break the ~3x Amdahl bound. This harness sweeps the
 * number of shared-memory ports on a 4-unit machine and reports how
 * the measured speedup escapes the single-port bound.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    const int kPorts[] = {1, 2, 4};
    const std::size_t kNumPorts = 3;
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();

    // One task per (benchmark, port-count) grid point.
    std::vector<suite::VliwRun> runs = parallelIndex(
        names.size() * kNumPorts, [&](std::size_t i) {
            machine::MachineConfig mc =
                machine::MachineConfig::idealShared(4);
            mc.memPortsTotal = kPorts[i % kNumPorts];
            return workload(names[i / kNumPorts]).runVliw(mc);
        });

    Table table({"benchmark", "1 port", "2 ports", "4 ports"});
    std::vector<Avg> sums(kNumPorts);
    for (std::size_t b = 0; b < names.size(); ++b) {
        std::vector<std::string> row = {names[b]};
        for (std::size_t c = 0; c < kNumPorts; ++c) {
            double su = runs[b * kNumPorts + c].speedupVsSeq;
            row.push_back(fmt(su));
            sums[c].add(su);
        }
        table.row(row);
    }
    table.row({"Average", sums[0].str(), sums[1].str(),
               sums[2].str()});
    table.print("Extension - shared-memory port sweep (4 units): "
                "beyond the paper's single-port model");
    std::printf("\n§6: \"we can't overcome Amdahl's limit of speedup "
                "(about 3) with a shared memory model\" — additional "
                "ports are the escape hatch the conclusion "
                "anticipates (true multi-bank disambiguation is the "
                "open research it calls for)\n");
    reportDriverStats();
    return 0;
}
