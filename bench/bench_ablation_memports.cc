/**
 * @file
 * Extension study: the paper's conclusion (§6) argues shared-memory
 * Prolog has hit its ceiling and only distributed/multi-ported memory
 * models can break the ~3x Amdahl bound. This harness sweeps the
 * number of shared-memory ports on a 4-unit machine and reports how
 * the measured speedup escapes the single-port bound.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"benchmark", "1 port", "2 ports", "4 ports"});
    std::vector<double> sums(3, 0.0);
    int n = 0;
    for (const auto &b : suite::aquarius()) {
        const suite::Workload &w = workload(b.name);
        std::vector<std::string> row = {b.name};
        int col = 0;
        for (int ports : {1, 2, 4}) {
            machine::MachineConfig mc =
                machine::MachineConfig::idealShared(4);
            mc.memPortsTotal = ports;
            suite::VliwRun r = w.runVliw(mc);
            row.push_back(fmt(r.speedupVsSeq));
            sums[static_cast<std::size_t>(col++)] += r.speedupVsSeq;
        }
        rows.push_back(row);
        ++n;
    }
    rows.push_back({"Average", fmt(sums[0] / n), fmt(sums[1] / n),
                    fmt(sums[2] / n)});
    printTable("Extension - shared-memory port sweep (4 units): "
               "beyond the paper's single-port model",
               rows);
    std::printf("\n§6: \"we can't overcome Amdahl's limit of speedup "
                "(about 3) with a shared memory model\" — additional "
                "ports are the escape hatch the conclusion "
                "anticipates (true multi-bank disambiguation is the "
                "open research it calls for)\n");
    return 0;
}
