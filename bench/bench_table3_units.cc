/**
 * @file
 * Table 3 and Figure 6: cycles and speedup over the pure sequential
 * machine for the BAM-processor baseline and VLIW configurations of
 * 1..5 units (each unit: one memory + one ALU + one move + one
 * control slot per cycle; shared memory sustains one access per
 * cycle). Paper shape: BAM ~1.6, 1 unit ~1.6, rising to ~2.2 and
 * saturating at 3-4 units below the Amdahl bound of ~3.
 *
 * The (benchmark × units) grid fans out across the evaluation
 * driver; the table below is assembled from the in-order results, so
 * its bytes do not depend on SYMBOL_JOBS.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    const int max_units = 5;
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();

    // One task per (benchmark, unit-count) grid point.
    std::vector<suite::VliwRun> runs = parallelIndex(
        names.size() * max_units, [&](std::size_t i) {
            const std::string &name = names[i / max_units];
            int units = static_cast<int>(i % max_units) + 1;
            return workload(name).runVliw(
                machine::MachineConfig::idealShared(units));
        });

    std::vector<std::string> hdr = {"benchmark", "seq", "BAM",
                                    "BAM.su"};
    for (int u = 1; u <= max_units; ++u) {
        hdr.push_back(strprintf("%du.cyc", u));
        hdr.push_back(strprintf("%du.su", u));
    }
    Table table(hdr);

    std::vector<Avg> su_sum(static_cast<std::size_t>(max_units) + 1);
    Avg bam_sum;
    for (std::size_t b = 0; b < names.size(); ++b) {
        const suite::Workload &w = workload(names[b]);
        std::vector<std::string> row = {names[b],
                                        fmtU(w.seqCycles())};
        double bam_su = static_cast<double>(w.seqCycles()) /
                        static_cast<double>(w.bamCycles());
        row.push_back(fmtU(w.bamCycles()));
        row.push_back(fmt(bam_su));
        bam_sum.add(bam_su);
        for (int u = 1; u <= max_units; ++u) {
            const suite::VliwRun &r =
                runs[b * max_units +
                     static_cast<std::size_t>(u - 1)];
            row.push_back(fmtU(r.cycles));
            row.push_back(fmt(r.speedupVsSeq));
            su_sum[static_cast<std::size_t>(u)].add(r.speedupVsSeq);
        }
        table.row(row);
    }
    std::vector<std::string> avg = {"Average", "", "",
                                    bam_sum.str()};
    for (int u = 1; u <= max_units; ++u) {
        avg.push_back("");
        avg.push_back(su_sum[static_cast<std::size_t>(u)].str());
    }
    table.row(avg);
    table.print("Table 3 - cycles and speedup vs the sequential "
                "machine (1..5 units, shared memory)");

    std::printf("\n== Figure 6 - speedup vs number of units ==\n");
    std::printf("%s\n", barLine("BAM", bam_sum.mean() / 3.0, 40,
                                bam_sum.str()).c_str());
    for (int u = 1; u <= max_units; ++u) {
        double s = su_sum[static_cast<std::size_t>(u)].mean();
        std::printf("%s\n", barLine(strprintf("%d unit%s", u,
                                              u > 1 ? "s" : ""),
                                    s / 3.0, 40, fmt(s)).c_str());
    }
    std::printf("\npaper averages: BAM 1.58*, 1u 1.58, 2u 1.68, 3u "
                "1.89, 4u/5u saturating ~1.9-2.0 (Amdahl bound ~3)\n");
    reportDriverStats();
    return 0;
}
