/**
 * @file
 * Figure 4: the distribution of the faulty-prediction probability
 * over all dynamic branches of the suite. The paper's shape: most
 * mass near 0 (deterministic branches — dereference steps, indexing
 * dispatch), plus a small data-dependent peak around 0.4 — "the
 * fraction of branches which actually decides the semantics of the
 * programs".
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    const int bins = 10;
    const std::vector<std::string> names = suiteNames();

    std::vector<analysis::BranchStats> stats =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            return analysis::branchStats(w.ici(), w.profile(), bins);
        });

    std::vector<double> hist(bins, 0.0);
    std::uint64_t total = 0;
    for (const analysis::BranchStats &st : stats) {
        for (int k = 0; k < bins; ++k)
            hist[static_cast<std::size_t>(k)] +=
                st.histogram[static_cast<std::size_t>(k)] *
                static_cast<double>(st.branchExecutions);
        total += st.branchExecutions;
    }
    for (double &h : hist)
        h /= static_cast<double>(total);

    std::printf("== Figure 4 - distribution of P_fp over dynamic "
                "branches ==\n");
    for (int k = 0; k < bins; ++k) {
        double lo = 0.5 * k / bins, hi = 0.5 * (k + 1) / bins;
        std::printf("%s\n",
                    barLine(fmt(lo, 2) + "-" + fmt(hi, 2),
                            hist[static_cast<std::size_t>(k)], 50,
                            fmt(hist[static_cast<std::size_t>(k)] *
                                    100, 1) + "%")
                        .c_str());
    }
    std::printf("\npaper shape: large deterministic mass near 0, "
                "small data-dependent peak near 0.4\n");
    reportDriverStats();
    return 0;
}
