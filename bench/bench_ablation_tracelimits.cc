/**
 * @file
 * Ablation: trace-growth budget sweep. §4.4 weighs the code growth
 * of compensation copies against the speed of the frequent paths;
 * this harness sweeps the tail-duplication budget from none (pure
 * basic blocks) upwards and reports speedup and code size.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    const char *names[] = {"nreverse", "qsort", "serialise",
                           "queens_8", "times10", "query"};

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"dup.budget", "avg.speedup", "avg.trace.len",
                    "code.growth"});
    for (double budget : {0.0, 0.5, 1.0, 2.0, 3.0, 6.0}) {
        double su = 0, len = 0, growth = 0;
        int n = 0;
        for (const char *name : names) {
            const suite::Workload &w = workload(name);
            sched::CompactOptions co;
            co.dupBudgetFactor = budget;
            suite::VliwRun r = w.runVliw(mc, co);
            su += r.speedupVsSeq;
            len += r.stats.avgDynamicLength;
            growth += static_cast<double>(r.stats.totalOps) /
                      static_cast<double>(w.ici().code.size());
            ++n;
        }
        rows.push_back({fmt(budget, 1), fmt(su / n),
                        fmt(len / n, 1), fmt(growth / n)});
    }
    printTable("Ablation - tail-duplication budget sweep (3-unit "
               "VLIW)",
               rows);
    std::printf("\n\"disadvantages of a larger code size ... are "
                "overcome by the advantage of a faster execution of "
                "the most frequently executed parts\" (§4.4)\n");
    return 0;
}
