/**
 * @file
 * Ablation: trace-growth budget sweep. §4.4 weighs the code growth
 * of compensation copies against the speed of the frequent paths;
 * this harness sweeps the tail-duplication budget from none (pure
 * basic blocks) upwards and reports speedup and code size.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    const std::vector<std::string> names = {
        "nreverse", "qsort", "serialise",
        "queens_8", "times10", "query"};
    const std::vector<double> budgets = {0.0, 0.5, 1.0,
                                         2.0, 3.0, 6.0};
    driver().prefetch(names);

    // One task per (budget, benchmark) grid point.
    std::vector<suite::VliwRun> runs = parallelIndex(
        budgets.size() * names.size(), [&](std::size_t i) {
            sched::CompactOptions co;
            co.dupBudgetFactor = budgets[i / names.size()];
            return workload(names[i % names.size()]).runVliw(mc, co);
        });

    Table table({"dup.budget", "avg.speedup", "avg.trace.len",
                 "code.growth"});
    for (std::size_t bi = 0; bi < budgets.size(); ++bi) {
        Avg su, len, growth;
        for (std::size_t k = 0; k < names.size(); ++k) {
            const suite::VliwRun &r = runs[bi * names.size() + k];
            const suite::Workload &w = workload(names[k]);
            su.add(r.speedupVsSeq);
            len.add(r.stats.avgDynamicLength);
            growth.add(static_cast<double>(r.stats.totalOps) /
                       static_cast<double>(w.ici().code.size()));
        }
        table.row({fmt(budgets[bi], 1), su.str(), len.str(1),
                   growth.str()});
    }
    table.print("Ablation - tail-duplication budget sweep (3-unit "
                "VLIW)");
    std::printf("\n\"disadvantages of a larger code size ... are "
                "overcome by the advantage of a faster execution of "
                "the most frequently executed parts\" (§4.4)\n");
    reportDriverStats();
    return 0;
}
