/**
 * @file
 * Table 5: speedup of the SYMBOL-3 prototype (three processors, the
 * two-instruction-format restriction, a 3-stage memory pipeline and
 * 2-cycle delayed branches) over a sequential implementation obeying
 * the same operation-duration hypotheses, compared with the
 * BAM-processor baseline. Paper: trace-scheduled SYMBOL-3 reaches
 * ~1.9, slightly above the BAM's ~1.5.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

namespace
{

struct Row
{
    suite::VliwRun run;
    std::uint64_t seqSameDurations;
};

} // namespace

int
main()
{
    machine::MachineConfig proto = machine::MachineConfig::prototype(3);
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();

    // seqCyclesFor(proto) re-emulates under the prototype's latency
    // pair, so it belongs inside the fanned-out task as well.
    std::vector<Row> results =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            return Row{w.runVliw(proto), w.seqCyclesFor(proto)};
        });

    Table table({"benchmark", "seq.cycles(same durations)",
                 "SYMBOL-3.cycles", "speedup", "BAM.speedup"});
    Avg su, bam;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const suite::Workload &w = workload(names[i]);
        const suite::VliwRun &r = results[i].run;
        double bam_su = static_cast<double>(w.seqCycles()) /
                        static_cast<double>(w.bamCycles());
        table.row({names[i], fmtU(results[i].seqSameDurations),
                   fmtU(r.cycles), fmt(r.speedupVsSeq),
                   fmt(bam_su)});
        su.add(r.speedupVsSeq);
        bam.add(bam_su);
    }
    table.row({"Average", "", "", su.str(), bam.str()});
    table.print("Table 5 - SYMBOL-3 prototype speedup vs sequential "
                "(same operation durations)");
    std::printf("\npaper: SYMBOL-3 ~1.9 vs BAM ~1.5 -- global "
                "compaction recovers the prototype's format and "
                "pipeline handicaps\n");
    reportDriverStats();
    return 0;
}
