/**
 * @file
 * Table 2: average probability of a faulty branch prediction per
 * benchmark (expect-weighted). Paper average ~0.1: Prolog branches
 * are far more deterministic than the 90/50 rule would predict, which
 * is what makes trace scheduling applicable to symbolic code (§4.4).
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    const std::vector<std::string> names = suiteNames();

    std::vector<analysis::BranchStats> stats =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            return analysis::branchStats(w.ici(), w.profile());
        });

    Table table({"benchmark", "P_fp", "P_taken", "dyn.branches"});
    double weighted = 0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const analysis::BranchStats &st = stats[i];
        table.row({names[i], fmt(st.avgFaultyPrediction, 4),
                   fmt(st.avgTakenProbability, 3),
                   fmtU(st.branchExecutions)});
        weighted += st.avgFaultyPrediction *
                    static_cast<double>(st.branchExecutions);
        total += st.branchExecutions;
    }
    table.row({"Average",
               fmt(weighted / static_cast<double>(total), 4), "",
               fmtU(total)});
    table.print("Table 2 - probability of faulty prediction of "
                "branch direction");
    std::printf("\npaper average P_fp: 0.1475 (per-benchmark range "
                "0.03-0.24)\n");
    reportDriverStats();
    return 0;
}
