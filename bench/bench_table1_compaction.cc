/**
 * @file
 * Table 1: available concurrency under the shared-memory model when
 * compaction is limited to basic blocks versus global compaction on
 * traces. Like the paper, the machine has unbounded functional units
 * but a single shared-memory access per cycle; reported are the
 * speedup over the pure sequential machine and the average scheduled
 * region length (paper: traces ~11.6 ops vs basic blocks ~6.5, with
 * traces roughly 30% faster).
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

namespace
{

struct Row
{
    suite::VliwRun traces;
    suite::VliwRun blocks;
};

} // namespace

int
main()
{
    machine::MachineConfig mc =
        machine::MachineConfig::unboundedShared();
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();

    std::vector<Row> results =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            sched::CompactOptions tr, bb;
            tr.traceMode = true;
            bb.traceMode = false;
            return Row{w.runVliw(mc, tr), w.runVliw(mc, bb)};
        });

    Table table({"benchmark", "tr.speedup", "tr.len", "bb.speedup",
                 "bb.len", "gain%"});
    Avg su_t, su_b, len_t, len_b;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const suite::VliwRun &rt = results[i].traces;
        const suite::VliwRun &rb = results[i].blocks;
        double gain = pctOver(rt.speedupVsSeq, rb.speedupVsSeq);
        table.row({names[i], fmt(rt.speedupVsSeq),
                   fmt(rt.stats.avgDynamicLength, 1),
                   fmt(rb.speedupVsSeq),
                   fmt(rb.stats.avgDynamicLength, 1), fmt(gain, 1)});
        su_t.add(rt.speedupVsSeq);
        su_b.add(rb.speedupVsSeq);
        len_t.add(rt.stats.avgDynamicLength);
        len_b.add(rb.stats.avgDynamicLength);
    }
    table.row({"Average", su_t.str(), len_t.str(1), su_b.str(),
               len_b.str(1),
               fmt(pctOver(su_t.sum(), su_b.sum()), 1)});
    table.print("Table 1 - trace scheduling vs basic-block "
                "compaction (unbounded units, 1 memory port)");
    std::printf("\npaper averages: traces 2.15 speedup / 11.6 ops, "
                "basic blocks 1.65 / 6.5 (~30%% gain)\n");
    reportDriverStats();
    return 0;
}
