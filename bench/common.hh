/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses. Each
 * bench binary regenerates one artifact of the paper's evaluation;
 * the printed rows mirror the paper's layout so the shapes can be
 * compared side by side (see EXPERIMENTS.md).
 *
 * All harnesses run through the process-wide suite::EvalDriver: the
 * per-task measurements fan out across its thread pool (width from
 * the SYMBOL_JOBS environment variable, default: hardware
 * concurrency) while front-end artefacts are deduplicated by the
 * content-keyed workload cache. Results come back in input order and
 * every table is assembled sequentially afterwards, so stdout is
 * byte-identical for any jobs setting; the driver's timing/cache
 * summary goes to stderr.
 */

#ifndef SYMBOL_BENCH_COMMON_HH
#define SYMBOL_BENCH_COMMON_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/stats.hh"
#include "machine/config.hh"
#include "suite/driver.hh"
#include "support/text.hh"

namespace symbol::bench
{

/** The process-wide parallel evaluation driver. */
inline suite::EvalDriver &
driver()
{
    static suite::EvalDriver d;
    return d;
}

/** Cached workload via the driver (front end runs once per key). */
inline const suite::Workload &
workload(const std::string &name,
         const suite::WorkloadOptions &opts = {})
{
    return driver().workload(name, opts);
}

/** Suite benchmark names, in the paper's table order. */
inline std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    for (const auto &b : suite::aquarius())
        names.push_back(b.name);
    return names;
}

/** Build every suite front end concurrently before a sweep. */
inline void
prefetchSuite(const suite::WorkloadOptions &opts = {})
{
    driver().prefetch(suiteNames(), opts);
}

/** Fan fn(i), i in [0, n), out across the driver; in-order results. */
template <class F>
auto
parallelIndex(std::size_t n, F fn)
{
    return driver().map(n, fn);
}

/** Print a rendered table with a title block. */
inline void
printTable(const std::string &title,
           const std::vector<std::vector<std::string>> &rows)
{
    std::printf("\n== %s ==\n%s", title.c_str(),
                renderTable(rows).c_str());
}

/** Driver accounting to stderr (stdout stays deterministic). */
inline void
reportDriverStats()
{
    driver().reportStats();
}

inline std::string
fmt(double v, int prec = 2)
{
    return strprintf("%.*f", prec, v);
}

inline std::string
fmtU(std::uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

/** Percentage of @p num over @p den: 100 * (num/den - 1). */
inline double
pctOver(double num, double den)
{
    return 100.0 * (num / den - 1.0);
}

inline double
pctOver(std::uint64_t num, std::uint64_t den)
{
    return pctOver(static_cast<double>(num),
                   static_cast<double>(den));
}

/**
 * Streaming arithmetic mean, accumulated sum-then-divide in input
 * order — exactly the accumulation the harness tables have always
 * used, so "Average" rows keep their bytes.
 */
class Avg
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        ++n_;
    }
    double sum() const { return sum_; }
    int count() const { return n_; }
    double mean() const { return sum_ / n_; }
    std::string str(int prec = 2) const { return fmt(mean(), prec); }

  private:
    double sum_ = 0;
    int n_ = 0;
};

/** Streaming geometric mean (log-sum; zero/negative inputs throw). */
class Geomean
{
  public:
    void
    add(double v)
    {
        if (v <= 0.0)
            throw std::invalid_argument(
                "Geomean::add: non-positive value");
        logSum_ += std::log(v);
        ++n_;
    }
    int count() const { return n_; }
    double mean() const { return std::exp(logSum_ / n_); }
    std::string str(int prec = 2) const { return fmt(mean(), prec); }

  private:
    double logSum_ = 0;
    int n_ = 0;
};

/**
 * The p-th percentile of @p xs by linear interpolation between
 * closest ranks (the NIST/numpy "linear" definition): rank
 * r = p/100 * (n-1), result = xs[floor(r)] interpolated toward
 * xs[ceil(r)]. Sorts a copy — callers keep their sample order.
 * Throws on an empty sample or p outside [0, 100]. Used by the
 * symbold load generator for its p50/p90/p99 latency columns
 * (tests: tests/test_support.cc).
 */
inline double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        throw std::invalid_argument("percentile: empty sample");
    if (!(p >= 0.0 && p <= 100.0))
        throw std::invalid_argument("percentile: p outside [0,100]");
    std::sort(xs.begin(), xs.end());
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

/** Completed-requests-per-second throughput of one load run. */
struct ReqPerSec
{
    std::uint64_t requests = 0;
    double seconds = 0.0;

    double
    rate() const
    {
        if (seconds <= 0.0)
            throw std::invalid_argument(
                "ReqPerSec: non-positive duration");
        return static_cast<double>(requests) / seconds;
    }
    std::string str(int prec = 1) const { return fmt(rate(), prec); }
};

/**
 * A header row, data rows, then one printTable call — the shape
 * every harness table shares.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
    {
        rows_.push_back(std::move(header));
    }
    void
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }
    void
    print(const std::string &title) const
    {
        printTable(title, rows_);
    }

  private:
    std::vector<std::vector<std::string>> rows_;
};

} // namespace symbol::bench

#endif // SYMBOL_BENCH_COMMON_HH
