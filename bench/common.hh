/**
 * @file
 * Shared helpers for the table/figure reproduction harnesses. Each
 * bench binary regenerates one artifact of the paper's evaluation;
 * the printed rows mirror the paper's layout so the shapes can be
 * compared side by side (see EXPERIMENTS.md).
 */

#ifndef SYMBOL_BENCH_COMMON_HH
#define SYMBOL_BENCH_COMMON_HH

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "analysis/stats.hh"
#include "machine/config.hh"
#include "suite/pipeline.hh"
#include "support/text.hh"

namespace symbol::bench
{

/** Lazily constructed, cached workloads (front end runs once). */
inline const suite::Workload &
workload(const std::string &name,
         const suite::WorkloadOptions &opts = {})
{
    static std::map<std::string,
                    std::unique_ptr<suite::Workload>> cache;
    std::string key = name +
                      (opts.translate.expandTagBranches ? "#x" : "") +
                      (opts.compiler.indexing ? "" : "#n");
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, std::make_unique<suite::Workload>(
                                   suite::benchmark(name), opts))
                 .first;
    }
    return *it->second;
}

/** Print a rendered table with a title block. */
inline void
printTable(const std::string &title,
           const std::vector<std::vector<std::string>> &rows)
{
    std::printf("\n== %s ==\n%s", title.c_str(),
                renderTable(rows).c_str());
}

inline std::string
fmt(double v, int prec = 2)
{
    return strprintf("%.*f", prec, v);
}

inline std::string
fmtU(std::uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

} // namespace symbol::bench

#endif // SYMBOL_BENCH_COMMON_HH
