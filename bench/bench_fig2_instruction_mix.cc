/**
 * @file
 * Figure 2: dynamic instruction-frequency mix of the benchmark suite
 * ("memory operations take about 32% of the whole execution time",
 * branches "more than 15%"), computed like the paper as an average of
 * sequential-simulation profiles with unit-duration operations.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

int
main()
{
    const std::vector<std::string> names = suiteNames();

    std::vector<analysis::InstructionMix> mixes =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            return analysis::instructionMix(w.ici(), w.profile());
        });

    Table table({"benchmark", "memory", "alu", "move", "control",
                 "other"});

    analysis::InstructionMix all;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const analysis::InstructionMix &mix = mixes[i];
        all += mix;
        table.row({names[i], fmt(mix.memory * 100, 1),
                   fmt(mix.alu * 100, 1), fmt(mix.move * 100, 1),
                   fmt(mix.control * 100, 1),
                   fmt(mix.other * 100, 1)});
    }
    table.row({"Average", fmt(all.memory * 100, 1),
               fmt(all.alu * 100, 1), fmt(all.move * 100, 1),
               fmt(all.control * 100, 1), fmt(all.other * 100, 1)});
    table.print("Figure 2 - instruction frequency (percent of "
                "executed ICIs)");

    std::printf("\n");
    std::printf("%s\n",
                barLine("memory", all.memory, 40,
                        fmt(all.memory * 100, 1) + "%").c_str());
    std::printf("%s\n", barLine("alu", all.alu, 40,
                                fmt(all.alu * 100, 1) + "%").c_str());
    std::printf("%s\n",
                barLine("move", all.move, 40,
                        fmt(all.move * 100, 1) + "%").c_str());
    std::printf("%s\n",
                barLine("control", all.control, 40,
                        fmt(all.control * 100, 1) + "%").c_str());
    std::printf("\npaper: memory ~32%%, control >15%% -- measured "
                "memory %.1f%%, control %.1f%%\n",
                all.memory * 100, all.control * 100);
    reportDriverStats();
    return 0;
}
