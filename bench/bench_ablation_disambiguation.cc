/**
 * @file
 * Ablation: effect of the fresh-heap-cell memory-disambiguation rule
 * (DESIGN.md §3). §4.1 argues pointer accesses into the stack cannot
 * be disambiguated; heap allocations, however, are provably fresh.
 * This harness measures how much of the compaction win that single
 * sound rule provides.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

namespace
{

struct Row
{
    suite::VliwRun on;
    suite::VliwRun off;
};

} // namespace

int
main()
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();

    std::vector<Row> results =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            sched::CompactOptions on, off;
            on.freshAllocDisambiguation = true;
            off.freshAllocDisambiguation = false;
            return Row{w.runVliw(mc, on), w.runVliw(mc, off)};
        });

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"benchmark", "disamb.cyc", "no-disamb.cyc",
                    "penalty%"});
    double pen = 0;
    int n = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const suite::VliwRun &r_on = results[i].on;
        const suite::VliwRun &r_off = results[i].off;
        double p = 100.0 * (static_cast<double>(r_off.cycles) /
                                static_cast<double>(r_on.cycles) -
                            1.0);
        rows.push_back({names[i], fmtU(r_on.cycles),
                        fmtU(r_off.cycles), fmt(p, 1)});
        pen += p;
        ++n;
    }
    rows.push_back({"Average", "", "", fmt(pen / n, 1)});
    printTable("Ablation - fresh-allocation memory disambiguation "
               "(3-unit VLIW, trace mode)",
               rows);
    reportDriverStats();
    return 0;
}
