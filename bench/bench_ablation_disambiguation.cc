/**
 * @file
 * Ablation: effect of the fresh-heap-cell memory-disambiguation rule
 * (DESIGN.md §3). §4.1 argues pointer accesses into the stack cannot
 * be disambiguated; heap allocations, however, are provably fresh.
 * This harness measures how much of the compaction win that single
 * sound rule provides.
 */

#include "common.hh"

using namespace symbol;
using namespace symbol::bench;

namespace
{

struct Row
{
    suite::VliwRun on;
    suite::VliwRun off;
};

} // namespace

int
main()
{
    machine::MachineConfig mc = machine::MachineConfig::idealShared(3);
    const std::vector<std::string> names = suiteNames();
    prefetchSuite();

    std::vector<Row> results =
        parallelIndex(names.size(), [&](std::size_t i) {
            const suite::Workload &w = workload(names[i]);
            sched::CompactOptions on, off;
            on.freshAllocDisambiguation = true;
            off.freshAllocDisambiguation = false;
            return Row{w.runVliw(mc, on), w.runVliw(mc, off)};
        });

    Table table({"benchmark", "disamb.cyc", "no-disamb.cyc",
                 "penalty%"});
    Avg pen;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const suite::VliwRun &r_on = results[i].on;
        const suite::VliwRun &r_off = results[i].off;
        double p = pctOver(r_off.cycles, r_on.cycles);
        table.row({names[i], fmtU(r_on.cycles), fmtU(r_off.cycles),
                   fmt(p, 1)});
        pen.add(p);
    }
    table.row({"Average", "", "", pen.str(1)});
    table.print("Ablation - fresh-allocation memory disambiguation "
                "(3-unit VLIW, trace mode)");
    reportDriverStats();
    return 0;
}
