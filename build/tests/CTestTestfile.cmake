# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_bam[1]_include.cmake")
include("/root/repo/build/tests/test_compile_run[1]_include.cmake")
include("/root/repo/build/tests/test_suite_seq[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_compact_vliw[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_vliw_sim[1]_include.cmake")
include("/root/repo/build/tests/test_intcode[1]_include.cmake")
include("/root/repo/build/tests/test_emul[1]_include.cmake")
include("/root/repo/build/tests/test_normalize[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_property_random[1]_include.cmake")
