file(REMOVE_RECURSE
  "CMakeFiles/test_bam.dir/test_bam.cc.o"
  "CMakeFiles/test_bam.dir/test_bam.cc.o.d"
  "test_bam"
  "test_bam.pdb"
  "test_bam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
