# Empty dependencies file for test_bam.
# This may be replaced when dependencies are built.
