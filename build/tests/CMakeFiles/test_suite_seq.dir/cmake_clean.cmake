file(REMOVE_RECURSE
  "CMakeFiles/test_suite_seq.dir/test_suite_seq.cc.o"
  "CMakeFiles/test_suite_seq.dir/test_suite_seq.cc.o.d"
  "test_suite_seq"
  "test_suite_seq.pdb"
  "test_suite_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
