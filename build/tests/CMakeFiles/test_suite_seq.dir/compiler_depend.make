# Empty compiler generated dependencies file for test_suite_seq.
# This may be replaced when dependencies are built.
