file(REMOVE_RECURSE
  "CMakeFiles/test_vliw_sim.dir/test_vliw_sim.cc.o"
  "CMakeFiles/test_vliw_sim.dir/test_vliw_sim.cc.o.d"
  "test_vliw_sim"
  "test_vliw_sim.pdb"
  "test_vliw_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vliw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
