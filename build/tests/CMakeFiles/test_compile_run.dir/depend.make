# Empty dependencies file for test_compile_run.
# This may be replaced when dependencies are built.
