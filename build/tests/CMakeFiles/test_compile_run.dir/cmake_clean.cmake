file(REMOVE_RECURSE
  "CMakeFiles/test_compile_run.dir/test_compile_run.cc.o"
  "CMakeFiles/test_compile_run.dir/test_compile_run.cc.o.d"
  "test_compile_run"
  "test_compile_run.pdb"
  "test_compile_run[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compile_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
