
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_compile_run.cc" "tests/CMakeFiles/test_compile_run.dir/test_compile_run.cc.o" "gcc" "tests/CMakeFiles/test_compile_run.dir/test_compile_run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bamc/CMakeFiles/symbol_bamc.dir/DependInfo.cmake"
  "/root/repo/build/src/intcode/CMakeFiles/symbol_intcode.dir/DependInfo.cmake"
  "/root/repo/build/src/emul/CMakeFiles/symbol_emul.dir/DependInfo.cmake"
  "/root/repo/build/src/prolog/CMakeFiles/symbol_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/bam/CMakeFiles/symbol_bam.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/symbol_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
