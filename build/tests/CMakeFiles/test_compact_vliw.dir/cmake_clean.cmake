file(REMOVE_RECURSE
  "CMakeFiles/test_compact_vliw.dir/test_compact_vliw.cc.o"
  "CMakeFiles/test_compact_vliw.dir/test_compact_vliw.cc.o.d"
  "test_compact_vliw"
  "test_compact_vliw.pdb"
  "test_compact_vliw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compact_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
