# Empty compiler generated dependencies file for test_compact_vliw.
# This may be replaced when dependencies are built.
