# Empty dependencies file for test_intcode.
# This may be replaced when dependencies are built.
