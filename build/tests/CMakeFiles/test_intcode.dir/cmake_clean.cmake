file(REMOVE_RECURSE
  "CMakeFiles/test_intcode.dir/test_intcode.cc.o"
  "CMakeFiles/test_intcode.dir/test_intcode.cc.o.d"
  "test_intcode"
  "test_intcode.pdb"
  "test_intcode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
