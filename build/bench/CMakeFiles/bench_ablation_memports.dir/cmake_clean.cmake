file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_memports.dir/bench_ablation_memports.cc.o"
  "CMakeFiles/bench_ablation_memports.dir/bench_ablation_memports.cc.o.d"
  "bench_ablation_memports"
  "bench_ablation_memports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
