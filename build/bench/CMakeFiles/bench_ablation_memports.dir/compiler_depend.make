# Empty compiler generated dependencies file for bench_ablation_memports.
# This may be replaced when dependencies are built.
