file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tracelimits.dir/bench_ablation_tracelimits.cc.o"
  "CMakeFiles/bench_ablation_tracelimits.dir/bench_ablation_tracelimits.cc.o.d"
  "bench_ablation_tracelimits"
  "bench_ablation_tracelimits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tracelimits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
