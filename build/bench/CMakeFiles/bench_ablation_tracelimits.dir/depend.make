# Empty dependencies file for bench_ablation_tracelimits.
# This may be replaced when dependencies are built.
