file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_disambiguation.dir/bench_ablation_disambiguation.cc.o"
  "CMakeFiles/bench_ablation_disambiguation.dir/bench_ablation_disambiguation.cc.o.d"
  "bench_ablation_disambiguation"
  "bench_ablation_disambiguation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_disambiguation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
