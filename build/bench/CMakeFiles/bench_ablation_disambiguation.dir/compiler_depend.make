# Empty compiler generated dependencies file for bench_ablation_disambiguation.
# This may be replaced when dependencies are built.
