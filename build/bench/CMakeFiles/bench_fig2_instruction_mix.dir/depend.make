# Empty dependencies file for bench_fig2_instruction_mix.
# This may be replaced when dependencies are built.
