file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_instruction_mix.dir/bench_fig2_instruction_mix.cc.o"
  "CMakeFiles/bench_fig2_instruction_mix.dir/bench_fig2_instruction_mix.cc.o.d"
  "bench_fig2_instruction_mix"
  "bench_fig2_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
