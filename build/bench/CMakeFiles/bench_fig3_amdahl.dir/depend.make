# Empty dependencies file for bench_fig3_amdahl.
# This may be replaced when dependencies are built.
