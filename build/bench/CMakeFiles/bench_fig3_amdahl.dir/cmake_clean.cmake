file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_amdahl.dir/bench_fig3_amdahl.cc.o"
  "CMakeFiles/bench_fig3_amdahl.dir/bench_fig3_amdahl.cc.o.d"
  "bench_fig3_amdahl"
  "bench_fig3_amdahl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_amdahl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
