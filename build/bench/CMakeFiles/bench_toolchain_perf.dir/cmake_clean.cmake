file(REMOVE_RECURSE
  "CMakeFiles/bench_toolchain_perf.dir/bench_toolchain_perf.cc.o"
  "CMakeFiles/bench_toolchain_perf.dir/bench_toolchain_perf.cc.o.d"
  "bench_toolchain_perf"
  "bench_toolchain_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toolchain_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
