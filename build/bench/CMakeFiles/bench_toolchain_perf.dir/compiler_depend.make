# Empty compiler generated dependencies file for bench_toolchain_perf.
# This may be replaced when dependencies are built.
