file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_prototype.dir/bench_table5_prototype.cc.o"
  "CMakeFiles/bench_table5_prototype.dir/bench_table5_prototype.cc.o.d"
  "bench_table5_prototype"
  "bench_table5_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
