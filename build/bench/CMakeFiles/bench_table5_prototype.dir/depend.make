# Empty dependencies file for bench_table5_prototype.
# This may be replaced when dependencies are built.
