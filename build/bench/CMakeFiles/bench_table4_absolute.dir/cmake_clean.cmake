file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_absolute.dir/bench_table4_absolute.cc.o"
  "CMakeFiles/bench_table4_absolute.dir/bench_table4_absolute.cc.o.d"
  "bench_table4_absolute"
  "bench_table4_absolute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_absolute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
