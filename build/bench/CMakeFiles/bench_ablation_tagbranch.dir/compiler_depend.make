# Empty compiler generated dependencies file for bench_ablation_tagbranch.
# This may be replaced when dependencies are built.
