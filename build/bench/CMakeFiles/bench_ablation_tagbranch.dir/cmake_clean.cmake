file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tagbranch.dir/bench_ablation_tagbranch.cc.o"
  "CMakeFiles/bench_ablation_tagbranch.dir/bench_ablation_tagbranch.cc.o.d"
  "bench_ablation_tagbranch"
  "bench_ablation_tagbranch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tagbranch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
