file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_compaction.dir/bench_table1_compaction.cc.o"
  "CMakeFiles/bench_table1_compaction.dir/bench_table1_compaction.cc.o.d"
  "bench_table1_compaction"
  "bench_table1_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
