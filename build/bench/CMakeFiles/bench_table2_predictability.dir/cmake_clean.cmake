file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_predictability.dir/bench_table2_predictability.cc.o"
  "CMakeFiles/bench_table2_predictability.dir/bench_table2_predictability.cc.o.d"
  "bench_table2_predictability"
  "bench_table2_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
