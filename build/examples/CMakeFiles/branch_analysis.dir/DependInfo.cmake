
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/branch_analysis.cpp" "examples/CMakeFiles/branch_analysis.dir/branch_analysis.cpp.o" "gcc" "examples/CMakeFiles/branch_analysis.dir/branch_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/symbol_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/bamc/CMakeFiles/symbol_bamc.dir/DependInfo.cmake"
  "/root/repo/build/src/prolog/CMakeFiles/symbol_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/symbol_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vliw/CMakeFiles/symbol_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/symbol_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/emul/CMakeFiles/symbol_emul.dir/DependInfo.cmake"
  "/root/repo/build/src/intcode/CMakeFiles/symbol_intcode.dir/DependInfo.cmake"
  "/root/repo/build/src/bam/CMakeFiles/symbol_bam.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/symbol_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/symbol_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
