# Empty compiler generated dependencies file for branch_analysis.
# This may be replaced when dependencies are built.
