file(REMOVE_RECURSE
  "CMakeFiles/branch_analysis.dir/branch_analysis.cpp.o"
  "CMakeFiles/branch_analysis.dir/branch_analysis.cpp.o.d"
  "branch_analysis"
  "branch_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
