# Empty compiler generated dependencies file for own_program.
# This may be replaced when dependencies are built.
