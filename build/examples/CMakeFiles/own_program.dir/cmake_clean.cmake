file(REMOVE_RECURSE
  "CMakeFiles/own_program.dir/own_program.cpp.o"
  "CMakeFiles/own_program.dir/own_program.cpp.o.d"
  "own_program"
  "own_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/own_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
