# Empty compiler generated dependencies file for symbolc.
# This may be replaced when dependencies are built.
