file(REMOVE_RECURSE
  "CMakeFiles/symbolc.dir/symbolc.cc.o"
  "CMakeFiles/symbolc.dir/symbolc.cc.o.d"
  "symbolc"
  "symbolc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
