file(REMOVE_RECURSE
  "CMakeFiles/symbol_sched.dir/compact.cc.o"
  "CMakeFiles/symbol_sched.dir/compact.cc.o.d"
  "CMakeFiles/symbol_sched.dir/liveness.cc.o"
  "CMakeFiles/symbol_sched.dir/liveness.cc.o.d"
  "libsymbol_sched.a"
  "libsymbol_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
