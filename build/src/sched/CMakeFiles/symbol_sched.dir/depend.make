# Empty dependencies file for symbol_sched.
# This may be replaced when dependencies are built.
