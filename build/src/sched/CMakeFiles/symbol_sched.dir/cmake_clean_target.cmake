file(REMOVE_RECURSE
  "libsymbol_sched.a"
)
