# Empty compiler generated dependencies file for symbol_emul.
# This may be replaced when dependencies are built.
