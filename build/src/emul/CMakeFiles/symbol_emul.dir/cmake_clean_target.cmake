file(REMOVE_RECURSE
  "libsymbol_emul.a"
)
