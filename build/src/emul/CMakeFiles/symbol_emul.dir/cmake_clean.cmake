file(REMOVE_RECURSE
  "CMakeFiles/symbol_emul.dir/machine.cc.o"
  "CMakeFiles/symbol_emul.dir/machine.cc.o.d"
  "libsymbol_emul.a"
  "libsymbol_emul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_emul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
