# Empty dependencies file for symbol_bam.
# This may be replaced when dependencies are built.
