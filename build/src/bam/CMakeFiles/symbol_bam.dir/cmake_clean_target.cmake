file(REMOVE_RECURSE
  "libsymbol_bam.a"
)
