file(REMOVE_RECURSE
  "CMakeFiles/symbol_bam.dir/print.cc.o"
  "CMakeFiles/symbol_bam.dir/print.cc.o.d"
  "CMakeFiles/symbol_bam.dir/word.cc.o"
  "CMakeFiles/symbol_bam.dir/word.cc.o.d"
  "libsymbol_bam.a"
  "libsymbol_bam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_bam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
