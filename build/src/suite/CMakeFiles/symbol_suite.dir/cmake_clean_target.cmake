file(REMOVE_RECURSE
  "libsymbol_suite.a"
)
