# Empty dependencies file for symbol_suite.
# This may be replaced when dependencies are built.
