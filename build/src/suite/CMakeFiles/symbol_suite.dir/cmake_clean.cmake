file(REMOVE_RECURSE
  "CMakeFiles/symbol_suite.dir/benchmarks.cc.o"
  "CMakeFiles/symbol_suite.dir/benchmarks.cc.o.d"
  "CMakeFiles/symbol_suite.dir/pipeline.cc.o"
  "CMakeFiles/symbol_suite.dir/pipeline.cc.o.d"
  "libsymbol_suite.a"
  "libsymbol_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
