file(REMOVE_RECURSE
  "CMakeFiles/symbol_support.dir/diagnostics.cc.o"
  "CMakeFiles/symbol_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/symbol_support.dir/interner.cc.o"
  "CMakeFiles/symbol_support.dir/interner.cc.o.d"
  "CMakeFiles/symbol_support.dir/text.cc.o"
  "CMakeFiles/symbol_support.dir/text.cc.o.d"
  "libsymbol_support.a"
  "libsymbol_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
