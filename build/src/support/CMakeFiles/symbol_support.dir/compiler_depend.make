# Empty compiler generated dependencies file for symbol_support.
# This may be replaced when dependencies are built.
