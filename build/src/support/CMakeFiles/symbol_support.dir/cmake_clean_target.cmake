file(REMOVE_RECURSE
  "libsymbol_support.a"
)
