# Empty dependencies file for symbol_bamc.
# This may be replaced when dependencies are built.
