
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bamc/compiler.cc" "src/bamc/CMakeFiles/symbol_bamc.dir/compiler.cc.o" "gcc" "src/bamc/CMakeFiles/symbol_bamc.dir/compiler.cc.o.d"
  "/root/repo/src/bamc/normalize.cc" "src/bamc/CMakeFiles/symbol_bamc.dir/normalize.cc.o" "gcc" "src/bamc/CMakeFiles/symbol_bamc.dir/normalize.cc.o.d"
  "/root/repo/src/bamc/runtime.cc" "src/bamc/CMakeFiles/symbol_bamc.dir/runtime.cc.o" "gcc" "src/bamc/CMakeFiles/symbol_bamc.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bam/CMakeFiles/symbol_bam.dir/DependInfo.cmake"
  "/root/repo/build/src/prolog/CMakeFiles/symbol_prolog.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/symbol_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
