file(REMOVE_RECURSE
  "CMakeFiles/symbol_bamc.dir/compiler.cc.o"
  "CMakeFiles/symbol_bamc.dir/compiler.cc.o.d"
  "CMakeFiles/symbol_bamc.dir/normalize.cc.o"
  "CMakeFiles/symbol_bamc.dir/normalize.cc.o.d"
  "CMakeFiles/symbol_bamc.dir/runtime.cc.o"
  "CMakeFiles/symbol_bamc.dir/runtime.cc.o.d"
  "libsymbol_bamc.a"
  "libsymbol_bamc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_bamc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
