file(REMOVE_RECURSE
  "libsymbol_bamc.a"
)
