file(REMOVE_RECURSE
  "libsymbol_prolog.a"
)
