# Empty dependencies file for symbol_prolog.
# This may be replaced when dependencies are built.
