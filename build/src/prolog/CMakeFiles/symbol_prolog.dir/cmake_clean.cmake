file(REMOVE_RECURSE
  "CMakeFiles/symbol_prolog.dir/lexer.cc.o"
  "CMakeFiles/symbol_prolog.dir/lexer.cc.o.d"
  "CMakeFiles/symbol_prolog.dir/parser.cc.o"
  "CMakeFiles/symbol_prolog.dir/parser.cc.o.d"
  "CMakeFiles/symbol_prolog.dir/term.cc.o"
  "CMakeFiles/symbol_prolog.dir/term.cc.o.d"
  "libsymbol_prolog.a"
  "libsymbol_prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
