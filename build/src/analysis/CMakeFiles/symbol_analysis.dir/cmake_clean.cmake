file(REMOVE_RECURSE
  "CMakeFiles/symbol_analysis.dir/stats.cc.o"
  "CMakeFiles/symbol_analysis.dir/stats.cc.o.d"
  "libsymbol_analysis.a"
  "libsymbol_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
