# Empty dependencies file for symbol_analysis.
# This may be replaced when dependencies are built.
