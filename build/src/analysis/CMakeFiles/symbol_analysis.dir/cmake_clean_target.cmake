file(REMOVE_RECURSE
  "libsymbol_analysis.a"
)
