# Empty dependencies file for symbol_vliw.
# This may be replaced when dependencies are built.
