file(REMOVE_RECURSE
  "libsymbol_vliw.a"
)
