file(REMOVE_RECURSE
  "CMakeFiles/symbol_vliw.dir/code.cc.o"
  "CMakeFiles/symbol_vliw.dir/code.cc.o.d"
  "CMakeFiles/symbol_vliw.dir/sim.cc.o"
  "CMakeFiles/symbol_vliw.dir/sim.cc.o.d"
  "libsymbol_vliw.a"
  "libsymbol_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
