file(REMOVE_RECURSE
  "CMakeFiles/symbol_machine.dir/config.cc.o"
  "CMakeFiles/symbol_machine.dir/config.cc.o.d"
  "libsymbol_machine.a"
  "libsymbol_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
