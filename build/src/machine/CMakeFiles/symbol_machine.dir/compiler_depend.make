# Empty compiler generated dependencies file for symbol_machine.
# This may be replaced when dependencies are built.
