file(REMOVE_RECURSE
  "libsymbol_machine.a"
)
