file(REMOVE_RECURSE
  "libsymbol_intcode.a"
)
