# Empty dependencies file for symbol_intcode.
# This may be replaced when dependencies are built.
