file(REMOVE_RECURSE
  "CMakeFiles/symbol_intcode.dir/cfg.cc.o"
  "CMakeFiles/symbol_intcode.dir/cfg.cc.o.d"
  "CMakeFiles/symbol_intcode.dir/instr.cc.o"
  "CMakeFiles/symbol_intcode.dir/instr.cc.o.d"
  "CMakeFiles/symbol_intcode.dir/translate.cc.o"
  "CMakeFiles/symbol_intcode.dir/translate.cc.o.d"
  "libsymbol_intcode.a"
  "libsymbol_intcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbol_intcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
