/**
 * @file
 * Quickstart: compile a Prolog program down the full SYMBOL pipeline
 * and run it on the sequential IntCode emulator.
 *
 * Demonstrates the front half of the toolchain of Fig. 1: Prolog →
 * BAM → IntCode → sequential emulation with profiling. See the other
 * examples for the back half (global compaction and VLIW simulation).
 */

#include <cstdio>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "prolog/parser.hh"

int
main()
{
    const char *source = R"PL(
        % Naive reverse, the classic Prolog benchmark kernel.
        app([], L, L).
        app([X|L1], L2, [X|L3]) :- app(L1, L2, L3).

        nrev([], []).
        nrev([X|L], R) :- nrev(L, RL), app(RL, [X], R).

        main :- nrev([1,2,3,4,5,6,7,8,9,10], R), out(R).
    )PL";

    using namespace symbol;

    // 1. Parse.
    Interner interner;
    prolog::Program prog = prolog::parseProgram(source, interner);
    std::printf("parsed %zu clauses\n", prog.clauses.size());

    // 2. Compile Prolog -> BAM.
    bam::Module module = bamc::compile(prog);
    std::printf("BAM module: %zu instructions, %d virtual registers\n",
                module.code.size(), module.numRegs);

    // 3. Expand BAM -> IntCode.
    intcode::Program ici = intcode::translate(module);
    std::printf("IntCode: %zu ICIs\n", ici.code.size());

    // 4. Run on the sequential emulator.
    emul::Machine machine(ici);
    emul::RunResult result = machine.run();
    std::printf("executed %llu ICIs in %llu sequential cycles\n",
                static_cast<unsigned long long>(result.instructions),
                static_cast<unsigned long long>(result.seqCycles));
    std::printf("answer: %s", machine.decodeOutput().c_str());
    return 0;
}
