/**
 * @file
 * Example: bring your own Prolog program. Compiles a small
 * graph-search program (not part of the Aquarius suite), runs it
 * sequentially and on the SYMBOL-3 prototype configuration, and
 * decodes the answers. This is the path a user of the library takes
 * for new workloads: no registration needed, just source text with a
 * main/0 that reports answers through out/1.
 */

#include <cstdio>

#include "machine/config.hh"
#include "suite/pipeline.hh"

int
main()
{
    using namespace symbol;

    suite::Benchmark mine;
    mine.name = "routes";
    mine.source = R"PL(
        % A little flight network: find all routes from genova to
        % berkeley with their hop counts.
        edge(genova, milano).
        edge(milano, paris).
        edge(milano, frankfurt).
        edge(paris, newyork).
        edge(frankfurt, newyork).
        edge(frankfurt, sanfrancisco).
        edge(newyork, sanfrancisco).
        edge(sanfrancisco, berkeley).

        route(A, A, [A], 0).
        route(A, B, [A|P], N) :-
            edge(A, C),
            route(C, B, P, N1),
            N is N1 + 1.

        main :-
            route(genova, berkeley, Path, Hops),
            out(Path), out(Hops), fail.
        main :- out(done).
    )PL";

    suite::Workload w(mine);
    std::printf("sequential answer:\n%s", w.seqOutput().c_str());
    std::printf("(%llu ICIs, %llu cycles sequential)\n\n",
                static_cast<unsigned long long>(w.instructions()),
                static_cast<unsigned long long>(w.seqCycles()));

    for (int units : {1, 3}) {
        suite::VliwRun r =
            w.runVliw(machine::MachineConfig::prototype(units));
        std::printf("SYMBOL-%d prototype: %llu cycles, speedup "
                    "%.2f, %.3f ms at 30 MHz\n",
                    units, static_cast<unsigned long long>(r.cycles),
                    r.speedupVsSeq,
                    static_cast<double>(r.cycles) / 30e3);
    }
    return 0;
}
