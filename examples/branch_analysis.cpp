/**
 * @file
 * Example: reproduce the paper's §4.4 argument on one benchmark —
 * Prolog branches are predictable, so trace scheduling applies to
 * symbolic code. Prints the faulty-prediction statistics and the
 * hottest, most- and least-predictable branches of zebra with their
 * source BAM instructions.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "analysis/stats.hh"
#include "suite/pipeline.hh"

int
main()
{
    using namespace symbol;

    suite::Workload w(suite::benchmark("zebra"));
    analysis::BranchStats st =
        analysis::branchStats(w.ici(), w.profile());
    std::printf("zebra: %llu dynamic branches\n",
                static_cast<unsigned long long>(
                    st.branchExecutions));
    std::printf("average P(faulty prediction) = %.4f (paper suite "
                "average: 0.1475)\n",
                st.avgFaultyPrediction);
    std::printf("average P(taken) = %.3f — nothing like the 90/50 "
                "rule\n\n",
                st.avgTakenProbability);

    // Rank branches by executed weight.
    struct Row
    {
        std::size_t idx;
        std::uint64_t expect;
        double pfp;
    };
    std::vector<Row> rows;
    const auto &prof = w.profile();
    for (std::size_t k = 0; k < w.ici().code.size(); ++k) {
        if (!intcode::isCondBranch(w.ici().code[k].op) ||
            prof.expect[k] == 0)
            continue;
        double p = prof.probability(k);
        rows.push_back({k, prof.expect[k], std::min(p, 1 - p)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.expect > b.expect;
              });

    std::printf("hottest branches:\n");
    for (std::size_t i = 0; i < rows.size() && i < 8; ++i) {
        const Row &r = rows[i];
        std::printf("  expect=%-9llu P_fp=%.3f   %s\n",
                    static_cast<unsigned long long>(r.expect), r.pfp,
                    w.ici().str(w.ici().code[r.idx]).c_str());
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.pfp > b.pfp;
              });
    std::printf("\nleast predictable (the data-dependent peak of "
                "Fig. 4):\n");
    for (std::size_t i = 0; i < rows.size() && i < 5; ++i) {
        const Row &r = rows[i];
        std::printf("  expect=%-9llu P_fp=%.3f   %s\n",
                    static_cast<unsigned long long>(r.expect), r.pfp,
                    w.ici().str(w.ici().code[r.idx]).c_str());
    }
    return 0;
}
