/**
 * @file
 * Example: study how global compaction extracts instruction-level
 * parallelism from one benchmark — the paper's §4 analysis in
 * miniature. Runs qsort through the pipeline, compares basic-block
 * against trace compaction across machine sizes, and dumps a window
 * of the compacted wide code so the multiway issue is visible.
 */

#include <cstdio>

#include "machine/config.hh"
#include "suite/pipeline.hh"

int
main()
{
    using namespace symbol;

    suite::Workload w(suite::benchmark("qsort"));
    std::printf("qsort: %llu ICIs executed, %llu sequential cycles\n",
                static_cast<unsigned long long>(w.instructions()),
                static_cast<unsigned long long>(w.seqCycles()));
    std::printf("answer ok: %s\n", w.answerMatches() ? "yes" : "no");

    std::printf("\n%-10s %-6s %12s %10s %10s\n", "mode", "units",
                "cycles", "speedup", "avg.len");
    for (bool traces : {false, true}) {
        for (int units : {1, 2, 3, 4}) {
            sched::CompactOptions co;
            co.traceMode = traces;
            suite::VliwRun r = w.runVliw(
                machine::MachineConfig::idealShared(units), co);
            std::printf("%-10s %-6d %12llu %10.2f %10.1f\n",
                        traces ? "trace" : "basic-block", units,
                        static_cast<unsigned long long>(r.cycles),
                        r.speedupVsSeq, r.stats.avgDynamicLength);
        }
    }

    // Show a window of compacted code on the 3-unit machine.
    auto mc = machine::MachineConfig::idealShared(3);
    sched::CompactResult cr =
        sched::compact(w.ici(), w.profile(), mc, {});
    std::printf("\nfirst wide instructions of the compacted "
                "program:\n");
    vliw::Code window;
    window.interner = cr.code.interner;
    window.numRegs = cr.code.numRegs;
    for (std::size_t k = cr.code.entry;
         k < cr.code.code.size() &&
         k < static_cast<std::size_t>(cr.code.entry) + 12;
         ++k)
        window.code.push_back(cr.code.code[k]);
    std::printf("%s", window.str().c_str());
    return 0;
}
