/**
 * @file
 * symbold — the long-lived compile-and-evaluate daemon.
 *
 * Listens on a Unix-domain socket for framed requests (see
 * src/server/proto.hh and DESIGN.md §13), serves them from one
 * shared EvalDriver — so the in-memory WorkloadCache and the sharded
 * on-disk ArtifactStore are shared by every client — and drains
 * gracefully on SIGINT/SIGTERM or a symbolctl --drain.
 *
 * Run `symbold --help` for the flag reference; the help text is
 * generated from the same flag table the parser walks.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "server/server.hh"
#include "support/diagnostics.hh"

using namespace symbol;

namespace
{

struct Options
{
    std::string socket;
    std::string cacheDir; // "" = SYMBOL_CACHE_DIR env / none
    int jobs = 0;         // 0 = SYMBOL_JOBS env / hw concurrency
    int maxInFlight = 64;
    bool quiet = false;
    bool help = false;
};

/** One command-line flag (the symbolc table idiom: parser and help
 *  text are generated from the same rows). */
struct Flag
{
    const char *name;
    const char *operand;
    const char *help;
    bool *b = nullptr;
    int *i = nullptr;
    long lo = 0, hi = 0;
    std::string *s = nullptr;
};

std::vector<Flag>
flagTable(Options &o)
{
    return {
        {.name = "--socket", .operand = "PATH",
         .help = "Unix-domain socket to listen on (required; a "
                 "stale socket file from a dead server is replaced, "
                 "a live one is an error)",
         .s = &o.socket},
        {.name = "--cache-dir", .operand = "DIR",
         .help = "sharded persistent artefact store shared with "
                 "symbolc (default: SYMBOL_CACHE_DIR env; neither "
                 "set = in-memory caching only)",
         .s = &o.cacheDir},
        {.name = "--jobs", .operand = "N",
         .help = "worker threads of the shared evaluation driver "
                 "(default: SYMBOL_JOBS env, else hardware "
                 "concurrency)",
         .i = &o.jobs, .lo = 1, .hi = 1024},
        {.name = "--max-inflight", .operand = "N",
         .help = "admission bound: compile requests in flight "
                 "before new ones answer 'overloaded' (default 64)",
         .i = &o.maxInFlight, .lo = 1, .hi = 100000},
        {.name = "--quiet", .operand = nullptr,
         .help = "suppress the startup/drain stderr summaries "
                 "(also: SYMBOL_QUIET env)",
         .b = &o.quiet},
        {.name = "--help", .operand = nullptr,
         .help = "print this help and exit", .b = &o.help},
    };
}

std::vector<std::string>
splitWords(const std::string &text)
{
    std::vector<std::string> words;
    std::istringstream ss(text);
    std::string w;
    while (ss >> w)
        words.push_back(w);
    return words;
}

std::string
helpText(std::vector<Flag> flags)
{
    std::string out = "usage: symbold --socket PATH [options]\n";
    std::size_t width = 0;
    for (const Flag &f : flags)
        width = std::max(width,
                         std::strlen(f.name) +
                             (f.operand
                                  ? 1 + std::strlen(f.operand)
                                  : 0));
    for (const Flag &f : flags) {
        std::string head = "  " + std::string(f.name);
        if (f.operand)
            head += std::string(" ") + f.operand;
        head.resize(std::max(head.size(), width + 4), ' ');
        std::string line = head;
        for (const std::string &word : splitWords(f.help)) {
            if (line.size() + 1 + word.size() > 78) {
                out += line + "\n";
                line = std::string(width + 4, ' ');
                line += word;
            } else {
                line += (line.back() == ' ' ? "" : " ") + word;
            }
        }
        out += line + "\n";
    }
    out += "\nexit codes:\n"
           "  0  clean drain (signal or symbolctl --drain)\n"
           "  1  usage error or startup failure\n";
    return out;
}

int
usage(Options &o)
{
    std::fputs(helpText(flagTable(o)).c_str(), stderr);
    return 1;
}

bool
intOperand(const char *name, const std::string &s, long lo, long hi,
           int &out)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "symbold: %s: invalid operand '%s' (expected "
                     "an integer in [%ld, %ld])\n",
                     name, s.c_str(), lo, hi);
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    std::vector<Flag> flags = flagTable(o);
    for (int k = 1; k < argc; ++k) {
        std::string a = argv[k];
        std::string inlineVal;
        bool hasInline = false;
        if (a.rfind("--", 0) == 0) {
            std::size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.resize(eq);
                hasInline = true;
            }
        }
        const Flag *f = nullptr;
        for (const Flag &g : flags)
            if (a == g.name) {
                f = &g;
                break;
            }
        if (!f) {
            std::fprintf(stderr, "symbold: unknown option '%s'\n",
                         a.c_str());
            return false;
        }
        if (f->b) {
            if (hasInline) {
                std::fprintf(stderr,
                             "symbold: %s takes no operand\n",
                             f->name);
                return false;
            }
            *f->b = true;
            continue;
        }
        std::string operand;
        if (hasInline) {
            operand = inlineVal;
        } else if (k + 1 < argc) {
            operand = argv[++k];
        } else {
            std::fprintf(stderr, "symbold: %s requires a%s operand\n",
                         f->name, f->i ? " numeric" : "n");
            return false;
        }
        if (f->i) {
            if (!intOperand(f->name, operand, f->lo, f->hi, *f->i))
                return false;
        } else {
            *f->s = operand;
        }
    }
    if (o.help)
        return true;
    if (o.socket.empty()) {
        std::fprintf(stderr, "symbold: --socket PATH is required\n");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage(o);
    if (o.help) {
        std::fputs(helpText(flagTable(o)).c_str(), stdout);
        return 0;
    }
    if (const char *q = std::getenv("SYMBOL_QUIET"))
        if (*q && std::strcmp(q, "0") != 0)
            o.quiet = true;
    try {
        server::ServerOptions sopts;
        sopts.socketPath = o.socket;
        sopts.cacheDir = o.cacheDir;
        sopts.jobs = o.jobs > 0 ? static_cast<unsigned>(o.jobs) : 0;
        sopts.maxInFlight =
            static_cast<std::size_t>(o.maxInFlight);
        sopts.quiet = o.quiet;
        server::Server server(sopts);
        server.start();
        server::Server::drainOnSignals(server);
        if (!o.quiet)
            std::fprintf(
                stderr,
                "[symbold] listening on %s (jobs=%u, "
                "max-inflight=%d%s)\n",
                o.socket.c_str(), server.driver().jobs(),
                o.maxInFlight,
                server.driver().store() ? ", disk store" : "");
        server.wait();
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "symbold: %s\n", e.what());
        return 1;
    }
}
