/**
 * @file
 * symbolc — command-line driver for the SYMBOL toolchain.
 *
 * Compiles a Prolog program (a file, or a built-in benchmark) down
 * the full pipeline and runs it on a chosen machine, printing the
 * answer and the cycle accounting. Intermediate representations can
 * be dumped at every stage.
 *
 * Usage:
 *   symbolc [options] <file.pl | --bench NAME | --bench all | --list>
 *     --units N        number of VLIW units (default 3)
 *     --jobs N         worker threads for the parallel evaluation
 *                      driver (default: SYMBOL_JOBS env, else
 *                      hardware concurrency); used by --bench all
 *     --bench all      sweep the whole suite through the parallel
 *                      driver and print one summary row per
 *                      benchmark (deterministic order; driver
 *                      timing/cache stats go to stderr)
 *     --cache-dir DIR  persistent artefact store: compiled/profiled
 *                      workloads and compacted code are reloaded
 *                      from DIR instead of rebuilt, and written
 *                      back after a build (default: the
 *                      SYMBOL_CACHE_DIR environment variable;
 *                      neither set = no disk store)
 *     --store-stats    print the disk-store counters (hits, writes,
 *                      bytes, deserialize time) to stderr
 *     --cache-verify DIR  scan a store directory, validate every
 *                      file's checksums and format version, print a
 *                      per-file report and exit (1 if any file is
 *                      bad)
 *     --verify-schedule  run the independent schedule verifier
 *                      (src/verify): with a file or --bench NAME it
 *                      verifies that run's schedule before
 *                      simulating; alone it sweeps every suite
 *                      benchmark across the default machine, the
 *                      Table 3 unit sweep, the prototype and the
 *                      ablation configurations, prints a summary
 *                      table and exits 1 on any violation
 *     --mode M         trace | bb | seq       (default trace)
 *     --proto          SYMBOL prototype configuration (two formats,
 *                      3-cycle memory, 2-cycle delayed branches)
 *     --no-indexing    disable first-argument indexing
 *     --expand-tags    expand tag branches (plain-RISC ablation)
 *     --no-disamb      disable fresh-allocation disambiguation
 *     --dump-bam       print the BAM code
 *     --dump-ici       print the IntCode
 *     --dump-wide      print the compacted wide code
 *     --stats          print instruction mix and branch statistics
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/stats.hh"
#include "machine/config.hh"
#include "suite/driver.hh"
#include "suite/pipeline.hh"
#include "support/text.hh"
#include "verify/verify.hh"

using namespace symbol;

namespace
{

struct Options
{
    std::string file;
    std::string bench;
    int jobs = 0; // 0 = SYMBOL_JOBS env / hardware concurrency
    int units = 3;
    std::string mode = "trace";
    std::string cacheDir;   // "" = SYMBOL_CACHE_DIR env / none
    std::string verifyDir;  // --cache-verify subcommand
    bool verifySchedule = false;
    bool storeStats = false;
    bool proto = false;
    bool indexing = true;
    bool expandTags = false;
    bool disamb = true;
    bool dumpBam = false;
    bool dumpIci = false;
    bool dumpWide = false;
    bool stats = false;
    bool list = false;
};

int
usage()
{
    std::fprintf(stderr,
                 "usage: symbolc [options] <file.pl|--bench NAME|"
                 "--list>\n(see the header of tools/symbolc.cc)\n");
    return 2;
}

/**
 * Parse the numeric operand of flag @p name from argv[++k]. A
 * missing operand, trailing garbage, overflow or a value outside
 * [@p lo, @p hi] is diagnosed on stderr and fails the parse — the
 * old std::atoi calls read past argc and silently turned garbage
 * into 0.
 */
bool
numFlag(int argc, char **argv, int &k, const char *name, long lo,
        long hi, int &out)
{
    if (k + 1 >= argc) {
        std::fprintf(stderr,
                     "symbolc: %s requires a numeric operand\n",
                     name);
        return false;
    }
    const char *s = argv[++k];
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE || v < lo ||
        v > hi) {
        std::fprintf(stderr,
                     "symbolc: %s: invalid operand '%s' (expected "
                     "an integer in [%ld, %ld])\n",
                     name, s, lo, hi);
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

/** Parse the string operand of flag @p name, diagnosing a missing
 *  operand instead of falling through to the generic usage error. */
bool
strFlag(int argc, char **argv, int &k, const char *name,
        std::string &out)
{
    if (k + 1 >= argc) {
        std::fprintf(stderr, "symbolc: %s requires an operand\n",
                     name);
        return false;
    }
    out = argv[++k];
    return true;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    for (int k = 1; k < argc; ++k) {
        std::string a = argv[k];
        if (a == "--units") {
            if (!numFlag(argc, argv, k, "--units", 1, 64, o.units))
                return false;
        } else if (a == "--jobs") {
            if (!numFlag(argc, argv, k, "--jobs", 1, 1024, o.jobs))
                return false;
        } else if (a == "--mode") {
            if (!strFlag(argc, argv, k, "--mode", o.mode))
                return false;
        } else if (a == "--bench") {
            if (!strFlag(argc, argv, k, "--bench", o.bench))
                return false;
        } else if (a == "--cache-dir") {
            if (!strFlag(argc, argv, k, "--cache-dir", o.cacheDir))
                return false;
        } else if (a == "--cache-verify") {
            if (!strFlag(argc, argv, k, "--cache-verify",
                         o.verifyDir))
                return false;
        } else if (a == "--verify-schedule") {
            o.verifySchedule = true;
        } else if (a == "--store-stats") {
            o.storeStats = true;
        } else if (a == "--proto") {
            o.proto = true;
        } else if (a == "--no-indexing") {
            o.indexing = false;
        } else if (a == "--expand-tags") {
            o.expandTags = true;
        } else if (a == "--no-disamb") {
            o.disamb = false;
        } else if (a == "--dump-bam") {
            o.dumpBam = true;
        } else if (a == "--dump-ici") {
            o.dumpIci = true;
        } else if (a == "--dump-wide") {
            o.dumpWide = true;
        } else if (a == "--stats") {
            o.stats = true;
        } else if (a == "--list") {
            o.list = true;
        } else if (!a.empty() && a[0] != '-') {
            o.file = a;
        } else {
            std::fprintf(stderr, "symbolc: unknown option '%s'\n",
                         a.c_str());
            return false;
        }
    }
    return o.list || !o.file.empty() || !o.bench.empty() ||
           !o.verifyDir.empty() || o.verifySchedule;
}

/**
 * --cache-verify: validate every store file and print a per-file
 * report. Exit 0 when the whole store is healthy.
 */
int
cacheVerify(const std::string &dir)
{
    std::vector<suite::ArtifactStore::FileReport> reports =
        suite::ArtifactStore::verifyDir(dir);
    std::size_t bad = 0;
    for (const auto &r : reports) {
        if (r.ok)
            std::printf("%s: ok (v%u, %zu sections, %zu bytes)\n",
                        r.name.c_str(), r.version, r.sections,
                        r.bytes);
        else {
            std::printf("%s: BAD — %s (%zu bytes)\n", r.name.c_str(),
                        r.problem.c_str(), r.bytes);
            ++bad;
        }
    }
    std::printf("%zu file(s), %zu bad\n", reports.size(), bad);
    return bad ? 1 : 0;
}

/**
 * --verify-schedule (standalone): compact every suite benchmark for
 * the default machine, the Table 3 unit sweep, the prototype and the
 * ablation configurations, run the independent verifier over each
 * schedule and print one summary row per configuration. Exit 1 on
 * any violation (details go to stderr).
 */
int
verifySweep(const Options &o)
{
    struct Point
    {
        std::string label;
        machine::MachineConfig mc;
        sched::CompactOptions co;
        suite::WorkloadOptions wo;
    };
    std::vector<Point> points;
    auto add = [&](std::string label, machine::MachineConfig mc,
                   sched::CompactOptions co = {},
                   suite::WorkloadOptions wo = {}) {
        mc.name = std::move(label);
        points.push_back({mc.name, mc, co, wo});
    };
    // The paper's default model, the Table 3 unit sweep, the §5
    // prototype, and one ablation per scheduling dimension.
    add("ideal-3", machine::MachineConfig::idealShared(3));
    for (int units : {1, 2, 4})
        add(strprintf("ideal-%d", units),
            machine::MachineConfig::idealShared(units));
    add("proto-3", machine::MachineConfig::prototype(3));
    {
        machine::MachineConfig mc =
            machine::MachineConfig::idealShared(3);
        mc.memPortsTotal = 2;
        add("memports-2", mc);
    }
    {
        sched::CompactOptions co;
        co.traceMode = false;
        add("bb-mode", machine::MachineConfig::idealShared(3), co);
    }
    {
        sched::CompactOptions co;
        co.freshAllocDisambiguation = false;
        add("no-disamb", machine::MachineConfig::idealShared(3), co);
    }
    {
        suite::WorkloadOptions wo;
        wo.translate.expandTagBranches = true;
        add("expand-tags", machine::MachineConfig::idealShared(3), {},
            wo);
    }

    suite::DriverOptions dopts;
    dopts.jobs = o.jobs > 0 ? static_cast<unsigned>(o.jobs) : 0;
    dopts.cacheDir = o.cacheDir;
    suite::EvalDriver driver(dopts);

    std::vector<std::string> benches;
    for (const auto &b : suite::aquarius())
        benches.push_back(b.name);

    // One verification task per (config × benchmark), fanned out
    // across the pool; results stay in input order so the report is
    // deterministic.
    struct Cell
    {
        verify::Report rep;
        std::string bench;
        std::size_t point = 0;
    };
    std::vector<Cell> cells = driver.map(
        points.size() * benches.size(), [&](std::size_t i) {
            const Point &p = points[i / benches.size()];
            const std::string &bench = benches[i % benches.size()];
            const suite::Workload &w = driver.workload(bench, p.wo);
            sched::CompactResult cr = sched::compact(
                w.ici(), w.profile(), p.mc, p.co);
            Cell c;
            c.rep = verify::checkSchedule(cr.code, w.ici(), p.mc);
            c.bench = bench;
            c.point = i / benches.size();
            return c;
        });

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"config", "benchmarks", "wide", "ops",
                    "dep.edges", "violations"});
    std::uint64_t totalViolations = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
        std::uint64_t wide = 0, ops = 0, edges = 0, bad = 0;
        std::size_t n = 0;
        for (const Cell &c : cells) {
            if (c.point != p)
                continue;
            ++n;
            wide += c.rep.wideInstrs;
            ops += c.rep.microOps;
            edges += c.rep.depEdges;
            bad += c.rep.total;
            if (!c.rep.ok())
                std::fprintf(stderr, "%s (%s):\n%s\n",
                             c.bench.c_str(),
                             points[p].label.c_str(),
                             c.rep.str().c_str());
        }
        totalViolations += bad;
        rows.push_back(
            {points[p].label, strprintf("%zu", n),
             strprintf("%llu", static_cast<unsigned long long>(wide)),
             strprintf("%llu", static_cast<unsigned long long>(ops)),
             strprintf("%llu",
                       static_cast<unsigned long long>(edges)),
             strprintf("%llu",
                       static_cast<unsigned long long>(bad))});
    }
    std::printf("%s", renderTable(rows).c_str());
    std::printf("%llu violation(s) across %zu schedule(s)\n",
                static_cast<unsigned long long>(totalViolations),
                cells.size());
    if (o.storeStats)
        driver.reportStats();
    return totalViolations ? 1 : 0;
}

/**
 * --bench all: fan the whole suite out across the evaluation driver
 * and print one summary row per benchmark, in suite order.
 */
int
sweepAll(const Options &o)
{
    machine::MachineConfig mc =
        o.proto ? machine::MachineConfig::prototype(o.units)
                : machine::MachineConfig::idealShared(o.units);
    sched::CompactOptions co;
    co.traceMode = o.mode == "trace";
    co.freshAllocDisambiguation = o.disamb;
    suite::WorkloadOptions wo;
    wo.compiler.indexing = o.indexing;
    wo.translate.expandTagBranches = o.expandTags;

    suite::DriverOptions dopts;
    dopts.jobs = o.jobs > 0 ? static_cast<unsigned>(o.jobs) : 0;
    dopts.cacheDir = o.cacheDir;
    dopts.verifySchedules = o.verifySchedule;
    suite::EvalDriver driver(dopts);

    std::vector<suite::EvalTask> tasks;
    for (const auto &b : suite::aquarius())
        tasks.push_back({b.name, wo, mc, co});
    std::vector<suite::VliwRun> runs;
    if (o.mode != "seq")
        runs = driver.sweep(tasks);
    else
        driver.prefetch([&] {
            std::vector<std::string> names;
            for (const auto &t : tasks)
                names.push_back(t.bench);
            return names;
        }(), wo);

    std::vector<std::vector<std::string>> rows;
    rows.push_back(o.mode == "seq"
                       ? std::vector<std::string>{"benchmark", "ICIs",
                                                  "seq.cycles"}
                       : std::vector<std::string>{
                             "benchmark", "seq.cycles", mc.name,
                             "speedup"});
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const suite::Workload &w =
            driver.workload(tasks[i].bench, wo);
        if (o.mode == "seq")
            rows.push_back(
                {tasks[i].bench,
                 strprintf("%llu", static_cast<unsigned long long>(
                                       w.instructions())),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       w.seqCycles()))});
        else
            rows.push_back(
                {tasks[i].bench,
                 strprintf("%llu",
                           static_cast<unsigned long long>(
                               w.seqCyclesFor(mc))),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       runs[i].cycles)),
                 strprintf("%.2f", runs[i].speedupVsSeq)});
    }
    std::printf("%s", renderTable(rows).c_str());
    driver.reportStats();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage();

    if (!o.verifyDir.empty()) {
        try {
            return cacheVerify(o.verifyDir);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    if (o.verifySchedule && o.file.empty() && o.bench.empty()) {
        try {
            return verifySweep(o);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    if (o.list) {
        for (const auto &b : suite::aquarius())
            std::printf("%s\n", b.name.c_str());
        return 0;
    }

    if (o.bench == "all") {
        try {
            return sweepAll(o);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    try {
        suite::Benchmark bench;
        if (!o.bench.empty()) {
            bench = suite::benchmark(o.bench);
        } else {
            std::ifstream in(o.file);
            if (!in) {
                std::fprintf(stderr, "symbolc: cannot open %s\n",
                             o.file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            bench.name = o.file;
            bench.source = ss.str();
        }

        suite::WorkloadOptions wo;
        wo.compiler.indexing = o.indexing;
        wo.translate.expandTagBranches = o.expandTags;
        // A single-benchmark run still goes through the evaluation
        // driver so the persistent store serves it too.
        suite::DriverOptions dopts;
        dopts.jobs = 1;
        dopts.cacheDir = o.cacheDir;
        dopts.verifySchedules = o.verifySchedule;
        suite::EvalDriver driver(dopts);
        const suite::Workload &w = driver.workload(bench, wo);

        if (o.dumpIci)
            std::printf("%s\n", w.ici().str().c_str());
        if (o.dumpBam) {
            // Re-run the front half for the listing (the workload
            // does not retain the BAM module).
            Interner in;
            prolog::Program p =
                prolog::parseProgram(bench.source, in);
            bamc::CompilerOptions co;
            co.indexing = o.indexing;
            bam::Module m = bamc::compile(p, co);
            std::printf("%s\n", bam::print(m).c_str());
        }

        std::printf("answer:\n%s", w.seqOutput().c_str());
        std::printf("\nsequential: %llu ICIs, %llu cycles; BAM "
                    "model: %llu cycles (%.2fx)\n",
                    static_cast<unsigned long long>(
                        w.instructions()),
                    static_cast<unsigned long long>(w.seqCycles()),
                    static_cast<unsigned long long>(w.bamCycles()),
                    static_cast<double>(w.seqCycles()) /
                        static_cast<double>(w.bamCycles()));

        if (o.mode != "seq") {
            machine::MachineConfig mc =
                o.proto ? machine::MachineConfig::prototype(o.units)
                        : machine::MachineConfig::idealShared(
                              o.units);
            sched::CompactOptions co;
            co.traceMode = o.mode == "trace";
            co.freshAllocDisambiguation = o.disamb;
            suite::VliwRun r = w.runVliw(mc, co);
            std::printf(
                "%s (%s): %llu cycles, speedup %.2f, avg region "
                "%.1f ops, peak bank pressure %d\n",
                mc.name.c_str(), o.mode.c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.speedupVsSeq, r.stats.avgDynamicLength,
                r.stats.peakBankPressure);
            if (o.dumpWide) {
                sched::CompactResult cr = sched::compact(
                    w.ici(), w.profile(), mc, co);
                std::printf("%s\n", cr.code.str().c_str());
            }
            if (o.verifySchedule) {
                // runVliw already verified (and would have thrown);
                // re-derive the report here for the summary line.
                sched::CompactResult cr = sched::compact(
                    w.ici(), w.profile(), mc, co);
                verify::Report rep =
                    verify::checkSchedule(cr.code, w.ici(), mc);
                std::printf("%s", rep.str().c_str());
            }
        }

        if (o.stats) {
            analysis::InstructionMix mix =
                analysis::instructionMix(w.ici(), w.profile());
            std::printf("\nmix: memory %.1f%%  alu %.1f%%  move "
                        "%.1f%%  control %.1f%%\n",
                        mix.memory * 100, mix.alu * 100,
                        mix.move * 100, mix.control * 100);
            analysis::BranchStats bs =
                analysis::branchStats(w.ici(), w.profile());
            std::printf("branches: %llu dynamic, P_fp %.4f, "
                        "P_taken %.3f\n",
                        static_cast<unsigned long long>(
                            bs.branchExecutions),
                        bs.avgFaultyPrediction,
                        bs.avgTakenProbability);
        }
        if (o.storeStats)
            driver.reportStats();
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "symbolc: %s\n", e.what());
        return 1;
    }
}
