/**
 * @file
 * symbolc — command-line driver for the SYMBOL toolchain.
 *
 * Compiles a Prolog program (a file, or a built-in benchmark) down
 * the full pipeline and runs it on a chosen machine, printing the
 * answer and the cycle accounting. Intermediate representations can
 * be printed after any pipeline stage, per-pass timing is available
 * with --time-passes, and --stats-json emits the machine-readable
 * driver/pass accounting document.
 *
 * Run `symbolc --help` for the full flag reference: the help text is
 * generated from the same flag table the parser walks, so it cannot
 * drift from the implementation.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/stats.hh"
#include "check/check.hh"
#include "machine/config.hh"
#include "pass/instrument.hh"
#include "suite/driver.hh"
#include "suite/pipeline.hh"
#include "suite/statsjson.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"
#include "verify/verify.hh"

using namespace symbol;

namespace
{

struct Options
{
    std::string file;
    std::string bench;
    int jobs = 0; // 0 = SYMBOL_JOBS env / hardware concurrency
    int units = 3;
    std::string mode = "trace";
    std::string cacheDir;   // "" = SYMBOL_CACHE_DIR env / none
    std::string verifyDir;  // --cache-verify subcommand
    std::string migrateDir; // --migrate-store subcommand
    std::string printAfter; // comma-separable pass names
    std::string statsJson;  // output path; "-" = stdout
    std::string analyzePasses; // --analyze=LIST selection
    bool analyze = false;
    bool werror = false;
    bool verifySchedule = false;
    bool storeStats = false;
    bool timePasses = false;
    bool quiet = false;
    bool proto = false;
    bool indexing = true;
    bool expandTags = false;
    bool disamb = true;
    bool dumpBam = false;
    bool dumpIci = false;
    bool dumpWide = false;
    bool stats = false;
    bool list = false;
    bool help = false;
};

/**
 * One command-line flag: the single source of truth both the parser
 * and the --help text are generated from. Exactly one of b / i / s
 * is the binding target — except when b and s are both set, which
 * declares an optional inline operand (--flag or --flag=VALUE): b
 * records the flag's presence, s the value when one was given.
 */
struct Flag
{
    const char *name;    ///< "--units"
    const char *operand; ///< operand placeholder, nullptr for bools
    const char *help;    ///< one-line description
    bool *b = nullptr;   ///< bool target, set to bval when present
    bool bval = true;
    int *i = nullptr;    ///< int target, operand in [lo, hi]
    long lo = 0, hi = 0;
    std::string *s = nullptr; ///< string target
};

std::vector<Flag>
flagTable(Options &o)
{
    return {
        {.name = "--bench", .operand = "NAME",
         .help = "run a built-in benchmark; NAME 'all' sweeps the "
                 "whole suite through the parallel driver (one "
                 "summary row per benchmark, deterministic order)",
         .s = &o.bench},
        {.name = "--list", .operand = nullptr,
         .help = "list the built-in benchmarks and exit",
         .b = &o.list},
        {.name = "--units", .operand = "N",
         .help = "number of VLIW units (default 3)", .i = &o.units,
         .lo = 1, .hi = 64},
        {.name = "--jobs", .operand = "N",
         .help = "worker threads for the parallel evaluation driver "
                 "(default: SYMBOL_JOBS env, else hardware "
                 "concurrency)",
         .i = &o.jobs, .lo = 1, .hi = 1024},
        {.name = "--mode", .operand = "M",
         .help = "compaction mode: trace | bb | seq (default trace)",
         .s = &o.mode},
        {.name = "--proto", .operand = nullptr,
         .help = "SYMBOL prototype configuration (two formats, "
                 "3-cycle memory, 2-cycle delayed branches)",
         .b = &o.proto},
        {.name = "--cache-dir", .operand = "DIR",
         .help = "persistent artefact store: workloads and compacted "
                 "code are reloaded from DIR instead of rebuilt "
                 "(default: SYMBOL_CACHE_DIR env; neither set = no "
                 "disk store)",
         .s = &o.cacheDir},
        {.name = "--cache-verify", .operand = "DIR",
         .help = "scan a store directory, validate every file's "
                 "checksums and format version, print a per-file "
                 "report and exit (2 if any file is bad)",
         .s = &o.verifyDir},
        {.name = "--migrate-store", .operand = "DIR",
         .help = "migrate a flat (pre-sharding) artefact store in "
                 "place: move every artefact into its 2-hex-char "
                 "hash-prefix shard subdirectory, scrub stale lock/"
                 "temp droppings, print a summary and exit",
         .s = &o.migrateDir},
        {.name = "--store-stats", .operand = nullptr,
         .help = "print the driver/disk-store counters to stderr",
         .b = &o.storeStats},
        {.name = "--verify-schedule", .operand = nullptr,
         .help = "run the independent schedule verifier: with a file "
                 "or --bench NAME it checks that run's schedule; "
                 "alone it sweeps every suite benchmark across the "
                 "standard configurations and exits 2 on any "
                 "violation",
         .b = &o.verifySchedule},
        {.name = "--analyze", .operand = "[=LIST]",
         .help = "run the static IR analyzer (passes: structural, "
                 "definit, tags, balance, deadcode; default all): "
                 "with a file or --bench NAME it reports on that "
                 "run; alone it sweeps every suite benchmark across "
                 "the standard configurations; exits 2 on any "
                 "error-severity finding (also: SYMBOL_ANALYZE env)",
         .b = &o.analyze, .s = &o.analyzePasses},
        {.name = "--Werror", .operand = nullptr,
         .help = "promote analyzer warnings to errors (with "
                 "--analyze)",
         .b = &o.werror},
        {.name = "--no-indexing", .operand = nullptr,
         .help = "disable first-argument indexing",
         .b = &o.indexing, .bval = false},
        {.name = "--expand-tags", .operand = nullptr,
         .help = "expand tag branches (plain-RISC ablation)",
         .b = &o.expandTags},
        {.name = "--no-disamb", .operand = nullptr,
         .help = "disable fresh-allocation memory disambiguation",
         .b = &o.disamb, .bval = false},
        {.name = "--print-after", .operand = "PASS",
         .help = "print the IR after a pass: bam-compile (BAM "
                 "code), intcode (IntCode), compact (wide code); "
                 "repeatable, also as --print-after=PASS",
         .s = &o.printAfter},
        {.name = "--dump-bam", .operand = nullptr,
         .help = "alias for --print-after=bam-compile",
         .b = &o.dumpBam},
        {.name = "--dump-ici", .operand = nullptr,
         .help = "alias for --print-after=intcode", .b = &o.dumpIci},
        {.name = "--dump-wide", .operand = nullptr,
         .help = "alias for --print-after=compact",
         .b = &o.dumpWide},
        {.name = "--stats", .operand = nullptr,
         .help = "print instruction mix and branch statistics",
         .b = &o.stats},
        {.name = "--time-passes", .operand = nullptr,
         .help = "report per-pass wall time, IR sizes and invocation "
                 "counts on stderr (also: SYMBOL_TIME_PASSES env)",
         .b = &o.timePasses},
        {.name = "--stats-json", .operand = "FILE",
         .help = "write the machine-readable driver/pass statistics "
                 "document (JSON) to FILE ('-' = stdout)",
         .s = &o.statsJson},
        {.name = "--quiet", .operand = nullptr,
         .help = "suppress the [driver] stderr summary (also: "
                 "SYMBOL_QUIET env)",
         .b = &o.quiet},
        {.name = "--help", .operand = nullptr,
         .help = "print this help and exit", .b = &o.help},
    };
}

std::vector<std::string>
splitWords(const std::string &text)
{
    std::vector<std::string> words;
    std::istringstream ss(text);
    std::string w;
    while (ss >> w)
        words.push_back(w);
    return words;
}

/** Render one help line per table entry, wrapped at 78 columns. */
std::string
helpText(std::vector<Flag> flags)
{
    std::string out =
        "usage: symbolc [options] <file.pl | --bench NAME | "
        "--bench all | --list>\n";
    std::size_t width = 0;
    for (const Flag &f : flags) {
        std::size_t w = std::strlen(f.name) +
                        (f.operand ? (f.operand[0] == '[' ? 0 : 1) +
                                         std::strlen(f.operand)
                                   : 0);
        width = std::max(width, w);
    }
    for (const Flag &f : flags) {
        std::string head = "  " + std::string(f.name);
        if (f.operand)
            head += std::string(f.operand[0] == '[' ? "" : " ") +
                    f.operand;
        head.resize(std::max(head.size(), width + 4), ' ');
        std::string line = head;
        for (const std::string &word : splitWords(f.help)) {
            if (line.size() + 1 + word.size() > 78) {
                out += line + "\n";
                line = std::string(width + 4, ' ');
                line += word;
            } else {
                line += (line.back() == ' ' ? "" : " ") + word;
            }
        }
        out += line + "\n";
    }
    out += "\nexit codes:\n"
           "  0  success, no violations\n"
           "  1  usage error, bad input, or an internal failure\n"
           "  2  analyzer or verifier violations (--analyze, "
           "--Werror,\n"
           "     --verify-schedule, --cache-verify, SYMBOL_ANALYZE, "
           "SYMBOL_VERIFY)\n";
    return out;
}

int
usage(Options &o)
{
    std::fputs(helpText(flagTable(o)).c_str(), stderr);
    return 1;
}

/** Parse a validated integer operand of @p name into @p out. */
bool
intOperand(const char *name, const std::string &s, long lo, long hi,
           int &out)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "symbolc: %s: invalid operand '%s' (expected "
                     "an integer in [%ld, %ld])\n",
                     name, s.c_str(), lo, hi);
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    std::vector<Flag> flags = flagTable(o);
    for (int k = 1; k < argc; ++k) {
        std::string a = argv[k];
        // --name=VALUE is equivalent to --name VALUE.
        std::string inlineVal;
        bool hasInline = false;
        if (a.rfind("--", 0) == 0) {
            std::size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.resize(eq);
                hasInline = true;
            }
        }
        const Flag *f = nullptr;
        for (const Flag &g : flags)
            if (a == g.name) {
                f = &g;
                break;
            }
        if (!f) {
            if (!a.empty() && a[0] != '-') {
                o.file = argv[k];
                continue;
            }
            std::fprintf(stderr, "symbolc: unknown option '%s'\n",
                         a.c_str());
            return false;
        }
        if (f->b && f->s) {
            // Optional inline operand: --flag or --flag=VALUE (a
            // separate word is never consumed, so `--analyze foo.pl`
            // keeps meaning "analyze the file foo.pl").
            *f->b = f->bval;
            if (hasInline)
                *f->s = inlineVal;
            continue;
        }
        if (f->b) {
            if (hasInline) {
                std::fprintf(stderr,
                             "symbolc: %s takes no operand\n",
                             f->name);
                return false;
            }
            *f->b = f->bval;
            continue;
        }
        std::string operand;
        if (hasInline) {
            operand = inlineVal;
        } else if (k + 1 < argc) {
            operand = argv[++k];
        } else {
            std::fprintf(stderr, "symbolc: %s requires a%s operand\n",
                         f->name, f->i ? " numeric" : "n");
            return false;
        }
        if (f->i) {
            if (!intOperand(f->name, operand, f->lo, f->hi, *f->i))
                return false;
        } else if (f->s == &o.printAfter) {
            // Repeatable: accumulate comma-separated.
            if (!o.printAfter.empty())
                o.printAfter += ",";
            o.printAfter += operand;
        } else {
            *f->s = operand;
        }
    }
    if (o.help)
        return true;

    // Resolve --print-after names onto the dump switches.
    for (const std::string &p : split(o.printAfter, ',')) {
        if (p == "bam-compile")
            o.dumpBam = true;
        else if (p == "intcode")
            o.dumpIci = true;
        else if (p == "compact")
            o.dumpWide = true;
        else if (!p.empty()) {
            std::fprintf(stderr,
                         "symbolc: --print-after: unknown pass '%s' "
                         "(valid: bam-compile, intcode, compact)\n",
                         p.c_str());
            return false;
        }
    }
    if (!o.analyzePasses.empty()) {
        try {
            check::parsePassList(o.analyzePasses);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: --analyze: %s\n",
                         e.what());
            return false;
        }
    }
    return o.list || !o.file.empty() || !o.bench.empty() ||
           !o.verifyDir.empty() || !o.migrateDir.empty() ||
           o.verifySchedule || o.analyze;
}

/** The analyzer configuration the parsed flags describe. */
check::AnalyzeOptions
analyzeOptions(const Options &o)
{
    check::AnalyzeOptions aopts;
    if (!o.analyzePasses.empty())
        aopts.passes = check::parsePassList(o.analyzePasses);
    aopts.werror = o.werror;
    return aopts;
}

/** Emit the --stats-json document, if requested. */
bool
writeStatsJson(const Options &o, const suite::EvalDriver &driver)
{
    if (o.statsJson.empty())
        return true;
    std::string doc = suite::statsJson(
        driver, pass::PassInstrumentation::global());
    if (o.statsJson == "-") {
        std::fputs(doc.c_str(), stdout);
        return true;
    }
    std::ofstream out(o.statsJson,
                      std::ios::binary | std::ios::trunc);
    out << doc;
    if (!out) {
        std::fprintf(stderr, "symbolc: cannot write %s\n",
                     o.statsJson.c_str());
        return false;
    }
    return true;
}

/** Timing report for paths that skip driver.reportStats(). */
void
reportTimings(const Options &o, const suite::EvalDriver &driver)
{
    if (o.storeStats)
        driver.reportStats();
    else if (pass::timePassesEnabled())
        std::fprintf(
            stderr, "%s",
            pass::timingReport(
                pass::PassInstrumentation::global().snapshot())
                .c_str());
}

suite::DriverOptions
driverOptions(const Options &o)
{
    suite::DriverOptions dopts;
    dopts.jobs = o.jobs > 0 ? static_cast<unsigned>(o.jobs) : 0;
    dopts.cacheDir = o.cacheDir;
    dopts.verifySchedules = o.verifySchedule;
    dopts.analyze = o.analyze;
    dopts.analyzeOpts = analyzeOptions(o);
    dopts.quiet = o.quiet;
    return dopts;
}

/**
 * --cache-verify: validate every store file and print a per-file
 * report. Exit 0 when the whole store is healthy.
 */
int
cacheVerify(const std::string &dir)
{
    std::vector<suite::ArtifactStore::FileReport> reports =
        suite::ArtifactStore::verifyDir(dir);
    std::size_t bad = 0;
    for (const auto &r : reports) {
        if (r.ok)
            std::printf("%s: ok (v%u, %zu sections, %zu bytes)\n",
                        r.name.c_str(), r.version, r.sections,
                        r.bytes);
        else {
            std::printf("%s: BAD — %s (%zu bytes)\n", r.name.c_str(),
                        r.problem.c_str(), r.bytes);
            ++bad;
        }
    }
    std::printf("%zu file(s), %zu bad\n", reports.size(), bad);
    return bad ? 2 : 0;
}

/**
 * --verify-schedule (standalone): compact every suite benchmark for
 * the default machine, the Table 3 unit sweep, the prototype and the
 * ablation configurations, run the independent verifier over each
 * schedule and print one summary row per configuration. Exit 2 on
 * any violation (details go to stderr).
 */
int
verifySweep(const Options &o)
{
    struct Point
    {
        std::string label;
        machine::MachineConfig mc;
        sched::CompactOptions co;
        suite::WorkloadOptions wo;
    };
    std::vector<Point> points;
    auto add = [&](std::string label, machine::MachineConfig mc,
                   sched::CompactOptions co = {},
                   suite::WorkloadOptions wo = {}) {
        mc.name = std::move(label);
        points.push_back({mc.name, mc, co, wo});
    };
    // The paper's default model, the Table 3 unit sweep, the §5
    // prototype, and one ablation per scheduling dimension.
    add("ideal-3", machine::MachineConfig::idealShared(3));
    for (int units : {1, 2, 4})
        add(strprintf("ideal-%d", units),
            machine::MachineConfig::idealShared(units));
    add("proto-3", machine::MachineConfig::prototype(3));
    {
        machine::MachineConfig mc =
            machine::MachineConfig::idealShared(3);
        mc.memPortsTotal = 2;
        add("memports-2", mc);
    }
    {
        sched::CompactOptions co;
        co.traceMode = false;
        add("bb-mode", machine::MachineConfig::idealShared(3), co);
    }
    {
        sched::CompactOptions co;
        co.freshAllocDisambiguation = false;
        add("no-disamb", machine::MachineConfig::idealShared(3), co);
    }
    {
        suite::WorkloadOptions wo;
        wo.translate.expandTagBranches = true;
        add("expand-tags", machine::MachineConfig::idealShared(3), {},
            wo);
    }

    suite::DriverOptions dopts = driverOptions(o);
    dopts.verifySchedules = false; // this sweep IS the verification
    suite::EvalDriver driver(dopts);

    std::vector<std::string> benches;
    for (const auto &b : suite::aquarius())
        benches.push_back(b.name);

    // One verification task per (config × benchmark), fanned out
    // across the pool; results stay in input order so the report is
    // deterministic.
    struct Cell
    {
        verify::Report rep;
        std::string bench;
        std::size_t point = 0;
    };
    std::vector<Cell> cells = driver.map(
        points.size() * benches.size(), [&](std::size_t i) {
            const Point &p = points[i / benches.size()];
            const std::string &bench = benches[i % benches.size()];
            const suite::Workload &w = driver.workload(bench, p.wo);
            sched::CompactResult cr = sched::compact(
                w.ici(), w.profile(), p.mc, p.co);
            Cell c;
            c.rep = verify::checkSchedule(cr.code, w.ici(), p.mc);
            c.bench = bench;
            c.point = i / benches.size();
            return c;
        });

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"config", "benchmarks", "wide", "ops",
                    "dep.edges", "violations"});
    std::uint64_t totalViolations = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
        std::uint64_t wide = 0, ops = 0, edges = 0, bad = 0;
        std::size_t n = 0;
        for (const Cell &c : cells) {
            if (c.point != p)
                continue;
            ++n;
            wide += c.rep.wideInstrs;
            ops += c.rep.microOps;
            edges += c.rep.depEdges;
            bad += c.rep.total;
            if (!c.rep.ok())
                std::fprintf(stderr, "%s (%s):\n%s\n",
                             c.bench.c_str(),
                             points[p].label.c_str(),
                             c.rep.str().c_str());
        }
        totalViolations += bad;
        rows.push_back(
            {points[p].label, strprintf("%zu", n),
             strprintf("%llu", static_cast<unsigned long long>(wide)),
             strprintf("%llu", static_cast<unsigned long long>(ops)),
             strprintf("%llu",
                       static_cast<unsigned long long>(edges)),
             strprintf("%llu",
                       static_cast<unsigned long long>(bad))});
    }
    std::printf("%s", renderTable(rows).c_str());
    std::printf("%llu violation(s) across %zu schedule(s)\n",
                static_cast<unsigned long long>(totalViolations),
                cells.size());
    reportTimings(o, driver);
    if (!writeStatsJson(o, driver))
        return 1;
    return totalViolations ? 2 : 0;
}

/**
 * --analyze (standalone): build every suite benchmark's front end
 * under each front-end configuration and run the static analyzer
 * over it, printing one summary row per configuration plus the
 * per-id finding totals (the counts EXPERIMENTS.md pins). The
 * machine-config points of the verifier sweep — the Table 3 unit
 * counts, the prototype — all share one front end, because the
 * analyzer's input does not depend on the machine model; the
 * "default" row therefore covers them all, and the ablation rows
 * cover the front ends they actually change. Exit 2 on any
 * error-severity finding (full reports go to stderr).
 */
int
analyzeSweep(const Options &o)
{
    struct Point
    {
        std::string label;
        suite::WorkloadOptions wo;
    };
    std::vector<Point> points;
    points.push_back({"default", {}});
    {
        suite::WorkloadOptions wo;
        wo.translate.expandTagBranches = true;
        points.push_back({"expand-tags", wo});
    }
    {
        suite::WorkloadOptions wo;
        wo.compiler.indexing = false;
        points.push_back({"no-indexing", wo});
    }

    check::AnalyzeOptions aopts = analyzeOptions(o);
    suite::DriverOptions dopts = driverOptions(o);
    dopts.analyze = false; // this sweep IS the analysis
    suite::EvalDriver driver(dopts);

    std::vector<std::string> benches;
    for (const auto &b : suite::aquarius())
        benches.push_back(b.name);

    // One analysis per (config × benchmark), fanned out across the
    // pool; results stay in input order so the report is
    // deterministic for any --jobs setting.
    struct Cell
    {
        check::DiagnosticEngine diag;
        std::string bench;
        std::size_t point = 0;
    };
    std::vector<Cell> cells = driver.map(
        points.size() * benches.size(), [&](std::size_t i) {
            const Point &p = points[i / benches.size()];
            const std::string &bench = benches[i % benches.size()];
            const suite::Workload &w = driver.workload(bench, p.wo);
            Cell c;
            c.diag = check::analyze(w.bamModule(), w.ici(), aopts);
            c.bench = bench;
            c.point = i / benches.size();
            return c;
        });

    std::vector<std::vector<std::string>> rows;
    rows.push_back(
        {"config", "benchmarks", "errors", "warnings", "notes"});
    std::uint64_t totalErrors = 0;
    std::array<std::uint64_t, check::kNumDiagIds> byId{};
    for (std::size_t p = 0; p < points.size(); ++p) {
        std::uint64_t err = 0, warn = 0, note = 0;
        std::size_t n = 0;
        for (const Cell &c : cells) {
            if (c.point != p)
                continue;
            ++n;
            err += c.diag.errors();
            warn += c.diag.warnings();
            note += c.diag.notes();
            for (int k = 0; k < check::kNumDiagIds; ++k)
                byId[k] +=
                    c.diag.count(static_cast<check::DiagId>(k));
            if (!c.diag.ok())
                std::fprintf(stderr, "%s (%s):\n%s\n",
                             c.bench.c_str(),
                             points[p].label.c_str(),
                             c.diag.str().c_str());
        }
        totalErrors += err;
        rows.push_back(
            {points[p].label, strprintf("%zu", n),
             strprintf("%llu", static_cast<unsigned long long>(err)),
             strprintf("%llu",
                       static_cast<unsigned long long>(warn)),
             strprintf("%llu",
                       static_cast<unsigned long long>(note))});
    }
    std::printf("%s", renderTable(rows).c_str());
    for (int k = 0; k < check::kNumDiagIds; ++k)
        if (byId[k])
            std::printf(
                "  %-20s %llu\n",
                check::diagIdName(static_cast<check::DiagId>(k)),
                static_cast<unsigned long long>(byId[k]));
    std::printf("%llu error(s) across %zu analysis run(s)\n",
                static_cast<unsigned long long>(totalErrors),
                cells.size());
    reportTimings(o, driver);
    if (!writeStatsJson(o, driver))
        return 1;
    return totalErrors ? 2 : 0;
}

/**
 * --bench all: fan the whole suite out across the evaluation driver
 * and print one summary row per benchmark, in suite order.
 */
int
sweepAll(const Options &o)
{
    machine::MachineConfig mc =
        o.proto ? machine::MachineConfig::prototype(o.units)
                : machine::MachineConfig::idealShared(o.units);
    sched::CompactOptions co;
    co.traceMode = o.mode == "trace";
    co.freshAllocDisambiguation = o.disamb;
    suite::WorkloadOptions wo;
    wo.compiler.indexing = o.indexing;
    wo.translate.expandTagBranches = o.expandTags;

    suite::EvalDriver driver(driverOptions(o));

    std::vector<suite::EvalTask> tasks;
    for (const auto &b : suite::aquarius())
        tasks.push_back({b.name, wo, mc, co});
    std::vector<suite::VliwRun> runs;
    if (o.mode != "seq")
        runs = driver.sweep(tasks);
    else
        driver.prefetch([&] {
            std::vector<std::string> names;
            for (const auto &t : tasks)
                names.push_back(t.bench);
            return names;
        }(), wo);

    std::vector<std::vector<std::string>> rows;
    rows.push_back(o.mode == "seq"
                       ? std::vector<std::string>{"benchmark", "ICIs",
                                                  "seq.cycles"}
                       : std::vector<std::string>{
                             "benchmark", "seq.cycles", mc.name,
                             "speedup"});
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const suite::Workload &w =
            driver.workload(tasks[i].bench, wo);
        if (o.mode == "seq")
            rows.push_back(
                {tasks[i].bench,
                 strprintf("%llu", static_cast<unsigned long long>(
                                       w.instructions())),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       w.seqCycles()))});
        else
            rows.push_back(
                {tasks[i].bench,
                 strprintf("%llu",
                           static_cast<unsigned long long>(
                               w.seqCyclesFor(mc))),
                 strprintf("%llu", static_cast<unsigned long long>(
                                       runs[i].cycles)),
                 strprintf("%.2f", runs[i].speedupVsSeq)});
    }
    std::printf("%s", renderTable(rows).c_str());
    driver.reportStats();
    if (!writeStatsJson(o, driver))
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage(o);
    if (o.help) {
        std::fputs(helpText(flagTable(o)).c_str(), stdout);
        return 0;
    }
    if (o.timePasses)
        pass::setTimePasses(true);

    if (!o.verifyDir.empty()) {
        try {
            return cacheVerify(o.verifyDir);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    if (!o.migrateDir.empty()) {
        try {
            suite::ArtifactStore store(o.migrateDir);
            suite::ArtifactStore::MigrateReport rep =
                store.migrateFlat();
            std::printf("%s\n", rep.str().c_str());
            return rep.errors ? 1 : 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    if (o.verifySchedule && o.file.empty() && o.bench.empty()) {
        try {
            return verifySweep(o);
        } catch (const ViolationError &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 2;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    if (o.analyze && o.file.empty() && o.bench.empty()) {
        try {
            return analyzeSweep(o);
        } catch (const ViolationError &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 2;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    if (o.list) {
        for (const auto &b : suite::aquarius())
            std::printf("%s\n", b.name.c_str());
        return 0;
    }

    if (o.bench == "all") {
        try {
            return sweepAll(o);
        } catch (const ViolationError &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 2;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "symbolc: %s\n", e.what());
            return 1;
        }
    }

    try {
        suite::Benchmark bench;
        if (!o.bench.empty()) {
            bench = suite::benchmark(o.bench);
        } else {
            std::ifstream in(o.file);
            if (!in) {
                std::fprintf(stderr, "symbolc: cannot open %s\n",
                             o.file.c_str());
                return 1;
            }
            std::ostringstream ss;
            ss << in.rdbuf();
            bench.name = o.file;
            bench.source = ss.str();
        }

        suite::WorkloadOptions wo;
        wo.compiler.indexing = o.indexing;
        wo.translate.expandTagBranches = o.expandTags;
        // A single-benchmark run still goes through the evaluation
        // driver so the persistent store serves it too.
        suite::DriverOptions dopts = driverOptions(o);
        dopts.jobs = 1;
        suite::EvalDriver driver(dopts);
        const suite::Workload &w = driver.workload(bench, wo);

        if (o.dumpIci)
            std::printf("%s\n", w.ici().str().c_str());
        if (o.dumpBam)
            std::printf("%s\n", bam::print(w.bamModule()).c_str());
        if (o.analyze && w.analysis())
            std::printf("%s", w.analysis()->str().c_str());

        std::printf("answer:\n%s", w.seqOutput().c_str());
        std::printf("\nsequential: %llu ICIs, %llu cycles; BAM "
                    "model: %llu cycles (%.2fx)\n",
                    static_cast<unsigned long long>(
                        w.instructions()),
                    static_cast<unsigned long long>(w.seqCycles()),
                    static_cast<unsigned long long>(w.bamCycles()),
                    static_cast<double>(w.seqCycles()) /
                        static_cast<double>(w.bamCycles()));

        if (o.mode != "seq") {
            machine::MachineConfig mc =
                o.proto ? machine::MachineConfig::prototype(o.units)
                        : machine::MachineConfig::idealShared(
                              o.units);
            sched::CompactOptions co;
            co.traceMode = o.mode == "trace";
            co.freshAllocDisambiguation = o.disamb;
            suite::VliwRun r = w.runVliw(mc, co);
            std::printf(
                "%s (%s): %llu cycles, speedup %.2f, avg region "
                "%.1f ops, peak bank pressure %d\n",
                mc.name.c_str(), o.mode.c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.speedupVsSeq, r.stats.avgDynamicLength,
                r.stats.peakBankPressure);
            if (o.dumpWide) {
                sched::CompactResult cr = sched::compact(
                    w.ici(), w.profile(), mc, co);
                std::printf("%s\n", cr.code.str().c_str());
            }
            if (o.verifySchedule) {
                // runVliw already verified (and would have thrown);
                // re-derive the report here for the summary line.
                sched::CompactResult cr = sched::compact(
                    w.ici(), w.profile(), mc, co);
                verify::Report rep =
                    verify::checkSchedule(cr.code, w.ici(), mc);
                std::printf("%s", rep.str().c_str());
            }
        }

        if (o.stats) {
            analysis::InstructionMix mix =
                analysis::instructionMix(w.ici(), w.profile());
            std::printf("\nmix: memory %.1f%%  alu %.1f%%  move "
                        "%.1f%%  control %.1f%%\n",
                        mix.memory * 100, mix.alu * 100,
                        mix.move * 100, mix.control * 100);
            analysis::BranchStats bs =
                analysis::branchStats(w.ici(), w.profile());
            std::printf("branches: %llu dynamic, P_fp %.4f, "
                        "P_taken %.3f\n",
                        static_cast<unsigned long long>(
                            bs.branchExecutions),
                        bs.avgFaultyPrediction,
                        bs.avgTakenProbability);
        }
        reportTimings(o, driver);
        if (!writeStatsJson(o, driver))
            return 1;
        return 0;
    } catch (const ViolationError &e) {
        std::fprintf(stderr, "symbolc: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "symbolc: %s\n", e.what());
        return 1;
    }
}
