/**
 * @file
 * symbolctl — control and load-generation client for symbold.
 *
 * One-shot verbs: --submit FILE / --run NAME evaluate a program and
 * print the same answer/cycle lines a direct `symbolc` run prints
 * (byte-identical by construction — the server runs the identical
 * pipeline); --stats fetches the server's --stats-json-shape
 * document; --ping probes liveness; --drain asks for a graceful
 * shutdown.
 *
 * Load generator: --bench NxM runs a cold pass (each probe
 * benchmark once, sequentially) and then N concurrent client
 * threads × M requests each over the same benchmarks, and writes
 * p50/p90/p99 latencies plus req/s to --bench-out (default
 * BENCH_symbold.json). Overloaded / deadline-expired responses are
 * counted, not fatal, and excluded from the latency percentiles.
 *
 * Run `symbolctl --help` for the flag reference.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "server/client.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/text.hh"

using namespace symbol;

namespace
{

struct Options
{
    std::string socket;
    std::string submitFile; // --submit FILE
    std::string runBench;   // --run NAME (built-in benchmark)
    int units = 3;
    std::string mode = "trace";
    bool proto = false;
    bool indexing = true;
    bool expandTags = false;
    int deadline = 0; // ms, 0 = none
    bool schedule = false;
    bool stats = false;
    bool ping = false;
    bool drain = false;
    std::string bench;    // --bench NxM
    std::string benchOut = "BENCH_symbold.json";
    bool help = false;
};

/** One command-line flag (the symbolc table idiom). */
struct Flag
{
    const char *name;
    const char *operand;
    const char *help;
    bool *b = nullptr;
    bool bval = true;
    int *i = nullptr;
    long lo = 0, hi = 0;
    std::string *s = nullptr;
};

std::vector<Flag>
flagTable(Options &o)
{
    return {
        {.name = "--socket", .operand = "PATH",
         .help = "symbold Unix-domain socket (required)",
         .s = &o.socket},
        {.name = "--submit", .operand = "FILE",
         .help = "submit a Prolog source file ('-' = stdin) and "
                 "print the answer and cycle accounting",
         .s = &o.submitFile},
        {.name = "--run", .operand = "NAME",
         .help = "evaluate a built-in suite benchmark by name",
         .s = &o.runBench},
        {.name = "--units", .operand = "N",
         .help = "number of VLIW units (default 3)", .i = &o.units,
         .lo = 1, .hi = 64},
        {.name = "--mode", .operand = "M",
         .help = "compaction mode: trace | bb | seq (default trace)",
         .s = &o.mode},
        {.name = "--proto", .operand = nullptr,
         .help = "SYMBOL prototype machine configuration",
         .b = &o.proto},
        {.name = "--no-indexing", .operand = nullptr,
         .help = "disable first-argument indexing",
         .b = &o.indexing, .bval = false},
        {.name = "--expand-tags", .operand = nullptr,
         .help = "expand tag branches (plain-RISC ablation)",
         .b = &o.expandTags},
        {.name = "--deadline", .operand = "MS",
         .help = "per-request deadline in milliseconds, enforced "
                 "cooperatively at pass boundaries (0 = none)",
         .i = &o.deadline, .lo = 0, .hi = 86400000},
        {.name = "--schedule", .operand = nullptr,
         .help = "also print the compacted wide-code listing",
         .b = &o.schedule},
        {.name = "--stats", .operand = nullptr,
         .help = "print the server's stats document (the "
                 "--stats-json shape plus a \"server\" object)",
         .b = &o.stats},
        {.name = "--ping", .operand = nullptr,
         .help = "liveness probe (exit 0 when the server answers)",
         .b = &o.ping},
        {.name = "--drain", .operand = nullptr,
         .help = "ask the server to drain gracefully",
         .b = &o.drain},
        {.name = "--bench", .operand = "NxM",
         .help = "load generator: a sequential cold pass, then N "
                 "concurrent clients x M requests each; writes "
                 "latency percentiles and req/s to --bench-out",
         .s = &o.bench},
        {.name = "--bench-out", .operand = "FILE",
         .help = "load-generator report path (default "
                 "BENCH_symbold.json; '-' = stdout)",
         .s = &o.benchOut},
        {.name = "--help", .operand = nullptr,
         .help = "print this help and exit", .b = &o.help},
    };
}

std::vector<std::string>
splitWords(const std::string &text)
{
    std::vector<std::string> words;
    std::istringstream ss(text);
    std::string w;
    while (ss >> w)
        words.push_back(w);
    return words;
}

std::string
helpText(std::vector<Flag> flags)
{
    std::string out =
        "usage: symbolctl --socket PATH <--submit FILE | --run NAME "
        "| --stats | --ping | --drain | --bench NxM> [options]\n";
    std::size_t width = 0;
    for (const Flag &f : flags)
        width = std::max(width,
                         std::strlen(f.name) +
                             (f.operand
                                  ? 1 + std::strlen(f.operand)
                                  : 0));
    for (const Flag &f : flags) {
        std::string head = "  " + std::string(f.name);
        if (f.operand)
            head += std::string(" ") + f.operand;
        head.resize(std::max(head.size(), width + 4), ' ');
        std::string line = head;
        for (const std::string &word : splitWords(f.help)) {
            if (line.size() + 1 + word.size() > 78) {
                out += line + "\n";
                line = std::string(width + 4, ' ');
                line += word;
            } else {
                line += (line.back() == ' ' ? "" : " ") + word;
            }
        }
        out += line + "\n";
    }
    out += "\nexit codes:\n"
           "  0  success\n"
           "  1  usage error, transport failure, or I/O error\n"
           "  2  server-side rejection (overloaded, "
           "deadline-expired, draining, bad request)\n";
    return out;
}

int
usage(Options &o)
{
    std::fputs(helpText(flagTable(o)).c_str(), stderr);
    return 1;
}

bool
intOperand(const char *name, const std::string &s, long lo, long hi,
           int &out)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "symbolctl: %s: invalid operand '%s' (expected "
                     "an integer in [%ld, %ld])\n",
                     name, s.c_str(), lo, hi);
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    std::vector<Flag> flags = flagTable(o);
    for (int k = 1; k < argc; ++k) {
        std::string a = argv[k];
        std::string inlineVal;
        bool hasInline = false;
        if (a.rfind("--", 0) == 0) {
            std::size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.resize(eq);
                hasInline = true;
            }
        }
        const Flag *f = nullptr;
        for (const Flag &g : flags)
            if (a == g.name) {
                f = &g;
                break;
            }
        if (!f) {
            std::fprintf(stderr, "symbolctl: unknown option '%s'\n",
                         a.c_str());
            return false;
        }
        if (f->b) {
            if (hasInline) {
                std::fprintf(stderr,
                             "symbolctl: %s takes no operand\n",
                             f->name);
                return false;
            }
            *f->b = f->bval;
            continue;
        }
        std::string operand;
        if (hasInline) {
            operand = inlineVal;
        } else if (k + 1 < argc) {
            operand = argv[++k];
        } else {
            std::fprintf(stderr,
                         "symbolctl: %s requires a%s operand\n",
                         f->name, f->i ? " numeric" : "n");
            return false;
        }
        if (f->i) {
            if (!intOperand(f->name, operand, f->lo, f->hi, *f->i))
                return false;
        } else {
            *f->s = operand;
        }
    }
    if (o.help)
        return true;
    if (o.socket.empty()) {
        std::fprintf(stderr,
                     "symbolctl: --socket PATH is required\n");
        return false;
    }
    int verbs = !o.submitFile.empty() + !o.runBench.empty() +
                o.stats + o.ping + o.drain + !o.bench.empty();
    if (verbs != 1) {
        std::fprintf(stderr,
                     "symbolctl: exactly one of --submit, --run, "
                     "--stats, --ping, --drain, --bench\n");
        return false;
    }
    if (o.mode != "trace" && o.mode != "bb" && o.mode != "seq") {
        std::fprintf(stderr,
                     "symbolctl: --mode: expected trace|bb|seq\n");
        return false;
    }
    return true;
}

server::CompileRequest
baseRequest(const Options &o)
{
    server::CompileRequest req;
    req.indexing = o.indexing;
    req.expandTags = o.expandTags;
    req.protoMachine = o.proto;
    req.units = static_cast<std::uint32_t>(o.units);
    req.mode = o.mode;
    req.deadlineMillis = static_cast<std::uint64_t>(o.deadline);
    req.wantSchedule = o.schedule;
    return req;
}

const char *
originName(server::Origin origin)
{
    switch (origin) {
    case server::Origin::Built:
        return "built";
    case server::Origin::Disk:
        return "disk";
    case server::Origin::Memory:
        return "memory";
    }
    return "unknown";
}

/** Print one compile response the way symbolc prints a single run. */
void
printResponse(const Options &o, const server::CompileResponse &r)
{
    if (!r.schedule.empty())
        std::printf("%s\n", r.schedule.c_str());
    std::printf("answer: %s\n", r.answer.c_str());
    std::printf("instructions: %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("seq cycles: %llu\n",
                static_cast<unsigned long long>(r.seqCycles));
    if (o.mode != "seq")
        std::printf("vliw cycles: %llu (speedup %.2f)\n",
                    static_cast<unsigned long long>(r.vliwCycles),
                    r.speedup);
    std::printf("origin: %s\n", originName(r.origin));
}

int
submit(const Options &o)
{
    server::CompileRequest req = baseRequest(o);
    if (!o.runBench.empty()) {
        req.name = o.runBench;
    } else if (o.submitFile == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        req.source = ss.str();
        req.name = "stdin";
    } else {
        std::ifstream in(o.submitFile, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "symbolctl: cannot read %s\n",
                         o.submitFile.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        req.source = ss.str();
        req.name = o.submitFile;
    }
    server::Client client(o.socket);
    printResponse(o, client.compile(req));
    return 0;
}

/** The load-generator probe set: small suite benchmarks covering
 *  distinct programs, so warm passes hit distinct store shards. */
const std::vector<std::string> &
probeBenches()
{
    static const std::vector<std::string> probes = {
        "nreverse", "qsort", "serialise", "mu"};
    return probes;
}

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Latency samples + rejection counts of one load phase. */
struct PhaseResult
{
    std::vector<double> latenciesMs;
    std::uint64_t completed = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t deadlineExpired = 0;
    std::uint64_t otherRejected = 0;
    double wallSeconds = 0.0;
};

json::Value
phaseJson(const PhaseResult &r)
{
    json::Object o;
    o["samples"] = static_cast<std::uint64_t>(r.latenciesMs.size());
    o["completed"] = r.completed;
    o["overloaded"] = r.overloaded;
    o["deadlineExpired"] = r.deadlineExpired;
    o["otherRejected"] = r.otherRejected;
    o["wallSeconds"] = r.wallSeconds;
    if (!r.latenciesMs.empty()) {
        o["p50Ms"] = bench::percentile(r.latenciesMs, 50.0);
        o["p90Ms"] = bench::percentile(r.latenciesMs, 90.0);
        o["p99Ms"] = bench::percentile(r.latenciesMs, 99.0);
        bench::ReqPerSec rps{r.completed, r.wallSeconds};
        o["reqPerSec"] = rps.rate();
    }
    return json::Value(std::move(o));
}

int
loadGenerate(const Options &o)
{
    unsigned clients = 0, perClient = 0;
    if (std::sscanf(o.bench.c_str(), "%ux%u", &clients,
                    &perClient) != 2 ||
        clients < 1 || clients > 512 || perClient < 1 ||
        perClient > 100000) {
        std::fprintf(stderr,
                     "symbolctl: --bench: expected NxM (e.g. 8x16), "
                     "N in [1,512], M in [1,100000]\n");
        return 1;
    }
    const std::vector<std::string> &probes = probeBenches();

    // Cold pass: one sequential client, each probe once. With an
    // empty store these requests run the full pipeline; against a
    // pre-warmed store they measure disk-hit latency instead — the
    // report is honest either way because the server returns the
    // origin per response.
    PhaseResult cold;
    {
        server::Client client(o.socket);
        Clock::time_point t0 = Clock::now();
        for (const std::string &name : probes) {
            server::CompileRequest req = baseRequest(o);
            req.name = name;
            Clock::time_point r0 = Clock::now();
            try {
                client.compile(req);
                cold.latenciesMs.push_back(millisSince(r0));
                ++cold.completed;
            } catch (const server::ServerError &e) {
                if (e.code() == server::ErrCode::Overloaded)
                    ++cold.overloaded;
                else if (e.code() ==
                         server::ErrCode::DeadlineExpired)
                    ++cold.deadlineExpired;
                else
                    ++cold.otherRejected;
            }
        }
        cold.wallSeconds = millisSince(t0) / 1000.0;
    }

    // Warm pass: N concurrent connections, M requests each,
    // round-robin over the probe set — every request should be a
    // memory (or at worst disk) hit now.
    PhaseResult warm;
    std::mutex mu;
    std::vector<std::thread> threads;
    Clock::time_point w0 = Clock::now();
    for (unsigned c = 0; c < clients; ++c)
        threads.emplace_back([&, c] {
            try {
                server::Client client(o.socket);
                for (unsigned k = 0; k < perClient; ++k) {
                    server::CompileRequest req = baseRequest(o);
                    req.name =
                        probes[(c + k) % probes.size()];
                    Clock::time_point r0 = Clock::now();
                    try {
                        client.compile(req);
                        double ms = millisSince(r0);
                        std::lock_guard<std::mutex> lock(mu);
                        warm.latenciesMs.push_back(ms);
                        ++warm.completed;
                    } catch (const server::ServerError &e) {
                        std::lock_guard<std::mutex> lock(mu);
                        if (e.code() ==
                            server::ErrCode::Overloaded)
                            ++warm.overloaded;
                        else if (e.code() ==
                                 server::ErrCode::DeadlineExpired)
                            ++warm.deadlineExpired;
                        else
                            ++warm.otherRejected;
                    }
                }
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                ++warm.otherRejected;
                std::fprintf(stderr, "symbolctl: client %u: %s\n",
                             c, e.what());
            }
        });
    for (std::thread &t : threads)
        t.join();
    warm.wallSeconds = millisSince(w0) / 1000.0;

    json::Object doc;
    json::Object cfg;
    cfg["clients"] = std::uint64_t{clients};
    cfg["perClient"] = std::uint64_t{perClient};
    json::Array parr;
    for (const std::string &name : probes)
        parr.push_back(json::Value(name));
    cfg["benchmarks"] = json::Value(std::move(parr));
    cfg["units"] = static_cast<std::uint64_t>(o.units);
    cfg["mode"] = o.mode;
    cfg["deadlineMillis"] = static_cast<std::uint64_t>(o.deadline);
    doc["config"] = json::Value(std::move(cfg));
    doc["cold"] = phaseJson(cold);
    doc["warm"] = phaseJson(warm);
    std::string text =
        json::Value(std::move(doc)).dump() + "\n";

    if (o.benchOut == "-") {
        std::fputs(text.c_str(), stdout);
    } else {
        std::ofstream out(o.benchOut,
                          std::ios::binary | std::ios::trunc);
        out << text;
        if (!out) {
            std::fprintf(stderr, "symbolctl: cannot write %s\n",
                         o.benchOut.c_str());
            return 1;
        }
        std::fprintf(stderr, "[symbolctl] wrote %s\n",
                     o.benchOut.c_str());
    }
    // A bench run that completed nothing is a failure: either the
    // server rejected everything or the probes all errored.
    return warm.completed > 0 ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage(o);
    if (o.help) {
        std::fputs(helpText(flagTable(o)).c_str(), stdout);
        return 0;
    }
    try {
        if (!o.bench.empty())
            return loadGenerate(o);
        if (!o.submitFile.empty() || !o.runBench.empty())
            return submit(o);
        server::Client client(o.socket);
        if (o.stats) {
            std::fputs(client.statsJson().c_str(), stdout);
        } else if (o.ping) {
            client.ping();
            std::printf("pong\n");
        } else if (o.drain) {
            std::uint64_t inFlight = client.drain();
            std::printf(
                "draining (%llu in flight)\n",
                static_cast<unsigned long long>(inFlight));
        }
        return 0;
    } catch (const server::ServerError &e) {
        std::fprintf(stderr, "symbolctl: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "symbolctl: %s\n", e.what());
        return 1;
    }
}
