/**
 * @file
 * symbolfuzz — grammar-level Prolog fuzzer with a differential
 * oracle (DESIGN.md §12).
 *
 * Default mode runs a campaign: a window of seeds is expanded into
 * random (but guaranteed-terminating) Prolog programs, each judged by
 * running it through every front-end configuration on both the
 * sequential emulator and the VLIW simulator. Failures are written as
 * self-contained replayable .pl artifacts; --shrink additionally
 * delta-debugs each failure to a minimal reproducer.
 *
 * The whole tool is deterministic: the same --seed/--count always
 * produces the same programs and verdicts, for any --jobs value, and
 * --time-budget only truncates the seed window (it never changes the
 * verdict of a case that ran).
 *
 * Run `symbolfuzz --help` for the flag reference; like symbolc, the
 * help text is generated from the same flag table the parser walks.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "fuzz/campaign.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

using namespace symbol;

namespace
{

struct Options
{
    std::string seedStr; // parsed separately (full uint64 range)
    int count = 100;
    int jobs = 0;       // 0 = ThreadPool default
    int timeBudget = 0; // seconds; 0 = none
    std::string replayFile;
    std::string outDir = ".";
    bool shrink = false;
    bool dump = false;
    bool help = false;
};

/** One command-line flag (same single-source-of-truth scheme as
 *  symbolc: parser and --help are generated from this table). */
struct Flag
{
    const char *name;    ///< "--seed"
    const char *operand; ///< operand placeholder, nullptr for bools
    const char *help;    ///< one-line description
    bool *b = nullptr;   ///< bool target, set to true when present
    int *i = nullptr;    ///< int target, operand in [lo, hi]
    long lo = 0, hi = 0;
    std::string *s = nullptr; ///< string target
};

std::vector<Flag>
flagTable(Options &o)
{
    return {
        {.name = "--seed", .operand = "N",
         .help = "campaign seed (default 1); every case's own seed "
                 "is derived from it and printed on failure, so a "
                 "single failing case replays from its case seed "
                 "alone",
         .s = &o.seedStr},
        {.name = "--count", .operand = "N",
         .help = "number of cases to run (default 100)",
         .i = &o.count, .lo = 1, .hi = 10'000'000},
        {.name = "--jobs", .operand = "N",
         .help = "worker threads (default: SYMBOL_JOBS env, else "
                 "hardware concurrency); never affects results",
         .i = &o.jobs, .lo = 1, .hi = 1024},
        {.name = "--time-budget", .operand = "SEC",
         .help = "stop launching new cases after SEC seconds; only "
                 "truncates the seed window, never changes a "
                 "verdict (default: none)",
         .i = &o.timeBudget, .lo = 1, .hi = 86'400},
        {.name = "--replay", .operand = "FILE",
         .help = "replay one .pl artifact through the oracle "
                 "instead of running a campaign; with --shrink a "
                 "failing replay is also minimised",
         .s = &o.replayFile},
        {.name = "--shrink", .operand = nullptr,
         .help = "delta-debug every failure to a minimal program "
                 "with the same verdict class (writes a .shrunk.pl "
                 "next to the full artifact)",
         .b = &o.shrink},
        {.name = "--dump", .operand = nullptr,
         .help = "print every generated program and its verdict to "
                 "stdout instead of writing artifacts (used by the "
                 "golden determinism test)",
         .b = &o.dump},
        {.name = "--out-dir", .operand = "DIR",
         .help = "directory for failure artifacts "
                 "fuzz-seed-<S>.pl / fuzz-seed-<S>.shrunk.pl "
                 "(default: current directory)",
         .s = &o.outDir},
        {.name = "--help", .operand = nullptr,
         .help = "print this help and exit", .b = &o.help},
    };
}

std::vector<std::string>
splitWords(const std::string &text)
{
    std::vector<std::string> words;
    std::istringstream ss(text);
    std::string w;
    while (ss >> w)
        words.push_back(w);
    return words;
}

/** Render one help line per table entry, wrapped at 78 columns. */
std::string
helpText(std::vector<Flag> flags)
{
    std::string out =
        "usage: symbolfuzz [options]\n"
        "       symbolfuzz --replay FILE [--shrink]\n";
    std::size_t width = 0;
    for (const Flag &f : flags) {
        std::size_t w =
            std::strlen(f.name) +
            (f.operand ? 1 + std::strlen(f.operand) : 0);
        width = std::max(width, w);
    }
    for (const Flag &f : flags) {
        std::string head = "  " + std::string(f.name);
        if (f.operand)
            head += std::string(" ") + f.operand;
        head.resize(std::max(head.size(), width + 4), ' ');
        std::string line = head;
        for (const std::string &word : splitWords(f.help)) {
            if (line.size() + 1 + word.size() > 78) {
                out += line + "\n";
                line = std::string(width + 4, ' ');
                line += word;
            } else {
                line += (line.back() == ' ' ? "" : " ") + word;
            }
        }
        out += line + "\n";
    }
    out += "\nexit codes:\n"
           "  0  every case passed the differential oracle\n"
           "  1  at least one case failed (artifacts written)\n"
           "  2  usage error, unreadable input, or an internal "
           "failure\n";
    return out;
}

int
usage(Options &o)
{
    std::fputs(helpText(flagTable(o)).c_str(), stderr);
    return 2;
}

bool
intOperand(const char *name, const std::string &s, long lo, long hi,
           int &out)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        std::fprintf(stderr,
                     "symbolfuzz: %s: invalid operand '%s' "
                     "(expected an integer in [%ld, %ld])\n",
                     name, s.c_str(), lo, hi);
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
parseArgs(int argc, char **argv, Options &o)
{
    std::vector<Flag> flags = flagTable(o);
    for (int k = 1; k < argc; ++k) {
        std::string a = argv[k];
        // --name=VALUE is equivalent to --name VALUE.
        std::string inlineVal;
        bool hasInline = false;
        if (a.rfind("--", 0) == 0) {
            std::size_t eq = a.find('=');
            if (eq != std::string::npos) {
                inlineVal = a.substr(eq + 1);
                a.resize(eq);
                hasInline = true;
            }
        }
        const Flag *f = nullptr;
        for (const Flag &g : flags)
            if (a == g.name) {
                f = &g;
                break;
            }
        if (!f) {
            std::fprintf(stderr,
                         "symbolfuzz: unknown option '%s'\n",
                         a.c_str());
            return false;
        }
        if (f->b) {
            if (hasInline) {
                std::fprintf(stderr,
                             "symbolfuzz: %s takes no operand\n",
                             f->name);
                return false;
            }
            *f->b = true;
            continue;
        }
        std::string operand;
        if (hasInline) {
            operand = inlineVal;
        } else if (k + 1 < argc) {
            operand = argv[++k];
        } else {
            std::fprintf(stderr,
                         "symbolfuzz: %s requires a%s operand\n",
                         f->name, f->i ? " numeric" : "n");
            return false;
        }
        if (f->i) {
            if (!intOperand(f->name, operand, f->lo, f->hi, *f->i))
                return false;
        } else {
            *f->s = operand;
        }
    }
    return true;
}

/** Parse --seed's operand over the full uint64 range (the case-seed
 *  mixer hands out arbitrary 64-bit values, so replaying one as a
 *  campaign seed must round-trip). */
bool
seedOperand(const std::string &s, std::uint64_t &out)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (s.empty() || s[0] == '-' || end == s.c_str() ||
        *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr,
                     "symbolfuzz: --seed: invalid operand '%s' "
                     "(expected an unsigned 64-bit integer)\n",
                     s.c_str());
        return false;
    }
    out = v;
    return true;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    out.close();
    if (!out) {
        std::fprintf(stderr, "symbolfuzz: cannot write %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

std::string
artifactPath(const std::string &dir, std::uint64_t seed,
             const char *ext)
{
    return strprintf("%s/fuzz-seed-%llu%s", dir.c_str(),
                     static_cast<unsigned long long>(seed), ext);
}

/** --replay: judge one artifact file, optionally shrinking it. */
int
replay(const Options &o, std::uint64_t seed)
{
    std::ifstream in(o.replayFile, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "symbolfuzz: cannot read %s\n",
                     o.replayFile.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string source = buf.str();

    fuzz::OracleOptions oopts;
    fuzz::Verdict v = fuzz::runOracle(source, oopts);
    std::uint64_t artifactSeed = fuzz::seedFromSource(source);
    if (artifactSeed == 0)
        artifactSeed = seed;
    std::printf("%s: %s\n", o.replayFile.c_str(), v.str().c_str());
    if (v.pass())
        return 0;

    if (o.shrink) {
        fuzz::FProgram prog = fuzz::importProgram(source);
        fuzz::ShrinkResult sr = fuzz::shrink(prog, oopts);
        std::string path =
            artifactPath(o.outDir, artifactSeed, ".shrunk.pl");
        if (!writeFile(path, fuzz::renderProgram(sr.program)))
            return 2;
        std::printf("shrunk to %zu clauses (%d probes%s): %s\n",
                    sr.program.clauses.size(), sr.probes,
                    sr.minimal ? ", 1-minimal" : "", path.c_str());
    }
    return 1;
}

/** --dump: print every generated program and its verdict (the
 *  golden determinism test pins this byte-for-byte). */
int
dump(const Options &o, std::uint64_t seed)
{
    fuzz::OracleOptions oopts;
    for (int i = 0; i < o.count; ++i) {
        std::uint64_t cs = fuzz::caseSeed(seed, i);
        fuzz::FProgram prog = fuzz::generate(cs);
        std::string source = fuzz::renderProgram(prog);
        fuzz::Verdict v = fuzz::runOracle(source, oopts);
        std::printf("%% case %d\n%s%% verdict: %s\n\n", i,
                    source.c_str(), v.str().c_str());
    }
    return 0;
}

int
campaign(const Options &o, std::uint64_t seed)
{
    fuzz::CampaignOptions copts;
    copts.seed = seed;
    copts.count = o.count;
    copts.jobs = o.jobs > 0 ? static_cast<unsigned>(o.jobs) : 0;
    copts.timeBudgetSec = o.timeBudget;
    copts.shrinkFailures = o.shrink;

    fuzz::CampaignResult res =
        fuzz::runCampaign(copts, [](const std::string &line) {
            std::fprintf(stderr, "symbolfuzz: %s\n", line.c_str());
        });

    bool writeOk = true;
    for (const fuzz::Failure &f : res.failures) {
        std::string path =
            artifactPath(o.outDir, f.caseSeed, ".pl");
        writeOk &= writeFile(path, f.source);
        std::printf("FAIL seed %llu (%s) -> %s\n",
                    static_cast<unsigned long long>(f.caseSeed),
                    f.verdict.str().c_str(), path.c_str());
        if (!f.shrunkSource.empty()) {
            std::string spath =
                artifactPath(o.outDir, f.caseSeed, ".shrunk.pl");
            writeOk &= writeFile(spath, f.shrunkSource);
            std::printf("     shrunk to %zu clauses -> %s\n",
                        f.shrunkClauses, spath.c_str());
        }
    }
    std::printf("symbolfuzz: %d cases, %d passed, %zu failed "
                "(seed %llu)\n",
                res.executed, res.passed, res.failures.size(),
                static_cast<unsigned long long>(seed));
    if (!writeOk)
        return 2;
    return res.failures.empty() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return usage(o);
    if (o.help) {
        std::fputs(helpText(flagTable(o)).c_str(), stdout);
        return 0;
    }
    std::uint64_t seed = 1;
    if (!o.seedStr.empty() && !seedOperand(o.seedStr, seed))
        return 2;
    if (!o.replayFile.empty() && o.dump) {
        std::fprintf(stderr,
                     "symbolfuzz: --replay and --dump are "
                     "mutually exclusive\n");
        return 2;
    }

    try {
        if (!o.replayFile.empty())
            return replay(o, seed);
        if (o.dump)
            return dump(o, seed);
        return campaign(o, seed);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "symbolfuzz: internal error: %s\n",
                     e.what());
        return 2;
    }
}
