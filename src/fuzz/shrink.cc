#include "fuzz/shrink.hh"

#include "support/diagnostics.hh"

namespace symbol::fuzz
{

namespace
{

/** Path to a subterm: arg indices from a goal's root. */
using Path = std::vector<int>;

FTerm *
atPath(FTerm &root, const Path &path)
{
    FTerm *t = &root;
    for (int i : path)
        t = &t->args[static_cast<std::size_t>(i)];
    return t;
}

/** Collect the paths of all proper subterm positions (pre-order). */
void
collectPaths(const FTerm &t, Path &cur, std::vector<Path> &out)
{
    for (std::size_t i = 0; i < t.args.size(); ++i) {
        cur.push_back(static_cast<int>(i));
        out.push_back(cur);
        collectPaths(t.args[i], cur, out);
        cur.pop_back();
    }
}

struct Shrinker
{
    const OracleOptions &oopts;
    const ShrinkOptions &sopts;
    VerdictClass target;
    /** CompileReject only: the reject reason must be preserved too,
     *  or the shrinker would collapse everything to the empty
     *  program (which trivially rejects — no main/0). */
    std::string targetDetail;
    Verdict lastGood;
    int probes = 0;

    bool budgetLeft() const { return probes < sopts.maxProbes; }

    /** Oracle probe: does @p cand still fail with the target class? */
    bool
    reproduces(const FProgram &cand)
    {
        if (!budgetLeft())
            return false;
        ++probes;
        Verdict v = runOracle(renderProgram(cand), oopts);
        if (v.cls != target)
            return false;
        if (target == VerdictClass::CompileReject &&
            v.detail != targetDetail)
            return false;
        lastGood = std::move(v);
        return true;
    }

    /** Try removing clauses [start, start+len); accept on repro. */
    bool
    tryRemoveClauses(FProgram &p, std::size_t start, std::size_t len)
    {
        FProgram cand;
        cand.seed = p.seed;
        for (std::size_t i = 0; i < p.clauses.size(); ++i)
            if (i < start || i >= start + len)
                cand.clauses.push_back(p.clauses[i]);
        if (!reproduces(cand))
            return false;
        p = std::move(cand);
        return true;
    }

    /** Try removing goals [start, start+len) of clause @p ci. */
    bool
    tryRemoveGoals(FProgram &p, std::size_t ci, std::size_t start,
                   std::size_t len)
    {
        FProgram cand = p;
        auto &goals = cand.clauses[ci].goals;
        goals.erase(goals.begin() + static_cast<std::ptrdiff_t>(start),
                    goals.begin() +
                        static_cast<std::ptrdiff_t>(start + len));
        if (!reproduces(cand))
            return false;
        p = std::move(cand);
        return true;
    }

    /**
     * One ddmin sweep over whole clauses: windows of halving size,
     * restarting from the largest window after every acceptance.
     * Returns true if anything was removed.
     */
    bool
    ddminClauses(FProgram &p)
    {
        bool any = false;
        bool changed = true;
        while (changed && budgetLeft()) {
            changed = false;
            for (std::size_t len = p.clauses.size() / 2; len >= 1;
                 len /= 2) {
                for (std::size_t start = 0;
                     start + len <= p.clauses.size();
                     /* advance below */) {
                    if (tryRemoveClauses(p, start, len)) {
                        any = changed = true;
                        // Window removed; same start now names the
                        // next candidates.
                    } else {
                        start += len;
                    }
                    if (!budgetLeft())
                        return any;
                }
                if (len == 1)
                    break;
            }
        }
        return any;
    }

    /** ddmin sweep over the goals of every clause. */
    bool
    ddminGoals(FProgram &p)
    {
        bool any = false;
        for (std::size_t ci = 0; ci < p.clauses.size(); ++ci) {
            bool changed = true;
            while (changed && budgetLeft()) {
                changed = false;
                std::size_t n = p.clauses[ci].goals.size();
                for (std::size_t len = n == 0 ? 0 : (n + 1) / 2;
                     len >= 1; len /= 2) {
                    for (std::size_t start = 0;
                         start + len <= p.clauses[ci].goals.size();) {
                        if (tryRemoveGoals(p, ci, start, len)) {
                            any = changed = true;
                        } else {
                            start += len;
                        }
                        if (!budgetLeft())
                            return any;
                    }
                    if (len == 1)
                        break;
                }
            }
        }
        return any;
    }

    /** Candidate simpler replacements for one subterm. */
    std::vector<FTerm>
    replacements(const FTerm &t)
    {
        std::vector<FTerm> out;
        switch (t.kind) {
          case FKind::Int:
            if (t.num != 0)
                out.push_back(FTerm::mkInt(0));
            break;
          case FKind::Atom:
          case FKind::Var:
            break;
          case FKind::List:
            if (!t.args.empty())
                out.push_back(FTerm::mkList({}));
            break;
          case FKind::Struct:
            out.push_back(FTerm::mkInt(0));
            // Promote each argument over the whole structure.
            for (const FTerm &a : t.args)
                out.push_back(a);
            break;
        }
        return out;
    }

    /** Greedy term-level simplification of body goals, to fixpoint. */
    bool
    simplifyTerms(FProgram &p)
    {
        bool any = false;
        bool changed = true;
        while (changed && budgetLeft()) {
            changed = false;
            for (std::size_t ci = 0;
                 ci < p.clauses.size() && !changed; ++ci) {
                auto &goals = p.clauses[ci].goals;
                for (std::size_t gi = 0;
                     gi < goals.size() && !changed; ++gi) {
                    std::vector<Path> paths;
                    Path cur;
                    collectPaths(goals[gi], cur, paths);
                    for (const Path &path : paths) {
                        const FTerm &sub =
                            *atPath(goals[gi], path);
                        for (FTerm &r : replacements(sub)) {
                            FProgram cand = p;
                            *atPath(cand.clauses[ci].goals[gi],
                                    path) = r;
                            if (reproduces(cand)) {
                                p = std::move(cand);
                                any = changed = true;
                                break;
                            }
                            if (!budgetLeft())
                                return any;
                        }
                        if (changed)
                            break;
                    }
                }
            }
        }
        return any;
    }

    /**
     * Prove 1-minimality at clause/goal granularity: no single
     * clause and no single goal can be removed while keeping the
     * verdict class. Returns false when the budget ran out first.
     */
    bool
    proveMinimal(FProgram &p)
    {
        for (std::size_t i = 0; i < p.clauses.size(); ++i) {
            if (!budgetLeft())
                return false;
            // On success p is updated in place — the removal is
            // kept, and the program was evidently not yet minimal.
            if (tryRemoveClauses(p, i, 1))
                return false;
        }
        for (std::size_t ci = 0; ci < p.clauses.size(); ++ci)
            for (std::size_t gi = 0;
                 gi < p.clauses[ci].goals.size(); ++gi) {
                if (!budgetLeft())
                    return false;
                if (tryRemoveGoals(p, ci, gi, 1))
                    return false;
            }
        return true;
    }
};

} // namespace

ShrinkResult
shrink(const FProgram &prog, const OracleOptions &oopts,
       const ShrinkOptions &sopts)
{
    Shrinker s{oopts, sopts, VerdictClass::Pass, {}, {}, 0};
    Verdict first = runOracle(renderProgram(prog), oopts);
    if (first.pass())
        throw RuntimeError(
            "shrink: program does not fail the oracle");
    s.target = first.cls;
    s.targetDetail = first.detail;
    s.lastGood = first;

    ShrinkResult res;
    res.program = prog;
    bool changed = true;
    while (changed && s.budgetLeft()) {
        changed = false;
        changed |= s.ddminClauses(res.program);
        changed |= s.ddminGoals(res.program);
        changed |= s.simplifyTerms(res.program);
    }
    // The fixpoint loop already failed to remove any single clause
    // or goal, but re-prove it explicitly so the flag is a direct
    // witness rather than an artefact of loop ordering. A sweep that
    // does find a removal keeps it and is simply run again.
    while (s.budgetLeft()) {
        if (s.proveMinimal(res.program)) {
            res.minimal = true;
            break;
        }
    }
    res.verdict = s.lastGood;
    res.probes = s.probes;
    return res;
}

} // namespace symbol::fuzz
