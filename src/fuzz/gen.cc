#include "fuzz/gen.hh"

#include "fuzz/rng.hh"
#include "support/text.hh"

namespace symbol::fuzz
{

namespace
{

FTerm
I(std::int64_t v)
{
    return FTerm::mkInt(v);
}

FTerm
A(const char *name)
{
    return FTerm::mkAtom(name);
}

FTerm
V(const std::string &name)
{
    return FTerm::mkVar(name);
}

FTerm
S(const char *f, std::vector<FTerm> args)
{
    return FTerm::mkStruct(f, std::move(args));
}

/** goal `L is R`. */
FTerm
is(FTerm l, FTerm r)
{
    return S("is", {std::move(l), std::move(r)});
}

FTerm
bin(const char *op, FTerm l, FTerm r)
{
    return S(op, {std::move(l), std::move(r)});
}

FTerm
out(FTerm t)
{
    return S("out", {std::move(t)});
}

/** `(Cond -> Then ; Else)` as one goal term. */
FTerm
ite(FTerm c, FTerm t, FTerm e)
{
    return bin(";", bin("->", std::move(c), std::move(t)),
               std::move(e));
}

/** What one generated predicate looks like to its callers. */
struct PredInfo
{
    enum Kind { Data, Arith, Counter, Builder, Walker } kind;
    std::string name;
    /** Data preds: a first-argument key that is present... */
    FTerm hitKey;
    /** ...and one that is guaranteed absent. */
    FTerm missKey;
};

/** The generator state: one Rng, the options, the predicates built
 *  so far (a predicate may only call earlier entries — the
 *  termination ordering), and the output program. */
struct Gen
{
    Rng rng;
    const GenOptions &opt;
    FProgram prog;
    std::vector<PredInfo> data;
    std::vector<PredInfo> arith;
    std::vector<PredInfo> counters;
    std::vector<PredInfo> builders;
    std::vector<PredInfo> walkers;

    Gen(std::uint64_t seed, const GenOptions &o) : rng(seed), opt(o)
    {
        prog.seed = seed;
    }

    // --- small term / expression grammars ---------------------------

    /** Atoms used in fact arguments. "zz" is reserved as the
     *  guaranteed-absent key, never generated here. */
    FTerm
    smallAtom()
    {
        static const char *const pool[] = {"a", "b", "c", "k", "t"};
        return A(pool[rng.below(5)]);
    }

    /** Ground data term of bounded depth. */
    FTerm
    groundTerm(int depth)
    {
        std::uint64_t pick = rng.below(depth > 0 ? 5 : 2);
        switch (pick) {
          case 0:
            return I(rng.range(-9, 9));
          case 1:
            return smallAtom();
          case 2: {
            std::vector<FTerm> args;
            int n = 1 + static_cast<int>(rng.below(2));
            for (int i = 0; i < n; ++i)
                args.push_back(groundTerm(depth - 1));
            return S("s", std::move(args));
          }
          case 3:
            return S("g", {groundTerm(depth - 1)});
          default: {
            std::vector<FTerm> elems;
            int n = static_cast<int>(rng.below(4));
            for (int i = 0; i < n; ++i)
                elems.push_back(groundTerm(depth - 1));
            return FTerm::mkList(std::move(elems));
          }
        }
    }

    /**
     * Arithmetic expression over the variables in @p vars. Bounded
     * magnitude by construction: multiplication takes a literal
     * factor in [2,3], division and modulo a literal divisor in
     * [2,7] — never zero, never a variable.
     */
    FTerm
    expr(const std::vector<FTerm> &vars, int depth)
    {
        if (depth <= 0 || rng.chance(1, 3)) {
            if (!vars.empty() && rng.chance(2, 3))
                return vars[rng.below(vars.size())];
            return I(rng.range(1, 5));
        }
        switch (rng.below(5)) {
          case 0:
            return bin("+", expr(vars, depth - 1),
                       expr(vars, depth - 1));
          case 1:
            return bin("-", expr(vars, depth - 1),
                       expr(vars, depth - 1));
          case 2:
            return bin("*", expr(vars, depth - 1),
                       I(rng.range(2, 3)));
          case 3:
            return bin("//", expr(vars, depth - 1),
                       I(rng.range(2, 7)));
          default:
            return bin("mod", expr(vars, depth - 1),
                       I(rng.range(2, 7)));
        }
    }

    // --- predicate layers -------------------------------------------

    /**
     * Data predicate d<i>/2: facts with indexing-hostile first
     * arguments — a repeated collider constant, mixed tags, and
     * sometimes a variable head argument (which defeats first-level
     * indexing entirely).
     */
    void
    dataPred(int idx)
    {
        PredInfo info;
        info.kind = PredInfo::Data;
        info.name = strprintf("d%d", idx);
        FTerm collider =
            rng.chance(1, 2) ? I(rng.range(0, 4)) : smallAtom();
        info.hitKey = collider;
        info.missKey = rng.chance(1, 2) ? A("zz") : I(77);
        int facts = 2 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(
                                opt.maxFactsPerPred - 1)));
        int val = 0;
        for (int i = 0; i < facts; ++i) {
            FTerm key;
            switch (rng.below(6)) {
              case 0:
              case 1:
                key = collider; // repeat: many clauses per hash slot
                break;
              case 2:
                key = I(rng.range(-3, 6));
                break;
              case 3:
                key = S("s", {groundTerm(opt.maxTermDepth - 1)});
                break;
              case 4:
                key = groundTerm(1).kind == FKind::List
                          ? groundTerm(1)
                          : FTerm::mkList({I(rng.range(0, 3))});
                break;
              default:
                key = V(strprintf("Any%d", i)); // var head argument
                break;
            }
            FClause c;
            c.head = S("dummy", {});
            c.head.name = info.name;
            c.head.args = {std::move(key), I(val + rng.range(0, 2))};
            val += 3;
            prog.clauses.push_back(std::move(c));
        }
        data.push_back(std::move(info));
    }

    /** Arithmetic predicate f<i>(X, Y): Y is a function of X, via
     *  one unconditional clause or a guarded pair (with or without
     *  cut — both orders of committed choice). */
    void
    arithPred(int idx)
    {
        PredInfo info;
        info.kind = PredInfo::Arith;
        info.name = strprintf("f%d", idx);
        std::vector<FTerm> xs = {V("X")};
        auto head = [&] {
            FClause c;
            c.head = S("dummy", {});
            c.head.name = info.name;
            c.head.args = {V("X"), V("Y")};
            return c;
        };
        switch (rng.below(3)) {
          case 0: {
            FClause c = head();
            c.goals = {is(V("Y"), expr(xs, opt.maxExprDepth))};
            prog.clauses.push_back(std::move(c));
            break;
          }
          case 1: {
            // Guarded pair committed by cut.
            std::int64_t cut = rng.range(0, 6);
            FClause c1 = head();
            c1.goals = {bin(">", V("X"), I(cut)), A("!"),
                        is(V("Y"), expr(xs, opt.maxExprDepth))};
            FClause c2 = head();
            c2.goals = {is(V("Y"), expr(xs, opt.maxExprDepth))};
            prog.clauses.push_back(std::move(c1));
            prog.clauses.push_back(std::move(c2));
            break;
          }
          default: {
            // Disjoint guards, no cut: the second clause is retried
            // on backtracking and its guard re-tested.
            std::int64_t split = rng.range(0, 6);
            FClause c1 = head();
            c1.goals = {bin(">", V("X"), I(split)),
                        is(V("Y"), expr(xs, opt.maxExprDepth))};
            FClause c2 = head();
            c2.goals = {bin("=<", V("X"), I(split)),
                        is(V("Y"), expr(xs, opt.maxExprDepth))};
            prog.clauses.push_back(std::move(c1));
            prog.clauses.push_back(std::move(c2));
            break;
          }
        }
        arith.push_back(std::move(info));
    }

    /** Counter recursion c<i>(N, Acc, Out): N counts down to 0. */
    void
    counterPred(int idx)
    {
        PredInfo info;
        info.kind = PredInfo::Counter;
        info.name = strprintf("c%d", idx);

        FClause base;
        base.head = S("dummy", {});
        base.head.name = info.name;
        base.head.args = {I(0), V("Acc"), V("Acc")};

        FClause step;
        step.head = S("dummy", {});
        step.head.name = info.name;
        step.head.args = {V("N"), V("Acc"), V("Out")};
        step.goals.push_back(bin(">", V("N"), I(0)));
        step.goals.push_back(is(V("N1"), bin("-", V("N"), I(1))));
        if (!arith.empty() && rng.chance(1, 2)) {
            // Route the accumulator through an arithmetic predicate.
            const PredInfo &f = arith[rng.below(arith.size())];
            FTerm call = S("dummy", {});
            call.name = f.name;
            call.args = {V("Acc"), V("Acc1")};
            step.goals.push_back(std::move(call));
        } else {
            std::vector<FTerm> vars = {V("Acc"), V("N")};
            step.goals.push_back(
                is(V("Acc1"), expr(vars, opt.maxExprDepth)));
        }
        FTerm rec = S("dummy", {});
        rec.name = info.name;
        rec.args = {V("N1"), V("Acc1"), V("Out")};
        step.goals.push_back(std::move(rec));

        // Clause order is part of the fuzz surface: step-first puts
        // the variable-headed clause in front of the 0 base case.
        if (rng.chance(1, 2)) {
            prog.clauses.push_back(std::move(base));
            prog.clauses.push_back(std::move(step));
        } else {
            prog.clauses.push_back(std::move(step));
            prog.clauses.push_back(std::move(base));
        }
        counters.push_back(std::move(info));
    }

    /** List builder b<i>(N, L): L has N elements computed from N. */
    void
    builderPred(int idx)
    {
        PredInfo info;
        info.kind = PredInfo::Builder;
        info.name = strprintf("b%d", idx);

        FClause base;
        base.head = S("dummy", {});
        base.head.name = info.name;
        base.head.args = {I(0), FTerm::mkList({})};

        FClause step;
        step.head = S("dummy", {});
        step.head.name = info.name;
        step.head.args = {V("N"),
                          FTerm::mkListTail({V("H")}, V("T"))};
        std::vector<FTerm> vars = {V("N")};
        step.goals.push_back(bin(">", V("N"), I(0)));
        step.goals.push_back(
            is(V("H"), expr(vars, opt.maxExprDepth - 1)));
        step.goals.push_back(is(V("N1"), bin("-", V("N"), I(1))));
        FTerm rec = S("dummy", {});
        rec.name = info.name;
        rec.args = {V("N1"), V("T")};
        step.goals.push_back(std::move(rec));

        prog.clauses.push_back(std::move(base));
        prog.clauses.push_back(std::move(step));
        builders.push_back(std::move(info));
    }

    /** List walker w<i>(L, Acc, Out): structural descent on L. */
    void
    walkerPred(int idx)
    {
        PredInfo info;
        info.kind = PredInfo::Walker;
        info.name = strprintf("w%d", idx);

        FClause base;
        base.head = S("dummy", {});
        base.head.name = info.name;
        base.head.args = {FTerm::mkList({}), V("Acc"), V("Acc")};

        auto stepHead = [&] {
            FClause c;
            c.head = S("dummy", {});
            c.head.name = info.name;
            c.head.args = {FTerm::mkListTail({V("H")}, V("T")),
                           V("Acc"), V("Out")};
            return c;
        };
        FTerm rec = S("dummy", {});
        rec.name = info.name;
        rec.args = {V("T"), V("Acc1"), V("Out")};

        prog.clauses.push_back(std::move(base));
        if (rng.chance(1, 2)) {
            FClause step = stepHead();
            std::vector<FTerm> vars = {V("Acc"), V("H")};
            step.goals.push_back(
                is(V("Acc1"), expr(vars, opt.maxExprDepth)));
            step.goals.push_back(rec);
            prog.clauses.push_back(std::move(step));
        } else {
            // Guarded pair on the element: count/skip split.
            std::int64_t split = rng.range(0, 3);
            FClause hot = stepHead();
            hot.goals.push_back(bin(">", V("H"), I(split)));
            hot.goals.push_back(
                is(V("Acc1"), bin("+", V("Acc"), V("H"))));
            hot.goals.push_back(rec);
            FClause cold = stepHead();
            cold.goals.push_back(bin("=<", V("H"), I(split)));
            cold.goals.push_back(is(V("Acc1"), V("Acc")));
            cold.goals.push_back(rec);
            prog.clauses.push_back(std::move(hot));
            prog.clauses.push_back(std::move(cold));
        }
        walkers.push_back(std::move(info));
    }

    // --- main/0 -----------------------------------------------------

    FTerm
    call(const PredInfo &p, std::vector<FTerm> args)
    {
        FTerm t = S("dummy", {});
        t.name = p.name;
        t.args = std::move(args);
        return t;
    }

    /** One fail-driven enumeration clause:
     *  `main :- d<i>(K, X), out(X), fail.` — backtracks through
     *  every fact, emitting each solution. */
    FClause
    enumClause()
    {
        const PredInfo &d = data[rng.below(data.size())];
        FClause c;
        c.head = A("main");
        if (rng.chance(1, 2)) {
            // Unbound key: enumerate everything.
            c.goals.push_back(call(d, {V("K"), V("X")}));
        } else {
            // Bound collider key: enumerate the hostile hash slot.
            c.goals.push_back(call(d, {d.hitKey, V("X")}));
        }
        if (rng.chance(1, 3))
            c.goals.push_back(bin(">", V("X"), I(rng.range(0, 4))));
        c.goals.push_back(out(V("X")));
        c.goals.push_back(A("fail"));
        return c;
    }

    /** Deterministic out-producing goal group for the final clause. */
    void
    detGroup(std::vector<FTerm> &goals, int serial)
    {
        std::string rv = strprintf("R%d", serial);
        std::string lv = strprintf("L%d", serial);
        std::string sv = strprintf("S%d", serial);
        switch (rng.below(5)) {
          case 0: {
            if (counters.empty())
                return detGroupArith(goals, rv);
            const PredInfo &p =
                counters[rng.below(counters.size())];
            goals.push_back(
                call(p, {I(rng.range(1, opt.maxRecDepth)),
                         I(rng.range(0, 5)), V(rv)}));
            goals.push_back(out(V(rv)));
            return;
          }
          case 1: {
            if (builders.empty() || walkers.empty())
                return detGroupArith(goals, rv);
            const PredInfo &b =
                builders[rng.below(builders.size())];
            const PredInfo &w = walkers[rng.below(walkers.size())];
            goals.push_back(
                call(b, {I(rng.range(1, opt.maxRecDepth)), V(lv)}));
            goals.push_back(call(w, {V(lv), I(0), V(sv)}));
            goals.push_back(out(V(sv)));
            return;
          }
          case 2: {
            // Lookup guarded by if-then-else: hit or miss key.
            const PredInfo &d = data[rng.below(data.size())];
            bool hit = rng.chance(2, 3);
            FTerm key = hit ? d.hitKey : d.missKey;
            goals.push_back(ite(call(d, {key, V(rv)}),
                                out(V(rv)), out(I(-1))));
            return;
          }
          case 3: {
            // Negation as failure on a guaranteed-absent key.
            const PredInfo &d = data[rng.below(data.size())];
            FTerm naf = FTerm::mkStruct(
                "\\+", {call(d, {d.missKey, V("U" + rv)})});
            goals.push_back(ite(std::move(naf), out(I(1)),
                                out(I(0))));
            return;
          }
          default:
            return detGroupArith(goals, rv);
        }
    }

    void
    detGroupArith(std::vector<FTerm> &goals, const std::string &rv)
    {
        if (!arith.empty() && rng.chance(2, 3)) {
            const PredInfo &f = arith[rng.below(arith.size())];
            goals.push_back(call(f, {I(rng.range(0, 9)), V(rv)}));
        } else {
            std::vector<FTerm> none;
            goals.push_back(is(V(rv), expr(none, opt.maxExprDepth)));
        }
        goals.push_back(out(V(rv)));
    }

    void
    mainPred()
    {
        int drivers = 1 + static_cast<int>(rng.below(3));
        for (int i = 0; i < drivers; ++i)
            prog.clauses.push_back(enumClause());
        FClause last;
        last.head = A("main");
        int groups = 2 + static_cast<int>(rng.below(3));
        for (int i = 0; i < groups; ++i)
            detGroup(last.goals, i);
        if (last.goals.empty())
            last.goals.push_back(out(I(0)));
        prog.clauses.push_back(std::move(last));
    }

    FProgram
    run()
    {
        int nData = 1 + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(
                                opt.maxDataPreds)));
        for (int i = 0; i < nData; ++i)
            dataPred(i);
        int nArith = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(
                          opt.maxArithPreds) + 1));
        for (int i = 0; i < nArith; ++i)
            arithPred(i);
        int nRec = 1 + static_cast<int>(rng.below(
                           static_cast<std::uint64_t>(
                               opt.maxRecPreds)));
        for (int i = 0; i < nRec; ++i) {
            switch (rng.below(3)) {
              case 0: counterPred(i); break;
              case 1: builderPred(i); break;
              default: walkerPred(i); break;
            }
        }
        // A walker with no builder (or vice versa) is fine — main
        // only pairs them when both exist — but make sure at least
        // one deterministic recursion source exists.
        if (counters.empty() && (builders.empty() || walkers.empty()))
            counterPred(nRec);
        mainPred();
        return std::move(prog);
    }
};

} // namespace

FProgram
generate(std::uint64_t seed, const GenOptions &opts)
{
    Gen g(seed, opts);
    return g.run();
}

} // namespace symbol::fuzz
