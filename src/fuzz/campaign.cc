#include "fuzz/campaign.hh"

#include <algorithm>
#include <chrono>

#include "fuzz/rng.hh"
#include "support/text.hh"
#include "support/threadpool.hh"

namespace symbol::fuzz
{

std::uint64_t
caseSeed(std::uint64_t campaignSeed, int index)
{
    // A bijective mix of (campaign, index): cases never collide
    // within a campaign, and neighbouring campaigns do not overlap
    // in practice. Seed 0 is reserved for "unknown", so avoid it.
    std::uint64_t s = mix64(campaignSeed ^
                            mix64(static_cast<std::uint64_t>(index)));
    return s == 0 ? 1 : s;
}

namespace
{

/** Everything one case produces (kept small: sources are only
 *  rendered for failures). */
struct CaseOutcome
{
    Verdict verdict;
    std::string source; ///< non-empty only on failure
};

CaseOutcome
runCase(std::uint64_t seed, const CampaignOptions &opts)
{
    CaseOutcome out;
    FProgram prog = generate(seed, opts.gen);
    std::string source = renderProgram(prog);
    out.verdict = runOracle(source, opts.oracle);
    if (!out.verdict.pass())
        out.source = std::move(source);
    return out;
}

} // namespace

CampaignResult
runCampaign(const CampaignOptions &opts,
            const std::function<void(const std::string &)> &progress)
{
    CampaignResult res;
    support::ThreadPool pool(opts.jobs);
    auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts.timeBudgetSec));
    auto budgetLeft = [&] {
        return opts.timeBudgetSec <= 0 ||
               std::chrono::steady_clock::now() < deadline;
    };

    // Submit in waves: parallel within a wave, strictly in-order
    // collection, budget checked only at wave boundaries — so the
    // set of executed cases is a prefix of the seed window and every
    // executed case's verdict is budget-independent.
    const int wave = static_cast<int>(pool.size()) * 4;
    int next = 0;
    while (next < opts.count && budgetLeft()) {
        int end = std::min(opts.count, next + wave);
        std::vector<support::ThreadPool::Future<CaseOutcome>> futs;
        for (int i = next; i < end; ++i) {
            std::uint64_t seed = caseSeed(opts.seed, i);
            futs.push_back(pool.submit(
                [seed, &opts] { return runCase(seed, opts); }));
        }
        for (int i = next; i < end; ++i) {
            CaseOutcome out =
                futs[static_cast<std::size_t>(i - next)].get();
            ++res.executed;
            if (out.verdict.pass()) {
                ++res.passed;
                continue;
            }
            Failure f;
            f.caseSeed = caseSeed(opts.seed, i);
            f.verdict = std::move(out.verdict);
            f.source = std::move(out.source);
            if (progress)
                progress(strprintf(
                    "case %d seed %llu: %s", i,
                    static_cast<unsigned long long>(f.caseSeed),
                    f.verdict.str().c_str()));
            res.failures.push_back(std::move(f));
        }
        next = end;
    }

    if (opts.shrinkFailures) {
        for (Failure &f : res.failures) {
            FProgram prog = importProgram(f.source);
            ShrinkResult sr =
                shrink(prog, opts.oracle, opts.shrinkOpts);
            f.shrunkSource = renderProgram(sr.program);
            f.shrunkClauses = sr.program.clauses.size();
            if (progress)
                progress(strprintf(
                    "shrunk seed %llu to %zu clauses (%d probes%s)",
                    static_cast<unsigned long long>(f.caseSeed),
                    f.shrunkClauses, sr.probes,
                    sr.minimal ? ", 1-minimal" : ""));
        }
    }
    return res;
}

} // namespace symbol::fuzz
