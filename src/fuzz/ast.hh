/**
 * @file
 * The fuzzer's own program representation (DESIGN.md §12).
 *
 * A deliberately small mirror of source-level Prolog — just enough
 * structure for the generator to build programs and for the shrinker
 * to delete clauses, delete goals and simplify subterms while keeping
 * the program parsable. Rendering produces ordinary Prolog text the
 * toolchain's real parser reads back; importProgram() inverts it so
 * a replayed artifact file can be shrunk too. Round-tripping through
 * render/import is covered by unit tests.
 */

#ifndef SYMBOL_FUZZ_AST_HH
#define SYMBOL_FUZZ_AST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace symbol::fuzz
{

/** Source-level term shapes the fuzzer manipulates. */
enum class FKind : std::uint8_t
{
    Int,    ///< integer constant
    Atom,   ///< atomic constant
    Var,    ///< logic variable (name carries identity)
    Struct, ///< functor(args...) — also every operator goal
    List,   ///< [elems...] or [elems...|Tail] (Tail = last arg)
};

/** One term; owns its arguments by value. */
struct FTerm
{
    FKind kind = FKind::Atom;
    std::int64_t num = 0;   ///< Int payload
    std::string name;       ///< Atom/Struct functor or Var name
    std::vector<FTerm> args;
    /** List only: true when the last element of args is a tail term
     *  ([a,b|T]) rather than a final element ([a,b]). */
    bool hasTail = false;

    static FTerm mkInt(std::int64_t v);
    static FTerm mkAtom(std::string name);
    static FTerm mkVar(std::string name);
    static FTerm mkStruct(std::string functor, std::vector<FTerm> args);
    static FTerm mkList(std::vector<FTerm> elems);
    static FTerm mkListTail(std::vector<FTerm> elems, FTerm tail);

    bool operator==(const FTerm &o) const;
    bool operator!=(const FTerm &o) const { return !(*this == o); }
};

/** One clause: Head :- G1, ..., Gn (facts have no goals). */
struct FClause
{
    FTerm head;
    std::vector<FTerm> goals;
};

/** A whole program plus its provenance. */
struct FProgram
{
    /** Seed the generator was run with (0 = imported, unknown). */
    std::uint64_t seed = 0;
    std::vector<FClause> clauses;
};

/**
 * Render one term as parsable Prolog text. Arithmetic, comparison
 * and control functors print infix/prefix with full parenthesisation
 * (never relying on precedence), everything else functionally.
 */
std::string renderTerm(const FTerm &t);

/** Render one clause including the terminating ". ". */
std::string renderClause(const FClause &c);

/**
 * Render the whole program: a `% symbolfuzz seed=<S>` header comment
 * (making every artifact self-describing and replayable) followed by
 * one clause per line.
 */
std::string renderProgram(const FProgram &p);

/**
 * Parse @p source (as produced by renderProgram, or any program the
 * toolchain's parser accepts) back into an FProgram. The seed is
 * recovered from the header comment when present. Directives are not
 * representable and raise CompileError.
 */
FProgram importProgram(const std::string &source);

/** Extract the seed from a `% symbolfuzz seed=<S>` header (0=none). */
std::uint64_t seedFromSource(const std::string &source);

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_AST_HH
