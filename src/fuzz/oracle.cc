#include "fuzz/oracle.hh"

#include <numeric>

#include "check/check.hh"
#include "prolog/parser.hh"
#include "sched/compact.hh"
#include "support/text.hh"
#include "verify/verify.hh"

namespace symbol::fuzz
{

const std::vector<FrontConfig> &
defaultConfigs()
{
    static const std::vector<FrontConfig> configs = [] {
        std::vector<FrontConfig> c(3);
        c[0].name = "default";
        c[1].name = "expand-tags";
        c[1].translate.expandTagBranches = true;
        c[2].name = "no-indexing";
        c[2].compiler.indexing = false;
        return c;
    }();
    return configs;
}

const char *
verdictClassName(VerdictClass c)
{
    switch (c) {
      case VerdictClass::Pass: return "pass";
      case VerdictClass::CompileReject: return "compile-reject";
      case VerdictClass::CrossConfigMismatch:
        return "cross-config-mismatch";
      case VerdictClass::OutputMismatch: return "output-mismatch";
      case VerdictClass::StatusMismatch: return "status-mismatch";
      case VerdictClass::VerifyViolation: return "verify-violation";
      case VerdictClass::InvariantViolation:
        return "invariant-violation";
      case VerdictClass::Crash: return "crash";
    }
    return "?";
}

std::string
Verdict::str() const
{
    std::string out = verdictClassName(cls);
    if (!config.empty())
        out += " [" + config + "]";
    if (!detail.empty())
        out += ": " + detail;
    return out;
}

namespace
{

/** First line of a multi-line report, for one-line verdict details. */
std::string
firstLine(const std::string &s)
{
    std::size_t nl = s.find('\n');
    return nl == std::string::npos ? s : s.substr(0, nl);
}

} // namespace

Verdict
runOracle(const std::string &source, const OracleOptions &opts)
{
    const std::vector<FrontConfig> &configs =
        opts.configs.empty() ? defaultConfigs() : opts.configs;
    Verdict v;

    auto fail = [&](VerdictClass cls, const std::string &config,
                    std::string detail) {
        v.cls = cls;
        v.config = config;
        v.detail = std::move(detail);
        return v;
    };

    for (const FrontConfig &fc : configs) {
        ConfigReport rep;
        rep.config = fc.name;
        try {
            Interner interner;
            prolog::Program pp =
                prolog::parseProgram(source, interner);
            bam::Module mod = bamc::compile(pp, fc.compiler);
            intcode::Program ici =
                intcode::translate(mod, fc.translate);

            if (opts.runAnalyzer) {
                check::DiagnosticEngine diag =
                    check::analyze(mod, ici);
                if (!diag.ok())
                    return fail(VerdictClass::InvariantViolation,
                                fc.name,
                                "analyzer: " + diag.summary());
            }

            emul::Machine seq(ici);
            emul::RunOptions ro;
            ro.trapErrors = true;
            ro.maxSteps = opts.maxSteps;
            emul::RunResult sr = seq.run(ro);
            rep.seqStatus = sr.status;
            rep.instructions = sr.instructions;
            rep.seqCycles = sr.seqCycles;
            rep.seqText = emul::decodeOutputStream(sr.output,
                                                   &interner);

            std::uint64_t expectSum = std::accumulate(
                sr.profile.expect.begin(), sr.profile.expect.end(),
                std::uint64_t{0});
            if (expectSum != sr.instructions)
                return fail(
                    VerdictClass::InvariantViolation, fc.name,
                    strprintf("profile sum(Expect)=%llu != "
                              "instructions=%llu",
                              static_cast<unsigned long long>(
                                  expectSum),
                              static_cast<unsigned long long>(
                                  sr.instructions)));
            if (sr.seqCycles < sr.instructions)
                return fail(
                    VerdictClass::InvariantViolation, fc.name,
                    strprintf("seqCycles=%llu < instructions=%llu",
                              static_cast<unsigned long long>(
                                  sr.seqCycles),
                              static_cast<unsigned long long>(
                                  sr.instructions)));

            sched::CompactResult cr =
                sched::compact(ici, sr.profile, opts.machine);
            if (opts.injectFault)
                opts.injectFault(cr.code, fc);

            if (opts.runVerifier) {
                verify::Report vr = verify::checkSchedule(
                    cr.code, ici, opts.machine);
                if (!vr.ok())
                    return fail(
                        VerdictClass::VerifyViolation, fc.name,
                        vr.violations.empty()
                            ? strprintf(
                                  "%llu violations",
                                  static_cast<unsigned long long>(
                                      vr.total))
                            : vr.violations.front().str());
            }

            if (sr.status != emul::RunStatus::Ok) {
                // The ground truth trapped; traps are deterministic
                // and config-dependent (allocation layout differs),
                // so there is nothing to line the VLIW run up
                // against — record and move on.
                v.reports.push_back(std::move(rep));
                continue;
            }

            vliw::Machine vm(cr.code, opts.machine);
            vliw::SimOptions so;
            so.trapErrors = true;
            so.maxCycles = opts.maxCycles;
            vliw::SimResult mr = vm.run(so);
            rep.vliwStatus = mr.status;
            rep.vliwCycles = mr.cycles;
            rep.vliwText = emul::decodeOutputStream(mr.output,
                                                    &interner);

            if (mr.latencyViolations != 0 || mr.badUnitOps != 0)
                return fail(
                    VerdictClass::InvariantViolation, fc.name,
                    strprintf("latencyViolations=%llu "
                              "badUnitOps=%llu",
                              static_cast<unsigned long long>(
                                  mr.latencyViolations),
                              static_cast<unsigned long long>(
                                  mr.badUnitOps)));
            if (mr.status != vliw::SimStatus::Ok) {
                v.reports.push_back(rep);
                return fail(
                    VerdictClass::StatusMismatch, fc.name,
                    strprintf("seq ok but VLIW ended %s",
                              vliw::simStatusName(mr.status)));
            }
            if (mr.output != sr.output) {
                std::string detail = strprintf(
                    "seq |%s| vliw |%s|",
                    firstLine(rep.seqText).c_str(),
                    firstLine(rep.vliwText).c_str());
                v.reports.push_back(rep);
                return fail(VerdictClass::OutputMismatch, fc.name,
                            detail);
            }
        } catch (const CompileError &e) {
            return fail(VerdictClass::CompileReject, fc.name,
                        e.what());
        } catch (const std::exception &e) {
            return fail(VerdictClass::Crash, fc.name, e.what());
        }
        v.reports.push_back(std::move(rep));
    }

    // Cross-config agreement on the decoded sequential answer, only
    // meaningful when every configuration halted cleanly.
    bool allOk = v.reports.size() == configs.size();
    for (const ConfigReport &r : v.reports)
        allOk = allOk && r.seqStatus == emul::RunStatus::Ok;
    if (allOk) {
        for (std::size_t i = 1; i < v.reports.size(); ++i) {
            if (v.reports[i].seqText != v.reports[0].seqText)
                return fail(
                    VerdictClass::CrossConfigMismatch,
                    v.reports[i].config,
                    strprintf("|%s| vs %s |%s|",
                              firstLine(v.reports[i].seqText)
                                  .c_str(),
                              v.reports[0].config.c_str(),
                              firstLine(v.reports[0].seqText)
                                  .c_str()));
        }
    }
    return v;
}

} // namespace symbol::fuzz
