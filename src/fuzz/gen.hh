/**
 * @file
 * Grammar-level random Prolog program generator (DESIGN.md §12).
 *
 * Every generated program is a pure function of its 64-bit seed,
 * defines main/0, reports through out/1, and terminates by
 * construction:
 *
 *  - recursion always decreases a measure — an integer counter
 *    guarded by `N > 0` with `N1 is N - 1` stepping toward a `0`
 *    base case, or structural descent down a list built by such a
 *    counter — and predicates only ever call predicates of strictly
 *    smaller index, so there is no mutual recursion;
 *  - division and modulo only ever appear with nonzero integer
 *    literal divisors (the sequential emulator traps on a zero
 *    divisor while the exposed VLIW datapath yields 0 — §"division
 *    never traps" — so a runtime zero divisor would be a semantics
 *    difference by design, not a bug);
 *  - multiplication always has a small literal factor on one side,
 *    keeping every intermediate far from 64-bit overflow (signed
 *    overflow would be UB in the emulator, not a defined result).
 *
 * Data predicates are deliberately indexing-hostile: first arguments
 * repeat the same constant across clauses, mix tags (integer, atom,
 * structure, list) and may include a variable, exercising the
 * compiler's switch_tag / dispatch-chain machinery and its ablation
 * (compiler.indexing = false) on the worst cases. main/0 combines
 * fail-driven enumeration clauses (backtracking through out/1 side
 * effects) with a deterministic final clause using if-then-else,
 * negation-as-failure and cut.
 */

#ifndef SYMBOL_FUZZ_GEN_HH
#define SYMBOL_FUZZ_GEN_HH

#include "fuzz/ast.hh"

namespace symbol::fuzz
{

/** Generation knobs (sizes, not probabilities — all distributions
 *  are fixed in gen.cc so seeds stay stable). */
struct GenOptions
{
    /** Maximum extra data predicates beyond the first. */
    int maxDataPreds = 3;
    /** Maximum arithmetic (functional) predicates. */
    int maxArithPreds = 3;
    /** Maximum extra recursive predicates beyond the first. */
    int maxRecPreds = 3;
    /** Maximum fact clauses per data predicate. */
    int maxFactsPerPred = 6;
    /** Upper bound for every recursion counter (the decreasing
     *  measure starts at most here; guarantees termination). */
    int maxRecDepth = 8;
    /** Maximum depth of ground data terms in fact arguments. */
    int maxTermDepth = 3;
    /** Maximum arithmetic-expression tree depth. */
    int maxExprDepth = 3;
};

/** Generate the program for @p seed. Deterministic across hosts. */
FProgram generate(std::uint64_t seed, const GenOptions &opts = {});

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_GEN_HH
