/**
 * @file
 * Deliberate schedule-fault injectors (DESIGN.md §12).
 *
 * Each injector mutates real compacted code to provoke one of the
 * verifier's illegal-schedule classes (verify::Kind), so tests can
 * prove the differential oracle catches — and the shrinker minimises
 * — every class of scheduler bug end to end, on programs the fuzzer
 * generated rather than schedules built by hand (those live in
 * tests/test_verify.cc).
 *
 * 13 of the 16 verify::Kind classes are injectable on the oracle's
 * default machine (MachineConfig::idealShared): Format needs the
 * prototype's two-format restriction and BusLimit/BusLatency need
 * specific cluster pressure, so those three stay covered by the
 * hand-built schedules in test_verify.cc only.
 *
 * An injector returns false when the code lacks the shape it needs
 * (e.g. no two memory ops to collide); callers probe seeds until one
 * applies. Mutations are deterministic functions of the code, so a
 * shrink re-running the oracle reproduces the same fault as long as
 * the shrunken program still has the required shape — which is
 * exactly the shrinker's preserved-class criterion.
 */

#ifndef SYMBOL_FUZZ_INJECT_HH
#define SYMBOL_FUZZ_INJECT_HH

#include <vector>

#include "verify/verify.hh"
#include "vliw/code.hh"

namespace symbol::fuzz
{

/** One named fault injector. */
struct FaultInjector
{
    /** Stable kebab-case name ("bad-unit", "mem-ports", ...). */
    const char *name;
    /** The violation class the mutation is designed to provoke (the
     *  verifier may legitimately report additional classes). */
    verify::Kind kind;
    /** Mutate @p code; false = code lacks the shape this fault
     *  needs (nothing was changed). */
    bool (*apply)(vliw::Code &code);
};

/** The 13 injectable illegal-schedule classes, in verify::Kind
 *  order. */
const std::vector<FaultInjector> &faultInjectors();

/** Look up one injector by name (nullptr if unknown). */
const FaultInjector *findInjector(const char *name);

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_INJECT_HH
