/**
 * @file
 * Deterministic pseudo-random source for the fuzzer.
 *
 * SplitMix64 (Steele/Lea/Flood, JPDC 2014) — tiny, fast, and with a
 * fixed, platform-independent output sequence, unlike the standard
 * library distributions whose mapping from engine output to values is
 * implementation-defined. Every generated program must be a pure
 * function of its 64-bit seed on any host, or --replay and the golden
 * dump test break.
 */

#ifndef SYMBOL_FUZZ_RNG_HH
#define SYMBOL_FUZZ_RNG_HH

#include <cstdint>

namespace symbol::fuzz
{

/** The SplitMix64 finalizer: a bijective 64-bit mixer. */
constexpr std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Seeded deterministic generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        state_ += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, n); n must be positive. Uses the
     *  (slightly biased, but deterministic and branch-free) modulo
     *  reduction — fine for test-case generation. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** True with probability @p num / @p den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

  private:
    std::uint64_t state_;
};

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_RNG_HH
