#include "fuzz/inject.hh"

#include <algorithm>
#include <cstring>

#include "intcode/instr.hh"

namespace symbol::fuzz
{

namespace
{

using intcode::IInstr;
using intcode::IOp;
using intcode::OpClass;
using vliw::Code;
using vliw::MicroOp;

/** Region index of wide @p w (regionStart is ascending from 0). */
int
regionOf(const Code &c, int w)
{
    int r = 0;
    for (std::size_t k = 0; k < c.regionStart.size(); ++k)
        if (c.regionStart[k] <= w)
            r = static_cast<int>(k);
    return r;
}

int
regionEndWide(const Code &c, int r)
{
    return static_cast<std::size_t>(r) + 1 < c.regionStart.size()
               ? c.regionStart[static_cast<std::size_t>(r) + 1]
               : static_cast<int>(c.code.size());
}

/** First op satisfying @p pred, as (wide, pos); found = true. */
template <class Pred>
bool
findOp(Code &c, Pred pred, int &ow, int &op)
{
    for (std::size_t w = 0; w < c.code.size(); ++w)
        for (std::size_t p = 0; p < c.code[w].ops.size(); ++p)
            if (pred(c.code[w].ops[p])) {
                ow = static_cast<int>(w);
                op = static_cast<int>(p);
                return true;
            }
    return false;
}

/** Detach op @p p of wide @p w and append it to wide @p dst. The
 *  op keeps its seq/orig provenance, so only placement-sensitive
 *  checks (resources, latency, dependence order) can object. */
void
moveOp(Code &c, int w, int p, int dst)
{
    MicroOp m = c.code[static_cast<std::size_t>(w)]
                    .ops[static_cast<std::size_t>(p)];
    auto &from = c.code[static_cast<std::size_t>(w)].ops;
    from.erase(from.begin() + p);
    c.code[static_cast<std::size_t>(dst)].ops.push_back(m);
}

bool
writesReg(const IInstr &i)
{
    OpClass k = intcode::opClass(i.op);
    return (k == OpClass::Alu || k == OpClass::Move ||
            i.op == IOp::Ld) &&
           intcode::defReg(i) >= 0;
}

bool
usesReg(const IInstr &i, int d)
{
    int uses[2];
    int nu = 0;
    intcode::useRegs(i, uses, nu);
    for (int u = 0; u < nu; ++u)
        if (uses[u] == d)
            return true;
    return false;
}

// --- The injectors, one per injectable verify::Kind ----------------

/** Malformed: append an out-of-range region-table entry. */
bool
injMalformed(Code &c)
{
    c.regionStart.push_back(static_cast<int>(c.code.size()) + 3);
    return true;
}

/** Mismatch: forge one op's operand field so it no longer matches
 *  the source instruction its provenance claims. */
bool
injMismatch(Code &c)
{
    int w, p;
    if (!findOp(c, [](const MicroOp &m) { return m.orig >= 0; }, w,
                p))
        return false;
    c.code[static_cast<std::size_t>(w)]
        .ops[static_cast<std::size_t>(p)]
        .instr.off += 3;
    return true;
}

/** NotAPath: swap the claimed sequence positions of two adjacent
 *  non-control ops, so the claimed source order is no longer a path
 *  of the program. */
bool
injNotAPath(Code &c)
{
    for (std::size_t r = 0; r < c.regionStart.size(); ++r) {
        std::vector<MicroOp *> s;
        for (int w = c.regionStart[r];
             w < regionEndWide(c, static_cast<int>(r)); ++w)
            for (MicroOp &m :
                 c.code[static_cast<std::size_t>(w)].ops)
                s.push_back(&m);
        std::sort(s.begin(), s.end(),
                  [](const MicroOp *a, const MicroOp *b) {
                      return a->seq < b->seq;
                  });
        for (std::size_t k = 1; k < s.size(); ++k) {
            MicroOp *a = s[k - 1], *b = s[k];
            if (a->orig >= 0 && b->orig >= 0 &&
                a->orig != b->orig &&
                !intcode::isControl(a->instr.op) &&
                !intcode::isControl(b->instr.op)) {
                std::swap(a->seq, b->seq);
                return true;
            }
        }
    }
    return false;
}

/** BadUnit: bind one op to a unit the machine does not have. */
bool
injBadUnit(Code &c)
{
    int w, p;
    if (!findOp(c, [](const MicroOp &) { return true; }, w, p))
        return false;
    c.code[static_cast<std::size_t>(w)]
        .ops[static_cast<std::size_t>(p)]
        .unit = 99;
    return true;
}

/** SlotLimit: collapse two same-class ops of one cycle onto one
 *  unit, oversubscribing its single issue slot of that class. */
bool
injSlotLimit(Code &c)
{
    for (vliw::WideInstr &w : c.code)
        for (std::size_t i = 0; i < w.ops.size(); ++i)
            for (std::size_t j = i + 1; j < w.ops.size(); ++j) {
                OpClass ki = intcode::opClass(w.ops[i].instr.op);
                OpClass kj = intcode::opClass(w.ops[j].instr.op);
                if (ki == kj && ki != OpClass::Other &&
                    w.ops[i].unit != w.ops[j].unit) {
                    w.ops[j].unit = w.ops[i].unit;
                    return true;
                }
            }
    return false;
}

/** MemPorts: move a later memory op into a cycle that already
 *  issues one — two accesses, one shared port. */
bool
injMemPorts(Code &c)
{
    for (std::size_t r = 0; r < c.regionStart.size(); ++r) {
        int first = -1;
        for (int w = c.regionStart[r];
             w < regionEndWide(c, static_cast<int>(r)); ++w)
            for (std::size_t p = 0;
                 p < c.code[static_cast<std::size_t>(w)].ops.size();
                 ++p) {
                const MicroOp &m =
                    c.code[static_cast<std::size_t>(w)]
                        .ops[static_cast<std::size_t>(p)];
                if (intcode::opClass(m.instr.op) != OpClass::Memory)
                    continue;
                if (first < 0) {
                    first = w;
                } else if (w != first) {
                    moveOp(c, w, static_cast<int>(p), first);
                    return true;
                }
            }
    }
    return false;
}

/** BadRegister: point one op's destination outside the register
 *  file. */
bool
injBadRegister(Code &c)
{
    int w, p;
    if (!findOp(c,
                [](const MicroOp &m) { return writesReg(m.instr); },
                w, p))
        return false;
    c.code[static_cast<std::size_t>(w)]
        .ops[static_cast<std::size_t>(p)]
        .instr.rd = c.numRegs + 5;
    return true;
}

/** BadTarget: retarget one branch past the end of the code. */
bool
injBadTarget(Code &c)
{
    int w, p;
    if (!findOp(c,
                [](const MicroOp &m) {
                    return intcode::isCondBranch(m.instr.op) ||
                           m.instr.op == IOp::Jmp;
                },
                w, p))
        return false;
    c.code[static_cast<std::size_t>(w)]
        .ops[static_cast<std::size_t>(p)]
        .instr.target = static_cast<int>(c.code.size()) + 7;
    return true;
}

/** Latency: move a consumer into the very cycle that produces its
 *  operand, so the static path reads an uncommitted result. */
bool
injLatency(Code &c)
{
    for (std::size_t r = 0; r < c.regionStart.size(); ++r) {
        int start = c.regionStart[r];
        int end = regionEndWide(c, static_cast<int>(r));
        for (int w = start; w < end; ++w)
            for (const MicroOp &x :
                 c.code[static_cast<std::size_t>(w)].ops) {
                if (!writesReg(x.instr))
                    continue;
                int d = intcode::defReg(x.instr);
                // Nearest later consumer with no redefinition of d
                // in between (so x really is its producer).
                for (int w2 = w + 1; w2 < end; ++w2) {
                    auto &ops =
                        c.code[static_cast<std::size_t>(w2)].ops;
                    for (std::size_t p = 0; p < ops.size(); ++p)
                        if (usesReg(ops[p].instr, d)) {
                            moveOp(c, w2, static_cast<int>(p), w);
                            return true;
                        }
                    bool redef = false;
                    for (const MicroOp &y : ops)
                        redef |= writesReg(y.instr) &&
                                 intcode::defReg(y.instr) == d;
                    if (redef)
                        break;
                }
            }
    }
    return false;
}

/** WriteOverlap: retarget a next-cycle write onto a load's
 *  destination while the (multi-cycle) load is still in flight. */
bool
injWriteOverlap(Code &c)
{
    for (std::size_t w = 0; w + 1 < c.code.size(); ++w) {
        if (regionOf(c, static_cast<int>(w)) !=
            regionOf(c, static_cast<int>(w) + 1))
            continue;
        for (const MicroOp &x : c.code[w].ops) {
            if (x.instr.op != IOp::Ld)
                continue;
            for (MicroOp &y : c.code[w + 1].ops)
                if (writesReg(y.instr)) {
                    y.instr.rd = x.instr.rd;
                    return true;
                }
        }
    }
    return false;
}

/** DepOrder: hoist a consumer of an in-region result above its
 *  producer's cycle, reordering a true dependence. */
bool
injDepOrder(Code &c)
{
    for (std::size_t r = 0; r < c.regionStart.size(); ++r) {
        int start = c.regionStart[r];
        int end = regionEndWide(c, static_cast<int>(r));
        for (int w = start + 1; w < end; ++w) {
            auto &ops = c.code[static_cast<std::size_t>(w)].ops;
            for (std::size_t p = 0; p < ops.size(); ++p) {
                if (intcode::isControl(ops[p].instr.op))
                    continue;
                int uses[2];
                int nu = 0;
                intcode::useRegs(ops[p].instr, uses, nu);
                for (int u = 0; u < nu; ++u) {
                    // Defined earlier in this region?
                    for (int wd = start; wd < w; ++wd)
                        for (const MicroOp &x :
                             c.code[static_cast<std::size_t>(wd)]
                                 .ops)
                            if (writesReg(x.instr) &&
                                intcode::defReg(x.instr) ==
                                    uses[u] &&
                                wd > start) {
                                moveOp(c, w, static_cast<int>(p),
                                       start);
                                return true;
                            }
                }
            }
        }
    }
    return false;
}

/** BranchOrder: move a conditional branch after an unconditional
 *  exit inside the same wide instruction. */
bool
injBranchOrder(Code &c)
{
    for (std::size_t w = 0; w < c.code.size(); ++w) {
        bool exitHere = false;
        for (const MicroOp &m : c.code[w].ops)
            exitHere |= m.instr.op == IOp::Jmp ||
                        m.instr.op == IOp::Jmpi ||
                        m.instr.op == IOp::Halt;
        if (!exitHere)
            continue;
        int rw = regionOf(c, static_cast<int>(w));
        for (int w2 = c.regionStart[static_cast<std::size_t>(rw)];
             w2 < regionEndWide(c, rw); ++w2) {
            if (w2 == static_cast<int>(w))
                continue;
            auto &ops = c.code[static_cast<std::size_t>(w2)].ops;
            for (std::size_t p = 0; p < ops.size(); ++p)
                if (intcode::isCondBranch(ops[p].instr.op)) {
                    moveOp(c, w2, static_cast<int>(p),
                           static_cast<int>(w));
                    return true;
                }
        }
    }
    return false;
}

/** Speculation: hoist a store above a conditional split of its
 *  region (a side effect must never move above a split). */
bool
injSpeculation(Code &c)
{
    for (std::size_t r = 0; r < c.regionStart.size(); ++r) {
        int start = c.regionStart[r];
        int end = regionEndWide(c, static_cast<int>(r));
        int split = -1;
        for (int w = start; w < end; ++w) {
            auto &ops = c.code[static_cast<std::size_t>(w)].ops;
            for (std::size_t p = 0; p < ops.size(); ++p) {
                if (intcode::isCondBranch(ops[p].instr.op) &&
                    split < 0 && w > start)
                    split = w;
                if (split >= 0 && w > split &&
                    ops[p].instr.op == IOp::St) {
                    moveOp(c, w, static_cast<int>(p), start);
                    return true;
                }
            }
        }
    }
    return false;
}

} // namespace

const std::vector<FaultInjector> &
faultInjectors()
{
    static const std::vector<FaultInjector> table = {
        {"malformed-regions", verify::Kind::Malformed, injMalformed},
        {"forged-provenance", verify::Kind::Mismatch, injMismatch},
        {"not-a-path", verify::Kind::NotAPath, injNotAPath},
        {"bad-unit", verify::Kind::BadUnit, injBadUnit},
        {"slot-limit", verify::Kind::SlotLimit, injSlotLimit},
        {"mem-ports", verify::Kind::MemPorts, injMemPorts},
        {"bad-register", verify::Kind::BadRegister, injBadRegister},
        {"bad-target", verify::Kind::BadTarget, injBadTarget},
        {"latency", verify::Kind::Latency, injLatency},
        {"write-overlap", verify::Kind::WriteOverlap,
         injWriteOverlap},
        {"dep-order", verify::Kind::DepOrder, injDepOrder},
        {"branch-order", verify::Kind::BranchOrder, injBranchOrder},
        {"speculation", verify::Kind::Speculation, injSpeculation},
    };
    return table;
}

const FaultInjector *
findInjector(const char *name)
{
    for (const FaultInjector &f : faultInjectors())
        if (std::strcmp(f.name, name) == 0)
            return &f;
    return nullptr;
}

} // namespace symbol::fuzz
