#include "fuzz/ast.hh"

#include <cstdlib>

#include "prolog/parser.hh"
#include "support/text.hh"

namespace symbol::fuzz
{

FTerm
FTerm::mkInt(std::int64_t v)
{
    FTerm t;
    t.kind = FKind::Int;
    t.num = v;
    return t;
}

FTerm
FTerm::mkAtom(std::string name)
{
    FTerm t;
    t.kind = FKind::Atom;
    t.name = std::move(name);
    return t;
}

FTerm
FTerm::mkVar(std::string name)
{
    FTerm t;
    t.kind = FKind::Var;
    t.name = std::move(name);
    return t;
}

FTerm
FTerm::mkStruct(std::string functor, std::vector<FTerm> args)
{
    FTerm t;
    t.kind = FKind::Struct;
    t.name = std::move(functor);
    t.args = std::move(args);
    return t;
}

FTerm
FTerm::mkList(std::vector<FTerm> elems)
{
    FTerm t;
    t.kind = FKind::List;
    t.args = std::move(elems);
    return t;
}

FTerm
FTerm::mkListTail(std::vector<FTerm> elems, FTerm tail)
{
    FTerm t;
    t.kind = FKind::List;
    t.args = std::move(elems);
    t.args.push_back(std::move(tail));
    t.hasTail = true;
    return t;
}

bool
FTerm::operator==(const FTerm &o) const
{
    return kind == o.kind && num == o.num && name == o.name &&
           hasTail == o.hasTail && args == o.args;
}

namespace
{

/** Functors rendered infix (all binary). Rendering always fully
 *  parenthesises, so precedence never matters on the way back in. */
bool
isInfixName(const std::string &n)
{
    static const char *const ops[] = {
        "+",  "-",  "*",  "//",  "mod", "rem", "is",  "<",
        "=<", ">",  ">=", "=:=", "=\\=", "=",  "==",  "\\==",
        "->", ";",  ",",
    };
    for (const char *o : ops)
        if (n == o)
            return true;
    return false;
}

void
renderInto(const FTerm &t, std::string &out)
{
    switch (t.kind) {
      case FKind::Int:
        out += strprintf("%lld", static_cast<long long>(t.num));
        return;
      case FKind::Atom:
      case FKind::Var:
        out += t.name;
        return;
      case FKind::List: {
        out += '[';
        std::size_t n = t.args.size();
        std::size_t elems = t.hasTail ? n - 1 : n;
        for (std::size_t i = 0; i < elems; ++i) {
            if (i)
                out += ',';
            renderInto(t.args[i], out);
        }
        if (t.hasTail) {
            out += '|';
            renderInto(t.args[n - 1], out);
        }
        out += ']';
        return;
      }
      case FKind::Struct: {
        if (t.args.size() == 2 && isInfixName(t.name)) {
            out += '(';
            renderInto(t.args[0], out);
            out += ' ';
            out += t.name;
            out += ' ';
            renderInto(t.args[1], out);
            out += ')';
            return;
        }
        if (t.args.size() == 1 && t.name == "\\+") {
            out += "\\+ (";
            renderInto(t.args[0], out);
            out += ')';
            return;
        }
        out += t.name;
        out += '(';
        for (std::size_t i = 0; i < t.args.size(); ++i) {
            if (i)
                out += ',';
            renderInto(t.args[i], out);
        }
        out += ')';
        return;
      }
    }
}

} // namespace

std::string
renderTerm(const FTerm &t)
{
    std::string out;
    renderInto(t, out);
    return out;
}

std::string
renderClause(const FClause &c)
{
    std::string out = renderTerm(c.head);
    if (!c.goals.empty()) {
        out += " :- ";
        for (std::size_t i = 0; i < c.goals.size(); ++i) {
            if (i)
                out += ", ";
            out += renderTerm(c.goals[i]);
        }
    }
    out += ".";
    return out;
}

std::string
renderProgram(const FProgram &p)
{
    std::string out;
    if (p.seed != 0)
        out += strprintf("%% symbolfuzz seed=%llu\n",
                         static_cast<unsigned long long>(p.seed));
    for (const FClause &c : p.clauses) {
        out += renderClause(c);
        out += '\n';
    }
    return out;
}

std::uint64_t
seedFromSource(const std::string &source)
{
    static const std::string tag = "% symbolfuzz seed=";
    std::size_t pos = source.find(tag);
    if (pos == std::string::npos)
        return 0;
    return std::strtoull(source.c_str() + pos + tag.size(), nullptr,
                         10);
}

namespace
{

FTerm
fromPool(const prolog::TermPool &pool, prolog::TermId id)
{
    using prolog::TermKind;
    const prolog::Term &t = pool.at(id);
    const Interner &in = pool.interner();
    switch (t.kind) {
      case TermKind::Int:
        return FTerm::mkInt(t.value);
      case TermKind::Atom:
        return FTerm::mkAtom(in.name(t.functor));
      case TermKind::Var:
        // Identity is by name: same-named variables in one clause
        // re-share on re-parse, and every "_" stays fresh.
        return FTerm::mkVar(in.name(t.functor));
      case TermKind::Struct: {
        if (pool.isCons(id)) {
            // Collapse the cons chain into the List shape.
            std::vector<FTerm> elems;
            prolog::TermId cur = id;
            while (pool.isCons(cur)) {
                elems.push_back(
                    fromPool(pool, pool.at(cur).args[0]));
                cur = pool.at(cur).args[1];
            }
            if (pool.isAtom(cur, in.nilAtom()))
                return FTerm::mkList(std::move(elems));
            return FTerm::mkListTail(std::move(elems),
                                     fromPool(pool, cur));
        }
        std::vector<FTerm> args;
        args.reserve(t.args.size());
        for (prolog::TermId a : t.args)
            args.push_back(fromPool(pool, a));
        return FTerm::mkStruct(in.name(t.functor), std::move(args));
      }
    }
    return FTerm::mkAtom("?");
}

/** Flatten a right-nested ','/2 conjunction into goal terms. */
void
flattenConj(const prolog::TermPool &pool, prolog::TermId id,
            AtomId comma, std::vector<FTerm> &out)
{
    if (pool.isStruct(id, comma, 2)) {
        flattenConj(pool, pool.at(id).args[0], comma, out);
        flattenConj(pool, pool.at(id).args[1], comma, out);
        return;
    }
    out.push_back(fromPool(pool, id));
}

} // namespace

FProgram
importProgram(const std::string &source)
{
    Interner in;
    prolog::Program prog = prolog::parseProgram(source, in);
    if (!prog.directives.empty())
        throw CompileError(
            "fuzz import: directives are not representable");
    FProgram out;
    out.seed = seedFromSource(source);
    AtomId comma = in.intern(",");
    for (const prolog::Clause &c : prog.clauses) {
        FClause fc;
        fc.head = fromPool(prog.pool, c.head);
        if (c.body != prolog::kNoTerm)
            flattenConj(prog.pool, c.body, comma, fc.goals);
        out.clauses.push_back(std::move(fc));
    }
    return out;
}

} // namespace symbol::fuzz
