/**
 * @file
 * Campaign driver: fan a window of seeds over the oracle on a thread
 * pool, deterministically.
 *
 * Every case is a pure function of its case seed (derived from the
 * campaign seed and the case index by a bijective mixer), and results
 * are collected strictly in index order, so a campaign's outcome is
 * byte-identical for any --jobs value. The wall-clock time budget
 * only decides how many cases are *launched* (checked between
 * submission waves); it never changes the verdict of a case that ran.
 */

#ifndef SYMBOL_FUZZ_CAMPAIGN_HH
#define SYMBOL_FUZZ_CAMPAIGN_HH

#include "fuzz/gen.hh"
#include "fuzz/oracle.hh"
#include "fuzz/shrink.hh"

namespace symbol::fuzz
{

/** Campaign configuration. */
struct CampaignOptions
{
    std::uint64_t seed = 1;
    int count = 100;
    /** Worker threads (0 = ThreadPool default). */
    unsigned jobs = 0;
    /** Seconds; 0 = no budget (run all count cases). */
    double timeBudgetSec = 0;
    /** Shrink every failure after the sweep (serially, in order). */
    bool shrinkFailures = false;
    GenOptions gen;
    OracleOptions oracle;
    ShrinkOptions shrinkOpts;
};

/** One failing case with everything needed to reproduce it. */
struct Failure
{
    std::uint64_t caseSeed = 0;
    Verdict verdict;
    /** Rendered program (with its seed header). */
    std::string source;
    /** Shrunk rendering (empty when shrinking was off). */
    std::string shrunkSource;
    /** Shrunk clause count (0 when shrinking was off). */
    std::size_t shrunkClauses = 0;
};

/** Campaign outcome. */
struct CampaignResult
{
    /** Cases actually run (== count unless the budget hit). */
    int executed = 0;
    int passed = 0;
    std::vector<Failure> failures;
};

/** The seed of case @p index in a campaign (stable contract: the
 *  same value --replay'd alone regenerates the same program). */
std::uint64_t caseSeed(std::uint64_t campaignSeed, int index);

/**
 * Run the campaign. @p progress, when non-null, receives one line
 * per failing case as it is collected (for CLI feedback).
 */
CampaignResult
runCampaign(const CampaignOptions &opts,
            const std::function<void(const std::string &)> &progress =
                nullptr);

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_CAMPAIGN_HH
