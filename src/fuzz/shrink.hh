/**
 * @file
 * Delta-debugging shrinker (DESIGN.md §12).
 *
 * Given a failing program, greedily minimise it while preserving the
 * verdict *class*, so the reduced artifact still demonstrates the
 * same kind of bug (the failing configuration may legitimately shift
 * while shrinking and is not pinned):
 *
 *  1. clause level — ddmin over whole clauses;
 *  2. goal level — ddmin over each remaining clause's body goals;
 *  3. term level — greedy rewrites replacing subterms with simpler
 *     ones (a small integer, an empty list, a bare argument);
 *  4. a final 1-minimality sweep proving no single clause or goal
 *     can still be removed.
 *
 * Reductions that break compilation are rejected naturally: the
 * candidate's verdict class becomes CompileReject, which differs
 * from the target class (unless the target *is* CompileReject, in
 * which case a smaller program with the same reject is exactly what
 * we want). Every probe re-runs the full oracle, so the probe budget
 * bounds shrink cost.
 */

#ifndef SYMBOL_FUZZ_SHRINK_HH
#define SYMBOL_FUZZ_SHRINK_HH

#include "fuzz/ast.hh"
#include "fuzz/oracle.hh"

namespace symbol::fuzz
{

/** Shrink knobs. */
struct ShrinkOptions
{
    /** Hard cap on oracle probes (each probe = one full oracle
     *  run over all configs). */
    int maxProbes = 600;
};

/** Outcome of a shrink. */
struct ShrinkResult
{
    FProgram program;
    /** Verdict of the shrunk program (same class as the input). */
    Verdict verdict;
    int probes = 0;
    /** True when the final sweep proved 1-minimality at clause and
     *  goal granularity (false when the probe budget ran out). */
    bool minimal = false;
};

/**
 * Shrink @p prog, whose oracle verdict must be a failure (throws
 * RuntimeError if it passes). @p oopts must be the options the
 * failure was found with (including any fault-injection hook).
 */
ShrinkResult shrink(const FProgram &prog, const OracleOptions &oopts,
                    const ShrinkOptions &sopts = {});

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_SHRINK_HH
