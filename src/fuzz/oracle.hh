/**
 * @file
 * Differential oracle (DESIGN.md §12): run one Prolog program through
 * every front-end configuration, using the sequential IntCode
 * emulator as ground truth against the VLIW simulator.
 *
 * Per configuration the oracle checks, in order:
 *  - the program compiles (a reject is its own verdict class — the
 *    generator is supposed to emit only compilable programs, so a
 *    reject flags a generator or front-end bug);
 *  - the static IR analyzer (check::analyze) reports no errors;
 *  - profile invariants: sum(Expect) equals the executed instruction
 *    count, and the sequential machine never takes fewer cycles than
 *    instructions;
 *  - the independent schedule verifier (verify::checkSchedule)
 *    accepts the compacted code;
 *  - the VLIW run reports no latency violations or bad-unit ops;
 *  - seq and VLIW agree on ending status and on the out/1 stream.
 * Across configurations, all decoded sequential outputs must agree
 * when every configuration halted cleanly.
 *
 * A fault-injection hook mutates the compacted code before
 * verification/simulation so tests can prove the oracle catches every
 * illegal-schedule class end to end.
 */

#ifndef SYMBOL_FUZZ_ORACLE_HH
#define SYMBOL_FUZZ_ORACLE_HH

#include <functional>
#include <string>
#include <vector>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "machine/config.hh"
#include "vliw/sim.hh"

namespace symbol::fuzz
{

/** One front-end configuration to differentiate against. */
struct FrontConfig
{
    std::string name;
    bamc::CompilerOptions compiler;
    intcode::TranslateOptions translate;
};

/** The three standard configurations: default, expand-tags (RISC
 *  without branch-on-tag), no-indexing (plain try/retry chains). */
const std::vector<FrontConfig> &defaultConfigs();

/** Verdict classes, ordered roughly by how alarming they are. */
enum class VerdictClass : std::uint8_t
{
    Pass,
    CompileReject,       ///< front end rejected the program
    CrossConfigMismatch, ///< configs disagree on the seq answer
    OutputMismatch,      ///< VLIW out/1 stream differs from seq
    StatusMismatch,      ///< VLIW ending status differs from seq
    VerifyViolation,     ///< independent verifier rejected a schedule
    InvariantViolation,  ///< analyzer error / profile or sim counter
    Crash,               ///< unexpected exception in the pipeline
};

/** Stable name ("pass", "compile-reject", ...). */
const char *verdictClassName(VerdictClass c);

/** What one configuration did (for reports and shrinking). */
struct ConfigReport
{
    std::string config;
    emul::RunStatus seqStatus = emul::RunStatus::Ok;
    vliw::SimStatus vliwStatus = vliw::SimStatus::Ok;
    std::string seqText;  ///< decoded sequential out/1 stream
    std::string vliwText; ///< decoded VLIW out/1 stream
    std::uint64_t instructions = 0;
    std::uint64_t seqCycles = 0;
    std::uint64_t vliwCycles = 0;
};

/** The oracle's overall judgement of one program. */
struct Verdict
{
    VerdictClass cls = VerdictClass::Pass;
    /** Config where the first failure was observed ("" if n/a). */
    std::string config;
    std::string detail;
    std::vector<ConfigReport> reports;

    bool pass() const { return cls == VerdictClass::Pass; }
    /** One-line "class [config]: detail" summary. */
    std::string str() const;
};

/** Oracle knobs. */
struct OracleOptions
{
    /** Configurations to differentiate (empty = defaultConfigs()). */
    std::vector<FrontConfig> configs;
    machine::MachineConfig machine =
        machine::MachineConfig::idealShared(3);
    /** Emulator step budget; hitting it is a StepLimit status, not a
     *  hang — generated programs terminate far below this. */
    std::uint64_t maxSteps = 50'000'000;
    std::uint64_t maxCycles = 100'000'000;
    bool runVerifier = true;
    bool runAnalyzer = true;
    /**
     * Test hook: mutate the compacted code of the named config
     * before it is verified and simulated (fault injection — the
     * oracle must then report the program as failing).
     */
    std::function<void(vliw::Code &, const FrontConfig &)>
        injectFault;
};

/** Judge @p source (a complete program defining main/0). */
Verdict runOracle(const std::string &source,
                  const OracleOptions &opts = {});

} // namespace symbol::fuzz

#endif // SYMBOL_FUZZ_ORACLE_HH
