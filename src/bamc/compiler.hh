/**
 * @file
 * The Prolog→BAM compiler (§2 and §3.1 of the paper).
 *
 * Reconstructs the structurally important features of Van Roy's
 * Aquarius/BAM compiler:
 *  - determinism extraction by first-argument indexing: a tag switch
 *    at every predicate entry, constant/functor dispatch chains that
 *    avoid creating choice points for mutually exclusive clauses;
 *  - specialised unification: head unification compiled into separate
 *    read-mode and write-mode code paths (no runtime S register or
 *    mode bit), with general unification only for variable-variable
 *    cases;
 *  - WAM-style environment and choice-point management with last-call
 *    optimisation and conditional trailing;
 *  - inline expansion of arithmetic and type-test builtins.
 *
 * The compiled module contains a '$start' prologue that initialises
 * the machine state, the runtime routines ('$fail', '$unify',
 * '$out_term') written directly in BAM code, and one code region per
 * predicate. Programs signal their results through the out/1 builtin,
 * which emits an address-free linearisation of a term to the
 * observable output channel; a query that fails emits a sentinel word
 * (<Fun,-1>) that no term linearisation can contain.
 */

#ifndef SYMBOL_BAMC_COMPILER_HH
#define SYMBOL_BAMC_COMPILER_HH

#include "bam/instr.hh"
#include "bamc/normalize.hh"
#include "prolog/parser.hh"

namespace symbol::bamc
{

/** Compiler configuration. */
struct CompilerOptions
{
    /** Enable first-argument indexing (switch_tag + dispatch chains).
     *  When off, every predicate is a plain try/retry/trust chain —
     *  the pre-BAM "naive WAM" behaviour, exposed for ablations. */
    bool indexing = true;
    /** Annotate stores into freshly allocated heap cells so the
     *  back end may disambiguate them from other memory accesses. */
    bool markFreshHeapStores = true;
};

/**
 * Compile @p prog into a BAM module. The program must define main/0,
 * which becomes the query goal.  Throws CompileError for malformed
 * programs or calls to undefined predicates.
 */
bam::Module compile(prolog::Program &prog,
                    const CompilerOptions &opts = {});

/**
 * Compile from an already-normalised program (the pass pipeline runs
 * normalize() as its own stage). @p flat must have been produced by
 * normalize(@p prog); it is consumed.
 */
bam::Module compile(prolog::Program &prog, FlatProgram &&flat,
                    const CompilerOptions &opts = {});

} // namespace symbol::bamc

#endif // SYMBOL_BAMC_COMPILER_HH
