#include "bamc/compiler.hh"

#include <algorithm>
#include <map>

#include "bamc/emit.hh"
#include "support/text.hh"

namespace symbol::bamc
{

using prolog::Term;
using prolog::TermKind;
using prolog::TermPool;
using R = bam::Regs;
using CF = bam::ChoiceFrame;
using EF = bam::EnvFrame;

namespace
{

/** How a clause instance is entered at run time; decides where the
 *  pre-call B (the cut barrier) can be found. */
enum class EntryMode
{
    Det,        ///< no choice point owned by this predicate
    AfterTry,   ///< this predicate's choice point is on top
    AfterTrust, ///< the predicate's choice point was just popped
};

/** What is statically known about the (dereferenced) first argument
 *  when a clause instance starts. */
struct Ctx
{
    enum class K
    {
        Unknown,        ///< nothing known, full unification
        KnownRef,       ///< an unbound variable (write mode)
        TagKnown,       ///< tag known, value/functor unchecked
        ConstMatched,   ///< constant fully matched, skip the argument
        FunctorMatched, ///< structure with verified functor word
    };
    K k = K::Unknown;
    Tag tag = Tag::Ref;
};

/** Principal shape of a clause's first argument. */
enum class ArgShape { Var, AtomC, IntC, List, Struct };

class Compiler : public Emit
{
  public:
    Compiler(prolog::Program &prog, bam::Module &m,
             const CompilerOptions &opts)
        : Compiler(prog, m, opts, normalize(prog))
    {
    }

    Compiler(prolog::Program &prog, bam::Module &m,
             const CompilerOptions &opts, FlatProgram &&flat)
        : Emit(m), pool_(prog.pool), in_(prog.pool.interner()),
          opts_(opts), flat_(std::move(flat))
    {
    }

    void
    run()
    {
        PredKey main_key{in_.intern("main"), 0};
        if (!flat_.find(main_key))
            throw CompileError("program does not define main/0");

        RuntimeLabels labels;
        labels.start = nl();
        labels.fail = nl();
        labels.unify = nl();
        labels.outTerm = nl();
        labels.halt = nl();
        labels.queryFail = nl();
        m_.entryLabel = labels.start;
        m_.failLabel = labels.fail;
        labels_ = labels;

        emitRuntime(*this, labels_, labelFor(main_key));
        for (const FlatPred &p : flat_.preds)
            compilePred(p);
    }

  private:
    TermPool &pool_;
    Interner &in_;
    CompilerOptions opts_;
    FlatProgram flat_;
    RuntimeLabels labels_;
    std::map<PredKey, int> predLabels_;

    // --- Per-clause state -------------------------------------------
    struct Home
    {
        bool perm = false;
        int slot = -1;
        int temp = -1;
        bool init = false;
    };
    const FlatClause *cl_ = nullptr;
    std::map<int, Home> homes_;
    bool ended_ = false;
    int callsSeen_ = 0;
    int cutTemp_ = -1;
    /**
     * Read/write-mode convergence: variables whose first occurrence
     * is inside a split head structure must end up in the *same* home
     * on both paths. The write path re-initialises them and this map
     * forces buildTerm to reuse the read path's home temporary.
     */
    std::map<int, int> forcedTemp_;

    int
    labelFor(const PredKey &key)
    {
        auto it = predLabels_.find(key);
        if (it != predLabels_.end())
            return it->second;
        int lab = nl();
        predLabels_[key] = lab;
        m_.procEntry[keyName(key)] = lab;
        return lab;
    }

    std::string
    keyName(const PredKey &key) const
    {
        return strprintf("%s/%d", in_.name(key.name).c_str(),
                         key.arity);
    }

    ArgShape
    shapeOf(const FlatClause &fc) const
    {
        TermId a0 = pool_.at(fc.head).args[0];
        const Term &t = pool_.at(a0);
        switch (t.kind) {
          case TermKind::Var: return ArgShape::Var;
          case TermKind::Atom: return ArgShape::AtomC;
          case TermKind::Int: return ArgShape::IntC;
          case TermKind::Struct:
            return pool_.isCons(a0) ? ArgShape::List : ArgShape::Struct;
        }
        return ArgShape::Var;
    }

    // --- Predicate-level indexing -----------------------------------

    void
    compilePred(const FlatPred &p)
    {
        procedure(labelFor(p.key), keyName(p.key));
        std::vector<const FlatClause *> all;
        for (const FlatClause &c : p.clauses)
            all.push_back(&c);

        bool no_index = !opts_.indexing || p.key.arity < 1 ||
                        p.clauses.size() < 2;
        if (!no_index) {
            no_index = std::all_of(p.clauses.begin(), p.clauses.end(),
                                   [&](const FlatClause &c) {
                                       return shapeOf(c) ==
                                              ArgShape::Var;
                                   });
        }
        if (no_index) {
            chain(all, Ctx{}, p.key.arity);
            return;
        }

        // First-argument indexing: dereference A0 in place, then
        // dispatch on its tag.
        derefE(rg(R::arg(0)), R::arg(0));
        int lvar = nl(), latm = nl(), lint = nl(), llst = nl(),
            lstr = nl();
        switchTag(R::arg(0), lvar, latm, lint, llst, lstr);

        label(lvar);
        chain(all, Ctx{Ctx::K::KnownRef, Tag::Ref}, p.key.arity);

        label(latm);
        constClassChain(p, ArgShape::AtomC, Tag::Atm);
        label(lint);
        constClassChain(p, ArgShape::IntC, Tag::Int);

        label(llst);
        chain(applicable(p, ArgShape::List),
              Ctx{Ctx::K::TagKnown, Tag::Lst}, p.key.arity);

        label(lstr);
        functorClassChain(p);
    }

    std::vector<const FlatClause *>
    applicable(const FlatPred &p, ArgShape shape) const
    {
        std::vector<const FlatClause *> out;
        for (const FlatClause &c : p.clauses) {
            ArgShape s = shapeOf(c);
            if (s == ArgShape::Var || s == shape)
                out.push_back(&c);
        }
        return out;
    }

    bool
    anyVarFirst(const std::vector<const FlatClause *> &cls) const
    {
        return std::any_of(cls.begin(), cls.end(),
                           [&](const FlatClause *c) {
                               return shapeOf(*c) == ArgShape::Var;
                           });
    }

    /** Constant key of a clause's first argument for grouping. */
    std::int64_t
    constKey(const FlatClause &fc) const
    {
        const Term &t = pool_.at(pool_.at(fc.head).args[0]);
        return t.kind == TermKind::Atom ? t.functor : t.value;
    }

    void
    constClassChain(const FlatPred &p, ArgShape shape, Tag tag)
    {
        auto cls = applicable(p, shape);
        if (cls.empty()) {
            eI(base(Op::Fail));
            return;
        }
        if (anyVarFirst(cls)) {
            // Mixed constants and variables: fall back to a plain
            // chain with only the tag knowledge retained.
            chain(cls, Ctx{Ctx::K::TagKnown, tag}, p.key.arity);
            return;
        }
        // Mutually exclusive constants: deterministic dispatch, no
        // choice point across groups.
        std::vector<std::pair<std::int64_t,
                              std::vector<const FlatClause *>>> groups;
        for (const FlatClause *c : cls) {
            std::int64_t k = constKey(*c);
            auto it = std::find_if(groups.begin(), groups.end(),
                                   [&](const auto &g) {
                                       return g.first == k;
                                   });
            if (it == groups.end())
                groups.push_back({k, {c}});
            else
                it->second.push_back(c);
        }
        for (const auto &[k, group] : groups) {
            int lnext = nl();
            eqB(Cond::Ne, rg(R::arg(0)), Operand::mkImm(tag, k), lnext);
            chain(group, Ctx{Ctx::K::ConstMatched, tag}, p.key.arity);
            label(lnext);
        }
        eI(base(Op::Fail));
    }

    void
    functorClassChain(const FlatPred &p)
    {
        auto cls = applicable(p, ArgShape::Struct);
        if (cls.empty()) {
            eI(base(Op::Fail));
            return;
        }
        if (anyVarFirst(cls)) {
            chain(cls, Ctx{Ctx::K::TagKnown, Tag::Str}, p.key.arity);
            return;
        }
        std::vector<std::pair<std::int64_t,
                              std::vector<const FlatClause *>>> groups;
        auto fkey = [&](const FlatClause &fc) {
            TermId a0 = pool_.at(fc.head).args[0];
            const Term &t = pool_.at(a0);
            return bam::functorValue(t.functor,
                                     static_cast<int>(t.args.size()));
        };
        for (const FlatClause *c : cls) {
            std::int64_t k = fkey(*c);
            auto it = std::find_if(groups.begin(), groups.end(),
                                   [&](const auto &g) {
                                       return g.first == k;
                                   });
            if (it == groups.end())
                groups.push_back({k, {c}});
            else
                it->second.push_back(c);
        }
        int fw = nt();
        ld(fw, R::arg(0), 0);
        for (const auto &[k, group] : groups) {
            int lnext = nl();
            eqB(Cond::Ne, rg(fw), Operand::mkImm(Tag::Fun, k), lnext);
            chain(group, Ctx{Ctx::K::FunctorMatched, Tag::Str},
                  p.key.arity);
            label(lnext);
        }
        eI(base(Op::Fail));
    }

    /** Emit a try/retry/trust chain over @p cls. */
    void
    chain(const std::vector<const FlatClause *> &cls, Ctx ctx,
          int arity)
    {
        if (cls.empty()) {
            eI(base(Op::Fail));
            return;
        }
        if (cls.size() == 1) {
            compileClause(*cls[0], ctx, EntryMode::Det);
            return;
        }
        std::vector<int> retries;
        for (std::size_t i = 1; i < cls.size(); ++i)
            retries.push_back(nl());

        Instr t = base(Op::Try);
        t.off = arity;
        t.labs[0] = retries[0];
        eI(t);
        compileClause(*cls[0], ctx, EntryMode::AfterTry);

        for (std::size_t i = 1; i < cls.size(); ++i) {
            label(retries[i - 1]);
            if (i + 1 < cls.size()) {
                Instr r = base(Op::Retry);
                r.off = arity;
                r.labs[0] = retries[i];
                eI(r);
                compileClause(*cls[i], ctx, EntryMode::AfterTry);
            } else {
                Instr r = base(Op::Trust);
                r.off = arity;
                eI(r);
                compileClause(*cls[i], ctx, EntryMode::AfterTrust);
            }
        }
    }

    // --- Clause compilation ------------------------------------------

    Home &
    home(int var_id)
    {
        auto it = homes_.find(var_id);
        panicIf(it == homes_.end(), "unclassified variable");
        return it->second;
    }

    Operand
    loadHome(int var_id)
    {
        Home &h = home(var_id);
        panicIf(!h.init, "loadHome before initialisation");
        if (!h.perm)
            return rg(h.temp);
        int t = nt();
        ld(t, R::kE, EF::kPerms + h.slot);
        return rg(t);
    }

    void
    setHome(int var_id, Operand value, bool copy_reg)
    {
        Home &h = home(var_id);
        panicIf(h.init, "setHome on initialised variable");
        h.init = true;
        if (h.perm) {
            st(R::kE, EF::kPerms + h.slot, value);
            return;
        }
        if (value.isReg() && !copy_reg) {
            h.temp = value.reg;
            return;
        }
        int t = nt();
        mov(value, t);
        h.temp = t;
    }

    void
    compileClause(const FlatClause &fc, Ctx ctx, EntryMode mode)
    {
        cl_ = &fc;
        homes_.clear();
        for (const auto &[var, slot] : fc.vars) {
            Home h;
            h.perm = slot.isPerm;
            h.slot = slot.slot;
            homes_[var] = h;
        }
        ended_ = false;
        callsSeen_ = 0;
        cutTemp_ = -1;

        if (fc.hasCut) {
            cutTemp_ = nt();
            if (mode == EntryMode::AfterTry)
                ld(cutTemp_, R::kB, CF::kPrevB);
            else
                mov(rg(R::kB), cutTemp_);
        }
        if (fc.needsEnv) {
            Instr a = base(Op::Allocate);
            a.off = fc.numPerms;
            eI(a);
        }
        if (fc.cutNeedsSlot)
            st(R::kE, EF::kPerms + fc.cutSlot, rg(cutTemp_));

        const Term &head = pool_.at(fc.head);
        for (std::size_t i = 0; i < head.args.size(); ++i)
            getArg(head.args[i], R::arg(static_cast<int>(i)),
                   i == 0 ? &ctx : nullptr);

        for (std::size_t gi = 0; gi < fc.goals.size() && !ended_; ++gi)
            compileGoal(fc.goals[gi], gi + 1 == fc.goals.size());

        if (!ended_) {
            if (fc.needsEnv)
                eI(base(Op::Deallocate));
            Instr r = base(Op::Return);
            r.off = R::kCp;
            eI(r);
        }
    }

    // --- Head unification (get) --------------------------------------

    Operand
    constOf(TermId t) const
    {
        const Term &term = pool_.at(t);
        return term.kind == TermKind::Atom
                   ? Operand::mkImm(Tag::Atm, term.functor)
                   : Operand::mkImm(Tag::Int, term.value);
    }

    void
    getArg(TermId t, int src, const Ctx *ctx)
    {
        const Term &term = pool_.at(t);
        switch (term.kind) {
          case TermKind::Var: {
            Home &h = home(term.varId);
            if (!h.init)
                setHome(term.varId, rg(src), true);
            else
                emitUnifyCall(loadHome(term.varId), rg(src));
            return;
          }
          case TermKind::Int:
          case TermKind::Atom: {
            Operand c = constOf(t);
            if (ctx && ctx->k == Ctx::K::ConstMatched)
                return;
            if (ctx && ctx->k == Ctx::K::KnownRef) {
                bind(src, c);
                return;
            }
            if (ctx && ctx->k == Ctx::K::TagKnown) {
                eqB(Cond::Ne, rg(src), c, m_.failLabel);
                return;
            }
            int d = nt();
            derefE(rg(src), d);
            int l_check = nl(), l_cont = nl();
            testTag(Cond::Ne, d, Tag::Ref, l_check);
            bind(d, c);
            jump(l_cont);
            label(l_check);
            eqB(Cond::Ne, rg(d), c, m_.failLabel);
            label(l_cont);
            return;
          }
          case TermKind::Struct:
            getStruct(t, src, ctx);
            return;
        }
    }

    void
    readArgs(TermId t, int base_reg)
    {
        const Term &term = pool_.at(t);
        int first_off = pool_.isCons(t) ? 0 : 1;
        for (std::size_t j = 0; j < term.args.size(); ++j) {
            int tj = nt();
            ld(tj, base_reg, first_off + static_cast<int>(j));
            getArg(term.args[j], tj, nullptr);
        }
    }

    void
    getStruct(TermId t, int src, const Ctx *ctx)
    {
        const Term &term = pool_.at(t);
        bool is_list = pool_.isCons(t);
        Tag want = is_list ? Tag::Lst : Tag::Str;
        int n = static_cast<int>(term.args.size());

        if (ctx && (ctx->k == Ctx::K::FunctorMatched ||
                    (ctx->k == Ctx::K::TagKnown && is_list &&
                     ctx->tag == Tag::Lst))) {
            readArgs(t, src);
            return;
        }
        if (ctx && ctx->k == Ctx::K::KnownRef) {
            Operand v = buildTerm(t);
            bind(src, v);
            return;
        }
        if (ctx && ctx->k == Ctx::K::TagKnown && !is_list) {
            int f = nt();
            ld(f, src, 0);
            eqB(Cond::Ne, rg(f),
                Operand::mkImm(Tag::Fun,
                               bam::functorValue(term.functor, n)),
                m_.failLabel);
            readArgs(t, src);
            return;
        }

        // Unknown: dereference and split into read and write paths.
        int d = nt();
        derefE(rg(src), d);
        int l_write = nl(), l_cont = nl();
        testTag(Cond::Eq, d, Tag::Ref, l_write);
        testTag(Cond::Ne, d, want, m_.failLabel);
        if (!is_list) {
            int f = nt();
            ld(f, d, 0);
            eqB(Cond::Ne, rg(f),
                Operand::mkImm(Tag::Fun,
                               bam::functorValue(term.functor, n)),
                m_.failLabel);
        }
        // Variables first initialised by the read path must land in
        // the same homes on the write path (only one path executes).
        std::map<int, bool> before;
        for (const auto &[var, h] : homes_)
            before[var] = h.init;
        readArgs(t, d);
        jump(l_cont);
        label(l_write);
        std::map<int, int> saved_forced = forcedTemp_;
        for (auto &[var, h] : homes_) {
            if (h.init && !before[var]) {
                h.init = false;
                if (!h.perm)
                    forcedTemp_[var] = h.temp;
            }
        }
        Operand v = buildTerm(t);
        forcedTemp_ = std::move(saved_forced);
        bind(d, v);
        label(l_cont);
    }

    // --- Term construction (put / write mode) ------------------------

    Operand
    buildTerm(TermId t)
    {
        const Term &term = pool_.at(t);
        switch (term.kind) {
          case TermKind::Var: {
            Home &h = home(term.varId);
            if (h.init)
                return loadHome(term.varId);
            // Fresh variable: allocate an unbound heap cell. Keeping
            // all unbound cells on the heap sidesteps the classic
            // unsafe-variable problem.
            int tr = nt();
            mkTag(Tag::Ref, R::kH, tr);
            st(R::kH, 0, rg(tr), opts_.markFreshHeapStores);
            arith(AluOp::Add, rg(R::kH), ii(1), R::kH);
            auto forced = forcedTemp_.find(term.varId);
            if (forced != forcedTemp_.end()) {
                // Converge with the read path's home temporary.
                mov(rg(tr), forced->second);
                Home &h = home(term.varId);
                h.init = true;
                h.temp = forced->second;
                return rg(forced->second);
            }
            setHome(term.varId, rg(tr), false);
            return rg(tr);
          }
          case TermKind::Int:
          case TermKind::Atom:
            return constOf(t);
          case TermKind::Struct: {
            bool is_list = pool_.isCons(t);
            int n = static_cast<int>(term.args.size());
            int first_off = is_list ? 0 : 1;
            int tb = nt();
            mov(rg(R::kH), tb);
            arith(AluOp::Add, rg(R::kH), ii(is_list ? 2 : n + 1),
                  R::kH);
            if (!is_list)
                st(tb, 0,
                   Operand::mkImm(Tag::Fun,
                                  bam::functorValue(term.functor, n)),
                   opts_.markFreshHeapStores);
            for (int j = 0; j < n; ++j) {
                Operand v =
                    buildTerm(term.args[static_cast<std::size_t>(j)]);
                st(tb, first_off + j, v, opts_.markFreshHeapStores);
            }
            int tp = nt();
            mkTag(is_list ? Tag::Lst : Tag::Str, tb, tp);
            return rg(tp);
          }
        }
        panic("buildTerm: unreachable");
    }

    // --- Goals --------------------------------------------------------

    void
    emitUnifyCall(Operand a, Operand b)
    {
        mov(a, R::kU1);
        mov(b, R::kU2);
        callTo(labels_.unify, R::kRr, "$unify");
        cmpB(Cond::Eq, rg(R::kU0), ii(0), m_.failLabel);
    }

    void
    compileGoal(TermId g, bool is_last)
    {
        const Term &gt = pool_.at(g);
        const std::string &name = in_.name(gt.functor);
        int n = static_cast<int>(gt.args.size());

        if (gt.kind == TermKind::Atom && name == "!") {
            Operand b0;
            if (callsSeen_ > 0) {
                int t = nt();
                ld(t, R::kE, EF::kPerms + cl_->cutSlot);
                b0 = rg(t);
            } else {
                b0 = rg(cutTemp_);
            }
            Instr c = base(Op::Cut);
            c.a = b0;
            eI(c);
            return;
        }
        if (isBuiltin(in_, gt.functor, n)) {
            compileBuiltin(name, g);
            return;
        }

        // User predicate call.
        PredKey key{gt.functor, n};
        if (!flat_.find(key))
            throw CompileError("call to undefined predicate " +
                               keyName(key));
        for (int i = 0; i < n; ++i) {
            Operand v = buildTerm(gt.args[static_cast<std::size_t>(i)]);
            mov(v, R::arg(i));
        }
        if (is_last) {
            // Last-call optimisation: reuse the caller's frame.
            if (cl_->needsEnv)
                eI(base(Op::Deallocate));
            jump(labelFor(key));
            ended_ = true;
        } else {
            callTo(labelFor(key), R::kCp, keyName(key));
            ++callsSeen_;
        }
    }

    /** Evaluate an arithmetic expression; returns an <Int,_> operand. */
    Operand
    evalArith(TermId t)
    {
        const Term &term = pool_.at(t);
        switch (term.kind) {
          case TermKind::Int:
            return ii(term.value);
          case TermKind::Var: {
            Home &h = home(term.varId);
            if (!h.init)
                throw CompileError(
                    "arithmetic on an unbound variable");
            int d = nt();
            derefE(loadHome(term.varId), d);
            testTag(Cond::Ne, d, Tag::Int, m_.failLabel);
            return rg(d);
          }
          case TermKind::Atom:
            throw CompileError("atom '" + in_.name(term.functor) +
                               "' in arithmetic expression");
          case TermKind::Struct: {
            const std::string &op = in_.name(term.functor);
            if (term.args.size() == 1) {
                if (op == "-") {
                    Operand v = evalArith(term.args[0]);
                    int r = nt();
                    arith(AluOp::Sub, ii(0), v, r);
                    return rg(r);
                }
                if (op == "+")
                    return evalArith(term.args[0]);
                throw CompileError("unknown arithmetic functor " + op);
            }
            if (term.args.size() != 2)
                throw CompileError("unknown arithmetic functor " + op);
            static const std::map<std::string, AluOp> ops = {
                {"+", AluOp::Add},   {"-", AluOp::Sub},
                {"*", AluOp::Mul},   {"//", AluOp::Div},
                {"/", AluOp::Div},   {"mod", AluOp::Mod},
                {"rem", AluOp::Mod}, {">>", AluOp::Sra},
                {"<<", AluOp::Sll},  {"/\\", AluOp::And},
                {"\\/", AluOp::Or},  {"xor", AluOp::Xor},
            };
            auto it = ops.find(op);
            if (it == ops.end())
                throw CompileError("unknown arithmetic functor " + op);
            Operand a = evalArith(term.args[0]);
            Operand b = evalArith(term.args[1]);
            int r = nt();
            arith(it->second, a, b, r);
            return rg(r);
        }
        }
        panic("evalArith: unreachable");
    }

    /** Home operand of a term for ==, type tests and output: creates
     *  a fresh heap cell for first-occurrence variables. */
    Operand
    valueOf(TermId t)
    {
        return buildTerm(t);
    }

    /** Dereferenced value for ==/\== and type tests. */
    Operand
    derefValue(TermId t)
    {
        Operand v = valueOf(t);
        if (v.isImm())
            return v;
        int d = nt();
        derefE(v, d);
        return rg(d);
    }

    void
    bindResult(TermId lhs, Operand value)
    {
        const Term &t = pool_.at(lhs);
        if (t.kind == TermKind::Var && !home(t.varId).init) {
            setHome(t.varId, value, true);
            return;
        }
        emitUnifyCall(valueOf(lhs), value);
    }

    void
    compileBuiltin(const std::string &name, TermId g)
    {
        const Term &gt = pool_.at(g);
        auto arg = [&](int i) {
            return gt.args[static_cast<std::size_t>(i)];
        };

        if (name == "true")
            return;
        if (name == "fail" || name == "false") {
            eI(base(Op::Fail));
            ended_ = true;
            return;
        }
        if (name == "halt") {
            eI(base(Op::Halt));
            ended_ = true;
            return;
        }
        if (name == "=") {
            emitUnifyCall(valueOf(arg(0)), valueOf(arg(1)));
            return;
        }
        if (name == "is") {
            bindResult(arg(0), evalArith(arg(1)));
            return;
        }
        if (name == "<" || name == ">" || name == "=<" ||
            name == ">=" || name == "=:=" || name == "=\\=") {
            // Branch to $fail on the *negated* condition.
            static const std::map<std::string, Cond> neg = {
                {"<", Cond::Ge},   {">", Cond::Le},
                {"=<", Cond::Gt},  {">=", Cond::Lt},
                {"=:=", Cond::Ne}, {"=\\=", Cond::Eq},
            };
            Operand a = evalArith(arg(0));
            Operand b = evalArith(arg(1));
            cmpB(neg.at(name), a, b, m_.failLabel);
            return;
        }
        if (name == "==" || name == "\\==") {
            Operand a = derefValue(arg(0));
            Operand b = derefValue(arg(1));
            eqB(name == "==" ? Cond::Ne : Cond::Eq, a, b,
                m_.failLabel);
            return;
        }
        if (name == "var" || name == "nonvar" || name == "atom" ||
            name == "integer") {
            Operand v = derefValue(arg(0));
            int d;
            if (v.isImm()) {
                d = nt();
                mov(v, d);
            } else {
                d = v.reg;
            }
            Tag want = name == "var" || name == "nonvar"
                           ? Tag::Ref
                           : (name == "atom" ? Tag::Atm : Tag::Int);
            testTag(name == "nonvar" ? Cond::Eq : Cond::Ne, d, want,
                    m_.failLabel);
            return;
        }
        if (name == "atomic") {
            Operand v = derefValue(arg(0));
            int d;
            if (v.isImm()) {
                d = nt();
                mov(v, d);
            } else {
                d = v.reg;
            }
            testTag(Cond::Eq, d, Tag::Ref, m_.failLabel);
            testTag(Cond::Eq, d, Tag::Lst, m_.failLabel);
            testTag(Cond::Eq, d, Tag::Str, m_.failLabel);
            return;
        }
        if (name == "out") {
            mov(valueOf(arg(0)), R::kU1);
            callTo(labels_.outTerm, R::kRr, "$out_term");
            return;
        }
        throw CompileError("unimplemented builtin " + name);
    }
};

} // namespace

bam::Module
compile(prolog::Program &prog, const CompilerOptions &opts)
{
    return compile(prog, normalize(prog), opts);
}

bam::Module
compile(prolog::Program &prog, FlatProgram &&flat,
        const CompilerOptions &opts)
{
    bam::Module m(prog.pool.interner());
    Compiler c(prog, m, opts, std::move(flat));
    c.run();
    return m;
}

} // namespace symbol::bamc
