/**
 * @file
 * Internal emission helpers shared by the clause compiler and the
 * hand-written BAM runtime routines.
 *
 * Temporaries are allocated from a single monotonic counter for the
 * whole module: every expansion site gets fresh virtual registers,
 * which is the "variable renaming procedure to eliminate redundant
 * data-dependencies" of §3.1 — the back end never sees false
 * dependencies between unrelated temporaries.
 */

#ifndef SYMBOL_BAMC_EMIT_HH
#define SYMBOL_BAMC_EMIT_HH

#include "bam/instr.hh"

namespace symbol::bamc
{

using bam::AluOp;
using bam::Cond;
using bam::Instr;
using bam::Op;
using bam::Operand;
using bam::Tag;

/** Thin instruction-building wrapper around a bam::Module. */
class Emit
{
  public:
    explicit Emit(bam::Module &m) : m_(m) {}

    bam::Module &module() { return m_; }

    /** Fresh label. */
    int nl() { return m_.newLabel(); }

    /** Fresh temporary register (module-wide unique). */
    int nt() { return nextTemp_++; }

    /** @name Operand shorthands */
    /** @{ */
    static Operand rg(int r) { return Operand::mkReg(r); }
    static Operand ii(std::int64_t v)
    {
        return Operand::mkImm(Tag::Int, v);
    }
    static Operand ia(AtomId a) { return Operand::mkImm(Tag::Atm, a); }
    static Operand
    ic(int label)
    {
        return Operand::mkImm(Tag::Cod, label);
    }
    static Operand
    ifn(AtomId f, int arity)
    {
        return Operand::mkImm(Tag::Fun, bam::functorValue(f, arity));
    }
    /** @} */

    Instr
    base(Op op)
    {
        Instr i;
        i.op = op;
        return i;
    }

    void eI(Instr i) { m_.emit(std::move(i)); }

    void
    label(int lab)
    {
        Instr i = base(Op::Label);
        i.labs[0] = lab;
        eI(i);
    }

    void
    procedure(int lab, const std::string &name)
    {
        Instr i = base(Op::Procedure);
        i.labs[0] = lab;
        i.comment = name;
        eI(i);
    }

    void
    mov(Operand src, int dst)
    {
        Instr i = base(Op::Move);
        i.a = src;
        i.b = rg(dst);
        eI(i);
    }

    void
    ld(int dst, int base_reg, int off)
    {
        Instr i = base(Op::Ld);
        i.a = rg(base_reg);
        i.b = rg(dst);
        i.off = off;
        eI(i);
    }

    void
    st(int base_reg, int off, Operand src, bool fresh = false)
    {
        Instr i = base(Op::St);
        i.a = rg(base_reg);
        i.b = src;
        i.off = off;
        i.fresh = fresh;
        eI(i);
    }

    void
    arith(AluOp op, Operand a, Operand b, int dst)
    {
        Instr i = base(Op::Arith);
        i.alu = op;
        i.a = a;
        i.b = b;
        i.c = rg(dst);
        eI(i);
    }

    void
    mkTag(Tag tag, int src, int dst)
    {
        Instr i = base(Op::MkTag);
        i.tag = tag;
        i.a = rg(src);
        i.b = rg(dst);
        eI(i);
    }

    void
    getTag(int src, int dst)
    {
        Instr i = base(Op::GetTag);
        i.a = rg(src);
        i.b = rg(dst);
        eI(i);
    }

    void
    jump(int lab)
    {
        Instr i = base(Op::Jump);
        i.labs[0] = lab;
        eI(i);
    }

    void
    jumpInd(int reg)
    {
        Instr i = base(Op::JumpInd);
        i.a = rg(reg);
        eI(i);
    }

    void
    testTag(Cond cond, int reg, Tag tag, int lab)
    {
        Instr i = base(Op::TestTag);
        i.cond = cond;
        i.tag = tag;
        i.a = rg(reg);
        i.labs[0] = lab;
        eI(i);
    }

    void
    cmpB(Cond cond, Operand a, Operand b, int lab)
    {
        Instr i = base(Op::CmpBranch);
        i.cond = cond;
        i.a = a;
        i.b = b;
        i.labs[0] = lab;
        eI(i);
    }

    void
    eqB(Cond cond, Operand a, Operand b, int lab)
    {
        Instr i = base(Op::EqualBranch);
        i.cond = cond;
        i.a = a;
        i.b = b;
        i.labs[0] = lab;
        eI(i);
    }

    void
    switchTag(int reg, int lref, int latm, int lint, int llst, int lstr)
    {
        Instr i = base(Op::SwitchTag);
        i.a = rg(reg);
        i.labs[0] = lref;
        i.labs[1] = latm;
        i.labs[2] = lint;
        i.labs[3] = llst;
        i.labs[4] = lstr;
        eI(i);
    }

    void
    derefE(Operand src, int dst)
    {
        Instr i = base(Op::Deref);
        i.a = src;
        i.b = rg(dst);
        eI(i);
    }

    void
    bind(int cell_reg, Operand val)
    {
        Instr i = base(Op::Bind);
        i.a = rg(cell_reg);
        i.b = val;
        eI(i);
    }

    void
    callTo(int lab, int link_reg, const std::string &comment = "")
    {
        Instr i = base(Op::Call);
        i.labs[0] = lab;
        i.off = link_reg;
        i.comment = comment;
        eI(i);
    }

    void
    out(Operand src)
    {
        Instr i = base(Op::Out);
        i.a = src;
        eI(i);
    }

  protected:
    bam::Module &m_;
    int nextTemp_ = bam::Regs::kT0;
};

/** Labels of the runtime routines every compiled program contains. */
struct RuntimeLabels
{
    int start = -1;     ///< $start prologue
    int fail = -1;      ///< $fail backtracking routine
    int unify = -1;     ///< $unify general unification
    int outTerm = -1;   ///< $out_term linearised output
    int halt = -1;      ///< successful-termination landing point
    int queryFail = -1; ///< query-failure landing point
};

/**
 * Emit the $start prologue (machine-state initialisation, the dummy
 * bottom environment and choice point, the call to main/0) and the
 * runtime routines. @p main_entry is the label of main/0.
 */
void emitRuntime(Emit &e, RuntimeLabels &labels, int main_entry);

} // namespace symbol::bamc

#endif // SYMBOL_BAMC_EMIT_HH
