/**
 * @file
 * The BAM-coded runtime library: $start, $fail, $unify, $out_term.
 *
 * These routines are ordinary BAM code built programmatically; they
 * are expanded to ICIs, profiled, scheduled and simulated exactly
 * like compiled predicate code, so their cost is part of every
 * measurement — as it was in the paper's toolchain.
 */

#include "bamc/emit.hh"

namespace symbol::bamc
{

using R = bam::Regs;
using CF = bam::ChoiceFrame;
using EF = bam::EnvFrame;
using L = bam::Layout;

namespace
{

/**
 * $fail: the backtracking routine. Restores H/HB, E, CP from the
 * current choice point, unwinds the trail, and jumps to the retry
 * address. Argument registers are restored by the retry/trust code
 * at the jump target, which knows the arity statically.
 */
void
emitFail(Emit &e, RuntimeLabels &labels)
{
    e.procedure(labels.fail, "$fail");
    int ttr = e.nt();
    int r = e.nt();
    int t = e.nt();
    int l_ut = e.nl();
    int l_jump = e.nl();

    e.ld(R::kH, R::kB, CF::kSavedH);
    e.mov(Emit::rg(R::kH), R::kHb);
    e.ld(R::kE, R::kB, CF::kSavedE);
    e.ld(R::kCp, R::kB, CF::kSavedCp);
    e.ld(ttr, R::kB, CF::kSavedTr);
    e.label(l_ut);
    e.cmpB(Cond::Eq, Emit::rg(R::kTr), Emit::rg(ttr), l_jump);
    e.arith(AluOp::Sub, Emit::rg(R::kTr), Emit::ii(1), R::kTr);
    e.ld(r, R::kTr, 0);
    // Reset the trailed cell to an unbound variable (self-reference).
    e.st(r, 0, Emit::rg(r));
    e.jump(l_ut);
    e.label(l_jump);
    e.ld(t, R::kB, CF::kRetry);
    e.jumpInd(t);
}

/**
 * $unify: iterative general unification over the push-down list.
 * In: U1, U2. Out: U0 = <Int,1> on success, <Int,0> on failure.
 * Link register: RR.
 */
void
emitUnify(Emit &e, RuntimeLabels &labels)
{
    e.procedure(labels.unify, "$unify");
    int x = e.nt(), y = e.nt(), t = e.nt();
    int tx = e.nt(), ty = e.nt();
    int n = e.nt(), ix = e.nt(), iy = e.nt();
    int fx = e.nt(), fy = e.nt();
    int l_loop = e.nl(), l_succ = e.nl(), l_fail = e.nl();
    int l_bindx = e.nl(), l_bindy = e.nl(), l_dox = e.nl();
    int l_lst = e.nl(), l_str = e.nl(), l_push = e.nl();

    e.st(R::kPdl, 0, Emit::rg(R::kU1));
    e.st(R::kPdl, 1, Emit::rg(R::kU2));
    e.arith(AluOp::Add, Emit::rg(R::kPdl), Emit::ii(2), R::kPdl);

    e.label(l_loop);
    e.cmpB(Cond::Eq, Emit::rg(R::kPdl), Emit::ii(L::kPdlBase), l_succ);
    e.arith(AluOp::Sub, Emit::rg(R::kPdl), Emit::ii(2), R::kPdl);
    e.ld(x, R::kPdl, 0);
    e.ld(y, R::kPdl, 1);
    e.derefE(Emit::rg(x), x);
    e.derefE(Emit::rg(y), y);
    e.eqB(Cond::Eq, Emit::rg(x), Emit::rg(y), l_loop);
    e.testTag(Cond::Eq, x, Tag::Ref, l_bindx);
    e.testTag(Cond::Eq, y, Tag::Ref, l_bindy);
    e.getTag(x, tx);
    e.getTag(y, ty);
    e.cmpB(Cond::Ne, Emit::rg(tx), Emit::rg(ty), l_fail);
    e.testTag(Cond::Eq, x, Tag::Lst, l_lst);
    e.testTag(Cond::Eq, x, Tag::Str, l_str);
    // Equal tags, unequal words: atomic mismatch.
    e.jump(l_fail);

    // x unbound: bind the younger cell to the older one.
    e.label(l_bindx);
    e.testTag(Cond::Ne, y, Tag::Ref, l_dox);
    e.cmpB(Cond::Lt, Emit::rg(x), Emit::rg(y), l_bindy);
    e.label(l_dox);
    e.bind(x, Emit::rg(y));
    e.jump(l_loop);
    e.label(l_bindy);
    e.bind(y, Emit::rg(x));
    e.jump(l_loop);

    // Lists: push both argument pairs.
    e.label(l_lst);
    e.ld(t, x, 0);
    e.st(R::kPdl, 0, Emit::rg(t));
    e.ld(t, y, 0);
    e.st(R::kPdl, 1, Emit::rg(t));
    e.ld(t, x, 1);
    e.st(R::kPdl, 2, Emit::rg(t));
    e.ld(t, y, 1);
    e.st(R::kPdl, 3, Emit::rg(t));
    e.arith(AluOp::Add, Emit::rg(R::kPdl), Emit::ii(4), R::kPdl);
    e.jump(l_loop);

    // Structures: compare functor words, push all argument pairs.
    e.label(l_str);
    e.ld(fx, x, 0);
    e.ld(fy, y, 0);
    e.eqB(Cond::Ne, Emit::rg(fx), Emit::rg(fy), l_fail);
    e.arith(AluOp::And, Emit::rg(fx), Emit::ii(255), n);
    e.mov(Emit::rg(x), ix);
    e.mov(Emit::rg(y), iy);
    e.label(l_push);
    e.cmpB(Cond::Eq, Emit::rg(n), Emit::ii(0), l_loop);
    e.arith(AluOp::Add, Emit::rg(ix), Emit::ii(1), ix);
    e.arith(AluOp::Add, Emit::rg(iy), Emit::ii(1), iy);
    e.ld(t, ix, 0);
    e.st(R::kPdl, 0, Emit::rg(t));
    e.ld(t, iy, 0);
    e.st(R::kPdl, 1, Emit::rg(t));
    e.arith(AluOp::Add, Emit::rg(R::kPdl), Emit::ii(2), R::kPdl);
    e.arith(AluOp::Sub, Emit::rg(n), Emit::ii(1), n);
    e.jump(l_push);

    e.label(l_succ);
    e.mov(Emit::ii(1), R::kU0);
    e.jumpInd(R::kRr);
    e.label(l_fail);
    e.mov(Emit::ii(0), R::kU0);
    e.mov(Emit::ii(L::kPdlBase), R::kPdl);
    e.jumpInd(R::kRr);
}

/**
 * $out_term: emit an address-free preorder linearisation of the term
 * in U1 on the output channel. Unbound variables print as <Ref,0>,
 * list cells as <Lst,0>, structures as their functor word followed by
 * the arguments. Link register: RR.
 */
void
emitOutTerm(Emit &e, RuntimeLabels &labels)
{
    e.procedure(labels.outTerm, "$out_term");
    int t = e.nt(), t2 = e.nt(), f = e.nt(), n = e.nt(), ta = e.nt();
    int l_loop = e.nl(), l_done = e.nl();
    int l_ref = e.nl(), l_lst = e.nl(), l_str = e.nl(), l_psh = e.nl();

    e.st(R::kPdl, 0, Emit::rg(R::kU1));
    e.arith(AluOp::Add, Emit::rg(R::kPdl), Emit::ii(1), R::kPdl);

    e.label(l_loop);
    e.cmpB(Cond::Eq, Emit::rg(R::kPdl), Emit::ii(L::kPdlBase), l_done);
    e.arith(AluOp::Sub, Emit::rg(R::kPdl), Emit::ii(1), R::kPdl);
    e.ld(t, R::kPdl, 0);
    e.derefE(Emit::rg(t), t);
    e.testTag(Cond::Eq, t, Tag::Lst, l_lst);
    e.testTag(Cond::Eq, t, Tag::Str, l_str);
    e.testTag(Cond::Eq, t, Tag::Ref, l_ref);
    e.out(Emit::rg(t));
    e.jump(l_loop);

    e.label(l_ref);
    e.out(Operand::mkImm(Tag::Ref, 0));
    e.jump(l_loop);

    e.label(l_lst);
    e.out(Operand::mkImm(Tag::Lst, 0));
    e.ld(t2, t, 1);
    e.st(R::kPdl, 0, Emit::rg(t2)); // cdr popped second
    e.ld(t2, t, 0);
    e.st(R::kPdl, 1, Emit::rg(t2)); // car popped first
    e.arith(AluOp::Add, Emit::rg(R::kPdl), Emit::ii(2), R::kPdl);
    e.jump(l_loop);

    e.label(l_str);
    e.ld(f, t, 0);
    e.out(Emit::rg(f));
    e.arith(AluOp::And, Emit::rg(f), Emit::ii(255), n);
    e.label(l_psh);
    e.cmpB(Cond::Eq, Emit::rg(n), Emit::ii(0), l_loop);
    e.arith(AluOp::Add, Emit::rg(t), Emit::rg(n), ta);
    e.ld(t2, ta, 0);
    e.st(R::kPdl, 0, Emit::rg(t2));
    e.arith(AluOp::Add, Emit::rg(R::kPdl), Emit::ii(1), R::kPdl);
    e.arith(AluOp::Sub, Emit::rg(n), Emit::ii(1), n);
    e.jump(l_psh);

    e.label(l_done);
    e.jumpInd(R::kRr);
}

/**
 * $start: initialise every machine register, build the dummy bottom
 * environment and choice point (whose retry address is the
 * query-failure landing point), and tail-call main/0 with CP set to
 * the halt landing point.
 */
void
emitStart(Emit &e, RuntimeLabels &labels, int main_entry)
{
    e.procedure(labels.start, "$start");
    int t = e.nt();

    e.mov(Emit::ii(L::kHeapBase), R::kH);
    e.mov(Emit::ii(L::kHeapBase), R::kHb);
    e.mov(Emit::ii(L::kTrailBase), R::kTr);
    e.mov(Emit::ii(L::kPdlBase), R::kPdl);

    // Dummy environment frame at the stack base.
    e.mov(Emit::ii(L::kStackBase), R::kE);
    e.st(R::kE, EF::kPrevE, Emit::rg(R::kE));
    e.st(R::kE, EF::kSavedCp, Emit::ic(labels.halt));
    e.st(R::kE, EF::kNumPerms, Emit::ii(0));

    // Dummy bottom choice point right above it.
    e.mov(Emit::ii(L::kStackBase + 3), R::kB);
    e.st(R::kB, CF::kPrevB, Emit::rg(R::kB));
    e.st(R::kB, CF::kRetry, Emit::ic(labels.queryFail));
    e.st(R::kB, CF::kSavedH, Emit::ii(L::kHeapBase));
    e.st(R::kB, CF::kSavedTr, Emit::ii(L::kTrailBase));
    e.st(R::kB, CF::kSavedE, Emit::rg(R::kE));
    e.st(R::kB, CF::kSavedCp, Emit::ic(labels.halt));
    e.st(R::kB, CF::kNumArgs, Emit::ii(0));

    e.mov(Emit::ic(labels.halt), R::kCp);
    e.jump(main_entry);

    e.label(labels.halt);
    e.eI(e.base(Op::Halt));

    // The bottom choice point lands here when the query has no
    // (further) solutions: emit the failure sentinel and stop. The
    // sentinel is a <Fun,-1> word, which no term linearisation can
    // contain (functor headers are never negative).
    e.label(labels.queryFail);
    e.out(Operand::mkImm(Tag::Fun, -1));
    e.eI(e.base(Op::Halt));
    (void)t;
}

} // namespace

void
emitRuntime(Emit &e, RuntimeLabels &labels, int main_entry)
{
    emitStart(e, labels, main_entry);
    emitFail(e, labels);
    emitUnify(e, labels);
    emitOutTerm(e, labels);
}

} // namespace symbol::bamc
