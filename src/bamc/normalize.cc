#include "bamc/normalize.hh"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "bam/word.hh"
#include "support/text.hh"

namespace symbol::bamc
{

using prolog::Term;
using prolog::TermKind;
using prolog::TermPool;

const FlatPred *
FlatProgram::find(const PredKey &key) const
{
    auto it = byKey.find(key);
    return it == byKey.end() ? nullptr
                             : &preds[static_cast<std::size_t>(it->second)];
}

bool
isBuiltin(const Interner &interner, AtomId name, int arity)
{
    static const std::unordered_set<std::string> two = {
        "is", "<", ">", "=<", ">=", "=:=", "=\\=", "==", "\\==", "=",
    };
    static const std::unordered_set<std::string> one = {
        "var", "nonvar", "atom", "integer", "atomic", "out",
    };
    static const std::unordered_set<std::string> zero = {
        "true", "fail", "false", "halt", "!",
    };
    const std::string &n = interner.name(name);
    switch (arity) {
      case 0: return zero.count(n) > 0;
      case 1: return one.count(n) > 0;
      case 2: return two.count(n) > 0;
      default: return false;
    }
}

namespace
{

/** Worker that owns the auxiliary-predicate counter. */
class Normalizer
{
  public:
    explicit Normalizer(prolog::Program &prog)
        : prog_(prog), pool_(prog.pool), in_(prog.pool.interner())
    {
        comma_ = in_.intern(",");
        semicolon_ = in_.intern(";");
        arrow_ = in_.intern("->");
        naf_ = in_.intern("\\+");
        notUnify_ = in_.intern("\\=");
        unify_ = in_.intern("=");
        cut_ = in_.intern("!");
        true_ = in_.trueAtom();
        fail_ = in_.failAtom();
    }

    FlatProgram
    run()
    {
        for (const prolog::Clause &c : prog_.clauses)
            addClause(c.head, c.body, false);
        // Aux predicates are appended to preds_ as they are created by
        // addClause, so iterating with an index is required.
        FlatProgram out;
        out.preds = std::move(preds_);
        for (std::size_t i = 0; i < out.preds.size(); ++i) {
            for (FlatClause &fc : out.preds[i].clauses)
                classify(fc);
            out.byKey[out.preds[i].key] = static_cast<int>(i);
        }
        return out;
    }

  private:
    prolog::Program &prog_;
    TermPool &pool_;
    Interner &in_;
    AtomId comma_, semicolon_, arrow_, naf_, notUnify_, unify_, cut_;
    AtomId true_, fail_;
    std::vector<FlatPred> preds_;
    std::map<PredKey, int> predIndex_;
    int auxCounter_ = 0;

    FlatPred &
    predFor(const PredKey &key, bool is_aux)
    {
        auto it = predIndex_.find(key);
        if (it != predIndex_.end())
            return preds_[static_cast<std::size_t>(it->second)];
        predIndex_[key] = static_cast<int>(preds_.size());
        FlatPred p;
        p.key = key;
        p.isAux = is_aux;
        preds_.push_back(std::move(p));
        return preds_.back();
    }

    void
    addClause(TermId head, TermId body, bool is_aux)
    {
        PredKey key{pool_.at(head).functor, pool_.arity(head)};
        if (pool_.isVar(head) || pool_.isInt(head))
            throw CompileError("clause head must be callable");
        if (key.arity > bam::Regs::kMaxArgs)
            throw CompileError(strprintf(
                "predicate %s/%d exceeds the %d-argument limit",
                in_.name(key.name).c_str(), key.arity,
                bam::Regs::kMaxArgs));
        FlatClause fc;
        fc.head = head;
        if (body != prolog::kNoTerm)
            flatten(body, fc.goals);
        predFor(key, is_aux).clauses.push_back(std::move(fc));
    }

    /** Ordered distinct variables (by first occurrence) below @p t. */
    void
    collectVars(TermId t, std::vector<TermId> &out,
                std::set<int> &seen) const
    {
        const Term &term = pool_.at(t);
        switch (term.kind) {
          case TermKind::Var:
            if (seen.insert(term.varId).second)
                out.push_back(t);
            break;
          case TermKind::Struct:
            for (TermId a : term.args)
                collectVars(a, out, seen);
            break;
          default:
            break;
        }
    }

    /** Create a '$auxN' predicate over the variables of the construct
     *  and return the replacement goal term. */
    TermId
    makeAux(const std::vector<TermId> &clause_bodies, TermId vars_of)
    {
        std::vector<TermId> vars;
        std::set<int> seen;
        collectVars(vars_of, vars, seen);
        if (static_cast<int>(vars.size()) > bam::Regs::kMaxArgs)
            throw CompileError(
                "control construct captures too many variables");
        AtomId name = in_.intern(strprintf("$aux%d", auxCounter_++));
        TermId head = vars.empty()
                          ? pool_.mkAtom(name)
                          : pool_.mkStruct(name, vars);
        for (TermId body : clause_bodies)
            addClause(head, body, true);
        return head;
    }

    /** Build ','(a, b). */
    TermId
    conj(TermId a, TermId b)
    {
        return pool_.mkStruct(comma_, {a, b});
    }

    void
    flatten(TermId t, std::vector<TermId> &goals)
    {
        const Term &term = pool_.at(t);
        if (term.kind == TermKind::Var)
            throw CompileError(
                "unbound variable used as a goal (call/1 unsupported)");
        if (term.kind == TermKind::Int)
            throw CompileError("integer used as a goal");

        if (pool_.isStruct(t, comma_, 2)) {
            flatten(term.args[0], goals);
            flatten(term.args[1], goals);
            return;
        }
        if (pool_.isAtom(t, true_))
            return;
        if (pool_.isStruct(t, semicolon_, 2)) {
            TermId lhs = term.args[0];
            TermId rhs = term.args[1];
            if (pool_.isStruct(lhs, arrow_, 2)) {
                // (C -> T ; E): $aux :- C, !, T.  $aux :- E.
                const Term &ite = pool_.at(lhs);
                TermId b1 = conj(ite.args[0],
                                 conj(pool_.mkAtom(cut_), ite.args[1]));
                goals.push_back(makeAux({b1, rhs}, t));
                return;
            }
            // (A ; B): plain disjunction.
            goals.push_back(makeAux({lhs, rhs}, t));
            return;
        }
        if (pool_.isStruct(t, arrow_, 2)) {
            // Bare (C -> T) behaves as (C -> T ; fail).
            TermId b1 = conj(term.args[0],
                             conj(pool_.mkAtom(cut_), term.args[1]));
            goals.push_back(makeAux({b1, pool_.mkAtom(fail_)}, t));
            return;
        }
        if (pool_.isStruct(t, naf_, 1)) {
            // \+ G: $aux :- G, !, fail.  $aux.
            TermId b1 = conj(term.args[0],
                             conj(pool_.mkAtom(cut_),
                                  pool_.mkAtom(fail_)));
            goals.push_back(makeAux({b1, pool_.mkAtom(true_)}, t));
            return;
        }
        if (pool_.isStruct(t, notUnify_, 2)) {
            // A \= B  ==>  \+ (A = B).
            TermId eq = pool_.mkStruct(unify_, {term.args[0],
                                                term.args[1]});
            TermId b1 = conj(eq, conj(pool_.mkAtom(cut_),
                                      pool_.mkAtom(fail_)));
            goals.push_back(makeAux({b1, pool_.mkAtom(true_)}, t));
            return;
        }
        goals.push_back(t);
    }

    bool
    isCall(TermId goal) const
    {
        const Term &g = pool_.at(goal);
        if (g.kind == TermKind::Atom && g.functor == cut_)
            return false;
        return !isBuiltin(in_, g.functor,
                          static_cast<int>(g.args.size()));
    }

    void
    noteVars(TermId t, int chunk,
             std::map<int, std::set<int>> &chunks_of) const
    {
        const Term &term = pool_.at(t);
        switch (term.kind) {
          case TermKind::Var:
            chunks_of[term.varId].insert(chunk);
            break;
          case TermKind::Struct:
            for (TermId a : term.args)
                noteVars(a, chunk, chunks_of);
            break;
          default:
            break;
        }
    }

    void
    classify(FlatClause &fc) const
    {
        std::map<int, std::set<int>> chunks_of;
        std::map<int, int> first_seen;
        int order = 0;
        auto first = [&](TermId t, auto &&self) -> void {
            const Term &term = pool_.at(t);
            if (term.kind == TermKind::Var) {
                if (!first_seen.count(term.varId))
                    first_seen[term.varId] = order++;
            } else if (term.kind == TermKind::Struct) {
                for (TermId a : term.args)
                    self(a, self);
            }
        };

        int chunk = 0;
        int num_calls = 0;
        bool last_is_call = false;
        noteVars(fc.head, 0, chunks_of);
        first(fc.head, first);
        for (std::size_t i = 0; i < fc.goals.size(); ++i) {
            TermId g = fc.goals[i];
            noteVars(g, chunk, chunks_of);
            first(g, first);
            const Term &gt = pool_.at(g);
            if (gt.kind == TermKind::Atom && gt.functor == cut_) {
                fc.hasCut = true;
                if (chunk > 0)
                    fc.cutNeedsSlot = true;
                last_is_call = false;
                continue;
            }
            if (isCall(g)) {
                ++num_calls;
                ++chunk;
                last_is_call = i + 1 == fc.goals.size();
            } else {
                last_is_call = false;
            }
        }

        // Permanent = lives in more than one chunk.
        std::vector<std::pair<int, int>> perms; // (first_seen, varId)
        for (const auto &[var, chunks] : chunks_of) {
            VarSlot slot;
            slot.isPerm = chunks.size() > 1;
            fc.vars[var] = slot;
            if (slot.isPerm)
                perms.emplace_back(first_seen[var], var);
        }
        std::sort(perms.begin(), perms.end());
        int next_slot = 0;
        for (const auto &[_, var] : perms)
            fc.vars[var].slot = next_slot++;
        if (fc.cutNeedsSlot)
            fc.cutSlot = next_slot++;
        fc.numPerms = next_slot;

        fc.needsEnv = fc.numPerms > 0 || fc.cutNeedsSlot ||
                      num_calls >= 2 ||
                      (num_calls == 1 && !last_is_call);
    }
};

} // namespace

FlatProgram
normalize(prolog::Program &prog)
{
    Normalizer n(prog);
    return n.run();
}

} // namespace symbol::bamc
