/**
 * @file
 * Clause normalisation for the Prolog→BAM compiler.
 *
 * Turns parsed clauses into a flat form the code generator can walk:
 * bodies become linear goal sequences, and the control constructs
 * ';'/2, '->'/2 and '\\+'/1 are lifted into freshly generated auxiliary
 * predicates whose arguments are the variables the construct shares
 * with its context. After flattening, variables are classified into
 * temporaries and permanents using the classic chunk criterion, which
 * decides whether a clause needs an environment frame.
 */

#ifndef SYMBOL_BAMC_NORMALIZE_HH
#define SYMBOL_BAMC_NORMALIZE_HH

#include <map>
#include <string>
#include <vector>

#include "prolog/parser.hh"

namespace symbol::bamc
{

using prolog::TermId;

/** Identifies a predicate by name and arity. */
struct PredKey
{
    AtomId name;
    int arity;

    bool
    operator<(const PredKey &o) const
    {
        return name != o.name ? name < o.name : arity < o.arity;
    }
    bool operator==(const PredKey &o) const = default;
};

/** How a variable is stored inside a clause. */
struct VarSlot
{
    bool isPerm = false;
    /** Permanent-slot index (perms) — assigned by the normaliser. */
    int slot = -1;
};

/** One flattened clause. */
struct FlatClause
{
    TermId head = prolog::kNoTerm;
    /** Linear goal sequence: atoms or structures only. */
    std::vector<TermId> goals;
    /** varId -> storage classification. */
    std::map<int, VarSlot> vars;
    /** Number of permanent slots (environment size). */
    int numPerms = 0;
    /** Whether the clause needs an environment frame. */
    bool needsEnv = false;
    /** Whether the clause contains a cut. */
    bool hasCut = false;
    /** Whether the saved-B for cut must live in the environment. */
    bool cutNeedsSlot = false;
    /** Environment slot reserved for the saved-B (if cutNeedsSlot). */
    int cutSlot = -1;
};

/** A predicate: all flattened clauses in source order. */
struct FlatPred
{
    PredKey key;
    std::vector<FlatClause> clauses;
    /** True for compiler-generated auxiliary predicates. */
    bool isAux = false;
};

/** The normalised program. */
struct FlatProgram
{
    std::vector<FlatPred> preds;
    /** Index into preds by key. */
    std::map<PredKey, int> byKey;

    const FlatPred *find(const PredKey &key) const;
};

/** Is @p name/arity one of the inline builtins the code generator
 *  expands without a call? */
bool isBuiltin(const Interner &interner, AtomId name, int arity);

/**
 * Normalise @p prog. New auxiliary predicates are named '$aux<N>'.
 * Throws CompileError on malformed bodies (e.g. a variable goal).
 */
FlatProgram normalize(prolog::Program &prog);

} // namespace symbol::bamc

#endif // SYMBOL_BAMC_NORMALIZE_HH
