#include "analysis/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hh"

namespace symbol::analysis
{

using intcode::IOp;
using intcode::OpClass;

InstructionMix &
InstructionMix::operator+=(const InstructionMix &o)
{
    // Combine as totals, then renormalise.
    double t = static_cast<double>(total);
    double u = static_cast<double>(o.total);
    double sum = t + u;
    if (sum <= 0)
        return *this;
    memory = (memory * t + o.memory * u) / sum;
    alu = (alu * t + o.alu * u) / sum;
    move = (move * t + o.move * u) / sum;
    control = (control * t + o.control * u) / sum;
    other = (other * t + o.other * u) / sum;
    total += o.total;
    return *this;
}

InstructionMix
instructionMix(const intcode::Program &prog,
               const emul::Profile &profile)
{
    std::uint64_t counts[5] = {0, 0, 0, 0, 0};
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < prog.code.size(); ++k) {
        std::uint64_t e = profile.expect[k];
        counts[static_cast<int>(intcode::opClass(prog.code[k].op))] +=
            e;
        total += e;
    }
    InstructionMix mix;
    mix.total = total;
    if (total == 0)
        return mix;
    double t = static_cast<double>(total);
    mix.memory =
        static_cast<double>(counts[static_cast<int>(
            OpClass::Memory)]) / t;
    mix.alu = static_cast<double>(counts[static_cast<int>(
                  OpClass::Alu)]) / t;
    mix.move = static_cast<double>(counts[static_cast<int>(
                   OpClass::Move)]) / t;
    mix.control = static_cast<double>(counts[static_cast<int>(
                      OpClass::Control)]) / t;
    mix.other = static_cast<double>(counts[static_cast<int>(
                    OpClass::Other)]) / t;
    return mix;
}

double
amdahlSpeedup(double mem_fraction, double factor, bool overlapped)
{
    panicIf(factor <= 0, "enhancement factor must be positive");
    double rest = (1.0 - mem_fraction) / factor;
    double time = overlapped ? std::max(mem_fraction, rest)
                             : mem_fraction + rest;
    return time > 0 ? 1.0 / time : 0.0;
}

BranchStats
branchStats(const intcode::Program &prog,
            const emul::Profile &profile, int bins)
{
    BranchStats st;
    st.histogram.assign(static_cast<std::size_t>(bins), 0.0);
    double fp_num = 0, taken_num = 0;
    std::uint64_t den = 0;
    for (std::size_t k = 0; k < prog.code.size(); ++k) {
        if (!intcode::isCondBranch(prog.code[k].op))
            continue;
        std::uint64_t e = profile.expect[k];
        if (e == 0)
            continue;
        double p = profile.probability(k);
        double fp = std::min(p, 1.0 - p);
        fp_num += fp * static_cast<double>(e);
        taken_num += p * static_cast<double>(e);
        den += e;
        int bin = std::min(bins - 1,
                           static_cast<int>(fp * 2.0 * bins));
        st.histogram[static_cast<std::size_t>(bin)] +=
            static_cast<double>(e);
    }
    st.branchExecutions = den;
    if (den > 0) {
        st.avgFaultyPrediction = fp_num / static_cast<double>(den);
        st.avgTakenProbability = taken_num / static_cast<double>(den);
        for (double &h : st.histogram)
            h /= static_cast<double>(den);
    }
    return st;
}

double
bamFusionFactor(bam::Op op)
{
    using Op = bam::Op;
    switch (op) {
      case Op::Deref:
        return 1.6; // hardware dereference: ~one chase step per cycle
      case Op::Trail:
      case Op::Bind:
        return 1.6; // conditional-trail test folded into one instr
      case Op::Try:
      case Op::Retry:
      case Op::Trust:
      case Op::Allocate:
      case Op::Deallocate:
        return 1.5; // double-word stack traffic
      case Op::SwitchTag:
        return 2.0; // hardware multiway tag dispatch
      case Op::Call:
        return 1.5; // call = set-CP + jump in one instruction
      case Op::Fail:
      case Op::Cut:
        return 1.2;
      default:
        return 1.0; // simple RISC-like instructions map 1:1
    }
}

std::uint64_t
bamCycles(const intcode::Program &prog, const emul::Profile &profile)
{
    double cycles = 0;
    for (std::size_t k = 0; k < prog.code.size(); ++k) {
        std::uint64_t e = profile.expect[k];
        if (e == 0)
            continue;
        int b = prog.code[k].bam;
        double fusion =
            b >= 0 && static_cast<std::size_t>(b) < prog.bamOps.size()
                ? bamFusionFactor(
                      prog.bamOps[static_cast<std::size_t>(b)])
                : 1.0;
        cycles += static_cast<double>(e) / fusion;
    }
    return static_cast<std::uint64_t>(std::llround(cycles));
}

} // namespace symbol::analysis
