/**
 * @file
 * The code-analysis layer of §4: dynamic instruction mix (Fig. 2),
 * Amdahl projections for the shared-memory model (§4.2, Fig. 3),
 * branch-predictability statistics (§4.4, Table 2 and Fig. 4), and
 * the BAM-processor baseline cycle model.
 */

#ifndef SYMBOL_ANALYSIS_STATS_HH
#define SYMBOL_ANALYSIS_STATS_HH

#include <vector>

#include "emul/machine.hh"
#include "intcode/instr.hh"

namespace symbol::analysis
{

/** Dynamic instruction mix (fractions sum to ~1). */
struct InstructionMix
{
    double memory = 0;
    double alu = 0;
    double move = 0;
    double control = 0;
    double other = 0;
    std::uint64_t total = 0;

    InstructionMix &operator+=(const InstructionMix &o);
};

/** Fig. 2: classify executed instructions by datapath resource. */
InstructionMix instructionMix(const intcode::Program &prog,
                              const emul::Profile &profile);

/**
 * §4.2 / Fig. 3: ideal speedup when all non-memory work is enhanced
 * by @p factor. With @p overlapped, memory accesses proceed in
 * parallel with computation (continuous line, asymptote
 * 1/mem_fraction); otherwise they serialise (dotted line).
 */
double amdahlSpeedup(double mem_fraction, double factor,
                     bool overlapped);

/** Branch-predictability measurements of §4.4. */
struct BranchStats
{
    /** Expect-weighted mean probability of a faulty prediction. */
    double avgFaultyPrediction = 0;
    /** Expect-weighted mean taken-probability. */
    double avgTakenProbability = 0;
    /** Dynamic fraction of branches with P_fp in each of @p bins
     *  equal slices of [0, 0.5] (Fig. 4). */
    std::vector<double> histogram;
    /** Total dynamic branch executions. */
    std::uint64_t branchExecutions = 0;
};

BranchStats branchStats(const intcode::Program &prog,
                        const emul::Profile &profile, int bins = 10);

/**
 * BAM-processor baseline cycles. The translator records which BAM
 * instruction each ICI came from; the BAM chip executes each macro
 * instruction in fewer cycles than the expanded primitive sequence
 * (hardware dereference steps, double-word choice-point traffic, a
 * one-cycle multiway tag dispatch, fused compare-and-branch). The
 * per-opcode fusion factors below model that, giving the ~1.5x
 * advantage over pure sequential execution the paper reports for the
 * BAM (§4.5: "the BAM shows a speed-up of about 1.6 with respect to
 * a pure sequential implementation").
 */
std::uint64_t bamCycles(const intcode::Program &prog,
                        const emul::Profile &profile);

/** ICIs a single BAM cycle retires for the given source opcode. */
double bamFusionFactor(bam::Op op);

} // namespace symbol::analysis

#endif // SYMBOL_ANALYSIS_STATS_HH
