/**
 * @file
 * BAM → IntCode expansion (§3.1 of the paper).
 *
 * Every BAM instruction expands into one or more primitive ICIs;
 * Prolog-engine macros (deref, trail, try/retry/trust, allocate,
 * bind, ...) become explicit load/store/ALU/branch sequences, so the
 * back end sees all the work the abstract machine does. Each emitted
 * ICI records the index of the BAM instruction it came from, which
 * is used for the BAM-processor baseline cycle accounting.
 *
 * Scratch registers for expansions are freshly allocated per site,
 * completing the front end's variable-renaming discipline.
 */

#ifndef SYMBOL_INTCODE_TRANSLATE_HH
#define SYMBOL_INTCODE_TRANSLATE_HH

#include "bam/instr.hh"
#include "intcode/instr.hh"

namespace symbol::intcode
{

/** Translation options. */
struct TranslateOptions
{
    /**
     * When true (the ablation configuration), tag branches are
     * expanded into gettag + compare-branch pairs, modelling a plain
     * RISC without the paper's branch-on-tag-field support.
     */
    bool expandTagBranches = false;
};

/** Expand @p module into an ICI program. */
Program translate(const bam::Module &module,
                  const TranslateOptions &opts = {});

} // namespace symbol::intcode

#endif // SYMBOL_INTCODE_TRANSLATE_HH
