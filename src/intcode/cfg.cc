#include "intcode/cfg.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace symbol::intcode
{

Cfg
Cfg::build(const Program &prog)
{
    const std::size_t n = prog.code.size();
    panicIf(n == 0, "Cfg::build on empty program");

    std::vector<bool> starts(n, false);
    starts[static_cast<std::size_t>(prog.entry)] = true;
    for (std::size_t k = 0; k < n; ++k) {
        const IInstr &i = prog.code[k];
        if (prog.addressTaken[k] || prog.procEntry[k])
            starts[k] = true;
        if (i.target >= 0)
            starts[static_cast<std::size_t>(i.target)] = true;
        if (isControl(i.op) && k + 1 < n)
            starts[k + 1] = true;
    }

    Cfg cfg;
    cfg.blockOf.assign(n, -1);
    for (std::size_t k = 0; k < n; ++k) {
        if (starts[k]) {
            Block b;
            b.first = static_cast<int>(k);
            b.addressTaken = prog.addressTaken[k];
            b.procEntry = prog.procEntry[k];
            cfg.blocks.push_back(b);
        }
        cfg.blockOf[k] = static_cast<int>(cfg.blocks.size()) - 1;
    }
    for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        Block &b = cfg.blocks[bi];
        b.last = bi + 1 < cfg.blocks.size()
                     ? cfg.blocks[bi + 1].first - 1
                     : static_cast<int>(n) - 1;
    }

    auto addEdge = [&](int from, int to) {
        cfg.blocks[static_cast<std::size_t>(from)].succs.push_back(to);
        cfg.blocks[static_cast<std::size_t>(to)].preds.push_back(from);
    };

    for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        const Block &b = cfg.blocks[bi];
        const IInstr &term =
            prog.code[static_cast<std::size_t>(b.last)];
        int from = static_cast<int>(bi);
        if (isCondBranch(term.op)) {
            addEdge(from, cfg.blockOf[static_cast<std::size_t>(
                              term.target)]);
            if (b.last + 1 < static_cast<int>(n))
                addEdge(from, cfg.blockOf[static_cast<std::size_t>(
                                  b.last + 1)]);
        } else if (term.op == IOp::Jmp) {
            addEdge(from, cfg.blockOf[static_cast<std::size_t>(
                              term.target)]);
        } else if (term.op == IOp::Jmpi || term.op == IOp::Halt) {
            // No static successors.
        } else if (b.last + 1 < static_cast<int>(n)) {
            addEdge(from, cfg.blockOf[static_cast<std::size_t>(
                              b.last + 1)]);
        }
    }
    cfg.entryBlock = cfg.blockOf[static_cast<std::size_t>(prog.entry)];
    return cfg;
}

} // namespace symbol::intcode
