/**
 * @file
 * The Intermediate Code Instruction (ICI) set of §3.1.
 *
 * ICIs are simple instructions that each express one primitive
 * hardware functionality of the target datapath: loads and stores
 * (direct addressing with a constant offset only), ALU operations on
 * the value field, tag-field manipulation, moves, and branches —
 * including branches directly on the tag field, the paper's dedicated
 * Prolog support (§4.5). Operands are virtual registers or tagged
 * immediates; there is no register allocation or unit assignment at
 * this level.
 */

#ifndef SYMBOL_INTCODE_INSTR_HH
#define SYMBOL_INTCODE_INSTR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bam/instr.hh"

namespace symbol::intcode
{

using bam::Tag;
using bam::Word;

/** ICI opcodes. */
enum class IOp : std::uint8_t
{
    // Memory.
    Ld,  ///< rd <- mem[val(ra) + off]
    St,  ///< mem[val(ra) + off] <- rb/imm
    // ALU (value fields; result tagged Int).
    Add, Sub, Mul, Div, Mod, And, Or, Xor, Sll, Sra,
    // Moves and tag manipulation.
    Mov,    ///< rd <- ra
    Movi,   ///< rd <- imm (a full tagged word)
    MkTag,  ///< rd <- <tag, val(ra)>
    GetTag, ///< rd <- <Int, tag(ra)>
    // Control.
    Beq,    ///< full-word compare, branch if equal
    Bne,    ///< full-word compare, branch if not equal
    Blt, Ble, Bgt, Bge, ///< signed value-field compare
    BtagEq, ///< branch if tag(ra) == tag
    BtagNe, ///< branch if tag(ra) != tag
    Jmp,    ///< unconditional direct jump
    Jmpi,   ///< jump through the Cod word in ra
    // Miscellaneous.
    Out,    ///< append rb/imm to the observable output
    Halt,
    Nop,
};

/** Execution-resource class of an opcode (Fig. 2 categories). */
enum class OpClass : std::uint8_t
{
    Memory,  ///< Ld, St
    Alu,     ///< arithmetic/logic + tag manipulation
    Move,    ///< Mov, Movi
    Control, ///< branches and jumps, Halt
    Other,   ///< Out, Nop
};

OpClass opClass(IOp op);

/** True for the conditional branches (two CFG successors). */
bool isCondBranch(IOp op);

/** True for any control transfer (cond branch, Jmp, Jmpi, Halt). */
bool isControl(IOp op);

struct IInstr;

/** Destination register of @p i, or -1. */
int defReg(const IInstr &i);

/** Append the source registers of @p i to @p out (max 2). */
void useRegs(const IInstr &i, int out[2], int &n);

/** Invert a conditional branch (Beq<->Bne, Blt<->Bge, ...). */
IOp invertBranch(IOp op);

/** One intermediate-code instruction. */
struct IInstr
{
    IOp op = IOp::Nop;
    int rd = -1; ///< destination register
    int ra = -1; ///< first source (base register for Ld/St)
    int rb = -1; ///< second source, unless useImm
    bool useImm = false;
    Word imm = 0;  ///< tagged immediate (second source / Movi value)
    int off = 0;   ///< Ld/St addressing offset
    int target = -1; ///< branch/jump target (instruction index)
    Tag tag = Tag::Ref; ///< BtagEq/BtagNe comparison tag
    /** Provenance: index of the source BAM instruction. */
    int bam = -1;
    /** Store into a freshly allocated heap cell (see bam::Instr). */
    bool fresh = false;
};

/** A complete ICI program. */
struct Program
{
    std::vector<IInstr> code;
    /** Entry instruction index ($start). */
    int entry = 0;
    /** One past the highest virtual register used. */
    int numRegs = 0;
    /**
     * Instruction indices whose address is taken (they appear in Cod
     * immediates: call return points, retry addresses, ...). Such
     * instructions can be reached by Jmpi from anywhere, so the
     * back end must keep them addressable.
     */
    std::vector<bool> addressTaken;
    /** Instruction indices that begin a BAM procedure. */
    std::vector<bool> procEntry;
    /** Per-BAM-instruction opcode table, for cycle accounting. */
    std::vector<bam::Op> bamOps;
    /** Interner used for listings. */
    const Interner *interner = nullptr;

    /** Human-readable mnemonic listing. */
    std::string str() const;
    /** Render one instruction. */
    std::string str(const IInstr &i) const;
};

} // namespace symbol::intcode

#endif // SYMBOL_INTCODE_INSTR_HH
