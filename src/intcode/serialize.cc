#include "intcode/serialize.hh"

namespace symbol::intcode
{

using serialize::DecodeError;
using serialize::Reader;
using serialize::Writer;

void
encodeInstr(Writer &w, const IInstr &i)
{
    w.u8(static_cast<std::uint8_t>(i.op));
    w.vi(i.rd);
    w.vi(i.ra);
    w.vi(i.rb);
    w.b(i.useImm);
    w.fixed64(i.imm);
    w.vi(i.off);
    w.vi(i.target);
    w.u8(static_cast<std::uint8_t>(i.tag));
    w.vi(i.bam);
    w.b(i.fresh);
}

IInstr
decodeInstr(Reader &r)
{
    IInstr i;
    std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(IOp::Nop))
        throw DecodeError("bad ici opcode");
    i.op = static_cast<IOp>(op);
    i.rd = static_cast<int>(r.vi());
    i.ra = static_cast<int>(r.vi());
    i.rb = static_cast<int>(r.vi());
    i.useImm = r.b();
    i.imm = r.fixed64();
    i.off = static_cast<int>(r.vi());
    i.target = static_cast<int>(r.vi());
    std::uint8_t tag = r.u8();
    if (tag >= bam::kNumTags)
        throw DecodeError("bad ici tag");
    i.tag = static_cast<bam::Tag>(tag);
    i.bam = static_cast<int>(r.vi());
    i.fresh = r.b();
    return i;
}

void
encode(Writer &w, const Program &prog)
{
    w.vu(prog.code.size());
    for (const IInstr &i : prog.code)
        encodeInstr(w, i);
    w.vi(prog.entry);
    w.vi(prog.numRegs);
    w.vecBool(prog.addressTaken);
    w.vecBool(prog.procEntry);
    {
        std::vector<std::uint8_t> ops;
        ops.reserve(prog.bamOps.size());
        for (bam::Op op : prog.bamOps)
            ops.push_back(static_cast<std::uint8_t>(op));
        w.vecU8(ops);
    }
}

Program
decodeProgram(Reader &r, const Interner *interner)
{
    Program p;
    std::size_t n = r.count(1);
    p.code.reserve(n);
    for (std::size_t k = 0; k < n; ++k)
        p.code.push_back(decodeInstr(r));
    p.entry = static_cast<int>(r.vi());
    p.numRegs = static_cast<int>(r.vi());
    p.addressTaken = r.vecBool();
    p.procEntry = r.vecBool();
    for (std::uint8_t op : r.vecU8()) {
        if (op > static_cast<std::uint8_t>(bam::Op::Nop))
            throw DecodeError("bad bam provenance opcode");
        p.bamOps.push_back(static_cast<bam::Op>(op));
    }
    p.interner = interner;
    return p;
}

void
encode(Writer &w, const Cfg &cfg)
{
    w.vu(cfg.blocks.size());
    for (const Block &b : cfg.blocks) {
        w.vi(b.first);
        w.vi(b.last);
        w.vecI32(b.succs);
        w.vecI32(b.preds);
        w.b(b.addressTaken);
        w.b(b.procEntry);
    }
    w.vecI32(cfg.blockOf);
    w.vi(cfg.entryBlock);
}

Cfg
decodeCfg(Reader &r)
{
    Cfg cfg;
    std::size_t n = r.count(1);
    cfg.blocks.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        Block b;
        b.first = static_cast<int>(r.vi());
        b.last = static_cast<int>(r.vi());
        b.succs = r.vecI32();
        b.preds = r.vecI32();
        b.addressTaken = r.b();
        b.procEntry = r.b();
        cfg.blocks.push_back(std::move(b));
    }
    cfg.blockOf = r.vecI32();
    cfg.entryBlock = static_cast<int>(r.vi());
    return cfg;
}

} // namespace symbol::intcode
