/**
 * @file
 * Binary encode/decode of the ICI program and its control-flow graph,
 * including the per-instruction BAM provenance links that drive the
 * baseline cycle accounting.
 */

#ifndef SYMBOL_INTCODE_SERIALIZE_HH
#define SYMBOL_INTCODE_SERIALIZE_HH

#include "intcode/cfg.hh"
#include "intcode/instr.hh"
#include "serialize/codec.hh"

namespace symbol::intcode
{

void encode(serialize::Writer &w, const Program &prog);

/** One-instruction codec, shared with the VLIW code encoder. */
void encodeInstr(serialize::Writer &w, const IInstr &i);
IInstr decodeInstr(serialize::Reader &r);

/**
 * Decode a Program; its interner pointer is bound to @p interner
 * (pass nullptr for listings-free use). Throws
 * serialize::DecodeError on malformed input.
 */
Program decodeProgram(serialize::Reader &r, const Interner *interner);

void encode(serialize::Writer &w, const Cfg &cfg);
Cfg decodeCfg(serialize::Reader &r);

} // namespace symbol::intcode

#endif // SYMBOL_INTCODE_SERIALIZE_HH
