#include "intcode/translate.hh"

#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::intcode
{

using bam::AluOp;
using bam::Cond;
using bam::Instr;
using bam::Op;
using bam::Operand;
using R = bam::Regs;
using CF = bam::ChoiceFrame;
using EF = bam::EnvFrame;
using L = bam::Layout;

namespace
{

/** Two-pass translator: emit with label placeholders, then fix up. */
class Translator
{
  public:
    Translator(const bam::Module &m, const TranslateOptions &opts)
        : m_(m), opts_(opts), numLabels_(m.numLabels),
          nextTemp_(m.numRegs)
    {
        labelPos_.assign(static_cast<std::size_t>(numLabels_), -1);
    }

    Program
    run()
    {
        for (std::size_t k = 0; k < m_.code.size(); ++k) {
            curBam_ = static_cast<int>(k);
            expand(m_.code[k]);
        }
        fixup();

        Program p;
        p.code = std::move(out_);
        p.numRegs = nextTemp_;
        panicIf(m_.entryLabel < 0, "module has no entry label");
        p.entry = pos(m_.entryLabel);
        p.addressTaken = std::move(addressTaken_);
        p.procEntry = std::move(procEntry_);
        p.addressTaken.resize(p.code.size(), false);
        p.procEntry.resize(p.code.size(), false);
        p.interner = m_.interner;
        p.bamOps.reserve(m_.code.size());
        for (const Instr &i : m_.code)
            p.bamOps.push_back(i.op);
        return p;
    }

  private:
    const bam::Module &m_;
    TranslateOptions opts_;
    int numLabels_;
    int nextTemp_;
    int curBam_ = -1;
    std::vector<IInstr> out_;
    std::vector<int> labelPos_;
    std::vector<bool> addressTaken_;
    std::vector<bool> procEntry_;
    /** (instr index, label) pairs for branch-target fixup. */
    std::vector<std::pair<int, int>> branchFixups_;
    /** (instr index, label) pairs for Cod-immediate fixup. */
    std::vector<std::pair<int, int>> immFixups_;

    int nt() { return nextTemp_++; }
    int
    newLabel()
    {
        labelPos_.push_back(-1);
        return numLabels_++;
    }

    int
    pos(int label) const
    {
        int p = labelPos_[static_cast<std::size_t>(label)];
        panicIf(p < 0, strprintf("undefined label L%d", label));
        return p;
    }

    void
    defineLabel(int label, bool proc_entry = false)
    {
        panicIf(labelPos_[static_cast<std::size_t>(label)] >= 0,
                strprintf("label L%d defined twice", label));
        labelPos_[static_cast<std::size_t>(label)] =
            static_cast<int>(out_.size());
        if (proc_entry)
            markHere(procEntry_);
    }

    void
    markHere(std::vector<bool> &bits)
    {
        std::size_t at = out_.size();
        if (bits.size() <= at)
            bits.resize(at + 1, false);
        bits[at] = true;
    }

    IInstr &
    eI(IInstr i)
    {
        i.bam = curBam_;
        out_.push_back(i);
        return out_.back();
    }

    IInstr
    mk(IOp op)
    {
        IInstr i;
        i.op = op;
        return i;
    }

    // --- Small emission helpers ---------------------------------------

    void
    ld(int rd, int base, int off)
    {
        IInstr i = mk(IOp::Ld);
        i.rd = rd;
        i.ra = base;
        i.off = off;
        eI(i);
    }

    /** Store; @p src may be a register or an immediate operand. */
    void
    st(int base, int off, const Operand &src, bool fresh = false)
    {
        IInstr i = mk(IOp::St);
        i.ra = base;
        i.off = off;
        i.fresh = fresh;
        setSrcB(i, src);
        eI(i);
    }

    /** Bind i.rb/imm from a BAM operand, registering Cod fixups. */
    void
    setSrcB(IInstr &i, const Operand &o)
    {
        if (o.isReg()) {
            i.rb = o.reg;
            return;
        }
        panicIf(!o.isImm(), "expected register or immediate");
        i.useImm = true;
        i.imm = o.imm;
        if (bam::wordTag(o.imm) == bam::Tag::Cod) {
            immFixups_.emplace_back(static_cast<int>(out_.size()),
                                    static_cast<int>(
                                        bam::wordVal(o.imm)));
        }
    }

    /** Materialise a BAM operand into a register. */
    int
    regOf(const Operand &o)
    {
        if (o.isReg())
            return o.reg;
        int t = nt();
        IInstr i = mk(IOp::Movi);
        i.rd = t;
        i.useImm = true;
        i.imm = o.imm;
        if (bam::wordTag(o.imm) == bam::Tag::Cod)
            immFixups_.emplace_back(static_cast<int>(out_.size()),
                                    static_cast<int>(
                                        bam::wordVal(o.imm)));
        eI(i);
        return t;
    }

    void
    mov(int rd, int ra)
    {
        if (rd == ra)
            return;
        IInstr i = mk(IOp::Mov);
        i.rd = rd;
        i.ra = ra;
        eI(i);
    }

    void
    movOperand(const Operand &src, int rd)
    {
        if (src.isReg()) {
            mov(rd, src.reg);
            return;
        }
        IInstr i = mk(IOp::Movi);
        i.rd = rd;
        i.useImm = true;
        i.imm = src.imm;
        if (bam::wordTag(src.imm) == bam::Tag::Cod)
            immFixups_.emplace_back(static_cast<int>(out_.size()),
                                    static_cast<int>(
                                        bam::wordVal(src.imm)));
        eI(i);
    }

    void
    addImm(int rd, int ra, std::int64_t v)
    {
        IInstr i = mk(IOp::Add);
        i.rd = rd;
        i.ra = ra;
        i.useImm = true;
        i.imm = bam::makeWord(bam::Tag::Int, v);
        eI(i);
    }

    void
    branch(IOp op, int ra, const Operand &b, int label)
    {
        IInstr i = mk(op);
        i.ra = ra;
        if (op != IOp::BtagEq && op != IOp::BtagNe)
            setSrcB(i, b);
        i.target = label; // fixed up later
        branchFixups_.emplace_back(static_cast<int>(out_.size()),
                                   label);
        eI(i);
    }

    void
    btag(Cond cond, int ra, bam::Tag tag, int label)
    {
        if (opts_.expandTagBranches) {
            int t = nt();
            IInstr g = mk(IOp::GetTag);
            g.rd = t;
            g.ra = ra;
            eI(g);
            branch(cond == Cond::Eq ? IOp::Beq : IOp::Bne, t,
                   Operand::mkImm(bam::Tag::Int,
                                  static_cast<int>(tag)),
                   label);
            return;
        }
        IInstr i = mk(cond == Cond::Eq ? IOp::BtagEq : IOp::BtagNe);
        i.ra = ra;
        i.tag = tag;
        i.target = label;
        branchFixups_.emplace_back(static_cast<int>(out_.size()),
                                   label);
        eI(i);
    }

    void
    jmp(int label)
    {
        IInstr i = mk(IOp::Jmp);
        i.target = label;
        branchFixups_.emplace_back(static_cast<int>(out_.size()),
                                   label);
        eI(i);
    }

    void
    jmpi(int reg)
    {
        IInstr i = mk(IOp::Jmpi);
        i.ra = reg;
        eI(i);
    }

    // --- Macro expansions ---------------------------------------------

    /** deref: chase Ref chains until a non-Ref or a self-reference. */
    void
    expandDeref(const Operand &src, int dst)
    {
        if (src.isReg())
            mov(dst, src.reg);
        else
            movOperand(src, dst);
        int l_loop = newLabel(), l_done = newLabel();
        defineLabel(l_loop);
        btag(Cond::Ne, dst, bam::Tag::Ref, l_done);
        int t = nt();
        ld(t, dst, 0);
        branch(IOp::Beq, t, Operand::mkReg(dst), l_done);
        mov(dst, t);
        jmp(l_loop);
        defineLabel(l_done);
    }

    /**
     * Conditional trailing: record the cell iff it predates the
     * current choice point (heap cells older than HB; local-stack
     * cells older than B).
     */
    void
    expandTrail(int cell)
    {
        int l_do = newLabel(), l_skip = newLabel();
        branch(IOp::Blt, cell, Operand::mkReg(R::kHb), l_do);
        branch(IOp::Blt, cell,
               Operand::mkImm(bam::Tag::Int, L::kStackBase), l_skip);
        branch(IOp::Blt, cell, Operand::mkReg(R::kB), l_do);
        jmp(l_skip);
        defineLabel(l_do);
        st(R::kTr, 0, Operand::mkReg(cell));
        addImm(R::kTr, R::kTr, 1);
        defineLabel(l_skip);
    }

    /** Compute max(end of E frame, end of B frame) into a register. */
    int
    expandFrameTop()
    {
        int t1 = nt(), t2 = nt();
        ld(t1, R::kE, EF::kNumPerms);
        IInstr a = mk(IOp::Add);
        a.rd = t1;
        a.ra = R::kE;
        a.rb = t1;
        eI(a);
        addImm(t1, t1, EF::kPerms);
        ld(t2, R::kB, CF::kNumArgs);
        IInstr b = mk(IOp::Add);
        b.rd = t2;
        b.ra = R::kB;
        b.rb = t2;
        eI(b);
        addImm(t2, t2, CF::kArgs);
        int l_ok = newLabel();
        branch(IOp::Bge, t1, Operand::mkReg(t2), l_ok);
        mov(t1, t2);
        defineLabel(l_ok);
        return t1;
    }

    void
    expandTry(int nargs, int retry_label)
    {
        int top = expandFrameTop();
        st(top, CF::kPrevB, Operand::mkReg(R::kB));
        st(top, CF::kRetry,
           Operand::mkImm(bam::Tag::Cod, retry_label));
        st(top, CF::kSavedH, Operand::mkReg(R::kH));
        st(top, CF::kSavedTr, Operand::mkReg(R::kTr));
        st(top, CF::kSavedE, Operand::mkReg(R::kE));
        st(top, CF::kSavedCp, Operand::mkReg(R::kCp));
        st(top, CF::kNumArgs, Operand::mkImm(bam::Tag::Int, nargs));
        for (int i = 0; i < nargs; ++i)
            st(top, CF::kArgs + i, Operand::mkReg(R::arg(i)));
        mov(R::kB, top);
        mov(R::kHb, R::kH);
    }

    void
    expandRetry(int nargs, int next_label)
    {
        st(R::kB, CF::kRetry,
           Operand::mkImm(bam::Tag::Cod, next_label));
        for (int i = 0; i < nargs; ++i)
            ld(R::arg(i), R::kB, CF::kArgs + i);
    }

    void
    expandTrust(int nargs)
    {
        for (int i = 0; i < nargs; ++i)
            ld(R::arg(i), R::kB, CF::kArgs + i);
        ld(R::kB, R::kB, CF::kPrevB);
        ld(R::kHb, R::kB, CF::kSavedH);
    }

    void
    expandAllocate(int nperms)
    {
        int top = expandFrameTop();
        st(top, EF::kPrevE, Operand::mkReg(R::kE));
        st(top, EF::kSavedCp, Operand::mkReg(R::kCp));
        st(top, EF::kNumPerms,
           Operand::mkImm(bam::Tag::Int, nperms));
        mov(R::kE, top);
    }

    void
    expand(const Instr &i)
    {
        switch (i.op) {
          case Op::Procedure:
            defineLabel(i.labs[0], true);
            return;
          case Op::Label:
            defineLabel(i.labs[0]);
            return;
          case Op::Jump:
            jmp(i.labs[0]);
            return;
          case Op::JumpInd:
            jmpi(i.a.reg);
            return;
          case Op::Call: {
            int ret = newLabel();
            movOperand(Operand::mkImm(bam::Tag::Cod, ret), i.off);
            jmp(i.labs[0]);
            defineLabel(ret);
            return;
          }
          case Op::Return:
            jmpi(i.off);
            return;
          case Op::Halt:
            eI(mk(IOp::Halt));
            return;
          case Op::SwitchTag: {
            // labs: Ref, Atm, Int, Lst, Str.
            static const bam::Tag tags[4] = {
                bam::Tag::Ref, bam::Tag::Atm, bam::Tag::Int,
                bam::Tag::Lst};
            for (int w = 0; w < 4; ++w)
                btag(Cond::Eq, i.a.reg, tags[w], i.labs[w]);
            jmp(i.labs[4]);
            return;
          }
          case Op::TestTag:
            btag(i.cond, i.a.reg, i.tag, i.labs[0]);
            return;
          case Op::CmpBranch:
          case Op::EqualBranch: {
            IOp op;
            switch (i.cond) {
              case Cond::Eq: op = IOp::Beq; break;
              case Cond::Ne: op = IOp::Bne; break;
              case Cond::Lt: op = IOp::Blt; break;
              case Cond::Le: op = IOp::Ble; break;
              case Cond::Gt: op = IOp::Bgt; break;
              case Cond::Ge: op = IOp::Bge; break;
              default: panic("bad cond");
            }
            branch(op, regOf(i.a), i.b, i.labs[0]);
            return;
          }
          case Op::Deref:
            expandDeref(i.a, i.b.reg);
            return;
          case Op::Trail:
            expandTrail(i.a.reg);
            return;
          case Op::Bind:
            st(i.a.reg, 0, i.b, i.fresh);
            expandTrail(i.a.reg);
            return;
          case Op::Allocate:
            expandAllocate(i.off);
            return;
          case Op::Deallocate:
            ld(R::kCp, R::kE, EF::kSavedCp);
            ld(R::kE, R::kE, EF::kPrevE);
            return;
          case Op::Try:
            expandTry(i.off, i.labs[0]);
            return;
          case Op::Retry:
            expandRetry(i.off, i.labs[0]);
            return;
          case Op::Trust:
            expandTrust(i.off);
            return;
          case Op::Cut:
            mov(R::kB, i.a.reg);
            ld(R::kHb, R::kB, CF::kSavedH);
            return;
          case Op::Fail:
            jmp(m_.failLabel);
            return;
          case Op::Move:
            movOperand(i.a, i.b.reg);
            return;
          case Op::Ld:
            ld(i.b.reg, i.a.reg, i.off);
            return;
          case Op::St:
            st(i.a.reg, i.off, i.b, i.fresh);
            return;
          case Op::Arith: {
            static const IOp map[] = {IOp::Add, IOp::Sub, IOp::Mul,
                                      IOp::Div, IOp::Mod, IOp::And,
                                      IOp::Or,  IOp::Xor, IOp::Sll,
                                      IOp::Sra};
            IInstr a = mk(map[static_cast<int>(i.alu)]);
            a.rd = i.c.reg;
            a.ra = regOf(i.a);
            setSrcB(a, i.b);
            eI(a);
            return;
          }
          case Op::MkTag: {
            IInstr t = mk(IOp::MkTag);
            t.rd = i.b.reg;
            t.ra = i.a.reg;
            t.tag = i.tag;
            eI(t);
            return;
          }
          case Op::GetTag: {
            IInstr t = mk(IOp::GetTag);
            t.rd = i.b.reg;
            t.ra = i.a.reg;
            eI(t);
            return;
          }
          case Op::Out: {
            IInstr o = mk(IOp::Out);
            setSrcB(o, i.a);
            eI(o);
            return;
          }
          case Op::Nop:
            return;
        }
        panic("unhandled BAM opcode");
    }

    void
    fixup()
    {
        addressTaken_.resize(out_.size(), false);
        procEntry_.resize(out_.size(), false);
        for (auto [idx, label] : branchFixups_) {
            out_[static_cast<std::size_t>(idx)].target = pos(label);
        }
        for (auto [idx, label] : immFixups_) {
            IInstr &i = out_[static_cast<std::size_t>(idx)];
            int addr = pos(label);
            i.imm = bam::makeWord(bam::Tag::Cod, addr);
            addressTaken_[static_cast<std::size_t>(addr)] = true;
        }
    }
};

} // namespace

Program
translate(const bam::Module &module, const TranslateOptions &opts)
{
    Translator t(module, opts);
    return t.run();
}

} // namespace symbol::intcode
