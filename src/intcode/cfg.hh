/**
 * @file
 * Basic-block control-flow graph over an ICI program.
 *
 * Used by the code analysis of §4.3 (basic-block statistics) and by
 * the back-end compactors. Jmpi successors are unknowable statically;
 * blocks whose address is taken are marked so the schedulers treat
 * them as always-reachable entry points.
 */

#ifndef SYMBOL_INTCODE_CFG_HH
#define SYMBOL_INTCODE_CFG_HH

#include <vector>

#include "intcode/instr.hh"

namespace symbol::intcode
{

/** One basic block: the instruction range [first, last]. */
struct Block
{
    int first = 0;
    int last = 0; ///< inclusive; the block's only control instruction
    std::vector<int> succs;
    std::vector<int> preds;
    /** Reachable through a Cod immediate (Jmpi from anywhere). */
    bool addressTaken = false;
    /** Starts a BAM procedure. */
    bool procEntry = false;

    int size() const { return last - first + 1; }
};

/** The control-flow graph. */
struct Cfg
{
    std::vector<Block> blocks;
    /** Instruction index -> owning block id. */
    std::vector<int> blockOf;
    /** Block containing the program entry. */
    int entryBlock = 0;

    static Cfg build(const Program &prog);
};

} // namespace symbol::intcode

#endif // SYMBOL_INTCODE_CFG_HH
