#include "intcode/instr.hh"

#include "support/text.hh"

namespace symbol::intcode
{

OpClass
opClass(IOp op)
{
    switch (op) {
      case IOp::Ld:
      case IOp::St:
        return OpClass::Memory;
      case IOp::Add: case IOp::Sub: case IOp::Mul: case IOp::Div:
      case IOp::Mod: case IOp::And: case IOp::Or: case IOp::Xor:
      case IOp::Sll: case IOp::Sra:
      case IOp::MkTag: case IOp::GetTag:
        return OpClass::Alu;
      case IOp::Mov:
      case IOp::Movi:
        return OpClass::Move;
      case IOp::Beq: case IOp::Bne: case IOp::Blt: case IOp::Ble:
      case IOp::Bgt: case IOp::Bge: case IOp::BtagEq:
      case IOp::BtagNe: case IOp::Jmp: case IOp::Jmpi:
      case IOp::Halt:
        return OpClass::Control;
      case IOp::Out:
      case IOp::Nop:
        return OpClass::Other;
    }
    return OpClass::Other;
}

bool
isCondBranch(IOp op)
{
    switch (op) {
      case IOp::Beq: case IOp::Bne: case IOp::Blt: case IOp::Ble:
      case IOp::Bgt: case IOp::Bge: case IOp::BtagEq:
      case IOp::BtagNe:
        return true;
      default:
        return false;
    }
}

bool
isControl(IOp op)
{
    return isCondBranch(op) || op == IOp::Jmp || op == IOp::Jmpi ||
           op == IOp::Halt;
}

int
defReg(const IInstr &i)
{
    switch (i.op) {
      case IOp::St:
      case IOp::Out:
      case IOp::Jmp:
      case IOp::Jmpi:
      case IOp::Halt:
      case IOp::Nop:
      case IOp::Beq: case IOp::Bne: case IOp::Blt: case IOp::Ble:
      case IOp::Bgt: case IOp::Bge: case IOp::BtagEq:
      case IOp::BtagNe:
        return -1;
      default:
        return i.rd;
    }
}

void
useRegs(const IInstr &i, int out[2], int &n)
{
    n = 0;
    if (i.ra >= 0)
        out[n++] = i.ra;
    if (!i.useImm && i.rb >= 0)
        out[n++] = i.rb;
}

IOp
invertBranch(IOp op)
{
    switch (op) {
      case IOp::Beq: return IOp::Bne;
      case IOp::Bne: return IOp::Beq;
      case IOp::Blt: return IOp::Bge;
      case IOp::Bge: return IOp::Blt;
      case IOp::Ble: return IOp::Bgt;
      case IOp::Bgt: return IOp::Ble;
      case IOp::BtagEq: return IOp::BtagNe;
      case IOp::BtagNe: return IOp::BtagEq;
      default:
        break;
    }
    return op;
}

namespace
{

const char *
iopName(IOp op)
{
    switch (op) {
      case IOp::Ld: return "ld";
      case IOp::St: return "st";
      case IOp::Add: return "add";
      case IOp::Sub: return "sub";
      case IOp::Mul: return "mul";
      case IOp::Div: return "div";
      case IOp::Mod: return "mod";
      case IOp::And: return "and";
      case IOp::Or: return "or";
      case IOp::Xor: return "xor";
      case IOp::Sll: return "sll";
      case IOp::Sra: return "sra";
      case IOp::Mov: return "mov";
      case IOp::Movi: return "movi";
      case IOp::MkTag: return "mktag";
      case IOp::GetTag: return "gettag";
      case IOp::Beq: return "beq";
      case IOp::Bne: return "bne";
      case IOp::Blt: return "blt";
      case IOp::Ble: return "ble";
      case IOp::Bgt: return "bgt";
      case IOp::Bge: return "bge";
      case IOp::BtagEq: return "btageq";
      case IOp::BtagNe: return "btagne";
      case IOp::Jmp: return "jmp";
      case IOp::Jmpi: return "jmpi";
      case IOp::Out: return "out";
      case IOp::Halt: return "halt";
      case IOp::Nop: return "nop";
    }
    return "?";
}

std::string
immStr(const Program &p, Word w)
{
    Tag t = bam::wordTag(w);
    std::int64_t v = bam::wordVal(w);
    switch (t) {
      case Tag::Int:
        return strprintf("#%lld", static_cast<long long>(v));
      case Tag::Atm:
        if (p.interner && p.interner->valid(static_cast<AtomId>(v)))
            return "#'" + p.interner->name(static_cast<AtomId>(v)) +
                   "'";
        return strprintf("#atm:%lld", static_cast<long long>(v));
      case Tag::Cod:
        return strprintf("#@%lld", static_cast<long long>(v));
      case Tag::Fun: {
        AtomId a = bam::functorAtom(v);
        std::string n = p.interner && p.interner->valid(a)
                            ? p.interner->name(a)
                            : strprintf("f%d", a);
        return strprintf("#%s/%d", n.c_str(), bam::functorArity(v));
      }
      default:
        return strprintf("#%s:%lld", bam::tagName(t),
                         static_cast<long long>(v));
    }
}

} // namespace

std::string
Program::str(const IInstr &i) const
{
    auto r = [](int reg) { return strprintf("r%d", reg); };
    std::string src_b =
        i.useImm ? immStr(*this, i.imm) : r(i.rb);

    switch (i.op) {
      case IOp::Ld:
        return strprintf("ld %s, [%s%+d]", r(i.rd).c_str(),
                         r(i.ra).c_str(), i.off);
      case IOp::St:
        return strprintf("st [%s%+d], %s%s", r(i.ra).c_str(), i.off,
                         src_b.c_str(), i.fresh ? "  ; fresh" : "");
      case IOp::Mov:
        return strprintf("mov %s, %s", r(i.rd).c_str(),
                         r(i.ra).c_str());
      case IOp::Movi:
        return strprintf("movi %s, %s", r(i.rd).c_str(),
                         immStr(*this, i.imm).c_str());
      case IOp::MkTag:
        return strprintf("mktag.%s %s, %s", bam::tagName(i.tag),
                         r(i.rd).c_str(), r(i.ra).c_str());
      case IOp::GetTag:
        return strprintf("gettag %s, %s", r(i.rd).c_str(),
                         r(i.ra).c_str());
      case IOp::BtagEq:
      case IOp::BtagNe:
        return strprintf("%s %s, %s -> %d", iopName(i.op),
                         r(i.ra).c_str(), bam::tagName(i.tag),
                         i.target);
      case IOp::Beq: case IOp::Bne: case IOp::Blt: case IOp::Ble:
      case IOp::Bgt: case IOp::Bge:
        return strprintf("%s %s, %s -> %d", iopName(i.op),
                         r(i.ra).c_str(), src_b.c_str(), i.target);
      case IOp::Jmp:
        return strprintf("jmp %d", i.target);
      case IOp::Jmpi:
        return strprintf("jmpi %s", r(i.ra).c_str());
      case IOp::Out:
        return strprintf("out %s", src_b.c_str());
      case IOp::Halt:
        return "halt";
      case IOp::Nop:
        return "nop";
      default:
        return strprintf("%s %s, %s, %s", iopName(i.op),
                         r(i.rd).c_str(), r(i.ra).c_str(),
                         src_b.c_str());
    }
}

std::string
Program::str() const
{
    std::string out;
    for (std::size_t k = 0; k < code.size(); ++k) {
        out += strprintf("%6d%s%s  %s\n", static_cast<int>(k),
                         procEntry[k] ? "P" : " ",
                         addressTaken[k] ? "@" : " ",
                         str(code[k]).c_str());
    }
    return out;
}

} // namespace symbol::intcode
