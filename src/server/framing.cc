#include "server/framing.hh"

#include <cstring>

#include "support/fnv.hh"
#include "support/text.hh"

namespace symbol::server
{

bool
FrameReader::poison(const std::string &why)
{
    error_ = why;
    buf_.clear();
    return false;
}

bool
FrameReader::complete(std::vector<Frame> &out)
{
    // Frame complete: verify the chained checksum over the first 20
    // header bytes + payload (see proto.hh).
    std::uint64_t sum = support::fnv1a(buf_.data(), 20);
    sum = support::fnv1a(buf_.data() + kFrameHeaderBytes,
                         static_cast<std::size_t>(payloadLen_),
                         sum);
    if (sum != checksum_)
        return poison("frame checksum mismatch");
    Frame f;
    f.kind = kind_;
    f.payload = buf_.substr(kFrameHeaderBytes);
    out.push_back(std::move(f));
    ++frames_;
    buf_.clear();
    haveHeader_ = false;
    return true;
}

bool
FrameReader::feed(const char *data, std::size_t n,
                  std::vector<Frame> &out)
{
    if (broken())
        return false;
    std::size_t pos = 0;
    while (pos < n) {
        if (!haveHeader_) {
            // Accumulate exactly one header's worth of bytes,
            // validating the magic as early as possible so garbage
            // streams die on their first bytes, not after 28.
            std::size_t want = kFrameHeaderBytes - buf_.size();
            std::size_t take = std::min(want, n - pos);
            buf_.append(data + pos, take);
            pos += take;
            std::size_t check =
                std::min(buf_.size(), sizeof kFrameMagic);
            if (std::memcmp(buf_.data(), kFrameMagic, check) != 0)
                return poison("bad frame magic");
            if (buf_.size() < kFrameHeaderBytes)
                return true; // short read: wait for more
            serialize::Reader r(buf_.data() + 4, buf_.size() - 4);
            std::uint32_t version = r.fixed32();
            if (version != kProtoVersion)
                return poison(strprintf(
                    "protocol version %u (expected %u)", version,
                    kProtoVersion));
            std::uint32_t kind = r.fixed32();
            payloadLen_ = r.fixed64();
            checksum_ = r.fixed64();
            if (payloadLen_ > maxPayload_)
                return poison(strprintf(
                    "payload length %llu exceeds bound %zu",
                    static_cast<unsigned long long>(payloadLen_),
                    maxPayload_));
            kind_ = static_cast<MsgKind>(kind);
            haveHeader_ = true;
            // A zero-payload frame is already complete here — the
            // payload branch below only runs when more bytes exist,
            // which a lone 28-byte ping never provides.
            if (payloadLen_ == 0 && !complete(out))
                return false;
            continue;
        }
        std::size_t have = buf_.size() - kFrameHeaderBytes;
        std::size_t want =
            static_cast<std::size_t>(payloadLen_) - have;
        std::size_t take = std::min(want, n - pos);
        buf_.append(data + pos, take);
        pos += take;
        if (buf_.size() - kFrameHeaderBytes < payloadLen_)
            return true; // short read: wait for more
        if (!complete(out))
            return false;
    }
    return true;
}

} // namespace symbol::server
