/**
 * @file
 * Per-connection framing state machine.
 *
 * A FrameReader consumes an arbitrary byte stream — short reads,
 * frames split at any offset, many frames per read — and emits
 * complete, checksum-verified frames. It never trusts the peer:
 *
 *  - garbage bytes fail the magic check immediately;
 *  - a version-bumped or oversized-length header is rejected
 *    *before* any payload is buffered, so a hostile length prefix
 *    cannot make the server allocate gigabytes;
 *  - a bit flip anywhere in header or payload breaks the chained
 *    FNV-1a checksum and the frame is rejected;
 *  - errors are sticky — once a stream is out of sync there is no
 *    way to resynchronise a length-prefixed protocol, so the
 *    connection must be dropped (after an optional best-effort
 *    error response).
 *
 * Mid-frame disconnects are the caller's to detect: read() returning
 * EOF while !idle() means the peer died inside a frame.
 *
 * tests/test_server.cc drives this class through a fuzz-style
 * corpus of truncated / bit-flipped / oversized / garbage streams,
 * in the spirit of test_serialize.cc's container corpus.
 */

#ifndef SYMBOL_SERVER_FRAMING_HH
#define SYMBOL_SERVER_FRAMING_HH

#include <cstddef>
#include <string>
#include <vector>

#include "server/proto.hh"

namespace symbol::server
{

/** One complete, checksum-verified frame. */
struct Frame
{
    MsgKind kind = MsgKind::ErrorResponse;
    std::string payload;
};

class FrameReader
{
  public:
    /** @p maxPayload overrides the protocol bound (tests shrink it
     *  to exercise the oversized path cheaply). */
    explicit FrameReader(std::size_t maxPayload = kMaxPayloadBytes)
        : maxPayload_(maxPayload)
    {
    }

    /**
     * Consume @p n bytes, appending every frame completed by them
     * to @p out. Returns false once the stream is poisoned —
     * error() then describes the first problem, already-completed
     * frames in @p out remain valid, and every further feed() is
     * ignored.
     */
    bool feed(const char *data, std::size_t n,
              std::vector<Frame> &out);

    /** Whether the stream is poisoned (sticky). */
    bool broken() const { return !error_.empty(); }

    /** First framing problem, empty while healthy. */
    const std::string &error() const { return error_; }

    /** True at a frame boundary — no partial frame buffered. EOF
     *  while !idle() is a mid-frame disconnect. */
    bool
    idle() const
    {
        return buf_.empty() && !broken();
    }

    /** Total frames emitted over the reader's lifetime. */
    std::uint64_t framesRead() const { return frames_; }

  private:
    bool poison(const std::string &why);
    /** Verify the completed frame's checksum and emit it. */
    bool complete(std::vector<Frame> &out);

    std::size_t maxPayload_;
    std::string buf_; ///< header-so-far, then header+payload-so-far
    bool haveHeader_ = false;
    MsgKind kind_ = MsgKind::ErrorResponse;
    std::uint64_t payloadLen_ = 0;
    std::uint64_t checksum_ = 0;
    std::string error_;
    std::uint64_t frames_ = 0;
};

} // namespace symbol::server

#endif // SYMBOL_SERVER_FRAMING_HH
