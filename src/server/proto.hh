/**
 * @file
 * The symbold wire protocol: length-prefixed, checksummed frames
 * carrying versioned request/response messages over a Unix-domain
 * socket (DESIGN.md §13).
 *
 * Frame layout (all header fields little-endian fixed-width):
 *
 *   offset 0   magic "SYRF" (SYmbol Request Frame)
 *          4   u32 protocol version (kProtoVersion)
 *          8   u32 message kind (MsgKind)
 *         12   u64 payload size (<= kMaxPayloadBytes)
 *         20   u64 FNV-1a checksum, chained over the first 20
 *              header bytes and then the payload — a bit flip
 *              anywhere in the frame is detected, mirroring the
 *              SYAF container's section-table discipline
 *         28   payload bytes (serialize::Writer encoding per kind)
 *
 * Version policy mirrors the artefact store: kProtoVersion covers
 * every message encoding; any change bumps it and a mismatch is a
 * framing error (there is no negotiation — client and server ship
 * together).
 *
 * Robustness contract: decoding NEVER exhibits undefined behaviour
 * on arbitrary bytes. The frame layer bounds the payload before
 * buffering it, the checksum rejects corruption, and the per-kind
 * decoders ride serialize::Reader's bounds checks — hostile input
 * can only produce a clean protocol error.
 */

#ifndef SYMBOL_SERVER_PROTO_HH
#define SYMBOL_SERVER_PROTO_HH

#include <cstdint>
#include <string>

#include "serialize/codec.hh"

namespace symbol::server
{

/** Bump on ANY change to ANY message encoding (see header). */
constexpr std::uint32_t kProtoVersion = 1;

/** The 4 magic bytes opening every frame. */
extern const char kFrameMagic[4];

/** Fixed frame-header size in bytes. */
constexpr std::size_t kFrameHeaderBytes = 28;

/** Hard payload bound: a request carries Prolog source and a
 *  response carries answers/schedules — 16 MiB is generous, and the
 *  bound is what keeps a hostile length prefix from allocating
 *  gigabytes. */
constexpr std::size_t kMaxPayloadBytes = 16u << 20;

/** Message kinds. Requests are odd-numbered concepts (client →
 *  server), responses even — but the numbering is flat and stable:
 *  values are wire format, never reordered. */
enum class MsgKind : std::uint32_t
{
    CompileRequest = 1,
    CompileResponse = 2,
    StatsRequest = 3,
    StatsResponse = 4,
    DrainRequest = 5,
    DrainResponse = 6,
    ErrorResponse = 7,
    PingRequest = 8,
    PongResponse = 9,
};

/** Error codes carried by ErrorResponse. */
enum class ErrCode : std::uint32_t
{
    BadRequest = 1, ///< malformed message or unknown benchmark/mode
    Overloaded = 2, ///< admission control rejected (in-flight bound)
    DeadlineExpired = 3, ///< the request's own deadline ran out
    Internal = 4,        ///< server-side failure (bug or resource)
    Draining = 5,        ///< server is shutting down gracefully
};

/** Human-readable name of @p code ("overloaded", …). */
const char *errCodeName(ErrCode code);

/** Compile-and-evaluate request: one Prolog program + one machine
 *  configuration. */
struct CompileRequest
{
    /** Complete Prolog source; empty = run the built-in suite
     *  benchmark named by @p name instead. */
    std::string source;
    /** Workload label; for empty @p source, a built-in benchmark
     *  name (symbolc --list). */
    std::string name;
    bool indexing = true;    ///< first-argument indexing
    bool expandTags = false; ///< plain-RISC tag-branch expansion
    bool protoMachine = false; ///< prototype config (vs idealShared)
    std::uint32_t units = 3;   ///< VLIW unit count, [1, 64]
    /** Compaction mode: "trace", "bb" or "seq" (sequential only). */
    std::string mode = "trace";
    /** Cooperative deadline in milliseconds; 0 = none. */
    std::uint64_t deadlineMillis = 0;
    /** Include the compacted wide-code listing in the response. */
    bool wantSchedule = false;
};

/** Where the served workload came from (mirrors
 *  suite::WorkloadOrigin). */
enum class Origin : std::uint8_t
{
    Built = 0, ///< full pipeline ran
    Disk = 1,  ///< restored from the artefact store (warm hit)
    Memory = 2 ///< already resident in the server's cache
};

struct CompileResponse
{
    std::string answer; ///< decoded out/1 stream of the program
    std::uint64_t instructions = 0; ///< executed ICIs
    std::uint64_t seqCycles = 0;    ///< sequential-model cycles
    std::uint64_t vliwCycles = 0;   ///< 0 in "seq" mode
    double speedup = 0.0;           ///< 0 in "seq" mode
    Origin origin = Origin::Built;
    std::string schedule; ///< wide-code listing, when requested
};

struct StatsResponse
{
    /** The --stats-json-shape document, plus a "server" object with
     *  the connection/admission counters. */
    std::string json;
};

struct DrainResponse
{
    /** Requests still in flight when the drain was acknowledged. */
    std::uint64_t inFlight = 0;
};

struct ErrorResponse
{
    ErrCode code = ErrCode::Internal;
    std::string message;
};

/** Per-kind payload codecs. Decoders throw serialize::DecodeError
 *  on malformed payloads (including trailing bytes). */
std::string encode(const CompileRequest &m);
std::string encode(const CompileResponse &m);
std::string encode(const StatsResponse &m);
std::string encode(const DrainResponse &m);
std::string encode(const ErrorResponse &m);

CompileRequest decodeCompileRequest(const std::string &payload);
CompileResponse decodeCompileResponse(const std::string &payload);
StatsResponse decodeStatsResponse(const std::string &payload);
DrainResponse decodeDrainResponse(const std::string &payload);
ErrorResponse decodeErrorResponse(const std::string &payload);

/** Pack one complete frame: header (with chained checksum) +
 *  payload. Throws RuntimeError if payload exceeds
 *  kMaxPayloadBytes. */
std::string packFrame(MsgKind kind, const std::string &payload);

} // namespace symbol::server

#endif // SYMBOL_SERVER_PROTO_HH
