#include "server/server.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "machine/config.hh"
#include "pass/instrument.hh"
#include "sched/compact.hh"
#include "serialize/codec.hh"
#include "suite/benchmarks.hh"
#include "suite/cache.hh"
#include "suite/statsjson.hh"
#include "suite/store.hh"
#include "support/deadline.hh"
#include "support/diagnostics.hh"
#include "support/json.hh"
#include "support/text.hh"

namespace symbol::server
{

namespace
{

suite::DriverOptions
driverOptions(const ServerOptions &o)
{
    suite::DriverOptions d;
    d.jobs = o.jobs;
    d.cacheDir = o.cacheDir;
    d.quiet = o.quiet;
    return d;
}

/** Write all of @p n bytes, retrying short writes and EINTR.
 *  MSG_NOSIGNAL: a vanished peer must yield EPIPE, not SIGPIPE. */
bool
sendAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/** The wake fd of the server drainOnSignals() is routing to; the
 *  handler only write()s, which is async-signal-safe. */
std::atomic<int> gSignalWakeFd{-1};

extern "C" void
drainSignalHandler(int)
{
    int fd = gSignalWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        char b = 1;
        // Best effort: a full pipe means a wake-up is already
        // pending, which is all we need.
        [[maybe_unused]] ssize_t r = ::write(fd, &b, 1);
    }
}

} // namespace

Server::Server(const ServerOptions &opts)
    : opts_(opts), driver_(driverOptions(opts))
{
    if (opts_.socketPath.empty())
        throw RuntimeError("server: socket path is required");
    if (opts_.maxInFlight == 0)
        throw RuntimeError("server: maxInFlight must be positive");
}

Server::~Server()
{
    if (!started_)
        return;
    requestDrain();
    wait();
}

void
Server::start()
{
    if (started_)
        throw RuntimeError("server: started twice");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof addr.sun_path)
        throw RuntimeError(strprintf(
            "server: socket path too long (%zu bytes, max %zu)",
            opts_.socketPath.size(), sizeof addr.sun_path - 1));
    std::memcpy(addr.sun_path, opts_.socketPath.c_str(),
                opts_.socketPath.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw RuntimeError(strprintf("server: socket: %s",
                                     std::strerror(errno)));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0) {
        if (errno != EADDRINUSE) {
            int err = errno;
            ::close(fd);
            throw RuntimeError(strprintf("server: bind %s: %s",
                                         opts_.socketPath.c_str(),
                                         std::strerror(err)));
        }
        // Distinguish a live server from a stale socket file left by
        // a crashed one: only the latter may be replaced.
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        bool live = probe >= 0 &&
                    ::connect(probe,
                              reinterpret_cast<sockaddr *>(&addr),
                              sizeof addr) == 0;
        if (probe >= 0)
            ::close(probe);
        if (live) {
            ::close(fd);
            throw RuntimeError(strprintf(
                "server: %s: a server is already listening",
                opts_.socketPath.c_str()));
        }
        ::unlink(opts_.socketPath.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0) {
            int err = errno;
            ::close(fd);
            throw RuntimeError(strprintf("server: bind %s: %s",
                                         opts_.socketPath.c_str(),
                                         std::strerror(err)));
        }
    }
    if (::listen(fd, 64) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(opts_.socketPath.c_str());
        throw RuntimeError(strprintf("server: listen %s: %s",
                                     opts_.socketPath.c_str(),
                                     std::strerror(err)));
    }
    int pipefd[2];
    if (::pipe(pipefd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(opts_.socketPath.c_str());
        throw RuntimeError(strprintf("server: pipe: %s",
                                     std::strerror(err)));
    }
    listenFd_ = fd;
    wakeR_ = pipefd[0];
    wakeW_ = pipefd[1];
    started_ = true;
    acceptor_ = std::thread(&Server::acceptLoop, this);
}

void
Server::requestDrain()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!started_ || draining_)
            return;
        draining_ = true;
    }
    char b = 1;
    [[maybe_unused]] ssize_t r = ::write(wakeW_, &b, 1);
}

void
Server::drainOnSignals(Server &s)
{
    gSignalWakeFd.store(s.wakeW_, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    // The drain path closes client sockets; writes racing that must
    // fail with EPIPE, not kill the process.
    signal(SIGPIPE, SIG_IGN);
}

bool
Server::draining() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakeR_, POLLIN, 0}};
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        bool wake = (fds[1].revents & POLLIN) != 0;
        if (!wake) {
            // A drain set draining_ then wrote the pipe; without the
            // pipe event yet, accepting is still correct (the flag
            // is re-checked per request).
            if (fds[0].revents & POLLIN) {
                int conn = ::accept(listenFd_, nullptr, nullptr);
                if (conn >= 0) {
                    std::lock_guard<std::mutex> lock(mu_);
                    if (draining_) {
                        ::close(conn);
                        continue;
                    }
                    ++counters_.accepted;
                    connFds_.push_back(conn);
                    connThreads_.emplace_back(&Server::connLoop,
                                              this, conn);
                }
            }
            continue;
        }
        break;
    }
    // Drain: stop new connections, then wake every blocked reader.
    // shutdown(SHUT_RD) makes their recv() return 0 as if the peer
    // closed; in-flight requests still answer before the connection
    // thread exits.
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(opts_.socketPath.c_str());
    for (int fd : connFds_)
        ::shutdown(fd, SHUT_RD);
}

void
Server::wait()
{
    if (!started_)
        return;
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> threads;
    {
        // The acceptor has exited, so connThreads_ can only shrink
        // conceptually from here; move the handles out and join
        // outside the lock (threads lock mu_ on their way out).
        std::lock_guard<std::mutex> lock(mu_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        if (t.joinable())
            t.join();
    std::lock_guard<std::mutex> lock(mu_);
    if (!drained_) {
        drained_ = true;
        ::close(wakeR_);
        ::close(wakeW_);
        wakeR_ = wakeW_ = -1;
        if (gSignalWakeFd.load(std::memory_order_relaxed) != -1)
            gSignalWakeFd.store(-1, std::memory_order_relaxed);
        if (!opts_.quiet) {
            std::fprintf(
                stderr,
                "[symbold] drained: %llu conns, %llu requests "
                "(%llu completed, %llu overloaded, %llu expired, "
                "%llu bad, %llu framing)\n",
                static_cast<unsigned long long>(counters_.accepted),
                static_cast<unsigned long long>(counters_.requests),
                static_cast<unsigned long long>(counters_.completed),
                static_cast<unsigned long long>(
                    counters_.overloadRejected),
                static_cast<unsigned long long>(
                    counters_.deadlineExpired),
                static_cast<unsigned long long>(
                    counters_.badRequests),
                static_cast<unsigned long long>(
                    counters_.framingErrors));
            driver_.reportStats();
        }
    }
}

ServerCounters
Server::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ServerCounters c = counters_;
    c.inFlight = inFlight_.load(std::memory_order_relaxed);
    return c;
}

std::string
Server::statsJson() const
{
    json::Value base = suite::statsDocument(
        driver_.stats(), driver_.jobs(),
        pass::PassInstrumentation::global().snapshot());
    // json::Object is a std::map: copy the top-level object to graft
    // the "server" member in (Value has no mutable member access).
    json::Object top = base.asObject();
    ServerCounters c = counters();
    json::Object s;
    s["accepted"] = c.accepted;
    s["requests"] = c.requests;
    s["completed"] = c.completed;
    s["overloadRejected"] = c.overloadRejected;
    s["deadlineExpired"] = c.deadlineExpired;
    s["badRequests"] = c.badRequests;
    s["framingErrors"] = c.framingErrors;
    s["internalErrors"] = c.internalErrors;
    s["drains"] = c.drains;
    s["respMemoryHits"] = c.respMemoryHits;
    s["respDiskHits"] = c.respDiskHits;
    s["inFlight"] = c.inFlight;
    s["draining"] = draining();
    top["server"] = json::Value(std::move(s));
    return json::Value(std::move(top)).dump() + "\n";
}

void
Server::connLoop(int fd)
{
    FrameReader reader;
    std::vector<Frame> frames;
    char buf[64 * 1024];
    bool dropped = false;
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            // EOF (or our own drain shutdown) inside a frame is a
            // mid-frame disconnect — account it like any other
            // framing failure.
            if (!reader.idle() && !reader.broken()) {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.framingErrors;
            }
            break;
        }
        frames.clear();
        bool ok = reader.feed(buf, static_cast<std::size_t>(n),
                              frames);
        for (const Frame &f : frames)
            if (!dispatch(fd, f)) {
                dropped = true;
                break;
            }
        if (dropped)
            break;
        if (!ok) {
            // Out of sync: best-effort error response, then drop —
            // a length-prefixed stream cannot resynchronise.
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++counters_.framingErrors;
            }
            sendError(fd, ErrCode::BadRequest, reader.error());
            break;
        }
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < connFds_.size(); ++i)
        if (connFds_[i] == fd) {
            connFds_.erase(connFds_.begin() + i);
            break;
        }
}

bool
Server::sendFrame(int fd, MsgKind kind, const std::string &payload)
{
    std::string frame = packFrame(kind, payload);
    return sendAll(fd, frame.data(), frame.size());
}

bool
Server::sendError(int fd, ErrCode code, const std::string &msg)
{
    ErrorResponse e;
    e.code = code;
    e.message = msg;
    return sendFrame(fd, MsgKind::ErrorResponse, encode(e));
}

bool
Server::tryAcquireSlot()
{
    std::uint64_t cur = inFlight_.load(std::memory_order_relaxed);
    // The admission bound is what keeps queueing delay off the
    // latency path: beyond it, reject instead of buffering.
    while (cur < opts_.maxInFlight)
        if (inFlight_.compare_exchange_weak(
                cur, cur + 1, std::memory_order_acq_rel))
            return true;
    return false;
}

void
Server::releaseSlot()
{
    inFlight_.fetch_sub(1, std::memory_order_acq_rel);
}

bool
Server::dispatch(int fd, const Frame &f)
{
    switch (f.kind) {
    case MsgKind::PingRequest:
        return sendFrame(fd, MsgKind::PongResponse, std::string());
    case MsgKind::StatsRequest: {
        StatsResponse s;
        s.json = statsJson();
        return sendFrame(fd, MsgKind::StatsResponse, encode(s));
    }
    case MsgKind::DrainRequest: {
        DrainResponse d;
        d.inFlight = inFlight_.load(std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.drains;
        }
        // Acknowledge first: requestDrain() shuts this connection's
        // read side down, and the client deserves the response.
        bool ok = sendFrame(fd, MsgKind::DrainResponse, encode(d));
        requestDrain();
        return ok;
    }
    case MsgKind::CompileRequest:
        return handleCompile(fd, f.payload);
    default: {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.badRequests;
    }
        sendError(fd, ErrCode::BadRequest,
                  strprintf("unexpected message kind %u",
                            static_cast<unsigned>(f.kind)));
        return false;
    }
}

bool
Server::handleCompile(int fd, const std::string &payload)
{
    CompileRequest req;
    try {
        req = decodeCompileRequest(payload);
    } catch (const serialize::DecodeError &e) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.badRequests;
        }
        // Framing was intact, only this payload is malformed: answer
        // the error and keep the connection.
        return sendError(fd, ErrCode::BadRequest, e.what());
    }
    if (draining())
        return sendError(fd, ErrCode::Draining,
                         "server is draining");
    if (!tryAcquireSlot()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.overloadRejected;
        }
        return sendError(fd, ErrCode::Overloaded,
                         strprintf("%zu requests in flight",
                                   opts_.maxInFlight));
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.requests;
    }
    support::Deadline deadline =
        support::Deadline::afterMillis(req.deadlineMillis);
    // Failures cross the pool boundary as values, never as thrown
    // objects: rethrowing a stored exception would hand this thread
    // a reference into the worker's task state, whose release races
    // the handler (a use-after-free tsan catches).
    struct Outcome
    {
        CompileResponse resp;
        bool failed = false;
        ErrCode code = ErrCode::Internal;
        std::string message;
    };
    Outcome out;
    try {
        // Run on the driver pool so compile work shares workers with
        // sweep tasks; the deadline is thread-local, so the scope
        // must be established inside the task, not here.
        auto fut = driver_.pool().submit([this, &req, &deadline] {
            Outcome o;
            support::DeadlineScope scope(deadline);
            try {
                o.resp = doCompile(req);
            } catch (const support::DeadlineExceeded &e) {
                o.failed = true;
                o.code = ErrCode::DeadlineExpired;
                o.message = e.what();
            } catch (const CompileError &e) {
                o.failed = true;
                o.code = ErrCode::BadRequest;
                o.message = e.what();
            } catch (const std::exception &e) {
                o.failed = true;
                o.code = ErrCode::Internal;
                o.message = e.what();
            }
            return o;
        });
        out = fut.get();
    } catch (const std::exception &e) {
        // The pool itself failed (submission or teardown).
        out.failed = true;
        out.code = ErrCode::Internal;
        out.message = e.what();
    }
    releaseSlot();
    if (!out.failed) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++counters_.completed;
        }
        return sendFrame(fd, MsgKind::CompileResponse,
                         encode(out.resp));
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (out.code == ErrCode::DeadlineExpired)
            ++counters_.deadlineExpired;
        else if (out.code == ErrCode::BadRequest)
            ++counters_.badRequests;
        else
            ++counters_.internalErrors;
    }
    return sendError(fd, out.code, out.message);
}

bool
Server::lookupResponse(const std::string &key, CompileResponse &out)
{
    bool hit = false;
    {
        std::lock_guard<std::mutex> lock(respMu_);
        auto it = respCache_.find(key);
        if (it != respCache_.end()) {
            out = it->second;
            hit = true;
        }
    }
    if (hit) {
        out.origin = Origin::Memory;
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.respMemoryHits;
        return true;
    }
    suite::ArtifactStore *store = driver_.store();
    std::string blob;
    if (!store || !store->loadBlob("rs", key, blob))
        return false;
    try {
        out = decodeCompileResponse(blob);
    } catch (const serialize::DecodeError &) {
        // Corrupt blob: recompute (and overwrite it below).
        return false;
    }
    out.origin = Origin::Disk;
    {
        std::lock_guard<std::mutex> lock(respMu_);
        respCache_.emplace(key, out);
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.respDiskHits;
    return true;
}

void
Server::rememberResponse(const std::string &key,
                         const CompileResponse &resp)
{
    {
        std::lock_guard<std::mutex> lock(respMu_);
        respCache_[key] = resp;
    }
    if (suite::ArtifactStore *store = driver_.store())
        store->storeBlob("rs", key, encode(resp));
}

CompileResponse
Server::doCompile(const CompileRequest &req)
{
    support::checkDeadline("admission");
    suite::Benchmark adhoc;
    const suite::Benchmark *bench;
    if (req.source.empty()) {
        bench = &suite::benchmark(req.name);
    } else {
        adhoc.name = req.name.empty() ? "request" : req.name;
        adhoc.source = req.source;
        bench = &adhoc;
    }
    suite::WorkloadOptions wo;
    wo.compiler.indexing = req.indexing;
    wo.translate.expandTagBranches = req.expandTags;

    // The full request key: the workload's cache key (fingerprint +
    // source) extended with the response-shaping dimensions. A hit
    // skips compile AND simulation — the warm path is a lookup.
    std::string rkey =
        suite::WorkloadCache::keyOf(*bench, wo) +
        strprintf("|pv%u|proto%d|u%u|m:%s|sched%d", kProtoVersion,
                  req.protoMachine ? 1 : 0, req.units,
                  req.mode.c_str(), req.wantSchedule ? 1 : 0);
    CompileResponse cached;
    if (lookupResponse(rkey, cached))
        return cached;

    suite::WorkloadOrigin origin = suite::WorkloadOrigin::Built;
    const suite::Workload &w = driver_.workload(*bench, wo, &origin);

    CompileResponse resp;
    resp.origin = static_cast<Origin>(origin);
    resp.answer = w.seqOutput();
    resp.instructions = w.instructions();
    resp.seqCycles = w.seqCycles();
    if (req.mode != "seq") {
        machine::MachineConfig mc =
            req.protoMachine
                ? machine::MachineConfig::prototype(
                      static_cast<int>(req.units))
                : machine::MachineConfig::idealShared(
                      static_cast<int>(req.units));
        sched::CompactOptions co;
        co.traceMode = req.mode == "trace";
        support::checkDeadline("compact");
        suite::VliwRun run = w.runVliw(mc, co);
        resp.vliwCycles = run.cycles;
        resp.speedup = run.speedupVsSeq;
        if (req.wantSchedule) {
            sched::CompactResult cr =
                sched::compact(w.ici(), w.profile(), mc, co);
            resp.schedule = cr.code.str();
        }
    }
    support::checkDeadline("respond");
    rememberResponse(rkey, resp);
    return resp;
}

} // namespace symbol::server
