#include "server/proto.hh"

#include "support/diagnostics.hh"

namespace symbol::server
{

using serialize::DecodeError;
using serialize::Reader;
using serialize::Writer;

const char kFrameMagic[4] = {'S', 'Y', 'R', 'F'};

const char *
errCodeName(ErrCode code)
{
    switch (code) {
    case ErrCode::BadRequest:
        return "bad-request";
    case ErrCode::Overloaded:
        return "overloaded";
    case ErrCode::DeadlineExpired:
        return "deadline-expired";
    case ErrCode::Internal:
        return "internal";
    case ErrCode::Draining:
        return "draining";
    }
    return "unknown";
}

std::string
encode(const CompileRequest &m)
{
    Writer w;
    w.str(m.source);
    w.str(m.name);
    w.b(m.indexing);
    w.b(m.expandTags);
    w.b(m.protoMachine);
    w.vu(m.units);
    w.str(m.mode);
    w.vu(m.deadlineMillis);
    w.b(m.wantSchedule);
    return w.take();
}

CompileRequest
decodeCompileRequest(const std::string &payload)
{
    Reader r(payload);
    CompileRequest m;
    m.source = r.str();
    m.name = r.str();
    m.indexing = r.b();
    m.expandTags = r.b();
    m.protoMachine = r.b();
    std::uint64_t units = r.vu();
    if (units < 1 || units > 64)
        throw DecodeError("units out of range");
    m.units = static_cast<std::uint32_t>(units);
    m.mode = r.str();
    if (m.mode != "trace" && m.mode != "bb" && m.mode != "seq")
        throw DecodeError("unknown compaction mode '" + m.mode +
                          "'");
    m.deadlineMillis = r.vu();
    m.wantSchedule = r.b();
    r.expectEnd();
    if (m.source.empty() && m.name.empty())
        throw DecodeError("neither source nor benchmark name given");
    return m;
}

std::string
encode(const CompileResponse &m)
{
    Writer w;
    w.str(m.answer);
    w.vu(m.instructions);
    w.vu(m.seqCycles);
    w.vu(m.vliwCycles);
    w.f64(m.speedup);
    w.u8(static_cast<std::uint8_t>(m.origin));
    w.str(m.schedule);
    return w.take();
}

CompileResponse
decodeCompileResponse(const std::string &payload)
{
    Reader r(payload);
    CompileResponse m;
    m.answer = r.str();
    m.instructions = r.vu();
    m.seqCycles = r.vu();
    m.vliwCycles = r.vu();
    m.speedup = r.f64();
    std::uint8_t origin = r.u8();
    if (origin > 2)
        throw DecodeError("bad origin");
    m.origin = static_cast<Origin>(origin);
    m.schedule = r.str();
    r.expectEnd();
    return m;
}

std::string
encode(const StatsResponse &m)
{
    Writer w;
    w.str(m.json);
    return w.take();
}

StatsResponse
decodeStatsResponse(const std::string &payload)
{
    Reader r(payload);
    StatsResponse m;
    m.json = r.str();
    r.expectEnd();
    return m;
}

std::string
encode(const DrainResponse &m)
{
    Writer w;
    w.vu(m.inFlight);
    return w.take();
}

DrainResponse
decodeDrainResponse(const std::string &payload)
{
    Reader r(payload);
    DrainResponse m;
    m.inFlight = r.vu();
    r.expectEnd();
    return m;
}

std::string
encode(const ErrorResponse &m)
{
    Writer w;
    w.vu(static_cast<std::uint32_t>(m.code));
    w.str(m.message);
    return w.take();
}

ErrorResponse
decodeErrorResponse(const std::string &payload)
{
    Reader r(payload);
    ErrorResponse m;
    std::uint64_t code = r.vu();
    if (code < 1 || code > 5)
        throw DecodeError("bad error code");
    m.code = static_cast<ErrCode>(code);
    m.message = r.str();
    r.expectEnd();
    return m;
}

std::string
packFrame(MsgKind kind, const std::string &payload)
{
    if (payload.size() > kMaxPayloadBytes)
        throw RuntimeError("packFrame: payload exceeds frame bound");
    Writer w;
    for (char c : kFrameMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.fixed32(kProtoVersion);
    w.fixed32(static_cast<std::uint32_t>(kind));
    w.fixed64(payload.size());
    // Chained FNV-1a over the header-so-far and then the payload: a
    // flip of any frame byte (kind and length included) breaks it.
    std::uint64_t sum = support::fnv1a(w.bytes().data(), w.size());
    sum = support::fnv1a(payload.data(), payload.size(), sum);
    w.fixed64(sum);
    std::string out = w.take();
    out += payload;
    return out;
}

} // namespace symbol::server
