/**
 * @file
 * symbold's long-lived compile-and-evaluate service (DESIGN.md §13).
 *
 * The Server listens on a Unix-domain socket, speaks the framed
 * protocol of server/proto.hh, and dispatches compile requests onto
 * the existing evaluation stack: the suite::EvalDriver's
 * support::ThreadPool runs the work, the content-keyed
 * WorkloadCache deduplicates identical programs across clients, and
 * the sharded ArtifactStore answers warm hits without touching the
 * compiler at all.
 *
 * Service disciplines:
 *  - Admission control: at most maxInFlight compile requests exist
 *    at once — running or queued on the pool. Requests beyond the
 *    bound are rejected *immediately* with an `overloaded` error
 *    (never buffered), so latency stays bounded under overload and
 *    a client can back off.
 *  - Deadlines: each request may carry a budget in milliseconds; it
 *    is enforced cooperatively at pass boundaries
 *    (support/deadline.hh) and an expired request answers
 *    `deadline-expired`. Work that already finished (cache entries,
 *    store artefacts) is kept — a deadline aborts a response, not
 *    the shared state.
 *  - Graceful drain: requestDrain() (a DrainRequest frame, SIGINT or
 *    SIGTERM) stops accepting connections, lets in-flight requests
 *    complete and answer, wakes blocked readers, and wait() returns
 *    with every thread joined and the socket unlinked. New requests
 *    racing the drain answer `draining`.
 *  - One connection is served by one thread, requests processed in
 *    order; concurrency comes from concurrent connections, whose
 *    compile work shares the driver pool.
 */

#ifndef SYMBOL_SERVER_SERVER_HH
#define SYMBOL_SERVER_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/framing.hh"
#include "server/proto.hh"
#include "suite/driver.hh"

namespace symbol::server
{

struct ServerOptions
{
    /** Unix-domain socket path (required). A stale socket file from
     *  a dead server is replaced; a live one fails start(). */
    std::string socketPath;
    /** Artefact-store directory (empty = SYMBOL_CACHE_DIR env, and
     *  when that is unset too, memory-only caching). */
    std::string cacheDir;
    /** Driver pool width; 0 = SYMBOL_JOBS / hardware concurrency. */
    unsigned jobs = 0;
    /** Admission bound: maximum compile requests in flight. */
    std::size_t maxInFlight = 64;
    /** Suppress the per-drain stderr summary. */
    bool quiet = false;
};

/** Monotonic service counters (one snapshot; see statsJson for the
 *  machine-readable form). */
struct ServerCounters
{
    std::uint64_t accepted = 0;  ///< connections accepted
    std::uint64_t requests = 0;  ///< compile requests admitted
    std::uint64_t completed = 0; ///< compile responses sent
    std::uint64_t overloadRejected = 0;
    std::uint64_t deadlineExpired = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t framingErrors = 0;
    std::uint64_t internalErrors = 0;
    std::uint64_t drains = 0; ///< drain requests received
    /** Compile responses served straight from the in-memory
     *  response cache (no pipeline work at all). */
    std::uint64_t respMemoryHits = 0;
    /** Compile responses restored from the artefact store's `rs-`
     *  blobs (no pipeline work at all). */
    std::uint64_t respDiskHits = 0;
    std::uint64_t inFlight = 0; ///< snapshot, not monotonic
};

class Server
{
  public:
    explicit Server(const ServerOptions &opts);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the acceptor. Throws RuntimeError if
     *  the socket cannot be bound (e.g. a live server owns it). */
    void start();

    /**
     * Begin a graceful drain: stop accepting, wake blocked
     * connection readers, let in-flight requests answer. Safe to
     * call from any thread, any number of times.
     */
    void requestDrain();

    /** Route SIGINT/SIGTERM to requestDrain() for this server (one
     *  server per process; the handler is async-signal-safe). */
    static void drainOnSignals(Server &s);

    /** Block until the server has fully drained: every connection
     *  closed, every thread joined, the socket unlinked. */
    void wait();

    bool draining() const;

    ServerCounters counters() const;

    /** The machine-readable stats document: the --stats-json shape
     *  plus a "server" object with the counters above. */
    std::string statsJson() const;

    /** The evaluation driver serving this server (tests reconcile
     *  its stats against responses). */
    suite::EvalDriver &driver() { return driver_; }

  private:
    void acceptLoop();
    void connLoop(int fd);
    /** Process one frame; false = drop the connection. */
    bool dispatch(int fd, const Frame &f);
    bool handleCompile(int fd, const std::string &payload);
    CompileResponse doCompile(const CompileRequest &req);
    /** Serve @p key from the response cache (memory, then the
     *  store's `rs-` blobs). False = compute it. */
    bool lookupResponse(const std::string &key,
                        CompileResponse &out);
    void rememberResponse(const std::string &key,
                          const CompileResponse &resp);
    bool sendFrame(int fd, MsgKind kind, const std::string &payload);
    bool sendError(int fd, ErrCode code, const std::string &msg);
    bool tryAcquireSlot();
    void releaseSlot();

    ServerOptions opts_;
    suite::EvalDriver driver_;

    int listenFd_ = -1;
    int wakeR_ = -1, wakeW_ = -1; ///< drain wake pipe
    std::thread acceptor_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool started_ = false;
    bool draining_ = false;
    bool drained_ = false;
    std::vector<int> connFds_; ///< open connections (for shutdown)
    std::vector<std::thread> connThreads_;
    ServerCounters counters_;
    std::atomic<std::uint64_t> inFlight_{0};

    /** Completed responses by full request key: identical requests
     *  are answered without touching the pipeline. The simulation
     *  is a pure function of (program, options, config), so a
     *  cached response is byte-identical to a recomputed one. */
    std::mutex respMu_;
    std::unordered_map<std::string, CompileResponse> respCache_;
};

} // namespace symbol::server

#endif // SYMBOL_SERVER_SERVER_HH
