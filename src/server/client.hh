/**
 * @file
 * Client side of the symbold protocol: one blocking connection that
 * frames requests with server/proto.hh and decodes the responses.
 *
 * Error model: transport problems (connect/send/recv failures,
 * unexpected EOF, framing corruption) throw RuntimeError; a clean
 * protocol-level rejection from the server — overloaded,
 * deadline-expired, draining, bad request — throws ServerError
 * carrying the ErrCode, so callers (symbolctl, the load generator)
 * can branch on the code without string matching.
 */

#ifndef SYMBOL_SERVER_CLIENT_HH
#define SYMBOL_SERVER_CLIENT_HH

#include <cstdint>
#include <string>

#include "server/framing.hh"
#include "server/proto.hh"
#include "support/diagnostics.hh"

namespace symbol::server
{

/** A clean protocol-level error answered by the server. */
class ServerError : public RuntimeError
{
  public:
    ServerError(ErrCode code, const std::string &message)
        : RuntimeError(std::string(errCodeName(code)) + ": " +
                       message),
          code_(code)
    {
    }

    ErrCode code() const { return code_; }

  private:
    ErrCode code_;
};

class Client
{
  public:
    /** Connect to the server at @p socketPath (throws RuntimeError
     *  if nothing is listening). */
    explicit Client(const std::string &socketPath);
    ~Client();
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Submit one compile-and-evaluate request and wait for the
     *  response. */
    CompileResponse compile(const CompileRequest &req);

    /** The server's stats document (--stats-json shape + "server"
     *  counters). */
    std::string statsJson();

    /** Ask the server to drain; returns the in-flight count it
     *  acknowledged with. */
    std::uint64_t drain();

    /** Round-trip liveness probe. */
    void ping();

  private:
    /** Send one frame, read frames until one response completes. */
    Frame roundTrip(MsgKind kind, const std::string &payload);

    int fd_ = -1;
    FrameReader reader_;
};

} // namespace symbol::server

#endif // SYMBOL_SERVER_CLIENT_HH
