#include "server/client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/text.hh"

namespace symbol::server
{

Client::Client(const std::string &socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof addr.sun_path)
        throw RuntimeError("client: socket path too long");
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        throw RuntimeError(strprintf("client: socket: %s",
                                     std::strerror(errno)));
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw RuntimeError(strprintf("client: connect %s: %s",
                                     socketPath.c_str(),
                                     std::strerror(err)));
    }
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Frame
Client::roundTrip(MsgKind kind, const std::string &payload)
{
    std::string frame = packFrame(kind, payload);
    const char *data = frame.data();
    std::size_t n = frame.size();
    while (n > 0) {
        ssize_t w = ::send(fd_, data, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw RuntimeError(strprintf("client: send: %s",
                                         std::strerror(errno)));
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    std::vector<Frame> frames;
    char buf[64 * 1024];
    while (frames.empty()) {
        ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw RuntimeError(strprintf("client: recv: %s",
                                         std::strerror(errno)));
        }
        if (r == 0)
            throw RuntimeError(
                "client: server closed the connection");
        if (!reader_.feed(buf, static_cast<std::size_t>(r),
                          frames) &&
            frames.empty())
            throw RuntimeError("client: framing: " +
                               reader_.error());
    }
    Frame f = std::move(frames.front());
    if (f.kind == MsgKind::ErrorResponse) {
        ErrorResponse e = decodeErrorResponse(f.payload);
        throw ServerError(e.code, e.message);
    }
    return f;
}

CompileResponse
Client::compile(const CompileRequest &req)
{
    Frame f = roundTrip(MsgKind::CompileRequest, encode(req));
    if (f.kind != MsgKind::CompileResponse)
        throw RuntimeError("client: unexpected response kind");
    return decodeCompileResponse(f.payload);
}

std::string
Client::statsJson()
{
    Frame f = roundTrip(MsgKind::StatsRequest, std::string());
    if (f.kind != MsgKind::StatsResponse)
        throw RuntimeError("client: unexpected response kind");
    return decodeStatsResponse(f.payload).json;
}

std::uint64_t
Client::drain()
{
    Frame f = roundTrip(MsgKind::DrainRequest, std::string());
    if (f.kind != MsgKind::DrainResponse)
        throw RuntimeError("client: unexpected response kind");
    return decodeDrainResponse(f.payload).inFlight;
}

void
Client::ping()
{
    Frame f = roundTrip(MsgKind::PingRequest, std::string());
    if (f.kind != MsgKind::PongResponse)
        throw RuntimeError("client: unexpected response kind");
}

} // namespace symbol::server
