#include "pass/instrument.hh"

#include <atomic>
#include <cstdlib>

#include "support/text.hh"

namespace symbol::pass
{

namespace
{

std::atomic<bool> g_timePasses{false};
std::atomic<bool> g_timePassesInit{false};

} // namespace

const std::vector<std::string> &
PassInstrumentation::pipelineOrder()
{
    // Fig. 1, top to bottom: the front half runs once per workload,
    // the back half once per (workload × machine config) evaluation.
    // "seq-latency" is the §5.3 same-duration sequential re-emulation
    // triggered by non-default latency configs.
    // The check-* passes are the static IR analyzer (src/check,
    // DESIGN.md §11); they run right after the front half produced
    // both IR levels, when --analyze / SYMBOL_ANALYZE requests them.
    static const std::vector<std::string> kOrder = {
        "parse",          "normalize", "bam-compile", "intcode",
        "cfg",            "profile",   "check-structural",
        "check-definit",  "check-tags", "check-balance",
        "check-deadcode", "seq-latency", "sched.traces",
        "sched.ddg",      "sched.schedule", "sched.emit",
        "verify",         "simulate",
    };
    return kOrder;
}

PassInstrumentation::PassInstrumentation()
{
    for (const std::string &name : pipelineOrder())
        slotOf(name);
}

std::size_t
PassInstrumentation::slotOf(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    std::size_t slot = stats_.size();
    PassStats s;
    s.name = name;
    stats_.push_back(std::move(s));
    index_.emplace(name, slot);
    return slot;
}

void
PassInstrumentation::record(const std::string &name,
                            double wallSeconds, std::uint64_t irIn,
                            std::uint64_t irOut)
{
    std::lock_guard<std::mutex> lk(mu_);
    PassStats &s = stats_[slotOf(name)];
    s.invocations += 1;
    s.wallSeconds += wallSeconds;
    s.irIn += irIn;
    s.irOut += irOut;
}

std::vector<PassStats>
PassInstrumentation::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<PassStats> out;
    out.reserve(stats_.size());
    for (const PassStats &s : stats_)
        if (s.invocations > 0)
            out.push_back(s);
    return out;
}

void
PassInstrumentation::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (PassStats &s : stats_) {
        s.invocations = 0;
        s.wallSeconds = 0.0;
        s.irIn = 0;
        s.irOut = 0;
    }
}

PassInstrumentation &
PassInstrumentation::global()
{
    static PassInstrumentation g;
    return g;
}

bool
timePassesEnabled()
{
    if (!g_timePassesInit.load(std::memory_order_acquire)) {
        bool on = false;
        if (const char *env = std::getenv("SYMBOL_TIME_PASSES"))
            on = *env != '\0' && std::string(env) != "0";
        g_timePasses.store(on, std::memory_order_relaxed);
        g_timePassesInit.store(true, std::memory_order_release);
    }
    return g_timePasses.load(std::memory_order_relaxed);
}

void
setTimePasses(bool on)
{
    g_timePasses.store(on, std::memory_order_relaxed);
    g_timePassesInit.store(true, std::memory_order_release);
}

std::string
timingReport(const std::vector<PassStats> &passes)
{
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"pass", "calls", "wall(s)", "ir.in", "ir.out"});
    double total = 0.0;
    for (const PassStats &p : passes) {
        rows.push_back(
            {p.name,
             strprintf("%llu",
                       static_cast<unsigned long long>(p.invocations)),
             strprintf("%.4f", p.wallSeconds),
             strprintf("%llu",
                       static_cast<unsigned long long>(p.irIn)),
             strprintf("%llu",
                       static_cast<unsigned long long>(p.irOut))});
        total += p.wallSeconds;
    }
    rows.push_back({"total", "", strprintf("%.4f", total), "", ""});
    return renderTable(rows);
}

std::string
toJson(const std::vector<PassStats> &passes)
{
    std::string out = "[";
    for (std::size_t i = 0; i < passes.size(); ++i) {
        const PassStats &p = passes[i];
        if (i)
            out += ",";
        out += strprintf(
            "{\"name\":\"%s\",\"invocations\":%llu,"
            "\"wallSeconds\":%.9f,\"irIn\":%llu,\"irOut\":%llu}",
            p.name.c_str(),
            static_cast<unsigned long long>(p.invocations),
            p.wallSeconds,
            static_cast<unsigned long long>(p.irIn),
            static_cast<unsigned long long>(p.irOut));
    }
    out += "]";
    return out;
}

} // namespace symbol::pass
