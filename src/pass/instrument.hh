/**
 * @file
 * Pass instrumentation: thread-safe aggregation of per-pass wall
 * time, IR sizes in/out and invocation counts across the whole
 * toolchain (see DESIGN.md §10).
 *
 * Every stage of the Fig. 1 pipeline — front half (parse, normalize,
 * BAM compile, IntCode translation, CFG build, profiling emulation)
 * and back half (the compactor's sub-passes, verification, VLIW
 * simulation) — records one entry per invocation into a
 * PassInstrumentation sink. The sink aggregates under the pass name;
 * snapshot() returns the canonical pipeline order first, so reports
 * read top-to-bottom like the pipeline runs, regardless of which
 * thread recorded first.
 *
 * Determinism contract: `invocations`, `irIn` and `irOut` are exact
 * counts of deterministic work, so for a fixed task set they are
 * identical for any SYMBOL_JOBS (tests/test_pass.cc locks this
 * down). `wallSeconds` is measured time and carries no such
 * guarantee.
 */

#ifndef SYMBOL_PASS_INSTRUMENT_HH
#define SYMBOL_PASS_INSTRUMENT_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace symbol::pass
{

/** Aggregated statistics of one pass across all invocations. */
struct PassStats
{
    std::string name;
    std::uint64_t invocations = 0;
    double wallSeconds = 0.0;
    /** Total IR units consumed (pass-specific unit, e.g. clauses,
     *  instructions, blocks; see the pass's irIn contract). */
    std::uint64_t irIn = 0;
    /** Total IR units produced. */
    std::uint64_t irOut = 0;
};

/**
 * Thread-safe aggregation sink for pass records.
 *
 * The canonical pipeline passes are pre-registered at construction,
 * so snapshot() order is deterministic (pipeline order, then
 * first-registration order for ad-hoc names). Aggregation is a
 * mutex-protected accumulate: cheap relative to any pass body.
 */
class PassInstrumentation
{
  public:
    PassInstrumentation();
    PassInstrumentation(const PassInstrumentation &) = delete;
    PassInstrumentation &operator=(const PassInstrumentation &) =
        delete;

    /** Add one invocation of @p name to the aggregate. */
    void record(const std::string &name, double wallSeconds,
                std::uint64_t irIn, std::uint64_t irOut);

    /**
     * Aggregates of every pass that recorded at least once, in
     * canonical pipeline order (ad-hoc passes follow, in the order
     * they first recorded).
     */
    std::vector<PassStats> snapshot() const;

    /** Drop all aggregates (pre-registered order survives). */
    void reset();

    /** The process-wide default sink. */
    static PassInstrumentation &global();

    /** Canonical pipeline pass names, in pipeline order. */
    static const std::vector<std::string> &pipelineOrder();

  private:
    /** Slot of @p name, appending a fresh one if unseen. Caller
     *  holds mu_. */
    std::size_t slotOf(const std::string &name);

    mutable std::mutex mu_;
    std::vector<PassStats> stats_; ///< stable registration order
    std::unordered_map<std::string, std::size_t> index_;
};

/**
 * Whether per-pass timing reports were requested (the --time-passes
 * flag or a non-empty, non-"0" SYMBOL_TIME_PASSES environment
 * variable). Collection is always on — this only gates reporting.
 */
bool timePassesEnabled();

/** Turn timing reports on/off programmatically (--time-passes). */
void setTimePasses(bool on);

/** Render a snapshot as an aligned report table (one line per
 *  pass), e.g. for --time-passes output on stderr. */
std::string timingReport(const std::vector<PassStats> &passes);

/** Render a snapshot as a JSON array (see DESIGN.md §10 for the
 *  schema); parseable by support/json.hh. */
std::string toJson(const std::vector<PassStats> &passes);

} // namespace symbol::pass

#endif // SYMBOL_PASS_INSTRUMENT_HH
