/**
 * @file
 * The pass framework: every stage of the evaluation toolchain is an
 * explicit, named, instrumented unit of work (DESIGN.md §10).
 *
 * A Pass<Ctx> transforms a pipeline context in place and declares
 * its IR sizes; a PassManager<Ctx> runs a fixed sequence of passes
 * over one context, timing each and recording (wall time, IR
 * in/out, invocation count) into a PassInstrumentation sink. The
 * manager is cheap enough to build per pipeline run — all shared
 * state lives in the sink, which aggregates thread-safely across the
 * EvalDriver's pool.
 *
 * Passes with internal structure (the compactor) may opt out of the
 * manager's timer via selfInstrumented() and record their own
 * sub-passes instead, so no work is ever counted twice.
 *
 * The independent schedule checker (src/verify) is deliberately
 * *outside* this framework when used as a standalone sweep: its
 * value is that it shares no infrastructure with the passes it
 * checks. Inside runVliw() it is wrapped as an ordinary pass purely
 * for timing.
 */

#ifndef SYMBOL_PASS_PASS_HH
#define SYMBOL_PASS_PASS_HH

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "pass/instrument.hh"
#include "support/deadline.hh"

namespace symbol::pass
{

/** One named stage of a pipeline over context @p Ctx. */
template <class Ctx>
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name (the instrumentation/report key). */
    virtual const char *name() const = 0;

    /** Transform @p ctx in place. */
    virtual void run(Ctx &ctx) = 0;

    /** IR units about to be consumed (evaluated before run()). */
    virtual std::uint64_t
    irIn(const Ctx &) const
    {
        return 0;
    }

    /** IR units produced (evaluated after run()). */
    virtual std::uint64_t
    irOut(const Ctx &) const
    {
        return 0;
    }

    /**
     * A self-instrumented pass records its own (finer-grained)
     * entries from inside run(); the manager then skips its own
     * record so the work is never double-counted.
     */
    virtual bool
    selfInstrumented() const
    {
        return false;
    }
};

/**
 * A pass defined by callables — for pipeline stages assembled inside
 * a member function, where the pass body needs access the enclosing
 * object grants via lambda capture.
 */
template <class Ctx>
class FunctionPass : public Pass<Ctx>
{
  public:
    using RunFn = std::function<void(Ctx &)>;
    using SizeFn = std::function<std::uint64_t(const Ctx &)>;

    FunctionPass(const char *name, RunFn run, SizeFn irIn = {},
                 SizeFn irOut = {}, bool selfInstrumented = false)
        : name_(name), run_(std::move(run)), irIn_(std::move(irIn)),
          irOut_(std::move(irOut)), self_(selfInstrumented)
    {
    }

    const char *
    name() const override
    {
        return name_;
    }
    void
    run(Ctx &ctx) override
    {
        run_(ctx);
    }
    std::uint64_t
    irIn(const Ctx &ctx) const override
    {
        return irIn_ ? irIn_(ctx) : 0;
    }
    std::uint64_t
    irOut(const Ctx &ctx) const override
    {
        return irOut_ ? irOut_(ctx) : 0;
    }
    bool
    selfInstrumented() const override
    {
        return self_;
    }

  private:
    const char *name_;
    RunFn run_;
    SizeFn irIn_, irOut_;
    bool self_;
};

/**
 * Runs a sequence of passes over one context, recording each into
 * the sink (null = the process-wide default).
 */
template <class Ctx>
class PassManager
{
  public:
    explicit PassManager(PassInstrumentation *instr = nullptr)
        : instr_(instr ? instr : &PassInstrumentation::global())
    {
    }

    /** The sink this manager records into. */
    PassInstrumentation &
    instrumentation() const
    {
        return *instr_;
    }

    /** Append a pass; passes run in add order. */
    void
    add(std::unique_ptr<Pass<Ctx>> p)
    {
        passes_.push_back(std::move(p));
    }

    /** Run every pass over @p ctx, in order. */
    void
    run(Ctx &ctx) const
    {
        for (const auto &p : passes_)
            runOne(*p, ctx);
    }

    /** Run a single pass over @p ctx with instrumentation. Pass
     *  boundaries are the toolchain's cooperative deadline
     *  checkpoints: a request whose budget ran out stops *before*
     *  the next pass starts, never mid-pass, so every artefact that
     *  exists when DeadlineExceeded unwinds is complete. */
    void
    runOne(Pass<Ctx> &p, Ctx &ctx) const
    {
        support::checkDeadline(p.name());
        if (p.selfInstrumented()) {
            p.run(ctx);
            return;
        }
        using clock = std::chrono::steady_clock;
        std::uint64_t in = p.irIn(ctx);
        auto t0 = clock::now();
        p.run(ctx);
        double secs =
            std::chrono::duration<double>(clock::now() - t0).count();
        instr_->record(p.name(), secs, in, p.irOut(ctx));
    }

  private:
    PassInstrumentation *instr_;
    std::vector<std::unique_ptr<Pass<Ctx>>> passes_;
};

/**
 * Helper for self-instrumented passes: accumulates the wall time of
 * many scoped sections under one name and records a single entry.
 */
class SubPassTimer
{
  public:
    SubPassTimer(const char *name, PassInstrumentation *instr)
        : name_(name),
          instr_(instr ? instr : &PassInstrumentation::global())
    {
    }

    /** Record the accumulated time once, with the given IR sizes. */
    void
    finish(std::uint64_t irIn, std::uint64_t irOut)
    {
        instr_->record(name_, seconds_, irIn, irOut);
    }

    /** Times one section into the owning SubPassTimer. */
    class Scope
    {
      public:
        explicit Scope(SubPassTimer &t)
            : t_(t), t0_(std::chrono::steady_clock::now())
        {
        }
        ~Scope()
        {
            t_.seconds_ += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0_)
                               .count();
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        SubPassTimer &t_;
        std::chrono::steady_clock::time_point t0_;
    };

  private:
    const char *name_;
    PassInstrumentation *instr_;
    double seconds_ = 0.0;
};

} // namespace symbol::pass

#endif // SYMBOL_PASS_PASS_HH
