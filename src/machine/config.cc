#include "machine/config.hh"

#include "support/text.hh"

namespace symbol::machine
{

std::string
MachineConfig::fingerprint() const
{
    // Every field except the display name and the reporting-only
    // clock: those change no scheduling or simulation decision.
    return strprintf(
        "u%d:a%d:m%d:b%d:mem%d:mpt%d:ml%d:al%d:mvl%d:bp%d:tf%d:"
        "cl%d:rb%d:bt%d:bl%d",
        numUnits, aluPerUnit, movePerUnit, branchPerUnit, memPerUnit,
        memPortsTotal, memLatency, aluLatency, moveLatency,
        branchPenalty, twoFormats ? 1 : 0, clustered ? 1 : 0,
        regsPerBank, busTransfersPerCycle, busLatency);
}

MachineConfig
MachineConfig::idealShared(int units)
{
    MachineConfig c;
    c.name = strprintf("vliw-%d", units);
    c.numUnits = units;
    return c;
}

MachineConfig
MachineConfig::unboundedShared()
{
    MachineConfig c;
    c.name = "vliw-unbounded";
    c.numUnits = 64;
    c.busTransfersPerCycle = 64;
    c.clustered = false;
    return c;
}

MachineConfig
MachineConfig::prototype(int units)
{
    MachineConfig c;
    c.name = strprintf("symbol-%d", units);
    c.numUnits = units;
    c.twoFormats = true;
    // Three-stage memory pipeline: peak one access per cycle, but a
    // longer completion time for data memory operations (§5.1).
    c.memLatency = 3;
    // Two-cycle delayed branches; the compiler fills the first slot
    // nearly always (the paper's back end schedules into delay
    // slots), leaving one bubble on average.
    c.branchPenalty = 1;
    return c;
}

} // namespace symbol::machine
