/**
 * @file
 * Machine descriptions for the class of parallel synchronous
 * non-homogeneous architectures of §3 and §4.5, including the SYMBOL
 * VLSI prototype restrictions of §5.
 *
 * A machine is a set of identical units, each contributing one memory
 * slot, one ALU slot, one move slot and one control slot per cycle
 * (§4.5: "each unit ... can execute in the same cycle a memory
 * access, a control operation, an ALU operation and a local data
 * movement"). The *shared memory* sustains `memPortsTotal` accesses
 * per cycle in total across all units — one, in every configuration
 * the paper studies, which is what makes Amdahl's bound of §4.2 bite.
 *
 * Units are clustered: each owns a register bank, and an operand
 * produced on another unit must cross the shared bus, adding a cycle
 * and consuming bus bandwidth (§3.2's BUG heuristics optimise this).
 */

#ifndef SYMBOL_MACHINE_CONFIG_HH
#define SYMBOL_MACHINE_CONFIG_HH

#include <string>

namespace symbol::machine
{

/** One target-architecture configuration. */
struct MachineConfig
{
    std::string name = "vliw";
    /** Number of basic units (processors). */
    int numUnits = 1;

    /** @name Per-unit issue slots per cycle */
    /** @{ */
    int aluPerUnit = 1;
    int movePerUnit = 1;
    int branchPerUnit = 1;
    int memPerUnit = 1;
    /** @} */

    /** Shared-memory accesses per cycle across all units. */
    int memPortsTotal = 1;

    /** @name Operation latencies (cycles until the result is usable) */
    /** @{ */
    int memLatency = 2;    ///< "memory: 2 cycles in pipeline" (§4.3)
    int aluLatency = 1;
    int moveLatency = 1;
    /** @} */
    /** Extra cycles lost on a taken branch ("control: 2 cycles in
     *  pipeline" == one bubble). */
    int branchPenalty = 1;

    /**
     * SYMBOL prototype restriction (§5.1): two instruction formats
     * per unit — direct (memory + ALU + move) or immediate (control
     * + memory). When set, a unit that issues a control operation in
     * a cycle cannot also issue an ALU op or a move that cycle.
     */
    bool twoFormats = false;

    /** @name Clustering (per-unit register banks, shared bus) */
    /** @{ */
    bool clustered = true;
    int regsPerBank = 16;
    int busTransfersPerCycle = 1;
    /** Cycles for a value to cross the inter-unit bus. */
    int busLatency = 1;
    /** @} */

    /** Nominal clock for absolute-time reporting (Table 4). */
    double clockMHz = 30.0;

    /**
     * Canonical text covering every field that influences compaction
     * or simulation. Keys the per-config compacted-code artefacts of
     * the persistent store: two configs with equal fingerprints
     * schedule identically by construction.
     */
    std::string fingerprint() const;

    /** The shared-memory VLIW of §4.5 with @p units units. */
    static MachineConfig idealShared(int units);

    /**
     * The unbounded-resource shared-memory machine of Table 1: as
     * many units as needed, still one memory access per cycle.
     */
    static MachineConfig unboundedShared();

    /** The SYMBOL-n prototype of §5 (two formats, 3-cycle memory
     *  pipeline, 2-cycle delayed branches). */
    static MachineConfig prototype(int units);
};

} // namespace symbol::machine

#endif // SYMBOL_MACHINE_CONFIG_HH
