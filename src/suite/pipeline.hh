/**
 * @file
 * The end-to-end evaluation pipeline of the paper's Fig. 1: Prolog
 * source → BAM compiler → IntCode translation → sequential profiling
 * emulation → global compaction → VLIW simulation.
 *
 * Workload owns every intermediate artefact with stable addresses, so
 * downstream consumers can keep references while exploring multiple
 * machine configurations over the same profiled program.
 */

#ifndef SYMBOL_SUITE_PIPELINE_HH
#define SYMBOL_SUITE_PIPELINE_HH

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bamc/compiler.hh"
#include "check/check.hh"
#include "emul/machine.hh"
#include "intcode/cfg.hh"
#include "intcode/translate.hh"
#include "prolog/parser.hh"
#include "sched/compact.hh"
#include "suite/benchmarks.hh"
#include "vliw/sim.hh"

namespace symbol::pass
{
class PassInstrumentation;
}

namespace symbol::suite
{

class ArtifactStore;

/** Front-end configuration for a Workload. */
struct WorkloadOptions
{
    bamc::CompilerOptions compiler;
    intcode::TranslateOptions translate;
    std::uint64_t maxSteps = 600'000'000;
    /**
     * Instrumentation sink the Workload's pass pipelines record into
     * (null = the process-wide default). Not part of the workload
     * cache key: instrumentation never changes what is computed.
     */
    pass::PassInstrumentation *passInstr = nullptr;
};

/** Outcome of one compacted-machine evaluation. */
struct VliwRun
{
    std::uint64_t cycles = 0;
    std::uint64_t wideExecuted = 0;
    std::uint64_t opsExecuted = 0;
    std::uint64_t latencyViolations = 0;
    double speedupVsSeq = 0.0;
    std::string output;
    sched::CompactStats stats;
};

/**
 * Everything the persistent artefact store needs to resurrect a
 * Workload without parsing, compiling or emulating: the four
 * expensive pipeline artefacts plus the interner they share. Moved
 * into the restoring Workload wholesale.
 */
struct WorkloadSnapshot
{
    std::unique_ptr<Interner> interner;
    std::unique_ptr<bam::Module> module;
    std::unique_ptr<intcode::Program> ici;
    std::unique_ptr<intcode::Cfg> cfg;
    emul::RunResult run;
    std::string seqOutput;
    /** Persisted seqCyclesFor cache: {memLatency, branchPenalty,
     *  cycles} triples. */
    std::vector<std::array<std::int64_t, 3>> seqCycles;
};

/** A benchmark carried through the front half of the pipeline. */
class Workload
{
  public:
    explicit Workload(const Benchmark &bench,
                      const WorkloadOptions &opts = {});

    /**
     * Restore from a store snapshot: no parse, no compile, no
     * emulation. The result is indistinguishable from a fresh build
     * of the same (bench, opts) — the round-trip tests assert
     * bit-identical profiles and outputs.
     */
    Workload(const Benchmark &bench, const WorkloadOptions &opts,
             WorkloadSnapshot &&snap);

    const Benchmark &bench() const { return *bench_; }
    const Interner &interner() const { return *interner_; }
    const bam::Module &bamModule() const { return *module_; }
    const intcode::Program &ici() const { return *ici_; }
    /** Basic-block CFG of ici(), prebuilt and persisted. */
    const intcode::Cfg &cfg() const { return *cfg_; }
    const emul::Profile &profile() const { return run_.profile; }
    /** Full profiling-run result (for the artefact store). */
    const emul::RunResult &runResult() const { return run_; }
    /** Snapshot of the per-latency sequential-cycle cache. */
    std::vector<std::array<std::int64_t, 3>> seqCycleSnapshot() const;

    /**
     * Attach the persistent store: runVliw() will look up compacted
     * code under @p workloadKey + the config/options fingerprints
     * before scheduling, and persist what it compacts.
     */
    void attachStore(ArtifactStore *store, std::string workloadKey);

    /** Executed ICIs on the sequential emulator. */
    std::uint64_t instructions() const { return run_.instructions; }
    /** Cycles of the pure sequential reference machine. */
    std::uint64_t seqCycles() const { return run_.seqCycles; }
    /**
     * Sequential-machine cycles under the operation durations of
     * @p config — the paper compares each architecture against "a
     * sequential implementation which obeys the same operation
     * duration hypotheses" (§5.3). Cached per latency pair.
     */
    std::uint64_t
    seqCyclesFor(const machine::MachineConfig &config) const;
    /** Cycles of the BAM-processor baseline model. */
    std::uint64_t bamCycles() const;
    /** Decoded answer from the sequential run. */
    const std::string &seqOutput() const { return seqOutput_; }
    /** Whether the sequential answer matches the pinned expectation. */
    bool answerMatches() const;

    /**
     * Debug mode: run the independent schedule verifier
     * (verify::checkSchedule) over every schedule runVliw() is about
     * to simulate — both freshly compacted code and code deserialized
     * from the artefact store — and throw ViolationError with the
     * full violation report if any check fails.
     */
    void setVerifySchedules(bool on) { verifySchedules_ = on; }
    bool verifySchedules() const { return verifySchedules_; }

    /**
     * Run the static IR analyzer (check::analyze, DESIGN.md §11)
     * over the BAM module and the IntCode program — they may be
     * freshly built or restored from the artefact store; a restored
     * bundle is re-checked exactly like a fresh one. Records under
     * the check-* pass names, keeps the result for analysis(), and
     * throws ViolationError with the full report when any
     * error-severity diagnostic fires.
     */
    const check::DiagnosticEngine &
    runAnalyses(const check::AnalyzeOptions &aopts = {});

    /** Result of the last runAnalyses() (null before the first). */
    const check::DiagnosticEngine *analysis() const
    {
        return analysis_.get();
    }

    /**
     * Compact for @p config and simulate. Throws RuntimeError if the
     * VLIW execution diverges from the sequential answer — the
     * end-to-end correctness check of the back end.
     */
    VliwRun runVliw(const machine::MachineConfig &config,
                    const sched::CompactOptions &copts = {}) const;

  private:
    /** Compact + simulate @p code; shared by the cold and the
     *  store-hit paths of runVliw(). */
    VliwRun simulate(const vliw::Code &code,
                     const sched::CompactStats &stats,
                     const machine::MachineConfig &config) const;
    /** Record a persisted per-latency sequential cycle count. */
    void noteSeqCycles(const machine::MachineConfig &config,
                       std::uint64_t cycles) const;
    /** Run the independent verifier over @p code; throws
     *  RuntimeError with the report when it fails. @p origin labels
     *  the code path ("compacted" or "store") in the message. */
    void verifyCode(const vliw::Code &code,
                    const machine::MachineConfig &config,
                    const char *origin) const;

    const Benchmark *bench_;
    /** Pass-instrumentation sink (null = the global default). */
    pass::PassInstrumentation *instr_ = nullptr;
    std::unique_ptr<Interner> interner_;
    std::unique_ptr<prolog::Program> prog_; ///< null when restored
    std::unique_ptr<bam::Module> module_;
    std::unique_ptr<intcode::Program> ici_;
    std::unique_ptr<intcode::Cfg> cfg_;
    emul::RunResult run_;
    std::string seqOutput_;
    std::uint64_t maxSteps_;
    /** Optional persistent store for compacted-code artefacts. */
    ArtifactStore *store_ = nullptr;
    std::string storeKey_;
    /** Statically verify every schedule before simulating it. */
    bool verifySchedules_ = false;
    /** Result of the last runAnalyses() call. */
    std::unique_ptr<check::DiagnosticEngine> analysis_;
    /** Guards seqCache_: one Workload is shared by many concurrent
     *  runVliw() tasks under the parallel evaluation driver. */
    mutable std::mutex seqMu_;
    mutable std::map<std::pair<int, int>, std::uint64_t> seqCache_;
};

} // namespace symbol::suite

#endif // SYMBOL_SUITE_PIPELINE_HH
