/**
 * @file
 * The end-to-end evaluation pipeline of the paper's Fig. 1: Prolog
 * source → BAM compiler → IntCode translation → sequential profiling
 * emulation → global compaction → VLIW simulation.
 *
 * Workload owns every intermediate artefact with stable addresses, so
 * downstream consumers can keep references while exploring multiple
 * machine configurations over the same profiled program.
 */

#ifndef SYMBOL_SUITE_PIPELINE_HH
#define SYMBOL_SUITE_PIPELINE_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "bamc/compiler.hh"
#include "emul/machine.hh"
#include "intcode/translate.hh"
#include "prolog/parser.hh"
#include "sched/compact.hh"
#include "suite/benchmarks.hh"
#include "vliw/sim.hh"

namespace symbol::suite
{

/** Front-end configuration for a Workload. */
struct WorkloadOptions
{
    bamc::CompilerOptions compiler;
    intcode::TranslateOptions translate;
    std::uint64_t maxSteps = 600'000'000;
};

/** Outcome of one compacted-machine evaluation. */
struct VliwRun
{
    std::uint64_t cycles = 0;
    std::uint64_t wideExecuted = 0;
    std::uint64_t opsExecuted = 0;
    std::uint64_t latencyViolations = 0;
    double speedupVsSeq = 0.0;
    std::string output;
    sched::CompactStats stats;
};

/** A benchmark carried through the front half of the pipeline. */
class Workload
{
  public:
    explicit Workload(const Benchmark &bench,
                      const WorkloadOptions &opts = {});

    const Benchmark &bench() const { return *bench_; }
    const intcode::Program &ici() const { return *ici_; }
    const emul::Profile &profile() const { return run_.profile; }

    /** Executed ICIs on the sequential emulator. */
    std::uint64_t instructions() const { return run_.instructions; }
    /** Cycles of the pure sequential reference machine. */
    std::uint64_t seqCycles() const { return run_.seqCycles; }
    /**
     * Sequential-machine cycles under the operation durations of
     * @p config — the paper compares each architecture against "a
     * sequential implementation which obeys the same operation
     * duration hypotheses" (§5.3). Cached per latency pair.
     */
    std::uint64_t
    seqCyclesFor(const machine::MachineConfig &config) const;
    /** Cycles of the BAM-processor baseline model. */
    std::uint64_t bamCycles() const;
    /** Decoded answer from the sequential run. */
    const std::string &seqOutput() const { return seqOutput_; }
    /** Whether the sequential answer matches the pinned expectation. */
    bool answerMatches() const;

    /**
     * Compact for @p config and simulate. Throws RuntimeError if the
     * VLIW execution diverges from the sequential answer — the
     * end-to-end correctness check of the back end.
     */
    VliwRun runVliw(const machine::MachineConfig &config,
                    const sched::CompactOptions &copts = {}) const;

  private:
    const Benchmark *bench_;
    std::unique_ptr<Interner> interner_;
    std::unique_ptr<prolog::Program> prog_;
    std::unique_ptr<bam::Module> module_;
    std::unique_ptr<intcode::Program> ici_;
    emul::RunResult run_;
    std::string seqOutput_;
    std::uint64_t maxSteps_;
    /** Guards seqCache_: one Workload is shared by many concurrent
     *  runVliw() tasks under the parallel evaluation driver. */
    mutable std::mutex seqMu_;
    mutable std::map<std::pair<int, int>, std::uint64_t> seqCache_;
};

} // namespace symbol::suite

#endif // SYMBOL_SUITE_PIPELINE_HH
