/**
 * @file
 * Content-keyed artefact cache for the front half of the pipeline.
 *
 * Building a Workload is the expensive, repeated part of every
 * evaluation sweep: parse + compile + translate, then the profiling
 * emulation of the whole benchmark run. Its result depends only on
 * the Prolog source text and the front-end options, so it is cached
 * under a key derived from exactly those inputs:
 *
 *   key = front-end option fingerprint (indexing, fresh-heap-store
 *         marking, tag-branch expansion, step budget)
 *       + FNV-1a 64-bit hash of the source
 *       + the source text itself
 *
 * The hash makes keys cheap to log and compare; the appended source
 * makes the cache immune to hash collisions by construction. The
 * benchmark is copied into the cache entry, so cached Workloads never
 * dangle even if the caller's Benchmark was a temporary.
 *
 * The cache is thread-safe with per-entry build locking: the first
 * requester of a key builds, concurrent requesters of the *same* key
 * block until it is ready (counted as hits), and requesters of other
 * keys proceed independently. A build failure is cached too, and
 * rethrown to every requester — retrying a deterministic pipeline
 * cannot succeed.
 */

#ifndef SYMBOL_SUITE_CACHE_HH
#define SYMBOL_SUITE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "suite/pipeline.hh"

namespace symbol::suite
{

class ArtifactStore;

/** Hit/miss counters of one WorkloadCache. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Hits that had to wait for an in-flight build of the key. */
    std::uint64_t inFlightWaits = 0;
    /** Memory misses served by the persistent store (no rebuild). */
    std::uint64_t diskLoads = 0;
};

/** Where a requested Workload came from. */
enum class WorkloadOrigin : std::uint8_t
{
    Built,  ///< full pipeline ran (memory and disk miss)
    Disk,   ///< restored from the persistent artefact store
    Memory, ///< already resident in this cache
};

class WorkloadCache
{
  public:
    WorkloadCache() = default;
    WorkloadCache(const WorkloadCache &) = delete;
    WorkloadCache &operator=(const WorkloadCache &) = delete;

    /**
     * Attach a persistent store consulted before building and
     * populated after. Must be called before the first get(); the
     * store must outlive the cache.
     */
    void setStore(ArtifactStore *store) { store_ = store; }

    /** Enable schedule verification on every Workload this cache
     *  builds or restores (see Workload::setVerifySchedules). Call
     *  before the first get(). */
    void setVerify(bool on) { verify_ = on; }

    /**
     * Run the static IR analyzer over every Workload this cache
     * builds or restores (see Workload::runAnalyses). A
     * store-deserialized bundle that fails analysis raises the
     * ViolationError instead of silently degrading to a rebuild —
     * SYMBOL_ANALYZE is a debug sweep, like SYMBOL_VERIFY for
     * schedules. Call before the first get().
     */
    void
    setAnalyze(bool on, const check::AnalyzeOptions &aopts = {})
    {
        analyze_ = on;
        analyzeOpts_ = aopts;
    }

    /**
     * The Workload for (@p bench, @p opts), building it on first
     * request. The reference stays valid for the cache's lifetime.
     * Thread-safe; rethrows the original build error on every
     * request for a key whose build failed. @p origin, when given,
     * receives where the artefact came from.
     */
    const Workload &get(const Benchmark &bench,
                        const WorkloadOptions &opts = {},
                        WorkloadOrigin *origin = nullptr);

    /** The cache key of (@p bench, @p opts) — fingerprint + hash +
     *  source; exposed for tests and reporting. */
    static std::string keyOf(const Benchmark &bench,
                             const WorkloadOptions &opts);

    /** FNV-1a 64-bit content hash (the reportable part of the key). */
    static std::uint64_t contentHash(const std::string &text);

    CacheStats stats() const;
    std::size_t size() const;
    void clear();

  private:
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool ready = false;
        std::exception_ptr error;
        Benchmark bench; ///< owned copy the Workload points into
        std::unique_ptr<Workload> workload;
    };

    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
    CacheStats stats_;
    ArtifactStore *store_ = nullptr;
    bool verify_ = false;
    bool analyze_ = false;
    check::AnalyzeOptions analyzeOpts_;
};

} // namespace symbol::suite

#endif // SYMBOL_SUITE_CACHE_HH
