/**
 * @file
 * The benchmark subset of the Aquarius suite used in the paper
 * (§4, Tables 1-5): conc30, crypt, divide10, log10, mu, nreverse,
 * ops8, prover, qsort, queens_8, query, sendmore, serialise, tak,
 * times10, zebra.
 *
 * The Aquarius sources themselves are not redistributable here; these
 * are faithful re-writes of the same classic folk benchmarks (Warren's
 * benchmark set and its descendants) with the same workloads and
 * sizes. Every program defines main/0 and reports its answer through
 * out/1, so runs are validated end to end against the expected
 * answer text.
 */

#ifndef SYMBOL_SUITE_BENCHMARKS_HH
#define SYMBOL_SUITE_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace symbol::suite
{

/** One benchmark program. */
struct Benchmark
{
    std::string name;
    /** Complete Prolog source (defines main/0). */
    std::string source;
    /** Expected decoded output (empty = only check non-failure). */
    std::string expected;
};

/** The full benchmark set, in the paper's table order. */
const std::vector<Benchmark> &aquarius();

/** Look up one benchmark by name (throws CompileError if missing). */
const Benchmark &benchmark(const std::string &name);

/**
 * Wrap one generated fuzz program (see src/fuzz) as a Benchmark so
 * it can ride the regular Workload / EvalDriver machinery. The name
 * is "fuzz-seed-<seed>" — the seed alone reproduces the program —
 * and the expected answer is left empty (the differential oracle,
 * not a pinned string, judges fuzz outputs).
 */
Benchmark fuzzCase(std::uint64_t seed, const std::string &source);

} // namespace symbol::suite

#endif // SYMBOL_SUITE_BENCHMARKS_HH
