#include "suite/store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bam/serialize.hh"
#include "emul/serialize.hh"
#include "intcode/serialize.hh"
#include "sched/serialize.hh"
#include "serialize/container.hh"
#include "serialize/interner.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"
#include "vliw/serialize.hh"

namespace symbol::suite
{

namespace fs = std::filesystem;
using serialize::Container;
using serialize::DecodeError;
using serialize::Reader;
using serialize::Writer;

namespace
{

/** Section ids of the workload bundle. */
constexpr std::uint32_t kSecKey = 1;
constexpr std::uint32_t kSecInterner = 2;
constexpr std::uint32_t kSecBam = 3;
constexpr std::uint32_t kSecIci = 4;
constexpr std::uint32_t kSecCfg = 5;
constexpr std::uint32_t kSecRun = 6;
constexpr std::uint32_t kSecSeqOutput = 7;
constexpr std::uint32_t kSecSeqCycles = 8;
/** Section ids of the compacted-code bundle. */
constexpr std::uint32_t kSecVliwCode = 16;
constexpr std::uint32_t kSecCompactStats = 17;
constexpr std::uint32_t kSecSeqBaseline = 18;
/** Section id of an opaque blob artefact. */
constexpr std::uint32_t kSecBlob = 32;

double
now()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

/** Advisory per-key exclusive lock; best-effort (a store must keep
 *  working on filesystems without flock support). */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
        : fd_(::open(path.c_str(), O_CREAT | O_RDWR, 0666))
    {
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~FileLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

  private:
    int fd_;
};

bool
readAll(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return in.good() || in.eof();
}

/** Cheap version peek so stats can tell "stale format" from
 *  "corrupted bytes" without a full parse. */
bool
versionOf(const std::string &bytes, std::uint32_t &version)
{
    if (bytes.size() < 8 ||
        std::memcmp(bytes.data(), serialize::kMagic, 4) != 0)
        return false;
    version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<std::uint32_t>(
                       static_cast<unsigned char>(bytes[4 + i]))
                   << (8 * i);
    return true;
}

} // namespace

std::string
StoreStats::str() const
{
    return strprintf(
        "[store] %llu disk hits, %llu misses, %llu writes, "
        "%llu corrupt, %llu stale-version, %llu io errors; "
        "%.1f KiB read, %.1f KiB written; "
        "deserialize %.3fs, serialize %.3fs",
        static_cast<unsigned long long>(diskHits),
        static_cast<unsigned long long>(diskMisses),
        static_cast<unsigned long long>(diskWrites),
        static_cast<unsigned long long>(corruptRejected +
                                        keyMismatches),
        static_cast<unsigned long long>(versionRejected),
        static_cast<unsigned long long>(ioErrors),
        static_cast<double>(bytesRead) / 1024.0,
        static_cast<double>(bytesWritten) / 1024.0,
        deserializeSeconds, serializeSeconds);
}

ArtifactStore::ArtifactStore(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        throw RuntimeError("artifact store: cannot create directory " +
                           dir_);
}

std::string
ArtifactStore::fileNameFor(const std::string &kind,
                           const std::string &key)
{
    return strprintf(
        "%s-%016llx-%zu-v%u.syaf", kind.c_str(),
        static_cast<unsigned long long>(
            serialize::fnv1a(key.data(), key.size())),
        key.size(), serialize::kFormatVersion);
}

std::string
ArtifactStore::shardOf(const std::string &fileName)
{
    // "<kind>-<16 hex digits>-…": the shard is the leading byte of
    // the embedded key hash — uniform, and recomputable from the
    // name alone (migration never re-reads file contents).
    std::size_t dash = fileName.find('-');
    if (dash == std::string::npos || fileName.size() < dash + 3)
        return "";
    std::string shard = fileName.substr(dash + 1, 2);
    for (char c : shard)
        if (!std::isxdigit(static_cast<unsigned char>(c)))
            return "";
    return shard;
}

std::string
ArtifactStore::pathFor(const std::string &kind,
                       const std::string &key) const
{
    std::string name = fileNameFor(kind, key);
    return dir_ + "/" + shardOf(name) + "/" + name;
}

bool
ArtifactStore::loadFile(const std::string &kind,
                        const std::string &key, std::string &outBytes)
{
    std::string name = fileNameFor(kind, key);
    std::string sharded = dir_ + "/" + shardOf(name) + "/" + name;
    bool viaFlat = false;
    if (!readAll(sharded, outBytes)) {
        // Transparent read-through of the pre-sharding flat layout.
        if (!readAll(dir_ + "/" + name, outBytes)) {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.diskMisses;
            return false;
        }
        viaFlat = true;
    }
    std::uint32_t version = 0;
    if (versionOf(outBytes, version) &&
        version != serialize::kFormatVersion) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.versionRejected;
        return false;
    }
    if (viaFlat) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.flatReadThrough;
    }
    return true;
}

namespace
{

/** Write @p bytes to a fresh @p tmp and flush them to stable
 *  storage. The fsync before the publishing rename is load-bearing:
 *  without it a crash (or power loss) after the rename could
 *  publish a name whose *data* blocks never hit disk — a truncated
 *  artefact that only the payload checksum would catch, one rebuild
 *  at a time, forever. See tests/test_store.cc
 *  (PublishedFilesAreDurableAndComplete). */
bool
writeAllSynced(const std::string &tmp, const std::string &bytes)
{
    int fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0666);
    if (fd < 0)
        return false;
    const char *p = bytes.data();
    std::size_t left = bytes.size();
    bool ok = true;
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ok = false;
            break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (ok)
        ok = ::fsync(fd) == 0;
    ok = (::close(fd) == 0) && ok;
    return ok;
}

} // namespace

void
ArtifactStore::writeFile(const std::string &kind,
                         const std::string &key,
                         const std::string &bytes)
{
    static std::atomic<std::uint64_t> seq{0};
    std::string name = fileNameFor(kind, key);
    std::string shardDir = dir_ + "/" + shardOf(name);
    std::error_code ec;
    fs::create_directories(shardDir, ec);
    std::string path = shardDir + "/" + name;
    FileLock lock(path + ".lock");
    std::string tmp = strprintf(
        "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(::getpid()),
        static_cast<unsigned long long>(
            seq.fetch_add(1, std::memory_order_relaxed)));
    bool ok = writeAllSynced(tmp, bytes);
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    std::lock_guard<std::mutex> lk(mu_);
    if (ok) {
        ++stats_.diskWrites;
        stats_.bytesWritten += bytes.size();
    } else {
        std::remove(tmp.c_str());
        ++stats_.ioErrors;
    }
}

std::string
ArtifactStore::MigrateReport::str() const
{
    return strprintf(
        "%llu artefact(s) moved into shards, %llu superseded by an "
        "existing sharded copy, %llu stale dropping(s) scrubbed, "
        "%llu error(s)",
        static_cast<unsigned long long>(moved),
        static_cast<unsigned long long>(replaced),
        static_cast<unsigned long long>(scrubbed),
        static_cast<unsigned long long>(errors));
}

ArtifactStore::MigrateReport
ArtifactStore::migrateFlat()
{
    MigrateReport rep;
    std::error_code ec;
    std::vector<fs::path> flat;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file())
            continue;
        flat.push_back(entry.path());
    }
    for (const fs::path &p : flat) {
        std::string name = p.filename().string();
        if (name.size() > 5 &&
            name.substr(name.size() - 5) == ".syaf") {
            std::string shard = shardOf(name);
            if (shard.empty()) {
                ++rep.errors;
                continue;
            }
            std::string destDir = dir_ + "/" + shard;
            fs::create_directories(destDir, ec);
            std::string dest = destDir + "/" + name;
            if (fs::exists(dest)) {
                // Concurrent writers already published a sharded
                // (newer-format-era) copy; it wins.
                fs::remove(p, ec);
                ec ? ++rep.errors : ++rep.replaced;
            } else if (std::rename(p.c_str(), dest.c_str()) == 0) {
                ++rep.moved;
            } else {
                ++rep.errors;
            }
        } else if (name.find(".syaf.lock") != std::string::npos ||
                   name.find(".syaf.tmp.") != std::string::npos) {
            fs::remove(p, ec);
            ec ? ++rep.errors : ++rep.scrubbed;
        }
    }
    return rep;
}

bool
ArtifactStore::loadWorkload(const std::string &key,
                            WorkloadSnapshot &out)
{
    double t0 = now();
    std::string bytes;
    if (!loadFile("wl", key, bytes))
        return false;
    try {
        Container c = serialize::unpackContainer(bytes);
        if (c.section(kSecKey) != key) {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.keyMismatches;
            return false;
        }
        {
            Reader r(c.section(kSecInterner));
            out.interner = std::make_unique<Interner>(
                serialize::decodeInterner(r));
            r.expectEnd();
        }
        {
            Reader r(c.section(kSecBam));
            out.module = std::make_unique<bam::Module>(
                bam::decodeModule(r, *out.interner));
            r.expectEnd();
        }
        {
            Reader r(c.section(kSecIci));
            out.ici = std::make_unique<intcode::Program>(
                intcode::decodeProgram(r, out.interner.get()));
            r.expectEnd();
        }
        {
            Reader r(c.section(kSecCfg));
            out.cfg = std::make_unique<intcode::Cfg>(
                intcode::decodeCfg(r));
            r.expectEnd();
        }
        {
            Reader r(c.section(kSecRun));
            out.run = emul::decodeRunResult(r);
            r.expectEnd();
        }
        out.seqOutput = c.section(kSecSeqOutput);
        {
            Reader r(c.section(kSecSeqCycles));
            std::size_t n = r.count(3);
            out.seqCycles.clear();
            out.seqCycles.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                std::int64_t lat = r.vi();
                std::int64_t pen = r.vi();
                std::int64_t cyc =
                    static_cast<std::int64_t>(r.vu());
                out.seqCycles.push_back({lat, pen, cyc});
            }
            r.expectEnd();
        }
        // Cross-artefact structure: the profile and CFG must cover
        // the program exactly, or downstream indexing would be UB.
        std::size_t icis = out.ici->code.size();
        if (out.run.profile.expect.size() != icis ||
            out.run.profile.taken.size() != icis ||
            out.cfg->blockOf.size() != icis ||
            out.ici->addressTaken.size() != icis ||
            out.ici->procEntry.size() != icis ||
            out.ici->bamOps.size() != out.module->code.size() ||
            !out.run.halted)
            throw DecodeError("artefact sizes are inconsistent");
    } catch (const DecodeError &) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.corruptRejected;
        return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.diskHits;
    stats_.bytesRead += bytes.size();
    stats_.deserializeSeconds += now() - t0;
    return true;
}

void
ArtifactStore::storeWorkload(const std::string &key,
                             const Workload &w)
{
    try {
        double t0 = now();
        std::vector<serialize::Section> sections;
        sections.push_back({kSecKey, key});
        {
            Writer wr;
            serialize::encode(wr, w.interner());
            sections.push_back({kSecInterner, wr.take()});
        }
        {
            Writer wr;
            bam::encode(wr, w.bamModule());
            sections.push_back({kSecBam, wr.take()});
        }
        {
            Writer wr;
            intcode::encode(wr, w.ici());
            sections.push_back({kSecIci, wr.take()});
        }
        {
            Writer wr;
            intcode::encode(wr, w.cfg());
            sections.push_back({kSecCfg, wr.take()});
        }
        {
            Writer wr;
            emul::encode(wr, w.runResult());
            sections.push_back({kSecRun, wr.take()});
        }
        sections.push_back({kSecSeqOutput, w.seqOutput()});
        {
            Writer wr;
            auto cycles = w.seqCycleSnapshot();
            wr.vu(cycles.size());
            for (const auto &[lat, pen, cyc] : cycles) {
                wr.vi(lat);
                wr.vi(pen);
                wr.vu(static_cast<std::uint64_t>(cyc));
            }
            sections.push_back({kSecSeqCycles, wr.take()});
        }
        std::string bytes = serialize::packContainer(sections);
        {
            std::lock_guard<std::mutex> lk(mu_);
            stats_.serializeSeconds += now() - t0;
        }
        writeFile("wl", key, bytes);
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.ioErrors;
    }
}

bool
ArtifactStore::loadVliw(const std::string &key,
                        const Interner *interner, vliw::Code &code,
                        sched::CompactStats &stats,
                        std::uint64_t &seqCycles)
{
    double t0 = now();
    std::string bytes;
    if (!loadFile("vc", key, bytes))
        return false;
    try {
        Container c = serialize::unpackContainer(bytes);
        if (c.section(kSecKey) != key) {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.keyMismatches;
            return false;
        }
        {
            Reader r(c.section(kSecVliwCode));
            code = vliw::decodeCode(r, interner);
            r.expectEnd();
        }
        {
            Reader r(c.section(kSecCompactStats));
            stats = sched::decodeCompactStats(r);
            r.expectEnd();
        }
        {
            Reader r(c.section(kSecSeqBaseline));
            seqCycles = r.vu();
            r.expectEnd();
        }
    } catch (const DecodeError &) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.corruptRejected;
        return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.diskHits;
    stats_.bytesRead += bytes.size();
    stats_.deserializeSeconds += now() - t0;
    return true;
}

void
ArtifactStore::storeVliw(const std::string &key,
                         const vliw::Code &code,
                         const sched::CompactStats &stats,
                         std::uint64_t seqCycles)
{
    try {
        double t0 = now();
        std::vector<serialize::Section> sections;
        sections.push_back({kSecKey, key});
        {
            Writer wr;
            vliw::encode(wr, code);
            sections.push_back({kSecVliwCode, wr.take()});
        }
        {
            Writer wr;
            sched::encode(wr, stats);
            sections.push_back({kSecCompactStats, wr.take()});
        }
        {
            Writer wr;
            wr.vu(seqCycles);
            sections.push_back({kSecSeqBaseline, wr.take()});
        }
        std::string bytes = serialize::packContainer(sections);
        {
            std::lock_guard<std::mutex> lk(mu_);
            stats_.serializeSeconds += now() - t0;
        }
        writeFile("vc", key, bytes);
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.ioErrors;
    }
}

bool
ArtifactStore::loadBlob(const std::string &kind,
                        const std::string &key, std::string &out)
{
    double t0 = now();
    std::string bytes;
    if (!loadFile(kind, key, bytes))
        return false;
    try {
        Container c = serialize::unpackContainer(bytes);
        if (c.section(kSecKey) != key) {
            std::lock_guard<std::mutex> lk(mu_);
            ++stats_.keyMismatches;
            return false;
        }
        out = c.section(kSecBlob);
    } catch (const DecodeError &) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.corruptRejected;
        return false;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.diskHits;
    stats_.bytesRead += bytes.size();
    stats_.deserializeSeconds += now() - t0;
    return true;
}

void
ArtifactStore::storeBlob(const std::string &kind,
                         const std::string &key,
                         const std::string &bytes)
{
    try {
        double t0 = now();
        std::string packed =
            serialize::packContainer({{kSecKey, key},
                                      {kSecBlob, bytes}});
        {
            std::lock_guard<std::mutex> lk(mu_);
            stats_.serializeSeconds += now() - t0;
        }
        writeFile(kind, key, packed);
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.ioErrors;
    }
}

StoreStats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::vector<ArtifactStore::FileReport>
ArtifactStore::verifyDir(const std::string &dir)
{
    std::vector<FileReport> reports;
    std::error_code ec;
    // Recursive: sharded stores keep artefacts one subdirectory
    // deep, and legacy flat files sit in the root; cover both.
    for (const auto &entry :
         fs::recursive_directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (name.size() < 5 ||
            name.substr(name.size() - 5) != ".syaf")
            continue;
        FileReport rep;
        rep.name = name;
        std::string bytes;
        if (!readAll(entry.path().string(), bytes)) {
            rep.problem = "unreadable";
            reports.push_back(std::move(rep));
            continue;
        }
        rep.bytes = bytes.size();
        serialize::ContainerCheck check =
            serialize::checkContainer(bytes, 0);
        rep.version = check.version;
        rep.sections = check.sections;
        if (!check.ok) {
            rep.problem = check.problem;
        } else if (check.version != serialize::kFormatVersion) {
            rep.problem = strprintf(
                "stale format version %u (current %u)", check.version,
                serialize::kFormatVersion);
        } else {
            rep.ok = true;
        }
        reports.push_back(std::move(rep));
    }
    std::sort(reports.begin(), reports.end(),
              [](const FileReport &a, const FileReport &b) {
                  return a.name < b.name;
              });
    return reports;
}

} // namespace symbol::suite
