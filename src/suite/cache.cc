#include "suite/cache.hh"

#include "suite/store.hh"
#include "support/deadline.hh"
#include "support/diagnostics.hh"
#include "support/fnv.hh"
#include "support/text.hh"

namespace symbol::suite
{

std::uint64_t
WorkloadCache::contentHash(const std::string &text)
{
    return support::fnv1a(text);
}

std::string
WorkloadCache::keyOf(const Benchmark &bench,
                     const WorkloadOptions &opts)
{
    std::string fp = strprintf(
        "ix%d:fh%d:xt%d:ms%llu:h%016llx:n%zu|",
        opts.compiler.indexing ? 1 : 0,
        opts.compiler.markFreshHeapStores ? 1 : 0,
        opts.translate.expandTagBranches ? 1 : 0,
        static_cast<unsigned long long>(opts.maxSteps),
        static_cast<unsigned long long>(contentHash(bench.source)),
        bench.source.size());
    // The full source rides along so a hash collision can never
    // alias two different programs.
    return fp + bench.source;
}

const Workload &
WorkloadCache::get(const Benchmark &bench, const WorkloadOptions &opts,
                   WorkloadOrigin *origin)
{
    std::string key = keyOf(bench, opts);
    std::shared_ptr<Entry> entry;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            entry = std::make_shared<Entry>();
            entry->bench = bench;
            map_.emplace(key, entry);
            builder = true;
            ++stats_.misses;
        } else {
            entry = it->second;
            ++stats_.hits;
        }
    }
    if (origin)
        *origin = builder ? WorkloadOrigin::Built
                          : WorkloadOrigin::Memory;

    if (builder) {
        std::unique_ptr<Workload> w;
        std::exception_ptr err;
        // Disk first: a valid store bundle replaces the whole front
        // half. Any store problem degrades silently to a rebuild.
        if (store_) {
            WorkloadSnapshot snap;
            if (store_->loadWorkload(key, snap)) {
                try {
                    w = std::make_unique<Workload>(
                        entry->bench, opts, std::move(snap));
                    if (analyze_)
                        w->runAnalyses(analyzeOpts_);
                    if (origin)
                        *origin = WorkloadOrigin::Disk;
                    std::lock_guard<std::mutex> lk(mu_);
                    ++stats_.diskLoads;
                } catch (const ViolationError &) {
                    // A checksum-valid bundle that fails analysis is
                    // semantically corrupt: surface the violation
                    // instead of papering over it with a rebuild.
                    w.reset();
                    err = std::current_exception();
                } catch (...) {
                    w.reset();
                }
            }
        }
        if (!w && !err) {
            try {
                w = std::make_unique<Workload>(entry->bench, opts);
                if (analyze_)
                    w->runAnalyses(analyzeOpts_);
                if (store_)
                    store_->storeWorkload(key, *w);
            } catch (...) {
                err = std::current_exception();
            }
        }
        if (w && store_)
            w->attachStore(store_, key);
        if (w)
            w->setVerifySchedules(verify_);
        // A deterministic build failure is cached and rethrown to
        // every requester forever — retrying cannot succeed. A
        // DeadlineExceeded abort is NOT deterministic (it depends on
        // the requester's wall-clock budget), so the entry is evicted
        // and the next request rebuilds from scratch; only the
        // requesters already waiting on this build share the abort.
        bool transient = false;
        if (err) {
            try {
                std::rethrow_exception(err);
            } catch (const support::DeadlineExceeded &) {
                transient = true;
            } catch (...) {
            }
        }
        if (transient) {
            std::lock_guard<std::mutex> lk(mu_);
            auto it = map_.find(key);
            if (it != map_.end() && it->second == entry)
                map_.erase(it);
        }
        {
            std::lock_guard<std::mutex> lk(entry->m);
            entry->workload = std::move(w);
            entry->error = err;
            entry->ready = true;
        }
        entry->cv.notify_all();
    } else {
        std::unique_lock<std::mutex> lk(entry->m);
        if (!entry->ready) {
            {
                std::lock_guard<std::mutex> slk(mu_);
                ++stats_.inFlightWaits;
            }
            entry->cv.wait(lk, [&] { return entry->ready; });
        }
    }

    if (entry->error)
        std::rethrow_exception(entry->error);
    return *entry->workload;
}

CacheStats
WorkloadCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::size_t
WorkloadCache::size() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
}

void
WorkloadCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    stats_ = CacheStats{};
}

} // namespace symbol::suite
