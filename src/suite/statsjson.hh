/**
 * @file
 * The machine-readable statistics document behind `symbolc
 * --stats-json`: driver accounting plus the per-pass
 * instrumentation snapshot, as one JSON object.
 *
 * Assembled here (not in the tool) so tests can build and parse the
 * document in-process and reconcile the per-pass totals against
 * CompactStats/SimResult without exec'ing the binary.
 *
 * Schema (see DESIGN.md §10):
 *   {
 *     "driver": { "jobs", "tasksRun", "workloadsBuilt",
 *                 "cacheHits", "diskHits", "wallSeconds",
 *                 "cpuSeconds" },
 *     "store":  { ... }            — only when a disk store is on,
 *     "passes": [ { "name", "invocations", "wallSeconds",
 *                   "irIn", "irOut" }, ... ]   — pipeline order
 *   }
 */

#ifndef SYMBOL_SUITE_STATSJSON_HH
#define SYMBOL_SUITE_STATSJSON_HH

#include <string>
#include <vector>

#include "pass/instrument.hh"
#include "suite/driver.hh"
#include "support/json.hh"

namespace symbol::suite
{

/** The document as a JSON value. */
json::Value statsDocument(const DriverStats &stats, unsigned jobs,
                          const std::vector<pass::PassStats> &passes);

/** Convenience: snapshot @p driver and @p instr and serialize. */
std::string statsJson(const EvalDriver &driver,
                      const pass::PassInstrumentation &instr);

} // namespace symbol::suite

#endif // SYMBOL_SUITE_STATSJSON_HH
