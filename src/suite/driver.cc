#include "suite/driver.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <set>

#include "pass/instrument.hh"
#include "support/text.hh"

namespace symbol::suite
{

namespace
{

double
wallNow()
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch())
        .count();
}

double
cpuNow()
{
    // Process CPU time, summed across threads: wall < cpu is the
    // signature of actual parallel execution.
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
}

} // namespace

std::string
DriverStats::str(unsigned jobs) const
{
    std::string line = strprintf(
        "[driver] jobs=%u: %llu tasks, %llu workloads built, "
        "%llu cache hits, %llu disk hits, wall %.2fs, cpu %.2fs",
        jobs, static_cast<unsigned long long>(tasksRun),
        static_cast<unsigned long long>(workloadsBuilt),
        static_cast<unsigned long long>(cacheHits),
        static_cast<unsigned long long>(diskHits), wallSeconds,
        cpuSeconds);
    if (hasStore)
        line += "\n" + store.str();
    return line;
}

EvalDriver::Timer::Timer(EvalDriver &d, std::size_t tasks)
    : d_(d), tasks_(tasks), wall0_(wallNow()), cpu0_(cpuNow())
{
}

EvalDriver::Timer::~Timer()
{
    std::lock_guard<std::mutex> lk(d_.mu_);
    d_.stats_.tasksRun += tasks_;
    d_.stats_.wallSeconds += wallNow() - wall0_;
    d_.stats_.cpuSeconds += cpuNow() - cpu0_;
}

EvalDriver::EvalDriver(const DriverOptions &opts)
    : opts_(opts),
      pool_(std::make_unique<support::ThreadPool>(opts.jobs))
{
    if (!opts_.verifySchedules)
        if (const char *env = std::getenv("SYMBOL_VERIFY"))
            opts_.verifySchedules = *env != '\0' &&
                                    std::string(env) != "0";
    if (!opts_.analyze)
        if (const char *env = std::getenv("SYMBOL_ANALYZE"))
            opts_.analyze = *env != '\0' && std::string(env) != "0";
    if (!opts_.quiet)
        if (const char *env = std::getenv("SYMBOL_QUIET"))
            opts_.quiet = *env != '\0' && std::string(env) != "0";
    cache_.setVerify(opts_.verifySchedules);
    cache_.setAnalyze(opts_.analyze, opts_.analyzeOpts);
    std::string dir = opts.cacheDir;
    if (dir.empty())
        if (const char *env = std::getenv("SYMBOL_CACHE_DIR"))
            dir = env;
    if (!dir.empty() && opts_.useCache) {
        try {
            store_ = std::make_unique<ArtifactStore>(dir);
            cache_.setStore(store_.get());
        } catch (const std::exception &e) {
            // An unusable store directory degrades to memory-only
            // caching — never a failed run.
            std::fprintf(stderr, "[driver] %s (running without "
                                 "disk store)\n",
                         e.what());
        }
    }
}

EvalDriver::~EvalDriver() = default;

const Workload &
EvalDriver::workload(const std::string &benchName,
                     const WorkloadOptions &opts,
                     WorkloadOrigin *originOut)
{
    return workload(benchmark(benchName), opts, originOut);
}

const Workload &
EvalDriver::workload(const Benchmark &bench,
                     const WorkloadOptions &opts,
                     WorkloadOrigin *originOut)
{
    WorkloadOptions wopts = opts;
    if (!wopts.passInstr)
        wopts.passInstr = opts_.passInstr;
    if (!opts_.useCache) {
        if (originOut)
            *originOut = WorkloadOrigin::Built;
        return fresh(bench, wopts);
    }
    WorkloadOrigin origin = WorkloadOrigin::Built;
    const Workload &w = cache_.get(bench, wopts, &origin);
    if (originOut)
        *originOut = origin;
    {
        std::lock_guard<std::mutex> lk(mu_);
        switch (origin) {
        case WorkloadOrigin::Memory:
            ++stats_.cacheHits;
            break;
        case WorkloadOrigin::Disk:
            ++stats_.diskHits;
            break;
        case WorkloadOrigin::Built:
            ++stats_.workloadsBuilt;
            break;
        }
    }
    return w;
}

const Workload &
EvalDriver::fresh(const Benchmark &bench, const WorkloadOptions &opts)
{
    // Copy the benchmark first so the Workload's back-pointer stays
    // valid for the driver's lifetime.
    auto b = std::make_unique<Benchmark>(bench);
    auto w = std::make_unique<Workload>(*b, opts);
    w->setVerifySchedules(opts_.verifySchedules);
    if (opts_.analyze)
        w->runAnalyses(opts_.analyzeOpts);
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.workloadsBuilt;
    freshBenches_.push_back(std::move(b));
    freshWorkloads_.push_back(std::move(w));
    return *freshWorkloads_.back();
}

void
EvalDriver::prefetch(const std::vector<std::string> &benchNames,
                     const WorkloadOptions &opts)
{
    map(benchNames.size(), [&](std::size_t i) {
        workload(benchNames[i], opts);
        return 0;
    });
}

std::vector<VliwRun>
EvalDriver::sweep(const std::vector<EvalTask> &tasks)
{
    // Phase 1: build the distinct front ends concurrently, so phase
    // 2's tasks never serialise on an in-flight workload build.
    if (opts_.useCache) {
        std::set<std::string> seen;
        std::vector<const EvalTask *> distinct;
        for (const EvalTask &t : tasks)
            if (seen
                    .insert(WorkloadCache::keyOf(benchmark(t.bench),
                                                 t.wopts))
                    .second)
                distinct.push_back(&t);
        map(distinct.size(), [&](std::size_t i) {
            workload(distinct[i]->bench, distinct[i]->wopts);
            return 0;
        });
    }
    // Phase 2: every (config × benchmark) compaction + simulation.
    return map(tasks.size(), [&](std::size_t i) {
        const EvalTask &t = tasks[i];
        return workload(t.bench, t.wopts).runVliw(t.config, t.copts);
    });
}

DriverStats
EvalDriver::stats() const
{
    DriverStats out;
    {
        std::lock_guard<std::mutex> lk(mu_);
        out = stats_;
    }
    if (store_) {
        out.hasStore = true;
        out.store = store_->stats();
    }
    return out;
}

void
EvalDriver::reportStats() const
{
    if (!opts_.quiet)
        std::fprintf(stderr, "%s\n",
                     stats().str(pool_->size()).c_str());
    // An explicit --time-passes request prints even under --quiet:
    // the user asked for exactly this report.
    if (pass::timePassesEnabled()) {
        pass::PassInstrumentation &pi =
            opts_.passInstr ? *opts_.passInstr
                            : pass::PassInstrumentation::global();
        std::fprintf(stderr, "%s",
                     pass::timingReport(pi.snapshot()).c_str());
    }
}

} // namespace symbol::suite
