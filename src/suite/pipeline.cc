#include "suite/pipeline.hh"

#include "analysis/stats.hh"
#include "support/diagnostics.hh"

namespace symbol::suite
{

Workload::Workload(const Benchmark &bench, const WorkloadOptions &opts)
    : bench_(&bench), maxSteps_(opts.maxSteps)
{
    interner_ = std::make_unique<Interner>();
    prog_ = std::make_unique<prolog::Program>(
        prolog::parseProgram(bench.source, *interner_));
    module_ = std::make_unique<bam::Module>(
        bamc::compile(*prog_, opts.compiler));
    ici_ = std::make_unique<intcode::Program>(
        intcode::translate(*module_, opts.translate));

    emul::Machine machine(*ici_);
    emul::RunOptions ro;
    ro.maxSteps = maxSteps_;
    run_ = machine.run(ro);
    if (!run_.halted)
        throw RuntimeError(bench.name +
                           ": sequential run did not halt");
    seqOutput_ = machine.decodeOutput();
}

std::uint64_t
Workload::seqCyclesFor(const machine::MachineConfig &config) const
{
    std::pair<int, int> key{config.memLatency, config.branchPenalty};
    if (key == std::pair<int, int>{2, 1})
        return run_.seqCycles; // the default model
    {
        std::lock_guard<std::mutex> lk(seqMu_);
        auto it = seqCache_.find(key);
        if (it != seqCache_.end())
            return it->second;
    }
    // Re-emulate outside the lock; concurrent misses on the same key
    // duplicate deterministic work instead of serialising the pool.
    emul::Machine machine(*ici_);
    emul::RunOptions ro;
    ro.maxSteps = maxSteps_;
    ro.collectProfile = false;
    ro.memLatency = config.memLatency;
    ro.takenPenalty = config.branchPenalty;
    std::uint64_t cycles = machine.run(ro).seqCycles;
    std::lock_guard<std::mutex> lk(seqMu_);
    seqCache_.emplace(key, cycles);
    return cycles;
}

std::uint64_t
Workload::bamCycles() const
{
    return analysis::bamCycles(*ici_, run_.profile);
}

bool
Workload::answerMatches() const
{
    return bench_->expected.empty() ||
           seqOutput_ == bench_->expected;
}

VliwRun
Workload::runVliw(const machine::MachineConfig &config,
                  const sched::CompactOptions &copts) const
{
    sched::CompactResult cr =
        sched::compact(*ici_, run_.profile, config, copts);
    vliw::Machine vm(cr.code, config);
    vliw::SimOptions so;
    so.maxCycles = maxSteps_ * 4;
    vliw::SimResult sr = vm.run(so);

    VliwRun out;
    out.cycles = sr.cycles;
    out.wideExecuted = sr.wideExecuted;
    out.opsExecuted = sr.opsExecuted;
    out.latencyViolations = sr.latencyViolations;
    out.output = vm.decodeOutput();
    out.stats = cr.stats;
    out.speedupVsSeq =
        sr.cycles ? static_cast<double>(seqCyclesFor(config)) /
                        static_cast<double>(sr.cycles)
                  : 0.0;
    if (out.output != seqOutput_)
        throw RuntimeError(
            bench_->name + " (" + config.name +
            "): VLIW output diverges from the sequential answer");
    if (out.latencyViolations != 0)
        throw RuntimeError(bench_->name + " (" + config.name +
                           "): schedule violates latencies");
    return out;
}

} // namespace symbol::suite
