#include "suite/pipeline.hh"

#include "analysis/stats.hh"
#include "sched/serialize.hh"
#include "suite/store.hh"
#include "support/diagnostics.hh"
#include "verify/verify.hh"

namespace symbol::suite
{

Workload::Workload(const Benchmark &bench, const WorkloadOptions &opts)
    : bench_(&bench), maxSteps_(opts.maxSteps)
{
    interner_ = std::make_unique<Interner>();
    prog_ = std::make_unique<prolog::Program>(
        prolog::parseProgram(bench.source, *interner_));
    module_ = std::make_unique<bam::Module>(
        bamc::compile(*prog_, opts.compiler));
    ici_ = std::make_unique<intcode::Program>(
        intcode::translate(*module_, opts.translate));
    cfg_ = std::make_unique<intcode::Cfg>(intcode::Cfg::build(*ici_));

    emul::Machine machine(*ici_);
    emul::RunOptions ro;
    ro.maxSteps = maxSteps_;
    run_ = machine.run(ro);
    if (!run_.halted)
        throw RuntimeError(bench.name +
                           ": sequential run did not halt");
    seqOutput_ = machine.decodeOutput();
}

Workload::Workload(const Benchmark &bench, const WorkloadOptions &opts,
                   WorkloadSnapshot &&snap)
    : bench_(&bench), maxSteps_(opts.maxSteps)
{
    interner_ = std::move(snap.interner);
    module_ = std::move(snap.module);
    ici_ = std::move(snap.ici);
    cfg_ = std::move(snap.cfg);
    run_ = std::move(snap.run);
    seqOutput_ = std::move(snap.seqOutput);
    // Rebind the listing interner pointers onto the restored table
    // (the decoders already did; this survives future refactors).
    module_->interner = interner_.get();
    ici_->interner = interner_.get();
    for (const auto &[lat, pen, cycles] : snap.seqCycles)
        seqCache_.emplace(
            std::pair<int, int>{static_cast<int>(lat),
                                static_cast<int>(pen)},
            static_cast<std::uint64_t>(cycles));
}

void
Workload::attachStore(ArtifactStore *store, std::string workloadKey)
{
    store_ = store;
    storeKey_ = std::move(workloadKey);
}

std::vector<std::array<std::int64_t, 3>>
Workload::seqCycleSnapshot() const
{
    std::lock_guard<std::mutex> lk(seqMu_);
    std::vector<std::array<std::int64_t, 3>> out;
    out.reserve(seqCache_.size());
    for (const auto &[key, cycles] : seqCache_)
        out.push_back({key.first, key.second,
                       static_cast<std::int64_t>(cycles)});
    return out;
}

void
Workload::noteSeqCycles(const machine::MachineConfig &config,
                        std::uint64_t cycles) const
{
    std::pair<int, int> key{config.memLatency, config.branchPenalty};
    if (key == std::pair<int, int>{2, 1})
        return; // the default model reads run_.seqCycles directly
    std::lock_guard<std::mutex> lk(seqMu_);
    seqCache_.emplace(key, cycles);
}

std::uint64_t
Workload::seqCyclesFor(const machine::MachineConfig &config) const
{
    std::pair<int, int> key{config.memLatency, config.branchPenalty};
    if (key == std::pair<int, int>{2, 1})
        return run_.seqCycles; // the default model
    {
        std::lock_guard<std::mutex> lk(seqMu_);
        auto it = seqCache_.find(key);
        if (it != seqCache_.end())
            return it->second;
    }
    // Re-emulate outside the lock; concurrent misses on the same key
    // duplicate deterministic work instead of serialising the pool.
    emul::Machine machine(*ici_);
    emul::RunOptions ro;
    ro.maxSteps = maxSteps_;
    ro.collectProfile = false;
    ro.memLatency = config.memLatency;
    ro.takenPenalty = config.branchPenalty;
    std::uint64_t cycles = machine.run(ro).seqCycles;
    std::lock_guard<std::mutex> lk(seqMu_);
    seqCache_.emplace(key, cycles);
    return cycles;
}

std::uint64_t
Workload::bamCycles() const
{
    return analysis::bamCycles(*ici_, run_.profile);
}

bool
Workload::answerMatches() const
{
    return bench_->expected.empty() ||
           seqOutput_ == bench_->expected;
}

VliwRun
Workload::simulate(const vliw::Code &code,
                   const sched::CompactStats &stats,
                   const machine::MachineConfig &config) const
{
    vliw::Machine vm(code, config);
    vliw::SimOptions so;
    so.maxCycles = maxSteps_ * 4;
    vliw::SimResult sr = vm.run(so);

    VliwRun out;
    out.cycles = sr.cycles;
    out.wideExecuted = sr.wideExecuted;
    out.opsExecuted = sr.opsExecuted;
    out.latencyViolations = sr.latencyViolations;
    out.output = vm.decodeOutput();
    out.stats = stats;
    out.speedupVsSeq =
        sr.cycles ? static_cast<double>(seqCyclesFor(config)) /
                        static_cast<double>(sr.cycles)
                  : 0.0;
    if (out.output != seqOutput_)
        throw RuntimeError(
            bench_->name + " (" + config.name +
            "): VLIW output diverges from the sequential answer");
    if (out.latencyViolations != 0)
        throw RuntimeError(bench_->name + " (" + config.name +
                           "): schedule violates latencies");
    if (sr.badUnitOps != 0)
        throw RuntimeError(bench_->name + " (" + config.name +
                           "): executed micro-ops with out-of-range "
                           "unit ids — corrupt code");
    return out;
}

void
Workload::verifyCode(const vliw::Code &code,
                     const machine::MachineConfig &config,
                     const char *origin) const
{
    verify::Report rep = verify::checkSchedule(code, *ici_, config);
    if (!rep.ok())
        throw RuntimeError(bench_->name + " (" + config.name + ", " +
                           origin +
                           "): schedule fails verification\n" +
                           rep.str());
}

VliwRun
Workload::runVliw(const machine::MachineConfig &config,
                  const sched::CompactOptions &copts) const
{
    if (store_) {
        std::string key = storeKey_ + "|cfg=" + config.fingerprint() +
                          "|sch=" + sched::fingerprint(copts);
        vliw::Code code;
        sched::CompactStats stats;
        std::uint64_t seqCycles = 0;
        if (store_->loadVliw(key, interner_.get(), code, stats,
                             seqCycles)) {
            // Deserialized artefacts get re-verified too: a stale or
            // corrupted store entry must not sneak an illegal
            // schedule past the debug sweep.
            if (verifySchedules_)
                verifyCode(code, config, "store");
            // The persisted per-config sequential cycle count saves
            // the speedup baseline re-emulation on warm starts.
            noteSeqCycles(config, seqCycles);
            return simulate(code, stats, config);
        }
        sched::CompactResult cr =
            sched::compact(*ici_, run_.profile, config, copts);
        if (verifySchedules_)
            verifyCode(cr.code, config, "compacted");
        VliwRun out = simulate(cr.code, cr.stats, config);
        store_->storeVliw(key, cr.code, cr.stats,
                          seqCyclesFor(config));
        return out;
    }
    sched::CompactResult cr =
        sched::compact(*ici_, run_.profile, config, copts);
    if (verifySchedules_)
        verifyCode(cr.code, config, "compacted");
    return simulate(cr.code, cr.stats, config);
}

} // namespace symbol::suite
