#include "suite/pipeline.hh"

#include "analysis/stats.hh"
#include "pass/pass.hh"
#include "sched/serialize.hh"
#include "suite/store.hh"
#include "support/diagnostics.hh"
#include "verify/verify.hh"

namespace symbol::suite
{

namespace
{

/**
 * Context the front-half pass pipeline builds up; the Workload ctor
 * moves the finished artefacts out wholesale. Owning the artefacts
 * here keeps the pass classes free of Workload internals.
 */
struct FrontCtx
{
    const Benchmark *bench = nullptr;
    const WorkloadOptions *opts = nullptr;
    std::unique_ptr<Interner> interner;
    std::unique_ptr<prolog::Program> prog;
    bamc::FlatProgram flat;
    std::unique_ptr<bam::Module> module;
    std::unique_ptr<intcode::Program> ici;
    std::unique_ptr<intcode::Cfg> cfg;
    emul::RunResult run;
    std::string seqOutput;
};

std::uint64_t
flatClauses(const bamc::FlatProgram &flat)
{
    std::uint64_t n = 0;
    for (const auto &p : flat.preds)
        n += p.clauses.size();
    return n;
}

struct ParsePass final : pass::Pass<FrontCtx>
{
    const char *name() const override { return "parse"; }
    std::uint64_t
    irIn(const FrontCtx &c) const override
    {
        return c.bench->source.size();
    }
    std::uint64_t
    irOut(const FrontCtx &c) const override
    {
        return c.prog->clauses.size();
    }
    void
    run(FrontCtx &c) override
    {
        c.interner = std::make_unique<Interner>();
        c.prog = std::make_unique<prolog::Program>(
            prolog::parseProgram(c.bench->source, *c.interner));
    }
};

struct NormalizePass final : pass::Pass<FrontCtx>
{
    const char *name() const override { return "normalize"; }
    std::uint64_t
    irIn(const FrontCtx &c) const override
    {
        return c.prog->clauses.size();
    }
    std::uint64_t
    irOut(const FrontCtx &c) const override
    {
        return flatClauses(c.flat);
    }
    void
    run(FrontCtx &c) override
    {
        c.flat = bamc::normalize(*c.prog);
    }
};

struct BamCompilePass final : pass::Pass<FrontCtx>
{
    const char *name() const override { return "bam-compile"; }
    std::uint64_t
    irIn(const FrontCtx &c) const override
    {
        return flatClauses(c.flat);
    }
    std::uint64_t
    irOut(const FrontCtx &c) const override
    {
        return c.module->code.size();
    }
    void
    run(FrontCtx &c) override
    {
        c.module = std::make_unique<bam::Module>(bamc::compile(
            *c.prog, std::move(c.flat), c.opts->compiler));
    }
};

struct IntcodePass final : pass::Pass<FrontCtx>
{
    const char *name() const override { return "intcode"; }
    std::uint64_t
    irIn(const FrontCtx &c) const override
    {
        return c.module->code.size();
    }
    std::uint64_t
    irOut(const FrontCtx &c) const override
    {
        return c.ici->code.size();
    }
    void
    run(FrontCtx &c) override
    {
        c.ici = std::make_unique<intcode::Program>(
            intcode::translate(*c.module, c.opts->translate));
    }
};

struct CfgPass final : pass::Pass<FrontCtx>
{
    const char *name() const override { return "cfg"; }
    std::uint64_t
    irIn(const FrontCtx &c) const override
    {
        return c.ici->code.size();
    }
    std::uint64_t
    irOut(const FrontCtx &c) const override
    {
        return c.cfg->blocks.size();
    }
    void
    run(FrontCtx &c) override
    {
        c.cfg = std::make_unique<intcode::Cfg>(
            intcode::Cfg::build(*c.ici));
    }
};

struct ProfilePass final : pass::Pass<FrontCtx>
{
    const char *name() const override { return "profile"; }
    std::uint64_t
    irIn(const FrontCtx &c) const override
    {
        return c.ici->code.size();
    }
    std::uint64_t
    irOut(const FrontCtx &c) const override
    {
        return c.run.instructions;
    }
    void
    run(FrontCtx &c) override
    {
        emul::Machine machine(*c.ici);
        emul::RunOptions ro;
        ro.maxSteps = c.opts->maxSteps;
        c.run = machine.run(ro);
        if (!c.run.halted)
            throw RuntimeError(c.bench->name +
                               ": sequential run did not halt");
        c.seqOutput = machine.decodeOutput();
    }
};

} // namespace

Workload::Workload(const Benchmark &bench, const WorkloadOptions &opts)
    : bench_(&bench), instr_(opts.passInstr), maxSteps_(opts.maxSteps)
{
    FrontCtx ctx;
    ctx.bench = &bench;
    ctx.opts = &opts;

    pass::PassManager<FrontCtx> pm(instr_);
    pm.add(std::make_unique<ParsePass>());
    pm.add(std::make_unique<NormalizePass>());
    pm.add(std::make_unique<BamCompilePass>());
    pm.add(std::make_unique<IntcodePass>());
    pm.add(std::make_unique<CfgPass>());
    pm.add(std::make_unique<ProfilePass>());
    pm.run(ctx);

    interner_ = std::move(ctx.interner);
    prog_ = std::move(ctx.prog);
    module_ = std::move(ctx.module);
    ici_ = std::move(ctx.ici);
    cfg_ = std::move(ctx.cfg);
    run_ = std::move(ctx.run);
    seqOutput_ = std::move(ctx.seqOutput);
}

Workload::Workload(const Benchmark &bench, const WorkloadOptions &opts,
                   WorkloadSnapshot &&snap)
    : bench_(&bench), instr_(opts.passInstr), maxSteps_(opts.maxSteps)
{
    interner_ = std::move(snap.interner);
    module_ = std::move(snap.module);
    ici_ = std::move(snap.ici);
    cfg_ = std::move(snap.cfg);
    run_ = std::move(snap.run);
    seqOutput_ = std::move(snap.seqOutput);
    // Rebind the listing interner pointers onto the restored table
    // (the decoders already did; this survives future refactors).
    module_->interner = interner_.get();
    ici_->interner = interner_.get();
    for (const auto &[lat, pen, cycles] : snap.seqCycles)
        seqCache_.emplace(
            std::pair<int, int>{static_cast<int>(lat),
                                static_cast<int>(pen)},
            static_cast<std::uint64_t>(cycles));
}

void
Workload::attachStore(ArtifactStore *store, std::string workloadKey)
{
    store_ = store;
    storeKey_ = std::move(workloadKey);
}

std::vector<std::array<std::int64_t, 3>>
Workload::seqCycleSnapshot() const
{
    std::lock_guard<std::mutex> lk(seqMu_);
    std::vector<std::array<std::int64_t, 3>> out;
    out.reserve(seqCache_.size());
    for (const auto &[key, cycles] : seqCache_)
        out.push_back({key.first, key.second,
                       static_cast<std::int64_t>(cycles)});
    return out;
}

void
Workload::noteSeqCycles(const machine::MachineConfig &config,
                        std::uint64_t cycles) const
{
    std::pair<int, int> key{config.memLatency, config.branchPenalty};
    if (key == std::pair<int, int>{2, 1})
        return; // the default model reads run_.seqCycles directly
    std::lock_guard<std::mutex> lk(seqMu_);
    seqCache_.emplace(key, cycles);
}

std::uint64_t
Workload::seqCyclesFor(const machine::MachineConfig &config) const
{
    std::pair<int, int> key{config.memLatency, config.branchPenalty};
    if (key == std::pair<int, int>{2, 1})
        return run_.seqCycles; // the default model
    {
        std::lock_guard<std::mutex> lk(seqMu_);
        auto it = seqCache_.find(key);
        if (it != seqCache_.end())
            return it->second;
    }
    // Re-emulate outside the lock; concurrent misses on the same key
    // duplicate deterministic work instead of serialising the pool —
    // which is why seq-latency invocation counts, unlike every other
    // pass, are not jobs-invariant.
    pass::SubPassTimer t("seq-latency", instr_);
    std::uint64_t cycles;
    {
        pass::SubPassTimer::Scope s(t);
        emul::Machine machine(*ici_);
        emul::RunOptions ro;
        ro.maxSteps = maxSteps_;
        ro.collectProfile = false;
        ro.memLatency = config.memLatency;
        ro.takenPenalty = config.branchPenalty;
        cycles = machine.run(ro).seqCycles;
    }
    t.finish(ici_->code.size(), cycles);
    std::lock_guard<std::mutex> lk(seqMu_);
    seqCache_.emplace(key, cycles);
    return cycles;
}

const check::DiagnosticEngine &
Workload::runAnalyses(const check::AnalyzeOptions &aopts)
{
    analysis_ = std::make_unique<check::DiagnosticEngine>(
        check::analyze(*module_, *ici_, aopts, instr_));
    if (!analysis_->ok())
        throw ViolationError(
            bench_->name + ": static analysis found " +
            std::to_string(analysis_->errors()) +
            " error(s)\n" + analysis_->str());
    return *analysis_;
}

std::uint64_t
Workload::bamCycles() const
{
    return analysis::bamCycles(*ici_, run_.profile);
}

bool
Workload::answerMatches() const
{
    return bench_->expected.empty() ||
           seqOutput_ == bench_->expected;
}

VliwRun
Workload::simulate(const vliw::Code &code,
                   const sched::CompactStats &stats,
                   const machine::MachineConfig &config) const
{
    vliw::Machine vm(code, config);
    vliw::SimOptions so;
    so.maxCycles = maxSteps_ * 4;
    vliw::SimResult sr = vm.run(so);

    VliwRun out;
    out.cycles = sr.cycles;
    out.wideExecuted = sr.wideExecuted;
    out.opsExecuted = sr.opsExecuted;
    out.latencyViolations = sr.latencyViolations;
    out.output = vm.decodeOutput();
    out.stats = stats;
    out.speedupVsSeq =
        sr.cycles ? static_cast<double>(seqCyclesFor(config)) /
                        static_cast<double>(sr.cycles)
                  : 0.0;
    if (out.output != seqOutput_)
        throw RuntimeError(
            bench_->name + " (" + config.name +
            "): VLIW output diverges from the sequential answer");
    if (out.latencyViolations != 0)
        throw RuntimeError(bench_->name + " (" + config.name +
                           "): schedule violates latencies");
    if (sr.badUnitOps != 0)
        throw RuntimeError(bench_->name + " (" + config.name +
                           "): executed micro-ops with out-of-range "
                           "unit ids — corrupt code");
    return out;
}

void
Workload::verifyCode(const vliw::Code &code,
                     const machine::MachineConfig &config,
                     const char *origin) const
{
    verify::Report rep = verify::checkSchedule(code, *ici_, config);
    if (!rep.ok())
        throw ViolationError(bench_->name + " (" + config.name + ", " +
                           origin +
                           "): schedule fails verification\n" +
                           rep.str());
}

VliwRun
Workload::runVliw(const machine::MachineConfig &config,
                  const sched::CompactOptions &copts) const
{
    // The back half as an instrumented pass pipeline: compaction
    // (skipped when the persistent store already holds the code),
    // optional verification, VLIW simulation.
    struct BackCtx
    {
        vliw::Code code;
        sched::CompactStats stats;
        const char *origin = "compacted";
        VliwRun out;
    };
    using BackPass = pass::FunctionPass<BackCtx>;
    BackCtx ctx;

    bool haveCode = false;
    std::string key;
    if (store_) {
        key = storeKey_ + "|cfg=" + config.fingerprint() +
              "|sch=" + sched::fingerprint(copts);
        std::uint64_t seqCycles = 0;
        if (store_->loadVliw(key, interner_.get(), ctx.code,
                             ctx.stats, seqCycles)) {
            ctx.origin = "store";
            haveCode = true;
            // The persisted per-config sequential cycle count saves
            // the speedup baseline re-emulation on warm starts.
            noteSeqCycles(config, seqCycles);
        }
    }

    auto wideCount = [](const BackCtx &c) -> std::uint64_t {
        return c.code.code.size();
    };

    pass::PassManager<BackCtx> pm(instr_);
    if (!haveCode) {
        // Self-instrumented: the compactor records its own
        // sched.traces/ddg/schedule/emit sub-passes.
        pm.add(std::make_unique<BackPass>(
            "compact",
            [&](BackCtx &c) {
                sched::CompactResult cr = sched::compact(
                    *ici_, run_.profile, config, copts, instr_);
                c.code = std::move(cr.code);
                c.stats = cr.stats;
            },
            nullptr, nullptr, /*selfInstrumented=*/true));
    }
    if (verifySchedules_) {
        // Deserialized artefacts get re-verified too: a stale or
        // corrupted store entry must not sneak an illegal schedule
        // past the debug sweep.
        pm.add(std::make_unique<BackPass>(
            "verify",
            [&](BackCtx &c) {
                verifyCode(c.code, config, c.origin);
            },
            wideCount, wideCount));
    }
    pm.add(std::make_unique<BackPass>(
        "simulate",
        [&](BackCtx &c) {
            // Warm the speedup baseline first so a seq-latency
            // re-emulation is never counted as simulation time.
            seqCyclesFor(config);
            pass::SubPassTimer t("simulate", instr_);
            std::uint64_t in = c.code.code.size();
            {
                pass::SubPassTimer::Scope s(t);
                c.out = simulate(c.code, c.stats, config);
            }
            t.finish(in, c.out.opsExecuted);
        },
        nullptr, nullptr, /*selfInstrumented=*/true));
    pm.run(ctx);

    if (store_ && !haveCode)
        store_->storeVliw(key, ctx.code, ctx.stats,
                          seqCyclesFor(config));
    return ctx.out;
}

} // namespace symbol::suite
