/**
 * @file
 * The parallel evaluation driver: fans benchmark front ends and
 * (config × benchmark) compaction/simulation runs out across a
 * support::ThreadPool, with the WorkloadCache deduplicating the
 * expensive front half (compile + profiling emulation).
 *
 * Determinism guarantee: every fan-out API returns results in the
 * order of its inputs, and each task computes a pure function of the
 * (benchmark, options, config) triple — no task reads another task's
 * result and no accumulation happens across tasks. Consequently a
 * driver with jobs=1 and a driver with jobs=N produce bit-identical
 * result vectors, and harnesses that format those vectors emit
 * byte-identical tables (tests/test_driver_determinism.cc locks this
 * down). Progress/timing reports go to stderr for exactly this
 * reason: stdout carries only deterministic content.
 */

#ifndef SYMBOL_SUITE_DRIVER_HH
#define SYMBOL_SUITE_DRIVER_HH

#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "machine/config.hh"
#include "suite/cache.hh"
#include "suite/pipeline.hh"
#include "suite/store.hh"
#include "support/threadpool.hh"

namespace symbol::suite
{

/** Driver construction options. */
struct DriverOptions
{
    /** Worker threads; 0 = SYMBOL_JOBS env or hardware concurrency. */
    unsigned jobs = 0;
    /** Reuse front-end artefacts across tasks (content-keyed). When
     *  off, every workload request rebuilds and re-emulates. */
    bool useCache = true;
    /**
     * Directory of the persistent artefact store shared across
     * processes; empty = the SYMBOL_CACHE_DIR environment variable,
     * and when that is unset too, no disk store. Requires useCache.
     */
    std::string cacheDir;
    /**
     * Debug flag: statically verify every schedule (freshly compacted
     * or deserialized from the store) with verify::checkSchedule
     * before simulating; a violation fails the run with the full
     * report. Also enabled by a non-empty, non-"0" SYMBOL_VERIFY
     * environment variable.
     */
    bool verifySchedules = false;
    /**
     * Debug flag: run the static IR analyzer (src/check) over every
     * workload this driver builds or restores from the store; any
     * error-severity diagnostic fails the run with the full report
     * (a ViolationError). Also enabled by a non-empty, non-"0"
     * SYMBOL_ANALYZE environment variable.
     */
    bool analyze = false;
    /** Analyzer configuration (pass selection, --Werror). */
    check::AnalyzeOptions analyzeOpts;
    /**
     * Suppress the "[driver] ..." stderr summary (reportStats()
     * becomes a no-op except for an explicit --time-passes report).
     * Also enabled by a non-empty, non-"0" SYMBOL_QUIET environment
     * variable — e.g. for golden-output tests that diff stderr too.
     */
    bool quiet = false;
    /**
     * Pass-instrumentation sink threaded into every Workload this
     * driver builds (null = the process-wide default sink).
     */
    pass::PassInstrumentation *passInstr = nullptr;
};

/** Aggregate accounting across a driver's lifetime. */
struct DriverStats
{
    std::uint64_t tasksRun = 0;
    /** Workloads built by running the full front half. */
    std::uint64_t workloadsBuilt = 0;
    /** In-memory cache hits. */
    std::uint64_t cacheHits = 0;
    /** Memory misses restored from the persistent store. */
    std::uint64_t diskHits = 0;
    double wallSeconds = 0.0;
    double cpuSeconds = 0.0;
    /** Disk-store traffic; zeros when no store is attached. */
    bool hasStore = false;
    StoreStats store;

    /** Human-readable summary (a second line covers the store). */
    std::string str(unsigned jobs) const;
};

/** One point of an evaluation sweep. */
struct EvalTask
{
    std::string bench; ///< suite benchmark name
    WorkloadOptions wopts;
    machine::MachineConfig config;
    sched::CompactOptions copts;
};

class EvalDriver
{
  public:
    explicit EvalDriver(const DriverOptions &opts = {});
    ~EvalDriver();

    unsigned jobs() const { return pool_->size(); }
    support::ThreadPool &pool() { return *pool_; }
    /** The persistent store, or nullptr when none is configured. */
    ArtifactStore *store() { return store_.get(); }

    /**
     * The workload of a suite benchmark (by name) or an arbitrary
     * Benchmark, cached under its content key. Thread-safe; safe to
     * call from inside driver tasks. @p origin, when given, receives
     * where the artefact came from (built / disk store / memory) —
     * the server reports it per request.
     */
    const Workload &workload(const std::string &benchName,
                             const WorkloadOptions &opts = {},
                             WorkloadOrigin *origin = nullptr);
    const Workload &workload(const Benchmark &bench,
                             const WorkloadOptions &opts = {},
                             WorkloadOrigin *origin = nullptr);

    /** Build the workloads of @p benchNames concurrently. */
    void prefetch(const std::vector<std::string> &benchNames,
                  const WorkloadOptions &opts = {});

    /**
     * Evaluate every task (compact + simulate, after a concurrent
     * prefetch of the distinct front ends); results in input order.
     */
    std::vector<VliwRun> sweep(const std::vector<EvalTask> &tasks);

    /**
     * Fan fn(i), i in [0, n), out across the pool; results in index
     * order. fn must be a pure function of i (plus workload()
     * lookups); the first exception is rethrown after all tasks
     * finished.
     */
    template <class F>
    auto
    map(std::size_t n, F fn)
        -> std::vector<std::invoke_result_t<F, std::size_t>>
    {
        using R = std::invoke_result_t<F, std::size_t>;
        Timer t(*this, n);
        std::vector<support::ThreadPool::Future<R>> fs;
        fs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            fs.push_back(pool_->submit([fn, i] { return fn(i); }));
        std::vector<R> out;
        out.reserve(n);
        std::exception_ptr first;
        for (auto &f : fs) {
            try {
                out.push_back(f.get());
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return out;
    }

    /** Accounting snapshot (tasks, cache traffic, wall/cpu time). */
    DriverStats stats() const;

    /** stats().str() to stderr — never stdout, which must stay
     *  byte-identical across jobs settings. */
    void reportStats() const;

  private:
    /** Accumulates wall/cpu time and task counts of one fan-out. */
    class Timer
    {
      public:
        Timer(EvalDriver &d, std::size_t tasks);
        ~Timer();

      private:
        EvalDriver &d_;
        std::size_t tasks_;
        double wall0_, cpu0_;
    };

    const Workload &fresh(const Benchmark &bench,
                          const WorkloadOptions &opts);

    DriverOptions opts_;
    std::unique_ptr<support::ThreadPool> pool_;
    /** Declared before cache_: the cache holds a raw pointer. */
    std::unique_ptr<ArtifactStore> store_;
    WorkloadCache cache_;

    mutable std::mutex mu_;
    DriverStats stats_;
    /** Keeps uncached workloads (useCache=false) alive. */
    std::vector<std::unique_ptr<Benchmark>> freshBenches_;
    std::vector<std::unique_ptr<Workload>> freshWorkloads_;
};

} // namespace symbol::suite

#endif // SYMBOL_SUITE_DRIVER_HH
