#include "suite/benchmarks.hh"

#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::suite
{

namespace
{

std::vector<Benchmark>
makeSuite()
{
    std::vector<Benchmark> v;

    // ---------------------------------------------------------------
    v.push_back({"conc30", R"PL(
% Concatenation of a 30-element list (Warren's concat kernel).
conc([], L, L).
conc([X|L1], L2, [X|L3]) :- conc(L1, L2, L3).

main :-
    conc([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
          16,17,18,19,20,21,22,23,24,25,26,27,28,29,30],
         [31,32,33], R),
    out(R).
)PL", 
                 "[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33]\n"});

    // ---------------------------------------------------------------
    v.push_back({"crypt", R"PL(
% Crypto-arithmetic digit puzzle: find EO * EO products whose digits
% are all odd (a reconstruction of the classic crypt search shape:
% digit generators, arithmetic, deep backtracking).
even(0). even(2). even(4). even(6). even(8).
odd(1). odd(3). odd(5). odd(7). odd(9).

allodd(0).
allodd(N) :- N > 0, D is N mod 10, odd(D), Q is N // 10, allodd(Q).

main :-
    even(A), A > 0, odd(B), even(C), C > 0, odd(D),
    N is (10 * A + B) * (10 * C + D),
    N >= 1000,
    allodd(N),
    out([A,B,C,D,N]).
)PL", 
                 "[2,3,8,5,1955]\n"});

    // ---------------------------------------------------------------
    const char *deriv = R"PL(
% Warren's symbolic differentiation kernel.
d(U + V, X, DU + DV) :- !, d(U, X, DU), d(V, X, DV).
d(U - V, X, DU - DV) :- !, d(U, X, DU), d(V, X, DV).
d(U * V, X, DU * V + U * DV) :- !, d(U, X, DU), d(V, X, DV).
d(U / V, X, (DU * V - U * DV) / (V * V)) :- !, d(U, X, DU), d(V, X, DV).
d(U ^ N, X, DU * N * U ^ N1) :- !, integer(N), N1 is N - 1, d(U, X, DU).
d(- U, X, - DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U) * DU) :- !, d(U, X, DU).
d(log(U), X, DU / U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
)PL";

    v.push_back({"divide10", std::string(deriv) + R"PL(
main :-
    d(((((((((x / x) / x) / x) / x) / x) / x) / x) / x) / x, x, D),
    out(D).
)PL", 
                 "/(-(*(/(-(*(/(-(*(/(-(*(/(-(*(/(-(*(/(-(*(/(-(*(/(-(*(1,x),*(x,1)),*(x,x)),x),*(/(x,x),1)),*(x,x)),x),*(/(/(x,x),x),1)),*(x,x)),x),*(/(/(/(x,x),x),x),1)),*(x,x)),x),*(/(/(/(/(x,x),x),x),x),1)),*(x,x)),x),*(/(/(/(/(/(x,x),x),x),x),x),1)),*(x,x)),x),*(/(/(/(/(/(/(x,x),x),x),x),x),x),1)),*(x,x)),x),*(/(/(/(/(/(/(/(x,x),x),x),x),x),x),x),1)),*(x,x)),x),*(/(/(/(/(/(/(/(/(x,x),x),x),x),x),x),x),x),1)),*(x,x))\n"});

    v.push_back({"log10", std::string(deriv) + R"PL(
main :-
    d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, D),
    out(D).
)PL", 
                 "/(/(/(/(/(/(/(/(/(/(1,x),log(x)),log(log(x))),log(log(log(x)))),log(log(log(log(x))))),log(log(log(log(log(x)))))),log(log(log(log(log(log(x))))))),log(log(log(log(log(log(log(x)))))))),log(log(log(log(log(log(log(log(x))))))))),log(log(log(log(log(log(log(log(log(x))))))))))\n"});

    // ---------------------------------------------------------------
    v.push_back({"mu", R"PL(
% Hofstadter's MU puzzle: derive a string of the MIU system within a
% bounded number of rule applications.
app([], L, L).
app([X|L1], L2, [X|L3]) :- app(L1, L2, L3).

rules(S, R) :- rule1(S, R).
rules(S, R) :- rule2(S, R).
rules(S, R) :- rule3(S, R).
rules(S, R) :- rule4(S, R).

rule1(S, R) :- app(X, [i], S), app(X, [i,u], R).
rule2([m|T], [m|R]) :- app(T, T, R).
rule3(S, R) :- app(X, [i,i,i|U], S), app(X, [u|U], R).
rule4(S, R) :- app(X, [u,u|U], S), app(X, U, R).

theorem(_, [m,i]).
theorem(D, R) :- D > 0, D1 is D - 1, theorem(D1, S), rules(S, R).

main :- theorem(4, [m,u,i,u]), out(derived).
)PL", 
                 "derived\n"});

    // ---------------------------------------------------------------
    v.push_back({"nreverse", R"PL(
% Naive reverse of a 30-element list: the canonical LIPS benchmark.
app([], L, L).
app([X|L1], L2, [X|L3]) :- app(L1, L2, L3).

nrev([], []).
nrev([X|L], R) :- nrev(L, RL), app(RL, [X], R).

main :-
    nrev([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
          16,17,18,19,20,21,22,23,24,25,26,27,28,29,30], R),
    out(R).
)PL", 
                 "[30,29,28,27,26,25,24,23,22,21,20,19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1]\n"});

    // ---------------------------------------------------------------
    v.push_back({"ops8", std::string(deriv) + R"PL(
main :-
    d((x + 1) * ((x ^ 2 + 2) * (x ^ 3 + 3)), x, D),
    out(D).
)PL", 
                 "+(*(+(1,0),*(+(^(x,2),2),+(^(x,3),3))),*(+(x,1),+(*(+(*(*(1,2),^(x,1)),0),+(^(x,3),3)),*(+(^(x,2),2),+(*(*(1,3),^(x,2)),0)))))\n"});

    // ---------------------------------------------------------------
    v.push_back({"prover", R"PL(
% A propositional sequent prover (Wang's algorithm): proves a battery
% of classic tautologies, including Peirce's law.
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).

th(G, D) :- member(X, G), atom(X), member(X, D).
th(G, D) :- sel(neg(A), G, G1), th(G1, [A|D]).
th(G, D) :- sel(and(A,B), G, G1), th([A,B|G1], D).
th(G, D) :- sel(or(A,B), G, G1), th([A|G1], D), th([B|G1], D).
th(G, D) :- sel(imp(A,B), G, G1), th(G1, [A|D]), th([B|G1], D).
th(G, D) :- sel(neg(A), D, D1), th([A|G], D1).
th(G, D) :- sel(and(A,B), D, D1), th(G, [A|D1]), th(G, [B|D1]).
th(G, D) :- sel(or(A,B), D, D1), th(G, [A,B|D1]).
th(G, D) :- sel(imp(A,B), D, D1), th([A|G], [B|D1]).

prove(F) :- th([], [F]).

main :-
    prove(imp(and(p,q), and(q,p))),
    prove(or(p, neg(p))),
    prove(imp(imp(imp(p,q), p), p)),
    prove(imp(neg(neg(p)), p)),
    prove(imp(and(imp(p,q), imp(q,r)), imp(p,r))),
    prove(imp(and(or(p,q), and(imp(p,r), imp(q,r))), r)),
    prove(or(imp(p,q), imp(q,p))),
    out(proved).
)PL", 
                 "proved\n"});

    // ---------------------------------------------------------------
    v.push_back({"qsort", R"PL(
% Warren's quicksort of the standard 50-element list, with
% difference-list accumulation.
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).

partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).

main :-
    qsort([27,74,17,33,94,18,46,83,65,2,
           32,53,28,85,99,47,28,82,6,11,
           55,29,39,81,90,37,10,0,66,51,
           7,21,85,27,31,63,75,4,95,99,
           11,28,61,74,18,92,40,53,59,8], R, []),
    out(R).
)PL", 
                 "[0,2,4,6,7,8,10,11,11,17,18,18,21,27,27,28,28,28,29,31,32,33,37,39,40,46,47,51,53,53,55,59,61,63,65,66,74,74,75,81,82,83,85,85,90,92,94,95,99,99]\n"});

    // ---------------------------------------------------------------
    v.push_back({"queens_8", R"PL(
% First solution of the 8-queens problem (permutation formulation).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).

sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).

attack(X, Xs) :- attack3(X, 1, Xs).
attack3(X, N, [Y|_]) :- X =:= Y + N.
attack3(X, N, [Y|_]) :- X =:= Y - N.
attack3(X, N, [_|Ys]) :- N1 is N + 1, attack3(X, N1, Ys).

queens([], Qs, Qs).
queens(Unplaced, Safe, Qs) :-
    sel(Q, Unplaced, Rest),
    \+ attack(Q, Safe),
    queens(Rest, [Q|Safe], Qs).

main :- range(1, 8, Ns), queens(Ns, [], Qs), out(Qs).
)PL", 
                 "[4,2,7,3,6,8,5,1]\n"});

    // ---------------------------------------------------------------
    v.push_back({"query", R"PL(
% The classic database query benchmark: pairs of countries whose
% population densities are within 5 percent of each other.
main :- query(X), out(X), fail.
main :- out(done).

query([C1, D1, C2, D2]) :-
    density(C1, D1), density(C2, D2),
    D1 > D2,
    T1 is 20 * D1, T2 is 21 * D2, T1 < T2.

density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.

pop(china, 8250).      pop(india, 5863).      pop(ussr, 2521).
pop(usa, 2119).        pop(indonesia, 1276).  pop(japan, 1097).
pop(brazil, 1042).     pop(bangladesh, 750).  pop(pakistan, 682).
pop(w_germany, 620).   pop(nigeria, 613).     pop(mexico, 581).
pop(uk, 559).          pop(italy, 554).       pop(france, 525).
pop(philippines, 415). pop(thailand, 410).    pop(turkey, 383).
pop(egypt, 364).       pop(spain, 352).       pop(poland, 337).
pop(s_korea, 335).     pop(iran, 320).        pop(ethiopia, 272).
pop(argentina, 251).

area(china, 3380).     area(india, 1139).     area(ussr, 8708).
area(usa, 3609).       area(indonesia, 570).  area(japan, 148).
area(brazil, 3288).    area(bangladesh, 55).  area(pakistan, 311).
area(w_germany, 96).   area(nigeria, 373).    area(mexico, 764).
area(uk, 86).          area(italy, 116).      area(france, 213).
area(philippines, 90). area(thailand, 200).   area(turkey, 296).
area(egypt, 386).      area(spain, 190).      area(poland, 121).
area(s_korea, 37).     area(iran, 628).       area(ethiopia, 350).
area(argentina, 1080).
)PL", 
                 "[indonesia,223,pakistan,219]\n[uk,650,w_germany,645]\n[italy,477,philippines,461]\n[france,246,china,244]\n[ethiopia,77,mexico,76]\ndone\n"});

    // ---------------------------------------------------------------
    v.push_back({"sendmore", R"PL(
% SEND + MORE = MONEY, solved column-wise with carries.
dig(0). dig(1). dig(2). dig(3). dig(4).
dig(5). dig(6). dig(7). dig(8). dig(9).
carry(0). carry(1).

main :- solve(S,E,N,D,M,O,R,Y), out([S,E,N,D,M,O,R,Y]).

solve(S,E,N,D,M,O,R,Y) :-
    M = 1,
    dig(D), D =\= M,
    dig(E), E =\= M, E =\= D,
    T1 is D + E, Y is T1 mod 10, C1 is T1 // 10,
    Y =\= M, Y =\= D, Y =\= E,
    dig(N), N =\= M, N =\= D, N =\= E, N =\= Y,
    carry(C2),
    R is E + 10 * C2 - N - C1, R >= 0, R =< 9,
    R =\= M, R =\= D, R =\= E, R =\= Y, R =\= N,
    carry(C3),
    O is N + 10 * C3 - E - C2, O >= 0, O =< 9,
    O =\= M, O =\= D, O =\= E, O =\= Y, O =\= N, O =\= R,
    S is O + 10 - M - C3, S >= 1, S =< 9,
    S =\= D, S =\= E, S =\= Y, S =\= N, S =\= R, S =\= O.
)PL", 
                 "[9,5,6,7,1,0,8,2]\n"});

    // ---------------------------------------------------------------
    v.push_back({"serialise", R"PL(
% Warren's serialise: replace each character of a palindrome by its
% rank among the distinct characters, via an ordered tree.
serialise(L, R) :- pairlists(L, R, A), arrange(A, T), numbered(T, 1, _).

pairlists([X|L], [Y|R], [pair(X,Y)|A]) :- pairlists(L, R, A).
pairlists([], [], []).

arrange([X|L], tree(T1, X, T2)) :-
    split(L, X, L1, L2),
    arrange(L1, T1),
    arrange(L2, T2).
arrange([], void).

split([X|L], X, L1, L2) :- !, split(L, X, L1, L2).
split([X|L], Y, [X|L1], L2) :- before(X, Y), !, split(L, Y, L1, L2).
split([X|L], Y, L1, [X|L2]) :- before(Y, X), !, split(L, Y, L1, L2).
split([], _, [], []).

before(pair(X1, _), pair(X2, _)) :- X1 < X2.

numbered(tree(T1, pair(_, N1), T2), N0, N) :-
    numbered(T1, N0, N1),
    N2 is N1 + 1,
    numbered(T2, N2, N).
numbered(void, N, N).

main :- serialise("ABLE WAS I ERE I SAW ELBA", R), out(R).
)PL", 
                 "[2,3,6,4,1,9,2,8,1,5,1,4,7,4,1,5,1,8,2,9,1,4,6,3,2]\n"});

    // ---------------------------------------------------------------
    v.push_back({"tak", R"PL(
% The Takeuchi function, tak(18,12,6) = 7: deep deterministic
% recursion dominated by integer arithmetic and shallow indexing.
tak(X, Y, Z, A) :- X =< Y, !, Z = A.
tak(X, Y, Z, A) :-
    X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
    tak(X1, Y, Z, A1),
    tak(Y1, Z, X, A2),
    tak(Z1, X, Y, A3),
    tak(A1, A2, A3, A).

main :- tak(18, 12, 6, A), out(A).
)PL", 
                 "7\n"});

    // ---------------------------------------------------------------
    v.push_back({"times10", std::string(deriv) + R"PL(
main :-
    d(((((((((x * x) * x) * x) * x) * x) * x) * x) * x) * x, x, D),
    out(D).
)PL", 
                 "+(*(+(*(+(*(+(*(+(*(+(*(+(*(+(*(+(*(1,x),*(x,1)),x),*(*(x,x),1)),x),*(*(*(x,x),x),1)),x),*(*(*(*(x,x),x),x),1)),x),*(*(*(*(*(x,x),x),x),x),1)),x),*(*(*(*(*(*(x,x),x),x),x),x),1)),x),*(*(*(*(*(*(*(x,x),x),x),x),x),x),1)),x),*(*(*(*(*(*(*(*(x,x),x),x),x),x),x),x),1)),x),*(*(*(*(*(*(*(*(*(x,x),x),x),x),x),x),x),x),1))\n"});

    // ---------------------------------------------------------------
    v.push_back({"zebra", R"PL(
% The five-houses (zebra) puzzle: pure unification over a 5-element
% house list with heavy shallow backtracking.
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

right_of(A, B, [B,A|_]).
right_of(A, B, [_|T]) :- right_of(A, B, T).

next_to(A, B, [A,B|_]).
next_to(A, B, [B,A|_]).
next_to(A, B, [_|T]) :- next_to(A, B, T).

zebra(Z, W) :-
    H = [house(norwegian,_,_,_,_), _, house(_,_,_,milk,_), _, _],
    member(house(englishman,_,_,_,red), H),
    member(house(spaniard,dog,_,_,_), H),
    member(house(_,_,_,coffee,green), H),
    member(house(ukrainian,_,_,tea,_), H),
    right_of(house(_,_,_,_,green), house(_,_,_,_,ivory), H),
    member(house(_,snails,oldgold,_,_), H),
    member(house(_,_,kools,_,yellow), H),
    next_to(house(_,_,chesterfield,_,_), house(_,fox,_,_,_), H),
    next_to(house(_,_,kools,_,_), house(_,horse,_,_,_), H),
    member(house(_,_,luckystrike,orangejuice,_), H),
    member(house(japanese,_,parliament,_,_), H),
    next_to(house(norwegian,_,_,_,_), house(_,_,_,_,blue), H),
    member(house(Z,zebra,_,_,_), H),
    member(house(W,_,_,water,_), H).

main :- zebra(Z, W), out(Z), out(W).
)PL", 
                 "japanese\nnorwegian\n"});

    return v;
}

} // namespace

const std::vector<Benchmark> &
aquarius()
{
    static const std::vector<Benchmark> suite = makeSuite();
    return suite;
}

const Benchmark &
benchmark(const std::string &name)
{
    for (const Benchmark &b : aquarius()) {
        if (b.name == name)
            return b;
    }
    throw CompileError("unknown benchmark: " + name);
}

Benchmark
fuzzCase(std::uint64_t seed, const std::string &source)
{
    Benchmark b;
    b.name = strprintf("fuzz-seed-%llu",
                       static_cast<unsigned long long>(seed));
    b.source = source;
    return b;
}

} // namespace symbol::suite
