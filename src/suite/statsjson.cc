#include "suite/statsjson.hh"

namespace symbol::suite
{

json::Value
statsDocument(const DriverStats &stats, unsigned jobs,
              const std::vector<pass::PassStats> &passes)
{
    json::Object driver;
    driver["jobs"] = std::uint64_t{jobs};
    driver["tasksRun"] = stats.tasksRun;
    driver["workloadsBuilt"] = stats.workloadsBuilt;
    driver["cacheHits"] = stats.cacheHits;
    driver["diskHits"] = stats.diskHits;
    driver["wallSeconds"] = stats.wallSeconds;
    driver["cpuSeconds"] = stats.cpuSeconds;

    json::Array parr;
    for (const pass::PassStats &p : passes) {
        json::Object o;
        o["name"] = p.name;
        o["invocations"] = p.invocations;
        o["wallSeconds"] = p.wallSeconds;
        o["irIn"] = p.irIn;
        o["irOut"] = p.irOut;
        parr.push_back(json::Value(std::move(o)));
    }

    json::Object doc;
    doc["driver"] = json::Value(std::move(driver));
    if (stats.hasStore) {
        json::Object store;
        store["diskHits"] = stats.store.diskHits;
        store["diskMisses"] = stats.store.diskMisses;
        store["diskWrites"] = stats.store.diskWrites;
        store["corruptRejected"] = stats.store.corruptRejected;
        store["versionRejected"] = stats.store.versionRejected;
        store["keyMismatches"] = stats.store.keyMismatches;
        store["ioErrors"] = stats.store.ioErrors;
        store["bytesRead"] = stats.store.bytesRead;
        store["bytesWritten"] = stats.store.bytesWritten;
        store["deserializeSeconds"] =
            stats.store.deserializeSeconds;
        store["serializeSeconds"] = stats.store.serializeSeconds;
        doc["store"] = json::Value(std::move(store));
    }
    doc["passes"] = json::Value(std::move(parr));
    return json::Value(std::move(doc));
}

std::string
statsJson(const EvalDriver &driver,
          const pass::PassInstrumentation &instr)
{
    return statsDocument(driver.stats(), driver.jobs(),
                         instr.snapshot())
               .dump() +
           "\n";
}

} // namespace symbol::suite
