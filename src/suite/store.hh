/**
 * @file
 * Persistent, content-addressed artefact store backing the
 * WorkloadCache across processes.
 *
 * Each entry is one container file (see serialize/container.hh)
 * named after the FNV-1a hash of its full cache key and the current
 * format version:
 *
 *   wl-<keyhash>-<keylen>-v<N>.syaf   workload bundle: interner, BAM
 *                                     module, ICI program + CFG +
 *                                     provenance, profiling RunResult
 *                                     (Expect / taken / transcript),
 *                                     decoded answer, per-latency
 *                                     sequential cycle counts
 *   vc-<keyhash>-<keylen>-v<N>.syaf   compacted VLIW code + stats +
 *                                     sequential baseline cycles for
 *                                     one machine-config fingerprint
 *
 * The full key rides inside every file (section 1) and is compared
 * on load, so a hash collision degrades to a rebuild, never an
 * aliased artefact.
 *
 * Sharded layout: entries live in 256 two-hex-character
 * subdirectories keyed by the leading byte of the key hash
 * (`ab/wl-ab…-v2.syaf`), so a store holding millions of artefacts
 * never concentrates them in one directory. Reads transparently fall
 * back to the pre-sharding flat layout (counted in
 * StoreStats::flatReadThrough), and migrateFlat() — surfaced as
 * `symbolc --migrate-store DIR` — renames a flat store into the
 * sharded layout in place.
 *
 * Concurrency: files are written to a unique temp name, fsync'd, and
 * published with an atomic rename under a per-key advisory flock, so
 * readers — in other threads or other processes under `--jobs N` —
 * only ever observe complete files, and a crash between write and
 * rename can never publish a short artefact. Robust degradation: a
 * missing, truncated, bit-flipped, checksum-mismatched or
 * version-bumped file is a recorded miss and the artefact is
 * rebuilt; no store failure ever crashes the pipeline or changes an
 * answer.
 */

#ifndef SYMBOL_SUITE_STORE_HH
#define SYMBOL_SUITE_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sched/compact.hh"
#include "suite/pipeline.hh"
#include "vliw/code.hh"

namespace symbol::suite
{

/** Traffic and degradation counters of one ArtifactStore. */
struct StoreStats
{
    std::uint64_t diskHits = 0;
    std::uint64_t diskMisses = 0; ///< absent files (cold keys)
    std::uint64_t diskWrites = 0;
    /** Files rejected by checksum/structure validation. */
    std::uint64_t corruptRejected = 0;
    /** Files rejected by the format-version check. */
    std::uint64_t versionRejected = 0;
    /** Hash-collision guard: stored key differed from the request. */
    std::uint64_t keyMismatches = 0;
    /** Write-side I/O failures (store kept degrading gracefully). */
    std::uint64_t ioErrors = 0;
    /** Reads served from the legacy flat (unsharded) layout. */
    std::uint64_t flatReadThrough = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    double deserializeSeconds = 0.0;
    double serializeSeconds = 0.0;

    /** One-line human-readable summary. */
    std::string str() const;
};

class ArtifactStore
{
  public:
    /** Open (creating if needed) the store at @p dir. Throws
     *  RuntimeError if the directory cannot be created. */
    explicit ArtifactStore(const std::string &dir);
    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    const std::string &dir() const { return dir_; }

    /**
     * Load the workload bundle of @p key into @p out. False on any
     * miss — absent, corrupt, truncated, version-bumped or
     * key-colliding file — with the reason counted in stats().
     */
    bool loadWorkload(const std::string &key, WorkloadSnapshot &out);

    /** Persist the bundle of @p w under @p key. Atomic and
     *  best-effort: failures are counted, never thrown. */
    void storeWorkload(const std::string &key, const Workload &w);

    /** Load compacted code + stats + the per-config sequential
     *  baseline cycles. Same miss semantics as loadWorkload. */
    bool loadVliw(const std::string &key, const Interner *interner,
                  vliw::Code &code, sched::CompactStats &stats,
                  std::uint64_t &seqCycles);

    void storeVliw(const std::string &key, const vliw::Code &code,
                   const sched::CompactStats &stats,
                   std::uint64_t seqCycles);

    /**
     * Load the opaque blob stored under (@p kind, @p key) into
     * @p out. Same miss semantics as loadWorkload. @p kind is a
     * short lowercase tag naming the artefact family (e.g. "rs" for
     * symbold's cached compile responses).
     */
    bool loadBlob(const std::string &kind, const std::string &key,
                  std::string &out);

    /** Persist an opaque blob under (@p kind, @p key). Atomic and
     *  best-effort: failures are counted, never thrown. */
    void storeBlob(const std::string &kind, const std::string &key,
                   const std::string &bytes);

    StoreStats stats() const;

    /** The store file name of @p key (exposed for tests and the
     *  verifier). @p kind is "wl", "vc", or a blob family tag. */
    static std::string fileNameFor(const std::string &kind,
                                   const std::string &key);

    /** The 2-hex-char shard subdirectory of a store file name: the
     *  leading byte of the key hash embedded in the name. Empty for
     *  names that are not store files. */
    static std::string shardOf(const std::string &fileName);

    /** The canonical (sharded) path of @p key's artefact. */
    std::string pathFor(const std::string &kind,
                        const std::string &key) const;

    /** Outcome of one migrateFlat() run. */
    struct MigrateReport
    {
        /** Flat artefacts renamed into their shard directory. */
        std::uint64_t moved = 0;
        /** Flat artefacts whose sharded twin already existed (the
         *  sharded copy wins; the flat one is removed). */
        std::uint64_t replaced = 0;
        /** Stale lock/temp droppings removed from the flat root. */
        std::uint64_t scrubbed = 0;
        /** Files that could not be moved (kept in place). */
        std::uint64_t errors = 0;

        std::string str() const;
    };

    /**
     * Migrate the legacy flat layout in place: every `*.syaf` file
     * sitting directly in the store root is renamed into its shard
     * subdirectory, and stale `*.lock` / `*.tmp.*` droppings are
     * scrubbed. Safe to run while other processes read the store —
     * readers fall back flat→sharded and sharded→flat is a rename
     * (atomic within the filesystem).
     */
    MigrateReport migrateFlat();

    /** One file's verdict from verifyDir. */
    struct FileReport
    {
        std::string name;
        std::size_t bytes = 0;
        bool ok = false;
        std::uint32_t version = 0;
        std::size_t sections = 0;
        std::string problem; ///< non-empty when !ok
    };

    /** Validate every store file in @p dir (checksums, structure,
     *  version), sorted by name. Backs `symbolc --cache-verify`. */
    static std::vector<FileReport> verifyDir(const std::string &dir);

  private:
    bool loadFile(const std::string &kind, const std::string &key,
                  std::string &outBytes);
    void writeFile(const std::string &kind, const std::string &key,
                   const std::string &bytes);

    std::string dir_;
    mutable std::mutex mu_;
    StoreStats stats_;
};

} // namespace symbol::suite

#endif // SYMBOL_SUITE_STORE_HH
