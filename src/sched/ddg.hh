/**
 * @file
 * Dependence-graph construction over a linearised trace (§4.3), the
 * second sub-pass of global compaction.
 *
 * Dependence kinds implemented: true (source-destination),
 * write-after-read, write-after-write, memory (via the
 * MemDisambiguator oracle), observable-output order, and the control
 * constraints — branches never reorder, nothing sinks below a branch
 * it preceded, and an op hoists above a split only when side-effect
 * free, committed within the branch-penalty window, and not off-live
 * on the split's off-trace edge.
 *
 * Also home to the latency/slot model shared by the list scheduler:
 * latencyOf, speculable, Slot/slotOf.
 */

#ifndef SYMBOL_SCHED_DDG_HH
#define SYMBOL_SCHED_DDG_HH

#include <array>
#include <vector>

#include "machine/config.hh"
#include "sched/liveness.hh"
#include "sched/trace.hh"

namespace symbol::sched
{

/** Operation latency under a machine configuration. */
int latencyOf(const intcode::IInstr &i,
              const machine::MachineConfig &cfg);

/** May an operation be hoisted above a branch it followed? Stores,
 *  output and faulting operations may not (side effects). */
bool speculable(const intcode::IInstr &i);

/** Issue-slot class used for resource accounting. */
enum class Slot : std::uint8_t { Mem, Alu, Move, Branch, None };

Slot slotOf(const intcode::IInstr &i);

/** One dependence edge: @p to must start @p delay cycles later. */
struct Edge
{
    int to;
    int delay;
};

/** The trace dependence graph. */
struct Ddg
{
    std::vector<std::vector<Edge>> succs;
    std::vector<int> npreds;
    /** Producing trace op of (ra, rb), or -1 if live-in. */
    std::vector<std::array<int, 2>> defOf;
    /** Critical path to the end of the trace, in cycles. */
    std::vector<int> height;

    /** Total edge count (the pass's irOut unit). */
    std::uint64_t
    numEdges() const
    {
        std::uint64_t n = 0;
        for (const auto &s : succs)
            n += s.size();
        return n;
    }
};

/**
 * Build the dependence graph of @p ops. The ops must already carry
 * their symbolic addresses (MemDisambiguator::annotate).
 */
Ddg buildDdg(const std::vector<TOp> &ops, const Liveness &live,
             const machine::MachineConfig &mc,
             const MemDisambiguator &dis);

} // namespace symbol::sched

#endif // SYMBOL_SCHED_DDG_HH
