/**
 * @file
 * Binary encode/decode of compaction statistics, and the compaction
 * option fingerprint used to key per-config compacted-code artefacts
 * in the persistent store. Doubles round-trip as exact bit patterns,
 * so warm-start bench tables render byte-identically.
 */

#ifndef SYMBOL_SCHED_SERIALIZE_HH
#define SYMBOL_SCHED_SERIALIZE_HH

#include <string>

#include "sched/compact.hh"
#include "serialize/codec.hh"

namespace symbol::sched
{

void encode(serialize::Writer &w, const CompactStats &stats);

/** Throws serialize::DecodeError on malformed input. */
CompactStats decodeCompactStats(serialize::Reader &r);

/** Canonical text covering every CompactOptions field; part of the
 *  store key of compacted-code artefacts. */
std::string fingerprint(const CompactOptions &opts);

} // namespace symbol::sched

#endif // SYMBOL_SCHED_SERIALIZE_HH
