/**
 * @file
 * The back-end parallelising compiler of §3.2: global compaction by
 * trace scheduling (Fisher 81) with Bottom-Up-Greedy unit binding
 * (Ellis 85), plus the basic-block-only baseline of Table 1.
 *
 * Traces are picked by descending Expect, following the most probable
 * branch edges; in this implementation a trace may only extend into a
 * single-predecessor, non-address-taken successor, so traces have no
 * side entrances and only *split* bookkeeping is needed. Branches
 * never reorder ("a constraint on the sequence of branches has been
 * imposed in order to limit the possibility of code motion" §4.3);
 * operations hoist above a split only when side-effect free and not
 * *off-live* on the split's off-trace edge.
 *
 * Dependence kinds implemented (§4.3): true (source-destination),
 * write-after-read, write-after-write, memory, off-live. Memory
 * disambiguation uses (a) symbolic base+offset tracking through the
 * H/TR/PDL/E/B allocation registers, (b) the disjointness of the
 * abstract machine's memory areas, and (c) the freshly-allocated-cell
 * argument for heap stores (optional, for the ablation study);
 * everything else — in particular dereference-chain pointers into the
 * stack, exactly the paper's observation — stays conservative.
 */

#ifndef SYMBOL_SCHED_COMPACT_HH
#define SYMBOL_SCHED_COMPACT_HH

#include "emul/machine.hh"
#include "intcode/cfg.hh"
#include "machine/config.hh"
#include "vliw/code.hh"

namespace symbol::pass
{
class PassInstrumentation;
}

namespace symbol::sched
{

/** Compaction options. */
struct CompactOptions
{
    /** Trace scheduling (true) or per-basic-block compaction. */
    bool traceMode = true;
    /** Use the fresh-heap-cell memory-disambiguation rule. */
    bool freshAllocDisambiguation = true;
    /** Upper bound on blocks per trace. */
    int maxTraceBlocks = 64;
    /** Upper bound on operations per trace. */
    int maxTraceOps = 192;
    /** Minimum edge count for a trace to keep growing. */
    std::uint64_t minEdgeCount = 1;
    /**
     * Trace growth proceeds through join points by *tail duplication*
     * (the paper's compensation copies): the joined block is copied
     * into the trace while the original stays addressable. This
     * factor bounds the total copied code relative to the original
     * program size ("disadvantages of a larger code size ... are
     * overcome by the advantage of a faster execution" §4.4).
     */
    double dupBudgetFactor = 3.0;
    /** Stop growing when the next edge is colder than the trace head
     *  by more than this ratio. */
    double coldEdgeRatio = 0.25;
};

/** Descriptive statistics about the compacted code. */
struct CompactStats
{
    std::size_t numRegions = 0; ///< traces (or blocks) scheduled
    std::size_t totalOps = 0;
    std::size_t wideInstrs = 0;
    /** Static mean of operations per scheduled region. */
    double avgStaticLength = 0.0;
    /** Expect-weighted mean of operations per region. */
    double avgDynamicLength = 0.0;
    /** Expect-weighted mean region length in blocks. */
    double avgBlocksPerRegion = 0.0;
    /** Peak simultaneously-live values homed on one unit (register
     *  pressure against the 16-register banks of §5.2). */
    int peakBankPressure = 0;
};

/** Result of compaction. */
struct CompactResult
{
    vliw::Code code;
    CompactStats stats;
};

/**
 * Compact @p prog for @p config, guided by the Expect/Probability
 * information in @p profile (from a sequential profiling run).
 *
 * The compactor is self-instrumented: its four sub-passes record
 * their wall time and IR sizes under the canonical names
 * sched.traces / sched.ddg / sched.schedule / sched.emit into
 * @p instr (null = the process-wide default sink).
 */
CompactResult compact(const intcode::Program &prog,
                      const emul::Profile &profile,
                      const machine::MachineConfig &config,
                      const CompactOptions &opts = {},
                      pass::PassInstrumentation *instr = nullptr);

} // namespace symbol::sched

#endif // SYMBOL_SCHED_COMPACT_HH
