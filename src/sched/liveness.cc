#include "sched/liveness.hh"

namespace symbol::sched
{

using intcode::Block;
using intcode::Cfg;
using intcode::IInstr;
using intcode::IOp;
using intcode::Program;

Liveness
Liveness::compute(const Program &prog, const Cfg &cfg)
{
    Liveness lv;
    const std::size_t nb = cfg.blocks.size();
    lv.words_ = (static_cast<std::size_t>(prog.numRegs) + 63) / 64;
    lv.liveIn_.assign(nb * lv.words_, 0);

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<std::uint64_t> gen(nb * lv.words_, 0);
    std::vector<std::uint64_t> kill(nb * lv.words_, 0);
    auto bit = [&](std::vector<std::uint64_t> &m, std::size_t b,
                   int r) -> std::uint64_t & {
        return m[b * lv.words_ + (static_cast<std::size_t>(r) >> 6)];
    };
    auto test = [&](const std::vector<std::uint64_t> &m,
                    std::size_t b, int r) {
        return (m[b * lv.words_ + (static_cast<std::size_t>(r) >> 6)] >>
                (r & 63)) &
               1;
    };

    for (std::size_t b = 0; b < nb; ++b) {
        const Block &blk = cfg.blocks[b];
        for (int k = blk.first; k <= blk.last; ++k) {
            const IInstr &i =
                prog.code[static_cast<std::size_t>(k)];
            int uses[2];
            int nu = 0;
            intcode::useRegs(i, uses, nu);
            for (int u = 0; u < nu; ++u) {
                if (!test(kill, b, uses[u]))
                    bit(gen, b, uses[u]) |=
                        1ull << (uses[u] & 63);
            }
            int d = intcode::defReg(i);
            if (d >= 0)
                bit(kill, b, d) |= 1ull << (d & 63);
        }
    }

    // Blocks reachable only through Jmpi: collect their ids once.
    std::vector<std::size_t> entry_blocks;
    for (std::size_t b = 0; b < nb; ++b) {
        if (cfg.blocks[b].addressTaken || cfg.blocks[b].procEntry)
            entry_blocks.push_back(b);
    }

    // Iterate to fixpoint (reverse order converges fast).
    bool changed = true;
    std::vector<std::uint64_t> out(lv.words_);
    while (changed) {
        changed = false;
        for (std::size_t bi = nb; bi-- > 0;) {
            const Block &blk = cfg.blocks[bi];
            std::fill(out.begin(), out.end(), 0);
            const IInstr &term =
                prog.code[static_cast<std::size_t>(blk.last)];
            if (term.op == IOp::Jmpi) {
                for (std::size_t e : entry_blocks) {
                    for (std::size_t w = 0; w < lv.words_; ++w)
                        out[w] |= lv.liveIn_[e * lv.words_ + w];
                }
            }
            for (int s : blk.succs) {
                for (std::size_t w = 0; w < lv.words_; ++w)
                    out[w] |= lv.liveIn_[static_cast<std::size_t>(s) *
                                             lv.words_ +
                                         w];
            }
            for (std::size_t w = 0; w < lv.words_; ++w) {
                std::uint64_t in =
                    gen[bi * lv.words_ + w] |
                    (out[w] & ~kill[bi * lv.words_ + w]);
                if (in != lv.liveIn_[bi * lv.words_ + w]) {
                    lv.liveIn_[bi * lv.words_ + w] = in;
                    changed = true;
                }
            }
        }
    }
    return lv;
}

} // namespace symbol::sched
