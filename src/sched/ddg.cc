#include "sched/ddg.hh"

#include <algorithm>
#include <map>

namespace symbol::sched
{

using intcode::IInstr;
using intcode::IOp;
using intcode::OpClass;
using machine::MachineConfig;

int
latencyOf(const IInstr &i, const MachineConfig &cfg)
{
    switch (intcode::opClass(i.op)) {
      case OpClass::Memory:
        return i.op == IOp::Ld ? cfg.memLatency : 1;
      case OpClass::Alu:
        return cfg.aluLatency;
      case OpClass::Move:
        return cfg.moveLatency;
      default:
        return 1;
    }
}

bool
speculable(const IInstr &i)
{
    switch (i.op) {
      case IOp::St:
      case IOp::Out:
      case IOp::Div:
      case IOp::Mod:
        return false;
      default:
        return !intcode::isControl(i.op);
    }
}

Slot
slotOf(const IInstr &i)
{
    switch (intcode::opClass(i.op)) {
      case OpClass::Memory: return Slot::Mem;
      case OpClass::Alu: return Slot::Alu;
      case OpClass::Move: return Slot::Move;
      case OpClass::Control: return Slot::Branch;
      case OpClass::Other:
        return i.op == IOp::Out ? Slot::Move : Slot::None;
    }
    return Slot::None;
}

Ddg
buildDdg(const std::vector<TOp> &ops, const Liveness &live,
         const MachineConfig &mc, const MemDisambiguator &dis)
{
    const int n = static_cast<int>(ops.size());
    Ddg g;
    g.succs.assign(static_cast<std::size_t>(n), {});
    g.npreds.assign(static_cast<std::size_t>(n), 0);
    g.defOf.assign(static_cast<std::size_t>(n),
                   std::array<int, 2>{-1, -1});
    auto addEdge = [&](int from, int to, int delay) {
        g.succs[static_cast<std::size_t>(from)].push_back(
            {to, delay});
        ++g.npreds[static_cast<std::size_t>(to)];
    };

    std::map<int, int> lastDef;
    std::map<int, std::vector<int>> usesSinceDef;
    int lastBranch = -1;
    std::vector<int> branchesSoFar;
    int lastOut = -1;

    for (int j = 0; j < n; ++j) {
        const IInstr &ij = ops[static_cast<std::size_t>(j)].instr;
        int uses[2];
        int nu = 0;
        intcode::useRegs(ij, uses, nu);
        for (int u = 0; u < nu; ++u) {
            auto it = lastDef.find(uses[u]);
            int def = it == lastDef.end() ? -1 : it->second;
            // Record the producer for cluster binding; slot 0 is
            // ra, slot 1 is rb.
            int slot = (u == 0 && ij.ra == uses[u]) ? 0 : 1;
            g.defOf[static_cast<std::size_t>(j)]
                   [static_cast<std::size_t>(slot)] = def;
            if (def >= 0)
                addEdge(def, j,
                        latencyOf(ops[static_cast<std::size_t>(
                                          def)].instr,
                                  mc));
            usesSinceDef[uses[u]].push_back(j);
        }
        int d = intcode::defReg(ij);
        if (d >= 0) {
            auto it = lastDef.find(d);
            if (it != lastDef.end()) {
                // Output dependence: preserve the final value.
                const IInstr &prev =
                    ops[static_cast<std::size_t>(it->second)].instr;
                int delay =
                    latencyOf(prev, mc) - latencyOf(ij, mc) + 1;
                addEdge(it->second, j, std::max(delay, 0));
            }
            // Anti dependences: writers wait for readers' issue.
            for (int r : usesSinceDef[d]) {
                if (r != j)
                    addEdge(r, j, 0);
            }
            usesSinceDef[d].clear();
            lastDef[d] = j;
        }

        // Memory ordering.
        if (ops[static_cast<std::size_t>(j)].isMem) {
            for (int i = j - 1; i >= 0; --i) {
                const TOp &oi = ops[static_cast<std::size_t>(i)];
                if (!oi.isMem)
                    continue;
                if (!oi.isStore &&
                    !ops[static_cast<std::size_t>(j)].isStore)
                    continue; // load-load never conflicts
                if (!dis.independent(
                        oi, ops[static_cast<std::size_t>(j)]))
                    addEdge(i, j, 1);
            }
        }

        // Observable-output ordering.
        if (ij.op == IOp::Out) {
            if (lastOut >= 0)
                addEdge(lastOut, j, 1);
            lastOut = j;
        }

        // Control constraints.
        if (intcode::isControl(ij.op)) {
            // Branch order is fixed; same-cycle multiway issue is
            // allowed (priority = position).
            if (lastBranch >= 0)
                addEdge(lastBranch, j, 0);
            // Nothing that preceded the branch may sink below
            // it; in addition, a result the off-trace path may
            // consume must have committed by the time that path
            // resumes (one taken-branch penalty later).
            for (int i = (lastBranch >= 0 ? lastBranch + 1 : 0);
                 i < j; ++i) {
                const IInstr &prev =
                    ops[static_cast<std::size_t>(i)].instr;
                if (intcode::isControl(prev.op))
                    continue;
                int slack = 0;
                if (intcode::defReg(prev) >= 0)
                    slack = latencyOf(prev, mc) - 1 -
                            mc.branchPenalty;
                addEdge(i, j, std::max(0, slack));
            }
            lastBranch = j;
            branchesSoFar.push_back(j);
        } else {
            // Hoisting above earlier splits: forbidden for
            // side-effecting ops and for off-live destinations.
            // A hoisted result must also have committed by the
            // time the off-trace path resumes (one penalty after
            // the split), or its in-flight write could collide
            // with a fresh off-trace definition of the register.
            bool spec = speculable(ij) &&
                        latencyOf(ij, mc) - 1 <= mc.branchPenalty;
            for (int bidx : branchesSoFar) {
                const TOp &br = ops[static_cast<std::size_t>(bidx)];
                bool blocked = !spec;
                if (!blocked && d >= 0 && br.offTraceBlock >= 0 &&
                    live.isLiveIn(br.offTraceBlock, d))
                    blocked = true; // off-live dependence
                if (!blocked && br.offTraceBlock < 0)
                    blocked = true; // unknown exit: be safe
                if (blocked)
                    addEdge(bidx, j, 1);
            }
        }
    }

    // Heights (critical path to the end, in cycles).
    g.height.assign(static_cast<std::size_t>(n), 0);
    for (int i = n - 1; i >= 0; --i) {
        int h =
            latencyOf(ops[static_cast<std::size_t>(i)].instr, mc);
        for (const Edge &e : g.succs[static_cast<std::size_t>(i)]) {
            h = std::max(
                h, e.delay +
                       g.height[static_cast<std::size_t>(e.to)]);
        }
        g.height[static_cast<std::size_t>(i)] = h;
    }
    return g;
}

} // namespace symbol::sched
