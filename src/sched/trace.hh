/**
 * @file
 * Region formation for the compactor: the first sub-pass of global
 * compaction (§4.4).
 *
 * Two interchangeable formation passes exist, and the orchestrator
 * in sched/compact.cc *selects* one instead of threading a mode flag
 * through the scheduler:
 *
 *  - formSuperblockTraces: every block heads exactly one trace
 *    (keeping it addressable from anywhere); hot traces then grow
 *    forward along the most probable edges by tail duplication,
 *    bounded by the compensation-copy budget.
 *  - formBasicBlockRegions: the Table 1 baseline — every region is a
 *    single basic block.
 *
 * linearizeTrace turns a formed region into the straight-line TOp
 * list the downstream passes (disambiguation, dependence graph, list
 * scheduling, emission) consume: in-trace jumps disappear, in-trace
 * conditional branches become *splits* (inverted when the trace
 * follows the taken edge), and a synthetic jump leaves the trace at
 * the end when control would otherwise fall through.
 */

#ifndef SYMBOL_SCHED_TRACE_HH
#define SYMBOL_SCHED_TRACE_HH

#include <cstdint>
#include <vector>

#include "emul/machine.hh"
#include "intcode/cfg.hh"
#include "sched/compact.hh"
#include "sched/disambig.hh"

namespace symbol::sched
{

/** One operation of a trace, with scheduling metadata. */
struct TOp
{
    intcode::IInstr instr;
    int origIdx = -1;  ///< original program index (priority order)
    bool synthetic = false; ///< inserted trace-exit jump, no original
    bool isSplit = false; ///< in-trace conditional branch
    int offTraceBlock = -1; ///< CFG block of the split's exit edge
    AddrVal addr;      ///< for memory ops: symbolic address
    bool isMem = false;
    bool isStore = false;
};

/** Output of a region-formation pass. */
struct TraceSet
{
    /** Block lists, head first, in descending head-Expect order. */
    std::vector<std::vector<int>> traces;
    /** Flow stolen from each block by tail-duplicated copies. */
    std::vector<std::uint64_t> copiedFlow;
};

/** Superblock formation: grow hot traces along probable edges. */
TraceSet formSuperblockTraces(const intcode::Program &prog,
                              const intcode::Cfg &cfg,
                              const emul::Profile &profile,
                              const CompactOptions &opts);

/** Baseline formation: one region per basic block (Table 1). */
TraceSet formBasicBlockRegions(const intcode::Program &prog,
                               const intcode::Cfg &cfg,
                               const emul::Profile &profile,
                               const CompactOptions &opts);

/** Concatenate the blocks of a trace into a straight-line op list. */
std::vector<TOp> linearizeTrace(const intcode::Program &prog,
                                const intcode::Cfg &cfg,
                                const std::vector<int> &blocks);

/**
 * Block the trace's final unconditional transfer targets, or -1.
 * Used by the orchestrator to chain trace emission into
 * fallthroughs (a taken branch costs a pipeline bubble).
 */
int traceExitBlock(const intcode::Program &prog,
                   const intcode::Cfg &cfg,
                   const std::vector<int> &blocks);

} // namespace symbol::sched

#endif // SYMBOL_SCHED_TRACE_HH
