#include "sched/disambig.hh"

#include <map>

#include "bam/word.hh"
#include "sched/trace.hh"

namespace symbol::sched
{

using bam::Tag;
using intcode::IInstr;
using intcode::IOp;
using R = bam::Regs;
using L = bam::Layout;

bool
regionsDisjoint(Region a, Region b)
{
    if (a == Region::Any)
        return b == Region::Trail || b == Region::Pdl;
    if (b == Region::Any)
        return a == Region::Trail || a == Region::Pdl;
    return a != b;
}

Region
regionOfBase(int reg)
{
    switch (reg) {
      case R::kH:
      case R::kHb:
        return Region::Heap;
      case R::kE:
      case R::kB:
        // Environment and choice-point frames interleave on one
        // local stack: they share a region and never disambiguate
        // against each other (§4.1: "most memory accesses are in the
        // stack ... and cannot be disambiguated").
        return Region::Stack;
      case R::kTr:
        return Region::Trail;
      case R::kPdl:
        return Region::Pdl;
      default:
        return Region::Any;
    }
}

Region
regionOfAbsolute(std::int64_t addr)
{
    if (addr >= L::kHeapBase && addr < L::kHeapEnd)
        return Region::Heap;
    if (addr >= L::kStackBase && addr < L::kStackEnd)
        return Region::Stack;
    if (addr >= L::kTrailBase && addr < L::kTrailEnd)
        return Region::Trail;
    if (addr >= L::kPdlBase && addr < L::kPdlEnd)
        return Region::Pdl;
    return Region::Any;
}

void
MemDisambiguator::annotate(std::vector<TOp> &ops) const
{
    std::map<int, AddrVal> state;
    std::map<int, int> versions;
    auto baseInit = [&](int reg) {
        AddrVal v;
        v.kind = AddrVal::Kind::BaseOff;
        v.baseReg = reg;
        v.version = 0;
        v.off = 0;
        v.region = regionOfBase(reg);
        return v;
    };
    for (int r :
         {R::kH, R::kE, R::kB, R::kTr, R::kPdl, R::kHb})
        state[r] = baseInit(r);

    auto redefineBase = [&](int reg) {
        AddrVal v;
        v.kind = AddrVal::Kind::BaseOff;
        v.baseReg = reg;
        v.version = ++versions[reg];
        v.off = 0;
        v.region = regionOfBase(reg);
        state[reg] = v;
    };
    auto get = [&](int reg) {
        auto it = state.find(reg);
        if (it != state.end())
            return it->second;
        AddrVal v;
        v.region = Region::Any;
        return v;
    };

    for (TOp &op : ops) {
        IInstr &i = op.instr;
        if (i.op == IOp::Ld || i.op == IOp::St) {
            op.isMem = true;
            op.isStore = i.op == IOp::St;
            op.addr = get(i.ra);
            if (op.addr.kind != AddrVal::Kind::Unknown)
                op.addr.off += i.off;
            else if (op.addr.region == Region::Any &&
                     regionOfBase(i.ra) != Region::Any)
                op.addr.region = regionOfBase(i.ra);
        }
        // Transfer function for the destination register.
        int d = intcode::defReg(i);
        if (d < 0)
            continue;
        bool canonical = regionOfBase(d) != Region::Any;
        switch (i.op) {
          case IOp::Mov: {
            AddrVal v = get(i.ra);
            if (canonical && v.kind == AddrVal::Kind::Unknown)
                redefineBase(d);
            else
                state[d] = v;
            break;
          }
          case IOp::Movi:
            if (bam::wordTag(i.imm) == Tag::Int) {
                AddrVal v;
                v.kind = AddrVal::Kind::Absolute;
                v.off = bam::wordVal(i.imm);
                v.region = regionOfAbsolute(v.off);
                state[d] = v;
            } else if (canonical) {
                redefineBase(d);
            } else {
                state[d] = AddrVal{};
            }
            break;
          case IOp::Add:
          case IOp::Sub: {
            AddrVal v = get(i.ra);
            if (i.useImm &&
                v.kind != AddrVal::Kind::Unknown) {
                std::int64_t delta = bam::wordVal(i.imm);
                v.off += i.op == IOp::Add ? delta : -delta;
                state[d] = v;
            } else {
                // reg+reg: keep only the region knowledge.
                AddrVal r1 = get(i.ra);
                AddrVal r2 = i.useImm ? AddrVal{} : get(i.rb);
                AddrVal v2;
                v2.region = r1.region != Region::Any
                                ? r1.region
                                : r2.region;
                if (canonical &&
                    v2.region == Region::Any)
                    redefineBase(d);
                else
                    state[d] = v2;
            }
            break;
          }
          case IOp::MkTag: {
            AddrVal v = get(i.ra);
            state[d] = v; // value field preserved
            break;
          }
          default:
            if (canonical)
                redefineBase(d);
            else
                state[d] = AddrVal{};
            break;
        }
    }
}

bool
MemDisambiguator::independent(const TOp &a, const TOp &b) const
{
    const AddrVal &x = a.addr;
    const AddrVal &y = b.addr;
    if (x.kind == AddrVal::Kind::BaseOff &&
        y.kind == AddrVal::Kind::BaseOff &&
        x.baseReg == y.baseReg && x.version == y.version)
        return x.off != y.off;
    if (x.kind == AddrVal::Kind::Absolute &&
        y.kind == AddrVal::Kind::Absolute)
        return x.off != y.off;
    if (regionsDisjoint(x.region, y.region))
        return true;
    // Fresh heap allocation: nothing older can alias a cell that
    // is only just being carved off the top of the heap, so an
    // earlier access is independent of a later fresh store.
    if (freshAlloc_ && b.isStore && b.instr.fresh)
        return true;
    return false;
}

} // namespace symbol::sched
