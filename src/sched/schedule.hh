/**
 * @file
 * List scheduling with Bottom-Up-Greedy unit binding (Ellis 85), the
 * third sub-pass of global compaction.
 *
 * Greedy cycle-by-cycle placement in descending critical-path-height
 * order under the machine's resource model: per-unit issue slots,
 * total memory ports, the two-instruction-format constraint, and —
 * on clustered configurations — operand bus transfers with their
 * extra latency. Unit choice minimises bus crossings first, then
 * load balance.
 */

#ifndef SYMBOL_SCHED_SCHEDULE_HH
#define SYMBOL_SCHED_SCHEDULE_HH

#include <vector>

#include "sched/ddg.hh"

namespace symbol::sched
{

/** A finished trace schedule: issue cycle and unit per op. */
struct ListSchedule
{
    std::vector<int> cycleOf;
    std::vector<int> unitOf;
};

/** Schedule @p ops under @p mc, honouring the edges of @p g. */
ListSchedule listSchedule(const std::vector<TOp> &ops, const Ddg &g,
                          const machine::MachineConfig &mc);

} // namespace symbol::sched

#endif // SYMBOL_SCHED_SCHEDULE_HH
