#include "sched/schedule.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace symbol::sched
{

using machine::MachineConfig;

ListSchedule
listSchedule(const std::vector<TOp> &ops, const Ddg &g,
             const MachineConfig &mc)
{
    const int n = static_cast<int>(ops.size());
    const int units = mc.numUnits;

    std::vector<int> cycleOf(static_cast<std::size_t>(n), -1);
    std::vector<int> unitOf(static_cast<std::size_t>(n), 0);
    std::vector<int> earliest(static_cast<std::size_t>(n), 0);
    std::vector<int> preds_left = g.npreds;

    // Resource state per cycle (grown on demand).
    struct CycleRes
    {
        std::vector<std::uint8_t> slotUse; // unit x 4 slots
        std::vector<std::uint8_t> fmtCtl;  // unit used control
        std::vector<std::uint8_t> fmtData; // unit used alu/move
        int memUsed = 0;
        int busUsed = 0;
    };
    std::vector<CycleRes> res;
    auto resAt = [&](int c) -> CycleRes & {
        while (static_cast<int>(res.size()) <= c) {
            CycleRes r;
            r.slotUse.assign(static_cast<std::size_t>(units) * 4, 0);
            r.fmtCtl.assign(static_cast<std::size_t>(units), 0);
            r.fmtData.assign(static_cast<std::size_t>(units), 0);
            res.push_back(std::move(r));
        }
        return res[static_cast<std::size_t>(c)];
    };

    auto slotLimit = [&](Slot s) {
        switch (s) {
          case Slot::Mem: return mc.memPerUnit;
          case Slot::Alu: return mc.aluPerUnit;
          case Slot::Move: return mc.movePerUnit;
          case Slot::Branch: return mc.branchPerUnit;
          default: return 1;
        }
    };

    int scheduled = 0;
    int cycle = 0;
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        order[static_cast<std::size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return g.height[static_cast<std::size_t>(a)] >
               g.height[static_cast<std::size_t>(b)];
    });

    while (scheduled < n) {
        bool placed_any = false;
        for (int oi : order) {
            std::size_t o = static_cast<std::size_t>(oi);
            if (cycleOf[o] >= 0 || preds_left[o] > 0 ||
                earliest[o] > cycle)
                continue;
            const TOp &op = ops[o];
            Slot slot = slotOf(op.instr);
            if (slot == Slot::None) {
                // Nop-like: schedule without resources.
                cycleOf[o] = cycle;
                placed_any = true;
                ++scheduled;
                for (const Edge &e : g.succs[o]) {
                    std::size_t t = static_cast<std::size_t>(e.to);
                    earliest[t] =
                        std::max(earliest[t], cycle + e.delay);
                    --preds_left[t];
                }
                continue;
            }
            CycleRes &cr = resAt(cycle);
            if (slot == Slot::Mem && cr.memUsed >= mc.memPortsTotal)
                continue;

            // Pick a unit (Bottom-Up-Greedy): feasibility, then
            // fewest bus crossings, then load balance.
            int best_unit = -1;
            int best_cost = 1 << 30;
            for (int u = 0; u < units; ++u) {
                std::size_t su = static_cast<std::size_t>(u);
                if (cr.slotUse[su * 4 +
                               static_cast<std::size_t>(slot)] >=
                    slotLimit(slot))
                    continue;
                if (mc.twoFormats) {
                    if (slot == Slot::Branch && cr.fmtData[su])
                        continue;
                    if ((slot == Slot::Alu || slot == Slot::Move) &&
                        cr.fmtCtl[su])
                        continue;
                }
                // Operand availability on this unit.
                int cross = 0;
                bool ok = true;
                if (mc.clustered) {
                    for (int s = 0; s < 2 && ok; ++s) {
                        int dop =
                            g.defOf[o][static_cast<std::size_t>(s)];
                        if (dop < 0)
                            continue;
                        std::size_t sd =
                            static_cast<std::size_t>(dop);
                        int avail = cycleOf[sd] +
                                    latencyOf(ops[sd].instr, mc);
                        if (unitOf[sd] != u) {
                            avail += mc.busLatency;
                            ++cross;
                        }
                        if (avail > cycle)
                            ok = false;
                    }
                    if (cross && cr.busUsed + cross >
                                     mc.busTransfersPerCycle)
                        ok = false;
                }
                if (!ok)
                    continue;
                int load = 0;
                for (int k = 0; k < 4; ++k)
                    load += cr.slotUse[su * 4 +
                                       static_cast<std::size_t>(k)];
                int cost = cross * 8 + load;
                if (cost < best_cost) {
                    best_cost = cost;
                    best_unit = u;
                    // Remember crossings via cost decode below.
                }
            }
            if (best_unit < 0)
                continue;

            std::size_t su = static_cast<std::size_t>(best_unit);
            cr.slotUse[su * 4 + static_cast<std::size_t>(slot)]++;
            if (slot == Slot::Mem)
                ++cr.memUsed;
            cr.busUsed += best_cost / 8;
            if (mc.twoFormats) {
                if (slot == Slot::Branch)
                    cr.fmtCtl[su] = 1;
                if (slot == Slot::Alu || slot == Slot::Move)
                    cr.fmtData[su] = 1;
            }
            cycleOf[o] = cycle;
            unitOf[o] = best_unit;
            placed_any = true;
            ++scheduled;
            for (const Edge &e : g.succs[o]) {
                std::size_t t = static_cast<std::size_t>(e.to);
                earliest[t] = std::max(earliest[t], cycle + e.delay);
                --preds_left[t];
            }
        }
        if (!placed_any || scheduled < n)
            ++cycle;
        if (placed_any)
            continue;
        // Safety: if nothing became ready, jump to the next
        // earliest time.
        bool progress = false;
        for (int i = 0; i < n; ++i) {
            std::size_t o = static_cast<std::size_t>(i);
            if (cycleOf[o] < 0 && preds_left[o] == 0) {
                progress = true;
                break;
            }
        }
        panicIf(!progress && scheduled < n,
                "scheduler deadlock (cyclic dependence?)");
    }

    ListSchedule ls;
    ls.cycleOf = std::move(cycleOf);
    ls.unitOf = std::move(unitOf);
    return ls;
}

} // namespace symbol::sched
