/**
 * @file
 * Wide-instruction emission, the final sub-pass of global
 * compaction.
 *
 * The Emitter accumulates scheduled traces into one VLIW program:
 * each trace's ops are packed into wide instructions by issue cycle
 * (preserving trace position within a cycle — the multiway-branch
 * priority order), the trace is padded so every result commits
 * before control can leave it, and bank-pressure/region statistics
 * are folded in as traces arrive. fixup() then resolves branch
 * targets to wide-instruction indices and elides jumps that became
 * fallthroughs under the orchestrator's chained emission order;
 * finish() seals the statistics and hands back the CompactResult.
 */

#ifndef SYMBOL_SCHED_EMIT_HH
#define SYMBOL_SCHED_EMIT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sched/compact.hh"
#include "sched/schedule.hh"

namespace symbol::sched
{

/** Accumulates scheduled traces into a vliw::Code program. */
class Emitter
{
  public:
    Emitter(const intcode::Program &prog, const intcode::Cfg &cfg,
            const machine::MachineConfig &mc)
        : prog_(prog), cfg_(cfg), mc_(mc)
    {
    }

    /**
     * Pack one scheduled trace. @p enteringFlow is the Expect still
     * arriving at the trace head after tail-duplicated copies
     * elsewhere absorbed their share (weights the dynamic stats).
     */
    void emitTrace(const std::vector<int> &blocks,
                   std::uint64_t enteringFlow,
                   const std::vector<TOp> &ops, const Ddg &g,
                   const ListSchedule &ls);

    /** Resolve branch targets; elide jumps to the next wide instr. */
    void fixup();

    /** Seal the statistics and surrender the result. */
    CompactResult finish();

    /** Wide instructions emitted so far. */
    std::size_t
    wideCount() const
    {
        return wide_.size();
    }

  private:
    const intcode::Program &prog_;
    const intcode::Cfg &cfg_;
    const machine::MachineConfig &mc_;

    std::vector<vliw::WideInstr> wide_;
    std::vector<int> regionStart_;
    std::map<int, int> headWide_; ///< head block -> wide index
    CompactStats stats_;
    double dynLenNum_ = 0, dynLenDen_ = 0, dynBlkNum_ = 0;
};

} // namespace symbol::sched

#endif // SYMBOL_SCHED_EMIT_HH
