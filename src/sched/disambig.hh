/**
 * @file
 * Symbolic memory disambiguation for the compactor (§4.1, §4.3).
 *
 * Tracks register values as base+offset expressions over the abstract
 * machine's allocation registers (H/E/B/TR/PDL), classifies addresses
 * into the disjoint memory areas of the BAM layout, and answers the
 * one question the dependence-graph pass asks: do two trace memory
 * operations certainly access different words?
 *
 * The fresh-heap-cell rule (stores into cells just carved off the top
 * of the heap cannot alias anything older) is the ablation toggle of
 * bench_ablation_disambiguation: the MemDisambiguator is
 * *parameterized* with it at construction, so no flag threads through
 * the scheduling passes themselves.
 */

#ifndef SYMBOL_SCHED_DISAMBIG_HH
#define SYMBOL_SCHED_DISAMBIG_HH

#include <cstdint>
#include <vector>

namespace symbol::sched
{

struct TOp; // sched/trace.hh

/** Memory area a pointer may fall in. */
enum class Region : std::uint8_t
{
    Heap, Stack, Trail, Pdl,
    Any, ///< unknown pointer: may be heap or stack, never trail/pdl
};

/** Do two regions certainly not overlap? */
bool regionsDisjoint(Region a, Region b);

/** Symbolic value of a register: base+offset when trackable. */
struct AddrVal
{
    enum class Kind : std::uint8_t { Unknown, BaseOff, Absolute };
    Kind kind = Kind::Unknown;
    int baseReg = -1;
    int version = 0;
    std::int64_t off = 0;
    Region region = Region::Any;
};

/** The memory area an allocation register points into. */
Region regionOfBase(int reg);

/** The memory area a constant address falls in. */
Region regionOfAbsolute(std::int64_t addr);

/**
 * The disambiguation oracle handed to the dependence-graph pass.
 * Constructed once per compaction from the ablation options.
 */
class MemDisambiguator
{
  public:
    explicit MemDisambiguator(bool freshAllocRule)
        : freshAlloc_(freshAllocRule)
    {
    }

    /**
     * Symbolic address computation over a linearised trace: fills
     * every TOp's isMem/isStore/addr fields by abstract
     * interpretation of the trace in program order.
     */
    void annotate(std::vector<TOp> &ops) const;

    /** Do @p a and @p b certainly access different words? */
    bool independent(const TOp &a, const TOp &b) const;

    /** Whether the fresh-heap-cell rule is active. */
    bool freshAllocRule() const { return freshAlloc_; }

  private:
    bool freshAlloc_;
};

} // namespace symbol::sched

#endif // SYMBOL_SCHED_DISAMBIG_HH
