#include "sched/emit.hh"

#include <algorithm>
#include <utility>

#include "support/diagnostics.hh"

namespace symbol::sched
{

using bam::Tag;
using intcode::IOp;

void
Emitter::emitTrace(const std::vector<int> &blocks,
                   std::uint64_t enteringFlow,
                   const std::vector<TOp> &ops, const Ddg &g,
                   const ListSchedule &ls)
{
    const int n = static_cast<int>(ops.size());
    const std::vector<int> &cycleOf = ls.cycleOf;
    const std::vector<int> &unitOf = ls.unitOf;

    // Emit wide instructions, preserving original order within a
    // cycle (multiway-branch priority). The trace is padded so
    // that every result commits before control can leave it: a
    // successor trace may begin in the very next cycle when the
    // exit jump is elided into a fallthrough.
    int len = 0;
    for (int i = 0; i < n; ++i) {
        std::size_t o = static_cast<std::size_t>(i);
        int done = cycleOf[o];
        if (intcode::defReg(ops[o].instr) >= 0)
            done += latencyOf(ops[o].instr, mc_) - 1;
        len = std::max(len, done);
    }
    std::vector<std::vector<int>> byCycle(
        static_cast<std::size_t>(len) + 1);
    for (int i = 0; i < n; ++i)
        byCycle[static_cast<std::size_t>(
                    cycleOf[static_cast<std::size_t>(i)])]
            .push_back(i);

    headWide_[blocks.front()] = static_cast<int>(wide_.size());
    regionStart_.push_back(static_cast<int>(wide_.size()));
    for (auto &cyc : byCycle) {
        // byCycle preserves ascending trace position, which IS
        // the branch-priority order (original program indices are
        // meaningless here: duplicated blocks come from anywhere).
        vliw::WideInstr w;
        for (int i : cyc) {
            if (ops[static_cast<std::size_t>(i)].instr.op ==
                IOp::Nop)
                continue;
            vliw::MicroOp m;
            m.instr = ops[static_cast<std::size_t>(i)].instr;
            m.unit = unitOf[static_cast<std::size_t>(i)];
            m.orig = ops[static_cast<std::size_t>(i)].synthetic
                         ? -1
                         : ops[static_cast<std::size_t>(i)].origIdx;
            m.seq = i;
            w.ops.push_back(std::move(m));
        }
        wide_.push_back(std::move(w));
    }

    // Register-bank pressure: peak count of values produced on a
    // unit that are still awaiting an in-trace consumer (§5.2's
    // banks hold 16 registers).
    {
        std::vector<int> last_use(static_cast<std::size_t>(n), -1);
        for (int j = 0; j < n; ++j) {
            for (int s = 0; s < 2; ++s) {
                int d = g.defOf[static_cast<std::size_t>(j)]
                               [static_cast<std::size_t>(s)];
                if (d >= 0)
                    last_use[static_cast<std::size_t>(d)] =
                        std::max(
                            last_use[static_cast<std::size_t>(d)],
                            cycleOf[static_cast<std::size_t>(j)]);
            }
        }
        std::map<std::pair<int, int>, int> delta;
        for (int i = 0; i < n; ++i) {
            std::size_t si = static_cast<std::size_t>(i);
            if (intcode::defReg(ops[si].instr) < 0 ||
                last_use[si] < 0)
                continue;
            delta[{unitOf[si], cycleOf[si]}] += 1;
            delta[{unitOf[si], last_use[si] + 1}] -= 1;
        }
        int cur_unit = -1, live = 0;
        for (const auto &[key, d] : delta) {
            if (key.first != cur_unit) {
                cur_unit = key.first;
                live = 0;
            }
            live += d;
            stats_.peakBankPressure =
                std::max(stats_.peakBankPressure, live);
        }
    }

    // Statistics.
    stats_.numRegions += 1;
    stats_.totalOps += static_cast<std::size_t>(n);
    // Weight by the flow that still enters this trace at its head
    // (copies elsewhere have absorbed part of the original flow).
    std::uint64_t e = enteringFlow;
    if (e > 0) {
        dynLenNum_ += static_cast<double>(e) * n;
        dynBlkNum_ += static_cast<double>(e) * blocks.size();
        dynLenDen_ += static_cast<double>(e);
    }
}

void
Emitter::fixup()
{
    auto resolve = [&](int instr_idx) {
        int b = cfg_.blockOf[static_cast<std::size_t>(instr_idx)];
        auto it = headWide_.find(b);
        panicIf(it == headWide_.end() ||
                    cfg_.blocks[static_cast<std::size_t>(b)].first !=
                        instr_idx,
                "branch into the middle of a trace");
        return it->second;
    };
    for (vliw::WideInstr &w : wide_) {
        for (vliw::MicroOp &m : w.ops) {
            if (m.instr.target >= 0)
                m.instr.target = resolve(m.instr.target);
            if (m.instr.useImm &&
                bam::wordTag(m.instr.imm) == Tag::Cod) {
                int addr =
                    static_cast<int>(bam::wordVal(m.instr.imm));
                m.instr.imm =
                    bam::makeWord(Tag::Cod, resolve(addr));
            }
        }
    }

    // Elide jumps to the immediately following wide instruction:
    // chained trace emission makes many trace exits plain
    // fallthroughs, saving the taken-branch bubble. A jump is
    // always the lowest-priority op of its cycle, so removing it
    // cannot unmask another branch.
    for (std::size_t k = 0; k < wide_.size(); ++k) {
        auto &ops = wide_[k].ops;
        if (!ops.empty() && ops.back().instr.op == IOp::Jmp &&
            ops.back().instr.target == static_cast<int>(k) + 1) {
            ops.pop_back();
        }
    }
}

CompactResult
Emitter::finish()
{
    stats_.wideInstrs = wide_.size();
    stats_.avgStaticLength =
        stats_.numRegions
            ? static_cast<double>(stats_.totalOps) /
                  static_cast<double>(stats_.numRegions)
            : 0.0;
    stats_.avgDynamicLength =
        dynLenDen_ > 0 ? dynLenNum_ / dynLenDen_ : 0.0;
    stats_.avgBlocksPerRegion =
        dynLenDen_ > 0 ? dynBlkNum_ / dynLenDen_ : 0.0;

    CompactResult res;
    res.code.code = std::move(wide_);
    res.code.regionStart = std::move(regionStart_);
    res.code.entry = headWide_.at(cfg_.entryBlock);
    res.code.numRegs = prog_.numRegs;
    res.code.interner = prog_.interner;
    res.stats = stats_;
    return res;
}

} // namespace symbol::sched
