/**
 * @file
 * The compaction orchestrator: wires the four sub-passes of global
 * compaction — region formation (sched/trace), dependence-graph
 * construction (sched/ddg), list scheduling (sched/schedule) and
 * wide-instruction emission (sched/emit) — into one run over a
 * profiled IntCode program, timing each under its canonical pass
 * name (sched.traces / sched.ddg / sched.schedule / sched.emit).
 *
 * Ablation toggles select or parameterize sub-passes here instead of
 * threading flags through them: traceMode picks the formation pass,
 * freshAllocDisambiguation parameterizes the MemDisambiguator.
 */

#include "sched/compact.hh"

#include <map>

#include "pass/pass.hh"
#include "sched/ddg.hh"
#include "sched/disambig.hh"
#include "sched/emit.hh"
#include "sched/liveness.hh"
#include "sched/schedule.hh"
#include "sched/trace.hh"

namespace symbol::sched
{

using intcode::Cfg;
using intcode::Program;
using machine::MachineConfig;

CompactResult
compact(const Program &prog, const emul::Profile &profile,
        const MachineConfig &config, const CompactOptions &opts,
        pass::PassInstrumentation *instr)
{
    pass::SubPassTimer tTraces("sched.traces", instr);
    pass::SubPassTimer tDdg("sched.ddg", instr);
    pass::SubPassTimer tSched("sched.schedule", instr);
    pass::SubPassTimer tEmit("sched.emit", instr);
    using Scope = pass::SubPassTimer::Scope;
    auto timed = [](pass::SubPassTimer &t, auto &&fn) {
        Scope s(t);
        return fn();
    };

    Cfg cfg = timed(tTraces, [&] { return Cfg::build(prog); });
    Liveness live = timed(
        tTraces, [&] { return Liveness::compute(prog, cfg); });
    TraceSet ts = timed(tTraces, [&] {
        return opts.traceMode
                   ? formSuperblockTraces(prog, cfg, profile, opts)
                   : formBasicBlockRegions(prog, cfg, profile,
                                           opts);
    });

    MemDisambiguator dis(opts.freshAllocDisambiguation);
    Emitter emitter(prog, cfg, config);
    std::uint64_t totalOps = 0;
    std::uint64_t depEdges = 0;

    auto expectOf = [&](int block) {
        return profile.expect[static_cast<std::size_t>(
            cfg.blocks[static_cast<std::size_t>(block)].first)];
    };

    auto scheduleTrace = [&](const std::vector<int> &blocks) {
        std::vector<TOp> ops = timed(tTraces, [&] {
            return linearizeTrace(prog, cfg, blocks);
        });
        Ddg g = timed(tDdg, [&] {
            dis.annotate(ops);
            return buildDdg(ops, live, config, dis);
        });
        totalOps += ops.size();
        depEdges += g.numEdges();
        ListSchedule ls = timed(
            tSched, [&] { return listSchedule(ops, g, config); });

        // Weight the emitter's dynamic stats by the flow that still
        // enters this trace at its head (tail-duplicated copies
        // elsewhere have absorbed part of the original flow).
        std::uint64_t e = expectOf(blocks.front());
        std::uint64_t stolen =
            ts.copiedFlow[static_cast<std::size_t>(blocks.front())];
        e = e > stolen ? e - stolen : 0;
        Scope s(tEmit);
        emitter.emitTrace(blocks, e, ops, g, ls);
    };

    // Emit traces chained along their exit edges so that the
    // trailing jump of one trace can often be elided into a
    // fallthrough (taken branches cost a pipeline bubble).
    std::map<int, std::size_t> traceOfHead;
    for (std::size_t t = 0; t < ts.traces.size(); ++t)
        traceOfHead[ts.traces[t].front()] = t;
    std::vector<bool> emitted(ts.traces.size(), false);
    for (std::size_t t = 0; t < ts.traces.size(); ++t) {
        std::size_t cur = t;
        while (!emitted[cur]) {
            emitted[cur] = true;
            scheduleTrace(ts.traces[cur]);
            int exit = traceExitBlock(prog, cfg, ts.traces[cur]);
            if (exit < 0)
                break;
            auto it = traceOfHead.find(exit);
            if (it == traceOfHead.end() || emitted[it->second])
                break;
            cur = it->second;
        }
    }

    CompactResult res = timed(tEmit, [&] {
        emitter.fixup();
        return emitter.finish();
    });

    tTraces.finish(cfg.blocks.size(), ts.traces.size());
    tDdg.finish(totalOps, depEdges);
    tSched.finish(totalOps, totalOps);
    tEmit.finish(totalOps, res.stats.wideInstrs);
    return res;
}

} // namespace symbol::sched
