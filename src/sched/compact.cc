#include "sched/compact.hh"

#include <algorithm>
#include <array>
#include <map>

#include "sched/liveness.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::sched
{

using bam::Tag;
using intcode::Block;
using intcode::Cfg;
using intcode::IInstr;
using intcode::IOp;
using intcode::OpClass;
using intcode::Program;
using machine::MachineConfig;
using R = bam::Regs;
using L = bam::Layout;

namespace
{

// --- Symbolic memory addresses ------------------------------------------

/** Memory area a pointer may fall in. */
enum class Region : std::uint8_t
{
    Heap, Stack, Trail, Pdl,
    Any, ///< unknown pointer: may be heap or stack, never trail/pdl
};

/** Do two regions certainly not overlap? */
bool
regionsDisjoint(Region a, Region b)
{
    if (a == Region::Any)
        return b == Region::Trail || b == Region::Pdl;
    if (b == Region::Any)
        return a == Region::Trail || a == Region::Pdl;
    return a != b;
}

/** Symbolic value of a register: base+offset when trackable. */
struct AddrVal
{
    enum class Kind : std::uint8_t { Unknown, BaseOff, Absolute };
    Kind kind = Kind::Unknown;
    int baseReg = -1;
    int version = 0;
    std::int64_t off = 0;
    Region region = Region::Any;
};

Region
regionOfBase(int reg)
{
    switch (reg) {
      case R::kH:
      case R::kHb:
        return Region::Heap;
      case R::kE:
      case R::kB:
        // Environment and choice-point frames interleave on one
        // local stack: they share a region and never disambiguate
        // against each other (§4.1: "most memory accesses are in the
        // stack ... and cannot be disambiguated").
        return Region::Stack;
      case R::kTr:
        return Region::Trail;
      case R::kPdl:
        return Region::Pdl;
      default:
        return Region::Any;
    }
}

Region
regionOfAbsolute(std::int64_t addr)
{
    if (addr >= L::kHeapBase && addr < L::kHeapEnd)
        return Region::Heap;
    if (addr >= L::kStackBase && addr < L::kStackEnd)
        return Region::Stack;
    if (addr >= L::kTrailBase && addr < L::kTrailEnd)
        return Region::Trail;
    if (addr >= L::kPdlBase && addr < L::kPdlEnd)
        return Region::Pdl;
    return Region::Any;
}

/** One operation of a trace, with scheduling metadata. */
struct TOp
{
    IInstr instr;
    int origIdx = -1;  ///< original program index (priority order)
    bool synthetic = false; ///< inserted trace-exit jump, no original
    bool isSplit = false; ///< in-trace conditional branch
    int offTraceBlock = -1; ///< CFG block of the split's exit edge
    AddrVal addr;      ///< for memory ops: symbolic address
    bool isMem = false;
    bool isStore = false;
};

/** Operation latency under a machine configuration. */
int
latencyOf(const IInstr &i, const MachineConfig &cfg)
{
    switch (intcode::opClass(i.op)) {
      case OpClass::Memory:
        return i.op == IOp::Ld ? cfg.memLatency : 1;
      case OpClass::Alu:
        return cfg.aluLatency;
      case OpClass::Move:
        return cfg.moveLatency;
      default:
        return 1;
    }
}

/** May an operation be hoisted above a branch it followed? Stores,
 *  output and faulting operations may not (side effects). */
bool
speculable(const IInstr &i)
{
    switch (i.op) {
      case IOp::St:
      case IOp::Out:
      case IOp::Div:
      case IOp::Mod:
        return false;
      default:
        return !intcode::isControl(i.op);
    }
}

/** Issue-slot class used for resource accounting. */
enum class Slot : std::uint8_t { Mem, Alu, Move, Branch, None };

Slot
slotOf(const IInstr &i)
{
    switch (intcode::opClass(i.op)) {
      case OpClass::Memory: return Slot::Mem;
      case OpClass::Alu: return Slot::Alu;
      case OpClass::Move: return Slot::Move;
      case OpClass::Control: return Slot::Branch;
      case OpClass::Other:
        return i.op == IOp::Out ? Slot::Move : Slot::None;
    }
    return Slot::None;
}

// --- The compactor --------------------------------------------------------

class Compactor
{
  public:
    Compactor(const Program &prog, const emul::Profile &prof,
              const MachineConfig &mc, const CompactOptions &opts)
        : prog_(prog), prof_(prof), mc_(mc), opts_(opts),
          cfg_(Cfg::build(prog)), live_(Liveness::compute(prog, cfg_))
    {
    }

    CompactResult
    run()
    {
        pickTraces();

        // Emit traces chained along their exit edges so that the
        // trailing jump of one trace can often be elided into a
        // fallthrough (taken branches cost a pipeline bubble).
        std::map<int, std::size_t> traceOfHead;
        for (std::size_t t = 0; t < traces_.size(); ++t)
            traceOfHead[traces_[t].front()] = t;
        std::vector<bool> emitted(traces_.size(), false);
        for (std::size_t t = 0; t < traces_.size(); ++t) {
            std::size_t cur = t;
            while (!emitted[cur]) {
                emitted[cur] = true;
                scheduleTrace(traces_[cur]);
                int exit = exitBlockOf(traces_[cur]);
                if (exit < 0)
                    break;
                auto it = traceOfHead.find(exit);
                if (it == traceOfHead.end() || emitted[it->second])
                    break;
                cur = it->second;
            }
        }

        fixup();
        finishStats();

        CompactResult res;
        res.code.code = std::move(wide_);
        res.code.regionStart = std::move(regionStart_);
        res.code.entry =
            headWide_.at(cfg_.entryBlock);
        res.code.numRegs = prog_.numRegs;
        res.code.interner = prog_.interner;
        res.stats = stats_;
        return res;
    }

  private:
    const Program &prog_;
    const emul::Profile &prof_;
    MachineConfig mc_;
    CompactOptions opts_;
    Cfg cfg_;
    Liveness live_;

    std::vector<std::vector<int>> traces_;
    /** Flow stolen from each block by tail-duplicated copies. */
    std::vector<std::uint64_t> copiedFlow_;
    std::vector<vliw::WideInstr> wide_;
    std::vector<int> regionStart_;
    std::map<int, int> headWide_; ///< head block -> wide index
    CompactStats stats_;
    double dynLenNum_ = 0, dynLenDen_ = 0, dynBlkNum_ = 0;

    std::uint64_t
    expectOf(int block) const
    {
        return prof_.expect[static_cast<std::size_t>(
            cfg_.blocks[static_cast<std::size_t>(block)].first)];
    }

    /** Successor edge counts of @p block, aligned with succs. */
    std::vector<std::uint64_t>
    edgeCounts(int block) const
    {
        const Block &b =
            cfg_.blocks[static_cast<std::size_t>(block)];
        std::size_t last = static_cast<std::size_t>(b.last);
        const IInstr &term = prog_.code[last];
        std::vector<std::uint64_t> out;
        if (intcode::isCondBranch(term.op)) {
            std::uint64_t taken = prof_.taken[last];
            out.push_back(taken);
            if (b.succs.size() > 1)
                out.push_back(prof_.expect[last] - taken);
        } else {
            for (std::size_t s = 0; s < b.succs.size(); ++s)
                out.push_back(prof_.expect[last]);
        }
        return out;
    }

    /**
     * Superblock formation: every block heads exactly one trace
     * (keeping it addressable from anywhere); the hot traces then
     * grow forward along the most probable edges, duplicating each
     * followed block into the trace. Originals that end up shadowed
     * by copies simply become cold code.
     */
    void
    pickTraces()
    {
        const std::size_t nb = cfg_.blocks.size();

        // Seeds in descending Expect order.
        std::vector<int> seeds(nb);
        for (std::size_t i = 0; i < nb; ++i)
            seeds[i] = static_cast<int>(i);
        std::stable_sort(seeds.begin(), seeds.end(),
                         [&](int a, int b) {
                             return expectOf(a) > expectOf(b);
                         });

        std::size_t prog_ops = prog_.code.size();
        std::size_t dup_budget = static_cast<std::size_t>(
            opts_.dupBudgetFactor * static_cast<double>(prog_ops));
        copiedFlow_.assign(nb, 0);

        for (int seed : seeds) {
            std::vector<int> tr{seed};
            if (opts_.traceMode)
                growForward(tr, dup_budget);
            traces_.push_back(std::move(tr));
        }
    }

    void
    growForward(std::vector<int> &tr, std::size_t &dup_budget)
    {
        std::uint64_t head_expect = expectOf(tr.front());
        if (head_expect == 0)
            return;
        int total_ops =
            cfg_.blocks[static_cast<std::size_t>(tr.front())].size();
        while (static_cast<int>(tr.size()) < opts_.maxTraceBlocks &&
               total_ops < opts_.maxTraceOps) {
            int cur = tr.back();
            const Block &b =
                cfg_.blocks[static_cast<std::size_t>(cur)];
            auto counts = edgeCounts(cur);
            int best = -1;
            std::uint64_t best_count = 0;
            for (std::size_t s = 0; s < b.succs.size(); ++s) {
                int t = b.succs[s];
                if (counts[s] < std::max<std::uint64_t>(
                                    opts_.minEdgeCount, 1) ||
                    counts[s] <= best_count)
                    continue;
                if (std::find(tr.begin(), tr.end(), t) != tr.end())
                    continue; // no loop unrolling
                best = t;
                best_count = counts[s];
            }
            if (best < 0)
                break;
            // Stop on edges much colder than the trace head.
            if (static_cast<double>(best_count) <
                opts_.coldEdgeRatio *
                    static_cast<double>(head_expect))
                break;
            std::size_t sz = static_cast<std::size_t>(
                cfg_.blocks[static_cast<std::size_t>(best)].size());
            if (sz > dup_budget)
                break;
            dup_budget -= sz;
            total_ops += static_cast<int>(sz);
            copiedFlow_[static_cast<std::size_t>(best)] +=
                best_count;
            tr.push_back(best);
        }
    }

    /**
     * Block the trace's final unconditional transfer targets, or -1.
     * Used to chain trace emission into fallthroughs.
     */
    int
    exitBlockOf(const std::vector<int> &blocks) const
    {
        const Block &last = cfg_.blocks[static_cast<std::size_t>(
            blocks.back())];
        const IInstr &term =
            prog_.code[static_cast<std::size_t>(last.last)];
        if (term.op == IOp::Jmp)
            return cfg_.blockOf[static_cast<std::size_t>(
                term.target)];
        if (intcode::isCondBranch(term.op) ||
            !intcode::isControl(term.op)) {
            // The synthetic exit jump goes to the fallthrough block.
            if (last.last + 1 < static_cast<int>(prog_.code.size()))
                return cfg_.blockOf[static_cast<std::size_t>(
                    last.last + 1)];
        }
        return -1;
    }

    // --- Trace preparation ------------------------------------------

    /**
     * Concatenate the blocks of a trace into a straight-line op list:
     * in-trace jumps disappear, in-trace conditional branches become
     * splits (inverted when the trace follows the taken edge), and a
     * synthetic jump leaves the trace at the end if needed.
     */
    std::vector<TOp>
    linearize(const std::vector<int> &blocks)
    {
        std::vector<TOp> ops;
        for (std::size_t k = 0; k < blocks.size(); ++k) {
            const Block &b = cfg_.blocks[static_cast<std::size_t>(
                blocks[k])];
            bool last_block = k + 1 == blocks.size();
            int next_block = last_block ? -1 : blocks[k + 1];
            for (int i = b.first; i <= b.last; ++i) {
                TOp op;
                op.instr =
                    prog_.code[static_cast<std::size_t>(i)];
                op.origIdx = i;
                const IInstr &ins = op.instr;
                bool is_term = i == b.last;

                if (is_term && !last_block) {
                    int fall_block =
                        b.last + 1 <
                                static_cast<int>(prog_.code.size())
                            ? cfg_.blockOf[static_cast<std::size_t>(
                                  b.last + 1)]
                            : -1;
                    if (ins.op == IOp::Jmp) {
                        int tgt = cfg_.blockOf
                            [static_cast<std::size_t>(ins.target)];
                        panicIf(tgt != next_block,
                                "trace does not follow jmp edge");
                        continue; // implicit fallthrough
                    }
                    if (intcode::isCondBranch(ins.op)) {
                        int tgt = cfg_.blockOf
                            [static_cast<std::size_t>(ins.target)];
                        op.isSplit = true;
                        if (tgt == next_block) {
                            // Trace follows the taken edge: invert.
                            panicIf(fall_block < 0,
                                    "no fallthrough block");
                            op.instr.op =
                                intcode::invertBranch(ins.op);
                            op.instr.target = cfg_.blocks
                                [static_cast<std::size_t>(
                                     fall_block)].first;
                            op.offTraceBlock = fall_block;
                        } else {
                            panicIf(fall_block != next_block,
                                    "trace does not follow an edge");
                            op.offTraceBlock = tgt;
                        }
                        ops.push_back(op);
                        continue;
                    }
                    // Plain fallthrough terminator.
                    panicIf(fall_block != next_block,
                            "trace breaks fallthrough");
                    if (intcode::isControl(ins.op))
                        panic("unexpected control terminator");
                    ops.push_back(op);
                    continue;
                }
                ops.push_back(op);
            }
        }

        // Make sure control leaves the trace explicitly at the end.
        const Block &lastb = cfg_.blocks[static_cast<std::size_t>(
            blocks.back())];
        const IInstr &term =
            prog_.code[static_cast<std::size_t>(lastb.last)];
        if (intcode::isCondBranch(term.op) ||
            !intcode::isControl(term.op)) {
            int fall = lastb.last + 1;
            panicIf(fall >= static_cast<int>(prog_.code.size()),
                    "trace falls off the end of the program");
            TOp j;
            j.instr.op = IOp::Jmp;
            j.instr.target =
                cfg_.blocks[static_cast<std::size_t>(
                                cfg_.blockOf[static_cast<std::size_t>(
                                    fall)])].first;
            j.origIdx = lastb.last; // synthetic: shares priority slot
            j.synthetic = true;
            ops.push_back(j);
        }
        return ops;
    }

    /** Symbolic address computation over the linearised trace. */
    void
    computeAddresses(std::vector<TOp> &ops)
    {
        std::map<int, AddrVal> state;
        std::map<int, int> versions;
        auto baseInit = [&](int reg) {
            AddrVal v;
            v.kind = AddrVal::Kind::BaseOff;
            v.baseReg = reg;
            v.version = 0;
            v.off = 0;
            v.region = regionOfBase(reg);
            return v;
        };
        for (int r :
             {R::kH, R::kE, R::kB, R::kTr, R::kPdl, R::kHb})
            state[r] = baseInit(r);

        auto redefineBase = [&](int reg) {
            AddrVal v;
            v.kind = AddrVal::Kind::BaseOff;
            v.baseReg = reg;
            v.version = ++versions[reg];
            v.off = 0;
            v.region = regionOfBase(reg);
            state[reg] = v;
        };
        auto get = [&](int reg) {
            auto it = state.find(reg);
            if (it != state.end())
                return it->second;
            AddrVal v;
            v.region = Region::Any;
            return v;
        };

        for (TOp &op : ops) {
            IInstr &i = op.instr;
            if (i.op == IOp::Ld || i.op == IOp::St) {
                op.isMem = true;
                op.isStore = i.op == IOp::St;
                op.addr = get(i.ra);
                if (op.addr.kind != AddrVal::Kind::Unknown)
                    op.addr.off += i.off;
                else if (op.addr.region == Region::Any &&
                         regionOfBase(i.ra) != Region::Any)
                    op.addr.region = regionOfBase(i.ra);
            }
            // Transfer function for the destination register.
            int d = intcode::defReg(i);
            if (d < 0)
                continue;
            bool canonical = regionOfBase(d) != Region::Any;
            switch (i.op) {
              case IOp::Mov: {
                AddrVal v = get(i.ra);
                if (canonical && v.kind == AddrVal::Kind::Unknown)
                    redefineBase(d);
                else
                    state[d] = v;
                break;
              }
              case IOp::Movi:
                if (bam::wordTag(i.imm) == Tag::Int) {
                    AddrVal v;
                    v.kind = AddrVal::Kind::Absolute;
                    v.off = bam::wordVal(i.imm);
                    v.region = regionOfAbsolute(v.off);
                    state[d] = v;
                } else if (canonical) {
                    redefineBase(d);
                } else {
                    state[d] = AddrVal{};
                }
                break;
              case IOp::Add:
              case IOp::Sub: {
                AddrVal v = get(i.ra);
                if (i.useImm &&
                    v.kind != AddrVal::Kind::Unknown) {
                    std::int64_t delta = bam::wordVal(i.imm);
                    v.off += i.op == IOp::Add ? delta : -delta;
                    state[d] = v;
                } else {
                    // reg+reg: keep only the region knowledge.
                    AddrVal r1 = get(i.ra);
                    AddrVal r2 = i.useImm ? AddrVal{} : get(i.rb);
                    AddrVal v2;
                    v2.region = r1.region != Region::Any
                                    ? r1.region
                                    : r2.region;
                    if (canonical &&
                        v2.region == Region::Any)
                        redefineBase(d);
                    else
                        state[d] = v2;
                }
                break;
              }
              case IOp::MkTag: {
                AddrVal v = get(i.ra);
                state[d] = v; // value field preserved
                break;
              }
              default:
                if (canonical)
                    redefineBase(d);
                else
                    state[d] = AddrVal{};
                break;
            }
        }
    }

    /** Do two trace memory ops certainly access different words? */
    bool
    independentMem(const TOp &a, const TOp &b) const
    {
        const AddrVal &x = a.addr;
        const AddrVal &y = b.addr;
        if (x.kind == AddrVal::Kind::BaseOff &&
            y.kind == AddrVal::Kind::BaseOff &&
            x.baseReg == y.baseReg && x.version == y.version)
            return x.off != y.off;
        if (x.kind == AddrVal::Kind::Absolute &&
            y.kind == AddrVal::Kind::Absolute)
            return x.off != y.off;
        if (regionsDisjoint(x.region, y.region))
            return true;
        // Fresh heap allocation: nothing older can alias a cell that
        // is only just being carved off the top of the heap, so an
        // earlier access is independent of a later fresh store.
        if (opts_.freshAllocDisambiguation && b.isStore &&
            b.instr.fresh)
            return true;
        return false;
    }

    // --- Dependence graph -------------------------------------------

    struct Edge
    {
        int to;
        int delay;
    };

    struct Ddg
    {
        std::vector<std::vector<Edge>> succs;
        std::vector<int> npreds;
        /** Producing trace op of (ra, rb), or -1 if live-in. */
        std::vector<std::array<int, 2>> defOf;
        std::vector<int> height;
    };

    Ddg
    buildDdg(std::vector<TOp> &ops)
    {
        const int n = static_cast<int>(ops.size());
        Ddg g;
        g.succs.assign(static_cast<std::size_t>(n), {});
        g.npreds.assign(static_cast<std::size_t>(n), 0);
        g.defOf.assign(static_cast<std::size_t>(n),
                       std::array<int, 2>{-1, -1});
        auto addEdge = [&](int from, int to, int delay) {
            g.succs[static_cast<std::size_t>(from)].push_back(
                {to, delay});
            ++g.npreds[static_cast<std::size_t>(to)];
        };

        std::map<int, int> lastDef;
        std::map<int, std::vector<int>> usesSinceDef;
        int lastBranch = -1;
        std::vector<int> branchesSoFar;
        int lastOut = -1;

        for (int j = 0; j < n; ++j) {
            const IInstr &ij = ops[static_cast<std::size_t>(j)].instr;
            int uses[2];
            int nu = 0;
            intcode::useRegs(ij, uses, nu);
            for (int u = 0; u < nu; ++u) {
                auto it = lastDef.find(uses[u]);
                int def = it == lastDef.end() ? -1 : it->second;
                // Record the producer for cluster binding; slot 0 is
                // ra, slot 1 is rb.
                int slot = (u == 0 && ij.ra == uses[u]) ? 0 : 1;
                g.defOf[static_cast<std::size_t>(j)]
                       [static_cast<std::size_t>(slot)] = def;
                if (def >= 0)
                    addEdge(def, j,
                            latencyOf(ops[static_cast<std::size_t>(
                                              def)].instr,
                                      mc_));
                usesSinceDef[uses[u]].push_back(j);
            }
            int d = intcode::defReg(ij);
            if (d >= 0) {
                auto it = lastDef.find(d);
                if (it != lastDef.end()) {
                    // Output dependence: preserve the final value.
                    const IInstr &prev =
                        ops[static_cast<std::size_t>(it->second)]
                            .instr;
                    int delay = latencyOf(prev, mc_) -
                                latencyOf(ij, mc_) + 1;
                    addEdge(it->second, j, std::max(delay, 0));
                }
                // Anti dependences: writers wait for readers' issue.
                for (int r : usesSinceDef[d]) {
                    if (r != j)
                        addEdge(r, j, 0);
                }
                usesSinceDef[d].clear();
                lastDef[d] = j;
            }

            // Memory ordering.
            if (ops[static_cast<std::size_t>(j)].isMem) {
                for (int i = j - 1; i >= 0; --i) {
                    const TOp &oi = ops[static_cast<std::size_t>(i)];
                    if (!oi.isMem)
                        continue;
                    if (!oi.isStore &&
                        !ops[static_cast<std::size_t>(j)].isStore)
                        continue; // load-load never conflicts
                    if (!independentMem(
                            oi, ops[static_cast<std::size_t>(j)]))
                        addEdge(i, j, 1);
                }
            }

            // Observable-output ordering.
            if (ij.op == IOp::Out) {
                if (lastOut >= 0)
                    addEdge(lastOut, j, 1);
                lastOut = j;
            }

            // Control constraints.
            if (intcode::isControl(ij.op)) {
                // Branch order is fixed; same-cycle multiway issue is
                // allowed (priority = position).
                if (lastBranch >= 0)
                    addEdge(lastBranch, j, 0);
                // Nothing that preceded the branch may sink below
                // it; in addition, a result the off-trace path may
                // consume must have committed by the time that path
                // resumes (one taken-branch penalty later).
                for (int i = (lastBranch >= 0 ? lastBranch + 1 : 0);
                     i < j; ++i) {
                    const IInstr &prev =
                        ops[static_cast<std::size_t>(i)].instr;
                    if (intcode::isControl(prev.op))
                        continue;
                    int slack = 0;
                    if (intcode::defReg(prev) >= 0)
                        slack = latencyOf(prev, mc_) - 1 -
                                mc_.branchPenalty;
                    addEdge(i, j, std::max(0, slack));
                }
                lastBranch = j;
                branchesSoFar.push_back(j);
            } else {
                // Hoisting above earlier splits: forbidden for
                // side-effecting ops and for off-live destinations.
                // A hoisted result must also have committed by the
                // time the off-trace path resumes (one penalty after
                // the split), or its in-flight write could collide
                // with a fresh off-trace definition of the register.
                bool spec = speculable(ij) &&
                            latencyOf(ij, mc_) - 1 <=
                                mc_.branchPenalty;
                for (int bidx : branchesSoFar) {
                    const TOp &br =
                        ops[static_cast<std::size_t>(bidx)];
                    bool blocked = !spec;
                    if (!blocked && d >= 0 &&
                        br.offTraceBlock >= 0 &&
                        live_.isLiveIn(br.offTraceBlock, d))
                        blocked = true; // off-live dependence
                    if (!blocked && br.offTraceBlock < 0)
                        blocked = true; // unknown exit: be safe
                    if (blocked)
                        addEdge(bidx, j, 1);
                }
            }
        }

        // Heights (critical path to the end, in cycles).
        g.height.assign(static_cast<std::size_t>(n), 0);
        for (int i = n - 1; i >= 0; --i) {
            int h = latencyOf(ops[static_cast<std::size_t>(i)].instr,
                              mc_);
            for (const Edge &e :
                 g.succs[static_cast<std::size_t>(i)]) {
                h = std::max(
                    h, e.delay +
                           g.height[static_cast<std::size_t>(e.to)]);
            }
            g.height[static_cast<std::size_t>(i)] = h;
        }
        return g;
    }

    // --- List scheduling with BUG unit binding ------------------------

    void
    scheduleTrace(const std::vector<int> &blocks)
    {
        std::vector<TOp> ops = linearize(blocks);
        computeAddresses(ops);
        Ddg g = buildDdg(ops);
        const int n = static_cast<int>(ops.size());
        const int units = mc_.numUnits;

        std::vector<int> cycleOf(static_cast<std::size_t>(n), -1);
        std::vector<int> unitOf(static_cast<std::size_t>(n), 0);
        std::vector<int> earliest(static_cast<std::size_t>(n), 0);
        std::vector<int> preds_left = g.npreds;

        // Resource state per cycle (grown on demand).
        struct CycleRes
        {
            std::vector<std::uint8_t> slotUse; // unit x 4 slots
            std::vector<std::uint8_t> fmtCtl;  // unit used control
            std::vector<std::uint8_t> fmtData; // unit used alu/move
            int memUsed = 0;
            int busUsed = 0;
        };
        std::vector<CycleRes> res;
        auto resAt = [&](int c) -> CycleRes & {
            while (static_cast<int>(res.size()) <= c) {
                CycleRes r;
                r.slotUse.assign(
                    static_cast<std::size_t>(units) * 4, 0);
                r.fmtCtl.assign(static_cast<std::size_t>(units), 0);
                r.fmtData.assign(static_cast<std::size_t>(units), 0);
                res.push_back(std::move(r));
            }
            return res[static_cast<std::size_t>(c)];
        };

        auto slotLimit = [&](Slot s) {
            switch (s) {
              case Slot::Mem: return mc_.memPerUnit;
              case Slot::Alu: return mc_.aluPerUnit;
              case Slot::Move: return mc_.movePerUnit;
              case Slot::Branch: return mc_.branchPerUnit;
              default: return 1;
            }
        };

        int scheduled = 0;
        int cycle = 0;
        std::vector<int> order(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            order[static_cast<std::size_t>(i)] = i;
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return g.height[static_cast<std::size_t>(a)] >
                   g.height[static_cast<std::size_t>(b)];
        });

        while (scheduled < n) {
            bool placed_any = false;
            for (int oi : order) {
                std::size_t o = static_cast<std::size_t>(oi);
                if (cycleOf[o] >= 0 || preds_left[o] > 0 ||
                    earliest[o] > cycle)
                    continue;
                const TOp &op = ops[o];
                Slot slot = slotOf(op.instr);
                if (slot == Slot::None) {
                    // Nop-like: schedule without resources.
                    cycleOf[o] = cycle;
                    placed_any = true;
                    ++scheduled;
                    for (const Edge &e : g.succs[o]) {
                        std::size_t t =
                            static_cast<std::size_t>(e.to);
                        earliest[t] = std::max(earliest[t],
                                               cycle + e.delay);
                        --preds_left[t];
                    }
                    continue;
                }
                CycleRes &cr = resAt(cycle);
                if (slot == Slot::Mem &&
                    cr.memUsed >= mc_.memPortsTotal)
                    continue;

                // Pick a unit (Bottom-Up-Greedy): feasibility, then
                // fewest bus crossings, then load balance.
                int best_unit = -1;
                int best_cost = 1 << 30;
                for (int u = 0; u < units; ++u) {
                    std::size_t su = static_cast<std::size_t>(u);
                    if (cr.slotUse[su * 4 +
                                   static_cast<std::size_t>(slot)] >=
                        slotLimit(slot))
                        continue;
                    if (mc_.twoFormats) {
                        if (slot == Slot::Branch && cr.fmtData[su])
                            continue;
                        if ((slot == Slot::Alu ||
                             slot == Slot::Move) &&
                            cr.fmtCtl[su])
                            continue;
                    }
                    // Operand availability on this unit.
                    int cross = 0;
                    bool ok = true;
                    if (mc_.clustered) {
                        for (int s = 0; s < 2 && ok; ++s) {
                            int dop = g.defOf[o]
                                [static_cast<std::size_t>(s)];
                            if (dop < 0)
                                continue;
                            std::size_t sd =
                                static_cast<std::size_t>(dop);
                            int avail =
                                cycleOf[sd] +
                                latencyOf(ops[sd].instr, mc_);
                            if (unitOf[sd] != u) {
                                avail += mc_.busLatency;
                                ++cross;
                            }
                            if (avail > cycle)
                                ok = false;
                        }
                        if (cross &&
                            cr.busUsed + cross >
                                mc_.busTransfersPerCycle)
                            ok = false;
                    }
                    if (!ok)
                        continue;
                    int load = 0;
                    for (int k = 0; k < 4; ++k)
                        load += cr.slotUse[su * 4 +
                                           static_cast<std::size_t>(
                                               k)];
                    int cost = cross * 8 + load;
                    if (cost < best_cost) {
                        best_cost = cost;
                        best_unit = u;
                        // Remember crossings via cost decode below.
                    }
                }
                if (best_unit < 0)
                    continue;

                std::size_t su = static_cast<std::size_t>(best_unit);
                cr.slotUse[su * 4 + static_cast<std::size_t>(slot)]++;
                if (slot == Slot::Mem)
                    ++cr.memUsed;
                cr.busUsed += best_cost / 8;
                if (mc_.twoFormats) {
                    if (slot == Slot::Branch)
                        cr.fmtCtl[su] = 1;
                    if (slot == Slot::Alu || slot == Slot::Move)
                        cr.fmtData[su] = 1;
                }
                cycleOf[o] = cycle;
                unitOf[o] = best_unit;
                placed_any = true;
                ++scheduled;
                for (const Edge &e : g.succs[o]) {
                    std::size_t t = static_cast<std::size_t>(e.to);
                    earliest[t] =
                        std::max(earliest[t], cycle + e.delay);
                    --preds_left[t];
                }
            }
            if (!placed_any || scheduled < n)
                ++cycle;
            if (placed_any)
                continue;
            // Safety: if nothing became ready, jump to the next
            // earliest time.
            bool progress = false;
            for (int i = 0; i < n; ++i) {
                std::size_t o = static_cast<std::size_t>(i);
                if (cycleOf[o] < 0 && preds_left[o] == 0) {
                    progress = true;
                    break;
                }
            }
            panicIf(!progress && scheduled < n,
                    "scheduler deadlock (cyclic dependence?)");
        }

        // Emit wide instructions, preserving original order within a
        // cycle (multiway-branch priority). The trace is padded so
        // that every result commits before control can leave it: a
        // successor trace may begin in the very next cycle when the
        // exit jump is elided into a fallthrough.
        int len = 0;
        for (int i = 0; i < n; ++i) {
            std::size_t o = static_cast<std::size_t>(i);
            int done = cycleOf[o];
            if (intcode::defReg(ops[o].instr) >= 0)
                done += latencyOf(ops[o].instr, mc_) - 1;
            len = std::max(len, done);
        }
        std::vector<std::vector<int>> byCycle(
            static_cast<std::size_t>(len) + 1);
        for (int i = 0; i < n; ++i)
            byCycle[static_cast<std::size_t>(
                        cycleOf[static_cast<std::size_t>(i)])]
                .push_back(i);

        headWide_[blocks.front()] = static_cast<int>(wide_.size());
        regionStart_.push_back(static_cast<int>(wide_.size()));
        for (auto &cyc : byCycle) {
            // byCycle preserves ascending trace position, which IS
            // the branch-priority order (original program indices are
            // meaningless here: duplicated blocks come from anywhere).
            vliw::WideInstr w;
            for (int i : cyc) {
                if (ops[static_cast<std::size_t>(i)].instr.op ==
                    IOp::Nop)
                    continue;
                vliw::MicroOp m;
                m.instr = ops[static_cast<std::size_t>(i)].instr;
                m.unit = unitOf[static_cast<std::size_t>(i)];
                m.orig = ops[static_cast<std::size_t>(i)].synthetic
                             ? -1
                             : ops[static_cast<std::size_t>(i)].origIdx;
                m.seq = i;
                w.ops.push_back(std::move(m));
            }
            wide_.push_back(std::move(w));
        }

        // Register-bank pressure: peak count of values produced on a
        // unit that are still awaiting an in-trace consumer (§5.2's
        // banks hold 16 registers).
        {
            std::vector<int> last_use(static_cast<std::size_t>(n),
                                      -1);
            for (int j = 0; j < n; ++j) {
                for (int s = 0; s < 2; ++s) {
                    int d = g.defOf[static_cast<std::size_t>(j)]
                                   [static_cast<std::size_t>(s)];
                    if (d >= 0)
                        last_use[static_cast<std::size_t>(d)] =
                            std::max(
                                last_use[static_cast<std::size_t>(
                                    d)],
                                cycleOf[static_cast<std::size_t>(
                                    j)]);
                }
            }
            std::map<std::pair<int, int>, int> delta;
            for (int i = 0; i < n; ++i) {
                std::size_t si = static_cast<std::size_t>(i);
                if (intcode::defReg(ops[si].instr) < 0 ||
                    last_use[si] < 0)
                    continue;
                delta[{unitOf[si], cycleOf[si]}] += 1;
                delta[{unitOf[si], last_use[si] + 1}] -= 1;
            }
            int cur_unit = -1, live = 0;
            for (const auto &[key, d] : delta) {
                if (key.first != cur_unit) {
                    cur_unit = key.first;
                    live = 0;
                }
                live += d;
                stats_.peakBankPressure =
                    std::max(stats_.peakBankPressure, live);
            }
        }

        // Statistics.
        stats_.numRegions += 1;
        stats_.totalOps += static_cast<std::size_t>(n);
        // Weight by the flow that still enters this trace at its head
        // (copies elsewhere have absorbed part of the original flow).
        std::uint64_t e = expectOf(blocks.front());
        std::uint64_t stolen =
            copiedFlow_[static_cast<std::size_t>(blocks.front())];
        e = e > stolen ? e - stolen : 0;
        if (e > 0) {
            dynLenNum_ += static_cast<double>(e) * n;
            dynBlkNum_ +=
                static_cast<double>(e) * blocks.size();
            dynLenDen_ += static_cast<double>(e);
        }
    }

    void
    fixup()
    {
        auto resolve = [&](int instr_idx) {
            int b = cfg_.blockOf[static_cast<std::size_t>(instr_idx)];
            auto it = headWide_.find(b);
            panicIf(it == headWide_.end() ||
                        cfg_.blocks[static_cast<std::size_t>(b)]
                                .first != instr_idx,
                    "branch into the middle of a trace");
            return it->second;
        };
        for (vliw::WideInstr &w : wide_) {
            for (vliw::MicroOp &m : w.ops) {
                if (m.instr.target >= 0)
                    m.instr.target = resolve(m.instr.target);
                if (m.instr.useImm &&
                    bam::wordTag(m.instr.imm) == Tag::Cod) {
                    int addr = static_cast<int>(
                        bam::wordVal(m.instr.imm));
                    m.instr.imm = bam::makeWord(
                        Tag::Cod, resolve(addr));
                }
            }
        }

        // Elide jumps to the immediately following wide instruction:
        // chained trace emission makes many trace exits plain
        // fallthroughs, saving the taken-branch bubble. A jump is
        // always the lowest-priority op of its cycle, so removing it
        // cannot unmask another branch.
        for (std::size_t k = 0; k < wide_.size(); ++k) {
            auto &ops = wide_[k].ops;
            if (!ops.empty() && ops.back().instr.op == IOp::Jmp &&
                ops.back().instr.target ==
                    static_cast<int>(k) + 1) {
                ops.pop_back();
            }
        }
    }

    void
    finishStats()
    {
        stats_.wideInstrs = wide_.size();
        stats_.avgStaticLength =
            stats_.numRegions
                ? static_cast<double>(stats_.totalOps) /
                      static_cast<double>(stats_.numRegions)
                : 0.0;
        stats_.avgDynamicLength =
            dynLenDen_ > 0 ? dynLenNum_ / dynLenDen_ : 0.0;
        stats_.avgBlocksPerRegion =
            dynLenDen_ > 0 ? dynBlkNum_ / dynLenDen_ : 0.0;
    }
};

} // namespace

CompactResult
compact(const Program &prog, const emul::Profile &profile,
        const MachineConfig &config, const CompactOptions &opts)
{
    Compactor c(prog, profile, config, opts);
    return c.run();
}

} // namespace symbol::sched
