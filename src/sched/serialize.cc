#include "sched/serialize.hh"

#include "support/text.hh"

namespace symbol::sched
{

using serialize::Reader;
using serialize::Writer;

void
encode(Writer &w, const CompactStats &stats)
{
    w.vu(stats.numRegions);
    w.vu(stats.totalOps);
    w.vu(stats.wideInstrs);
    w.f64(stats.avgStaticLength);
    w.f64(stats.avgDynamicLength);
    w.f64(stats.avgBlocksPerRegion);
    w.vi(stats.peakBankPressure);
}

CompactStats
decodeCompactStats(Reader &r)
{
    CompactStats s;
    s.numRegions = static_cast<std::size_t>(r.vu());
    s.totalOps = static_cast<std::size_t>(r.vu());
    s.wideInstrs = static_cast<std::size_t>(r.vu());
    s.avgStaticLength = r.f64();
    s.avgDynamicLength = r.f64();
    s.avgBlocksPerRegion = r.f64();
    s.peakBankPressure = static_cast<int>(r.vi());
    return s;
}

std::string
fingerprint(const CompactOptions &opts)
{
    // %a renders the exact bit pattern of the doubles, so any change
    // to a tuning knob changes the key.
    return strprintf(
        "tm%d:fd%d:mb%d:mo%d:me%llu:db%a:ce%a",
        opts.traceMode ? 1 : 0,
        opts.freshAllocDisambiguation ? 1 : 0, opts.maxTraceBlocks,
        opts.maxTraceOps,
        static_cast<unsigned long long>(opts.minEdgeCount),
        opts.dupBudgetFactor, opts.coldEdgeRatio);
}

} // namespace symbol::sched
