#include "sched/trace.hh"

#include <algorithm>

#include "support/diagnostics.hh"

namespace symbol::sched
{

using intcode::Block;
using intcode::Cfg;
using intcode::IInstr;
using intcode::IOp;
using intcode::Program;

namespace
{

std::uint64_t
expectOf(const Cfg &cfg, const emul::Profile &prof, int block)
{
    return prof.expect[static_cast<std::size_t>(
        cfg.blocks[static_cast<std::size_t>(block)].first)];
}

/** Successor edge counts of @p block, aligned with succs. */
std::vector<std::uint64_t>
edgeCounts(const Program &prog, const Cfg &cfg,
           const emul::Profile &prof, int block)
{
    const Block &b = cfg.blocks[static_cast<std::size_t>(block)];
    std::size_t last = static_cast<std::size_t>(b.last);
    const IInstr &term = prog.code[last];
    std::vector<std::uint64_t> out;
    if (intcode::isCondBranch(term.op)) {
        std::uint64_t taken = prof.taken[last];
        out.push_back(taken);
        if (b.succs.size() > 1)
            out.push_back(prof.expect[last] - taken);
    } else {
        for (std::size_t s = 0; s < b.succs.size(); ++s)
            out.push_back(prof.expect[last]);
    }
    return out;
}

void
growForward(const Program &prog, const Cfg &cfg,
            const emul::Profile &prof, const CompactOptions &opts,
            std::vector<std::uint64_t> &copiedFlow,
            std::vector<int> &tr, std::size_t &dup_budget)
{
    std::uint64_t head_expect = expectOf(cfg, prof, tr.front());
    if (head_expect == 0)
        return;
    int total_ops =
        cfg.blocks[static_cast<std::size_t>(tr.front())].size();
    while (static_cast<int>(tr.size()) < opts.maxTraceBlocks &&
           total_ops < opts.maxTraceOps) {
        int cur = tr.back();
        const Block &b = cfg.blocks[static_cast<std::size_t>(cur)];
        auto counts = edgeCounts(prog, cfg, prof, cur);
        int best = -1;
        std::uint64_t best_count = 0;
        for (std::size_t s = 0; s < b.succs.size(); ++s) {
            int t = b.succs[s];
            if (counts[s] < std::max<std::uint64_t>(
                                opts.minEdgeCount, 1) ||
                counts[s] <= best_count)
                continue;
            if (std::find(tr.begin(), tr.end(), t) != tr.end())
                continue; // no loop unrolling
            best = t;
            best_count = counts[s];
        }
        if (best < 0)
            break;
        // Stop on edges much colder than the trace head.
        if (static_cast<double>(best_count) <
            opts.coldEdgeRatio * static_cast<double>(head_expect))
            break;
        std::size_t sz = static_cast<std::size_t>(
            cfg.blocks[static_cast<std::size_t>(best)].size());
        if (sz > dup_budget)
            break;
        dup_budget -= sz;
        total_ops += static_cast<int>(sz);
        copiedFlow[static_cast<std::size_t>(best)] += best_count;
        tr.push_back(best);
    }
}

TraceSet
formTraces(const Program &prog, const Cfg &cfg,
           const emul::Profile &prof, const CompactOptions &opts,
           bool grow)
{
    const std::size_t nb = cfg.blocks.size();

    // Seeds in descending Expect order.
    std::vector<int> seeds(nb);
    for (std::size_t i = 0; i < nb; ++i)
        seeds[i] = static_cast<int>(i);
    std::stable_sort(seeds.begin(), seeds.end(), [&](int a, int b) {
        return expectOf(cfg, prof, a) > expectOf(cfg, prof, b);
    });

    std::size_t prog_ops = prog.code.size();
    std::size_t dup_budget = static_cast<std::size_t>(
        opts.dupBudgetFactor * static_cast<double>(prog_ops));

    TraceSet ts;
    ts.copiedFlow.assign(nb, 0);
    for (int seed : seeds) {
        std::vector<int> tr{seed};
        if (grow)
            growForward(prog, cfg, prof, opts, ts.copiedFlow, tr,
                        dup_budget);
        ts.traces.push_back(std::move(tr));
    }
    return ts;
}

} // namespace

TraceSet
formSuperblockTraces(const Program &prog, const Cfg &cfg,
                     const emul::Profile &profile,
                     const CompactOptions &opts)
{
    return formTraces(prog, cfg, profile, opts, true);
}

TraceSet
formBasicBlockRegions(const Program &prog, const Cfg &cfg,
                      const emul::Profile &profile,
                      const CompactOptions &opts)
{
    return formTraces(prog, cfg, profile, opts, false);
}

std::vector<TOp>
linearizeTrace(const Program &prog, const Cfg &cfg,
               const std::vector<int> &blocks)
{
    std::vector<TOp> ops;
    for (std::size_t k = 0; k < blocks.size(); ++k) {
        const Block &b =
            cfg.blocks[static_cast<std::size_t>(blocks[k])];
        bool last_block = k + 1 == blocks.size();
        int next_block = last_block ? -1 : blocks[k + 1];
        for (int i = b.first; i <= b.last; ++i) {
            TOp op;
            op.instr = prog.code[static_cast<std::size_t>(i)];
            op.origIdx = i;
            const IInstr &ins = op.instr;
            bool is_term = i == b.last;

            if (is_term && !last_block) {
                int fall_block =
                    b.last + 1 < static_cast<int>(prog.code.size())
                        ? cfg.blockOf[static_cast<std::size_t>(
                              b.last + 1)]
                        : -1;
                if (ins.op == IOp::Jmp) {
                    int tgt = cfg.blockOf[static_cast<std::size_t>(
                        ins.target)];
                    panicIf(tgt != next_block,
                            "trace does not follow jmp edge");
                    continue; // implicit fallthrough
                }
                if (intcode::isCondBranch(ins.op)) {
                    int tgt = cfg.blockOf[static_cast<std::size_t>(
                        ins.target)];
                    op.isSplit = true;
                    if (tgt == next_block) {
                        // Trace follows the taken edge: invert.
                        panicIf(fall_block < 0,
                                "no fallthrough block");
                        op.instr.op = intcode::invertBranch(ins.op);
                        op.instr.target =
                            cfg.blocks[static_cast<std::size_t>(
                                           fall_block)].first;
                        op.offTraceBlock = fall_block;
                    } else {
                        panicIf(fall_block != next_block,
                                "trace does not follow an edge");
                        op.offTraceBlock = tgt;
                    }
                    ops.push_back(op);
                    continue;
                }
                // Plain fallthrough terminator.
                panicIf(fall_block != next_block,
                        "trace breaks fallthrough");
                if (intcode::isControl(ins.op))
                    panic("unexpected control terminator");
                ops.push_back(op);
                continue;
            }
            ops.push_back(op);
        }
    }

    // Make sure control leaves the trace explicitly at the end.
    const Block &lastb =
        cfg.blocks[static_cast<std::size_t>(blocks.back())];
    const IInstr &term =
        prog.code[static_cast<std::size_t>(lastb.last)];
    if (intcode::isCondBranch(term.op) ||
        !intcode::isControl(term.op)) {
        int fall = lastb.last + 1;
        panicIf(fall >= static_cast<int>(prog.code.size()),
                "trace falls off the end of the program");
        TOp j;
        j.instr.op = IOp::Jmp;
        j.instr.target =
            cfg.blocks[static_cast<std::size_t>(
                           cfg.blockOf[static_cast<std::size_t>(
                               fall)])].first;
        j.origIdx = lastb.last; // synthetic: shares priority slot
        j.synthetic = true;
        ops.push_back(j);
    }
    return ops;
}

int
traceExitBlock(const Program &prog, const Cfg &cfg,
               const std::vector<int> &blocks)
{
    const Block &last =
        cfg.blocks[static_cast<std::size_t>(blocks.back())];
    const IInstr &term =
        prog.code[static_cast<std::size_t>(last.last)];
    if (term.op == IOp::Jmp)
        return cfg.blockOf[static_cast<std::size_t>(term.target)];
    if (intcode::isCondBranch(term.op) ||
        !intcode::isControl(term.op)) {
        // The synthetic exit jump goes to the fallthrough block.
        if (last.last + 1 < static_cast<int>(prog.code.size()))
            return cfg.blockOf[static_cast<std::size_t>(
                last.last + 1)];
    }
    return -1;
}

} // namespace symbol::sched
