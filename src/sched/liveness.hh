/**
 * @file
 * Register liveness over the ICI control-flow graph.
 *
 * Needed for the *off-live* dependence of §4.3: an operation may be
 * hoisted above an in-trace branch only if its destination is not
 * live on the branch's off-trace edge. Blocks ending in Jmpi have
 * statically unknown successors; their live-out conservatively
 * includes the live-in of every address-taken or procedure-entry
 * block.
 */

#ifndef SYMBOL_SCHED_LIVENESS_HH
#define SYMBOL_SCHED_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "intcode/cfg.hh"

namespace symbol::sched
{

/** Per-block live-in sets as packed bitsets. */
class Liveness
{
  public:
    static Liveness compute(const intcode::Program &prog,
                            const intcode::Cfg &cfg);

    /** Is @p reg live at the entry of @p block? */
    bool
    isLiveIn(int block, int reg) const
    {
        const std::uint64_t *bits =
            liveIn_.data() +
            static_cast<std::size_t>(block) * words_;
        return (bits[static_cast<std::size_t>(reg) >> 6] >>
                (reg & 63)) &
               1;
    }

  private:
    std::size_t words_ = 0;
    /** blocks x words_ matrix. */
    std::vector<std::uint64_t> liveIn_;
};

} // namespace symbol::sched

#endif // SYMBOL_SCHED_LIVENESS_HH
