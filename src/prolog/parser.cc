#include "prolog/parser.hh"

#include <unordered_map>

namespace symbol::prolog
{

OpTable::OpTable()
{
    auto def = [](int prec, OpType type) { return OpDef{prec, type}; };

    infix_[":-"] = def(1200, OpType::Xfx);
    infix_["-->"] = def(1200, OpType::Xfx);
    infix_[";"] = def(1100, OpType::Xfy);
    infix_["->"] = def(1050, OpType::Xfy);
    infix_[","] = def(1000, OpType::Xfy);
    for (const char *c : {"=", "\\=", "==", "\\==", "is", "=:=", "=\\=",
                          "<", ">", "=<", ">=", "@<", "@>", "@=<", "@>=",
                          "=.."})
        infix_[c] = def(700, OpType::Xfx);
    for (const char *c : {"+", "-", "/\\", "\\/", "xor"})
        infix_[c] = def(500, OpType::Yfx);
    for (const char *c : {"*", "/", "//", "mod", "rem", "<<", ">>"})
        infix_[c] = def(400, OpType::Yfx);
    infix_["**"] = def(200, OpType::Xfx);
    infix_["^"] = def(200, OpType::Xfy);

    prefix_[":-"] = def(1200, OpType::Fx);
    prefix_["?-"] = def(1200, OpType::Fx);
    prefix_["\\+"] = def(900, OpType::Fy);
    prefix_["-"] = def(200, OpType::Fy);
    prefix_["+"] = def(200, OpType::Fy);
    prefix_["\\"] = def(200, OpType::Fy);
}

const OpDef *
OpTable::infix(const std::string &name) const
{
    auto it = infix_.find(name);
    return it == infix_.end() ? nullptr : &it->second;
}

const OpDef *
OpTable::prefix(const std::string &name) const
{
    auto it = prefix_.find(name);
    return it == prefix_.end() ? nullptr : &it->second;
}

namespace
{

/**
 * Maximum term-nesting depth the recursive-descent reader accepts.
 * Every nesting construct (parentheses, functor arguments, list
 * elements, braces, prefix-operator operands, infix right operands)
 * costs one native stack frame, so without a bound a few hundred
 * thousand opening tokens overflow the host stack and crash the
 * process — found by the symbolfuzz pre-audit (`f(f(f(...`,
 * `((((...`, `[[[[...`, `- - - - ...`). 4096 is far beyond any real
 * program while keeping worst-case native stack use well under a
 * megabyte.
 */
constexpr int kMaxTermDepth = 4096;

/** Recursive-descent precedence-climbing term reader. */
class Parser
{
  public:
    Parser(const std::string &source, TermPool &pool)
        : pool_(pool), interner_(pool.interner()), lexer_(source)
    {
        cur_ = lexer_.next();
    }

    bool atEof() const { return cur_.kind == TokenKind::Eof; }

    /** Parse one clause-level term and consume the trailing '.'. */
    TermId
    readClauseTerm()
    {
        varIds_.clear();
        nextVar_ = 0;
        TermId t = parse(1200);
        expectEnd();
        return t;
    }

    int numVars() const { return nextVar_; }
    SourcePos pos() const { return cur_.pos; }

  private:
    TermPool &pool_;
    Interner &interner_;
    Lexer lexer_;
    Token cur_;
    OpTable ops_;
    std::unordered_map<std::string, TermId> varIds_;
    int nextVar_ = 0;
    int depth_ = 0;

    /** RAII nesting-depth guard for parse(). */
    struct DepthGuard
    {
        explicit DepthGuard(Parser &p) : p_(p)
        {
            if (++p_.depth_ > kMaxTermDepth)
                p_.fail("term nesting exceeds the depth limit (" +
                        std::to_string(kMaxTermDepth) + ")");
        }
        ~DepthGuard() { --p_.depth_; }
        Parser &p_;
    };

    void bump() { cur_ = lexer_.next(); }

    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw CompileError(cur_.pos, msg);
    }

    void
    expectEnd()
    {
        if (cur_.kind != TokenKind::End)
            fail("expected '.' at end of clause");
        bump();
    }

    bool
    isPunct(const char *p) const
    {
        return cur_.kind == TokenKind::Punct && cur_.text == p;
    }

    void
    expectPunct(const char *p)
    {
        if (!isPunct(p))
            fail(std::string("expected '") + p + "'");
        bump();
    }

    TermId
    mkVarTerm(const std::string &name)
    {
        if (name == "_")
            return pool_.mkVar(interner_.intern("_"), nextVar_++);
        auto it = varIds_.find(name);
        if (it != varIds_.end())
            return it->second;
        TermId v = pool_.mkVar(interner_.intern(name), nextVar_++);
        varIds_.emplace(name, v);
        return v;
    }

    /** Can the current token start a term (prefix-operator operand)? */
    bool
    startsTerm() const
    {
        switch (cur_.kind) {
          case TokenKind::Int:
          case TokenKind::Var:
          case TokenKind::Str:
          case TokenKind::Atom:
            return true;
          case TokenKind::Punct:
            return cur_.text == "(" || cur_.text == "[" ||
                   cur_.text == "{";
          default:
            return false;
        }
    }

    std::vector<TermId>
    parseArgList()
    {
        std::vector<TermId> args;
        args.push_back(parse(999));
        while (isPunct(",")) {
            bump();
            args.push_back(parse(999));
        }
        return args;
    }

    TermId
    parseList()
    {
        // '[' already consumed.
        if (isPunct("]")) {
            bump();
            return pool_.mkAtom(interner_.nilAtom());
        }
        std::vector<TermId> items;
        items.push_back(parse(999));
        while (isPunct(",")) {
            bump();
            items.push_back(parse(999));
        }
        TermId tail = kNoTerm;
        if (isPunct("|")) {
            bump();
            tail = parse(999);
        }
        expectPunct("]");
        return pool_.mkList(items, tail);
    }

    TermId
    parsePrimary(int max_prec, int &prec)
    {
        prec = 0;
        switch (cur_.kind) {
          case TokenKind::Int: {
            TermId t = pool_.mkInt(cur_.value);
            bump();
            return t;
          }
          case TokenKind::Var: {
            TermId t = mkVarTerm(cur_.text);
            bump();
            return t;
          }
          case TokenKind::Str: {
            std::vector<TermId> codes;
            for (char c : cur_.text)
                codes.push_back(
                    pool_.mkInt(static_cast<unsigned char>(c)));
            bump();
            return pool_.mkList(codes);
          }
          case TokenKind::Punct: {
            if (cur_.text == "(") {
                bump();
                TermId t = parse(1200);
                expectPunct(")");
                return t;
            }
            if (cur_.text == "[") {
                bump();
                return parseList();
            }
            if (cur_.text == "{") {
                bump();
                if (isPunct("}")) {
                    bump();
                    return pool_.mkAtom(interner_.intern("{}"));
                }
                TermId t = parse(1200);
                expectPunct("}");
                return pool_.mkStruct(interner_.intern("{}"), {t});
            }
            fail("unexpected punctuation '" + cur_.text + "'");
          }
          case TokenKind::Atom: {
            std::string name = cur_.text;
            bool functor_paren = cur_.functorParen;
            bump();
            if (functor_paren) {
                expectPunct("(");
                std::vector<TermId> args = parseArgList();
                expectPunct(")");
                return pool_.mkStruct(interner_.intern(name),
                                      std::move(args));
            }
            // Negative integer literal: '-' immediately applied to a
            // number is folded into the constant.
            if (name == "-" && cur_.kind == TokenKind::Int) {
                TermId t = pool_.mkInt(-cur_.value);
                bump();
                return t;
            }
            const OpDef *pre = ops_.prefix(name);
            if (pre && pre->prec <= max_prec && startsTerm() &&
                !(cur_.kind == TokenKind::Atom && ops_.infix(cur_.text) &&
                  !ops_.prefix(cur_.text) && !cur_.functorParen)) {
                int arg_max =
                    pre->type == OpType::Fy ? pre->prec : pre->prec - 1;
                TermId arg = parse(arg_max);
                prec = pre->prec;
                return pool_.mkStruct(interner_.intern(name), {arg});
            }
            return pool_.mkAtom(interner_.intern(name));
          }
          default:
            fail("unexpected end of clause");
        }
    }

    TermId
    parse(int max_prec)
    {
        DepthGuard depth(*this);
        int left_prec = 0;
        TermId left = parsePrimary(max_prec, left_prec);
        while (true) {
            std::string opname;
            if (cur_.kind == TokenKind::Atom) {
                opname = cur_.text;
            } else if (isPunct(",")) {
                opname = ",";
            } else {
                break;
            }
            const OpDef *in = ops_.infix(opname);
            if (!in || in->prec > max_prec)
                break;
            int left_max = in->type == OpType::Yfx ? in->prec
                                                   : in->prec - 1;
            int right_max = in->type == OpType::Xfy ? in->prec
                                                    : in->prec - 1;
            if (left_prec > left_max)
                break;
            bump();
            TermId right = parse(right_max);
            left = pool_.mkStruct(interner_.intern(opname), {left, right});
            left_prec = in->prec;
        }
        return left;
    }
};

} // namespace

Program
parseProgram(const std::string &source, Interner &interner)
{
    Program prog(interner);
    Parser parser(source, prog.pool);
    AtomId neck = interner.intern(":-");
    while (!parser.atEof()) {
        SourcePos pos = parser.pos();
        TermId t = parser.readClauseTerm();
        if (prog.pool.isStruct(t, neck, 1)) {
            prog.directives.push_back(prog.pool.at(t).args[0]);
            continue;
        }
        Clause c;
        c.pos = pos;
        c.numVars = parser.numVars();
        if (prog.pool.isStruct(t, neck, 2)) {
            c.head = prog.pool.at(t).args[0];
            c.body = prog.pool.at(t).args[1];
        } else {
            c.head = t;
        }
        if (prog.pool.isVar(c.head) || prog.pool.isInt(c.head))
            throw CompileError(pos, "clause head must be callable");
        prog.clauses.push_back(c);
    }
    return prog;
}

TermId
parseTerm(const std::string &source, TermPool &pool, int *num_vars)
{
    Parser parser(source, pool);
    TermId t = parser.readClauseTerm();
    if (num_vars)
        *num_vars = parser.numVars();
    return t;
}

} // namespace symbol::prolog
