/**
 * @file
 * Tokenizer for (a practical subset of) ISO Prolog text.
 *
 * Supports: unquoted, quoted and symbolic atoms, variables, integers
 * (decimal and 0'c character codes), double-quoted strings (read as
 * code lists), punctuation, '%' line comments and nested-free block
 * comments. The clause terminator '.' is recognised when followed by
 * layout or end of input, as required by the standard.
 */

#ifndef SYMBOL_PROLOG_LEXER_HH
#define SYMBOL_PROLOG_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.hh"

namespace symbol::prolog
{

/** Lexical classes produced by the Lexer. */
enum class TokenKind : std::uint8_t
{
    Atom,   ///< any atom, including symbolic and quoted ones
    Var,    ///< variable name (uppercase or '_' start)
    Int,    ///< integer literal
    Str,    ///< double-quoted string (code list)
    Punct,  ///< one of ( ) [ ] { } , |
    End,    ///< clause-terminating '.'
    Eof,    ///< end of input
};

/** One token with its source position. */
struct Token
{
    TokenKind kind;
    std::string text;      ///< atom/var name, punct char, string body
    std::int64_t value = 0; ///< integer value for Int tokens
    SourcePos pos;
    /** True when a '(' follows with no layout (functor application). */
    bool functorParen = false;
};

/** Streaming tokenizer over an in-memory source string. */
class Lexer
{
  public:
    explicit Lexer(const std::string &source);

    /** Scan and return the next token. */
    Token next();

    /** Tokenize the whole input (trailing Eof included). */
    std::vector<Token> all();

  private:
    const std::string &src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;

    char peek(std::size_t off = 0) const;
    char advance();
    bool atEnd() const { return pos_ >= src_.size(); }
    void skipLayout();
    SourcePos here() const { return {line_, col_}; }

    Token lexNumber();
    Token lexQuoted(char quote);
};

} // namespace symbol::prolog

#endif // SYMBOL_PROLOG_LEXER_HH
