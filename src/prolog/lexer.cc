#include "prolog/lexer.hh"

#include <cctype>

namespace symbol::prolog
{

namespace
{

bool
isSymbolChar(char c)
{
    static const std::string symbolic = "+-*/\\^<>=~:.?@#&$";
    return symbolic.find(c) != std::string::npos;
}

bool
isAlnumChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

Lexer::Lexer(const std::string &source)
    : src_(source)
{
}

char
Lexer::peek(std::size_t off) const
{
    return pos_ + off < src_.size() ? src_[pos_ + off] : '\0';
}

char
Lexer::advance()
{
    char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

void
Lexer::skipLayout()
{
    while (!atEnd()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '%') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            SourcePos start = here();
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (atEnd())
                throw CompileError(start, "unterminated block comment");
            advance();
            advance();
        } else {
            break;
        }
    }
}

Token
Lexer::lexNumber()
{
    Token tok;
    tok.kind = TokenKind::Int;
    tok.pos = here();
    // 0'c character-code literal.
    if (peek() == '0' && peek(1) == '\'') {
        advance();
        advance();
        if (atEnd())
            throw CompileError(tok.pos, "unterminated 0' literal");
        char c = advance();
        if (c == '\\' && !atEnd()) {
            char e = advance();
            switch (e) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'a': c = '\a'; break;
              case '\\': c = '\\'; break;
              case '\'': c = '\''; break;
              default:
                throw CompileError(tok.pos, "bad escape in 0' literal");
            }
        }
        tok.value = static_cast<unsigned char>(c);
        tok.text = std::string(1, c);
        return tok;
    }
    std::int64_t v = 0;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
        int d = advance() - '0';
        // Overflow check: the accumulation used to wrap (signed
        // overflow, undefined behaviour), silently turning literals
        // like 99999999999999999999 into garbage values — found by
        // the symbolfuzz pre-audit.
        if (v > (INT64_MAX - d) / 10)
            throw CompileError(tok.pos,
                               "integer literal out of range");
        v = v * 10 + d;
        tok.text.push_back(src_[pos_ - 1]);
    }
    tok.value = v;
    return tok;
}

Token
Lexer::lexQuoted(char quote)
{
    Token tok;
    tok.kind = quote == '\'' ? TokenKind::Atom : TokenKind::Str;
    tok.pos = here();
    advance(); // opening quote
    while (true) {
        if (atEnd())
            throw CompileError(tok.pos, "unterminated quoted token");
        char c = advance();
        if (c == quote) {
            if (peek() == quote) {
                tok.text.push_back(quote);
                advance();
                continue;
            }
            break;
        }
        if (c == '\\' && !atEnd()) {
            char e = advance();
            switch (e) {
              case 'n': tok.text.push_back('\n'); break;
              case 't': tok.text.push_back('\t'); break;
              case 'a': tok.text.push_back('\a'); break;
              case '\\': tok.text.push_back('\\'); break;
              case '\'': tok.text.push_back('\''); break;
              case '"': tok.text.push_back('"'); break;
              case '\n': break; // line continuation
              default:
                throw CompileError(tok.pos, "bad escape in quoted token");
            }
            continue;
        }
        tok.text.push_back(c);
    }
    tok.functorParen = peek() == '(';
    return tok;
}

Token
Lexer::next()
{
    skipLayout();
    Token tok;
    tok.pos = here();
    if (atEnd()) {
        tok.kind = TokenKind::Eof;
        return tok;
    }
    char c = peek();

    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();

    if (c == '\'' || c == '"')
        return lexQuoted(c);

    if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = TokenKind::Var;
        while (!atEnd() && isAlnumChar(peek()))
            tok.text.push_back(advance());
        return tok;
    }

    if (std::islower(static_cast<unsigned char>(c))) {
        tok.kind = TokenKind::Atom;
        while (!atEnd() && isAlnumChar(peek()))
            tok.text.push_back(advance());
        tok.functorParen = peek() == '(';
        return tok;
    }

    switch (c) {
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
      case ',':
      case '|':
        tok.kind = TokenKind::Punct;
        tok.text.push_back(advance());
        return tok;
      case '!':
      case ';':
        tok.kind = TokenKind::Atom;
        tok.text.push_back(advance());
        tok.functorParen = peek() == '(';
        return tok;
      default:
        break;
    }

    if (isSymbolChar(c)) {
        // A '.' followed by layout or EOF terminates the clause.
        if (c == '.') {
            char after = peek(1);
            if (after == '\0' || after == '%' ||
                std::isspace(static_cast<unsigned char>(after))) {
                advance();
                tok.kind = TokenKind::End;
                tok.text = ".";
                return tok;
            }
        }
        tok.kind = TokenKind::Atom;
        while (!atEnd() && isSymbolChar(peek()))
            tok.text.push_back(advance());
        tok.functorParen = peek() == '(';
        return tok;
    }

    throw CompileError(tok.pos,
                       std::string("unexpected character '") + c + "'");
}

std::vector<Token>
Lexer::all()
{
    std::vector<Token> out;
    while (true) {
        out.push_back(next());
        if (out.back().kind == TokenKind::Eof)
            break;
    }
    return out;
}

} // namespace symbol::prolog
