/**
 * @file
 * Operator-precedence parser producing clauses over a TermPool.
 *
 * Implements the standard Prolog reader algorithm with the classic
 * built-in operator table (1200 xfx ':-' down to 200 'fy' '-'). The
 * result of parsing a source file is a Program: a term arena plus the
 * list of clauses and directives in source order.
 */

#ifndef SYMBOL_PROLOG_PARSER_HH
#define SYMBOL_PROLOG_PARSER_HH

#include <string>
#include <vector>

#include "prolog/lexer.hh"
#include "prolog/term.hh"

namespace symbol::prolog
{

/** One program clause Head :- Body (Body == kNoTerm for facts). */
struct Clause
{
    TermId head = kNoTerm;
    TermId body = kNoTerm;
    /** Number of distinct variables in the clause. */
    int numVars = 0;
    SourcePos pos;
};

/** A parsed source file. */
struct Program
{
    explicit Program(Interner &interner) : pool(interner) {}

    TermPool pool;
    std::vector<Clause> clauses;
    /** Goals of ':-'/1 directives, in source order. */
    std::vector<TermId> directives;
};

/** Operator fixity classes from the ISO table. */
enum class OpType : std::uint8_t
{
    Xfx, Xfy, Yfx, Fy, Fx,
};

/** One operator-table entry. */
struct OpDef
{
    int prec;
    OpType type;
};

/** The built-in operator table (shared, immutable). */
class OpTable
{
  public:
    OpTable();

    /** Infix definition of @p name, or nullptr. */
    const OpDef *infix(const std::string &name) const;
    /** Prefix definition of @p name, or nullptr. */
    const OpDef *prefix(const std::string &name) const;

  private:
    std::unordered_map<std::string, OpDef> infix_;
    std::unordered_map<std::string, OpDef> prefix_;
};

/**
 * Parse @p source into a Program whose atoms are interned in
 * @p interner. Throws CompileError with a source position on any
 * syntax error.
 */
Program parseProgram(const std::string &source, Interner &interner);

/**
 * Parse a single term followed by '.' — convenience for tests and for
 * building queries.  @p num_vars receives the variable count.
 */
TermId parseTerm(const std::string &source, TermPool &pool,
                 int *num_vars = nullptr);

} // namespace symbol::prolog

#endif // SYMBOL_PROLOG_PARSER_HH
