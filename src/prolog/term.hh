/**
 * @file
 * Compile-time Prolog term representation.
 *
 * Terms live in an arena (TermPool) and are referenced by dense TermId
 * indices; they are immutable once created. Lists are ordinary
 * structures with functor '.'/2 terminated by the atom [], as in
 * standard Prolog.
 */

#ifndef SYMBOL_PROLOG_TERM_HH
#define SYMBOL_PROLOG_TERM_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/interner.hh"

namespace symbol::prolog
{

/** Index of a term inside its TermPool. */
using TermId = std::int32_t;

/** Sentinel for "no term". */
constexpr TermId kNoTerm = -1;

/** The four source-level term shapes. */
enum class TermKind : std::uint8_t
{
    Var,    ///< logic variable
    Int,    ///< integer constant
    Atom,   ///< atomic constant
    Struct, ///< compound term functor(args...)
};

/** One node of the term arena. */
struct Term
{
    TermKind kind;
    /** Atom id of the atom / functor name; name id for variables. */
    AtomId functor = -1;
    /** Integer constants only. */
    std::int64_t value = 0;
    /** Distinct id per clause-local variable. */
    std::int32_t varId = -1;
    /** Argument terms of a Struct. */
    std::vector<TermId> args;
};

/** Arena of immutable terms with constructors and a printer. */
class TermPool
{
  public:
    explicit TermPool(Interner &interner);

    /** @name Constructors */
    /** @{ */
    TermId mkVar(AtomId name, std::int32_t var_id);
    TermId mkInt(std::int64_t value);
    TermId mkAtom(AtomId atom);
    TermId mkStruct(AtomId functor, std::vector<TermId> args);
    /** Build a proper list of @p items ending in @p tail (or []). */
    TermId mkList(const std::vector<TermId> &items, TermId tail = kNoTerm);
    /** @} */

    const Term &at(TermId id) const;

    /** @name Shape tests */
    /** @{ */
    bool isVar(TermId id) const { return at(id).kind == TermKind::Var; }
    bool isInt(TermId id) const { return at(id).kind == TermKind::Int; }
    bool isAtom(TermId id) const { return at(id).kind == TermKind::Atom; }
    bool isStruct(TermId id) const
    {
        return at(id).kind == TermKind::Struct;
    }
    bool isAtom(TermId id, AtomId atom) const;
    /** Struct with the given name/arity? */
    bool isStruct(TermId id, AtomId functor, int arity) const;
    /** A '.'/2 cell? */
    bool isCons(TermId id) const;
    /** @} */

    /** Arity (0 for non-structs). */
    int arity(TermId id) const;

    /** The interner all atoms in this pool refer to. */
    Interner &interner() const { return interner_; }

    /** The '.' atom used for list cells. */
    AtomId consAtom() const { return consAtom_; }

    /** Number of terms allocated. */
    std::size_t size() const { return terms_.size(); }

    /** Canonical text of a term (operators rendered functionally,
     *  lists in bracket notation). */
    std::string str(TermId id) const;

  private:
    Interner &interner_;
    /** Deque keeps Term references stable while new terms are
     *  created (the normaliser builds terms while reading others). */
    std::deque<Term> terms_;
    AtomId consAtom_;

    TermId push(Term t);
    void strInto(TermId id, std::string &out) const;
};

} // namespace symbol::prolog

#endif // SYMBOL_PROLOG_TERM_HH
