#include "prolog/term.hh"

#include <cctype>

#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::prolog
{

TermPool::TermPool(Interner &interner)
    : interner_(interner)
{
    consAtom_ = interner_.intern(".");
}

TermId
TermPool::push(Term t)
{
    TermId id = static_cast<TermId>(terms_.size());
    terms_.push_back(std::move(t));
    return id;
}

TermId
TermPool::mkVar(AtomId name, std::int32_t var_id)
{
    Term t;
    t.kind = TermKind::Var;
    t.functor = name;
    t.varId = var_id;
    return push(std::move(t));
}

TermId
TermPool::mkInt(std::int64_t value)
{
    Term t;
    t.kind = TermKind::Int;
    t.value = value;
    return push(std::move(t));
}

TermId
TermPool::mkAtom(AtomId atom)
{
    Term t;
    t.kind = TermKind::Atom;
    t.functor = atom;
    return push(std::move(t));
}

TermId
TermPool::mkStruct(AtomId functor, std::vector<TermId> args)
{
    panicIf(args.empty(), "mkStruct: zero-arity struct must be an atom");
    Term t;
    t.kind = TermKind::Struct;
    t.functor = functor;
    t.args = std::move(args);
    return push(std::move(t));
}

TermId
TermPool::mkList(const std::vector<TermId> &items, TermId tail)
{
    TermId list = tail == kNoTerm ? mkAtom(interner_.nilAtom()) : tail;
    for (auto it = items.rbegin(); it != items.rend(); ++it)
        list = mkStruct(consAtom_, {*it, list});
    return list;
}

const Term &
TermPool::at(TermId id) const
{
    panicIf(id < 0 || static_cast<std::size_t>(id) >= terms_.size(),
            "TermPool::at: bad TermId");
    return terms_[static_cast<std::size_t>(id)];
}

bool
TermPool::isAtom(TermId id, AtomId atom) const
{
    const Term &t = at(id);
    return t.kind == TermKind::Atom && t.functor == atom;
}

bool
TermPool::isStruct(TermId id, AtomId functor, int arity) const
{
    const Term &t = at(id);
    return t.kind == TermKind::Struct && t.functor == functor &&
           static_cast<int>(t.args.size()) == arity;
}

bool
TermPool::isCons(TermId id) const
{
    return isStruct(id, consAtom_, 2);
}

int
TermPool::arity(TermId id) const
{
    const Term &t = at(id);
    return t.kind == TermKind::Struct ? static_cast<int>(t.args.size())
                                      : 0;
}

namespace
{

/** Does @p name print as a plain unquoted atom? */
bool
plainAtom(const std::string &name)
{
    if (name.empty())
        return false;
    if (name == "[]" || name == "!" || name == ";" || name == "{}")
        return true;
    if (std::islower(static_cast<unsigned char>(name[0]))) {
        for (char c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
                return false;
        }
        return true;
    }
    static const std::string symbolic = "+-*/\\^<>=~:.?@#&$";
    for (char c : name) {
        if (symbolic.find(c) == std::string::npos)
            return false;
    }
    return true;
}

} // namespace

void
TermPool::strInto(TermId id, std::string &out) const
{
    const Term &t = at(id);
    switch (t.kind) {
      case TermKind::Var:
        out += interner_.name(t.functor);
        out += strprintf("_%d", t.varId);
        break;
      case TermKind::Int:
        out += strprintf("%lld", static_cast<long long>(t.value));
        break;
      case TermKind::Atom: {
        const std::string &name = interner_.name(t.functor);
        if (plainAtom(name)) {
            out += name;
        } else {
            out += '\'';
            out += name;
            out += '\'';
        }
        break;
      }
      case TermKind::Struct: {
        if (isCons(id)) {
            out += '[';
            strInto(t.args[0], out);
            TermId rest = t.args[1];
            while (isCons(rest)) {
                out += ',';
                strInto(at(rest).args[0], out);
                rest = at(rest).args[1];
            }
            if (!isAtom(rest, interner_.nilAtom())) {
                out += '|';
                strInto(rest, out);
            }
            out += ']';
            break;
        }
        const std::string &fname = interner_.name(t.functor);
        if (plainAtom(fname)) {
            out += fname;
        } else {
            out += '\'';
            out += fname;
            out += '\'';
        }
        out += '(';
        for (std::size_t i = 0; i < t.args.size(); ++i) {
            if (i)
                out += ',';
            strInto(t.args[i], out);
        }
        out += ')';
        break;
      }
    }
}

std::string
TermPool::str(TermId id) const
{
    std::string out;
    strInto(id, out);
    return out;
}

} // namespace symbol::prolog
