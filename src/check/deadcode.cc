/**
 * @file
 * Liveness-based cleanliness report (report-only: every finding is a
 * note).
 *
 *  - ic-dead-code: a side-effect-free instruction whose result is
 *    dead — never read before being overwritten on every path.
 *    Backward liveness over the augmented flow graph; blocks with no
 *    successors use an all-live boundary, so the report errs on the
 *    quiet side.
 *  - ic-redundant-move: a mov that re-establishes a copy relation
 *    that already holds. Detected by block-local value numbering —
 *    deliberately local, so every report is certain.
 */

#include "check/analyses.hh"

#include <numeric>

#include "support/text.hh"

namespace symbol::check
{

namespace
{

using intcode::IInstr;
using intcode::IOp;

/** Instruction with a result and no other effect. */
bool
isPure(IOp op)
{
    switch (op) {
      case IOp::Ld:
      case IOp::Add: case IOp::Sub: case IOp::Mul: case IOp::Div:
      case IOp::Mod: case IOp::And: case IOp::Or: case IOp::Xor:
      case IOp::Sll: case IOp::Sra:
      case IOp::Mov:
      case IOp::Movi:
      case IOp::MkTag:
      case IOp::GetTag:
        return true;
      default:
        return false;
    }
}

struct LiveLattice
{
    using Value = RegSet;

    const intcode::Program *prog;
    const intcode::Cfg *cfg;

    Value init() const { return RegSet(prog->numRegs, false); }
    /** Exit blocks: assume everything observable. */
    Value boundary() const { return RegSet(prog->numRegs, true); }

    bool
    join(Value &into, const Value &from) const
    {
        return into.unite(from);
    }

    Value
    transfer(int block, const Value &liveOut) const
    {
        Value v = liveOut;
        const intcode::Block &b =
            cfg->blocks[static_cast<std::size_t>(block)];
        for (int k = b.last; k >= b.first; --k) {
            const IInstr &i =
                prog->code[static_cast<std::size_t>(k)];
            int d = intcode::defReg(i);
            if (d >= 0)
                v.clear(d);
            int uses[2];
            int nu = 0;
            intcode::useRegs(i, uses, nu);
            for (int u = 0; u < nu; ++u)
                v.set(uses[u]);
        }
        return v;
    }

    void refineEdge(int, int, Value &) const {}
};

} // namespace

void
runDeadCode(CheckCtx &ctx)
{
    if (!ctx.icOk)
        return;
    const intcode::Program &p = *ctx.prog;
    LiveLattice lat{&p, &ctx.cfg};
    auto r = solve(ctx.fg, lat, /*forward=*/false);

    // Value-numbering scratch for the redundant-move scan.
    std::vector<int> vn(static_cast<std::size_t>(p.numRegs));
    int nextVn = 0;

    for (std::size_t b = 0; b < ctx.fg.size(); ++b) {
        if (!ctx.fg.reachable[b])
            continue;
        const intcode::Block &blk = ctx.cfg.blocks[b];

        // Dead results: replay liveness backwards from the block's
        // live-out set (r.in of a backward problem).
        RegSet live = r.in[b];
        for (int k = blk.last; k >= blk.first; --k) {
            const IInstr &i = p.code[static_cast<std::size_t>(k)];
            int d = intcode::defReg(i);
            if (d >= 0 && !live.test(d) && isPure(i.op))
                ctx.diag->report(
                    DiagId::IcDeadCode, k, false, i.bam,
                    strprintf("result r%d is never used", d));
            if (d >= 0)
                live.clear(d);
            int uses[2];
            int nu = 0;
            intcode::useRegs(i, uses, nu);
            for (int u = 0; u < nu; ++u)
                live.set(uses[u]);
        }

        // Redundant moves: block-local value numbering. Every
        // register starts in its own class at block entry.
        std::iota(vn.begin(), vn.end(), 0);
        nextVn = p.numRegs;
        for (int k = blk.first; k <= blk.last; ++k) {
            const IInstr &i = p.code[static_cast<std::size_t>(k)];
            if (i.op == IOp::Mov) {
                if (vn[static_cast<std::size_t>(i.rd)] ==
                    vn[static_cast<std::size_t>(i.ra)])
                    ctx.diag->report(
                        DiagId::IcRedundantMove, k, false, i.bam,
                        strprintf("r%d already holds the value of "
                                  "r%d",
                                  i.rd, i.ra));
                vn[static_cast<std::size_t>(i.rd)] =
                    vn[static_cast<std::size_t>(i.ra)];
            } else {
                int d = intcode::defReg(i);
                if (d >= 0)
                    vn[static_cast<std::size_t>(d)] = nextVn++;
            }
        }
    }
}

} // namespace symbol::check
