/**
 * @file
 * The reusable dataflow-analysis framework of the static IR analyzer
 * (DESIGN.md §11).
 *
 * Two pieces:
 *
 *  - FlowGraph: the analyzable view of an intcode::Cfg. The raw CFG
 *    leaves Jmpi successors empty (they are statically unknowable);
 *    a sound dataflow must instead treat every address-taken block
 *    as a possible Jmpi destination. FlowGraph adds exactly those
 *    edges, and computes reachability from the program entry over
 *    the augmented graph.
 *
 *  - solve(): a deterministic round-robin worklist solver, generic
 *    over a lattice `A` and the direction. The lattice supplies:
 *
 *        using Value = ...;
 *        Value boundary() const;         // entry/exit block input
 *        Value init() const;             // optimistic start value
 *        bool join(Value &into, const Value &from) const;
 *                                        // true if `into` changed
 *        Value transfer(int block, const Value &in) const;
 *        void refineEdge(int from, int to, Value &v) const;
 *                                        // optional edge filtering
 *
 *    Blocks are swept in index order (reverse order for backward
 *    problems) until a fixpoint; the sweep order is fixed, so the
 *    result — and every diagnostic derived from it — is bit-identical
 *    across runs and SYMBOL_JOBS settings.
 */

#ifndef SYMBOL_CHECK_DATAFLOW_HH
#define SYMBOL_CHECK_DATAFLOW_HH

#include <vector>

#include "intcode/cfg.hh"

namespace symbol::check
{

/** Augmented, analysis-ready view of an intcode CFG. */
struct FlowGraph
{
    /** Per-block successor / predecessor lists, including the
     *  Jmpi → every-address-taken-block augmentation. */
    std::vector<std::vector<int>> succs;
    std::vector<std::vector<int>> preds;
    /** Block containing the program entry. */
    int entry = 0;
    /** Reachable from the entry over the augmented graph. */
    std::vector<bool> reachable;

    std::size_t size() const { return succs.size(); }

    static FlowGraph of(const intcode::Program &prog,
                        const intcode::Cfg &cfg);
};

/** Per-block fixpoint of one dataflow problem. */
template <class Value>
struct DataflowResult
{
    /** Value at block entry (forward) / block exit (backward). */
    std::vector<Value> in;
    /** Value at block exit (forward) / block entry (backward). */
    std::vector<Value> out;
};

/**
 * Solve a forward or backward dataflow problem over @p g with
 * lattice @p a. Unreachable blocks keep init() as their input —
 * consumers skip them via g.reachable.
 */
template <class A>
DataflowResult<typename A::Value>
solve(const FlowGraph &g, const A &a, bool forward)
{
    const std::size_t n = g.size();
    DataflowResult<typename A::Value> r;
    r.in.assign(n, a.init());
    r.out.assign(n, a.init());

    const auto &inEdges = forward ? g.preds : g.succs;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t step = 0; step < n; ++step) {
            // Index order forward, reverse order backward: roughly
            // topological for the common fallthrough-heavy CFGs, so
            // the fixpoint converges in few sweeps.
            std::size_t b = forward ? step : n - 1 - step;
            typename A::Value in = a.init();
            bool boundary =
                forward ? static_cast<int>(b) == g.entry
                        : g.succs[b].empty();
            if (boundary)
                a.join(in, a.boundary());
            for (int p : inEdges[b]) {
                typename A::Value v =
                    r.out[static_cast<std::size_t>(p)];
                if (forward)
                    a.refineEdge(p, static_cast<int>(b), v);
                else
                    a.refineEdge(static_cast<int>(b), p, v);
                a.join(in, v);
            }
            typename A::Value out =
                a.transfer(static_cast<int>(b), in);
            r.in[b] = std::move(in);
            if (a.join(r.out[b], out))
                changed = true;
        }
    }
    return r;
}

} // namespace symbol::check

#endif // SYMBOL_CHECK_DATAFLOW_HH
