/**
 * @file
 * Structural well-formedness checks over both IR levels, plus
 * construction of the analyzable flow graph the dataflow passes run
 * on. This pass runs first (silently when deselected): the dataflow
 * passes assume resolvable labels, in-range branch targets and
 * consistent side tables, and are skipped on broken IR.
 */

#include "check/analyses.hh"

#include "support/text.hh"

namespace symbol::check
{

namespace
{

using bam::Op;
using bam::Operand;
using intcode::IInstr;
using intcode::IOp;

/** Reporter that stays silent when the pass is deselected, while
 *  still tracking whether an error-class finding occurred. */
struct Sink
{
    DiagnosticEngine *diag;
    bool report;
    bool sawError = false;

    void
    emit(DiagId id, int loc, bool bamLevel, int bam, std::string msg)
    {
        if (diagIdSeverity(id) == Severity::Error)
            sawError = true;
        if (report && diag)
            diag->report(id, loc, bamLevel, bam, std::move(msg));
    }
};

void
validateBam(const bam::Module &m, Sink &s)
{
    auto bad = [&](DiagId id, int loc, std::string msg) {
        s.emit(id, loc, true, -1, std::move(msg));
    };

    // Label definition census.
    std::vector<int> defs(static_cast<std::size_t>(
                              m.numLabels > 0 ? m.numLabels : 0),
                          0);
    for (std::size_t k = 0; k < m.code.size(); ++k) {
        const bam::Instr &i = m.code[k];
        if (i.op != Op::Label && i.op != Op::Procedure)
            continue;
        int lab = i.labs[0];
        if (lab < 0 || lab >= m.numLabels) {
            bad(DiagId::BamBadLabel, static_cast<int>(k),
                strprintf("label definition L%d never allocated",
                          lab));
            continue;
        }
        if (++defs[static_cast<std::size_t>(lab)] > 1)
            bad(DiagId::BamDupLabel, static_cast<int>(k),
                strprintf("label L%d defined more than once", lab));
    }

    auto checkUse = [&](int idx, int lab) {
        if (lab < 0 || lab >= m.numLabels)
            bad(DiagId::BamBadLabel, idx,
                strprintf("label L%d never allocated", lab));
        else if (defs[static_cast<std::size_t>(lab)] == 0)
            bad(DiagId::BamBadLabel, idx,
                strprintf("label L%d used but never defined", lab));
    };
    auto checkReg = [&](int idx, const Operand &o) {
        if (o.isReg() && (o.reg < 0 || o.reg >= m.numRegs))
            bad(DiagId::BamBadRegister, idx,
                strprintf("register r%d outside [0, %d)", o.reg,
                          m.numRegs));
    };
    auto needReg = [&](int idx, const Operand &o, const char *role) {
        if (!o.isReg())
            bad(DiagId::BamBadOperand, idx,
                strprintf("%s operand must be a register", role));
    };
    auto needVal = [&](int idx, const Operand &o, const char *role) {
        if (!o.isReg() && !o.isImm())
            bad(DiagId::BamBadOperand, idx,
                strprintf("%s operand must be a register or "
                          "immediate",
                          role));
    };

    for (std::size_t k = 0; k < m.code.size(); ++k) {
        const bam::Instr &i = m.code[k];
        int idx = static_cast<int>(k);
        checkReg(idx, i.a);
        checkReg(idx, i.b);
        checkReg(idx, i.c);
        switch (i.op) {
          case Op::Jump:
          case Op::Call:
          case Op::Try:
          case Op::Retry:
            checkUse(idx, i.labs[0]);
            break;
          case Op::TestTag:
          case Op::CmpBranch:
          case Op::EqualBranch:
            checkUse(idx, i.labs[0]);
            needVal(idx, i.a, "compared");
            break;
          case Op::SwitchTag:
            for (int w = 0; w < bam::kSwitchWays; ++w)
                checkUse(idx, i.labs[w]);
            needReg(idx, i.a, "scrutinee");
            break;
          case Op::JumpInd:
          case Op::Cut:
          case Op::Trail:
            needReg(idx, i.a, "source");
            break;
          case Op::Ld:
            needReg(idx, i.a, "base");
            needReg(idx, i.b, "destination");
            break;
          case Op::St:
            needReg(idx, i.a, "base");
            needVal(idx, i.b, "source");
            break;
          case Op::Bind:
            needReg(idx, i.a, "cell");
            needVal(idx, i.b, "value");
            break;
          case Op::Move:
          case Op::Deref:
          case Op::MkTag:
          case Op::GetTag:
            needVal(idx, i.a, "source");
            needReg(idx, i.b, "destination");
            break;
          case Op::Arith:
            needVal(idx, i.a, "first");
            needVal(idx, i.b, "second");
            needReg(idx, i.c, "destination");
            break;
          case Op::Out:
            needVal(idx, i.a, "source");
            break;
          default:
            break;
        }
    }

    // The module-level entry points.
    auto checkEntry = [&](int lab, const char *what) {
        if (lab < 0 || lab >= m.numLabels ||
            defs[static_cast<std::size_t>(lab)] == 0)
            bad(DiagId::BamNoEntry, -1,
                strprintf("%s label missing or undefined", what));
    };
    checkEntry(m.entryLabel, "entry ($start)");
    checkEntry(m.failLabel, "fail ($fail)");
}

void
validateIc(const intcode::Program &p, Sink &s)
{
    auto bad = [&](DiagId id, int loc, std::string msg) {
        s.emit(id, loc, false,
               loc >= 0 &&
                       loc < static_cast<int>(p.code.size())
                   ? p.code[static_cast<std::size_t>(loc)].bam
                   : -1,
               std::move(msg));
    };

    const int n = static_cast<int>(p.code.size());
    if (n == 0) {
        bad(DiagId::IcMalformed, -1, "empty program");
        return;
    }
    if (p.addressTaken.size() != p.code.size() ||
        p.procEntry.size() != p.code.size()) {
        bad(DiagId::IcMalformed, -1,
            strprintf("side tables sized %d/%d for %d instructions",
                      static_cast<int>(p.addressTaken.size()),
                      static_cast<int>(p.procEntry.size()), n));
        return;
    }
    if (p.entry < 0 || p.entry >= n)
        bad(DiagId::IcMalformed, -1,
            strprintf("entry %d outside [0, %d)", p.entry, n));

    for (int k = 0; k < n; ++k) {
        const IInstr &i = p.code[static_cast<std::size_t>(k)];
        // Branch / jump targets.
        if ((intcode::isCondBranch(i.op) || i.op == IOp::Jmp) &&
            (i.target < 0 || i.target >= n))
            bad(DiagId::IcBadTarget, k,
                strprintf("target %d outside [0, %d)", i.target, n));
        // Register operands actually read / written.
        int d = intcode::defReg(i);
        if (d >= 0 && d >= p.numRegs)
            bad(DiagId::IcBadRegister, k,
                strprintf("destination r%d outside [0, %d)", d,
                          p.numRegs));
        int uses[2];
        int nu = 0;
        intcode::useRegs(i, uses, nu);
        for (int u = 0; u < nu; ++u)
            if (uses[u] >= p.numRegs)
                bad(DiagId::IcBadRegister, k,
                    strprintf("source r%d outside [0, %d)", uses[u],
                              p.numRegs));
        // Provenance must stay inside the BAM opcode table.
        if (i.bam >= static_cast<int>(p.bamOps.size()))
            bad(DiagId::IcMalformed, k,
                strprintf("provenance bam %d outside the %d-entry "
                          "opcode table",
                          i.bam, static_cast<int>(p.bamOps.size())));
    }

    // Execution must not run off the end: the final instruction has
    // to be an unconditional transfer (a conditional branch can fall
    // through past it).
    IOp lastOp = p.code[static_cast<std::size_t>(n - 1)].op;
    if (lastOp != IOp::Jmp && lastOp != IOp::Jmpi &&
        lastOp != IOp::Halt)
        bad(DiagId::IcFallsOffEnd, n - 1,
            "execution can fall off the end of the code");
}

} // namespace

void
runStructural(CheckCtx &ctx, bool report)
{
    Sink bamSink{ctx.diag, report};
    validateBam(*ctx.module, bamSink);
    ctx.bamOk = !bamSink.sawError;

    Sink icSink{ctx.diag, report};
    validateIc(*ctx.prog, icSink);
    ctx.icOk = !icSink.sawError;

    if (!ctx.icOk)
        return;
    // The IR is sound enough to build the analyzable graph the
    // dataflow passes share.
    ctx.cfg = intcode::Cfg::build(*ctx.prog);
    ctx.fg = FlowGraph::of(*ctx.prog, ctx.cfg);
    if (!report || !ctx.diag)
        return;
    for (std::size_t b = 0; b < ctx.fg.size(); ++b) {
        if (ctx.fg.reachable[b])
            continue;
        int first = ctx.cfg.blocks[b].first;
        ctx.diag->report(
            DiagId::IcUnreachable, first, false,
            ctx.prog->code[static_cast<std::size_t>(first)].bam,
            strprintf("block of %d instruction(s) unreachable from "
                      "any entry point",
                      ctx.cfg.blocks[b].size()));
    }
}

} // namespace symbol::check
