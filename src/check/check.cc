#include "check/check.hh"

#include <memory>

#include "check/analyses.hh"
#include "pass/pass.hh"
#include "support/diagnostics.hh"
#include "support/text.hh"

namespace symbol::check
{

const char *
checkPassName(CheckPass p)
{
    switch (p) {
      case CheckPass::Structural: return "structural";
      case CheckPass::DefInit: return "definit";
      case CheckPass::Tags: return "tags";
      case CheckPass::Balance: return "balance";
      case CheckPass::DeadCode: return "deadcode";
    }
    return "?";
}

const char *
checkPassPipelineName(CheckPass p)
{
    switch (p) {
      case CheckPass::Structural: return "check-structural";
      case CheckPass::DefInit: return "check-definit";
      case CheckPass::Tags: return "check-tags";
      case CheckPass::Balance: return "check-balance";
      case CheckPass::DeadCode: return "check-deadcode";
    }
    return "?";
}

unsigned
parsePassList(const std::string &list)
{
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (int k = 0; k < kNumCheckPasses; ++k) {
            CheckPass p = static_cast<CheckPass>(k);
            if (name == checkPassName(p)) {
                mask |= checkPassBit(p);
                found = true;
                break;
            }
        }
        if (!found)
            throw CompileError(strprintf(
                "unknown analyzer pass '%s' (available: structural, "
                "definit, tags, balance, deadcode)",
                name.c_str()));
    }
    if (!mask)
        throw CompileError("empty analyzer pass list");
    return mask;
}

DiagnosticEngine
analyze(const bam::Module &module, const intcode::Program &prog,
        const AnalyzeOptions &opts, pass::PassInstrumentation *instr)
{
    DiagnosticEngine diag;
    diag.promoteWarnings(opts.werror);

    CheckCtx ctx;
    ctx.module = &module;
    ctx.prog = &prog;
    ctx.diag = &diag;

    auto selected = [&](CheckPass p) {
        return (opts.passes & checkPassBit(p)) != 0;
    };

    pass::PassManager<CheckCtx> pm(instr);
    auto add = [&](CheckPass p, std::function<void(CheckCtx &)> fn) {
        if (!selected(p))
            return;
        pm.add(std::make_unique<pass::FunctionPass<CheckCtx>>(
            checkPassPipelineName(p), std::move(fn),
            [](const CheckCtx &c) {
                return static_cast<std::uint64_t>(
                    c.prog->code.size() + c.module->code.size());
            },
            [](const CheckCtx &c) {
                return c.diag->total();
            }));
    };

    add(CheckPass::Structural,
        [](CheckCtx &c) { runStructural(c, /*report=*/true); });
    add(CheckPass::DefInit, [](CheckCtx &c) { runDefInit(c); });
    add(CheckPass::Tags, [](CheckCtx &c) { runTags(c); });
    add(CheckPass::Balance, [](CheckCtx &c) { runBalance(c); });
    add(CheckPass::DeadCode, [](CheckCtx &c) { runDeadCode(c); });

    // The dataflow passes need the ok-flags and the flow graph even
    // when the user deselected 'structural': run it silently first.
    if (!selected(CheckPass::Structural))
        runStructural(ctx, /*report=*/false);

    pm.run(ctx);
    return diag;
}

} // namespace symbol::check
