/**
 * @file
 * The diagnostics engine of the static IR analyzer (DESIGN.md §11).
 *
 * Every finding of every analysis is a Diagnostic: a stable id, a
 * severity, the IR location (a BAM or an IntCode instruction index)
 * and — for IntCode findings — the provenance back-link to the BAM
 * instruction the offending ICI was expanded from. Ids are stable
 * strings ("ic-uninit-read", "bam-env-underflow", ...) so golden
 * outputs, grep-ability and the --analyze=LIST selection survive
 * refactors of the enum order.
 *
 * The engine records the first kMaxRecorded findings verbatim and
 * counts everything, so a pathological input cannot explode a report
 * while the per-id totals stay exact (they are what the EXPERIMENTS
 * sweep pins).
 */

#ifndef SYMBOL_CHECK_DIAG_HH
#define SYMBOL_CHECK_DIAG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace symbol::check
{

/** Severity of a finding. */
enum class Severity : std::uint8_t
{
    Note,    ///< report-only observation (dead code, redundant move)
    Warning, ///< suspicious but not provably wrong
    Error,   ///< the IR is ill-formed or provably miscompiled
};

/** Printable severity name ("note" / "warning" / "error"). */
const char *severityName(Severity s);

/** Stable diagnostic identifiers, one per distinct finding class. */
enum class DiagId : std::uint8_t
{
    // Structural well-formedness, IntCode level.
    IcMalformed,     ///< side tables inconsistent with the code
    IcBadTarget,     ///< branch/jump target outside the program
    IcBadRegister,   ///< register operand outside [0, numRegs)
    IcFallsOffEnd,   ///< execution can fall off the end of the code
    IcUnreachable,   ///< block unreachable from any entry point
    // Structural well-formedness, BAM level.
    BamBadLabel,     ///< label used but never defined / allocated
    BamDupLabel,     ///< label defined more than once
    BamBadOperand,   ///< operand kind does not fit the opcode
    BamBadRegister,  ///< register operand outside [0, numRegs)
    BamNoEntry,      ///< entry/fail label missing or undefined
    // Def-before-use (reaching definitions).
    IcUninitRead,    ///< read with no reaching definition on any path
    IcMaybeUninit,   ///< temporary not defined on every path
    // Tag-domain abstract interpretation.
    TagBadJump,      ///< jmpi through a register that is never Cod
    TagBadMemBase,   ///< ld/st base that can only hold a Fun word
    TagDeadBranch,   ///< tag branch statically always or never taken
    // Choice-point / environment balance (BAM level).
    BamEnvUnderflow,    ///< deallocate with no live environment
    BamChoiceUnderflow, ///< retry/trust with no live choice point
    BamCutDead,         ///< cut where provably no choice point lives
    BamUnbalancedJoin,  ///< env/cp depth differs across merging paths
    // Liveness-based cleanliness (report-only).
    IcDeadCode,      ///< side-effect-free result never used
    IcRedundantMove, ///< move that re-establishes an existing copy
};

constexpr int kNumDiagIds = 21;

/** Stable string id of @p id (e.g. "ic-uninit-read"). */
const char *diagIdName(DiagId id);

/** Default severity of @p id. */
Severity diagIdSeverity(DiagId id);

/** One finding, anchored to an IR location. */
struct Diagnostic
{
    DiagId id = DiagId::IcMalformed;
    Severity severity = Severity::Error;
    /** Instruction index in the IR the analysis ran over (-1 when
     *  the finding is about the whole module/program). */
    int loc = -1;
    /** True when loc indexes the BAM module, false for IntCode. */
    bool bamLevel = false;
    /** Provenance: originating BAM instruction of an IntCode
     *  finding (-1 when unknown / not applicable). */
    int bam = -1;
    std::string message;

    /** Render as "severity[id] ici@LOC (bam N): message". */
    std::string str() const;
};

/** Aggregate result of one analyzer run over one workload. */
class DiagnosticEngine
{
  public:
    /** Findings recorded verbatim (discovery order, capped). */
    static constexpr std::size_t kMaxRecorded = 200;

    /** Record a finding with the id's default severity. */
    void report(DiagId id, int loc, bool bamLevel, int bam,
                std::string message);

    /** Promote warnings to errors at report time (--Werror). */
    void promoteWarnings(bool on) { werror_ = on; }

    /** @name Totals (exact, never capped) */
    /** @{ */
    std::uint64_t errors() const { return errors_; }
    std::uint64_t warnings() const { return warnings_; }
    std::uint64_t notes() const { return notes_; }
    std::uint64_t total() const
    {
        return errors_ + warnings_ + notes_;
    }
    /** Findings of one id. */
    std::uint64_t count(DiagId id) const
    {
        return byId_[static_cast<std::size_t>(id)];
    }
    /** @} */

    const std::vector<Diagnostic> &recorded() const { return diags_; }

    bool ok() const { return errors_ == 0; }

    /**
     * Multi-line report: every recorded finding, then the per-id
     * totals of ids that fired, then a one-line summary. Byte-stable
     * for a fixed input — it is what the golden tests pin.
     */
    std::string str() const;

    /** The one-line summary alone. */
    std::string summary() const;

  private:
    std::vector<Diagnostic> diags_;
    bool werror_ = false;
    std::uint64_t errors_ = 0;
    std::uint64_t warnings_ = 0;
    std::uint64_t notes_ = 0;
    std::array<std::uint64_t, kNumDiagIds> byId_{};
};

} // namespace symbol::check

#endif // SYMBOL_CHECK_DIAG_HH
