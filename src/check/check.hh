/**
 * @file
 * Public entry point of the static IR analyzer (DESIGN.md §11).
 *
 * analyze() runs a configurable set of lint/verification passes over
 * one compiled workload (the BAM module and the IntCode program it
 * was expanded into) and returns the aggregated DiagnosticEngine.
 * Each analysis runs as a named FunctionPass inside a PassManager, so
 * --time-passes and --stats-json cover the analyzer like any other
 * stage of the toolchain.
 *
 * The five passes, in fixed order:
 *
 *   structural  CFG / side-table well-formedness of both IRs. Runs
 *               (silently if deselected) before any dataflow pass —
 *               the others assume resolvable labels and in-range
 *               targets and are skipped on structurally broken IR.
 *   definit     def-before-use via reaching definitions (may + must).
 *   tags        tag-domain abstract interpretation over the ICI tag
 *               lattice; flags primitives whose tag preconditions
 *               cannot be met and statically decided tag branches.
 *   balance     choice-point / environment balance at the BAM level.
 *   deadcode    liveness-based dead-code and redundant-move report.
 *
 * Everything is a deterministic fixed-order walk: for a given input
 * and option set the report is byte-identical, independent of
 * SYMBOL_JOBS or host.
 */

#ifndef SYMBOL_CHECK_CHECK_HH
#define SYMBOL_CHECK_CHECK_HH

#include <string>

#include "bam/instr.hh"
#include "check/diag.hh"
#include "intcode/instr.hh"
#include "pass/instrument.hh"

namespace symbol::check
{

/** The analyzer's passes, in execution order. */
enum class CheckPass : std::uint8_t
{
    Structural,
    DefInit,
    Tags,
    Balance,
    DeadCode,
};

constexpr int kNumCheckPasses = 5;

/** Short selection name ("structural", "definit", ...). */
const char *checkPassName(CheckPass p);

/** Instrumentation key ("check-structural", "check-definit", ...). */
const char *checkPassPipelineName(CheckPass p);

/** Bitmask with every pass selected. */
constexpr unsigned kAllCheckPasses = (1u << kNumCheckPasses) - 1;

constexpr unsigned
checkPassBit(CheckPass p)
{
    return 1u << static_cast<unsigned>(p);
}

/**
 * Parse a comma-separated pass list ("structural,balance") into a
 * selection mask. Throws CompileError on an unknown pass name.
 */
unsigned parsePassList(const std::string &list);

/** Analyzer configuration. */
struct AnalyzeOptions
{
    /** Selected passes (bit per CheckPass). */
    unsigned passes = kAllCheckPasses;
    /** Promote warnings to errors (--Werror). */
    bool werror = false;
};

/**
 * Run the selected analyses over @p module / @p prog, recording each
 * pass into @p instr (null = the process-wide default sink), and
 * return the aggregated diagnostics.
 */
DiagnosticEngine analyze(const bam::Module &module,
                         const intcode::Program &prog,
                         const AnalyzeOptions &opts = {},
                         pass::PassInstrumentation *instr = nullptr);

} // namespace symbol::check

#endif // SYMBOL_CHECK_CHECK_HH
