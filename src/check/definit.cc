/**
 * @file
 * Def-before-use checking via reaching definitions.
 *
 * A single forward problem tracks two register sets per program
 * point: may-defined (union join) and must-defined (intersection
 * join). A read of a register that is not even may-defined has no
 * reaching definition on *any* path — a definite translator bug
 * (ic-uninit-read, error). A read that is may- but not must-defined
 * is only initialized on some paths (ic-maybe-uninit, warning).
 *
 * Both findings are restricted to per-procedure temporaries
 * (r >= Regs::kT0): the machine-state and argument registers are
 * live across procedure boundaries the intraprocedural flow graph
 * cannot see, and the emulator zero-initializes the register file,
 * so flagging them would be noise. Each register is reported at its
 * first offending use only.
 */

#include "check/analyses.hh"

#include "bam/word.hh"
#include "support/text.hh"

namespace symbol::check
{

namespace
{

/** may/must defined register sets at one program point. */
struct DefVal
{
    RegSet may;
    RegSet must;
};

struct DefInitLattice
{
    using Value = DefVal;

    const intcode::Program *prog;
    const intcode::Cfg *cfg;

    Value
    init() const
    {
        // Optimistic: nothing may-defined, everything must-defined
        // (top of the intersection lattice).
        return {RegSet(prog->numRegs, false),
                RegSet(prog->numRegs, true)};
    }

    Value
    boundary() const
    {
        // The machine-state, runtime and argument registers are set
        // up by the environment / callers; only temporaries start
        // undefined.
        Value v{RegSet(prog->numRegs, false),
                RegSet(prog->numRegs, false)};
        for (int r = 0; r < prog->numRegs && r < bam::Regs::kT0; ++r) {
            v.may.set(r);
            v.must.set(r);
        }
        return v;
    }

    bool
    join(Value &into, const Value &from) const
    {
        bool c = into.may.unite(from.may);
        if (into.must.intersect(from.must))
            c = true;
        return c;
    }

    Value
    transfer(int block, const Value &in) const
    {
        Value v = in;
        const intcode::Block &b =
            cfg->blocks[static_cast<std::size_t>(block)];
        for (int k = b.first; k <= b.last; ++k) {
            int d = intcode::defReg(
                prog->code[static_cast<std::size_t>(k)]);
            if (d >= 0) {
                v.may.set(d);
                v.must.set(d);
            }
        }
        return v;
    }

    void refineEdge(int, int, Value &) const {}
};

} // namespace

void
runDefInit(CheckCtx &ctx)
{
    if (!ctx.icOk)
        return;
    const intcode::Program &p = *ctx.prog;
    DefInitLattice lat{&p, &ctx.cfg};
    auto r = solve(ctx.fg, lat, /*forward=*/true);

    std::vector<bool> flagged(static_cast<std::size_t>(p.numRegs),
                              false);
    for (std::size_t b = 0; b < ctx.fg.size(); ++b) {
        if (!ctx.fg.reachable[b])
            continue;
        DefVal cur = r.in[b];
        const intcode::Block &blk = ctx.cfg.blocks[b];
        for (int k = blk.first; k <= blk.last; ++k) {
            const intcode::IInstr &i =
                p.code[static_cast<std::size_t>(k)];
            int uses[2];
            int nu = 0;
            intcode::useRegs(i, uses, nu);
            for (int u = 0; u < nu; ++u) {
                int reg = uses[u];
                if (reg < bam::Regs::kT0 ||
                    flagged[static_cast<std::size_t>(reg)])
                    continue;
                if (!cur.may.test(reg)) {
                    flagged[static_cast<std::size_t>(reg)] = true;
                    ctx.diag->report(
                        DiagId::IcUninitRead, k, false, i.bam,
                        strprintf("r%d read with no reaching "
                                  "definition on any path",
                                  reg));
                } else if (!cur.must.test(reg)) {
                    flagged[static_cast<std::size_t>(reg)] = true;
                    ctx.diag->report(
                        DiagId::IcMaybeUninit, k, false, i.bam,
                        strprintf("r%d not defined on every path to "
                                  "this read",
                                  reg));
                }
            }
            int d = intcode::defReg(i);
            if (d >= 0) {
                cur.may.set(d);
                cur.must.set(d);
            }
        }
    }
}

} // namespace symbol::check
