/**
 * @file
 * Choice-point / environment balance checking at the BAM level.
 *
 * A forward problem over a node-per-instruction flow graph of the
 * BAM module tracks two depths: environment frames pushed by
 * Allocate and choice points pushed by Try. Each is an element of
 * {Bottom, Known(n), Unknown}: procedure entries, retry targets and
 * the fail routine start at Unknown (they are entered from callers
 * and the backtracker, which the intraprocedural graph cannot see);
 * only $start starts at Known(0, 0). A Call preserves the
 * environment depth but clobbers the choice-point depth (the callee
 * may legitimately leave choice points behind).
 *
 * Findings fire only at Known(0) — provable on every path — so the
 * analysis is noise-free on compiler output while still catching
 * hand-built unbalanced code:
 *  - bam-env-underflow (error): deallocate with no live environment.
 *  - bam-choice-underflow (error): retry/trust with no live choice
 *    point.
 *  - bam-cut-dead (error): cut where provably no choice point lives.
 *  - bam-unbalanced-join (warning): two paths merge at an ordinary
 *    label with different Known depths.
 *
 * Reuses the generic solver: FlowGraph is just graph shape, nothing
 * in solve() is IntCode-specific.
 */

#include "check/analyses.hh"

#include "support/text.hh"

namespace symbol::check
{

namespace
{

using bam::Op;

constexpr int kBot = -1; ///< unreached
constexpr int kUnk = -2; ///< any depth
/** Depths above this collapse to Unknown (bounds the lattice). */
constexpr int kMaxDepth = 64;

/** Environment / choice-point depth pair. */
struct Bal
{
    int env = kBot;
    int cp = kBot;

    bool
    operator==(const Bal &o) const
    {
        return env == o.env && cp == o.cp;
    }
};

int
joinDepth(int a, int b)
{
    if (a == kBot)
        return b;
    if (b == kBot)
        return a;
    return a == b ? a : kUnk;
}

int
bump(int d)
{
    return d < 0 || d >= kMaxDepth ? kUnk : d + 1;
}

int
drop(int d)
{
    // Known(0) stays 0: the underflow is reported, not propagated.
    return d > 0 ? d - 1 : d;
}

/** Apply one instruction's effect on the depths. */
void
applyBal(const bam::Instr &i, Bal &v)
{
    switch (i.op) {
      case Op::Allocate:
        v.env = bump(v.env);
        break;
      case Op::Deallocate:
        v.env = drop(v.env);
        break;
      case Op::Try:
        v.cp = bump(v.cp);
        break;
      case Op::Trust:
        v.cp = drop(v.cp);
        break;
      case Op::Call:
        // The callee may leave choice points behind on success.
        v.cp = kUnk;
        break;
      case Op::Cut:
        // Cut discards an unknown number of choice points.
        v.cp = kUnk;
        break;
      default:
        break;
    }
}

struct BalLattice
{
    using Value = Bal;

    const bam::Module *module;
    const std::vector<bool> *seeds;

    Value init() const { return {}; }
    Value boundary() const { return {0, 0}; }

    bool
    join(Value &into, const Value &from) const
    {
        Bal v{joinDepth(into.env, from.env),
              joinDepth(into.cp, from.cp)};
        bool c = !(v == into);
        into = v;
        return c;
    }

    Value
    transfer(int node, const Value &in) const
    {
        Bal v = (*seeds)[static_cast<std::size_t>(node)]
                    ? Bal{kUnk, kUnk}
                    : in;
        if (v.env == kBot && v.cp == kBot)
            return v;
        applyBal(module->code[static_cast<std::size_t>(node)], v);
        return v;
    }

    void refineEdge(int, int, Value &) const {}
};

std::string
depthStr(int d)
{
    if (d == kUnk)
        return "?";
    return std::to_string(d);
}

} // namespace

void
runBalance(CheckCtx &ctx)
{
    if (!ctx.bamOk)
        return;
    const bam::Module &m = *ctx.module;
    const int n = static_cast<int>(m.code.size());
    if (n == 0)
        return;

    // Label -> defining instruction (bamOk guarantees uniqueness).
    std::vector<int> labAt(static_cast<std::size_t>(m.numLabels), -1);
    for (int k = 0; k < n; ++k) {
        const bam::Instr &i = m.code[static_cast<std::size_t>(k)];
        if (i.op == Op::Label || i.op == Op::Procedure)
            labAt[static_cast<std::size_t>(i.labs[0])] = k;
    }

    // Node-per-instruction flow graph.
    FlowGraph g;
    g.succs.assign(static_cast<std::size_t>(n), {});
    g.preds.assign(static_cast<std::size_t>(n), {});
    g.entry = labAt[static_cast<std::size_t>(m.entryLabel)];
    auto edge = [&](int from, int to) {
        if (to < 0 || to >= n)
            return;
        g.succs[static_cast<std::size_t>(from)].push_back(to);
        g.preds[static_cast<std::size_t>(to)].push_back(from);
    };
    for (int k = 0; k < n; ++k) {
        const bam::Instr &i = m.code[static_cast<std::size_t>(k)];
        auto lab = [&](int w) {
            return labAt[static_cast<std::size_t>(i.labs[w])];
        };
        switch (i.op) {
          case Op::Jump:
            edge(k, lab(0));
            break;
          case Op::SwitchTag:
            for (int w = 0; w < bam::kSwitchWays; ++w)
                edge(k, lab(w));
            break;
          case Op::TestTag:
          case Op::CmpBranch:
          case Op::EqualBranch:
            edge(k, lab(0));
            edge(k, k + 1);
            break;
          case Op::Return:
          case Op::JumpInd:
          case Op::Halt:
          case Op::Fail:
            // Exits of the intraprocedural graph.
            break;
          default:
            // Including Call (returns to the next instruction),
            // Try/Retry (the retry target is entered only via the
            // backtracker and seeded Unknown below).
            edge(k, k + 1);
            break;
        }
    }

    // Unknown-entry seeds: procedure entries, retry targets, $fail.
    std::vector<bool> seeds(static_cast<std::size_t>(n), false);
    for (int k = 0; k < n; ++k) {
        const bam::Instr &i = m.code[static_cast<std::size_t>(k)];
        if (i.op == Op::Procedure)
            seeds[static_cast<std::size_t>(k)] = true;
        if (i.op == Op::Try || i.op == Op::Retry) {
            int t = labAt[static_cast<std::size_t>(i.labs[0])];
            if (t >= 0)
                seeds[static_cast<std::size_t>(t)] = true;
        }
    }
    if (m.failLabel >= 0) {
        int t = labAt[static_cast<std::size_t>(m.failLabel)];
        if (t >= 0)
            seeds[static_cast<std::size_t>(t)] = true;
    }
    // $start itself is entered only at machine start, at depth 0.
    seeds[static_cast<std::size_t>(g.entry)] = false;

    BalLattice lat{&m, &seeds};
    auto r = solve(g, lat, /*forward=*/true);

    for (int k = 0; k < n; ++k) {
        const bam::Instr &i = m.code[static_cast<std::size_t>(k)];
        Bal v = seeds[static_cast<std::size_t>(k)]
                    ? Bal{kUnk, kUnk}
                    : r.in[static_cast<std::size_t>(k)];
        if (v.env == kBot && v.cp == kBot)
            continue; // unreachable
        switch (i.op) {
          case Op::Deallocate:
            if (v.env == 0)
                ctx.diag->report(
                    DiagId::BamEnvUnderflow, k, true, -1,
                    "deallocate with no live environment frame");
            break;
          case Op::Retry:
            if (v.cp == 0)
                ctx.diag->report(
                    DiagId::BamChoiceUnderflow, k, true, -1,
                    "retry with no live choice point");
            break;
          case Op::Trust:
            if (v.cp == 0)
                ctx.diag->report(
                    DiagId::BamChoiceUnderflow, k, true, -1,
                    "trust with no live choice point");
            break;
          case Op::Cut:
            if (v.cp == 0)
                ctx.diag->report(
                    DiagId::BamCutDead, k, true, -1,
                    "cut where provably no choice point lives");
            break;
          case Op::Label:
            // Join sanity at ordinary merge labels.
            if (!seeds[static_cast<std::size_t>(k)] &&
                g.preds[static_cast<std::size_t>(k)].size() > 1) {
                Bal merged{kBot, kBot};
                bool conflict = false;
                for (int p : g.preds[static_cast<std::size_t>(k)]) {
                    const Bal &o =
                        r.out[static_cast<std::size_t>(p)];
                    if (o.env == kBot && o.cp == kBot)
                        continue;
                    if ((merged.env >= 0 && o.env >= 0 &&
                         merged.env != o.env) ||
                        (merged.cp >= 0 && o.cp >= 0 &&
                         merged.cp != o.cp))
                        conflict = true;
                    merged.env = joinDepth(merged.env, o.env);
                    merged.cp = joinDepth(merged.cp, o.cp);
                }
                if (conflict)
                    ctx.diag->report(
                        DiagId::BamUnbalancedJoin, k, true, -1,
                        strprintf("env/choice depth differs across "
                                  "merging paths (env %s, cp %s "
                                  "after join)",
                                  depthStr(merged.env).c_str(),
                                  depthStr(merged.cp).c_str()));
            }
            break;
          default:
            break;
        }
    }
}

} // namespace symbol::check
