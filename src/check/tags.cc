/**
 * @file
 * Tag-domain abstract interpretation over the ICI programs.
 *
 * Abstract value: one bit per Tag (7 bits) per virtual register —
 * the set of tags the register can carry at that point. Joins are
 * bitwise union; tag branches refine the value along their outgoing
 * edges (after `btageq r, Lst -> L` the register is known to be Lst
 * on the taken edge and known not-Lst on the fallthrough), which is
 * what gives the analysis its precision on the paper's tag-dispatch
 * code.
 *
 * Findings:
 *  - tag-bad-jump (error): jmpi through a register whose tag set
 *    excludes Cod — the jump can never target code.
 *  - tag-bad-mem-base (warning): ld/st base register that can only
 *    hold a Fun word; functor headers are never addresses.
 *  - tag-dead-branch (note): a tag branch statically always or never
 *    taken. Legitimate in compiled dispatch chains, so report-only.
 */

#include "check/analyses.hh"

#include "support/text.hh"

namespace symbol::check
{

namespace
{

using intcode::IInstr;
using intcode::IOp;

/** All seven architectural tags. */
constexpr unsigned kAnyTag = (1u << bam::kNumTags) - 1;

constexpr unsigned
tagBit(bam::Tag t)
{
    return 1u << static_cast<unsigned>(t);
}

/** Apply one instruction's effect on the per-register tag sets. */
void
applyTags(const IInstr &i, std::vector<std::uint8_t> &v)
{
    switch (i.op) {
      case IOp::Ld:
        // Memory contents are unknown.
        v[static_cast<std::size_t>(i.rd)] = kAnyTag;
        break;
      case IOp::Add: case IOp::Sub: case IOp::Mul: case IOp::Div:
      case IOp::Mod: case IOp::And: case IOp::Or: case IOp::Xor:
      case IOp::Sll: case IOp::Sra:
      case IOp::GetTag:
        v[static_cast<std::size_t>(i.rd)] = tagBit(bam::Tag::Int);
        break;
      case IOp::Mov:
        v[static_cast<std::size_t>(i.rd)] =
            v[static_cast<std::size_t>(i.ra)];
        break;
      case IOp::Movi:
        v[static_cast<std::size_t>(i.rd)] =
            static_cast<std::uint8_t>(
                1u << static_cast<unsigned>(bam::wordTag(i.imm)));
        break;
      case IOp::MkTag:
        v[static_cast<std::size_t>(i.rd)] =
            static_cast<std::uint8_t>(tagBit(i.tag));
        break;
      default:
        break;
    }
}

struct TagLattice
{
    using Value = std::vector<std::uint8_t>;

    const intcode::Program *prog;
    const intcode::Cfg *cfg;

    Value
    init() const
    {
        return Value(static_cast<std::size_t>(prog->numRegs), 0);
    }

    Value
    boundary() const
    {
        // The machine zero-initializes the register file: word 0 is
        // <Ref, 0>.
        return Value(static_cast<std::size_t>(prog->numRegs),
                     tagBit(bam::Tag::Ref));
    }

    bool
    join(Value &into, const Value &from) const
    {
        bool c = false;
        for (std::size_t k = 0; k < into.size(); ++k) {
            std::uint8_t v = into[k] | from[k];
            if (v != into[k]) {
                into[k] = v;
                c = true;
            }
        }
        return c;
    }

    Value
    transfer(int block, const Value &in) const
    {
        Value v = in;
        const intcode::Block &b =
            cfg->blocks[static_cast<std::size_t>(block)];
        for (int k = b.first; k <= b.last; ++k)
            applyTags(prog->code[static_cast<std::size_t>(k)], v);
        return v;
    }

    void
    refineEdge(int from, int to, Value &v) const
    {
        const intcode::Block &b =
            cfg->blocks[static_cast<std::size_t>(from)];
        const IInstr &t =
            prog->code[static_cast<std::size_t>(b.last)];
        if (t.op != IOp::BtagEq && t.op != IOp::BtagNe)
            return;
        int takenBlock =
            cfg->blockOf[static_cast<std::size_t>(t.target)];
        int fallBlock =
            b.last + 1 < static_cast<int>(prog->code.size())
                ? cfg->blockOf[static_cast<std::size_t>(b.last + 1)]
                : -1;
        if (takenBlock == fallBlock)
            return;
        // On the edge where tag(ra) == t.tag holds, narrow to that
        // tag; on the other, remove it.
        bool eqEdge = t.op == IOp::BtagEq ? to == takenBlock
                                          : to == fallBlock;
        std::uint8_t mask = static_cast<std::uint8_t>(
            eqEdge ? tagBit(t.tag) : kAnyTag & ~tagBit(t.tag));
        v[static_cast<std::size_t>(t.ra)] &= mask;
    }
};

} // namespace

void
runTags(CheckCtx &ctx)
{
    if (!ctx.icOk)
        return;
    const intcode::Program &p = *ctx.prog;
    TagLattice lat{&p, &ctx.cfg};
    auto r = solve(ctx.fg, lat, /*forward=*/true);

    for (std::size_t b = 0; b < ctx.fg.size(); ++b) {
        if (!ctx.fg.reachable[b])
            continue;
        std::vector<std::uint8_t> cur = r.in[b];
        const intcode::Block &blk = ctx.cfg.blocks[b];
        for (int k = blk.first; k <= blk.last; ++k) {
            const IInstr &i = p.code[static_cast<std::size_t>(k)];
            auto tags = [&](int reg) {
                return cur[static_cast<std::size_t>(reg)];
            };
            switch (i.op) {
              case IOp::Jmpi:
                if (tags(i.ra) &&
                    !(tags(i.ra) & tagBit(bam::Tag::Cod)))
                    ctx.diag->report(
                        DiagId::TagBadJump, k, false, i.bam,
                        strprintf("jmpi through r%d, which can "
                                  "never hold a Cod word",
                                  i.ra));
                break;
              case IOp::Ld:
              case IOp::St:
                if (tags(i.ra) == tagBit(bam::Tag::Fun))
                    ctx.diag->report(
                        DiagId::TagBadMemBase, k, false, i.bam,
                        strprintf("memory base r%d can only hold a "
                                  "Fun word, never an address",
                                  i.ra));
                break;
              case IOp::BtagEq:
              case IOp::BtagNe:
                if (tags(i.ra)) {
                    bool never = !(tags(i.ra) & tagBit(i.tag));
                    bool always = tags(i.ra) == tagBit(i.tag);
                    if (i.op == IOp::BtagNe)
                        std::swap(never, always);
                    if (never || always)
                        ctx.diag->report(
                            DiagId::TagDeadBranch, k, false, i.bam,
                            strprintf("tag branch on r%d statically "
                                      "%s taken",
                                      i.ra, never ? "never"
                                                  : "always"));
                }
                break;
              default:
                break;
            }
            applyTags(i, cur);
        }
    }
}

} // namespace symbol::check
