/**
 * @file
 * Internal plumbing shared by the analyzer passes — not part of the
 * public src/check interface (use check/check.hh).
 */

#ifndef SYMBOL_CHECK_ANALYSES_HH
#define SYMBOL_CHECK_ANALYSES_HH

#include <cstdint>
#include <vector>

#include "bam/instr.hh"
#include "check/dataflow.hh"
#include "check/diag.hh"
#include "intcode/cfg.hh"

namespace symbol::check
{

/** The pipeline context the analyzer passes share. */
struct CheckCtx
{
    const bam::Module *module = nullptr;
    const intcode::Program *prog = nullptr;
    DiagnosticEngine *diag = nullptr;
    /** Set by the structural pass; dataflow passes gate on them. */
    bool bamOk = false;
    bool icOk = false;
    /** Built by the structural pass once the IntCode validates. */
    intcode::Cfg cfg;
    FlowGraph fg;
};

/**
 * Structural validation. With @p report false the pass stays silent
 * (used when the user deselected 'structural' but a dependent
 * dataflow pass still needs the ok-flags and the flow graph).
 */
void runStructural(CheckCtx &ctx, bool report);

void runDefInit(CheckCtx &ctx);
void runTags(CheckCtx &ctx);
void runBalance(CheckCtx &ctx);
void runDeadCode(CheckCtx &ctx);

/** A fixed-width bitset over virtual registers. */
class RegSet
{
  public:
    RegSet() = default;
    explicit RegSet(int numRegs, bool full = false)
        : n_(numRegs),
          bits_(static_cast<std::size_t>((numRegs + 63) / 64),
                full ? ~0ull : 0ull)
    {
        trim();
    }

    bool
    test(int r) const
    {
        return (bits_[static_cast<std::size_t>(r) / 64] >> (r % 64)) &
               1ull;
    }
    void
    set(int r)
    {
        bits_[static_cast<std::size_t>(r) / 64] |= 1ull << (r % 64);
    }
    void
    clear(int r)
    {
        bits_[static_cast<std::size_t>(r) / 64] &=
            ~(1ull << (r % 64));
    }

    /** this |= o; true when this changed. */
    bool
    unite(const RegSet &o)
    {
        bool changed = false;
        for (std::size_t k = 0; k < bits_.size(); ++k) {
            std::uint64_t v = bits_[k] | o.bits_[k];
            if (v != bits_[k]) {
                bits_[k] = v;
                changed = true;
            }
        }
        return changed;
    }
    /** this &= o; true when this changed. */
    bool
    intersect(const RegSet &o)
    {
        bool changed = false;
        for (std::size_t k = 0; k < bits_.size(); ++k) {
            std::uint64_t v = bits_[k] & o.bits_[k];
            if (v != bits_[k]) {
                bits_[k] = v;
                changed = true;
            }
        }
        return changed;
    }

    bool
    operator==(const RegSet &o) const
    {
        return bits_ == o.bits_;
    }

  private:
    void
    trim()
    {
        if (n_ % 64 && !bits_.empty())
            bits_.back() &= (1ull << (n_ % 64)) - 1;
    }

    int n_ = 0;
    std::vector<std::uint64_t> bits_;
};

} // namespace symbol::check

#endif // SYMBOL_CHECK_ANALYSES_HH
