#include "check/dataflow.hh"

#include <algorithm>

namespace symbol::check
{

FlowGraph
FlowGraph::of(const intcode::Program &prog, const intcode::Cfg &cfg)
{
    FlowGraph g;
    const std::size_t n = cfg.blocks.size();
    g.succs.assign(n, {});
    g.preds.assign(n, {});
    g.entry = cfg.entryBlock;

    // Every address-taken block is a potential Jmpi destination.
    std::vector<int> taken;
    for (std::size_t b = 0; b < n; ++b)
        if (cfg.blocks[b].addressTaken)
            taken.push_back(static_cast<int>(b));

    for (std::size_t b = 0; b < n; ++b) {
        const intcode::Block &blk = cfg.blocks[b];
        g.succs[b] = blk.succs;
        if (blk.last >= 0 &&
            blk.last < static_cast<int>(prog.code.size()) &&
            prog.code[static_cast<std::size_t>(blk.last)].op ==
                intcode::IOp::Jmpi) {
            for (int t : taken)
                g.succs[b].push_back(t);
        }
        std::sort(g.succs[b].begin(), g.succs[b].end());
        g.succs[b].erase(
            std::unique(g.succs[b].begin(), g.succs[b].end()),
            g.succs[b].end());
    }
    for (std::size_t b = 0; b < n; ++b)
        for (int s : g.succs[b])
            g.preds[static_cast<std::size_t>(s)].push_back(
                static_cast<int>(b));

    // Reachability from the real roots: the entry, plus every
    // address-taken block (reachable via Jmpi from anywhere) and
    // procedure entry (reachable via the dispatch tables).
    g.reachable.assign(n, false);
    std::vector<int> work;
    auto root = [&](int b) {
        if (b >= 0 && b < static_cast<int>(n) &&
            !g.reachable[static_cast<std::size_t>(b)]) {
            g.reachable[static_cast<std::size_t>(b)] = true;
            work.push_back(b);
        }
    };
    root(g.entry);
    for (std::size_t b = 0; b < n; ++b)
        if (cfg.blocks[b].addressTaken || cfg.blocks[b].procEntry)
            root(static_cast<int>(b));
    while (!work.empty()) {
        int b = work.back();
        work.pop_back();
        for (int s : g.succs[static_cast<std::size_t>(b)])
            root(s);
    }
    return g;
}

} // namespace symbol::check
