#include "check/diag.hh"

#include "support/text.hh"

namespace symbol::check
{

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

const char *
diagIdName(DiagId id)
{
    switch (id) {
      case DiagId::IcMalformed: return "ic-malformed";
      case DiagId::IcBadTarget: return "ic-bad-target";
      case DiagId::IcBadRegister: return "ic-bad-register";
      case DiagId::IcFallsOffEnd: return "ic-falls-off-end";
      case DiagId::IcUnreachable: return "ic-unreachable";
      case DiagId::BamBadLabel: return "bam-bad-label";
      case DiagId::BamDupLabel: return "bam-dup-label";
      case DiagId::BamBadOperand: return "bam-bad-operand";
      case DiagId::BamBadRegister: return "bam-bad-register";
      case DiagId::BamNoEntry: return "bam-no-entry";
      case DiagId::IcUninitRead: return "ic-uninit-read";
      case DiagId::IcMaybeUninit: return "ic-maybe-uninit";
      case DiagId::TagBadJump: return "tag-bad-jump";
      case DiagId::TagBadMemBase: return "tag-bad-mem-base";
      case DiagId::TagDeadBranch: return "tag-dead-branch";
      case DiagId::BamEnvUnderflow: return "bam-env-underflow";
      case DiagId::BamChoiceUnderflow: return "bam-choice-underflow";
      case DiagId::BamCutDead: return "bam-cut-dead";
      case DiagId::BamUnbalancedJoin: return "bam-unbalanced-join";
      case DiagId::IcDeadCode: return "ic-dead-code";
      case DiagId::IcRedundantMove: return "ic-redundant-move";
    }
    return "?";
}

Severity
diagIdSeverity(DiagId id)
{
    switch (id) {
      case DiagId::IcMalformed:
      case DiagId::IcBadTarget:
      case DiagId::IcBadRegister:
      case DiagId::IcFallsOffEnd:
      case DiagId::BamBadLabel:
      case DiagId::BamDupLabel:
      case DiagId::BamBadOperand:
      case DiagId::BamBadRegister:
      case DiagId::BamNoEntry:
      case DiagId::IcUninitRead:
      case DiagId::TagBadJump:
      case DiagId::BamEnvUnderflow:
      case DiagId::BamChoiceUnderflow:
      case DiagId::BamCutDead:
        return Severity::Error;
      case DiagId::IcUnreachable:
      case DiagId::IcMaybeUninit:
      case DiagId::TagBadMemBase:
      case DiagId::BamUnbalancedJoin:
        return Severity::Warning;
      case DiagId::TagDeadBranch:
      case DiagId::IcDeadCode:
      case DiagId::IcRedundantMove:
        return Severity::Note;
    }
    return Severity::Error;
}

std::string
Diagnostic::str() const
{
    std::string where;
    if (loc >= 0)
        where = strprintf("%s@%d", bamLevel ? "bam" : "ici", loc);
    else
        where = bamLevel ? "bam" : "ici";
    std::string prov;
    if (!bamLevel && bam >= 0)
        prov = strprintf(" (bam %d)", bam);
    return strprintf("%s[%s] %s%s: %s", severityName(severity),
                     diagIdName(id), where.c_str(), prov.c_str(),
                     message.c_str());
}

void
DiagnosticEngine::report(DiagId id, int loc, bool bamLevel, int bam,
                         std::string message)
{
    Severity sev = diagIdSeverity(id);
    if (werror_ && sev == Severity::Warning)
        sev = Severity::Error;
    switch (sev) {
      case Severity::Error: ++errors_; break;
      case Severity::Warning: ++warnings_; break;
      case Severity::Note: ++notes_; break;
    }
    ++byId_[static_cast<std::size_t>(id)];
    if (diags_.size() >= kMaxRecorded)
        return;
    Diagnostic d;
    d.id = id;
    d.severity = sev;
    d.loc = loc;
    d.bamLevel = bamLevel;
    d.bam = bam;
    d.message = std::move(message);
    diags_.push_back(std::move(d));
}

std::string
DiagnosticEngine::summary() const
{
    return strprintf(
        "analyze: %llu error(s), %llu warning(s), %llu note(s)",
        static_cast<unsigned long long>(errors_),
        static_cast<unsigned long long>(warnings_),
        static_cast<unsigned long long>(notes_));
}

std::string
DiagnosticEngine::str() const
{
    std::string out;
    for (const Diagnostic &d : diags_)
        out += d.str() + "\n";
    if (total() > diags_.size())
        out += strprintf(
            "... %llu further finding(s) not recorded\n",
            static_cast<unsigned long long>(total() - diags_.size()));
    for (int k = 0; k < kNumDiagIds; ++k) {
        DiagId id = static_cast<DiagId>(k);
        if (count(id))
            out += strprintf(
                "  %-20s %llu\n", diagIdName(id),
                static_cast<unsigned long long>(count(id)));
    }
    out += summary() + "\n";
    return out;
}

} // namespace symbol::check
