/**
 * @file
 * Independent static verifier for compacted VLIW schedules.
 *
 * The global compactor (§3.2, §4.3) claims that its output preserves
 * sequential Prolog semantics while packing ICIs into wide
 * instructions. The differential simulator checks that claim only on
 * the paths a benchmark happens to execute; this pass re-derives the
 * legality of *every* wide instruction and *every* static path,
 * independently of the scheduler's own dependence graph, resource
 * tables and latency bookkeeping:
 *
 *  (a) resource legality — per-unit memory/ALU/move/control issue
 *      slots, the shared memory-port budget, the two-format
 *      instruction restriction of §5.1 and the inter-unit bus limits
 *      of the clustered machines, all re-counted from MachineConfig;
 *  (b) latency feasibility — a fixpoint dataflow over the wide-code
 *      control-flow graph proving that on no static path is a
 *      register read before its producing write has committed (or
 *      overwritten while still in flight), the invariant
 *      vliw::SimResult::latencyViolations can only observe
 *      dynamically;
 *  (c) dependence preservation — per scheduled region, the original
 *      operation sequence is reconstructed from the compactor's
 *      provenance (MicroOp::orig / MicroOp::seq), validated to be a
 *      real path of the original IntCode program (so the provenance
 *      itself cannot lie), and the true / anti / output / memory /
 *      observable-output dependences are rebuilt from scratch — with
 *      an independent symbolic memory disambiguation and an
 *      independent instruction-level liveness analysis — and checked
 *      against the emitted cycle/priority order, including across
 *      tail-duplicated compensation copies;
 *  (d) control-flow sanity — entry, branch targets and code-address
 *      immediates land on region heads that correspond to the
 *      original branch destinations, and branch priority within a
 *      wide instruction is consistent with operation position.
 *
 * The only scheduler output the verifier trusts is the provenance
 * *mapping* — and only after proving it consistent with the original
 * program; every dependence, resource count and latency is recomputed
 * here from the IntCode program and the machine description alone.
 */

#ifndef SYMBOL_VERIFY_VERIFY_HH
#define SYMBOL_VERIFY_VERIFY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "intcode/instr.hh"
#include "machine/config.hh"
#include "vliw/code.hh"

namespace symbol::verify
{

/** Violation classes reported by checkSchedule. */
enum class Kind : std::uint8_t
{
    Malformed,    ///< region table / provenance structurally broken
    Mismatch,     ///< micro-op differs from its claimed source ICI
    NotAPath,     ///< region sequence is not a path of the program
    BadUnit,      ///< unit id outside [0, numUnits)
    SlotLimit,    ///< per-unit issue slot class oversubscribed
    MemPorts,     ///< shared memory ports oversubscribed in a cycle
    Format,       ///< §5.1 two-format restriction violated
    BusLimit,     ///< inter-unit bus transfers oversubscribed
    BusLatency,   ///< cross-unit operand consumed before it crossed
    BadRegister,  ///< register index outside [0, numRegs)
    BadTarget,    ///< entry/branch/Cod target invalid or mid-region
    Latency,      ///< static path reads an uncommitted result
    WriteOverlap, ///< write issued while an earlier one is in flight
    DepOrder,     ///< true/WAR/WAW/memory/output dependence reordered
    BranchOrder,  ///< branch order or priority inconsistent
    Speculation,  ///< illegal hoist above a split (side effect or
                  ///< off-live destination)
};

constexpr int kNumKinds = 16;

/** Printable name of a violation class. */
const char *kindName(Kind k);

/** One verifier finding, anchored to a wide instruction. */
struct Violation
{
    Kind kind;
    /** Wide-instruction index (-1 when not attributable). */
    int wide = -1;
    /** Operation position inside the wide instruction, or -1. */
    int op = -1;
    std::string detail;

    std::string str() const;
};

/** Outcome of one verification pass. */
struct Report
{
    /** First findings, in discovery order (capped at kMaxRecorded so
     *  a corrupt program cannot explode the report). */
    std::vector<Violation> violations;
    /** Total violations counted, including unrecorded ones. */
    std::uint64_t total = 0;
    /** Violation count per Kind (indexed by its enum value). */
    std::array<std::uint64_t, kNumKinds> byKind{};

    /** @name Coverage statistics */
    /** @{ */
    std::size_t wideInstrs = 0;
    std::size_t microOps = 0;
    std::size_t regions = 0;
    /** Wide instructions reachable on some static path. */
    std::size_t reachableWide = 0;
    /** Dependence edges rebuilt and checked. */
    std::size_t depEdges = 0;
    /** @} */

    static constexpr std::size_t kMaxRecorded = 64;

    bool ok() const { return total == 0; }

    /** Multi-line human-readable summary. */
    std::string str() const;
};

/**
 * Statically verify that @p code is a legal schedule of @p prog for
 * machine @p config. Never throws on bad input code: every problem
 * becomes a Violation in the returned Report.
 */
Report checkSchedule(const vliw::Code &code,
                     const intcode::Program &prog,
                     const machine::MachineConfig &config);

} // namespace symbol::verify

#endif // SYMBOL_VERIFY_VERIFY_HH
